GO ?= go

.PHONY: build test vet race soak solver-soak solver-portfolio-soak shard-soak serve-smoke serve-chaos-soak verify bench bench-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the batch
# engine (worker pool, cache, persist hook, singleflight), the chaos
# wrapper, the pipeline on top of them (kill-and-resume golden tests),
# the serving layer (evaluator pool, prediction LRU, HTTP hammer), and
# the SMT layer (portfolio members racing in lockstep rounds).
race:
	$(GO) test -race -timeout 20m ./internal/engine/... ./internal/chaos/... ./internal/core/... ./internal/serve/... ./internal/shard/... ./internal/smt/...

# serve-smoke boots the zenportd HTTP stack in-process under the race
# detector and replays a mixed 64-client query stream against it,
# verifying every served prediction bit-identical to the batch
# evaluator (the same compiled-mapping path zeneval uses) and printing
# p50/p90/p99 latency. A non-zero exit means a mismatch, a failed
# request, or a data race.
serve-smoke:
	$(GO) run -race ./cmd/zenload -self -mapping zen=mapping.json -clients 64 -requests 3000 -verify

# serve-chaos-soak is the serving-robustness soak under the race
# detector: a deliberately tiny admission gate (-overload) so the
# stream genuinely sheds, seeded evaluator stalls plus one
# deterministic injected panic (-chaos), a per-request deadline
# budget, slow clients trickling request bodies, and one SIGHUP hot
# reload mid-traffic. The daemon must never crash or deadlock, every
# non-shed prediction must verify bit-identical to the batch
# evaluator, and shed/degraded responses must carry Retry-After.
serve-chaos-soak:
	$(GO) run -race ./cmd/zenload -self -mapping zen=mapping.json -clients 64 -requests 4000 -verify \
		-overload -chaos -chaos-seed 7 -deadline 250ms -slow-clients 4 -reload-at 800

# soak runs the chaos-hardened inference end to end under the race
# detector: full pipeline under ≈2% transients, hangs, 10× outlier
# spikes and stuck counters, demanding byte-identity with the
# fault-free golden run plus kill-and-resume and cancellation legs.
soak:
	$(GO) test -race -timeout 20m -run 'TestChaosSoak' -v ./internal/chaos/

# solver-soak runs inference under solver-level adversity: the
# consistent-lie fault class (a statically shifted kernel the outlier
# filter cannot see, recoverable only via UNSAT-core relaxation),
# budget-starved solver queries, and the retry-on-resume path —
# asserting the pipeline degrades to a partial mapping instead of
# dying, and that recovery keeps the untouched schemes byte-identical
# to the fault-free golden run.
solver-soak:
	$(GO) test -race -timeout 20m -run 'TestChaosConsistentLie|TestPipelineBudget|TestPipelineRetryUnresolvedOnResume|TestSupervised|TestUnsatCore' -v ./internal/chaos/ ./internal/core/ ./internal/smt/

# solver-portfolio-soak runs the portfolio CDCL determinism soak under
# the race detector: the full chaos-injected pipeline with a 4-member
# solver portfolio, swept across engine worker counts, must produce a
# mapping byte-identical to the fault-free single-solver golden run —
# K and GOMAXPROCS must never leak into the result.
solver-portfolio-soak:
	$(GO) test -race -timeout 20m -run 'TestPortfolioChaosSoak' -v ./internal/chaos/

# shard-soak runs the distributed-campaign soak under the race
# detector: a 3-shard campaign where one shard process is killed with
# SIGKILL mid-stage-4 and its slice is stolen by a survivor via lease
# takeover (the shard processes re-exec the race-built test binary),
# plus the degraded-merge leg where a permanently missing slice leaves
# its schemes unresolved instead of failing the merge. The merged
# mapping must be byte-identical to the single-process golden run.
shard-soak:
	$(GO) test -race -timeout 20m -run 'TestShardCampaign|TestShardMerge' -v ./internal/shard/

# verify is the tier-1 gate: everything must build, vet clean, pass
# the full test suite, and pass the race detector on the concurrent
# packages.
verify: vet build test race

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke compiles and runs every benchmark exactly once — a fast
# CI guard that the experiment harness and the compiled-evaluator
# benchmarks keep working, without measuring anything.
bench-smoke:
	$(GO) test -run 'TestNothing' -bench=. -benchmem -benchtime=1x .

clean:
	$(GO) clean ./...
