GO ?= go

.PHONY: build test vet race soak verify bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the batch
# engine (worker pool, cache, persist hook), the chaos wrapper, and
# the pipeline on top of them (kill-and-resume golden tests).
race:
	$(GO) test -race -timeout 20m ./internal/engine/... ./internal/chaos/... ./internal/core/...

# soak runs the chaos-hardened inference end to end under the race
# detector: full pipeline under ≈2% transients, hangs, 10× outlier
# spikes and stuck counters, demanding byte-identity with the
# fault-free golden run plus kill-and-resume and cancellation legs.
soak:
	$(GO) test -race -timeout 20m -run 'TestChaosSoak' -v ./internal/chaos/

# verify is the tier-1 gate: everything must build, vet clean, pass
# the full test suite, and pass the race detector on the concurrent
# packages.
verify: vet build test race

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...
