GO ?= go

.PHONY: build test vet race verify bench clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector: the batch
# engine (worker pool, cache, persist hook) and the pipeline on top of
# it (kill-and-resume golden tests).
race:
	$(GO) test -race -timeout 20m ./internal/engine/... ./internal/core/...

# verify is the tier-1 gate: everything must build, vet clean, pass
# the full test suite, and pass the race detector on the concurrent
# packages.
verify: vet build test race

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...
