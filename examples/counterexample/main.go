// The counterexample example is the paper's Figure 4 walkthrough:
// two single-µop instructions iA and iB over two ports both measure
// 1.0 cycles alone, which two structurally different port mappings
// explain — iA and iB sharing a port, or using distinct ports. The
// counter-example-guided loop (Algorithm 2) finds the distinguishing
// experiment [iA, iB], "measures" it against a hidden ground truth,
// and converges to the right mapping.
package main

import (
	"fmt"
	"log"

	"zenport"
)

func main() {
	// The hidden truth: iA and iB share port 0.
	truth := zenport.NewMapping(2)
	truth.Set("iA", zenport.Usage{{Ports: zenport.MakePortSet(0), Count: 1}})
	truth.Set("iB", zenport.Usage{{Ports: zenport.MakePortSet(0), Count: 1}})

	inst := &zenport.Instance{
		NumPorts: 2,
		Epsilon:  0.02,
		Uops: []zenport.UopSpec{
			{Key: "iA", NumPorts: 1},
			{Key: "iB", NumPorts: 1},
		},
	}
	exps := []zenport.MeasuredExp{
		{Exp: zenport.Exp("iA"), TInv: 1.0},
		{Exp: zenport.Exp("iB"), TInv: 1.0},
	}
	fmt.Println("Seed measurements: tp⁻¹([iA]) = 1.0, tp⁻¹([iB]) = 1.0")

	for round := 1; ; round++ {
		m1, err := inst.FindMapping(exps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nround %d: findMapping proposes\n%v", round, m1)
		other, err := inst.FindOtherMapping(exps, m1, 2, 4, 50)
		if err != nil {
			log.Fatal(err)
		}
		if other == nil {
			fmt.Println("\nfindOtherMapping: no distinguishable alternative — converged.")
			if m1.Isomorphic(truth) {
				fmt.Println("The result matches the hidden ground truth (up to port renaming).")
			}
			return
		}
		fmt.Printf("findOtherMapping: alternative mapping exists,\n%v", other.Mapping)
		fmt.Printf("distinguishing experiment %v: model values %.1f vs %.1f cycles\n",
			other.Exp, other.T1, other.T2)
		t, err := truth.InverseThroughput(other.Exp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("measuring %v on the machine: %.1f cycles\n", other.Exp, t)
		exps = append(exps, zenport.MeasuredExp{Exp: other.Exp, TInv: t})
	}
}
