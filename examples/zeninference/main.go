// The zeninference example runs the paper's full pipeline at reduced
// scale: the 13 blocking-class representatives of Table 1, their
// class co-members, the improper store blockers, the §4.3 anomaly
// cases, and a handful of multi-µop instructions. It prints the
// blocking classes, the anomalous exclusions, the inferred blocker
// mapping, and witness experiments — the complete "explainable"
// output of the algorithm in under a minute.
//
// For the full 1,100+-scheme run use cmd/zeninfer.
package main

import (
	"fmt"
	"log"

	"zenport"
)

var keys = []string{
	// Table 1 representatives and some co-members.
	"add GPR[32], GPR[32]", "sub GPR[32], GPR[32]",
	"vpor XMM, XMM, XMM", "vpxor XMM, XMM, XMM",
	"vpaddd XMM, XMM, XMM", "vpsubb XMM, XMM, XMM",
	"vminps XMM, XMM, XMM", "vmaxss XMM, XMM, XMM",
	"vbroadcastss XMM, XMM", "vpshufd XMM, XMM, IMM[8]",
	"vpaddsw XMM, XMM, XMM", "vaddps XMM, XMM, XMM",
	"mov GPR[32], MEM[32]", "mov GPR[64], MEM[64]",
	"vpslld XMM, XMM, XMM", "vroundps XMM, XMM, IMM[8]",
	// The §4.3 anomaly cases.
	"imul GPR[32], GPR[32]", "vpmuldq XMM, XMM, XMM", "vmovd XMM, GPR[32]",
	// Improper blockers.
	"mov MEM[32], GPR[32]", "vmovapd MEM[128], XMM",
	// Multi-µop schemes for the characterization stage.
	"add GPR[32], MEM[32]", "add MEM[32], GPR[32]", "vpaddd YMM, YMM, YMM",
	"vpor YMM, YMM, YMM", "bsf GPR[64], GPR[64]",
	// No-port and problem schemes.
	"mov GPR[64], GPR[64]", "nop", "cmove GPR[32], GPR[32]", "vdivps XMM, XMM, XMM",
}

func main() {
	db := zenport.ZenDB()
	machine := zenport.NewZenMachine(db, zenport.SimConfig{Noise: 0.001, Seed: 42})
	h := zenport.NewHarness(machine)

	var schemes []zenport.Scheme
	for _, k := range keys {
		schemes = append(schemes, db.MustGet(k).Scheme)
	}

	opts := zenport.DefaultOptions()
	opts.Log = func(f string, a ...any) { log.Printf(f, a...) }
	rep, err := zenport.Infer(h, schemes, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nBlocking classes (Table 1):")
	for _, cls := range rep.Classes {
		fmt.Printf("  %d ports  %-40s %d member(s), inferred %v\n",
			cls.PortCount, cls.Rep, len(cls.Members), cls.Ports)
	}
	fmt.Printf("\nAnomalous blockers excluded (§4.3): %v\n", rep.AnomalousBlockers)
	fmt.Println("\nInferred blocker mapping (Table 2):")
	for _, key := range rep.BlockerMapping.Keys() {
		u, _ := rep.BlockerMapping.Get(key)
		fmt.Printf("  %-42s %s\n", key, u)
	}

	fmt.Println("\nCharacterized multi-µop schemes with witnesses (§4.4):")
	for _, key := range []string{"add GPR[32], MEM[32]", "add MEM[32], GPR[32]", "vpaddd YMM, YMM, YMM"} {
		u, ok := rep.Characterized[key]
		if !ok {
			continue
		}
		fmt.Printf("  %-42s %s\n", key, u)
		for _, w := range rep.CharWitnesses[key] {
			fmt.Printf("      because %v measured %.3f vs %.3f alone\n", w.Exp, w.TInv, w.TOther)
		}
	}
	fmt.Printf("\nfinal mapping covers %d of %d schemes\n", rep.Supported(), len(schemes))
}
