// The throughput example uses an inferred port mapping as a
// performance model, the downstream use case motivating the paper:
// compiler cost models and throughput predictors need per-instruction
// port usage. It infers a mapping for a small scheme set, then
// predicts the steady-state IPC of three loop bodies — a scalar
// reduction, a vector kernel, and a memory-bound copy — and compares
// each prediction against "hardware" (the simulator).
package main

import (
	"fmt"
	"log"

	"zenport"
)

func main() {
	db := zenport.ZenDB()
	machine := zenport.NewZenMachine(db, zenport.SimConfig{Noise: 0.001, Seed: 7})
	h := zenport.NewHarness(machine)

	keys := []string{
		"add GPR[32], GPR[32]", "sub GPR[32], GPR[32]", "imul GPR[32], GPR[32]",
		"vpor XMM, XMM, XMM", "vpaddd XMM, XMM, XMM", "vminps XMM, XMM, XMM",
		"vaddps XMM, XMM, XMM", "vbroadcastss XMM, XMM", "vpaddsw XMM, XMM, XMM",
		"mov GPR[32], MEM[32]", "mov MEM[32], GPR[32]", "vmovapd MEM[128], XMM",
		"vpslld XMM, XMM, XMM", "vroundps XMM, XMM, IMM[8]", "vpmuldq XMM, XMM, XMM",
		"vmovd XMM, GPR[32]",
		"add GPR[32], MEM[32]", "vaddps YMM, YMM, YMM", "vmovaps XMM, MEM[128]",
	}
	var schemes []zenport.Scheme
	for _, k := range keys {
		schemes = append(schemes, db.MustGet(k).Scheme)
	}
	rep, err := zenport.Infer(h, schemes, zenport.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred mapping over %d schemes\n\n", rep.Supported())

	loops := map[string]zenport.Experiment{
		"scalar reduction": {
			"add GPR[32], MEM[32]": 2,
			"add GPR[32], GPR[32]": 2,
		},
		"vector kernel": {
			"vmovaps XMM, MEM[128]": 1,
			"vpaddd XMM, XMM, XMM":  2,
			"vminps XMM, XMM, XMM":  1,
			"vmovapd MEM[128], XMM": 1,
		},
		"memory copy": {
			"mov GPR[32], MEM[32]": 2,
			"mov MEM[32], GPR[32]": 2,
		},
	}
	for name, e := range loops {
		pred, err := rep.Final.InverseThroughputBounded(e, machine.Rmax())
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		meas, err := h.InvThroughput(e)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s %v\n", name, e)
		fmt.Printf("    predicted %.3f cycles/iter (%.2f IPC), measured %.3f (%.2f IPC)\n",
			pred, float64(e.Len())/pred, meas, float64(e.Len())/meas)
	}
}
