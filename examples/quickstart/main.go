// The quickstart example walks through the port mapping model using
// the paper's running example (Figures 2 and 3): a toy two-port
// machine with add, mul, and fma instructions. It builds the mapping,
// computes steady-state inverse throughputs with the Section 2.2 LP
// semantics, and reproduces the µop-counting argument of Section 3.1
// — how many µops of fma cannot evade a blocked port, measured only
// from throughput differences.
package main

import (
	"fmt"
	"log"

	"zenport"
)

func main() {
	// Figure 2(a): add = u1, mul = u2, fma = 2×u1 + u2;
	// u1 runs on ports {0,1}, u2 only on port {1}.
	m := zenport.NewMapping(2)
	u1 := zenport.MakePortSet(0, 1)
	u2 := zenport.MakePortSet(1)
	m.Set("add", zenport.Usage{{Ports: u1, Count: 1}})
	m.Set("mul", zenport.Usage{{Ports: u2, Count: 1}})
	m.Set("fma", zenport.Usage{{Ports: u1, Count: 2}, {Ports: u2, Count: 1}})

	fmt.Println("Toy port mapping (paper, Figure 2a):")
	fmt.Print(m)

	// Figure 2(b): [mul, mul, fma] takes 3 cycles in steady state.
	show(m, zenport.Exp("mul", "mul", "fma"))

	// Figure 3(a): fma with 3 mul blocking instructions: 4 cycles.
	show(m, zenport.Experiment{"mul": 3, "fma": 1})

	// Figure 3(b): fma with 6 add blocking instructions: 4.5 cycles.
	show(m, zenport.Experiment{"add": 6, "fma": 1})

	// Section 3.1: count fma's µops on the blocked port {1} without
	// per-port counters. tp([3×mul, fma]) − tp([3×mul]) = 1 extra
	// cycle; multiplied by |{1}| = 1 port, exactly one µop of fma
	// cannot evade port 1.
	tWith, err := m.InverseThroughput(zenport.Experiment{"mul": 3, "fma": 1})
	if err != nil {
		log.Fatal(err)
	}
	tOnly, err := m.InverseThroughput(zenport.Experiment{"mul": 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n§3.1 µop counting: (%.1f − %.1f) × 1 port = %.0f µop of fma is stuck on port 1\n",
		tWith, tOnly, (tWith-tOnly)*1)

	// The same idea on the simulated Zen+ machine: the store µop of
	// a storing mov is counted by flooding port 5 with store movs.
	db := zenport.ZenDB()
	machine := zenport.NewZenMachine(db, zenport.SimConfig{Noise: -1})
	h := zenport.NewHarness(machine)
	flood := zenport.Experiment{"mov MEM[32], GPR[32]": 10}
	withStore := flood.Clone()
	withStore["vmovaps MEM[128], XMM"] = 1
	tOnly2, err := h.InvThroughput(flood)
	if err != nil {
		log.Fatal(err)
	}
	tWith2, err := h.InvThroughput(withStore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nZen+ simulator: flooding the store port with 10 storing movs (%.2f cycles),\n", tOnly2)
	fmt.Printf("adding one vector store raises it to %.2f — its store µop cannot evade: %+.0f µop on port 5\n",
		tWith2, tWith2-tOnly2)
}

func show(m *zenport.Mapping, e zenport.Experiment) {
	tp, err := m.InverseThroughput(e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tp⁻¹(%v) = %.1f cycles\n", e, tp)
}
