module zenport

go 1.22
