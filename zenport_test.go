package zenport_test

import (
	"math"
	"testing"

	"zenport"
)

func TestFacadeModelRoundTrip(t *testing.T) {
	m := zenport.NewMapping(2)
	m.Set("a", zenport.Usage{{Ports: zenport.MakePortSet(0, 1), Count: 1}})
	tp, err := m.InverseThroughput(zenport.Exp("a", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp-1) > 1e-9 {
		t.Fatalf("tp = %v", tp)
	}
}

func TestFacadeZenMachine(t *testing.T) {
	db := zenport.ZenDB()
	if db.Len() < 800 {
		t.Fatalf("db too small: %d", db.Len())
	}
	schemes := zenport.ZenSchemes(db)
	if len(schemes) != db.Len() {
		t.Fatalf("schemes %d != db %d", len(schemes), db.Len())
	}
	machine := zenport.NewZenMachine(db, zenport.SimConfig{Noise: -1})
	h := zenport.NewHarness(machine)
	tp, err := h.InvThroughput(zenport.Exp("add GPR[32], GPR[32]"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp-0.25) > 1e-9 {
		t.Fatalf("tp = %v", tp)
	}
	if machine.Rmax() != 5 || machine.NumPorts() != 10 {
		t.Fatal("machine parameters wrong")
	}
}

func TestFacadeInferSmall(t *testing.T) {
	db := zenport.ZenDB()
	machine := zenport.NewZenMachine(db, zenport.SimConfig{Noise: -1})
	h := zenport.NewHarness(machine)
	keys := []string{
		"add GPR[32], GPR[32]", "vpor XMM, XMM, XMM", "vminps XMM, XMM, XMM",
		"mov GPR[32], MEM[32]", "vpslld XMM, XMM, XMM",
		"mov MEM[32], GPR[32]", "vmovapd MEM[128], XMM",
		"add GPR[32], MEM[32]",
	}
	var schemes []zenport.Scheme
	for _, k := range keys {
		schemes = append(schemes, db.MustGet(k).Scheme)
	}
	rep, err := zenport.Infer(h, schemes, zenport.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Supported() < 6 {
		t.Fatalf("covered only %d schemes", rep.Supported())
	}
	// The inferred mapping predicts a held-out mixture correctly.
	e := zenport.Experiment{"add GPR[32], GPR[32]": 2, "vminps XMM, XMM, XMM": 2}
	pred, err := rep.Final.InverseThroughputBounded(e, machine.Rmax())
	if err != nil {
		t.Fatal(err)
	}
	meas, err := h.InvThroughput(e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pred-meas) > 0.1 {
		t.Fatalf("pred %v vs measured %v", pred, meas)
	}
}
