package palmed

import (
	"math"
	"testing"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

var db = zen.Build()

func harness() *measure.Harness {
	m := zensim.NewMachine(db, zensim.Config{Noise: -1, DisableAnomalies: true})
	return measure.NewHarness(m)
}

var blockers = map[string]int{
	"add GPR[32], GPR[32]":      4,
	"vpor XMM, XMM, XMM":        4,
	"vpaddd XMM, XMM, XMM":      3,
	"vminps XMM, XMM, XMM":      2,
	"vaddps XMM, XMM, XMM":      2,
	"mov GPR[32], MEM[32]":      2,
	"vpslld XMM, XMM, XMM":      1,
	"vroundps XMM, XMM, IMM[8]": 1,
}

func TestInferAndPredict(t *testing.T) {
	h := harness()
	keys := []string{
		"add GPR[32], GPR[32]", "vpor XMM, XMM, XMM", "vminps XMM, XMM, XMM",
		"add GPR[32], MEM[32]", "vpslld XMM, XMM, XMM",
	}
	m, err := Infer(h, keys, blockers)
	if err != nil {
		t.Fatal(err)
	}
	// Singleton predictions should be close: pressure on the own
	// resource is 1/width.
	for _, k := range keys[:3] {
		want, _ := h.InvThroughput(portmodel.Exp(k))
		got, err := m.InverseThroughput(portmodel.Exp(k))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 0.35 {
			t.Errorf("%s: palmed predicts %v, measured %v", k, got, want)
		}
	}
}

func TestConjunctiveOverestimation(t *testing.T) {
	// The conjunctive model charges evadable µops on every resource,
	// so mixed kernels are predicted at least as slow as the truth —
	// the systematic underestimation of IPC in Figure 5(c).
	h := harness()
	keys := []string{"add GPR[32], GPR[32]", "vpaddd XMM, XMM, XMM", "vminps XMM, XMM, XMM"}
	m, err := Infer(h, keys, blockers)
	if err != nil {
		t.Fatal(err)
	}
	e := portmodel.Experiment{
		"add GPR[32], GPR[32]": 2,
		"vpaddd XMM, XMM, XMM": 1,
		"vminps XMM, XMM, XMM": 2,
	}
	pred, err := m.InverseThroughput(e)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := h.InvThroughput(e)
	if err != nil {
		t.Fatal(err)
	}
	if pred < truth-0.05 {
		t.Fatalf("palmed predicted faster (%v) than measured (%v)", pred, truth)
	}
	ipc, err := m.IPC(e)
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 {
		t.Fatalf("IPC = %v", ipc)
	}
}

func TestInferErrors(t *testing.T) {
	h := harness()
	if _, err := Infer(h, []string{"add GPR[32], GPR[32]"}, nil); err == nil {
		t.Fatal("expected error without saturating kernels")
	}
	m, err := Infer(h, []string{"add GPR[32], GPR[32]"}, blockers)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.InverseThroughput(portmodel.Exp("unknown")); err == nil {
		t.Fatal("expected error for unknown key")
	}
}
