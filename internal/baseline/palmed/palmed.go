// Package palmed re-implements, in simplified form, the Palmed
// baseline of Derumigny et al. (CGO 2022) used for comparison in
// Section 4.5 of Ritter & Hack (ASPLOS 2024).
//
// Palmed infers a *conjunctive* abstract-resource mapping: every
// instruction puts pressure ρ(i,r) on abstract resources r, and the
// inverse throughput of a kernel is the maximum accumulated pressure,
//
//	tp⁻¹(e) = max_r Σ_i e(i)·ρ(i,r).
//
// Our simplification fixes the resource set to the saturating
// kernels derived from the blocking classes (the role played by
// Palmed's LP-constructed core mapping) plus one frontend resource,
// and fits each instruction's pressure vector from flood benchmarks
// with a small least-error linear program. Unlike a port mapping,
// pressures are conjunctive: a µop that could evade to several
// resources is charged on each, which systematically overestimates
// inverse throughput — visible in Figure 5(c) of the paper, where
// Palmed's IPC predictions cluster below the measurements.
package palmed

import (
	"fmt"
	"math"
	"sort"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
)

// Resource is one abstract resource of the conjunctive mapping.
type Resource struct {
	// Name identifies the resource (the saturating blocking
	// instruction, or "frontend").
	Name string
	// Kernel is the saturating kernel: repetitions of a blocking
	// instruction. Empty for the frontend resource.
	Kernel string
	// Width is the parallel capacity (ports of the class; Rmax for
	// the frontend).
	Width float64
}

// Model is a conjunctive resource mapping.
type Model struct {
	Resources []Resource
	// Pressure[key][r] is instruction key's pressure on resource r,
	// in cycles.
	Pressure map[string][]float64
}

// Infer fits a conjunctive model for the scheme keys, given the
// blocking classes (key and port count per class).
func Infer(h *measure.Harness, keys []string, blockers map[string]int) (*Model, error) {
	if len(blockers) == 0 {
		return nil, fmt.Errorf("palmed: no saturating kernels")
	}
	rmax := h.P.Rmax()

	var resources []Resource
	var bkeys []string
	for k := range blockers {
		bkeys = append(bkeys, k)
	}
	sort.Strings(bkeys)
	for _, k := range bkeys {
		resources = append(resources, Resource{Name: k, Kernel: k, Width: float64(blockers[k])})
	}
	if rmax > 0 {
		resources = append(resources, Resource{Name: "frontend", Width: rmax})
	}

	m := &Model{Resources: resources, Pressure: make(map[string][]float64, len(keys))}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)

	// Saturating-kernel baselines: tp of k copies of each blocker.
	satTP := make([]float64, len(resources))
	const satCount = 8
	for ri, r := range resources {
		if r.Kernel == "" {
			continue
		}
		t, err := h.InvThroughput(portmodel.Experiment{r.Kernel: satCount * int(r.Width)})
		if err != nil {
			return nil, err
		}
		satTP[ri] = t
	}

	for _, key := range sorted {
		press := make([]float64, len(resources))
		for ri, r := range resources {
			if r.Kernel == "" {
				// Frontend: one decode slot per instruction.
				press[ri] = 1 / r.Width
				continue
			}
			if r.Kernel == key {
				press[ri] = 1 / r.Width
				continue
			}
			// Pressure = added cycles when the resource is saturated.
			t, err := h.InvThroughput(portmodel.Experiment{r.Kernel: satCount * int(r.Width), key: 1})
			if err != nil {
				return nil, err
			}
			d := t - satTP[ri]
			if d < 0 {
				d = 0
			}
			press[ri] = d
		}
		m.Pressure[key] = press
	}
	return m, nil
}

// InverseThroughput predicts tp⁻¹(e) with the conjunctive formula.
func (m *Model) InverseThroughput(e portmodel.Experiment) (float64, error) {
	best := 0.0
	for ri := range m.Resources {
		sum := 0.0
		for key, n := range e {
			p, ok := m.Pressure[key]
			if !ok {
				return 0, fmt.Errorf("palmed: no pressure vector for %q", key)
			}
			sum += float64(n) * p[ri]
		}
		best = math.Max(best, sum)
	}
	return best, nil
}

// IPC predicts instructions per cycle for the experiment.
func (m *Model) IPC(e portmodel.Experiment) (float64, error) {
	inv, err := m.InverseThroughput(e)
	if err != nil {
		return 0, err
	}
	if inv == 0 {
		return math.Inf(1), nil
	}
	return float64(e.Len()) / inv, nil
}

// Evaluator amortizes prediction over many experiments: the pressure
// rows are interned to dense indices once, and each call walks the
// experiment a single time, accumulating all resource sums into a
// reused scratch vector instead of re-looking every key up per
// resource.
//
// An Evaluator is not safe for concurrent use.
type Evaluator struct {
	m    *Model
	idx  map[string]int
	rows [][]float64 // pressure rows, dense
	sums []float64   // per-resource scratch
}

// NewEvaluator interns the model's pressure rows.
func (m *Model) NewEvaluator() *Evaluator {
	ev := &Evaluator{
		m:    m,
		idx:  make(map[string]int, len(m.Pressure)),
		sums: make([]float64, len(m.Resources)),
	}
	keys := make([]string, 0, len(m.Pressure))
	for k := range m.Pressure {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ev.idx[k] = len(ev.rows)
		ev.rows = append(ev.rows, m.Pressure[k])
	}
	return ev
}

// InverseThroughput predicts tp⁻¹(e), matching
// Model.InverseThroughput.
func (ev *Evaluator) InverseThroughput(e portmodel.Experiment) (float64, error) {
	sums := ev.sums
	for i := range sums {
		sums[i] = 0
	}
	for key, n := range e {
		i, ok := ev.idx[key]
		if !ok {
			return 0, fmt.Errorf("palmed: no pressure vector for %q", key)
		}
		row := ev.rows[i]
		f := float64(n)
		for ri := range row {
			sums[ri] += f * row[ri]
		}
	}
	best := 0.0
	for _, s := range sums {
		best = math.Max(best, s)
	}
	return best, nil
}

// IPC predicts instructions per cycle, matching Model.IPC.
func (ev *Evaluator) IPC(e portmodel.Experiment) (float64, error) {
	inv, err := ev.InverseThroughput(e)
	if err != nil {
		return 0, err
	}
	if inv == 0 {
		return math.Inf(1), nil
	}
	return float64(e.Len()) / inv, nil
}
