package pmevo

import (
	"math"
	"testing"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

var db = zen.Build()

func harness() *measure.Harness {
	m := zensim.NewMachine(db, zensim.Config{Noise: -1, DisableAnomalies: true})
	return measure.NewHarness(m)
}

var evoKeys = []string{
	"add GPR[32], GPR[32]",
	"vpor XMM, XMM, XMM",
	"vminps XMM, XMM, XMM",
	"vpslld XMM, XMM, XMM",
	"mov GPR[32], MEM[32]",
}

func TestInferImprovesOverRandom(t *testing.T) {
	h := harness()
	cfg := DefaultConfig()
	cfg.Generations = 60
	cfg.Population = 40
	m, err := Infer(h, evoKeys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The evolved mapping should predict singleton throughputs
	// reasonably (within 30% on average — PMEvo is approximate).
	sum, n := 0.0, 0
	for _, k := range evoKeys {
		want, err := h.InvThroughput(portmodel.Exp(k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.InverseThroughputBounded(portmodel.Exp(k), h.P.Rmax())
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Abs(got-want) / want
		n++
	}
	if mape := sum / float64(n); mape > 0.30 {
		t.Fatalf("singleton MAPE %.2f too high\n%v", mape, m)
	}
}

func TestInferDeterministicForSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Generations = 10
	cfg.Population = 20
	m1, err := Infer(harness(), evoKeys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Infer(harness(), evoKeys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range evoKeys {
		u1, _ := m1.Get(k)
		u2, _ := m2.Get(k)
		if !u1.Equal(u2) {
			t.Fatalf("seeded run not deterministic for %s: %v vs %v", k, u1, u2)
		}
	}
}

func TestMutateKeepsMappingValid(t *testing.T) {
	cfg := DefaultConfig()
	m, err := Infer(harness(), evoKeys[:2], Config{Population: 10, Generations: 5, MaxUops: 2, PairSamples: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = cfg
}
