// Package pmevo re-implements the PMEvo baseline of Ritter & Hack
// (PLDI 2020) as used for comparison in Section 4.5 of the ASPLOS
// 2024 paper: an evolutionary algorithm that optimizes candidate port
// mappings to reproduce the throughput of a fixed set of
// microbenchmarks, using only time measurements (no performance
// counters at all).
//
// In contrast to the explainable algorithm of package core, PMEvo's
// results carry no witnesses: a mapping is accepted because it scored
// well on the benchmark set, not because any experiment pins down an
// individual µop. The paper shows (Figure 5) that this costs
// substantial accuracy; this package exists to reproduce that
// comparison.
package pmevo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
)

// Config tunes the evolutionary search. The paper seeds 50,000 random
// mappings and evolves for 59 hours on real hardware; the defaults
// here are scaled to simulator time budgets.
type Config struct {
	// Population is the number of candidate mappings.
	Population int
	// Generations bounds the evolution.
	Generations int
	// MaxUops is the maximum number of distinct µops per
	// instruction.
	MaxUops int
	// PairSamples is the number of random pair benchmarks per
	// instruction used for fitness.
	PairSamples int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns simulator-scaled parameters.
func DefaultConfig() Config {
	return Config{Population: 60, Generations: 120, MaxUops: 2, PairSamples: 2, Seed: 1}
}

// benchmark is one fitness experiment.
type benchmark struct {
	exp  portmodel.Experiment
	tinv float64
}

// Infer evolves a port mapping for the given scheme keys.
func Infer(h *measure.Harness, keys []string, cfg Config) (*portmodel.Mapping, error) {
	if cfg.Population == 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numPorts := h.P.NumPorts()
	rmax := h.P.Rmax()

	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)

	// Benchmark set: singletons, homogeneous floods, random pairs.
	var benches []benchmark
	addBench := func(e portmodel.Experiment) error {
		t, err := h.InvThroughput(e)
		if err != nil {
			return err
		}
		benches = append(benches, benchmark{exp: e, tinv: t})
		return nil
	}
	for _, k := range sorted {
		if err := addBench(portmodel.Exp(k)); err != nil {
			return nil, err
		}
		if err := addBench(portmodel.Experiment{k: 4}); err != nil {
			return nil, err
		}
		for s := 0; s < cfg.PairSamples; s++ {
			other := sorted[rng.Intn(len(sorted))]
			if other == k {
				continue
			}
			if err := addBench(portmodel.Experiment{k: 2, other: 2}); err != nil {
				return nil, err
			}
		}
	}

	// Initial population: random mappings.
	pop := make([]*portmodel.Mapping, cfg.Population)
	for i := range pop {
		pop[i] = randomMapping(rng, sorted, numPorts, cfg.MaxUops)
	}
	fe := newFitnessEval(sorted, benches, rmax)
	fit := make([]float64, len(pop))
	for i := range pop {
		f, err := fe.fitness(pop[i])
		if err != nil {
			return nil, err
		}
		fit[i] = f
	}

	for gen := 0; gen < cfg.Generations; gen++ {
		// Tournament selection + crossover + mutation, elitist.
		bi := argmin(fit)
		next := []*portmodel.Mapping{pop[bi].Clone()}
		nextFit := []float64{fit[bi]}
		for len(next) < len(pop) {
			a := tournament(rng, fit)
			b := tournament(rng, fit)
			child := crossover(rng, pop[a], pop[b], sorted)
			mutate(rng, child, sorted, numPorts, cfg.MaxUops)
			f, err := fe.fitness(child)
			if err != nil {
				return nil, err
			}
			next = append(next, child)
			nextFit = append(nextFit, f)
		}
		pop, fit = next, nextFit
	}
	return pop[argmin(fit)], nil
}

// fitnessEval scores candidates against the fixed benchmark set. The
// benchmark experiments are interned once into dense weight vectors
// over the sorted key universe; each candidate is then compiled and
// evaluated through the allocation-free portmodel.Compiled path,
// which is bit-identical to the reference evaluator — the GA
// trajectory is unchanged. Benchmarks that cannot be interned (keys
// outside the universe) disable interning and score via the
// reference path.
type fitnessEval struct {
	universe []string
	benches  []benchmark
	rmax     float64
	vecs     [][]int32 // nil when interning is disabled
	lens     []int
}

func newFitnessEval(universe []string, benches []benchmark, rmax float64) *fitnessEval {
	fe := &fitnessEval{universe: universe, benches: benches, rmax: rmax}
	idx := make(map[string]int, len(universe))
	for i, k := range universe {
		idx[k] = i
	}
	vecs := make([][]int32, len(benches))
	lens := make([]int, len(benches))
	for i, b := range benches {
		vec := make([]int32, len(universe))
		total := 0
		for k, n := range b.exp {
			j, ok := idx[k]
			if !ok || n < 0 {
				return fe
			}
			vec[j] += int32(n)
			total += n
		}
		vecs[i], lens[i] = vec, total
	}
	fe.vecs, fe.lens = vecs, lens
	return fe
}

// fitness is the mean absolute percentage error over the benchmark
// set (lower is better).
func (fe *fitnessEval) fitness(m *portmodel.Mapping) (float64, error) {
	if fe.vecs != nil {
		if comp, err := portmodel.CompileMapping(m, fe.universe); err == nil {
			sum := 0.0
			for i := range fe.vecs {
				pred := comp.InverseThroughputBoundedWeights(fe.vecs[i], fe.lens[i], fe.rmax)
				if t := fe.benches[i].tinv; t > 0 {
					sum += math.Abs(pred-t) / t
				}
			}
			return sum / float64(len(fe.benches)), nil
		}
	}
	sum := 0.0
	for _, b := range fe.benches {
		pred, err := m.InverseThroughputBounded(b.exp, fe.rmax)
		if err != nil {
			return 0, err
		}
		if b.tinv > 0 {
			sum += math.Abs(pred-b.tinv) / b.tinv
		}
	}
	return sum / float64(len(fe.benches)), nil
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	_ = fmt.Sprint // keep fmt for debug hooks
	return best
}

func tournament(rng *rand.Rand, fit []float64) int {
	a, b := rng.Intn(len(fit)), rng.Intn(len(fit))
	if fit[a] <= fit[b] {
		return a
	}
	return b
}

func randomUsage(rng *rand.Rand, numPorts, maxUops int) portmodel.Usage {
	n := 1 + rng.Intn(maxUops)
	var u portmodel.Usage
	for i := 0; i < n; i++ {
		var ps portmodel.PortSet
		for ps == 0 {
			for k := 0; k < numPorts; k++ {
				if rng.Intn(3) == 0 {
					ps |= 1 << uint(k)
				}
			}
		}
		u = append(u, portmodel.Uop{Ports: ps, Count: 1})
	}
	return u.Normalize()
}

func randomMapping(rng *rand.Rand, keys []string, numPorts, maxUops int) *portmodel.Mapping {
	m := portmodel.NewMapping(numPorts)
	for _, k := range keys {
		m.Set(k, randomUsage(rng, numPorts, maxUops))
	}
	return m
}

// crossover picks each instruction's usage from one of the parents.
func crossover(rng *rand.Rand, a, b *portmodel.Mapping, keys []string) *portmodel.Mapping {
	child := portmodel.NewMapping(a.NumPorts)
	for _, k := range keys {
		src := a
		if rng.Intn(2) == 1 {
			src = b
		}
		u, _ := src.Get(k)
		child.Set(k, u)
	}
	return child
}

// mutate perturbs a few instructions: toggling a port bit, or adding/
// removing a µop.
func mutate(rng *rand.Rand, m *portmodel.Mapping, keys []string, numPorts, maxUops int) {
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		key := keys[rng.Intn(len(keys))]
		u, _ := m.Get(key)
		u = u.Clone()
		switch {
		case len(u) == 0 || rng.Intn(8) == 0:
			u = randomUsage(rng, numPorts, maxUops)
		case rng.Intn(8) == 0 && len(u) < maxUops:
			u = append(u, portmodel.Uop{Ports: 1 << uint(rng.Intn(numPorts)), Count: 1})
		case rng.Intn(8) == 0 && len(u) > 1:
			u = u[:len(u)-1]
		default:
			j := rng.Intn(len(u))
			ps := u[j].Ports ^ (1 << uint(rng.Intn(numPorts)))
			if ps != 0 {
				u[j].Ports = ps
			}
		}
		m.Set(key, u)
	}
}
