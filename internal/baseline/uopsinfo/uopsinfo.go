// Package uopsinfo implements the original uops.info port mapping
// inference algorithm of Abel & Reineke (ASPLOS 2019), Section 5.1 /
// Algorithm 1 of Ritter & Hack (ASPLOS 2024).
//
// The algorithm requires hardware counters for µops executed *per
// port*. AMD's Zen family does not provide them — that is the entire
// premise of the paper — so this baseline only runs against the
// simulator's Intel-like counter mode. Attempting to run it on a
// processor without per-port counters fails with
// ErrNoPerPortCounters, which is itself part of the reproduction: it
// demonstrates why the paper's algorithm is needed.
package uopsinfo

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
)

// ErrNoPerPortCounters is returned when the processor does not expose
// per-port µop counters.
var ErrNoPerPortCounters = errors.New("uopsinfo: processor has no per-port µop counters (use the paper's algorithm instead)")

// Result is the outcome of the inference.
type Result struct {
	// Mapping is the inferred port mapping.
	Mapping *portmodel.Mapping
	// Blocking lists the selected blocking instructions per port
	// set.
	Blocking map[portmodel.PortSet]string
	// Skipped lists schemes that could not be characterized.
	Skipped []string
}

// Infer runs the uops.info algorithm over the given scheme keys.
func Infer(h *measure.Harness, keys []string) (*Result, error) {
	numPorts := h.P.NumPorts()

	// Step 1: benchmark each instruction alone; read per-port
	// counters to find blocking instructions.
	type single struct {
		key   string
		uops  float64
		ports portmodel.PortSet
		tinv  float64
	}
	singles := make(map[string]single, len(keys))
	blocking := map[portmodel.PortSet]string{}
	var sortedKeys []string
	sortedKeys = append(sortedKeys, keys...)
	sort.Strings(sortedKeys)

	for _, key := range sortedKeys {
		r, err := h.Measure(portmodel.Exp(key))
		if err != nil {
			return nil, err
		}
		if r.PortOps == nil {
			return nil, ErrNoPerPortCounters
		}
		var ps portmodel.PortSet
		for k := 0; k < numPorts && k < len(r.PortOps); k++ {
			if r.PortOps[k] > 0.05 {
				ps |= 1 << uint(k)
			}
		}
		s := single{key: key, uops: r.OpsPerIteration, ports: ps, tinv: r.InvThroughput}
		singles[key] = s
		// Blocking instruction: exactly one µop.
		if math.Abs(s.uops-1) < 0.1 && ps != 0 {
			if _, dup := blocking[ps]; !dup {
				blocking[ps] = key
			}
		}
	}
	if len(blocking) == 0 {
		return nil, fmt.Errorf("uopsinfo: no blocking instructions found")
	}

	// Order blocking instructions by ascending port-set size.
	type blk struct {
		key string
		pu  portmodel.PortSet
	}
	var blks []blk
	for pu, key := range blocking {
		blks = append(blks, blk{key: key, pu: pu})
	}
	sort.Slice(blks, func(a, b int) bool {
		if blks[a].pu.Size() != blks[b].pu.Size() {
			return blks[a].pu.Size() < blks[b].pu.Size()
		}
		return blks[a].pu < blks[b].pu
	})

	// Step 2: Algorithm 1 per scheme.
	res := &Result{Mapping: portmodel.NewMapping(numPorts), Blocking: blocking}
	for _, key := range sortedKeys {
		s := singles[key]
		uopsOf := int(math.Round(s.uops))
		if uopsOf == 0 {
			res.Mapping.Set(key, portmodel.Usage{})
			continue
		}
		found := map[portmodel.PortSet]int{}
		ok := true
		for _, b := range blks {
			k := blockCount(b.pu.Size(), uopsOf, s.tinv)
			e := portmodel.Experiment{}
			e[b.key] += k
			e[key]++ // b.key may equal key: the blocker blocks itself
			r, err := h.Measure(e)
			if err != nil {
				return nil, err
			}
			if r.PortOps == nil {
				return nil, ErrNoPerPortCounters
			}
			onPu := 0.0
			for _, p := range b.pu.Ports() {
				onPu += r.PortOps[p]
			}
			surplus := onPu - float64(k)
			n := int(math.Round(surplus))
			if n < 0 || math.Abs(surplus-float64(n)) > 0.3 {
				ok = false
				break
			}
			for pu, cnt := range found {
				if pu != b.pu && pu.SubsetOf(b.pu) {
					n -= cnt
				}
			}
			if n > 0 {
				found[b.pu] = n
			}
		}
		if !ok {
			res.Skipped = append(res.Skipped, key)
			continue
		}
		var usage portmodel.Usage
		for pu, n := range found {
			usage = append(usage, portmodel.Uop{Ports: pu, Count: n})
		}
		res.Mapping.Set(key, usage.Normalize())
	}
	return res, nil
}

// blockCount is the uops.info k heuristic (§2.3 of Ritter & Hack).
func blockCount(puSize, uops int, tinv float64) int {
	k := 10
	if v := puSize * uops; v > k {
		k = v
	}
	if v := 2 * puSize * maxInt(1, int(tinv)); v > k {
		k = v
	}
	if k > 100 {
		k = 100
	}
	return k
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
