package uopsinfo

import (
	"errors"
	"testing"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

var db = zen.Build()

func intelHarness() *measure.Harness {
	m := zensim.NewMachine(db, zensim.Config{Noise: -1, PerPortCounters: true, DisableAnomalies: true})
	return measure.NewHarness(m)
}

func TestRequiresPerPortCounters(t *testing.T) {
	// On the Zen+ counter configuration the algorithm must refuse —
	// this is the premise of the paper.
	m := zensim.NewMachine(db, zensim.Config{Noise: -1})
	h := measure.NewHarness(m)
	_, err := Infer(h, []string{"add GPR[32], GPR[32]"})
	if !errors.Is(err, ErrNoPerPortCounters) {
		t.Fatalf("err = %v, want ErrNoPerPortCounters", err)
	}
}

func TestInferRecoversGroundTruth(t *testing.T) {
	h := intelHarness()
	keys := []string{
		"add GPR[32], GPR[32]",
		"vpor XMM, XMM, XMM",
		"vpaddd XMM, XMM, XMM",
		"vminps XMM, XMM, XMM",
		"vbroadcastss XMM, XMM",
		"vpaddsw XMM, XMM, XMM",
		"vaddps XMM, XMM, XMM",
		"mov GPR[32], MEM[32]",
		"vpslld XMM, XMM, XMM",
		"vroundps XMM, XMM, IMM[8]",
		"vpmuldq XMM, XMM, XMM",
		"imul GPR[32], GPR[32]",
		"vmovd XMM, GPR[32]",
		// Multi-µop schemes.
		"add GPR[32], MEM[32]",
		"vpaddd YMM, YMM, YMM",
		"add MEM[64], GPR[64]",
	}
	res, err := Infer(h, keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		want := db.MustGet(key).Uops
		if key == "add MEM[64], GPR[64]" {
			// There is no blocking instruction for the store port
			// (§4.1.1/§5.1.1 in the papers), so Algorithm 1 can only
			// attribute the store µop to the enclosing [4,5] set.
			want = portmodel.Usage{
				{Ports: portmodel.MakePortSet(4, 5), Count: 1},
				{Ports: portmodel.MakePortSet(6, 7, 8, 9), Count: 1},
			}
		}
		got, ok := res.Mapping.Get(key)
		if !ok {
			t.Errorf("%s: not inferred (skipped: %v)", key, res.Skipped)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("%s: inferred %v, truth %v", key, got, want)
		}
	}
	if len(res.Blocking) < 10 {
		t.Errorf("only %d blocking port sets found", len(res.Blocking))
	}
}

func TestInferNoPortInstructions(t *testing.T) {
	h := intelHarness()
	res, err := Infer(h, []string{"nop", "add GPR[32], GPR[32]"})
	if err != nil {
		t.Fatal(err)
	}
	u, ok := res.Mapping.Get("nop")
	if !ok || len(u) != 0 {
		t.Fatalf("nop usage = %v", u)
	}
}

func TestBlockCountFormula(t *testing.T) {
	// k = min(100, max(10, |pu|·µops, 2·|pu|·max(1, ⌊tp⌋))).
	if got := blockCount(1, 1, 0.25); got != 10 {
		t.Fatalf("k = %d, want 10", got)
	}
	if got := blockCount(4, 9, 1); got != 36 {
		t.Fatalf("k = %d, want 36", got)
	}
	if got := blockCount(4, 2, 9.5); got != 72 {
		t.Fatalf("k = %d, want 72", got)
	}
	if got := blockCount(4, 50, 1); got != 100 {
		t.Fatalf("k = %d, want 100 (cap)", got)
	}
}

func TestInferEmptyBlockingSet(t *testing.T) {
	h := intelHarness()
	// Only multi-µop schemes: no blocking instruction exists.
	_, err := Infer(h, []string{"add MEM[32], GPR[32]"})
	if err == nil {
		t.Fatal("expected error with no blocking instructions")
	}
}

func TestMappingPredictsThroughput(t *testing.T) {
	h := intelHarness()
	keys := []string{"add GPR[32], GPR[32]", "imul GPR[32], GPR[32]"}
	res, err := Infer(h, keys)
	if err != nil {
		t.Fatal(err)
	}
	e := portmodel.Experiment{"add GPR[32], GPR[32]": 4, "imul GPR[32], GPR[32]": 1}
	tp, err := res.Mapping.InverseThroughput(e)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.Truth().InverseThroughput(e)
	if d := tp - want; d > 1e-6 || d < -1e-6 {
		t.Fatalf("predicted %v, truth %v", tp, want)
	}
}
