// Package isa defines x86-64 instruction schemes (instruction forms)
// in the style of uops.info: a mnemonic with abstract operand slots
// like ⟨GPR[32]⟩ or ⟨MEM[128]⟩. Schemes abstract over concrete
// register choices; the port mapping model is defined over schemes.
//
// The package is purely structural: it knows nothing about any
// particular microarchitecture. Package zen instantiates a database
// of schemes together with AMD Zen+ ground-truth behaviour.
package isa

import (
	"fmt"
	"strings"
)

// OperandKind classifies an operand slot of an instruction scheme.
type OperandKind int

// Operand kinds.
const (
	GPR OperandKind = iota // general-purpose register, Width bits
	XMM                    // 128-bit vector register
	YMM                    // 256-bit vector register
	MEM                    // memory operand, Width bits
	IMM                    // immediate, Width bits
	AH                     // high-byte register (ah/bh/ch/dh)
)

func (k OperandKind) String() string {
	switch k {
	case GPR:
		return "GPR"
	case XMM:
		return "XMM"
	case YMM:
		return "YMM"
	case MEM:
		return "MEM"
	case IMM:
		return "IMM"
	case AH:
		return "AH"
	}
	return fmt.Sprintf("OperandKind(%d)", int(k))
}

// Operand is one operand slot of a scheme.
type Operand struct {
	Kind  OperandKind
	Width int // bits; 0 for XMM/YMM (implied 128/256)
}

// String renders the operand in uops.info style, e.g. "GPR[32]".
func (o Operand) String() string {
	switch o.Kind {
	case XMM, YMM, AH:
		return o.Kind.String()
	default:
		return fmt.Sprintf("%s[%d]", o.Kind, o.Width)
	}
}

// Bits returns the operand's width in bits (128/256 for XMM/YMM).
func (o Operand) Bits() int {
	switch o.Kind {
	case XMM:
		return 128
	case YMM:
		return 256
	case AH:
		return 8
	default:
		return o.Width
	}
}

// Attr is a bitset of scheme attributes relevant to measurement and
// inference. They encode the exclusion criteria of Sections 4.1–4.2
// of the paper.
type Attr uint32

// Scheme attributes.
const (
	// AttrControlFlow marks branches/calls (removed up front).
	AttrControlFlow Attr = 1 << iota
	// AttrSystem marks system instructions (removed up front).
	AttrSystem
	// AttrInputDependent marks input-dependent timing (div etc.,
	// removed up front).
	AttrInputDependent
	// AttrNoPorts marks instructions resolved without execution
	// ports: nops and eliminated 32/64-bit reg-reg movs (§4.1.2).
	AttrNoPorts
	// AttrNonPipelined marks FP ops slower than the model permits:
	// division, square roots, approximate reciprocals (§4.1.2).
	AttrNonPipelined
	// AttrMov64Imm marks 64-bit-immediate movs with unreliable
	// measurements (§4.1.2).
	AttrMov64Imm
	// AttrHardwired marks schemes reading/writing hardwired or
	// ah..dh operands, unmeasurable without dependencies (§4.1.2).
	AttrHardwired
	// AttrUnstablePair marks schemes with unstable measurements when
	// benchmarked together with other instructions: cmov, AES,
	// vcvt*, double-precision FP multiplication (§4.2).
	AttrUnstablePair
	// AttrThreeRead marks FP/vector ops with three read operands
	// (FMA, some blends) that occupy a third port's data lines
	// (§4.2).
	AttrThreeRead
	// AttrMicrocoded marks instructions expanded by the microcode
	// sequencer (§4.4); their measurements show spurious µops.
	AttrMicrocoded
	// AttrCommon marks schemes that occur in compiled SPEC-like
	// binaries; the Figure 5 evaluation samples from these (§4.5).
	AttrCommon
	// AttrImulAnomaly marks the scalar-multiply throughput anomaly
	// of §4.3 (mixtures with ALU ops run slower than the model).
	AttrImulAnomaly
	// AttrVecMulSlow marks vpmuldq-style elaborate vector multiplies
	// whose experiments run slower than their port usage implies
	// (§4.3).
	AttrVecMulSlow
	// AttrXferInconsistent marks vector<->GPR transfers (vmovd) with
	// inconsistent resource conflicts (§4.3).
	AttrXferInconsistent
)

// Has reports whether all bits of q are set.
func (a Attr) Has(q Attr) bool { return a&q == q }

// Scheme is an instruction scheme (instruction form).
type Scheme struct {
	Mnemonic string
	Operands []Operand
	// Extension is the ISA extension, e.g. "BASE", "AVX", "AVX2".
	Extension string
	Attr      Attr
}

// Key returns the canonical scheme string used as the instruction key
// throughout the repository, e.g. "add GPR[32], GPR[32]".
func (s *Scheme) Key() string {
	if len(s.Operands) == 0 {
		return s.Mnemonic
	}
	parts := make([]string, len(s.Operands))
	for i, o := range s.Operands {
		parts[i] = o.String()
	}
	return s.Mnemonic + " " + strings.Join(parts, ", ")
}

// HasMemOperand reports whether any operand is a memory operand, and
// the widest one in bits.
func (s *Scheme) HasMemOperand() (bool, int) {
	w := 0
	for _, o := range s.Operands {
		if o.Kind == MEM && o.Width > w {
			w = o.Width
		}
	}
	return w > 0, w
}

// IsVector reports whether the scheme has an XMM or YMM operand.
func (s *Scheme) IsVector() bool {
	for _, o := range s.Operands {
		if o.Kind == XMM || o.Kind == YMM {
			return true
		}
	}
	return false
}

// Is256 reports whether the scheme operates on 256-bit vectors.
func (s *Scheme) Is256() bool {
	for _, o := range s.Operands {
		if o.Kind == YMM {
			return true
		}
	}
	return false
}

// Op is a convenience constructor for operands.
func Op(kind OperandKind, width int) Operand { return Operand{Kind: kind, Width: width} }

// R returns a GPR operand of the given width.
func R(width int) Operand { return Operand{Kind: GPR, Width: width} }

// M returns a MEM operand of the given width.
func M(width int) Operand { return Operand{Kind: MEM, Width: width} }

// I returns an IMM operand of the given width.
func I(width int) Operand { return Operand{Kind: IMM, Width: width} }

// X returns an XMM operand.
func X() Operand { return Operand{Kind: XMM} }

// Y returns a YMM operand.
func Y() Operand { return Operand{Kind: YMM} }
