package isa

import "testing"

func TestSchemeKey(t *testing.T) {
	cases := []struct {
		s    Scheme
		want string
	}{
		{Scheme{Mnemonic: "add", Operands: []Operand{R(32), R(32)}}, "add GPR[32], GPR[32]"},
		{Scheme{Mnemonic: "vpor", Operands: []Operand{X(), X(), X()}}, "vpor XMM, XMM, XMM"},
		{Scheme{Mnemonic: "vpaddd", Operands: []Operand{Y(), Y(), M(256)}}, "vpaddd YMM, YMM, MEM[256]"},
		{Scheme{Mnemonic: "vroundps", Operands: []Operand{X(), X(), I(8)}}, "vroundps XMM, XMM, IMM[8]"},
		{Scheme{Mnemonic: "nop"}, "nop"},
		{Scheme{Mnemonic: "mov", Operands: []Operand{Op(AH, 8), R(8)}}, "mov AH, GPR[8]"},
	}
	for _, c := range cases {
		if got := c.s.Key(); got != c.want {
			t.Errorf("Key() = %q, want %q", got, c.want)
		}
	}
}

func TestOperandBits(t *testing.T) {
	if X().Bits() != 128 || Y().Bits() != 256 || R(64).Bits() != 64 || Op(AH, 8).Bits() != 8 {
		t.Fatal("Bits wrong")
	}
}

func TestSchemePredicates(t *testing.T) {
	s := Scheme{Mnemonic: "vpaddd", Operands: []Operand{Y(), Y(), M(256)}}
	if !s.IsVector() || !s.Is256() {
		t.Fatal("vector predicates wrong")
	}
	hasMem, w := s.HasMemOperand()
	if !hasMem || w != 256 {
		t.Fatalf("HasMemOperand = %v, %d", hasMem, w)
	}
	scalar := Scheme{Mnemonic: "add", Operands: []Operand{R(32), R(32)}}
	if scalar.IsVector() || scalar.Is256() {
		t.Fatal("scalar predicates wrong")
	}
	if hasMem, _ := scalar.HasMemOperand(); hasMem {
		t.Fatal("scalar has no memory operand")
	}
}

func TestAttrHas(t *testing.T) {
	a := AttrCommon | AttrMicrocoded
	if !a.Has(AttrCommon) || !a.Has(AttrMicrocoded) || a.Has(AttrSystem) {
		t.Fatal("Attr.Has wrong")
	}
	if !a.Has(AttrCommon | AttrMicrocoded) {
		t.Fatal("multi-bit Has wrong")
	}
}

func TestOperandKindString(t *testing.T) {
	for k, want := range map[OperandKind]string{
		GPR: "GPR", XMM: "XMM", YMM: "YMM", MEM: "MEM", IMM: "IMM", AH: "AH",
	} {
		if k.String() != want {
			t.Fatalf("%v != %s", k, want)
		}
	}
	if OperandKind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}
