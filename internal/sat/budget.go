package sat

import (
	"errors"
	"fmt"
	"time"
)

// ErrBudgetExhausted is the sentinel matched by errors.Is when a
// Solve call stops because its Budget ran out. The concrete error is
// always a *BudgetError naming the exhausted resource.
var ErrBudgetExhausted = errors.New("sat: solver budget exhausted")

// BudgetError reports which budget dimension a query exhausted.
type BudgetError struct {
	// Resource is the exhausted dimension: "conflicts",
	// "propagations", "decisions", or "deadline".
	Resource string
	// Limit and Used are the configured bound and the accumulated
	// consumption at the point the solver gave up (zero for
	// "deadline").
	Limit, Used uint64
}

// Error implements error.
func (e *BudgetError) Error() string {
	if e.Resource == "deadline" {
		return "sat: solver budget exhausted: wall deadline passed"
	}
	return fmt.Sprintf("sat: solver budget exhausted: %s %d/%d", e.Resource, e.Used, e.Limit)
}

// Is makes errors.Is(err, ErrBudgetExhausted) match.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExhausted }

// Budget bounds the work of one logical query. A single Budget value
// is typically shared across every Solve call of one DPLL(T)
// refinement loop, so the limits cover the whole query, not each SAT
// sub-search. Zero-valued fields mean "unlimited"; the zero Budget
// never exhausts.
//
// The count limits (conflicts, propagations, decisions) are
// deterministic: the solver consults them only at restart boundaries
// and on Solve entry, so for a fixed formula the search always stops
// at the same point regardless of wall-clock speed. The Deadline is
// inherently wall-clock and therefore not reproducible; it exists as
// the last-resort bound for queries whose count limits were
// misjudged.
type Budget struct {
	// MaxConflicts bounds the total conflicts across the query.
	MaxConflicts uint64
	// MaxPropagations bounds the total unit propagations.
	MaxPropagations uint64
	// MaxDecisions bounds the total branching decisions.
	MaxDecisions uint64
	// Deadline, if non-zero, is the wall-clock instant after which
	// the query is abandoned (checked at restart boundaries).
	Deadline time.Time

	conflicts, propagations, decisions uint64
}

// Used returns the accumulated consumption so far.
func (b *Budget) Used() (conflicts, propagations, decisions uint64) {
	if b == nil {
		return 0, 0, 0
	}
	return b.conflicts, b.propagations, b.decisions
}

// add charges consumption deltas against the budget.
func (b *Budget) add(dc, dp, dd uint64) {
	b.conflicts += dc
	b.propagations += dp
	b.decisions += dd
}

// check returns a *BudgetError when any limit is exceeded, nil
// otherwise. A nil budget never exhausts.
func (b *Budget) check() error {
	if b == nil {
		return nil
	}
	if b.MaxConflicts > 0 && b.conflicts >= b.MaxConflicts {
		return &BudgetError{Resource: "conflicts", Limit: b.MaxConflicts, Used: b.conflicts}
	}
	if b.MaxPropagations > 0 && b.propagations >= b.MaxPropagations {
		return &BudgetError{Resource: "propagations", Limit: b.MaxPropagations, Used: b.propagations}
	}
	if b.MaxDecisions > 0 && b.decisions >= b.MaxDecisions {
		return &BudgetError{Resource: "decisions", Limit: b.MaxDecisions, Used: b.decisions}
	}
	if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
		return &BudgetError{Resource: "deadline"}
	}
	return nil
}

// Stats is a snapshot of a solver's lifetime counters.
type Stats struct {
	// Propagations, Conflicts, Decisions count the core CDCL events.
	Propagations uint64 `json:"propagations"`
	Conflicts    uint64 `json:"conflicts"`
	Decisions    uint64 `json:"decisions"`
	// Restarts counts Luby restarts.
	Restarts uint64 `json:"restarts"`
	// Learned counts clauses learned from conflict analysis.
	Learned uint64 `json:"learned"`
}

// StatsSnapshot returns the solver's lifetime counters.
func (s *Solver) StatsSnapshot() Stats {
	return Stats{
		Propagations: s.propagations,
		Conflicts:    s.conflicts,
		Decisions:    s.decisions,
		Restarts:     s.restarts,
		Learned:      s.learnedN,
	}
}
