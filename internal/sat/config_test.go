package sat

import (
	"context"
	"errors"
	"math"
	"testing"
)

// lubyRef is the textbook recursive definition, used as the oracle for
// the iterative implementation. Only valid for small i (it recurses).
func lubyRef(i int) int {
	for k := 1; ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i < (1<<uint(k))-1 {
			return lubyRef(i - (1 << uint(k-1)) + 1)
		}
	}
}

func TestLubyTable(t *testing.T) {
	// The canonical prefix, straight from Luby, Sinclair & Zuckerman.
	want := []int{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(i + 1); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
	for i := 1; i <= 64; i++ {
		if got, ref := luby(i), lubyRef(i); got != ref {
			t.Fatalf("luby(%d) = %d, reference = %d", i, got, ref)
		}
	}
}

func TestLubyLargeIndex(t *testing.T) {
	// Ends of complete subsequences: luby(2^k - 1) = 2^(k-1). The old
	// recursive implementation overflowed its shift bookkeeping (and
	// blew the stack) long before these indices.
	for k := uint(1); k <= 62; k++ {
		i := (1 << k) - 1
		if got, want := luby(i), 1<<(k-1); got != want {
			t.Fatalf("luby(2^%d-1) = %d, want %d", k, got, want)
		}
	}
	// Arbitrary huge indices must terminate and return a power of two
	// bounded by the enclosing subsequence.
	for _, i := range []int{1 << 40, (1 << 40) + 12345, math.MaxInt64, math.MaxInt64 - 7} {
		got := luby(i)
		if got < 1 || got&(got-1) != 0 {
			t.Fatalf("luby(%d) = %d, want a positive power of two", i, got)
		}
	}
	if got := luby(math.MaxInt64); got != 1<<62 {
		t.Fatalf("luby(MaxInt64) = %d, want 2^62", got)
	}
	// Defensive clamp for nonsensical indices.
	if got := luby(0); got != 1 {
		t.Fatalf("luby(0) = %d, want 1", got)
	}
}

func TestNewSolverConfigZeroMatchesDefault(t *testing.T) {
	// The zero Config must reproduce NewSolver exactly — same result
	// and the same search trajectory (identical counters).
	a := buildPHP(t, 6, 5)
	b := func() *Solver {
		s := NewSolverConfig(Config{})
		x := make([][]int, 6)
		for p := 0; p < 6; p++ {
			x[p] = make([]int, 5)
			for h := 0; h < 5; h++ {
				x[p][h] = s.NewVar()
			}
		}
		for p := 0; p < 6; p++ {
			row := make([]int, 5)
			copy(row, x[p])
			mustAdd(t, s, row...)
		}
		for h := 0; h < 5; h++ {
			for p1 := 0; p1 < 6; p1++ {
				for p2 := p1 + 1; p2 < 6; p2++ {
					mustAdd(t, s, -x[p1][h], -x[p2][h])
				}
			}
		}
		return s
	}()
	ra, rb := a.Solve(), b.Solve()
	if ra != Unsat || rb != Unsat {
		t.Fatalf("Solve = %v, %v; want Unsat, Unsat", ra, rb)
	}
	if sa, sb := a.StatsSnapshot(), b.StatsSnapshot(); sa != sb {
		t.Fatalf("trajectories diverged: %+v vs %+v", sa, sb)
	}
}

func TestConfigDiversifiedSolversStayCorrect(t *testing.T) {
	configs := []Config{
		{Seed: 1},
		{Seed: 42, LubyUnit: 16},
		{LubyUnit: 256, PosPolarity: true},
		{Seed: 7, Decay: 0.85},
		{Seed: 99, LubyUnit: 32, PosPolarity: true, Decay: 0.99},
	}
	for i, cfg := range configs {
		// UNSAT stays UNSAT under any heuristic.
		s := NewSolverConfig(cfg)
		x := make([][]int, 6)
		for p := 0; p < 6; p++ {
			x[p] = make([]int, 5)
			for h := 0; h < 5; h++ {
				x[p][h] = s.NewVar()
			}
		}
		for p := 0; p < 6; p++ {
			row := make([]int, 5)
			copy(row, x[p])
			mustAdd(t, s, row...)
		}
		for h := 0; h < 5; h++ {
			for p1 := 0; p1 < 6; p1++ {
				for p2 := p1 + 1; p2 < 6; p2++ {
					mustAdd(t, s, -x[p1][h], -x[p2][h])
				}
			}
		}
		if r := s.Solve(); r != Unsat {
			t.Fatalf("config %d: PHP(6,5) = %v, want Unsat", i, r)
		}

		// SAT models must satisfy the clauses under any heuristic.
		q := NewSolverConfig(cfg)
		a, b, c := q.NewVar(), q.NewVar(), q.NewVar()
		mustAdd(t, q, a, b)
		mustAdd(t, q, -a, c)
		mustAdd(t, q, -b, -c)
		if r := q.Solve(); r != Sat {
			t.Fatalf("config %d: Solve = %v, want Sat", i, r)
		}
		sat1 := q.Model(a) || q.Model(b)
		sat2 := !q.Model(a) || q.Model(c)
		sat3 := !q.Model(b) || !q.Model(c)
		if !sat1 || !sat2 || !sat3 {
			t.Fatalf("config %d: model violates clauses", i)
		}
	}
}

func TestSteppedSolveMatchesUninterrupted(t *testing.T) {
	// The portfolio layer chops one search into many small budgeted
	// steps. Because budget stops land only on Luby restart boundaries
	// and a resumed call continues the restart schedule, the stepped
	// search must visit exactly the same conflicts as one
	// uninterrupted call: same answer, same final counters.
	ref := buildPHP(t, 8, 7)
	if r := ref.Solve(); r != Unsat {
		t.Fatalf("reference Solve = %v, want Unsat", r)
	}
	refStats := ref.StatsSnapshot()

	stepped := buildPHP(t, 8, 7)
	b := &Budget{}
	var r Result
	var err error
	for steps := 0; ; steps++ {
		if steps > 100000 {
			t.Fatal("stepped solve did not terminate")
		}
		b.MaxConflicts += 50
		r, err = stepped.SolveBudget(context.Background(), b)
		if errors.Is(err, ErrBudgetExhausted) {
			continue
		}
		if err != nil {
			t.Fatalf("SolveBudget error: %v", err)
		}
		break
	}
	if r != Unsat {
		t.Fatalf("stepped Solve = %v, want Unsat", r)
	}
	if got := stepped.StatsSnapshot(); got != refStats {
		t.Fatalf("stepped trajectory diverged from uninterrupted:\n got %+v\nwant %+v", got, refStats)
	}
}
