// Package sat implements a conflict-driven clause-learning (CDCL)
// boolean satisfiability solver with two-watched-literal propagation,
// first-UIP conflict analysis, VSIDS-style activity-based branching,
// and Luby-sequence restarts.
//
// It serves as the in-process replacement for the off-the-shelf SMT
// solver (z3) used by Ritter & Hack (ASPLOS 2024): package smt layers
// the port-mapping throughput theory on top of this solver in a
// DPLL(T)-style loop, adding theory lemmas as learned clauses.
package sat

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Lit is a literal: a variable index with a sign. Variables are
// numbered from 1; literal encoding is 2*v for the positive literal
// and 2*v+1 for the negative literal (MiniSat convention).
type Lit int

// NewLit builds a literal for variable v (v >= 1). neg selects the
// negative polarity.
func NewLit(v int, neg bool) Lit {
	if v < 1 {
		panic("sat: variable indices start at 1")
	}
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l) >> 1 }

// Neg reports whether the literal is negated.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complementary literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal like "x3" or "¬x3".
func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("¬x%d", l.Var())
	}
	return fmt.Sprintf("x%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

// Result is the outcome of a Solve call.
type Result int

// Solve outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}

// ErrTrivialUnsat is returned by AddClause when the clause set became
// unsatisfiable at level 0.
var ErrTrivialUnsat = errors.New("sat: formula is trivially unsatisfiable")

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with NewSolver.
type Solver struct {
	numVars int

	clauses []*clause // problem + learned clauses

	// watches[lit] lists clauses watching lit.
	watches [][]*clause

	assign  []lbool // indexed by variable
	level   []int   // decision level per variable
	reason  []*clause
	trail   []Lit
	trailLl []int // trail length at each decision level

	// propagatedTo is the trail prefix already unit-propagated.
	propagatedTo int

	activity []float64
	varInc   float64
	polarity []bool // phase saving

	// Diversification knobs (see Config). The zero values are
	// normalized to the classic defaults by NewSolver/NewSolverConfig.
	lubyUnit    int     // conflicts per Luby unit between restarts
	decayFactor float64 // VSIDS decay divisor
	posPolarity bool    // initial phase for fresh variables
	rng         uint64  // splitmix64 state for activity jitter; 0 = off

	// lubySeq is the next Luby restart index when the previous
	// SolveBudget call was interrupted (budget/ctx) mid-search, so a
	// resumed call continues the restart schedule instead of starting
	// over. Zero means the next call starts a fresh schedule. This is
	// what makes a budget-stepped search conflict-for-conflict
	// identical to an uninterrupted one: interruptions happen only at
	// restart boundaries, and resuming replays no work.
	lubySeq int

	order []int // lazily sorted decision order scratch

	propagations uint64
	conflicts    uint64
	decisions    uint64
	restarts     uint64
	learnedN     uint64

	// failedAssumptions is the final-conflict core of the last
	// assumption-based Solve that returned Unsat: a subset of the
	// assumption literals that is already inconsistent with the
	// clause set. Nil when the last Unsat was independent of the
	// assumptions (the formula itself is unsatisfiable).
	failedAssumptions []Lit

	rootUnsat bool
}

// Config selects the search heuristics of a solver. The zero value
// reproduces the classic defaults exactly (NewSolver() ==
// NewSolverConfig(Config{})), so diversified portfolio members can be
// described as deltas from one canonical baseline.
type Config struct {
	// Seed, when non-zero, salts every fresh variable's initial VSIDS
	// activity with a tiny deterministic jitter (splitmix64 stream),
	// diversifying branch-variable tie-breaks without materially
	// changing activity dynamics. Zero disables jitter: fresh
	// variables start at activity 0 and ties break by lowest index.
	Seed uint64
	// LubyUnit is the conflict count multiplied by the Luby sequence
	// to budget each restart. <= 0 means the default 64.
	LubyUnit int
	// PosPolarity makes fresh variables branch positive-first.
	// Default (false) branches negative-first.
	PosPolarity bool
	// Decay is the VSIDS activity decay divisor in (0, 1).
	// Out-of-range means the default 0.95.
	Decay float64
}

// NewSolver creates a solver with no variables and default heuristics.
func NewSolver() *Solver {
	return NewSolverConfig(Config{})
}

// NewSolverConfig creates a solver with no variables and the given
// heuristic configuration.
func NewSolverConfig(cfg Config) *Solver {
	if cfg.LubyUnit <= 0 {
		cfg.LubyUnit = 64
	}
	if cfg.Decay <= 0 || cfg.Decay >= 1 {
		cfg.Decay = 0.95
	}
	return &Solver{
		varInc:      1,
		watches:     make([][]*clause, 2),
		lubyUnit:    cfg.LubyUnit,
		decayFactor: cfg.Decay,
		posPolarity: cfg.PosPolarity,
		rng:         cfg.Seed,
	}
}

// splitmix64 advances *state and returns the next value of the
// splitmix64 stream: a tiny, high-quality deterministic generator.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewVar adds a fresh variable and returns its index (>= 1).
func (s *Solver) NewVar() int {
	s.numVars++
	act := 0.0
	if s.rng != 0 {
		// Jitter in [0, 1e-3): far below the first bump (varInc
		// starts at 1), so it only perturbs tie-breaks.
		act = float64(splitmix64(&s.rng)>>11) / float64(1<<53) * 1e-3
	}
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, act)
	s.polarity = append(s.polarity, s.posPolarity)
	s.watches = append(s.watches, nil, nil)
	return s.numVars
}

// NumVars returns the number of variables created.
func (s *Solver) NumVars() int { return s.numVars }

// Stats returns (propagations, conflicts, decisions) counters.
func (s *Solver) Stats() (uint64, uint64, uint64) {
	return s.propagations, s.conflicts, s.decisions
}

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()-1]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLl) }

// AddClause adds a clause over the given literals. It must be called
// before Solve (or between Solve calls; the solver resets its trail).
// Returns ErrTrivialUnsat if the formula became unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) error {
	s.backtrackTo(0)
	// Normalize: dedupe, drop clauses with x and ¬x, drop false lits.
	sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
	out := lits[:0]
	for i, l := range lits {
		if l.Var() < 1 || l.Var() > s.numVars {
			return fmt.Errorf("sat: literal %v references unknown variable", l)
		}
		if i > 0 && l == lits[i-1] {
			continue
		}
		if i > 0 && l == lits[i-1].Not() {
			return nil // tautology
		}
		switch s.value(l) {
		case lTrue:
			return nil // already satisfied at root
		case lFalse:
			continue // drop root-false literal
		}
		out = append(out, l)
	}
	switch len(out) {
	case 0:
		s.rootUnsat = true
		return ErrTrivialUnsat
	case 1:
		if !s.enqueue(out[0], nil) {
			s.rootUnsat = true
			return ErrTrivialUnsat
		}
		if s.propagate() != nil {
			s.rootUnsat = true
			return ErrTrivialUnsat
		}
		return nil
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.attach(c)
	s.clauses = append(s.clauses, c)
	return nil
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0].Not(), c.lits[1].Not()
	s.watches[w0] = append(s.watches[w0], c)
	s.watches[w1] = append(s.watches[w1], c)
}

// enqueue assigns literal l to true with the given reason clause.
// Returns false on conflict with the current assignment.
func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var() - 1
	if l.Neg() {
		s.assign[v] = lFalse
	} else {
		s.assign[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation over the watched literals.
// Returns the conflicting clause, or nil.
func (s *Solver) propagate() *clause {
	qhead := s.propagatedTo
	for qhead < len(s.trail) {
		l := s.trail[qhead]
		qhead++
		s.propagations++
		ws := s.watches[l]
		kept := ws[:0]
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			// Ensure c.lits[0] is the other watcher.
			if c.lits[0] == l.Not() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for j := 2; j < len(c.lits); j++ {
				if s.value(c.lits[j]) != lFalse {
					c.lits[1], c.lits[j] = c.lits[j], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				// Conflict: keep remaining watchers and bail.
				kept = append(kept, ws[i+1:]...)
				s.watches[l] = kept
				s.propagatedTo = len(s.trail)
				return c
			}
		}
		s.watches[l] = kept
	}
	s.propagatedTo = qhead
	return nil
}

// backtrackTo undoes assignments above the given decision level.
func (s *Solver) backtrackTo(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLl[lvl]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var() - 1
		s.polarity[v] = s.assign[v] == lTrue
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:bound]
	s.trailLl = s.trailLl[:lvl]
	if s.propagatedTo > len(s.trail) {
		s.propagatedTo = len(s.trail)
	}
}

// analyze performs first-UIP conflict analysis. Returns the learned
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learned := []Lit{0} // placeholder for asserting literal
	seen := make([]bool, s.numVars)
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	c := confl
	for {
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.Var() - 1
			if seen[v] || s.level[v] == 0 {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v] == s.decisionLevel() {
				counter++
			} else {
				learned = append(learned, q)
			}
		}
		// Pick the next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()-1] {
			idx--
		}
		p = s.trail[idx]
		c = s.reason[p.Var()-1]
		seen[p.Var()-1] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
	}
	learned[0] = p.Not()

	// Compute backjump level: max level among non-asserting literals.
	bjLevel := 0
	if len(learned) > 1 {
		maxI := 1
		for i := 2; i < len(learned); i++ {
			if s.level[learned[i].Var()-1] > s.level[learned[maxI].Var()-1] {
				maxI = i
			}
		}
		learned[1], learned[maxI] = learned[maxI], learned[1]
		bjLevel = s.level[learned[1].Var()-1]
	}
	return learned, bjLevel
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) decayVar() { s.varInc /= s.decayFactor }

// pickBranchVar selects the unassigned variable with highest activity.
func (s *Solver) pickBranchVar() int {
	best, bestAct := -1, -1.0
	for v := 0; v < s.numVars; v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby returns the i-th element (1-based) of the Luby restart
// sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... Iterative and
// overflow-safe for any int index: all intermediate values are powers
// of two (minus one) computed in uint64, which cannot wrap for
// i <= MaxInt64.
func luby(i int) int {
	if i < 1 {
		return 1
	}
	x := uint64(i - 1) // 0-based position
	// Find the smallest complete subsequence (length 2^seq - 1)
	// containing position x.
	size, seq := uint64(1), uint(0)
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	// Descend into nested subsequences until x is the final element.
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << seq
}

// Solve determines satisfiability of the clause set under the given
// assumption literals. On Sat, Model reports variable values. It is
// SolveBudget with no cancellation and no budget.
func (s *Solver) Solve(assumptions ...Lit) Result {
	r, _ := s.SolveBudget(context.Background(), nil, assumptions...)
	return r
}

// SolveBudget is Solve under supervision: the search observes ctx and
// charges its conflicts/propagations/decisions against budget (nil =
// unlimited). Both are consulted only on entry and at Luby restart
// boundaries, so for the count limits the stopping point is a
// deterministic function of the formula, not of wall-clock speed.
// When the search is stopped early the solver backtracks to the root
// and returns (Unknown, err) where err is the ctx error or a
// *BudgetError matching ErrBudgetExhausted; the solver remains usable
// (clauses learned so far are kept, and a later call resumes cheaper).
//
// A resumed call continues the Luby restart schedule where the
// interrupted one left off, so chopping one search into many budgeted
// steps visits exactly the same conflicts in the same order as a
// single uninterrupted call. The portfolio layer in package smt
// depends on this to keep its round-stepped canonical member
// byte-identical to the plain single-solver path.
//
// On Unsat under assumptions, FailedAssumptions reports the
// final-conflict core.
func (s *Solver) SolveBudget(ctx context.Context, budget *Budget, assumptions ...Lit) (Result, error) {
	s.failedAssumptions = nil
	if s.rootUnsat {
		s.lubySeq = 0
		return Unsat, nil
	}

	// lastC/lastP/lastD are the counter values already charged to the
	// budget; settle charges only the delta since the previous call so
	// one shared Budget can supervise many Solve calls cumulatively.
	lastC, lastP, lastD := s.conflicts, s.propagations, s.decisions
	settle := func() {
		if budget != nil {
			budget.add(s.conflicts-lastC, s.propagations-lastP, s.decisions-lastD)
			lastC, lastP, lastD = s.conflicts, s.propagations, s.decisions
		}
	}
	defer settle()
	supervise := func() error {
		settle()
		if err := ctx.Err(); err != nil {
			return err
		}
		return budget.check()
	}

	if err := supervise(); err != nil {
		s.backtrackTo(0)
		return Unknown, err
	}

	s.backtrackTo(0)
	if s.propagate() != nil {
		s.rootUnsat = true
		s.lubySeq = 0
		return Unsat, nil
	}

	restartNum := s.lubySeq
	if restartNum < 1 {
		restartNum = 1
	}
	conflictBudget := s.lubyUnit * luby(restartNum)
	conflictsHere := 0

	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				s.rootUnsat = true
				s.lubySeq = 0
				return Unsat, nil
			}
			learned, bjLevel := s.analyze(confl)
			s.backtrackTo(bjLevel)
			if len(learned) == 1 {
				if !s.enqueue(learned[0], nil) {
					s.rootUnsat = true
					s.lubySeq = 0
					return Unsat, nil
				}
			} else {
				c := &clause{lits: learned, learned: true}
				s.attach(c)
				s.clauses = append(s.clauses, c)
				s.learnedN++
				s.enqueue(learned[0], c)
			}
			s.decayVar()
			continue
		}

		if conflictsHere >= conflictBudget {
			// Restart boundary: the only supervision point inside the
			// search, so count-limited and cancelled queries always
			// stop at a Luby-aligned state.
			s.restarts++
			restartNum++
			conflictBudget = s.lubyUnit * luby(restartNum)
			conflictsHere = 0
			s.backtrackTo(0)
			if err := supervise(); err != nil {
				s.lubySeq = restartNum
				return Unknown, err
			}
			continue
		}

		// All assumptions satisfied?
		assumptionsOK := true
		for _, a := range assumptions {
			switch s.value(a) {
			case lFalse:
				// The trail falsifies assumption a: extract which
				// assumptions that falsification depended on.
				s.failedAssumptions = s.analyzeFinal(a)
				s.lubySeq = 0
				return Unsat, nil
			case lUndef:
				assumptionsOK = false
				s.trailLl = append(s.trailLl, len(s.trail))
				s.enqueue(a, nil)
			}
			if !assumptionsOK {
				break
			}
		}
		if !assumptionsOK {
			continue
		}

		v := s.pickBranchVar()
		if v == -1 {
			s.lubySeq = 0
			return Sat, nil
		}
		s.decisions++
		s.trailLl = append(s.trailLl, len(s.trail))
		s.enqueue(NewLit(v+1, !s.polarity[v]), nil)
	}
}

// FailedAssumptions returns the final-conflict core of the last Solve
// that returned Unsat under assumptions: a subset of the assumption
// literals already inconsistent with the clause set. Nil when the
// formula is unsatisfiable on its own (no assumptions implicated).
// The core is sound but not necessarily minimal.
func (s *Solver) FailedAssumptions() []Lit {
	if s.failedAssumptions == nil {
		return nil
	}
	return append([]Lit(nil), s.failedAssumptions...)
}

// analyzeFinal computes the subset of assumption literals implied in
// falsifying assumption p (MiniSat's analyzeFinal): it walks the
// implication graph from ¬p back to the decisions it depends on. At
// the point Solve detects a false assumption, every reason-free trail
// literal above level 0 is an enqueued assumption, so exactly those
// are collected.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	core := []Lit{p}
	if s.decisionLevel() == 0 {
		// ¬p is a root consequence of the clause set: p alone is
		// inconsistent with the formula.
		return core
	}
	seen := make([]bool, s.numVars)
	seen[p.Var()-1] = true
	bound := s.trailLl[0]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].Var() - 1
		if !seen[v] {
			continue
		}
		if s.reason[v] == nil {
			core = append(core, s.trail[i])
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.Var()-1] > 0 {
					seen[q.Var()-1] = true
				}
			}
		}
		seen[v] = false
	}
	return core
}

// Model returns the value of variable v in the last satisfying
// assignment. Only valid immediately after Solve returned Sat.
func (s *Solver) Model(v int) bool {
	if v < 1 || v > s.numVars {
		panic(fmt.Sprintf("sat: variable %d out of range", v))
	}
	return s.assign[v-1] == lTrue
}
