package sat

// Cardinality constraint encodings. The CEGAR encoding of package smt
// constrains each µop to use exactly n ports, so we provide
// AtMostK/AtLeastK/ExactlyK over arbitrary literal sets using the
// sequential-counter encoding (Sinz 2005), which is unit-propagation
// complete and introduces O(n·k) auxiliary variables.

// AddAtMostK constrains that at most k of the literals are true.
func (s *Solver) AddAtMostK(lits []Lit, k int) error {
	n := len(lits)
	if k < 0 {
		// No literal may be true; in fact the constraint is
		// unsatisfiable if any literal exists and k < 0 only when a
		// literal is forced; encode as all-false.
		for _, l := range lits {
			if err := s.AddClause(l.Not()); err != nil {
				return err
			}
		}
		return nil
	}
	if k >= n {
		return nil // trivially satisfied
	}
	if k == 0 {
		for _, l := range lits {
			if err := s.AddClause(l.Not()); err != nil {
				return err
			}
		}
		return nil
	}
	// Sequential counter: r[i][j] means "at least j+1 of lits[0..i] are true".
	r := make([][]Lit, n)
	for i := 0; i < n; i++ {
		r[i] = make([]Lit, k)
		for j := 0; j < k; j++ {
			r[i][j] = NewLit(s.NewVar(), false)
		}
	}
	for i := 0; i < n; i++ {
		// lits[i] -> r[i][0]
		if err := s.AddClause(lits[i].Not(), r[i][0]); err != nil {
			return err
		}
		if i > 0 {
			for j := 0; j < k; j++ {
				// r[i-1][j] -> r[i][j]
				if err := s.AddClause(r[i-1][j].Not(), r[i][j]); err != nil {
					return err
				}
			}
			for j := 1; j < k; j++ {
				// lits[i] ∧ r[i-1][j-1] -> r[i][j]
				if err := s.AddClause(lits[i].Not(), r[i-1][j-1].Not(), r[i][j]); err != nil {
					return err
				}
			}
			// lits[i] ∧ r[i-1][k-1] -> conflict
			if err := s.AddClause(lits[i].Not(), r[i-1][k-1].Not()); err != nil {
				return err
			}
		}
	}
	return nil
}

// AddAtLeastK constrains that at least k of the literals are true,
// implemented as at-most-(n-k) of the negations.
func (s *Solver) AddAtLeastK(lits []Lit, k int) error {
	if k <= 0 {
		return nil
	}
	n := len(lits)
	if k > n {
		// Unsatisfiable: force the empty clause.
		return s.AddClause()
	}
	neg := make([]Lit, n)
	for i, l := range lits {
		neg[i] = l.Not()
	}
	return s.AddAtMostK(neg, n-k)
}

// AddExactlyK constrains that exactly k of the literals are true.
func (s *Solver) AddExactlyK(lits []Lit, k int) error {
	if err := s.AddAtMostK(lits, k); err != nil {
		return err
	}
	return s.AddAtLeastK(lits, k)
}
