package sat

import (
	"math/rand"
	"testing"
)

func lits(s *Solver, vs ...int) []Lit {
	out := make([]Lit, len(vs))
	for i, v := range vs {
		if v > 0 {
			out[i] = NewLit(v, false)
		} else {
			out[i] = NewLit(-v, true)
		}
	}
	return out
}

func mustAdd(t *testing.T, s *Solver, vs ...int) {
	t.Helper()
	if err := s.AddClause(lits(s, vs...)...); err != nil {
		t.Fatalf("AddClause(%v): %v", vs, err)
	}
}

func TestTrivialSat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	mustAdd(t, s, a)
	if r := s.Solve(); r != Sat {
		t.Fatalf("result %v", r)
	}
	if !s.Model(a) {
		t.Fatal("unit clause not satisfied")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	mustAdd(t, s, a)
	if err := s.AddClause(lits(s, -a)...); err != ErrTrivialUnsat {
		t.Fatalf("expected ErrTrivialUnsat, got %v", err)
	}
	if r := s.Solve(); r != Unsat {
		t.Fatalf("result %v", r)
	}
}

func TestSmallUnsat(t *testing.T) {
	// (a ∨ b) ∧ (a ∨ ¬b) ∧ (¬a ∨ b) ∧ (¬a ∨ ¬b)
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	mustAdd(t, s, a, b)
	mustAdd(t, s, a, -b)
	mustAdd(t, s, -a, b)
	if err := s.AddClause(lits(s, -a, -b)...); err != nil && err != ErrTrivialUnsat {
		t.Fatal(err)
	}
	if r := s.Solve(); r != Unsat {
		t.Fatalf("result %v, want UNSAT", r)
	}
}

func TestImplicationChain(t *testing.T) {
	s := NewSolver()
	const n = 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		mustAdd(t, s, -vars[i], vars[i+1])
	}
	mustAdd(t, s, vars[0])
	if r := s.Solve(); r != Sat {
		t.Fatalf("result %v", r)
	}
	for i := range vars {
		if !s.Model(vars[i]) {
			t.Fatalf("chain variable %d not propagated", i)
		}
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons in 3 holes is UNSAT and requires real search.
	s := NewSolver()
	const pigeons, holes = 4, 3
	x := [pigeons][holes]int{}
	for p := 0; p < pigeons; p++ {
		for h := 0; h < holes; h++ {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		cl := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			cl[h] = NewLit(x[p][h], false)
		}
		if err := s.AddClause(cl...); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				mustAdd(t, s, -x[p1][h], -x[p2][h])
			}
		}
	}
	if r := s.Solve(); r != Unsat {
		t.Fatalf("PHP(4,3) = %v, want UNSAT", r)
	}
}

func TestPigeonholeSat(t *testing.T) {
	// PHP(3,3) is SAT.
	s := NewSolver()
	const n = 3
	x := [n][n]int{}
	for p := 0; p < n; p++ {
		for h := 0; h < n; h++ {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < n; p++ {
		cl := make([]Lit, n)
		for h := 0; h < n; h++ {
			cl[h] = NewLit(x[p][h], false)
		}
		if err := s.AddClause(cl...); err != nil {
			t.Fatal(err)
		}
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				mustAdd(t, s, -x[p1][h], -x[p2][h])
			}
		}
	}
	if r := s.Solve(); r != Sat {
		t.Fatalf("PHP(3,3) = %v, want SAT", r)
	}
	// Verify the model is a proper assignment.
	for p := 0; p < n; p++ {
		cnt := 0
		for h := 0; h < n; h++ {
			if s.Model(x[p][h]) {
				cnt++
			}
		}
		if cnt < 1 {
			t.Fatalf("pigeon %d unplaced", p)
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	mustAdd(t, s, -a, b) // a -> b
	if r := s.Solve(NewLit(a, false), NewLit(b, true)); r != Unsat {
		t.Fatalf("assumptions a ∧ ¬b should be UNSAT, got %v", r)
	}
	// The solver must remain usable without assumptions.
	if r := s.Solve(); r != Sat {
		t.Fatalf("formula without assumptions should be SAT, got %v", r)
	}
	if r := s.Solve(NewLit(a, false)); r != Sat {
		t.Fatalf("assumption a should be SAT, got %v", r)
	}
	if !s.Model(b) {
		t.Fatal("a -> b not propagated under assumption")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	mustAdd(t, s, a, -a) // tautology: dropped
	mustAdd(t, s, b, b)  // duplicate: collapses to unit
	if r := s.Solve(); r != Sat {
		t.Fatalf("result %v", r)
	}
	if !s.Model(b) {
		t.Fatal("duplicate-literal unit clause not enforced")
	}
}

func TestAddClauseUnknownVar(t *testing.T) {
	s := NewSolver()
	if err := s.AddClause(NewLit(3, false)); err == nil {
		t.Fatal("expected error for unknown variable")
	}
}

func TestLitHelpers(t *testing.T) {
	l := NewLit(5, false)
	if l.Var() != 5 || l.Neg() {
		t.Fatal("positive literal broken")
	}
	n := l.Not()
	if n.Var() != 5 || !n.Neg() {
		t.Fatal("negation broken")
	}
	if l.String() != "x5" || n.String() != "¬x5" {
		t.Fatalf("String: %q %q", l.String(), n.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewLit(0) should panic")
		}
	}()
	NewLit(0, false)
}

func TestResultString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Result.String broken")
	}
}

// brute checks satisfiability of a clause set by enumeration.
func brute(nvars int, clauses [][]int) bool {
	for m := 0; m < 1<<uint(nvars); m++ {
		ok := true
		for _, cl := range clauses {
			sat := false
			for _, l := range cl {
				v := l
				if v < 0 {
					v = -v
				}
				val := m&(1<<uint(v-1)) != 0
				if (l > 0) == val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce fuzzes the solver against a
// brute-force enumerator on small random 3-SAT instances.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	iters := 400
	if testing.Short() {
		iters = 100
	}
	for it := 0; it < iters; it++ {
		nvars := 3 + r.Intn(8)
		nclauses := 2 + r.Intn(5*nvars)
		clauses := make([][]int, nclauses)
		for i := range clauses {
			k := 1 + r.Intn(3)
			cl := make([]int, k)
			for j := range cl {
				v := 1 + r.Intn(nvars)
				if r.Intn(2) == 0 {
					v = -v
				}
				cl[j] = v
			}
			clauses[i] = cl
		}
		want := brute(nvars, clauses)

		s := NewSolver()
		vars := make([]int, nvars)
		for i := range vars {
			vars[i] = s.NewVar()
		}
		rootUnsat := false
		for _, cl := range clauses {
			ls := make([]Lit, len(cl))
			for j, l := range cl {
				if l > 0 {
					ls[j] = NewLit(vars[l-1], false)
				} else {
					ls[j] = NewLit(vars[-l-1], true)
				}
			}
			if err := s.AddClause(ls...); err == ErrTrivialUnsat {
				rootUnsat = true
				break
			} else if err != nil {
				t.Fatal(err)
			}
		}
		got := !rootUnsat && s.Solve() == Sat
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", it, got, want, clauses)
		}
		if got {
			// Check the model actually satisfies all clauses.
			for _, cl := range clauses {
				ok := false
				for _, l := range cl {
					v := l
					if v < 0 {
						v = -v
					}
					if (l > 0) == s.Model(vars[v-1]) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model violates clause %v", it, cl)
				}
			}
		}
	}
}

func countTrue(s *Solver, vars []int) int {
	n := 0
	for _, v := range vars {
		if s.Model(v) {
			n++
		}
	}
	return n
}

func TestAtMostK(t *testing.T) {
	for k := 0; k <= 5; k++ {
		s := NewSolver()
		vars := make([]int, 5)
		ls := make([]Lit, 5)
		for i := range vars {
			vars[i] = s.NewVar()
			ls[i] = NewLit(vars[i], false)
		}
		if err := s.AddAtMostK(ls, k); err != nil {
			t.Fatal(err)
		}
		if r := s.Solve(); r != Sat {
			t.Fatalf("k=%d: %v", k, r)
		}
		if got := countTrue(s, vars); got > k {
			t.Fatalf("k=%d: %d true", k, got)
		}
		// Forcing k+1 variables true must be UNSAT.
		if k < 5 {
			assum := make([]Lit, k+1)
			for i := 0; i <= k; i++ {
				assum[i] = NewLit(vars[i], false)
			}
			if r := s.Solve(assum...); r != Unsat {
				t.Fatalf("k=%d: forcing %d true gave %v", k, k+1, r)
			}
		}
	}
}

func TestAtLeastKAndExactlyK(t *testing.T) {
	for k := 0; k <= 4; k++ {
		s := NewSolver()
		vars := make([]int, 4)
		ls := make([]Lit, 4)
		for i := range vars {
			vars[i] = s.NewVar()
			ls[i] = NewLit(vars[i], false)
		}
		if err := s.AddExactlyK(ls, k); err != nil {
			t.Fatal(err)
		}
		if r := s.Solve(); r != Sat {
			t.Fatalf("k=%d: %v", k, r)
		}
		if got := countTrue(s, vars); got != k {
			t.Fatalf("k=%d: %d true", k, got)
		}
	}
	// k > n is UNSAT.
	s := NewSolver()
	v := s.NewVar()
	err := s.AddAtLeastK([]Lit{NewLit(v, false)}, 2)
	if err != ErrTrivialUnsat && s.Solve() != Unsat {
		t.Fatal("at-least-2-of-1 should be UNSAT")
	}
}

// TestExactlyKEnumeration enumerates all models of an exactly-k
// constraint via blocking clauses and checks the count is C(n,k).
func TestExactlyKEnumeration(t *testing.T) {
	s := NewSolver()
	n, k := 6, 3
	vars := make([]int, n)
	ls := make([]Lit, n)
	for i := range vars {
		vars[i] = s.NewVar()
		ls[i] = NewLit(vars[i], false)
	}
	if err := s.AddExactlyK(ls, k); err != nil {
		t.Fatal(err)
	}
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 100 {
			t.Fatal("runaway enumeration")
		}
		// Block this projection onto vars.
		block := make([]Lit, n)
		for i, v := range vars {
			if s.Model(v) {
				block[i] = NewLit(v, true)
			} else {
				block[i] = NewLit(v, false)
			}
		}
		if err := s.AddClause(block...); err == ErrTrivialUnsat {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if count != 20 { // C(6,3)
		t.Fatalf("enumerated %d models, want 20", count)
	}
}

func TestStatsAdvance(t *testing.T) {
	s := NewSolver()
	a, b := s.NewVar(), s.NewVar()
	mustAdd(t, s, a, b)
	mustAdd(t, s, -a, b)
	s.Solve()
	p, _, _ := s.Stats()
	if p == 0 {
		t.Fatal("no propagations recorded")
	}
}
