package sat

import (
	"context"
	"errors"
	"testing"
	"time"
)

// buildPHP encodes the pigeonhole principle PHP(pigeons, holes): every
// pigeon gets a hole, no hole holds two pigeons. UNSAT when
// pigeons > holes, and hard enough for CDCL to need real search.
func buildPHP(t *testing.T, pigeons, holes int) *Solver {
	t.Helper()
	s := NewSolver()
	x := make([][]int, pigeons)
	for p := 0; p < pigeons; p++ {
		x[p] = make([]int, holes)
		for h := 0; h < holes; h++ {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		row := make([]int, holes)
		copy(row, x[p])
		mustAdd(t, s, row...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				mustAdd(t, s, -x[p1][h], -x[p2][h])
			}
		}
	}
	return s
}

func TestBudgetConflictsExhausted(t *testing.T) {
	s := buildPHP(t, 8, 7)
	b := &Budget{MaxConflicts: 10}
	r, err := s.SolveBudget(context.Background(), b)
	if r != Unknown {
		t.Fatalf("SolveBudget = %v, want Unknown", r)
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BudgetError", err)
	}
	if be.Resource != "conflicts" {
		t.Fatalf("Resource = %q, want conflicts", be.Resource)
	}
	if c, _, _ := b.Used(); c < b.MaxConflicts {
		t.Fatalf("Used conflicts = %d, want >= %d", c, b.MaxConflicts)
	}
}

func TestBudgetPropagationsAndDecisions(t *testing.T) {
	for _, tc := range []struct {
		name     string
		budget   Budget
		resource string
	}{
		{"propagations", Budget{MaxPropagations: 5}, "propagations"},
		{"decisions", Budget{MaxDecisions: 2}, "decisions"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := buildPHP(t, 8, 7)
			b := tc.budget
			r, err := s.SolveBudget(context.Background(), &b)
			if r != Unknown || !errors.Is(err, ErrBudgetExhausted) {
				t.Fatalf("SolveBudget = %v, %v; want Unknown, budget exhausted", r, err)
			}
			var be *BudgetError
			if !errors.As(err, &be) || be.Resource != tc.resource {
				t.Fatalf("err = %v, want *BudgetError{%s}", err, tc.resource)
			}
		})
	}
}

func TestBudgetDeadline(t *testing.T) {
	s := buildPHP(t, 8, 7)
	b := &Budget{Deadline: time.Now().Add(-time.Second)}
	r, err := s.SolveBudget(context.Background(), b)
	if r != Unknown || !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("SolveBudget = %v, %v; want Unknown, budget exhausted", r, err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "deadline" {
		t.Fatalf("err = %v, want deadline BudgetError", err)
	}
}

func TestBudgetZeroNeverExhausts(t *testing.T) {
	s := buildPHP(t, 4, 3)
	b := &Budget{} // all zero fields = unlimited
	r, err := s.SolveBudget(context.Background(), b)
	if r != Unsat || err != nil {
		t.Fatalf("SolveBudget = %v, %v; want Unsat, nil", r, err)
	}
	if c, p, d := b.Used(); c == 0 || p == 0 || d == 0 {
		t.Fatalf("Used() = %d,%d,%d; want all non-zero", c, p, d)
	}
}

func TestBudgetCumulativeAcrossSolves(t *testing.T) {
	// One budget shared by consecutive Solve calls covers the whole
	// query: the second call starts from the first call's consumption.
	s := buildPHP(t, 8, 7)
	b := &Budget{MaxConflicts: 20}
	if r, err := s.SolveBudget(context.Background(), b); r != Unknown || !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("first SolveBudget = %v, %v; want exhausted", r, err)
	}
	c0, _, _ := b.Used()
	r, err := s.SolveBudget(context.Background(), b)
	if r != Unknown || !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second SolveBudget = %v, %v; want exhausted", r, err)
	}
	if c1, _, _ := b.Used(); c1 < c0 {
		t.Fatalf("cumulative conflicts went backwards: %d -> %d", c0, c1)
	}
}

func TestBudgetDeterministicStop(t *testing.T) {
	// Count-limited stops must land on the same counters every time.
	run := func() (uint64, uint64, uint64) {
		s := buildPHP(t, 8, 7)
		b := &Budget{MaxConflicts: 50}
		if r, err := s.SolveBudget(context.Background(), b); r != Unknown || err == nil {
			t.Fatalf("SolveBudget = %v, %v; want Unknown + error", r, err)
		}
		return b.Used()
	}
	c1, p1, d1 := run()
	c2, p2, d2 := run()
	if c1 != c2 || p1 != p2 || d1 != d2 {
		t.Fatalf("non-deterministic stop: (%d,%d,%d) vs (%d,%d,%d)", c1, p1, d1, c2, p2, d2)
	}
}

func TestSolveBudgetCancellation(t *testing.T) {
	s := buildPHP(t, 8, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := s.SolveBudget(ctx, nil)
	if r != Unknown || !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveBudget = %v, %v; want Unknown, context.Canceled", r, err)
	}
	// The solver must remain usable after cancellation.
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve after cancel = %v, want Unsat", r)
	}
}

func TestSolverUsableAfterExhaustion(t *testing.T) {
	s := buildPHP(t, 8, 7)
	b := &Budget{MaxConflicts: 3}
	if r, err := s.SolveBudget(context.Background(), b); r != Unknown || err == nil {
		t.Fatalf("SolveBudget = %v, %v; want Unknown + error", r, err)
	}
	// Unlimited re-solve finishes the search with the learned clauses kept.
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve after exhaustion = %v, want Unsat", r)
	}
}

func TestFailedAssumptionsCore(t *testing.T) {
	// x1..x4 with (¬x1 ∨ ¬x2): assuming x1, x2, x3 is UNSAT and the
	// core must implicate x1 and x2 but not x3.
	s := NewSolver()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	_ = s.NewVar()
	mustAdd(t, s, -a, -b)
	la, lb, lc := NewLit(a, false), NewLit(b, false), NewLit(c, false)
	if r := s.Solve(la, lb, lc); r != Unsat {
		t.Fatalf("Solve = %v, want Unsat", r)
	}
	core := s.FailedAssumptions()
	if len(core) == 0 {
		t.Fatal("FailedAssumptions() empty, want a core")
	}
	got := map[Lit]bool{}
	for _, l := range core {
		got[l] = true
	}
	if !got[la] || !got[lb] {
		t.Fatalf("core %v must contain both %v and %v", core, la, lb)
	}
	if got[lc] {
		t.Fatalf("core %v must not contain irrelevant assumption %v", core, lc)
	}
}

func TestFailedAssumptionsContradictoryPair(t *testing.T) {
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	mustAdd(t, s, a, b) // keep the formula non-trivial
	la := NewLit(a, false)
	if r := s.Solve(la, la.Not()); r != Unsat {
		t.Fatalf("Solve = %v, want Unsat", r)
	}
	core := s.FailedAssumptions()
	got := map[Lit]bool{}
	for _, l := range core {
		got[l] = true
	}
	if !got[la] || !got[la.Not()] {
		t.Fatalf("core %v, want {%v, %v}", core, la, la.Not())
	}
}

func TestFailedAssumptionsNilOnStructuralUnsat(t *testing.T) {
	// Formula UNSAT regardless of assumptions: no assumptions implicated.
	s := buildPHP(t, 4, 3)
	extra := s.NewVar()
	if r := s.Solve(NewLit(extra, false)); r != Unsat {
		t.Fatalf("Solve = %v, want Unsat", r)
	}
	if core := s.FailedAssumptions(); core != nil {
		t.Fatalf("FailedAssumptions() = %v, want nil for structural UNSAT", core)
	}
}

func TestFailedAssumptionsRootImpliedFalse(t *testing.T) {
	// Unit clause ¬a makes assumption a false at level 0: the core is
	// {a} alone.
	s := NewSolver()
	a := s.NewVar()
	b := s.NewVar()
	mustAdd(t, s, -a)
	la := NewLit(a, false)
	if r := s.Solve(la, NewLit(b, false)); r != Unsat {
		t.Fatalf("Solve = %v, want Unsat", r)
	}
	core := s.FailedAssumptions()
	if len(core) != 1 || core[0] != la {
		t.Fatalf("core = %v, want [%v]", core, la)
	}
}

func TestStatsSnapshot(t *testing.T) {
	s := buildPHP(t, 6, 5)
	if r := s.Solve(); r != Unsat {
		t.Fatalf("Solve = %v, want Unsat", r)
	}
	st := s.StatsSnapshot()
	if st.Conflicts == 0 || st.Propagations == 0 || st.Decisions == 0 {
		t.Fatalf("StatsSnapshot() = %+v; want non-zero core counters", st)
	}
	if st.Learned == 0 {
		t.Fatalf("StatsSnapshot() = %+v; want learned clauses on PHP", st)
	}
	p, c, d := s.Stats()
	if p != st.Propagations || c != st.Conflicts || d != st.Decisions {
		t.Fatalf("Stats() = %d,%d,%d disagrees with snapshot %+v", p, c, d, st)
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	e := &BudgetError{Resource: "conflicts", Limit: 10, Used: 12}
	if e.Error() == "" || !errors.Is(e, ErrBudgetExhausted) {
		t.Fatalf("BudgetError not wired: %v", e)
	}
	d := &BudgetError{Resource: "deadline"}
	if d.Error() == "" {
		t.Fatal("deadline BudgetError has empty message")
	}
}
