// Package eval reproduces the accuracy evaluation of Section 4.5 /
// Figure 5 of Ritter & Hack (ASPLOS 2024): random dependency-free
// basic blocks of five instructions are benchmarked on the (simulated)
// Zen+ machine, every model predicts their IPC, and the predictions
// are compared via MAPE, Pearson correlation, and Kendall's τ, plus
// predicted-vs-measured heatmaps.
package eval

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/stats"
)

// Predictor predicts the IPC of a dependency-free instruction
// sequence. The three contenders of Figure 5 all implement it.
type Predictor interface {
	Name() string
	PredictIPC(e portmodel.Experiment) (float64, error)
}

// MappingPredictor wraps a port mapping (ours or PMEvo's) with the
// Rmax bottleneck applied, as the paper does for its own model.
// Predictions run through a compiled evaluator (portmodel.Compiled),
// built lazily on first use or pre-seeded via Compiled, and are
// bit-identical to Mapping.IPC.
type MappingPredictor struct {
	Label   string
	Mapping *portmodel.Mapping
	// Rmax caps the IPC (0 = no cap; the paper does not cap PMEvo).
	Rmax float64
	// Compiled optionally pre-seeds the compiled evaluator, so one
	// compiled mapping can be shared with other consumers. Leave nil
	// to compile lazily from Mapping.
	Compiled *portmodel.Compiled

	compileFailed bool
}

// Name returns the predictor label.
func (p *MappingPredictor) Name() string { return p.Label }

// PredictIPC implements Predictor.
func (p *MappingPredictor) PredictIPC(e portmodel.Experiment) (float64, error) {
	if p.Compiled == nil && !p.compileFailed {
		c, err := portmodel.CompileMapping(p.Mapping, nil)
		if err != nil {
			p.compileFailed = true
		} else {
			p.Compiled = c
		}
	}
	if p.Compiled != nil {
		return p.Compiled.IPC(e, p.Rmax)
	}
	return p.Mapping.IPC(e, p.Rmax)
}

// FuncPredictor adapts a prediction function (used for the
// Palmed-style conjunctive model).
type FuncPredictor struct {
	Label string
	Fn    func(e portmodel.Experiment) (float64, error)
}

// Name returns the predictor label.
func (p *FuncPredictor) Name() string { return p.Label }

// PredictIPC implements Predictor.
func (p *FuncPredictor) PredictIPC(e portmodel.Experiment) (float64, error) {
	return p.Fn(e)
}

// Block is one evaluation basic block with its measured IPC.
type Block struct {
	Exp portmodel.Experiment
	IPC float64
}

// SampleBlocks generates n random dependency-free blocks of
// blockLen instructions drawn from keys and measures their IPC.
func SampleBlocks(h *measure.Harness, keys []string, n, blockLen int, seed int64) ([]Block, error) {
	return SampleBlocksContext(context.Background(), h, keys, n, blockLen, seed)
}

// SampleBlocksContext is SampleBlocks with cancellation. The block
// set is generated first — the RNG draw order is independent of
// measurement outcomes — and then measured as one engine batch.
func SampleBlocksContext(ctx context.Context, h *measure.Harness, keys []string, n, blockLen int, seed int64) ([]Block, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("eval: no schemes to sample from")
	}
	rng := rand.New(rand.NewSource(seed))
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	exps := make([]portmodel.Experiment, n)
	for i := 0; i < n; i++ {
		e := make(portmodel.Experiment)
		for j := 0; j < blockLen; j++ {
			e[sorted[rng.Intn(len(sorted))]]++
		}
		exps[i] = e
	}
	results, err := h.MeasureBatch(ctx, exps)
	if err != nil {
		return nil, err
	}
	blocks := make([]Block, 0, n)
	for i, e := range exps {
		if results[i].InvThroughput <= 0 {
			continue
		}
		blocks = append(blocks, Block{Exp: e, IPC: float64(e.Len()) / results[i].InvThroughput})
	}
	return blocks, nil
}

// ModelResult is one row of Figure 5(a) plus the heatmap of 5(b–d).
type ModelResult struct {
	Name     string
	MAPE     float64
	Pearson  float64
	Kendall  float64
	Heatmap  *stats.Histogram2D
	Failures int // blocks the model could not predict
}

// Evaluate scores every predictor on the blocks. The heatmaps bucket
// measured (x) vs predicted (y) IPC on a 0..ipcMax grid.
func Evaluate(blocks []Block, preds []Predictor, ipcMax float64, bins int) ([]ModelResult, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("eval: no blocks")
	}
	var out []ModelResult
	for _, p := range preds {
		var predV, measV []float64
		hm := stats.NewHistogram2D(ipcMax, ipcMax, bins)
		failures := 0
		for _, b := range blocks {
			ipc, err := p.PredictIPC(b.Exp)
			if err != nil || math.IsInf(ipc, 0) || math.IsNaN(ipc) {
				failures++
				continue
			}
			predV = append(predV, ipc)
			measV = append(measV, b.IPC)
			hm.Add(b.IPC, ipc)
		}
		if len(predV) < 2 {
			return nil, fmt.Errorf("eval: %s predicted too few blocks (%d failures)", p.Name(), failures)
		}
		mape, err := stats.MAPE(predV, measV)
		if err != nil {
			return nil, err
		}
		// Degenerate predictors (constant output) have undefined
		// correlations; report 0 rather than failing the evaluation.
		pcc, err := stats.Pearson(predV, measV)
		if err != nil {
			pcc = 0
		}
		tau, err := stats.KendallTau(predV, measV)
		if err != nil {
			tau = 0
		}
		out = append(out, ModelResult{
			Name: p.Name(), MAPE: mape, Pearson: pcc, Kendall: tau,
			Heatmap: hm, Failures: failures,
		})
	}
	return out, nil
}

// FormatTable renders Figure 5(a): MAPE, PCC, τ_K per model.
func FormatTable(results []ModelResult) string {
	out := fmt.Sprintf("%-12s %8s %8s %8s\n", "", "MAPE", "PCC", "τK")
	for _, r := range results {
		out += fmt.Sprintf("%-12s %7.1f%% %8.2f %8.2f\n", r.Name, r.MAPE*100, r.Pearson, r.Kendall)
	}
	return out
}
