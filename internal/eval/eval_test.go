package eval

import (
	"testing"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

var db = zen.Build()

func harness() *measure.Harness {
	m := zensim.NewMachine(db, zensim.Config{Noise: -1, DisableAnomalies: true})
	return measure.NewHarness(m)
}

var keys = []string{
	"add GPR[32], GPR[32]",
	"vpor XMM, XMM, XMM",
	"vpaddd XMM, XMM, XMM",
	"vminps XMM, XMM, XMM",
	"mov GPR[32], MEM[32]",
	"vpslld XMM, XMM, XMM",
	"add GPR[32], MEM[32]",
}

func TestSampleBlocksDeterministic(t *testing.T) {
	h := harness()
	b1, err := SampleBlocks(h, keys, 20, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := SampleBlocks(h, keys, 20, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != 20 || len(b2) != 20 {
		t.Fatalf("lengths %d/%d", len(b1), len(b2))
	}
	for i := range b1 {
		if b1[i].Exp.String() != b2[i].Exp.String() || b1[i].IPC != b2[i].IPC {
			t.Fatal("sampling not deterministic for fixed seed")
		}
	}
	for _, b := range b1 {
		if b.Exp.Len() != 5 {
			t.Fatalf("block length %d", b.Exp.Len())
		}
		if b.IPC <= 0 || b.IPC > 5.01 {
			t.Fatalf("implausible IPC %v", b.IPC)
		}
	}
}

func TestEvaluatePerfectPredictor(t *testing.T) {
	h := harness()
	blocks, err := SampleBlocks(h, keys, 50, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The ground-truth mapping with the Rmax cap is essentially a
	// perfect predictor on the anomaly-free machine.
	truth := &MappingPredictor{Label: "truth", Mapping: db.Truth(), Rmax: 5}
	res, err := Evaluate(blocks, []Predictor{truth}, 5.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("got %d results", len(res))
	}
	r := res[0]
	if r.MAPE > 0.01 {
		t.Fatalf("perfect predictor MAPE %v", r.MAPE)
	}
	if r.Pearson < 0.99 || r.Kendall < 0.95 {
		t.Fatalf("perfect predictor correlations %v/%v", r.Pearson, r.Kendall)
	}
	if r.Heatmap.Total() != len(blocks) {
		t.Fatalf("heatmap holds %d of %d", r.Heatmap.Total(), len(blocks))
	}
}

func TestEvaluateBadPredictorScoresWorse(t *testing.T) {
	h := harness()
	blocks, err := SampleBlocks(h, keys, 50, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	constPred := &FuncPredictor{Label: "const", Fn: func(e portmodel.Experiment) (float64, error) {
		return 1.0, nil
	}}
	truth := &MappingPredictor{Label: "truth", Mapping: db.Truth(), Rmax: 5}
	res, err := Evaluate(blocks, []Predictor{truth, constPred}, 5.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].MAPE <= res[0].MAPE {
		t.Fatalf("constant predictor (%v) should be worse than truth (%v)", res[1].MAPE, res[0].MAPE)
	}
	table := FormatTable(res)
	if len(table) == 0 {
		t.Fatal("empty table")
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil, nil, 5, 10); err == nil {
		t.Fatal("empty blocks accepted")
	}
	if _, err := SampleBlocks(harness(), nil, 5, 5, 1); err == nil {
		t.Fatal("empty key set accepted")
	}
}
