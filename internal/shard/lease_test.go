package shard

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestLeaseAcquireBeatRelease: the basic tenure of a single owner.
func TestLeaseAcquireBeatRelease(t *testing.T) {
	dir := t.TempDir()
	h, l, err := TryAcquire(dir, "owner-a")
	if err != nil {
		t.Fatal(err)
	}
	if h == nil {
		t.Fatal("fresh directory: acquisition refused")
	}
	if l.Epoch != 1 || l.Owner != "owner-a" {
		t.Fatalf("fresh lease = %+v, want epoch 1 owner-a", l)
	}
	if err := h.Beat(7); err != nil {
		t.Fatal(err)
	}
	obs, err := Observe(dir)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Beat != 7 || obs.Epoch != 1 {
		t.Fatalf("observed %+v, want epoch 1 beat 7", obs)
	}
	// Beats never go backwards.
	if err := h.Beat(3); err != nil {
		t.Fatal(err)
	}
	obs, _ = Observe(dir)
	if obs.Beat != 7 {
		t.Fatalf("beat went backwards: %+v", obs)
	}
	if err := h.Release(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseLiveOwnerBlocks: while an owner holds the lease, a second
// acquirer is refused and handed the current observation.
func TestLeaseLiveOwnerBlocks(t *testing.T) {
	dir := t.TempDir()
	h, _, err := TryAcquire(dir, "owner-a")
	if err != nil || h == nil {
		t.Fatalf("first acquire: %v %v", h, err)
	}
	defer h.Release()
	h2, obs, err := TryAcquire(dir, "owner-b")
	if err != nil {
		t.Fatal(err)
	}
	if h2 != nil {
		t.Fatal("second acquire succeeded while owner alive")
	}
	if obs.Owner != "owner-a" || obs.Epoch != 1 {
		t.Fatalf("observation = %+v, want owner-a epoch 1", obs)
	}
}

// TestLeaseDeadOwnerTakeover: a released owner lock (what the kernel
// does on any process death, SIGKILL included) lets the next acquirer
// take over immediately with a higher epoch.
func TestLeaseDeadOwnerTakeover(t *testing.T) {
	dir := t.TempDir()
	h, _, err := TryAcquire(dir, "owner-a")
	if err != nil || h == nil {
		t.Fatalf("first acquire: %v %v", h, err)
	}
	h.Release() // the kernel's flock release on process death

	h2, l2, err := TryAcquire(dir, "owner-b")
	if err != nil {
		t.Fatal(err)
	}
	if h2 == nil {
		t.Fatal("takeover of dead owner refused")
	}
	defer h2.Release()
	if l2.Epoch != 2 || l2.Owner != "owner-b" {
		t.Fatalf("takeover lease = %+v, want epoch 2 owner-b", l2)
	}
}

// TestLeaseStealHungOwner: a live owner whose beat froze is displaced
// by Steal; its next Beat reports ErrLeaseLost.
func TestLeaseStealHungOwner(t *testing.T) {
	dir := t.TempDir()
	hung, _, err := TryAcquire(dir, "owner-a")
	if err != nil || hung == nil {
		t.Fatalf("first acquire: %v %v", hung, err)
	}
	defer hung.Release()
	_ = hung.Beat(4)

	// The thief observes the live owner...
	h2, obs, err := TryAcquire(dir, "owner-b")
	if err != nil || h2 != nil {
		t.Fatalf("expected refusal while owner alive: %v %v", h2, err)
	}
	// ...and, after its staleness threshold elapsed, steals.
	stolen, l2, err := Steal(dir, "owner-b", obs)
	if err != nil {
		t.Fatal(err)
	}
	if stolen == nil {
		t.Fatal("steal of frozen owner refused")
	}
	defer stolen.Release()
	if l2.Epoch != 2 {
		t.Fatalf("stolen lease = %+v, want epoch 2", l2)
	}
	if err := hung.Beat(5); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("displaced owner's Beat = %v, want ErrLeaseLost", err)
	}
	if !hung.Lost() {
		t.Fatal("displaced owner did not latch Lost")
	}
	if err := stolen.Beat(1); err != nil {
		t.Fatalf("new owner's Beat: %v", err)
	}
}

// TestLeaseStealAbortsOnProgress: Steal re-validates under the lock —
// an owner that advanced its beat between observation and steal keeps
// the lease.
func TestLeaseStealAbortsOnProgress(t *testing.T) {
	dir := t.TempDir()
	h, _, err := TryAcquire(dir, "owner-a")
	if err != nil || h == nil {
		t.Fatalf("acquire: %v %v", h, err)
	}
	defer h.Release()
	_, obs, err := TryAcquire(dir, "owner-b")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Beat(obs.Beat + 10); err != nil {
		t.Fatal(err)
	}
	stolen, cur, err := Steal(dir, "owner-b", obs)
	if err != nil {
		t.Fatal(err)
	}
	if stolen != nil {
		t.Fatal("steal succeeded although the owner advanced")
	}
	if cur.Beat != obs.Beat+10 {
		t.Fatalf("current lease = %+v, want beat %d", cur, obs.Beat+10)
	}
	if err := h.Beat(cur.Beat + 1); err != nil {
		t.Fatalf("surviving owner's Beat: %v", err)
	}
}

// TestLeaseEpochSkipsPersistedFiles: a takeover epoch lands strictly
// above any epoch that ever wrote a journal or snapshot in the
// directory, even when the lease file is gone — so a recovered
// directory can never hand out a writer epoch that collides with old
// state.
func TestLeaseEpochSkipsPersistedFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "journal-e0005.zpj"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	h, l, err := TryAcquire(dir, "owner-a")
	if err != nil || h == nil {
		t.Fatalf("acquire: %v %v", h, err)
	}
	defer h.Release()
	if l.Epoch != 6 {
		t.Fatalf("epoch = %d, want 6 (above persisted journal-e0005)", l.Epoch)
	}
}
