package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"zenport/internal/persist"
)

// Lease file layout inside a slice directory:
//
//	lease.json        — current {owner, epoch, beat}, written atomically
//	lease.lock        — short-lived flock serializing lease mutations
//	owner-eNNNN.lock  — flock held by epoch NNNN's owner for its tenure
//
// Ownership of a slice is the lease.json epoch; the per-epoch owner
// lock exists to make *death* detectable instantly: the kernel drops
// flocks the moment the holding process exits (SIGKILL included), so a
// probe of the current epoch's owner lock distinguishes a dead owner
// (probe succeeds → take over now) from a live one (probe fails →
// watch the heartbeat). A live-but-hung owner keeps its lock and
// freezes its beat, which is what the staleness threshold and Steal
// are for. Takeover bumps the epoch, and the persist layer keys all
// journal/snapshot files by epoch, so a displaced owner that wakes up
// can neither write into the new owner's files nor pass a Beat check
// again.
const (
	leaseFile = "lease.json"
	leaseLock = "lease.lock"
)

// ErrLeaseLost reports that the caller's lease epoch is no longer the
// slice's current epoch: another shard declared this one dead or hung
// and took the slice over. The holder must stop working on the slice;
// everything it wrote remains confined to its own epoch's files.
var ErrLeaseLost = errors.New("shard: lease lost to another owner")

// Lease is the published ownership state of one slice.
type Lease struct {
	// Owner identifies the current owner (informational; ownership is
	// the epoch).
	Owner string `json:"owner"`
	// Epoch is the writer epoch of the current owner. Every takeover
	// increments it past anything ever persisted in the directory.
	Epoch uint64 `json:"epoch"`
	// Beat is the owner's monotonic heartbeat counter. An owner that
	// stops advancing it for the staleness threshold is presumed hung.
	Beat uint64 `json:"beat"`
}

// ownerLockName is the tenure lock file of one epoch's owner.
func ownerLockName(epoch uint64) string {
	return fmt.Sprintf("owner-e%04d.lock", epoch)
}

// Handle is a held slice lease: the owner lock of its epoch plus the
// bookkeeping to detect displacement.
type Handle struct {
	dir       string
	owner     string
	epoch     uint64
	ownerLock *persist.FileLock
	lost      atomic.Bool
}

// Epoch returns the lease's writer epoch, the epoch to open the slice
// store under.
func (h *Handle) Epoch() uint64 { return h.epoch }

// Lost reports whether a Beat discovered the lease was stolen.
func (h *Handle) Lost() bool { return h.lost.Load() }

// Release drops the owner lock. The lease file keeps its epoch: a
// later TryAcquire simply probes, finds the epoch's owner dead, and
// takes over with the next epoch.
func (h *Handle) Release() error {
	return h.ownerLock.Unlock()
}

// Beat publishes the owner's progress counter and verifies the lease
// is still ours. The counter must be monotonic for the holder (the
// engine's Progress is); Beat keeps the published value monotonic
// regardless. It returns ErrLeaseLost — and latches Lost — when the
// slice was stolen.
func (h *Handle) Beat(progress uint64) error {
	if h.lost.Load() {
		return ErrLeaseLost
	}
	lk, err := persist.LockFile(filepath.Join(h.dir, leaseLock))
	if err != nil {
		return err
	}
	defer lk.Unlock()
	cur, err := readLease(h.dir)
	if err != nil {
		return err
	}
	if cur.Epoch != h.epoch {
		h.lost.Store(true)
		return ErrLeaseLost
	}
	if progress <= cur.Beat {
		return nil
	}
	cur.Beat = progress
	return writeLease(h.dir, cur)
}

// TryAcquire attempts to become the owner of a slice directory without
// waiting. Under the lease mutation lock it probes the current epoch's
// owner lock: a successful probe means the previous owner is dead (or
// the slice was never owned) and the caller takes over immediately
// with a fresh epoch. A failed probe means a live process owns the
// slice; the caller gets (nil, observed lease) and should track the
// observed (epoch, beat) for staleness before resorting to Steal.
func TryAcquire(dir, owner string) (*Handle, Lease, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Lease{}, err
	}
	lk, err := persist.LockFile(filepath.Join(dir, leaseLock))
	if err != nil {
		return nil, Lease{}, err
	}
	defer lk.Unlock()
	cur, err := readLease(dir)
	if err != nil {
		return nil, Lease{}, err
	}
	probe, err := persist.TryLockFile(filepath.Join(dir, ownerLockName(cur.Epoch)))
	if err != nil {
		return nil, Lease{}, err
	}
	if probe == nil {
		return nil, cur, nil
	}
	defer probe.Unlock()
	h, l, err := takeoverLocked(dir, owner, cur)
	return h, l, err
}

// Steal takes a slice over from a live but presumed-hung owner. The
// caller must have observed the lease at `observed` and seen it
// unchanged for the agreed staleness threshold; Steal re-checks under
// the mutation lock and aborts (nil handle, current lease) if the
// owner advanced in the meantime. On success the hung owner is
// displaced: its next Beat returns ErrLeaseLost, and its epoch's files
// are left untouched for recovery to merge.
func Steal(dir, owner string, observed Lease) (*Handle, Lease, error) {
	lk, err := persist.LockFile(filepath.Join(dir, leaseLock))
	if err != nil {
		return nil, Lease{}, err
	}
	defer lk.Unlock()
	cur, err := readLease(dir)
	if err != nil {
		return nil, Lease{}, err
	}
	if cur.Epoch != observed.Epoch || cur.Beat != observed.Beat {
		return nil, cur, nil
	}
	return takeoverLocked(dir, owner, cur)
}

// takeoverLocked installs the caller as the slice's owner under a
// fresh epoch. The new epoch is strictly above both the current lease
// epoch and every epoch that ever persisted a file in the directory
// (persist.MaxEpoch), so even if the lease file was deleted the new
// owner can never collide with old state. Caller holds the mutation
// lock.
func takeoverLocked(dir, owner string, cur Lease) (*Handle, Lease, error) {
	maxE, err := persist.MaxEpoch(dir)
	if err != nil {
		return nil, cur, err
	}
	epoch := cur.Epoch
	if maxE > epoch {
		epoch = maxE
	}
	epoch++
	ol, err := persist.TryLockFile(filepath.Join(dir, ownerLockName(epoch)))
	if err != nil {
		return nil, cur, err
	}
	if ol == nil {
		return nil, cur, fmt.Errorf("shard: fresh epoch %d owner lock already held in %s", epoch, dir)
	}
	next := Lease{Owner: owner, Epoch: epoch}
	if err := writeLease(dir, next); err != nil {
		ol.Unlock()
		return nil, cur, err
	}
	return &Handle{dir: dir, owner: owner, epoch: epoch, ownerLock: ol}, next, nil
}

// Observe reads the current lease without touching ownership. The
// lease file is written atomically, so a lock-free read is safe; a
// missing file reads as the zero lease (epoch 0, never owned).
func Observe(dir string) (Lease, error) {
	return readLease(dir)
}

func readLease(dir string) (Lease, error) {
	data, err := os.ReadFile(filepath.Join(dir, leaseFile))
	if os.IsNotExist(err) {
		return Lease{}, nil
	}
	if err != nil {
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, fmt.Errorf("shard: corrupt lease in %s: %w", dir, err)
	}
	return l, nil
}

func writeLease(dir string, l Lease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(filepath.Join(dir, leaseFile), data)
}
