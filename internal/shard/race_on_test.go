//go:build race

package shard_test

// raceEnabled is true in race-instrumented builds; redundant in-process
// campaign variants are skipped there — the subprocess soak re-execs
// the race-built binary and covers the same ground with the detector on.
const raceEnabled = true
