package shard_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"zenport/internal/chaos"
	"zenport/internal/core"
	"zenport/internal/isa"
	"zenport/internal/measure"
	"zenport/internal/persist"
	"zenport/internal/portmodel"
	"zenport/internal/shard"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

// The shard soak proves the tentpole claim end to end: a campaign
// partitioned across shard processes — including one shard SIGKILLed
// mid-stage-4 and its slice stolen by a survivor — merges to a mapping
// byte-identical to the single-process golden run. The kill is a real
// process death (os.Exit(137) via the chaos crash fault, no deferred
// cleanup, flocks released by the kernel), exercised through the
// re-exec'd test binary.

const (
	soakSeed      = 42
	soakChaosSeed = 1234
	soakShards    = 3

	envHelper  = "ZENPORT_SHARD_SOAK_HELPER"
	envDir     = "ZENPORT_SHARD_DIR"
	envID      = "ZENPORT_SHARD_ID"
	envWorkers = "ZENPORT_SHARD_WORKERS"
	envCrash   = "ZENPORT_SHARD_CRASH"
)

// soakKeys mirrors the chaos soak's golden subset: six blocking
// classes, improper blockers, multi-µop schemes, and a no-port scheme,
// so every pipeline stage runs in every shard while staying small
// enough to repeat across processes.
func soakKeys() []string {
	return []string{
		"add GPR[32], GPR[32]",
		"vpor XMM, XMM, XMM",
		"vpaddd XMM, XMM, XMM",
		"vminps XMM, XMM, XMM",
		"mov GPR[32], MEM[32]",
		"vpslld XMM, XMM, XMM",
		"sub GPR[32], GPR[32]",
		"vpand XMM, XMM, XMM",
		"mov MEM[32], GPR[32]",
		"vmovapd MEM[128], XMM",
		"add GPR[32], MEM[32]",
		"add MEM[32], GPR[32]",
		"vpor YMM, YMM, YMM",
		"nop",
		"mov GPR[64], GPR[64]",
	}
}

func soakSchemes(db *zen.DB) []isa.Scheme {
	var out []isa.Scheme
	for _, k := range soakKeys() {
		out = append(out, db.MustGet(k).Scheme)
	}
	return out
}

// soakRegime is a mild chaos mix (transients, outliers, stuck
// counters): the shards must converge on the fault-free golden bytes
// *through* the fault regime, same as the single-process chaos soak.
func soakRegime() chaos.Regime {
	return chaos.Regime{
		TransientRate: 0.02,
		MaxPreFaults:  2,
		OutlierRate:   0.01,
		OutlierFactor: 10,
		StuckRate:     0.005,
	}
}

// newSoakProcessor builds the chaos-wrapped simulated machine of one
// shard process. crashAfter > 0 arms the process-kill fault.
func newSoakProcessor(db *zen.DB, crashAfter uint64) *chaos.Processor {
	reg := soakRegime()
	reg.CrashAfterCalls = crashAfter
	m := zensim.NewMachine(db, zensim.Config{Noise: 0.001, Seed: soakSeed})
	return chaos.New(m, soakChaosSeed, reg)
}

// campaignFingerprint computes the fingerprint every shard of the soak
// campaign runs under. CrashAfterCalls is absent from the chaos
// fingerprint by design, so the killed shard and its thief agree.
func campaignFingerprint() string {
	db := zen.Build()
	cp := newSoakProcessor(db, 0)
	h := measure.NewHarness(cp)
	return cp.Fingerprint() + "|" + h.Engine.Fingerprint()
}

// sliceRunCallback wires one slice execution the way cmd/zeninfer
// does: fresh machine, chaos wrapper, epoch-scoped persist store,
// slice-local checkpointer, resume on, stage 4 filtered to the slice.
func sliceRunCallback(workers int, crashAfter uint64, logf func(string, ...any)) func(context.Context, *shard.SliceRun) (*shard.Outcome, error) {
	return func(ctx context.Context, sr *shard.SliceRun) (*shard.Outcome, error) {
		db := zen.Build()
		cp := newSoakProcessor(db, crashAfter)
		h := measure.NewHarness(cp)
		h.Workers = workers
		fp := cp.Fingerprint() + "|" + h.Engine.Fingerprint()
		store, err := persist.OpenEpoch(sr.Dir, fp, sr.Epoch)
		if err != nil {
			return nil, err
		}
		defer store.Close()
		if err := store.Attach(h.Engine); err != nil {
			return nil, err
		}
		ck, err := persist.NewCheckpointer(sr.Dir, fp)
		if err != nil {
			return nil, err
		}
		opts := core.DefaultOptions()
		opts.Checkpointer = ck
		opts.Resume = true
		opts.CharacterizeFilter = sr.Filter
		opts.Log = logf
		sr.SetProgress(h.Engine.Progress)
		rep, err := core.NewPipeline(h, soakSchemes(db), opts).RunContext(ctx)
		if err != nil {
			return nil, err
		}
		exc := make(map[string]string, len(rep.Excluded))
		for k, r := range rep.Excluded {
			exc[k] = string(r)
		}
		return &shard.Outcome{Mapping: rep.Final, Unresolved: rep.Unresolved, Excluded: exc}, nil
	}
}

// TestMain intercepts the helper re-exec: with the helper env set, the
// test binary becomes one shard process of the campaign instead of a
// test runner.
func TestMain(m *testing.M) {
	if os.Getenv(envHelper) == "1" {
		runShardHelper()
		return
	}
	os.Exit(m.Run())
}

// runShardHelper is one campaign shard process. It exits 0 when the
// whole campaign completes (work stealing included); the armed shard
// never returns from its pipeline — the chaos crash kills it with
// status 137 first.
func runShardHelper() {
	dir := os.Getenv(envDir)
	id, _ := strconv.Atoi(os.Getenv(envID))
	workers, _ := strconv.Atoi(os.Getenv(envWorkers))
	crash, _ := strconv.ParseUint(os.Getenv(envCrash), 10, 64)
	man, err := shard.EnsureManifest(dir, campaignFingerprint(), soakShards, soakKeys())
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper manifest:", err)
		os.Exit(1)
	}
	cfg := shard.Config{
		Dir:               dir,
		Owner:             fmt.Sprintf("shard-%d", id),
		ShardID:           id,
		Manifest:          man,
		Run:               sliceRunCallback(workers, crash, nil),
		Steal:             true,
		HeartbeatInterval: 50 * time.Millisecond,
		PollInterval:      100 * time.Millisecond,
		// Generous hung threshold: the kill path detects death via the
		// released flock instantly, and live shards must not be stolen
		// from during slow solver phases.
		StaleAfter: 100,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[shard %d] "+format+"\n", append([]any{id}, args...)...)
		},
	}
	if _, err := shard.Run(context.Background(), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "helper run:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

var (
	goldenOnce sync.Once
	goldenJSON []byte
	goldenErr  error
)

// soakGolden is the fault-free single-process reference mapping,
// computed once per test binary.
func soakGolden(t *testing.T) []byte {
	t.Helper()
	goldenOnce.Do(func() {
		db := zen.Build()
		h := measure.NewHarness(zensim.NewMachine(db, zensim.Config{Noise: 0.001, Seed: soakSeed}))
		h.Workers = 4
		rep, err := core.NewPipeline(h, soakSchemes(db), core.DefaultOptions()).Run()
		if err != nil {
			goldenErr = err
			return
		}
		if rep.Supported() == 0 {
			goldenErr = errors.New("golden run characterized nothing")
			return
		}
		goldenJSON, goldenErr = json.MarshalIndent(rep.Final, "", "  ")
	})
	if goldenErr != nil {
		t.Fatalf("golden single-process run: %v", goldenErr)
	}
	return goldenJSON
}

// calibrateCrash sizes the kill point of the victim shard: a reference
// run of the victim's exact configuration reports how many successful
// executions stages 1–3 consume and how many the whole slice takes;
// the crash is placed ~40% into stage 4, so the victim dies with its
// stage-3 checkpoint written and its slice half-characterized.
func calibrateCrash(t *testing.T, victimSlice []string, workers int) uint64 {
	t.Helper()
	db := zen.Build()
	cp := newSoakProcessor(db, 0)
	h := measure.NewHarness(cp)
	h.Workers = workers
	opts := core.DefaultOptions()
	opts.CharacterizeFilter = shard.Membership(victimSlice)
	var stage3Rounds uint64
	opts.Log = func(format string, args ...any) {
		if strings.HasPrefix(format, "stage 3:") {
			stage3Rounds = cp.Ledger().Rounds
		}
	}
	if _, err := core.NewPipeline(h, soakSchemes(db), opts).Run(); err != nil {
		t.Fatalf("calibration run: %v", err)
	}
	total := cp.Ledger().Rounds
	if stage3Rounds == 0 || stage3Rounds >= total {
		t.Fatalf("calibration: stage3=%d total=%d, cannot place a mid-stage-4 crash", stage3Rounds, total)
	}
	crashAt := stage3Rounds + (total-stage3Rounds)*40/100
	t.Logf("calibration: stage1-3 %d rounds, slice total %d, crash at %d", stage3Rounds, total, crashAt)
	return crashAt
}

// TestShardCampaignKillAndSteal is the acceptance soak: three shard
// processes at 1/4/16 workers, the middle one SIGKILLed mid-stage-4;
// the survivors steal its slice via lease takeover, and the merged
// mapping is byte-identical to the single-process golden.
func TestShardCampaignKillAndSteal(t *testing.T) {
	golden := soakGolden(t)
	fp := campaignFingerprint()
	slices := shard.Partition(soakKeys(), soakShards)
	const victim = 1
	crashAt := calibrateCrash(t, slices[victim], 4)

	dir := t.TempDir()
	workers := []int{1, 4, 16}
	cmds := make([]*exec.Cmd, soakShards)
	outs := make([]*bytes.Buffer, soakShards)
	for id := 0; id < soakShards; id++ {
		cmd := exec.Command(os.Args[0], "-test.run=^$")
		cmd.Env = append(os.Environ(),
			envHelper+"=1",
			envDir+"="+dir,
			envID+"="+strconv.Itoa(id),
			envWorkers+"="+strconv.Itoa(workers[id]),
		)
		if id == victim {
			cmd.Env = append(cmd.Env, envCrash+"="+strconv.FormatUint(crashAt, 10))
		}
		buf := &bytes.Buffer{}
		cmd.Stdout = buf
		cmd.Stderr = buf
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting shard %d: %v", id, err)
		}
		cmds[id] = cmd
		outs[id] = buf
	}

	for id, cmd := range cmds {
		err := cmd.Wait()
		if id == victim {
			var ee *exec.ExitError
			if !errors.As(err, &ee) || ee.ExitCode() != 137 {
				t.Fatalf("victim shard exit = %v, want exit status 137 (SIGKILL)\n%s", err, outs[id])
			}
			continue
		}
		if err != nil {
			t.Fatalf("shard %d failed: %v\n%s", id, err, outs[id])
		}
	}

	// The victim's slice must have been taken over: a later lease
	// epoch, and a result published by someone else.
	vdir := shard.SliceDir(dir, victim)
	lease, err := shard.Observe(vdir)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Epoch < 2 {
		t.Fatalf("victim slice lease epoch = %d, want >= 2 (takeover)", lease.Epoch)
	}
	res, err := shard.ReadSliceResult(vdir, fp, victim)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("victim slice has no result — nobody stole it")
	}
	if res.Owner == fmt.Sprintf("shard-%d", victim) {
		t.Fatalf("victim slice result owner = %q — the dead shard cannot have finished it", res.Owner)
	}
	t.Logf("victim slice stolen by %q at epoch %d (lease epoch %d)", res.Owner, res.Epoch, lease.Epoch)

	mrep, err := shard.Merge(dir, fp)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if mrep.Degraded() {
		t.Fatalf("merge degraded, missing slices %v — the steal did not complete the campaign", mrep.MissingSlices)
	}
	if len(mrep.Unresolved) != 0 {
		t.Fatalf("merge left schemes unresolved: %v", mrep.Unresolved)
	}
	data, err := json.MarshalIndent(mrep.Mapping, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(golden) {
		t.Fatal("merged sharded mapping differs from single-process golden")
	}
	// The merge also absorbed every shard's measurements into one
	// snapshot at the campaign root.
	recs, err := persist.ReadState(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) != mrep.Records {
		t.Fatalf("campaign root snapshot holds %d records, merge reported %d", len(recs), mrep.Records)
	}
}

// TestShardCampaignInProcess: a healthy (no-kill) campaign run shard
// by shard in one process, each shard at a different worker count,
// merges to the golden bytes. Under the race detector this is covered
// by the subprocess soak (whose shards re-exec the race-built binary).
func TestShardCampaignInProcess(t *testing.T) {
	if raceEnabled {
		t.Skip("covered by TestShardCampaignKillAndSteal under race")
	}
	golden := soakGolden(t)
	fp := campaignFingerprint()
	dir := t.TempDir()
	man, err := shard.EnsureManifest(dir, fp, soakShards, soakKeys())
	if err != nil {
		t.Fatal(err)
	}
	for id, workers := range []int{1, 4, 16} {
		cfg := shard.Config{
			Dir:      dir,
			Owner:    fmt.Sprintf("inproc-%d", id),
			ShardID:  id,
			Manifest: man,
			Run:      sliceRunCallback(workers, 0, nil),
			Steal:    false,
			Log:      t.Logf,
		}
		st, err := shard.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("shard %d: %v", id, err)
		}
		if len(st.Completed) != 1 || st.Completed[0] != id {
			t.Fatalf("shard %d completed %v, want its own slice only", id, st.Completed)
		}
	}
	mrep, err := shard.Merge(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Degraded() || len(mrep.Unresolved) != 0 {
		t.Fatalf("healthy campaign merged degraded: missing %v unresolved %v", mrep.MissingSlices, mrep.Unresolved)
	}
	data, err := json.MarshalIndent(mrep.Mapping, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(golden) {
		t.Fatal("in-process sharded mapping differs from single-process golden")
	}
}

// TestShardMergeMissingSlice: a merge over a campaign whose middle
// shard never reported completes degraded — the missing slice's
// stage-4-eligible schemes are flagged Unresolved, everything present
// matches the golden mapping key for key.
func TestShardMergeMissingSlice(t *testing.T) {
	golden := soakGolden(t)
	fp := campaignFingerprint()
	dir := t.TempDir()
	man, err := shard.EnsureManifest(dir, fp, soakShards, soakKeys())
	if err != nil {
		t.Fatal(err)
	}
	const missing = 1
	for _, id := range []int{0, 2} {
		cfg := shard.Config{
			Dir:      dir,
			Owner:    fmt.Sprintf("partial-%d", id),
			ShardID:  id,
			Manifest: man,
			Run:      sliceRunCallback(4, 0, nil),
			Steal:    false,
			Log:      t.Logf,
		}
		if _, err := shard.Run(context.Background(), cfg); err != nil {
			t.Fatalf("shard %d: %v", id, err)
		}
	}
	mrep, err := shard.Merge(dir, fp)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if !mrep.Degraded() {
		t.Fatal("merge with a missing slice did not report degradation")
	}
	if len(mrep.MissingSlices) != 1 || mrep.MissingSlices[0] != missing {
		t.Fatalf("missing slices = %v, want [%d]", mrep.MissingSlices, missing)
	}

	// Everything merged must agree with the golden mapping...
	var goldenMap portmodel.Mapping
	if err := json.Unmarshal(golden, &goldenMap); err != nil {
		t.Fatal(err)
	}
	for _, key := range mrep.Mapping.Keys() {
		got, _ := mrep.Mapping.Get(key)
		want, ok := goldenMap.Get(key)
		if !ok {
			t.Fatalf("merged mapping has %q, golden does not", key)
		}
		if got.String() != want.String() {
			t.Fatalf("merged %q = %s, golden %s", key, got, want)
		}
	}
	// ...and every scheme of the missing slice is accounted for:
	// merged (base), excluded by the global early stages, or flagged
	// Unresolved — degraded, never silently dropped.
	res0, err := shard.ReadSliceResult(shard.SliceDir(dir, 0), fp, 0)
	if err != nil || res0 == nil {
		t.Fatalf("slice 0 result: %v %v", res0, err)
	}
	unresolved := map[string]bool{}
	for _, k := range mrep.Unresolved {
		unresolved[k] = true
	}
	flagged := 0
	for _, key := range man.Slices[missing] {
		if _, ok := mrep.Mapping.Get(key); ok {
			continue
		}
		if res0.Excluded[key] != "" {
			continue
		}
		if !unresolved[key] {
			t.Fatalf("missing slice scheme %q neither merged, excluded, nor unresolved", key)
		}
		flagged++
	}
	if flagged == 0 {
		t.Fatal("missing slice contributed no unresolved schemes — degradation untested")
	}
	t.Logf("degraded merge: %d scheme(s) of slice %d flagged unresolved", flagged, missing)
}
