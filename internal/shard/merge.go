package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"

	"zenport/internal/persist"
	"zenport/internal/portmodel"
)

// MergeReport is the outcome of merging a campaign directory.
type MergeReport struct {
	// Mapping is the merged port mapping: the union of every reporting
	// slice's mapping, with overlapping keys validated equal.
	Mapping *portmodel.Mapping
	// Unresolved lists schemes absent from Mapping: the slices' own
	// unresolved schemes plus every stage-4-eligible scheme of a slice
	// that never reported. Sorted.
	Unresolved []string
	// MissingSlices lists the slices without a result — the campaign
	// completed degraded, not dead. Sorted.
	MissingSlices []int
	// Slices counts the slices that reported.
	Slices int
	// Records counts the distinct measurement records in the campaign
	// root's compacted snapshot — the slices share the global early
	// stages, so this is less than the sum of per-slice records.
	Records int
}

// Degraded reports whether any slice failed to report.
func (r *MergeReport) Degraded() bool { return len(r.MissingSlices) > 0 }

// Merge validates and merges a sharded campaign directory into one
// mapping and one compacted measurement snapshot at the campaign root.
// fingerprint must be the current configuration's fingerprint; the
// manifest, every slice result, and every slice's persisted journals
// and snapshots are validated against it — a mismatch anywhere is a
// hard error, because merging measurements from a different
// configuration would produce a mapping that is confidently wrong
// rather than visibly degraded.
//
// Missing slices degrade the merge instead of failing it: their
// stage-4-eligible schemes (not excluded by the global early stages,
// not already in the merged mapping as blockers or no-port schemes)
// are flagged Unresolved — exactly the "absent rather than wrong"
// contract the pipeline uses for schemes it could not characterize —
// so a re-run or a later merge can pick them up. At least one slice
// must have reported: with zero results there is no base mapping and
// nothing to degrade from.
//
// The caller must hold the campaign directory's exclusive lock
// (persist.LockDir): the merge writes the root's epoch-0 persist
// files, and a concurrent merge or non-sharded run would race it.
func Merge(dir, fingerprint string) (*MergeReport, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	if m.Fingerprint != fingerprint {
		return nil, fmt.Errorf("shard: campaign %s was run under fingerprint %q, current configuration is %q",
			dir, m.Fingerprint, fingerprint)
	}

	rep := &MergeReport{}
	var results []*SliceResult
	for i := range m.Slices {
		r, err := ReadSliceResult(SliceDir(dir, i), fingerprint, i)
		if err != nil {
			return nil, err
		}
		if r == nil {
			rep.MissingSlices = append(rep.MissingSlices, i)
			continue
		}
		if r.Shards != m.Shards {
			return nil, fmt.Errorf("shard: slice %d result claims %d shard(s), manifest says %d", i, r.Shards, m.Shards)
		}
		results = append(results, r)
	}
	rep.Slices = len(results)
	if len(results) == 0 {
		return nil, fmt.Errorf("shard: campaign %s has no completed slices to merge", dir)
	}

	// Union the slice mappings. Overlapping keys — the global base
	// every shard re-derives — must agree exactly; a disagreement
	// means the slices did not actually share a configuration and the
	// merge must not guess which one to trust.
	merged := portmodel.NewMapping(results[0].Mapping.NumPorts)
	for _, r := range results {
		if r.Mapping.NumPorts != merged.NumPorts {
			return nil, fmt.Errorf("shard: slice %d mapping has %d ports, slice %d has %d",
				r.Slice, r.Mapping.NumPorts, results[0].Slice, merged.NumPorts)
		}
		for _, key := range r.Mapping.Keys() {
			u, _ := r.Mapping.Get(key)
			if have, ok := merged.Get(key); ok {
				if !reflect.DeepEqual(have, u) {
					return nil, fmt.Errorf("shard: slice %d disagrees with an earlier slice on %q (%s vs %s)",
						r.Slice, key, u, have)
				}
				continue
			}
			merged.Set(key, u)
		}
		for _, key := range r.Unresolved {
			rep.Unresolved = appendUnique(rep.Unresolved, key)
		}
	}
	rep.Mapping = merged

	// Degrade missing slices: every scheme of theirs that the global
	// early stages did not exclude and that is not already in the
	// merged mapping (blockers and no-port schemes are) is unresolved.
	// The early exclusions are identical in every slice result, so any
	// reporting slice serves as the reference.
	ref := results[0]
	for _, i := range rep.MissingSlices {
		for _, key := range m.Slices[i] {
			if _, ok := merged.Get(key); ok {
				continue
			}
			if ref.Excluded[key] != "" {
				continue
			}
			rep.Unresolved = appendUnique(rep.Unresolved, key)
		}
	}
	sort.Strings(rep.Unresolved)

	// Absorb every slice's persisted measurements — including those of
	// crashed shards that never reported — into one compacted snapshot
	// at the campaign root, so follow-up runs (retrying the unresolved
	// schemes, or a full single-process run) start cache-warm.
	store, err := persist.Open(dir, fingerprint)
	if err != nil {
		return nil, err
	}
	defer store.Close()
	for i := range m.Slices {
		recs, err := persist.ReadState(SliceDir(dir, i), fingerprint)
		if err != nil {
			return nil, fmt.Errorf("shard: slice %d persisted state: %w", i, err)
		}
		store.AbsorbRecords(recs)
	}
	rep.Records = store.RecordCount()
	if err := store.Compact(); err != nil {
		return nil, err
	}
	return rep, nil
}

// LoadManifest reads and validates the campaign manifest.
func LoadManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, manifestFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("shard: %s is not a campaign directory (no %s)", dir, manifestFile)
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: corrupt manifest %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("shard: manifest %s has version %d, want %d", path, m.Version, manifestVersion)
	}
	if m.Shards != len(m.Slices) {
		return nil, fmt.Errorf("shard: manifest %s declares %d shard(s) but %d slice(s)", path, m.Shards, len(m.Slices))
	}
	return &m, nil
}

// appendUnique appends k to list only if absent (the lists stay small).
func appendUnique(list []string, k string) []string {
	for _, v := range list {
		if v == k {
			return list
		}
	}
	return append(list, k)
}
