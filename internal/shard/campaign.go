package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"time"

	"zenport/internal/persist"
	"zenport/internal/portmodel"
)

// Campaign directory layout:
//
//	campaign.json   — manifest: fingerprint, shard count, slices
//	campaign.lock   — short-lived flock serializing manifest creation
//	slice-NN/       — per-slice directory: lease files, persist
//	                  journals/snapshots, stage checkpoints, result.json
//
// After a merge, the campaign root additionally holds the compacted
// snapshot absorbing every slice's measurements (the regular persist
// epoch-0 files).
const (
	manifestFile    = "campaign.json"
	campaignLock    = "campaign.lock"
	manifestVersion = 1
)

// Manifest pins a campaign's configuration: every shard process (and
// the merge) validates against it, so shards of different
// configurations cannot silently share a directory.
type Manifest struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	// Slices is the deterministic partition of the scheme universe;
	// slice i is owned by whoever holds slice-i's lease.
	Slices [][]string `json:"slices"`
}

// SliceDir returns the directory of slice i under the campaign root.
func SliceDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("slice-%02d", i))
}

// EnsureManifest creates the campaign manifest — or validates the
// existing one — under the campaign lock, so concurrent shard
// processes starting at once agree on exactly one partition. The
// manifest is immutable once written: a shard arriving with a
// different fingerprint, shard count, or universe fails loudly instead
// of corrupting the campaign.
func EnsureManifest(dir, fingerprint string, shards int, universe []string) (*Manifest, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d, want >= 1", shards)
	}
	if fingerprint == "" {
		return nil, fmt.Errorf("shard: empty fingerprint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lk, err := persist.LockFile(filepath.Join(dir, campaignLock))
	if err != nil {
		return nil, err
	}
	defer lk.Unlock()

	want := &Manifest{
		Version:     manifestVersion,
		Fingerprint: fingerprint,
		Shards:      shards,
		Slices:      Partition(universe, shards),
	}
	path := filepath.Join(dir, manifestFile)
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var have Manifest
		if err := json.Unmarshal(data, &have); err != nil {
			return nil, fmt.Errorf("shard: corrupt manifest %s: %w", path, err)
		}
		if have.Version != manifestVersion {
			return nil, fmt.Errorf("shard: manifest %s has version %d, want %d", path, have.Version, manifestVersion)
		}
		if have.Fingerprint != want.Fingerprint {
			return nil, fmt.Errorf("shard: campaign %s was created under fingerprint %q, current configuration is %q",
				dir, have.Fingerprint, want.Fingerprint)
		}
		if have.Shards != want.Shards {
			return nil, fmt.Errorf("shard: campaign %s was created with %d shard(s), this run wants %d",
				dir, have.Shards, want.Shards)
		}
		if !reflect.DeepEqual(have.Slices, want.Slices) {
			return nil, fmt.Errorf("shard: campaign %s partitions a different scheme universe", dir)
		}
		return &have, nil
	case os.IsNotExist(err):
		out, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := persist.WriteFileAtomic(path, out); err != nil {
			return nil, err
		}
		return want, nil
	default:
		return nil, err
	}
}

// SliceRun is the work order the runner hands the pipeline callback:
// one owned slice, the epoch to persist under, and the stage-4 filter.
type SliceRun struct {
	// Index is the slice number.
	Index int
	// Dir is the slice directory: open the persist store
	// (persist.OpenEpoch with Epoch) and the stage checkpointer here.
	Dir string
	// Epoch is the lease's writer epoch.
	Epoch uint64
	// Keys are the slice's scheme keys.
	Keys []string
	// Filter is the slice-membership filter for
	// core.Options.CharacterizeFilter.
	Filter func(key string) bool
	// SetProgress publishes the callback's monotonic activity counter
	// (engine.Progress) to the lease heartbeat. Until it is called the
	// heartbeat publishes no progress, so call it as soon as the
	// engine exists — a beat that never advances looks hung.
	SetProgress func(fn func() uint64)
}

// Outcome is what the pipeline callback returns for a completed slice.
type Outcome struct {
	// Mapping is the slice's full inferred mapping (rep.Final).
	Mapping *portmodel.Mapping
	// Unresolved lists the slice schemes left unresolved
	// (rep.Unresolved).
	Unresolved []string
	// Excluded maps scheme keys to exclusion reasons (rep.Excluded,
	// stringified).
	Excluded map[string]string
}

// Config configures one shard process's participation in a campaign.
type Config struct {
	// Dir is the campaign root.
	Dir string
	// Owner identifies this process in lease and result files.
	Owner string
	// ShardID is this process's home slice: it is attempted first, so
	// N healthy shards each start on their own slice before any
	// stealing happens.
	ShardID int
	// Manifest is the campaign manifest (EnsureManifest).
	Manifest *Manifest
	// Run executes the inference pipeline for one owned slice. It must
	// honor ctx cancellation: the runner cancels it when the slice's
	// lease is lost.
	Run func(ctx context.Context, sr *SliceRun) (*Outcome, error)
	// Steal enables work stealing: after its own slice, the shard
	// takes over dead or stale slices and waits for the campaign to
	// complete. Without it the shard runs only its own slice and
	// returns.
	Steal bool
	// HeartbeatInterval is the lease beat period (0 means 250ms).
	HeartbeatInterval time.Duration
	// PollInterval is the sweep period over incomplete slices
	// (0 means 500ms).
	PollInterval time.Duration
	// StaleAfter is the number of consecutive unchanged (epoch, beat)
	// observations after which a live owner is presumed hung and its
	// slice stolen (0 means 20). Dead owners are detected immediately
	// via their released flocks; StaleAfter only gates the hung case,
	// so an overly patient value delays hung-recovery but never
	// dead-recovery.
	StaleAfter int
	// Log, if non-nil, receives progress lines.
	Log func(format string, args ...any)
}

func (c *Config) heartbeat() time.Duration {
	if c.HeartbeatInterval > 0 {
		return c.HeartbeatInterval
	}
	return 250 * time.Millisecond
}

func (c *Config) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 500 * time.Millisecond
}

func (c *Config) staleAfter() int {
	if c.StaleAfter > 0 {
		return c.StaleAfter
	}
	return 20
}

func (c *Config) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// Status summarizes one shard process's campaign participation.
type Status struct {
	// Completed lists the slices this process executed to completion
	// (its own and any stolen ones).
	Completed []int
	// Stolen lists the subset of Completed acquired by takeover from a
	// dead or hung owner.
	Stolen []int
	// ObservedDone lists the slices other shards completed.
	ObservedDone []int
	// LostSlices counts lease losses: slices this process was working
	// on when another shard declared it hung and took over.
	LostSlices int
}

// staleTrack is the per-slice staleness observation state.
type staleTrack struct {
	lease Lease
	polls int
}

// Run participates in a campaign until this shard's work is done: its
// own slice first, then — with Steal — every other incomplete slice,
// polling and taking over dead or hung owners, until all slices have
// results. Completed slices (valid result.json) are never re-run. The
// returned Status says what this process did; an error means this
// process failed, not necessarily the campaign (survivors steal its
// slice).
func Run(ctx context.Context, cfg Config) (*Status, error) {
	m := cfg.Manifest
	if m == nil {
		return nil, fmt.Errorf("shard: nil manifest")
	}
	n := len(m.Slices)
	if cfg.ShardID < 0 || cfg.ShardID >= n {
		return nil, fmt.Errorf("shard: shard id %d out of range [0,%d)", cfg.ShardID, n)
	}
	// Own slice first, then the others in ring order, so concurrent
	// healthy shards spread out instead of piling onto slice 0.
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, (cfg.ShardID+i)%n)
	}

	st := &Status{}
	done := make([]bool, n)
	stale := make(map[int]staleTrack, n)

	for {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		allDone := true
		for _, s := range order {
			if done[s] {
				continue
			}
			if !cfg.Steal && s != cfg.ShardID {
				continue
			}
			sdir := SliceDir(cfg.Dir, s)
			res, err := ReadSliceResult(sdir, m.Fingerprint, s)
			if err != nil {
				return st, err
			}
			if res != nil {
				done[s] = true
				if res.Owner != cfg.Owner {
					st.ObservedDone = append(st.ObservedDone, s)
				}
				continue
			}
			allDone = false
			h, obs, err := TryAcquire(sdir, cfg.Owner)
			if err != nil {
				return st, err
			}
			stolenFromLive := false
			if h == nil {
				// A live process owns the slice. Track its heartbeat;
				// steal only after StaleAfter frozen observations.
				tr, seen := stale[s]
				if seen && tr.lease == obs {
					tr.polls++
				} else {
					tr = staleTrack{lease: obs}
				}
				stale[s] = tr
				if tr.polls < cfg.staleAfter() {
					continue
				}
				h, obs, err = Steal(sdir, cfg.Owner, tr.lease)
				if err != nil {
					return st, err
				}
				stale[s] = staleTrack{lease: obs}
				if h == nil {
					continue // owner advanced between observations
				}
				stolenFromLive = true
				cfg.logf("shard: slice %d owner %q hung (beat frozen for %d polls); stolen as epoch %d",
					s, tr.lease.Owner, tr.polls, h.Epoch())
			} else if obs.Epoch > 1 {
				cfg.logf("shard: slice %d owner dead; taken over as epoch %d", s, obs.Epoch)
			}
			completed, err := runSlice(ctx, &cfg, s, h)
			if err != nil {
				return st, err
			}
			if completed {
				done[s] = true
				st.Completed = append(st.Completed, s)
				if stolenFromLive || h.Epoch() > 1 {
					st.Stolen = append(st.Stolen, s)
				}
			} else {
				st.LostSlices++
			}
		}
		if allDone {
			return st, nil
		}
		if !cfg.Steal && done[cfg.ShardID] {
			return st, nil
		}
		if err := sleepCtx(ctx, cfg.poll()); err != nil {
			return st, err
		}
	}
}

// runSlice executes one owned slice under its lease: the pipeline
// callback runs with a heartbeat goroutine beating the lease from the
// callback's progress counter, and the result is published only if the
// lease survived. It returns false (no error) when the lease was lost
// mid-run — the thief finishes the slice.
func runSlice(ctx context.Context, cfg *Config, s int, h *Handle) (bool, error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var progressFn atomic.Value // func() uint64
	sr := &SliceRun{
		Index:  s,
		Dir:    SliceDir(cfg.Dir, s),
		Epoch:  h.Epoch(),
		Keys:   cfg.Manifest.Slices[s],
		Filter: Membership(cfg.Manifest.Slices[s]),
		SetProgress: func(fn func() uint64) {
			progressFn.Store(fn)
		},
	}

	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(cfg.heartbeat())
		defer t.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-t.C:
				var p uint64
				if fn, ok := progressFn.Load().(func() uint64); ok {
					p = fn()
				}
				if err := h.Beat(p); err != nil {
					// Lost (or lease I/O failed): stop the pipeline;
					// the slice belongs to someone else now.
					cancel()
					return
				}
			}
		}
	}()

	cfg.logf("shard: running slice %d (%d scheme(s)) as %s, epoch %d", s, len(sr.Keys), cfg.Owner, h.Epoch())
	out, err := cfg.Run(sctx, sr)
	cancel()
	<-hbDone

	if h.Lost() {
		cfg.logf("shard: slice %d lease lost mid-run; abandoning to the new owner", s)
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("shard: slice %d: %w", s, err)
	}
	res := &SliceResult{
		Fingerprint: cfg.Manifest.Fingerprint,
		Shards:      cfg.Manifest.Shards,
		Slice:       s,
		Owner:       cfg.Owner,
		Epoch:       h.Epoch(),
		Mapping:     out.Mapping,
		Unresolved:  out.Unresolved,
		Excluded:    out.Excluded,
	}
	if err := WriteSliceResult(sr.Dir, res); err != nil {
		return false, err
	}
	if err := h.Release(); err != nil {
		return false, err
	}
	cfg.logf("shard: slice %d complete (%d scheme(s) mapped, %d unresolved)", s, len(out.Mapping.Usage), len(out.Unresolved))
	return true, nil
}

// sleepCtx blocks for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
