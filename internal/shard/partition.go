// Package shard implements distributed sharded inference campaigns:
// the scheme universe is partitioned deterministically into N slices,
// each slice is executed by whichever shard process holds its
// crash-tolerant lease, and the per-slice results are merged — with
// fingerprint validation — into one mapping plus one compacted
// measurement snapshot.
//
// The design leans entirely on determinism. Stages 1–3 of the
// pipeline (scheme funnel, blocking classes, CEGAR blocker mapping)
// are global prerequisites, so every shard runs them over the full
// universe and — because measurement noise is derived per (seed,
// kernel, execution index), independent of scheduling — obtains
// byte-identical results. Stage 4 characterization is embarrassingly
// parallel per scheme, so each shard restricts it to its slice via
// core.Options.CharacterizeFilter. A slice's results are therefore
// identical no matter which shard executes it, when, or after how many
// crashes — which is what makes work stealing safe: re-executing a
// dead shard's slice replays the same journal records (dedup by
// canonical key) and converges on the same bytes.
//
// Crash tolerance is layered:
//
//   - a killed shard's flocks are released by the kernel instantly, so
//     any survivor's next TryAcquire takes the slice over;
//   - a hung shard keeps its flocks but stops advancing its lease
//     heartbeat, so survivors steal the slice after a deterministic
//     staleness threshold (Steal);
//   - every successive owner of a slice directory writes under its own
//     persist epoch (persist.OpenEpoch), so a hung previous owner that
//     wakes up can never interleave writes into the new owner's files;
//   - a slice whose shard never reports is degraded, not fatal: the
//     merge flags its schemes Unresolved and completes.
package shard

import "sort"

// Partition splits the scheme universe into n slices: the keys are
// sorted, de-duplicated, and dealt round-robin (sorted[i] goes to
// slice i mod n). The result depends only on the key *set* and n —
// never on input ordering — so every shard process, and every re-run,
// computes byte-identical slices; and round-robin over sorted keys
// keeps slice sizes within one of each other. Every key lands in
// exactly one slice. n beyond the universe size yields empty tail
// slices, which run (and merge) trivially.
func Partition(universe []string, n int) [][]string {
	if n < 1 {
		n = 1
	}
	sorted := append([]string(nil), universe...)
	sort.Strings(sorted)
	slices := make([][]string, n)
	prev := ""
	for i, seen := 0, 0; i < len(sorted); i++ {
		if seen > 0 && sorted[i] == prev {
			continue
		}
		slices[seen%n] = append(slices[seen%n], sorted[i])
		prev = sorted[i]
		seen++
	}
	return slices
}

// Membership returns a set-membership filter over one slice, the
// function handed to core.Options.CharacterizeFilter.
func Membership(slice []string) func(key string) bool {
	set := make(map[string]bool, len(slice))
	for _, k := range slice {
		set[k] = true
	}
	return func(key string) bool { return set[key] }
}
