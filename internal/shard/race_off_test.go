//go:build !race

package shard_test

// raceEnabled mirrors the chaos package's gate: heavy soak variants
// that the subprocess campaign already covers are skipped under the
// race detector's ~10x slowdown.
const raceEnabled = false
