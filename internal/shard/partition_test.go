package shard

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// testUniverse builds a synthetic scheme-key universe of the given
// size with a deterministic shuffle seed.
func testUniverse(n int, seed int64) []string {
	keys := make([]string, n)
	for i := range keys {
		// Deliberately non-sorted construction order.
		keys[i] = string(rune('a'+(i*7)%26)) + " scheme " + string(rune('0'+(i%10))) + "#" + json.Number(jsonInt(i)).String()
	}
	rand.New(rand.NewSource(seed)).Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	return keys
}

func jsonInt(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}

// TestPartitionExactlyOnce: every key of the universe lands in exactly
// one slice, for a table of universe sizes and shard counts —
// including shard counts above the universe size.
func TestPartitionExactlyOnce(t *testing.T) {
	cases := []struct {
		universe int
		shards   int
	}{
		{1, 1}, {2, 1}, {5, 2}, {15, 3}, {16, 4}, {100, 7}, {1400, 16}, {3, 8}, {0, 3},
	}
	for _, c := range cases {
		u := testUniverse(c.universe, 1)
		slices := Partition(u, c.shards)
		if len(slices) != c.shards {
			t.Fatalf("universe=%d shards=%d: got %d slices", c.universe, c.shards, len(slices))
		}
		seen := map[string]int{}
		for _, s := range slices {
			for _, k := range s {
				seen[k]++
			}
		}
		if len(seen) != c.universe {
			t.Fatalf("universe=%d shards=%d: %d distinct keys across slices", c.universe, c.shards, len(seen))
		}
		for k, n := range seen {
			if n != 1 {
				t.Fatalf("universe=%d shards=%d: key %q in %d slices", c.universe, c.shards, k, n)
			}
		}
		// Balance: round-robin over sorted keys keeps sizes within 1.
		min, max := c.universe, 0
		for _, s := range slices {
			if len(s) < min {
				min = len(s)
			}
			if len(s) > max {
				max = len(s)
			}
		}
		if max-min > 1 {
			t.Fatalf("universe=%d shards=%d: slice sizes range %d..%d", c.universe, c.shards, min, max)
		}
	}
}

// TestPartitionOrderIndependent: the partition depends only on the
// key set, never on the order the universe was supplied in.
func TestPartitionOrderIndependent(t *testing.T) {
	base := Partition(testUniverse(137, 1), 5)
	for seed := int64(2); seed < 8; seed++ {
		got := Partition(testUniverse(137, seed), 5)
		a, _ := json.Marshal(base)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Fatalf("partition differs between input orderings (seed %d)", seed)
		}
	}
}

// TestPartitionRepartitionIdentical: re-partitioning the same
// (universe, N) is byte-identical — the property the campaign manifest
// check relies on.
func TestPartitionRepartitionIdentical(t *testing.T) {
	u := testUniverse(211, 3)
	a, _ := json.Marshal(Partition(u, 4))
	for i := 0; i < 5; i++ {
		b, _ := json.Marshal(Partition(u, 4))
		if string(a) != string(b) {
			t.Fatal("re-partition of identical inputs produced different bytes")
		}
	}
}

// TestPartitionDeduplicates: duplicate keys collapse to one slot.
func TestPartitionDeduplicates(t *testing.T) {
	slices := Partition([]string{"b", "a", "b", "a", "c"}, 2)
	total := 0
	for _, s := range slices {
		total += len(s)
	}
	if total != 3 {
		t.Fatalf("expected 3 keys after dedup, got %d", total)
	}
}

// TestMembership: the filter accepts exactly the slice's keys.
func TestMembership(t *testing.T) {
	u := testUniverse(30, 1)
	slices := Partition(u, 3)
	for i, s := range slices {
		f := Membership(s)
		for _, k := range s {
			if !f(k) {
				t.Fatalf("slice %d: filter rejects own key %q", i, k)
			}
		}
		for j, other := range slices {
			if j == i {
				continue
			}
			for _, k := range other {
				if f(k) {
					t.Fatalf("slice %d: filter accepts slice %d's key %q", i, j, k)
				}
			}
		}
	}
}
