package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"zenport/internal/persist"
	"zenport/internal/portmodel"
)

// resultFile is the completion marker of a slice: its presence (with a
// matching fingerprint) means the slice was fully characterized and
// its outcome is final. It is written atomically as the owner's last
// act, so other shards and the merge treat existence as completion.
const resultFile = "result.json"

// resultVersion guards the SliceResult wire format.
const resultVersion = 1

// SliceResult is one slice's published outcome. Mapping is the full
// mapping from the executing shard's perspective: the global base
// (blocker mapping and no-port schemes, byte-identical across shards
// by determinism) plus the slice's characterized schemes. The merge
// unions these, checking that overlapping keys agree.
type SliceResult struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
	Slice       int    `json:"slice"`
	// Owner and Epoch record which lease holder completed the slice —
	// diagnostic only; the measurement content is owner-independent.
	Owner string `json:"owner"`
	Epoch uint64 `json:"epoch"`
	// Mapping is the slice's inferred mapping (base + slice fragment).
	Mapping *portmodel.Mapping `json:"mapping"`
	// Unresolved lists slice schemes whose port usage the run could
	// not establish (solver budget, vote disagreement) — absent from
	// Mapping rather than wrong.
	Unresolved []string `json:"unresolved,omitempty"`
	// Excluded maps scheme keys to the reason they left the pipeline.
	// The early (stage 1–3) exclusions are global and identical in
	// every slice result; the merge uses them to classify the schemes
	// of slices that never reported.
	Excluded map[string]string `json:"excluded,omitempty"`
}

// WriteSliceResult atomically publishes a slice's outcome into its
// directory.
func WriteSliceResult(dir string, r *SliceResult) error {
	r.Version = resultVersion
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return persist.WriteFileAtomic(filepath.Join(dir, resultFile), data)
}

// ReadSliceResult loads a slice's published outcome. A missing file
// returns (nil, nil) — the slice is simply not done. A present file
// that fails validation (version, fingerprint, slice index, mapping)
// is a hard error, never silently ignored: it means the campaign
// directory mixes configurations, and treating that as "not done"
// would re-execute — and then merge — conflicting state.
func ReadSliceResult(dir, fingerprint string, slice int) (*SliceResult, error) {
	data, err := os.ReadFile(filepath.Join(dir, resultFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var r SliceResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("shard: corrupt result in %s: %w", dir, err)
	}
	if r.Version != resultVersion {
		return nil, fmt.Errorf("shard: result in %s has version %d, want %d", dir, r.Version, resultVersion)
	}
	if r.Fingerprint != fingerprint {
		return nil, fmt.Errorf("shard: result in %s was produced under fingerprint %q, current configuration is %q",
			dir, r.Fingerprint, fingerprint)
	}
	if r.Slice != slice {
		return nil, fmt.Errorf("shard: result in %s claims slice %d, want %d", dir, r.Slice, slice)
	}
	if r.Mapping == nil {
		return nil, fmt.Errorf("shard: result in %s has no mapping", dir)
	}
	return &r, nil
}
