package engine_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zenport/internal/engine"
)

// TestFlightCoalesces proves that concurrent Do calls with one key
// execute fn exactly once and all observe the leader's value.
func TestFlightCoalesces(t *testing.T) {
	f := engine.NewFlight[int](nil)
	var execs atomic.Int64
	release := make(chan struct{})
	const callers = 32

	var wg sync.WaitGroup
	vals := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := f.Do(context.Background(), "k", nil, func() (int, error) {
				execs.Add(1)
				<-release
				return 42, nil
			}, nil, nil)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i] = v
		}(i)
	}
	// Let callers pile up on the single leader, then release it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	for i, v := range vals {
		if v != 42 {
			t.Fatalf("caller %d observed %d, want 42", i, v)
		}
	}
}

// TestFlightProbeShortCircuits proves the probe answers without
// executing fn, and that commit fills whatever the probe reads.
func TestFlightProbeShortCircuits(t *testing.T) {
	var mu sync.Mutex
	cache := map[string]int{}
	f := engine.NewFlight[int](&mu)
	probe := func() (int, bool) { v, ok := cache["k"]; return v, ok }
	commit := func(v int) { cache["k"] = v }

	v, out, err := f.Do(context.Background(), "k", probe,
		func() (int, error) { return 7, nil }, commit, nil)
	if err != nil || v != 7 || !out.Led || out.Hit {
		t.Fatalf("first call: v=%d out=%+v err=%v, want led miss 7", v, out, err)
	}
	v, out, err = f.Do(context.Background(), "k", probe,
		func() (int, error) { t.Fatal("fn ran despite cached value"); return 0, nil }, commit, nil)
	if err != nil || v != 7 || !out.Hit || out.Led {
		t.Fatalf("second call: v=%d out=%+v err=%v, want probe hit 7", v, out, err)
	}
}

// TestFlightFollowerRetriesFailedLeader proves that a follower whose
// leader fails re-runs the work itself and reports its own outcome.
func TestFlightFollowerRetriesFailedLeader(t *testing.T) {
	f := engine.NewFlight[int](nil)
	boom := errors.New("boom")
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := f.Do(context.Background(), "k", nil, func() (int, error) {
			calls.Add(1)
			close(leaderIn)
			<-release
			return 0, boom
		}, nil, nil)
		if !errors.Is(err, boom) {
			t.Errorf("leader error = %v, want boom", err)
		}
	}()

	<-leaderIn // follower joins only once the leader is in flight
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		v, out, err := f.Do(context.Background(), "k", nil, func() (int, error) {
			calls.Add(1)
			return 99, nil
		}, nil, nil)
		if err != nil || v != 99 {
			t.Errorf("follower: v=%d err=%v, want 99", v, err)
		}
		if out.Joined != 1 || !out.Led {
			t.Errorf("follower outcome = %+v, want joined once then led", out)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	wg2.Wait()
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn executed %d times, want 2 (failed leader + retrying follower)", n)
	}
}

// TestFlightFollowerHonorsContext proves a waiting follower returns
// its own context error while the leader keeps running.
func TestFlightFollowerHonorsContext(t *testing.T) {
	f := engine.NewFlight[int](nil)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	defer close(release)

	go func() {
		_, _, _ = f.Do(context.Background(), "k", nil, func() (int, error) {
			close(leaderIn)
			<-release
			return 1, nil
		}, nil, nil)
	}()
	<-leaderIn

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := f.Do(ctx, "k", nil, func() (int, error) { return 2, nil }, nil, nil)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower did not return")
	}
}

// TestFlightPublishBeforeRelease proves publish runs before waiting
// followers observe the value — the ordering the persist journal
// relies on (a follower must never see a result that is not yet
// recorded).
func TestFlightPublishBeforeRelease(t *testing.T) {
	f := engine.NewFlight[int](nil)
	var published atomic.Bool
	leaderIn := make(chan struct{})
	release := make(chan struct{})

	go func() {
		_, _, _ = f.Do(context.Background(), "k", nil, func() (int, error) {
			close(leaderIn)
			<-release
			return 5, nil
		}, nil, func(int) {
			time.Sleep(5 * time.Millisecond) // widen the race window
			published.Store(true)
		})
	}()
	<-leaderIn

	done := make(chan bool, 1)
	go func() {
		_, _, _ = f.Do(context.Background(), "k", nil,
			func() (int, error) { return 0, nil }, nil, nil)
		done <- published.Load()
	}()
	time.Sleep(5 * time.Millisecond)
	close(release)
	if ok := <-done; !ok {
		t.Fatal("follower released before publish completed")
	}
}
