package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// cancelingProc fails transiently forever and cancels the context
// after a few calls — the shape of a measurement backend dying while
// the caller gives up.
type cancelingProc struct {
	seqProc
	cancel      context.CancelFunc
	cancelAfter int64
}

func (p *cancelingProc) Execute(kernel []string, iterations int) (engine.Counters, error) {
	if p.calls.Add(1) >= p.cancelAfter {
		p.cancel()
	}
	return engine.Counters{}, engine.Transient(fmt.Errorf("flaky backend"))
}

// TestRetryStopsOnCancellation: a cancelled context must end the
// transient-retry loop promptly with the context error, not burn
// through the full retry budget first.
func TestRetryStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &cancelingProc{cancel: cancel, cancelAfter: 3}
	g := engine.New(p)
	g.MaxRetries = 1 << 30 // would loop ~forever if cancellation were ignored

	_, err := g.Measure(ctx, portmodel.Exp("a"))
	if err == nil {
		t.Fatal("cancelled measurement returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if got := p.calls.Load(); got > 4 {
		t.Fatalf("retry loop executed %d times after cancellation", got)
	}
}

// memHook is an in-memory engine.PersistHook, the minimal stand-in
// for the on-disk store.
type memHook struct {
	mu        sync.Mutex
	records   map[uint64]map[string]engine.Result
	batchEnds int
}

func newMemHook() *memHook { return &memHook{records: make(map[uint64]map[string]engine.Result)} }

func (h *memHook) Record(gen uint64, key string, r engine.Result) {
	h.mu.Lock()
	defer h.mu.Unlock()
	g, ok := h.records[gen]
	if !ok {
		g = make(map[string]engine.Result)
		h.records[gen] = g
	}
	g[key] = r
}

func (h *memHook) Generation(gen uint64) map[string]engine.Result {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]engine.Result, len(h.records[gen]))
	for k, r := range h.records[gen] {
		out[k] = r
	}
	return out
}

func (h *memHook) BatchEnd() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.batchEnds++
}

// TestPersistHookReceivesExecutions: every executed (not cached, not
// coalesced) result reaches the hook under the current generation, and
// batch boundaries are signalled.
func TestPersistHookReceivesExecutions(t *testing.T) {
	p := newSeqProc()
	g := engine.New(p)
	h := newMemHook()
	g.Persist = h

	exps := []portmodel.Experiment{{"a": 1}, {"a": 1}, {"b": 2}}
	if _, err := g.MeasureBatch(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if h.batchEnds != 1 {
		t.Errorf("BatchEnd called %d times, want 1", h.batchEnds)
	}
	gen0 := h.Generation(0)
	if len(gen0) != 2 {
		t.Fatalf("hook holds %d gen-0 records, want 2: %v", len(gen0), gen0)
	}
	for _, key := range []string{"1*a", "2*b"} {
		if r, ok := gen0[key]; !ok || r.Runs == 0 {
			t.Errorf("hook missing executed result for %q", key)
		}
	}

	// A cache hit must not be re-recorded as a new execution.
	if _, err := g.Measure(context.Background(), portmodel.Exp("a")); err != nil {
		t.Fatal(err)
	}
	if got := len(h.Generation(0)); got != 2 {
		t.Errorf("cache hit grew the hook to %d records", got)
	}
}

// TestBeginGenerationWarmsFromHook: switching generations clears the
// live cache and pre-warms it from the hook's records for the target
// generation; re-entering the current generation is a no-op.
func TestBeginGenerationWarmsFromHook(t *testing.T) {
	p := newSeqProc()
	g := engine.New(p)
	h := newMemHook()
	g.Persist = h
	e := portmodel.Exp("a")

	if _, err := g.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	baseline := p.calls.Load()

	// Same generation: the warm cache must survive.
	g.BeginGeneration(g.CacheGeneration())
	if _, err := g.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if p.calls.Load() != baseline {
		t.Fatal("BeginGeneration of the current generation dropped the cache")
	}

	// New generation: fresh noise, so the experiment re-executes and is
	// recorded under generation 1.
	g.BeginGeneration(1)
	if _, err := g.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if p.calls.Load() == baseline {
		t.Fatal("new generation answered from the old generation's cache")
	}
	if len(h.Generation(1)) != 1 {
		t.Fatalf("gen-1 records: %v", h.Generation(1))
	}

	// Back to generation 0 on a second engine sharing the hook: both
	// generations must be answerable without touching the processor.
	p2 := newSeqProc()
	g2 := engine.New(p2)
	g2.Persist = h
	g2.WarmCache(h.Generation(0))
	if _, err := g2.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	g2.BeginGeneration(1)
	if _, err := g2.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if got := p2.calls.Load(); got != 0 {
		t.Fatalf("warm engine executed %d times, want 0", got)
	}
	if got := g2.Metrics().CacheHits; got != 2 {
		t.Fatalf("warm engine cache hits = %d, want 2", got)
	}
}

// TestWarmCacheIgnoresUnmeasured: zero-value results (the cancelled-
// batch placeholder) must not warm the cache — they would otherwise be
// served as real measurements after a resume.
func TestWarmCacheIgnoresUnmeasured(t *testing.T) {
	p := newSeqProc()
	g := engine.New(p)
	g.WarmCache(map[string]engine.Result{"1*a": {}})
	if _, err := g.Measure(context.Background(), portmodel.Exp("a")); err != nil {
		t.Fatal(err)
	}
	if p.calls.Load() == 0 {
		t.Fatal("unmeasured placeholder was served from the cache")
	}
}

// TestFingerprintCoversMeasurementConfig: the fingerprint must change
// with every parameter that alters measured values, and must NOT
// depend on the worker count (results are worker-count invariant).
func TestFingerprintCoversMeasurementConfig(t *testing.T) {
	base := func() *engine.Engine { return engine.New(newSeqProc()) }
	fp := base().Fingerprint()

	mutations := map[string]func(*engine.Engine){
		"Reps":       func(g *engine.Engine) { g.Reps++ },
		"Iterations": func(g *engine.Engine) { g.Iterations *= 2 },
		"Epsilon":    func(g *engine.Engine) { g.Epsilon *= 2 },
	}
	for name, mutate := range mutations {
		g := base()
		mutate(g)
		if g.Fingerprint() == fp {
			t.Errorf("fingerprint unchanged by %s", name)
		}
	}

	g := base()
	g.Workers = 16
	if g.Fingerprint() != fp {
		t.Error("fingerprint depends on the worker count")
	}
}

// TestRemeasure: a forced re-measurement executes fresh samples,
// replaces the cache entry, and records a cumulative Runs total so
// exec-count replay of the persisted record stays exact.
func TestRemeasure(t *testing.T) {
	p := newSeqProc()
	g := engine.New(p)
	h := newMemHook()
	g.Persist = h
	e := portmodel.Exp("a")
	ctx := context.Background()

	first, err := g.Measure(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	callsBefore := p.calls.Load()

	second, err := g.Remeasure(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	fresh := int(p.calls.Load() - callsBefore)
	if fresh == 0 {
		t.Fatal("Remeasure did not touch the processor")
	}
	if second.Runs != first.Runs+fresh {
		t.Fatalf("Runs = %d, want %d prior + %d fresh", second.Runs, first.Runs, fresh)
	}

	// The cache now answers with the re-measured result.
	again, err := g.Measure(ctx, e)
	if err != nil {
		t.Fatal(err)
	}
	if again.Runs != second.Runs || again.InvThroughput != second.InvThroughput {
		t.Fatalf("cache kept the old result: %+v vs %+v", again, second)
	}

	// The persisted record carries the cumulative total.
	rec, ok := h.Generation(g.CacheGeneration())["1*a"]
	if !ok {
		t.Fatal("no persisted record for the key")
	}
	if rec.Runs != second.Runs {
		t.Fatalf("persisted Runs = %d, want %d", rec.Runs, second.Runs)
	}

	m := g.Metrics()
	if m.Remeasured != 1 {
		t.Fatalf("Remeasured = %d, want 1", m.Remeasured)
	}
	if m.Executed != 2 {
		t.Fatalf("Executed = %d, want 2 (initial + forced)", m.Executed)
	}
}

// TestRemeasureUncachedKey: re-measuring a never-measured experiment
// degrades to a plain first measurement.
func TestRemeasureUncachedKey(t *testing.T) {
	g := engine.New(newSeqProc())
	res, err := g.Remeasure(context.Background(), portmodel.Exp("b"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 || res.InvThroughput == 0 {
		t.Fatalf("empty result %+v", res)
	}
	if _, err := g.Remeasure(context.Background(), portmodel.Experiment{}); err == nil {
		t.Fatal("empty experiment accepted")
	}
}
