// Package engine is the batch measurement engine of the
// reproduction. The paper's case study spends 12–20 hours on
// hardware microbenchmarks, and measurement volume dominates the
// cost of every port-mapping inference approach (uops.info, PMEvo,
// and Ritter & Hack alike). The engine restructures the measurement
// path from call-at-a-time to batch-at-a-time: callers submit slices
// of experiments plus a context.Context, and the engine executes
// them across a configurable worker pool with
//
//   - a single canonical-key result cache,
//   - in-flight request deduplication (singleflight-style), so the
//     same experiment is never executed twice concurrently,
//   - bounded retry on transient Execute errors,
//   - cancellation that returns promptly with partial results, and
//   - progress/metrics hooks (submitted / executed / cache hits /
//     coalesced / wall-clock).
//
// Determinism under parallelism is the point: results must be
// bit-for-bit identical regardless of worker count and scheduling
// order. The engine guarantees that the set of processor executions
// and their per-kernel order depend only on the submitted
// experiments — never on scheduling — and the simulated machine
// (internal/zensim) derives its noise RNG per execution from
// (global seed, canonical kernel key, per-kernel repetition index),
// so any interleaving of distinct kernels draws identical noise.
//
// measure.Harness remains as a thin compatibility wrapper over this
// package for call-at-a-time use.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zenport/internal/portmodel"
)

// Counters are the raw performance-counter readings of one kernel
// run, totalled over all iterations.
type Counters struct {
	// Cycles is the measured core cycle count (noisy).
	Cycles float64
	// Instructions is the number of retired instructions.
	Instructions uint64
	// Ops is the reading of the "Retired Uops" counter. On the Zen+
	// model this counts macro-ops, not µops (§4.1.1).
	Ops uint64
	// PortOps[k] is the number of µops executed on port k. Only
	// populated when the processor exposes per-port counters (the
	// Intel-like mode used by the uops.info baseline); nil otherwise.
	PortOps []float64
	// FPPortOps[k] is the per-pipe counter of the four FP pipes,
	// which Zen+ does provide (§4, "port usage of FP/vector
	// instructions ... available").
	FPPortOps []float64
}

// Processor abstracts the machine under measurement — on real
// hardware this would drive nanoBench; here it is the Zen+ simulator
// or a toy model.
type Processor interface {
	// Execute runs the kernel (a list of scheme keys) for the given
	// number of steady-state iterations and returns total counters.
	Execute(kernel []string, iterations int) (Counters, error)
	// NumPorts returns the number of execution ports.
	NumPorts() int
	// Rmax returns the frontend/retire bottleneck in instructions
	// per cycle (0 = none).
	Rmax() float64
}

// Result is a processed measurement for one experiment. The zero
// value (Runs == 0) marks an experiment that was not measured — the
// partial-result signal after a cancelled batch.
type Result struct {
	// InvThroughput is the median inverse throughput in cycles per
	// experiment iteration.
	InvThroughput float64
	// CPI is InvThroughput divided by the number of instructions.
	CPI float64
	// OpsPerIteration is the median op-counter reading per
	// iteration (macro-ops on Zen+).
	OpsPerIteration float64
	// Spread is the relative spread (max−min)/median of the inverse
	// throughput across the repetitions. Bimodal measurements — the
	// unstable instructions of §4.1.2/§4.2 — show a large spread
	// that the median alone would hide.
	Spread float64
	// PortOps is the median per-port µop count per iteration (nil
	// without per-port counters).
	PortOps []float64
	// FPPortOps is the median per-FP-pipe µop count per iteration.
	FPPortOps []float64
	// Runs is the number of repetitions aggregated.
	Runs int
}

// TransientError marks an Execute failure as retryable: the engine
// re-issues the kernel up to Engine.MaxRetries times before giving
// up. Permanent errors (unknown schemes, bad iteration counts)
// abort immediately.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable.
func Transient(err error) error { return &TransientError{Err: err} }

// PersistHook is the engine's seam to a crash-safe on-disk layer
// (internal/persist). When Engine.Persist is set, every newly
// executed result is recorded, batch boundaries are announced (the
// store fsyncs and compacts there), and generation switches pull the
// stored results of the new generation to pre-warm the cache.
//
// Implementations must be safe for concurrent use: Record is called
// from worker goroutines.
type PersistHook interface {
	// Record persists one newly executed result under its cache
	// generation and canonical experiment key.
	Record(gen uint64, key string, r Result)
	// Generation returns the stored results of one generation, used
	// to warm the cache when the engine enters it.
	Generation(gen uint64) map[string]Result
	// BatchEnd marks the end of a MeasureBatch call — a consistency
	// point where the store may sync and compact.
	BatchEnd()
}

// ExecCountRestorer is an optional Processor extension for crash
// recovery. Processors that derive measurement noise from a
// per-kernel execution counter (internal/zensim) implement it so a
// resumed run can restore those counters from the journal; re-executed
// experiments then draw exactly the noise an uninterrupted run would
// have drawn, which is what makes resumed output byte-identical.
type ExecCountRestorer interface {
	// RestoreExecCount sets the number of prior executions of kernel.
	RestoreExecCount(kernel []string, executions uint64)
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Metrics is a snapshot of the engine's counters. All counts are
// cumulative over the engine's lifetime; ClearCache does not reset
// them.
type Metrics struct {
	// Submitted counts experiments handed to Measure/MeasureBatch.
	Submitted uint64
	// Completed counts experiments resolved with a result.
	Completed uint64
	// Executed counts distinct experiments actually run on the
	// processor (cache misses that completed).
	Executed uint64
	// CacheHits counts experiments answered from the result cache.
	CacheHits uint64
	// Coalesced counts experiments that joined a duplicate — either
	// within one batch or an in-flight execution of the same key.
	Coalesced uint64
	// Retries counts transient-error re-executions.
	Retries uint64
	// Canceled counts experiments abandoned due to context
	// cancellation or deadline.
	Canceled uint64
	// BatchWall is the cumulative wall-clock time spent inside
	// MeasureBatch.
	BatchWall time.Duration
}

// Engine executes measurement batches over a worker pool with a
// canonical-key cache. The exported configuration fields must be set
// before the first measurement and not mutated concurrently with
// one; New installs the paper's defaults.
type Engine struct {
	// P is the processor under measurement.
	P Processor
	// Reps is the number of repeated runs; the median is reported.
	// The paper uses 11.
	Reps int
	// Iterations is the number of kernel iterations per run.
	Iterations int
	// Epsilon is the CPI equality tolerance (paper: 0.02).
	Epsilon float64
	// Workers is the size of the batch worker pool (≤0 means
	// GOMAXPROCS). Results are identical for every value.
	Workers int
	// MaxRetries bounds re-executions after transient errors.
	MaxRetries int
	// OnProgress, if non-nil, receives (completed, total) after each
	// unique experiment of a batch finishes. It is called from
	// worker goroutines and must be safe for concurrent use.
	OnProgress func(done, total int)
	// Persist, if non-nil, receives every newly executed result and
	// warms the cache across generation switches; see PersistHook.
	// Set it before the first measurement (persist.Store.Attach does).
	Persist PersistHook

	mu       sync.Mutex
	cache    map[string]Result
	inflight map[string]*call
	// gen is the cache generation: BeginGeneration/ClearCache bump or
	// set it, and persisted results are keyed by it so independent
	// re-measurement rounds (the stage-4 characterization runs) do
	// not alias in the on-disk cache.
	gen uint64

	submitted atomic.Uint64
	completed atomic.Uint64
	executed  atomic.Uint64
	cacheHits atomic.Uint64
	coalesced atomic.Uint64
	retries   atomic.Uint64
	canceled  atomic.Uint64
	wallNanos atomic.Int64
}

// call is one in-flight execution other submitters can wait on.
type call struct {
	done chan struct{}
	res  Result
	err  error
}

// New returns an engine with the paper's measurement parameters: 11
// repetitions, 100 iterations per run, ε = 0.02 CPI, GOMAXPROCS
// workers, and up to 2 retries on transient errors.
func New(p Processor) *Engine {
	return &Engine{
		P: p, Reps: 11, Iterations: 100, Epsilon: 0.02, MaxRetries: 2,
		cache:    make(map[string]Result),
		inflight: make(map[string]*call),
	}
}

// CanonicalKey renders the experiment canonically ("n*key|m*key" in
// sorted key order); it is the cache and deduplication identity and
// the per-experiment RNG derivation input of the simulator.
func CanonicalKey(e portmodel.Experiment) string {
	keys := e.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d*%s", e[k], k))
	}
	return strings.Join(parts, "|")
}

// KernelOf flattens an experiment multiset into a deterministic
// kernel: instructions interleaved round-robin so that the blocking
// instructions surround the instruction under investigation, as the
// paper's microbenchmarks do.
func KernelOf(e portmodel.Experiment) []string {
	keys := e.Keys()
	remaining := make([]int, len(keys))
	total := 0
	for i, k := range keys {
		remaining[i] = e[k]
		total += e[k]
	}
	kernel := make([]string, 0, total)
	for len(kernel) < total {
		for i, k := range keys {
			if remaining[i] > 0 {
				kernel = append(kernel, k)
				remaining[i]--
			}
		}
	}
	return kernel
}

// Measure runs one experiment through the cache, in-flight
// deduplication, and the processor, honoring ctx.
func (g *Engine) Measure(ctx context.Context, e portmodel.Experiment) (Result, error) {
	if e.Len() == 0 {
		return Result{}, fmt.Errorf("engine: empty experiment")
	}
	g.submitted.Add(1)
	return g.measureKey(ctx, CanonicalKey(e), e)
}

// MeasureBatch executes the experiments across the worker pool and
// returns results aligned with the input slice. Duplicate
// experiments (same canonical key) are executed once. On
// cancellation or error the partial results are returned together
// with the first error; completed entries have Runs > 0.
//
// Results are deterministic: the set of processor executions and
// their per-kernel order depend only on the submitted experiments,
// never on Workers or goroutine scheduling.
func (g *Engine) MeasureBatch(ctx context.Context, exps []portmodel.Experiment) ([]Result, error) {
	start := time.Now()
	defer func() { g.wallNanos.Add(int64(time.Since(start))) }()

	results := make([]Result, len(exps))
	g.submitted.Add(uint64(len(exps)))

	// Deduplicate within the batch, preserving first-seen order.
	type job struct {
		key  string
		exp  portmodel.Experiment
		idxs []int
	}
	byKey := make(map[string]*job, len(exps))
	var order []*job
	for i, e := range exps {
		if e.Len() == 0 {
			return nil, fmt.Errorf("engine: empty experiment at index %d", i)
		}
		k := CanonicalKey(e)
		j, ok := byKey[k]
		if !ok {
			j = &job{key: k, exp: e}
			byKey[k] = j
			order = append(order, j)
		} else {
			g.coalesced.Add(1)
			g.completed.Add(1) // resolved by the first occurrence
		}
		j.idxs = append(j.idxs, i)
	}

	workers := g.workerCount()
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		return results, nil
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
		done     atomic.Int64
		jobs     = make(chan *job)
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := g.measureKey(bctx, j.key, j.exp)
				if err != nil {
					fail(err)
					continue
				}
				for _, i := range j.idxs {
					results[i] = r
				}
				n := done.Add(1)
				if g.OnProgress != nil {
					g.OnProgress(int(n), len(order))
				}
			}
		}()
	}
feed:
	for _, j := range order {
		select {
		case jobs <- j:
		case <-bctx.Done():
			fail(bctx.Err())
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if g.Persist != nil {
		g.Persist.BatchEnd()
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// InvThroughputs is MeasureBatch returning only the median inverse
// throughputs.
func (g *Engine) InvThroughputs(ctx context.Context, exps []portmodel.Experiment) ([]float64, error) {
	rs, err := g.MeasureBatch(ctx, exps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.InvThroughput
	}
	return out, nil
}

// measureKey resolves one canonical key through cache and in-flight
// deduplication. If a concurrent leader fails, the caller retries as
// leader itself so the error it reports reflects its own context.
func (g *Engine) measureKey(ctx context.Context, key string, e portmodel.Experiment) (Result, error) {
	for {
		g.mu.Lock()
		if r, ok := g.cache[key]; ok {
			g.mu.Unlock()
			g.cacheHits.Add(1)
			g.completed.Add(1)
			return r, nil
		}
		if c, ok := g.inflight[key]; ok {
			g.mu.Unlock()
			g.coalesced.Add(1)
			select {
			case <-c.done:
				if c.err != nil {
					continue // leader failed; try to lead ourselves
				}
				g.completed.Add(1)
				return c.res, nil
			case <-ctx.Done():
				g.canceled.Add(1)
				return Result{}, ctx.Err()
			}
		}
		c := &call{done: make(chan struct{})}
		g.inflight[key] = c
		g.mu.Unlock()

		c.res, c.err = g.execute(ctx, e)
		g.mu.Lock()
		delete(g.inflight, key)
		gen := g.gen
		if c.err == nil {
			g.cache[key] = c.res
		}
		g.mu.Unlock()
		if c.err == nil && g.Persist != nil {
			g.Persist.Record(gen, key, c.res)
		}
		close(c.done)
		if c.err != nil {
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
				g.canceled.Add(1)
			}
			return Result{}, c.err
		}
		g.executed.Add(1)
		g.completed.Add(1)
		return c.res, nil
	}
}

// execute runs the experiment Reps times and aggregates the median
// result, checking ctx between repetitions.
func (g *Engine) execute(ctx context.Context, e portmodel.Experiment) (Result, error) {
	kernel := KernelOf(e)
	n := len(kernel)
	reps := g.Reps
	if reps < 1 {
		reps = 1
	}
	iters := g.Iterations
	if iters < 1 {
		iters = 100
	}

	cyc := make([]float64, 0, reps)
	ops := make([]float64, 0, reps)
	var portOps [][]float64
	var fpOps [][]float64
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		c, err := g.executeOnce(ctx, kernel, iters)
		if err != nil {
			return Result{}, err
		}
		cyc = append(cyc, c.Cycles/float64(iters))
		ops = append(ops, float64(c.Ops)/float64(iters))
		if c.PortOps != nil {
			po := make([]float64, len(c.PortOps))
			for k := range po {
				po[k] = c.PortOps[k] / float64(iters)
			}
			portOps = append(portOps, po)
		}
		if c.FPPortOps != nil {
			fo := make([]float64, len(c.FPPortOps))
			for k := range fo {
				fo[k] = c.FPPortOps[k] / float64(iters)
			}
			fpOps = append(fpOps, fo)
		}
	}
	res := Result{
		InvThroughput:   median(cyc),
		OpsPerIteration: median(ops),
		Runs:            reps,
	}
	res.CPI = res.InvThroughput / float64(n)
	if res.InvThroughput > 0 {
		lo, hi := cyc[0], cyc[len(cyc)-1] // median() sorted cyc
		res.Spread = (hi - lo) / res.InvThroughput
	}
	if len(portOps) > 0 {
		res.PortOps = medianVec(portOps)
	}
	if len(fpOps) > 0 {
		res.FPPortOps = medianVec(fpOps)
	}
	return res, nil
}

// executeOnce issues one kernel run with bounded retry on transient
// errors. The retry loop consults ctx between attempts: a canceled
// batch must not keep re-executing failing kernels up to MaxRetries.
func (g *Engine) executeOnce(ctx context.Context, kernel []string, iters int) (Counters, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Counters{}, err
		}
		c, err := g.P.Execute(kernel, iters)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if !IsTransient(err) || attempt >= g.MaxRetries {
			return Counters{}, lastErr
		}
		g.retries.Add(1)
	}
}

// workerCount resolves the configured pool size.
func (g *Engine) workerCount() int {
	if g.Workers > 0 {
		return g.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MeasurementCount returns the number of distinct experiments
// actually executed on the processor (cache misses).
func (g *Engine) MeasurementCount() int {
	return int(g.executed.Load())
}

// Metrics returns a snapshot of the engine's counters.
func (g *Engine) Metrics() Metrics {
	return Metrics{
		Submitted: g.submitted.Load(),
		Completed: g.completed.Load(),
		Executed:  g.executed.Load(),
		CacheHits: g.cacheHits.Load(),
		Coalesced: g.coalesced.Load(),
		Retries:   g.retries.Load(),
		Canceled:  g.canceled.Load(),
		BatchWall: time.Duration(g.wallNanos.Load()),
	}
}

// ClearCache drops all cached results (used when re-running the
// characterization stage with fresh noise, §4.4) by advancing to the
// next cache generation. Metrics are preserved.
func (g *Engine) ClearCache() {
	g.mu.Lock()
	next := g.gen + 1
	g.mu.Unlock()
	g.BeginGeneration(next)
}

// Fingerprint identifies the engine's measurement parameters for the
// persistence layer. Workers is deliberately excluded: results are
// byte-identical at any worker count, so a cache written at
// -parallel 4 is valid at -parallel 16.
func (g *Engine) Fingerprint() string {
	return fmt.Sprintf("engine:v1 reps=%d iters=%d eps=%g", g.Reps, g.Iterations, g.Epsilon)
}

// CacheGeneration returns the current cache generation.
func (g *Engine) CacheGeneration() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// BeginGeneration enters cache generation n: a no-op when already
// there (the warm cache is kept), otherwise the in-memory cache is
// reset and — with a persist hook attached — pre-warmed with the
// stored results of generation n. The inference pipeline names its
// stage-4 characterization runs explicitly with this so a resumed run
// lands in the same generation, and the same on-disk results, as the
// interrupted one.
func (g *Engine) BeginGeneration(n uint64) {
	g.mu.Lock()
	if n == g.gen {
		g.mu.Unlock()
		return
	}
	g.gen = n
	g.cache = make(map[string]Result)
	g.mu.Unlock()
	if g.Persist != nil {
		g.WarmCache(g.Persist.Generation(n))
	}
}

// WarmCache merges previously persisted results into the cache.
// Warmed entries are answered as cache hits; they do not count as
// executions.
func (g *Engine) WarmCache(results map[string]Result) {
	if len(results) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for k, r := range results {
		if r.Runs > 0 {
			g.cache[k] = r
		}
	}
}

// median returns the median of xs (xs is reordered).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// medianVec returns the component-wise median of equal-length vectors.
func medianVec(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	col := make([]float64, len(vs))
	for k := range out {
		for i := range vs {
			col[i] = vs[i][k]
		}
		out[k] = median(col)
	}
	return out
}
