// Package engine is the batch measurement engine of the
// reproduction. The paper's case study spends 12–20 hours on
// hardware microbenchmarks, and measurement volume dominates the
// cost of every port-mapping inference approach (uops.info, PMEvo,
// and Ritter & Hack alike). The engine restructures the measurement
// path from call-at-a-time to batch-at-a-time: callers submit slices
// of experiments plus a context.Context, and the engine executes
// them across a configurable worker pool with
//
//   - a single canonical-key result cache,
//   - in-flight request deduplication (singleflight-style), so the
//     same experiment is never executed twice concurrently,
//   - bounded retry on transient Execute errors,
//   - cancellation that returns promptly with partial results, and
//   - progress/metrics hooks (submitted / executed / cache hits /
//     coalesced / wall-clock).
//
// Determinism under parallelism is the point: results must be
// bit-for-bit identical regardless of worker count and scheduling
// order. The engine guarantees that the set of processor executions
// and their per-kernel order depend only on the submitted
// experiments — never on scheduling — and the simulated machine
// (internal/zensim) derives its noise RNG per execution from
// (global seed, canonical kernel key, per-kernel repetition index),
// so any interleaving of distinct kernels draws identical noise.
//
// measure.Harness remains as a thin compatibility wrapper over this
// package for call-at-a-time use.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zenport/internal/portmodel"
	"zenport/internal/stats"
)

// Counters are the raw performance-counter readings of one kernel
// run, totalled over all iterations.
type Counters struct {
	// Cycles is the measured core cycle count (noisy).
	Cycles float64
	// Instructions is the number of retired instructions.
	Instructions uint64
	// Ops is the reading of the "Retired Uops" counter. On the Zen+
	// model this counts macro-ops, not µops (§4.1.1).
	Ops uint64
	// PortOps[k] is the number of µops executed on port k. Only
	// populated when the processor exposes per-port counters (the
	// Intel-like mode used by the uops.info baseline); nil otherwise.
	PortOps []float64
	// FPPortOps[k] is the per-pipe counter of the four FP pipes,
	// which Zen+ does provide (§4, "port usage of FP/vector
	// instructions ... available").
	FPPortOps []float64
}

// Processor abstracts the machine under measurement — on real
// hardware this would drive nanoBench; here it is the Zen+ simulator
// or a toy model.
type Processor interface {
	// Execute runs the kernel (a list of scheme keys) for the given
	// number of steady-state iterations and returns total counters.
	Execute(kernel []string, iterations int) (Counters, error)
	// NumPorts returns the number of execution ports.
	NumPorts() int
	// Rmax returns the frontend/retire bottleneck in instructions
	// per cycle (0 = none).
	Rmax() float64
}

// Result is a processed measurement for one experiment. The zero
// value (Runs == 0) marks an experiment that was not measured — the
// partial-result signal after a cancelled batch.
type Result struct {
	// InvThroughput is the median inverse throughput in cycles per
	// experiment iteration, over the samples that survived outlier
	// rejection.
	InvThroughput float64
	// CPI is InvThroughput divided by the number of instructions.
	CPI float64
	// OpsPerIteration is the median op-counter reading per
	// iteration (macro-ops on Zen+).
	OpsPerIteration float64
	// Spread is the raw relative spread (max−min)/median of the
	// inverse throughput across the surviving samples. Bimodal
	// measurements — the unstable instructions of §4.1.2/§4.2 — show
	// a large spread that the median alone would hide; the outlier
	// rejection deliberately keeps such modes (they sit far inside
	// the rejection window), so this signal survives it.
	Spread float64
	// PortOps is the median per-port µop count per iteration (nil
	// without per-port counters).
	PortOps []float64
	// FPPortOps is the median per-FP-pipe µop count per iteration.
	FPPortOps []float64
	// Runs is the total number of successful processor executions
	// behind this result, including rejected samples. The persistence
	// layer restores per-kernel execution counters from it, so it
	// must count executions (RNG draws), not surviving samples.
	Runs int
	// Quality describes how trustworthy the result is.
	Quality Quality
}

// Quality is the confidence record of one measurement: how many
// samples the adaptive collection kept and rejected, how concentrated
// the survivors are, and whether the engine gave up on reaching its
// quality target. Low-confidence results are flagged, never fatal —
// the pipeline proceeds with them and reports them as degraded.
type Quality struct {
	// Kept is the number of samples that survived outlier rejection
	// and fed the medians.
	Kept int
	// Rejected is the number of samples discarded as outliers.
	Rejected int
	// Spread is the robust relative spread (IQR/median) of the kept
	// samples — the quantity the escalation loop drives under the
	// quality threshold.
	Spread float64
	// Quarantined records that the measurement missed the quality
	// target at the repetition cap and earned one extra re-measured
	// batch.
	Quarantined bool
	// LowConfidence marks a measurement that still missed the quality
	// target after quarantine. Consumers should treat the value as
	// usable but degraded.
	LowConfidence bool
}

// TransientError marks an Execute failure as retryable: the engine
// re-issues the kernel up to Engine.MaxRetries times before giving
// up. Permanent errors (unknown schemes, bad iteration counts)
// abort immediately.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the underlying error.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable.
func Transient(err error) error { return &TransientError{Err: err} }

// PersistHook is the engine's seam to a crash-safe on-disk layer
// (internal/persist). When Engine.Persist is set, every newly
// executed result is recorded, batch boundaries are announced (the
// store fsyncs and compacts there), and generation switches pull the
// stored results of the new generation to pre-warm the cache.
//
// Implementations must be safe for concurrent use: Record is called
// from worker goroutines.
type PersistHook interface {
	// Record persists one newly executed result under its cache
	// generation and canonical experiment key.
	Record(gen uint64, key string, r Result)
	// Generation returns the stored results of one generation, used
	// to warm the cache when the engine enters it.
	Generation(gen uint64) map[string]Result
	// BatchEnd marks the end of a MeasureBatch call — a consistency
	// point where the store may sync and compact.
	BatchEnd()
}

// ContextProcessor is an optional Processor extension for machines
// whose executions can block (real hardware wedging, injected hangs):
// the engine prefers ExecuteContext when available, so a cancelled
// context interrupts the execution itself rather than only the gaps
// between executions.
type ContextProcessor interface {
	// ExecuteContext is Execute observing ctx while it runs.
	ExecuteContext(ctx context.Context, kernel []string, iterations int) (Counters, error)
}

// ExecCountRestorer is an optional Processor extension for crash
// recovery. Processors that derive measurement noise from a
// per-kernel execution counter (internal/zensim) implement it so a
// resumed run can restore those counters from the journal; re-executed
// experiments then draw exactly the noise an uninterrupted run would
// have drawn, which is what makes resumed output byte-identical.
type ExecCountRestorer interface {
	// RestoreExecCount sets the number of prior executions of kernel.
	RestoreExecCount(kernel []string, executions uint64)
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Metrics is a snapshot of the engine's counters. All counts are
// cumulative over the engine's lifetime; ClearCache does not reset
// them.
type Metrics struct {
	// Submitted counts experiments handed to Measure/MeasureBatch.
	Submitted uint64
	// Completed counts experiments resolved with a result.
	Completed uint64
	// Executed counts distinct experiments actually run on the
	// processor (cache misses that completed).
	Executed uint64
	// CacheHits counts experiments answered from the result cache.
	CacheHits uint64
	// Coalesced counts experiments that joined a duplicate — either
	// within one batch or an in-flight execution of the same key.
	Coalesced uint64
	// Retries counts transient-error re-executions.
	Retries uint64
	// Canceled counts experiments abandoned due to context
	// cancellation or deadline.
	Canceled uint64
	// BatchWall is the cumulative wall-clock time spent inside
	// MeasureBatch.
	BatchWall time.Duration
	// ProcessorCalls counts individual processor execution attempts,
	// including retried failures and adaptive escalation — the raw
	// measurement volume behind Executed.
	ProcessorCalls uint64
	// SamplesKept / SamplesRejected total the per-result Quality
	// sample accounting across all executed experiments.
	SamplesKept     uint64
	SamplesRejected uint64
	// Quarantined counts measurements that missed the quality target
	// at the repetition cap and were re-measured once.
	Quarantined uint64
	// LowConfidence counts executed measurements still flagged after
	// quarantine.
	LowConfidence uint64
	// MaxSpread / MeanSpread aggregate Result.Spread over executed
	// experiments (mean is over executions; 0 when nothing ran).
	MaxSpread  float64
	MeanSpread float64
	// BackoffWait is the cumulative time spent sleeping between
	// transient-error retries.
	BackoffWait time.Duration
	// Remeasured counts forced re-measurements of already-cached
	// experiments (the solver supervision's inconsistency recovery).
	Remeasured uint64
}

// Engine executes measurement batches over a worker pool with a
// canonical-key cache. The exported configuration fields must be set
// before the first measurement and not mutated concurrently with
// one; New installs the paper's defaults.
type Engine struct {
	// P is the processor under measurement.
	P Processor
	// Reps is the number of repeated runs; the median is reported.
	// The paper uses 11.
	Reps int
	// Iterations is the number of kernel iterations per run.
	Iterations int
	// Epsilon is the CPI equality tolerance (paper: 0.02).
	Epsilon float64
	// Workers is the size of the batch worker pool (≤0 means
	// GOMAXPROCS). Results are identical for every value.
	Workers int
	// MaxRetries bounds re-executions after transient errors.
	MaxRetries int
	// QualitySpread is the robust-spread (IQR/median) target of the
	// adaptive repetition loop: collection escalates past Reps while
	// the surviving samples spread wider than this (0 means the 0.05
	// default). It changes measured results, so it is part of the
	// fingerprint.
	QualitySpread float64
	// MaxReps caps the adaptive escalation (0 means 3×Reps). A
	// measurement still missing the quality target at the cap is
	// quarantined — granted one extra batch of Reps samples — and
	// then flagged low-confidence rather than failed.
	MaxReps int
	// BackoffBase is the first retry delay after a transient error;
	// subsequent attempts double it up to BackoffMax, with
	// deterministic per-kernel jitter. 0 means 100µs; negative
	// disables backoff. The sleep observes ctx.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff delay (0 means 10ms).
	BackoffMax time.Duration
	// OnProgress, if non-nil, receives (completed, total) after each
	// unique experiment of a batch finishes. It is called from
	// worker goroutines and must be safe for concurrent use.
	OnProgress func(done, total int)
	// Persist, if non-nil, receives every newly executed result and
	// warms the cache across generation switches; see PersistHook.
	// Set it before the first measurement (persist.Store.Attach does).
	Persist PersistHook

	mu    sync.Mutex
	cache map[string]Result
	// flight deduplicates concurrent executions of the same canonical
	// key. It shares mu, so the cache probe and the in-flight registry
	// are checked atomically (see Flight).
	flight *Flight[Result]
	// gen is the cache generation: BeginGeneration/ClearCache bump or
	// set it, and persisted results are keyed by it so independent
	// re-measurement rounds (the stage-4 characterization runs) do
	// not alias in the on-disk cache.
	gen uint64
	// lowConf registers every low-confidence result seen over the
	// engine's lifetime (executed or warmed from the cache), keyed by
	// canonical key — the source of the pipeline's degradation
	// report. Generations do not clear it; worst spread wins.
	lowConf map[string]Quality

	submitted   atomic.Uint64
	completed   atomic.Uint64
	executed    atomic.Uint64
	cacheHits   atomic.Uint64
	coalesced   atomic.Uint64
	retries     atomic.Uint64
	canceled    atomic.Uint64
	wallNanos   atomic.Int64
	procCalls   atomic.Uint64
	kept        atomic.Uint64
	rejected    atomic.Uint64
	quarantined atomic.Uint64
	lowConfN    atomic.Uint64
	maxSpread   atomic.Uint64 // float64 bits, CAS-maxed
	spreadSum   atomic.Uint64 // float64 bits, CAS-added
	backoffNano atomic.Int64
	remeasured  atomic.Uint64
}

// New returns an engine with the paper's measurement parameters: 11
// repetitions, 100 iterations per run, ε = 0.02 CPI, GOMAXPROCS
// workers, up to 2 retries on transient errors, a 5% robust-spread
// quality target with escalation capped at 3×Reps, and 100µs–10ms
// retry backoff.
func New(p Processor) *Engine {
	g := &Engine{
		P: p, Reps: 11, Iterations: 100, Epsilon: 0.02, MaxRetries: 2,
		QualitySpread: 0.05,
		cache:         make(map[string]Result),
		lowConf:       make(map[string]Quality),
	}
	g.flight = NewFlight[Result](&g.mu)
	return g
}

// CanonicalKey renders the experiment canonically ("n*key|m*key" in
// sorted key order); it is the cache and deduplication identity and
// the per-experiment RNG derivation input of the simulator.
func CanonicalKey(e portmodel.Experiment) string {
	keys := e.Keys()
	var b strings.Builder
	grow := 0
	for _, k := range keys {
		grow += len(k) + 13 // count digits + '*' + '|'
	}
	b.Grow(grow)
	var num [20]byte
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('|')
		}
		b.Write(strconv.AppendInt(num[:0], int64(e[k]), 10))
		b.WriteByte('*')
		b.WriteString(k)
	}
	return b.String()
}

// KernelOf flattens an experiment multiset into a deterministic
// kernel: instructions interleaved round-robin so that the blocking
// instructions surround the instruction under investigation, as the
// paper's microbenchmarks do.
func KernelOf(e portmodel.Experiment) []string {
	keys := e.Keys()
	remaining := make([]int, len(keys))
	total := 0
	for i, k := range keys {
		remaining[i] = e[k]
		total += e[k]
	}
	kernel := make([]string, 0, total)
	for len(kernel) < total {
		for i, k := range keys {
			if remaining[i] > 0 {
				kernel = append(kernel, k)
				remaining[i]--
			}
		}
	}
	return kernel
}

// Measure runs one experiment through the cache, in-flight
// deduplication, and the processor, honoring ctx.
func (g *Engine) Measure(ctx context.Context, e portmodel.Experiment) (Result, error) {
	if e.Len() == 0 {
		return Result{}, fmt.Errorf("engine: empty experiment")
	}
	g.submitted.Add(1)
	return g.measureKey(ctx, CanonicalKey(e), e)
}

// MeasureBatch executes the experiments across the worker pool and
// returns results aligned with the input slice. Duplicate
// experiments (same canonical key) are executed once. On
// cancellation or error the partial results are returned together
// with the first error; completed entries have Runs > 0.
//
// Results are deterministic: the set of processor executions and
// their per-kernel order depend only on the submitted experiments,
// never on Workers or goroutine scheduling.
func (g *Engine) MeasureBatch(ctx context.Context, exps []portmodel.Experiment) ([]Result, error) {
	start := time.Now()
	defer func() { g.wallNanos.Add(int64(time.Since(start))) }()

	results := make([]Result, len(exps))
	g.submitted.Add(uint64(len(exps)))

	// Deduplicate within the batch, preserving first-seen order.
	type job struct {
		key  string
		exp  portmodel.Experiment
		idxs []int
	}
	byKey := make(map[string]*job, len(exps))
	var order []*job
	for i, e := range exps {
		if e.Len() == 0 {
			return nil, fmt.Errorf("engine: empty experiment at index %d", i)
		}
		k := CanonicalKey(e)
		j, ok := byKey[k]
		if !ok {
			j = &job{key: k, exp: e}
			byKey[k] = j
			order = append(order, j)
		} else {
			g.coalesced.Add(1)
			g.completed.Add(1) // resolved by the first occurrence
		}
		j.idxs = append(j.idxs, i)
	}

	workers := g.workerCount()
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		return results, nil
	}

	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
		done     atomic.Int64
		jobs     = make(chan *job)
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := g.measureKey(bctx, j.key, j.exp)
				if err != nil {
					fail(err)
					continue
				}
				for _, i := range j.idxs {
					results[i] = r
				}
				n := done.Add(1)
				if g.OnProgress != nil {
					g.OnProgress(int(n), len(order))
				}
			}
		}()
	}
feed:
	for _, j := range order {
		select {
		case jobs <- j:
		case <-bctx.Done():
			fail(bctx.Err())
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if g.Persist != nil {
		g.Persist.BatchEnd()
	}
	if firstErr != nil {
		return results, firstErr
	}
	return results, nil
}

// InvThroughputs is MeasureBatch returning only the median inverse
// throughputs.
func (g *Engine) InvThroughputs(ctx context.Context, exps []portmodel.Experiment) ([]float64, error) {
	rs, err := g.MeasureBatch(ctx, exps)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.InvThroughput
	}
	return out, nil
}

// measureKey resolves one canonical key through the cache and the
// flight's in-flight deduplication. If a concurrent leader fails, the
// caller retries as leader itself so the error it reports reflects its
// own context. The probe, commit, and publish hooks run under the
// engine mutex / outside it exactly as the pre-Flight inline code did,
// so cache fills, low-confidence registration, generation capture, and
// journal records keep their ordering guarantees.
func (g *Engine) measureKey(ctx context.Context, key string, e portmodel.Experiment) (Result, error) {
	var gen uint64
	r, out, err := g.flight.Do(ctx, key,
		func() (Result, bool) {
			r, ok := g.cache[key]
			return r, ok
		},
		func() (Result, error) { return g.execute(ctx, e) },
		func(r Result) {
			g.cache[key] = r
			if r.Quality.LowConfidence {
				g.noteLowConfLocked(key, r.Quality)
			}
			gen = g.gen
		},
		func(r Result) {
			if g.Persist != nil {
				g.Persist.Record(gen, key, r)
			}
		})
	g.coalesced.Add(uint64(out.Joined))
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			g.canceled.Add(1)
		}
		return Result{}, err
	}
	switch {
	case out.Hit:
		g.cacheHits.Add(1)
	case out.Led:
		g.executed.Add(1)
	}
	g.completed.Add(1)
	return r, nil
}

// Outlier-rejection gates of the adaptive collection: a sample is an
// outlier when it sits more than rejectKMAD robust standard deviations
// AND more than rejectMinRel × median away from the median (the
// threshold is the max of the two distances). The wide relative floor
// is deliberate: the bimodal instabilities of §4.1.2/§4.2 place their
// modes well within 3× of the median and must survive rejection at
// any mode split — they are a signal the spread-based exclusion
// stages consume — while corrupted samples (a 10× latency spike) sit
// far outside it.
const (
	rejectKMAD   = 3.5
	rejectMinRel = 3.0
)

// sample is the per-iteration reading of one successful execution.
type sample struct {
	cyc, ops float64
	port, fp []float64
}

// execute runs the experiment adaptively: an initial batch of Reps
// samples, MAD-based outlier rejection, then escalating repetitions
// (up to MaxReps, plus one quarantine batch) until the robust spread
// of the surviving samples falls under QualitySpread. Measurements
// that never get there are flagged low-confidence, not failed. ctx is
// checked between repetitions.
//
// Every decision in this loop — rejection, escalation, quarantine —
// depends only on the samples of this kernel, which themselves depend
// only on (kernel, per-kernel execution index). Adaptive repetition
// therefore preserves the engine's worker-count invariance.
func (g *Engine) execute(ctx context.Context, e portmodel.Experiment) (Result, error) {
	kernel := KernelOf(e)
	reps := g.Reps
	if reps < 1 {
		reps = 1
	}
	iters := g.Iterations
	if iters < 1 {
		iters = 100
	}
	maxReps := g.MaxReps
	if maxReps < 1 {
		maxReps = 3 * reps
	}
	if maxReps < reps {
		maxReps = reps
	}
	qspread := g.QualitySpread
	if qspread == 0 {
		qspread = 0.05
	}

	var ss []sample
	collect := func(k int) error {
		for i := 0; i < k; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			c, err := g.executeOnce(ctx, kernel, iters)
			if err != nil {
				return err
			}
			s := sample{cyc: c.Cycles / float64(iters), ops: float64(c.Ops) / float64(iters)}
			if c.PortOps != nil {
				s.port = scaled(c.PortOps, iters)
			}
			if c.FPPortOps != nil {
				s.fp = scaled(c.FPPortOps, iters)
			}
			ss = append(ss, s)
		}
		return nil
	}
	if err := collect(reps); err != nil {
		return Result{}, err
	}

	budget := maxReps
	var keep []bool
	var q Quality
	for {
		cyc := make([]float64, len(ss))
		for i, s := range ss {
			cyc[i] = s.cyc
		}
		var rej int
		keep, rej = stats.RejectOutliers(cyc, rejectKMAD, rejectMinRel)
		kept := masked(cyc, keep)
		q = Quality{Kept: len(kept), Rejected: rej, Spread: stats.RobustSpread(kept), Quarantined: q.Quarantined}
		if q.Spread <= qspread {
			break
		}
		if len(ss) < budget {
			step := reps
			if len(ss)+step > budget {
				step = budget - len(ss)
			}
			if err := collect(step); err != nil {
				return Result{}, err
			}
			continue
		}
		if !q.Quarantined {
			// Quality target missed at the cap: quarantine the
			// measurement and re-measure once (one more batch pooled
			// with what we have) before giving up on the target.
			q.Quarantined = true
			g.quarantined.Add(1)
			budget += reps
			continue
		}
		q.LowConfidence = true
		break
	}

	res := Result{Runs: len(ss), Quality: q}
	var cyc, ops []float64
	var portOps, fpOps [][]float64
	for i, s := range ss {
		if !keep[i] {
			continue
		}
		cyc = append(cyc, s.cyc)
		ops = append(ops, s.ops)
		if s.port != nil {
			portOps = append(portOps, s.port)
		}
		if s.fp != nil {
			fpOps = append(fpOps, s.fp)
		}
	}
	res.InvThroughput = median(cyc)
	res.OpsPerIteration = median(ops)
	res.CPI = res.InvThroughput / float64(len(kernel))
	if res.InvThroughput > 0 {
		lo, hi := cyc[0], cyc[len(cyc)-1] // median() sorted cyc
		res.Spread = (hi - lo) / res.InvThroughput
	}
	if len(portOps) > 0 {
		res.PortOps = medianVec(portOps)
	}
	if len(fpOps) > 0 {
		res.FPPortOps = medianVec(fpOps)
	}

	g.kept.Add(uint64(q.Kept))
	g.rejected.Add(uint64(q.Rejected))
	if q.LowConfidence {
		g.lowConfN.Add(1)
	}
	g.recordSpread(res.Spread)
	return res, nil
}

// scaled divides a counter vector by the iteration count.
func scaled(v []float64, iters int) []float64 {
	out := make([]float64, len(v))
	for k := range v {
		out[k] = v[k] / float64(iters)
	}
	return out
}

// masked returns the kept elements of xs.
func masked(xs []float64, keep []bool) []float64 {
	out := make([]float64, 0, len(xs))
	for i, x := range xs {
		if keep[i] {
			out = append(out, x)
		}
	}
	return out
}

// recordSpread folds one result spread into the max/mean aggregates
// with lock-free CAS loops (Record is called from worker goroutines).
func (g *Engine) recordSpread(s float64) {
	for {
		old := g.maxSpread.Load()
		if s <= math.Float64frombits(old) {
			break
		}
		if g.maxSpread.CompareAndSwap(old, math.Float64bits(s)) {
			break
		}
	}
	for {
		old := g.spreadSum.Load()
		if g.spreadSum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s)) {
			break
		}
	}
}

// executeOnce issues one kernel run with bounded retry on transient
// errors, sleeping an exponentially growing, deterministically
// jittered delay between attempts. The retry loop and the sleep both
// consult ctx: a canceled batch must not keep re-executing failing
// kernels up to MaxRetries, nor finish a backoff sleep. Processors
// implementing ContextProcessor are additionally interruptible inside
// the execution itself.
func (g *Engine) executeOnce(ctx context.Context, kernel []string, iters int) (Counters, error) {
	cp, hasCtx := g.P.(ContextProcessor)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Counters{}, err
		}
		g.procCalls.Add(1)
		var c Counters
		var err error
		if hasCtx {
			c, err = cp.ExecuteContext(ctx, kernel, iters)
		} else {
			c, err = g.P.Execute(kernel, iters)
		}
		if err == nil {
			return c, nil
		}
		lastErr = err
		if !IsTransient(err) || attempt >= g.MaxRetries {
			return Counters{}, lastErr
		}
		g.retries.Add(1)
		if err := g.backoff(ctx, kernel, attempt); err != nil {
			return Counters{}, err
		}
	}
}

// backoff sleeps before retry number attempt+1: BackoffBase doubled
// per attempt, capped at BackoffMax, jittered into [d/2, d] by a
// deterministic hash of (kernel, attempt) — reruns back off
// identically, while concurrently failing kernels decorrelate. The
// sleep observes ctx and its cost lands in Metrics.BackoffWait.
func (g *Engine) backoff(ctx context.Context, kernel []string, attempt int) error {
	base := g.BackoffBase
	if base < 0 {
		return nil
	}
	if base == 0 {
		base = 100 * time.Microsecond
	}
	maxd := g.BackoffMax
	if maxd <= 0 {
		maxd = 10 * time.Millisecond
	}
	d := base << uint(attempt)
	if d <= 0 || d > maxd {
		d = maxd
	}
	h := fnv.New64a()
	for _, k := range kernel {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{0})
	}
	z := splitmix64(h.Sum64() ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15)
	wait := d/2 + time.Duration(z%uint64(d/2+1))
	start := time.Now()
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-ctx.Done():
		g.backoffNano.Add(int64(time.Since(start)))
		return ctx.Err()
	case <-t.C:
		g.backoffNano.Add(int64(wait))
		return nil
	}
}

// splitmix64 is the finalizer of the SplitMix64 generator, used to
// scatter the structured backoff-jitter inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// workerCount resolves the configured pool size.
func (g *Engine) workerCount() int {
	if g.Workers > 0 {
		return g.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MeasurementCount returns the number of distinct experiments
// actually executed on the processor (cache misses).
func (g *Engine) MeasurementCount() int {
	return int(g.executed.Load())
}

// Progress returns a cheap monotonically increasing activity counter:
// it advances whenever the engine does work (processor calls, cache
// hits, completed measurements). The shard lease heartbeat publishes
// it so peers can distinguish a slow shard (counter advancing) from a
// hung or dead one (counter frozen) without interpreting the value.
func (g *Engine) Progress() uint64 {
	return g.procCalls.Load() + g.cacheHits.Load() + g.completed.Load()
}

// Metrics returns a snapshot of the engine's counters.
func (g *Engine) Metrics() Metrics {
	m := Metrics{
		Submitted:       g.submitted.Load(),
		Completed:       g.completed.Load(),
		Executed:        g.executed.Load(),
		CacheHits:       g.cacheHits.Load(),
		Coalesced:       g.coalesced.Load(),
		Retries:         g.retries.Load(),
		Canceled:        g.canceled.Load(),
		BatchWall:       time.Duration(g.wallNanos.Load()),
		ProcessorCalls:  g.procCalls.Load(),
		SamplesKept:     g.kept.Load(),
		SamplesRejected: g.rejected.Load(),
		Quarantined:     g.quarantined.Load(),
		LowConfidence:   g.lowConfN.Load(),
		MaxSpread:       math.Float64frombits(g.maxSpread.Load()),
		BackoffWait:     time.Duration(g.backoffNano.Load()),
		Remeasured:      g.remeasured.Load(),
	}
	if m.Executed > 0 {
		m.MeanSpread = math.Float64frombits(g.spreadSum.Load()) / float64(m.Executed)
	}
	return m
}

// LowConfidence returns every low-confidence measurement the engine
// has seen (executed in this process or warmed from the persisted
// cache), keyed by canonical experiment key. The pipeline turns this
// into its degradation report.
func (g *Engine) LowConfidence() map[string]Quality {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]Quality, len(g.lowConf))
	for k, q := range g.lowConf {
		out[k] = q
	}
	return out
}

// noteLowConfLocked registers a flagged measurement. Worst spread
// wins, so the merged registry is independent of the order in which
// generations and workers encounter the key.
func (g *Engine) noteLowConfLocked(key string, q Quality) {
	if g.lowConf == nil {
		g.lowConf = make(map[string]Quality)
	}
	if old, ok := g.lowConf[key]; !ok || q.Spread > old.Spread {
		g.lowConf[key] = q
	}
}

// ClearCache drops all cached results (used when re-running the
// characterization stage with fresh noise, §4.4) by advancing to the
// next cache generation. Metrics are preserved.
func (g *Engine) ClearCache() {
	g.mu.Lock()
	next := g.gen + 1
	g.mu.Unlock()
	g.BeginGeneration(next)
}

// Fingerprint identifies the engine's measurement parameters for the
// persistence layer. Workers is deliberately excluded: results are
// byte-identical at any worker count, so a cache written at
// -parallel 4 is valid at -parallel 16. The adaptive-quality knobs
// are included because they change which samples feed the medians.
func (g *Engine) Fingerprint() string {
	qspread := g.QualitySpread
	if qspread == 0 {
		qspread = 0.05
	}
	maxReps := g.MaxReps
	if maxReps < 1 {
		maxReps = 3 * g.Reps
	}
	return fmt.Sprintf("engine:v2 reps=%d iters=%d eps=%g qspread=%g maxreps=%d",
		g.Reps, g.Iterations, g.Epsilon, qspread, maxReps)
}

// CacheGeneration returns the current cache generation.
func (g *Engine) CacheGeneration() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gen
}

// BeginGeneration enters cache generation n: a no-op when already
// there (the warm cache is kept), otherwise the in-memory cache is
// reset and — with a persist hook attached — pre-warmed with the
// stored results of generation n. The inference pipeline names its
// stage-4 characterization runs explicitly with this so a resumed run
// lands in the same generation, and the same on-disk results, as the
// interrupted one.
func (g *Engine) BeginGeneration(n uint64) {
	g.mu.Lock()
	if n == g.gen {
		g.mu.Unlock()
		return
	}
	g.gen = n
	g.cache = make(map[string]Result)
	g.mu.Unlock()
	if g.Persist != nil {
		g.WarmCache(g.Persist.Generation(n))
	}
}

// WarmCache merges previously persisted results into the cache.
// Warmed entries are answered as cache hits; they do not count as
// executions. Flagged results re-enter the low-confidence registry,
// so a resumed run's degradation report covers the work of the
// interrupted one.
func (g *Engine) WarmCache(results map[string]Result) {
	if len(results) == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for k, r := range results {
		if r.Runs > 0 {
			g.cache[k] = r
			if r.Quality.LowConfidence {
				g.noteLowConfLocked(k, r.Quality)
			}
		}
	}
}

// Remeasure forces a fresh execution of the experiment, bypassing and
// then replacing the cache entry for its key. It exists for the solver
// supervision's inconsistency recovery: when an UNSAT core blames a
// measurement, re-running it gives the corrupted value a chance to
// heal before any error bound is relaxed.
//
// The returned result's summary statistics (InvThroughput, CPI,
// spreads) come from the fresh samples alone, but Runs is cumulative:
// it adds the replaced cache entry's Runs so the persisted record for
// this (generation, key) — which last-wins over the one it replaces —
// still carries the key's total successful-execution count, keeping
// crash-resume exec-count replay exact. Remeasure is meant for the
// sequential solver-recovery path; it must not race a batch that
// measures the same key.
func (g *Engine) Remeasure(ctx context.Context, e portmodel.Experiment) (Result, error) {
	if e.Len() == 0 {
		return Result{}, fmt.Errorf("engine: empty experiment")
	}
	key := CanonicalKey(e)
	res, err := g.execute(ctx, e)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			g.canceled.Add(1)
		}
		return Result{}, err
	}
	g.mu.Lock()
	if prior, ok := g.cache[key]; ok {
		res.Runs += prior.Runs
	}
	g.cache[key] = res
	if res.Quality.LowConfidence {
		g.noteLowConfLocked(key, res.Quality)
	}
	gen := g.gen
	g.mu.Unlock()
	if g.Persist != nil {
		g.Persist.Record(gen, key, res)
	}
	g.executed.Add(1)
	g.remeasured.Add(1)
	return res, nil
}

// median returns the median of xs (xs is reordered).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// medianVec returns the component-wise median of equal-length vectors.
func medianVec(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	col := make([]float64, len(vs))
	for k := range out {
		for i := range vs {
			col[i] = vs[i][k]
		}
		out[k] = median(col)
	}
	return out
}
