package engine_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// shapedProc returns per-iteration cycle counts computed by shape from
// the per-kernel repetition index — the knob the adaptive tests use to
// place samples exactly where they want them.
type shapedProc struct {
	mu     sync.Mutex
	seq    map[string]int
	calls  atomic.Int64
	shape  func(rep int) float64
	onCall func(n int64)
}

func newShapedProc(shape func(rep int) float64) *shapedProc {
	return &shapedProc{seq: make(map[string]int), shape: shape}
}

func (p *shapedProc) Execute(kernel []string, iterations int) (engine.Counters, error) {
	n := p.calls.Add(1)
	if p.onCall != nil {
		p.onCall(n)
	}
	key := fmt.Sprint(kernel)
	p.mu.Lock()
	rep := p.seq[key]
	p.seq[key]++
	p.mu.Unlock()
	return engine.Counters{
		Cycles:       p.shape(rep) * float64(iterations),
		Instructions: uint64(len(kernel) * iterations),
		Ops:          uint64(len(kernel) * iterations),
	}, nil
}

func (p *shapedProc) NumPorts() int { return 4 }
func (p *shapedProc) Rmax() float64 { return 5 }

// TestOutlierSpikeRejected: a single 10× latency spike among clean
// samples must be rejected rather than poison the median, with the
// rejection visible in the result's quality record and the engine
// metrics.
func TestOutlierSpikeRejected(t *testing.T) {
	p := newShapedProc(func(rep int) float64 {
		c := 1.0 + 0.0001*float64(rep%7)
		if rep == 3 {
			c *= 10 // corrupted sample
		}
		return c
	})
	g := engine.New(p)
	r, err := g.Measure(context.Background(), portmodel.Exp("a"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs != 11 {
		t.Fatalf("Runs = %d, want 11 (no escalation needed)", r.Runs)
	}
	if r.Quality.Kept != 10 || r.Quality.Rejected != 1 {
		t.Fatalf("Kept/Rejected = %d/%d, want 10/1", r.Quality.Kept, r.Quality.Rejected)
	}
	if r.InvThroughput > 1.1 {
		t.Fatalf("InvThroughput = %v skewed by the rejected spike", r.InvThroughput)
	}
	if r.Quality.LowConfidence || r.Quality.Quarantined {
		t.Fatalf("clean measurement flagged: %+v", r.Quality)
	}
	m := g.Metrics()
	if m.SamplesKept != 10 || m.SamplesRejected != 1 {
		t.Fatalf("metrics kept/rejected = %d/%d, want 10/1", m.SamplesKept, m.SamplesRejected)
	}
	if len(g.LowConfidence()) != 0 {
		t.Fatalf("clean measurement entered the low-confidence registry")
	}
}

// TestEscalationQuarantineLowConfidence: a persistently dispersed
// measurement (modes too close to reject, too far apart for the
// quality target) must escalate to the cap, earn one quarantine batch,
// and come back flagged — never as an error.
func TestEscalationQuarantineLowConfidence(t *testing.T) {
	p := newShapedProc(func(rep int) float64 {
		return 1.0 + 0.2*float64(rep%5) // IQR/median ≈ 0.29, nothing rejectable
	})
	g := engine.New(p)
	r, err := g.Measure(context.Background(), portmodel.Exp("a"))
	if err != nil {
		t.Fatalf("low-quality measurement must degrade, not fail: %v", err)
	}
	// Reps (11) → escalate to MaxReps (33) → one quarantine batch (44).
	if r.Runs != 44 {
		t.Fatalf("Runs = %d, want 44 (cap plus quarantine batch)", r.Runs)
	}
	if !r.Quality.Quarantined || !r.Quality.LowConfidence {
		t.Fatalf("quality = %+v, want quarantined and low-confidence", r.Quality)
	}
	if r.Quality.Kept != 44 || r.Quality.Rejected != 0 {
		t.Fatalf("Kept/Rejected = %d/%d, want 44/0 — close modes must not be rejected", r.Quality.Kept, r.Quality.Rejected)
	}
	if r.Quality.Spread <= 0.05 {
		t.Fatalf("Quality.Spread = %v, want above the quality target", r.Quality.Spread)
	}

	m := g.Metrics()
	if m.Quarantined != 1 || m.LowConfidence != 1 {
		t.Fatalf("metrics quarantined/lowconf = %d/%d, want 1/1", m.Quarantined, m.LowConfidence)
	}
	if m.MaxSpread <= 0 || m.MeanSpread <= 0 {
		t.Fatalf("spread aggregates not recorded: max=%v mean=%v", m.MaxSpread, m.MeanSpread)
	}
	lc := g.LowConfidence()
	if q, ok := lc["1*a"]; !ok || !q.LowConfidence {
		t.Fatalf("low-confidence registry = %v, want entry for 1*a", lc)
	}
}

// TestCancellationDuringEscalation: cancelling mid-escalation must
// return promptly with the context error instead of finishing the
// repetition budget.
func TestCancellationDuringEscalation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := newShapedProc(func(rep int) float64 {
		return 1.0 + 0.2*float64(rep%5) // keeps the loop escalating
	})
	p.onCall = func(n int64) {
		if n == 13 { // inside the first escalation batch
			cancel()
		}
	}
	g := engine.New(p)
	_, err := g.Measure(ctx, portmodel.Exp("a"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls := p.calls.Load(); calls > 15 {
		t.Fatalf("cancellation ignored: %d processor calls after cancel at 13", calls)
	}
	if g.Metrics().Canceled == 0 {
		t.Fatal("Canceled metric not incremented")
	}
}

// TestBackoffCancelPrompt: a cancelled context must interrupt a retry
// backoff sleep immediately, even with a pathological base delay.
func TestBackoffCancelPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := engine.New(transientProc{onFail: func() { cancel() }})
	g.BackoffBase = 10 * time.Second
	g.BackoffMax = 10 * time.Second
	start := time.Now()
	_, err := g.Measure(ctx, portmodel.Exp("a"))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancellation for %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// transientProc fails every execution with a transient error.
type transientProc struct{ onFail func() }

func (p transientProc) Execute(kernel []string, iterations int) (engine.Counters, error) {
	if p.onFail != nil {
		p.onFail()
	}
	return engine.Counters{}, engine.Transient(errors.New("always failing"))
}

func (p transientProc) NumPorts() int { return 4 }
func (p transientProc) Rmax() float64 { return 5 }

// TestBackoffDisabled: a negative BackoffBase disables retry sleeps.
func TestBackoffDisabled(t *testing.T) {
	g := engine.New(transientProc{})
	g.BackoffBase = -1
	if _, err := g.Measure(context.Background(), portmodel.Exp("a")); err == nil {
		t.Fatal("always-failing processor succeeded")
	}
	if w := g.Metrics().BackoffWait; w != 0 {
		t.Fatalf("BackoffWait = %v with backoff disabled", w)
	}
}
