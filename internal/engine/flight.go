package engine

import (
	"context"
	"sync"
)

// Flight is a keyed singleflight group: concurrent calls with the same
// key execute the underlying work once and share the result. It is the
// engine's in-flight deduplication, factored out so other layers — the
// serving daemon's per-mapping prediction dedup (internal/serve) — can
// reuse the exact machinery instead of reimplementing its semantics:
//
//   - a probe hook runs under the flight's lock before leading or
//     joining, so a cache shared with the flight is checked atomically
//     with the in-flight registry (no probe/lead window in which a
//     finished leader's result is missed and work repeats);
//   - followers wait on the leader observing their own context;
//   - when a leader fails, each waiting follower retries from the
//     probe and may lead itself, so the error a caller reports
//     reflects its own attempt and context;
//   - a successful leader commits under the lock (cache fill) and then
//     publishes outside it (journal I/O) before followers are
//     released, so anything a follower observes is already durable.
//
// The zero value is not ready for use; construct with NewFlight.
type Flight[V any] struct {
	mu       *sync.Mutex
	inflight map[string]*flightCall[V]
}

// flightCall is one in-flight execution other callers can wait on.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// FlightOutcome reports how a Do call was resolved, for callers that
// keep metrics: exactly one of Hit and Led is true unless the caller
// was a follower for the whole call (both false), and Joined counts
// how many in-flight leaders were awaited along the way (a follower
// whose leader failed joins again or leads on the next loop).
type FlightOutcome struct {
	// Hit reports that the probe short-circuited the call.
	Hit bool
	// Led reports that this caller executed the work itself.
	Led bool
	// Joined counts the in-flight executions this caller waited on.
	Joined int
}

// NewFlight returns a flight group guarded by mu; a nil mu gives the
// group its own lock. Passing an external mutex lets a caller guard
// its result cache and the in-flight registry with one lock — the
// engine shares its cache mutex so the probe-then-lead sequence is
// atomic with cache fills.
func NewFlight[V any](mu *sync.Mutex) *Flight[V] {
	if mu == nil {
		mu = new(sync.Mutex)
	}
	return &Flight[V]{mu: mu, inflight: make(map[string]*flightCall[V])}
}

// Do resolves key through probe, coalesce, and execute. probe (may be
// nil) is consulted under the lock first — returning ok short-circuits
// with its value. If another call for key is in flight, Do waits for
// it, honoring ctx; a failed leader makes the follower retry from the
// probe. Otherwise the caller leads: fn runs outside the lock, and on
// success commit (under the lock, may be nil) and then publish
// (outside the lock, may be nil) run before waiting followers are
// released. fn's error is returned only to the leader that ran it.
func (f *Flight[V]) Do(
	ctx context.Context,
	key string,
	probe func() (V, bool),
	fn func() (V, error),
	commit func(V),
	publish func(V),
) (V, FlightOutcome, error) {
	var out FlightOutcome
	for {
		f.mu.Lock()
		if probe != nil {
			if v, ok := probe(); ok {
				f.mu.Unlock()
				out.Hit = true
				return v, out, nil
			}
		}
		if c, ok := f.inflight[key]; ok {
			f.mu.Unlock()
			out.Joined++
			select {
			case <-c.done:
				if c.err != nil {
					continue // leader failed; try to lead ourselves
				}
				return c.val, out, nil
			case <-ctx.Done():
				var zero V
				return zero, out, ctx.Err()
			}
		}
		// About to lead: a caller whose context already ended must not
		// start work nobody will read (probe hits above still serve —
		// answering from cache costs nothing).
		if err := ctx.Err(); err != nil {
			f.mu.Unlock()
			var zero V
			return zero, out, err
		}
		c := &flightCall[V]{done: make(chan struct{})}
		f.inflight[key] = c
		f.mu.Unlock()

		out.Led = true
		c.val, c.err = fn()
		f.mu.Lock()
		delete(f.inflight, key)
		if c.err == nil && commit != nil {
			commit(c.val)
		}
		f.mu.Unlock()
		if c.err == nil && publish != nil {
			publish(c.val)
		}
		close(c.done)
		if c.err != nil {
			var zero V
			return zero, out, c.err
		}
		return c.val, out, nil
	}
}
