package engine_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// seqProc is a deterministic processor whose cycle count depends on
// the kernel and on how many times that exact kernel has run before —
// the same contract the zensim machine provides. It also counts
// Execute calls and can inject errors.
type seqProc struct {
	mu    sync.Mutex
	seq   map[string]int
	calls atomic.Int64

	failFirst int  // fail the first N calls...
	transient bool // ...with a transient (retryable) error
	onSlow    func()
}

func newSeqProc() *seqProc { return &seqProc{seq: make(map[string]int)} }

func (p *seqProc) Execute(kernel []string, iterations int) (engine.Counters, error) {
	n := p.calls.Add(1)
	if int(n) <= p.failFirst {
		err := fmt.Errorf("injected failure %d", n)
		if p.transient {
			return engine.Counters{}, engine.Transient(err)
		}
		return engine.Counters{}, err
	}
	key := fmt.Sprint(kernel)
	p.mu.Lock()
	rep := p.seq[key]
	p.seq[key]++
	p.mu.Unlock()
	if p.onSlow != nil && kernel[0] == "slow" {
		p.onSlow()
	}
	// Cycles depend only on (kernel, repetition index): order-
	// independent, like the simulator's per-experiment RNG.
	base := 0.5 * float64(len(kernel))
	jitter := 0.001 * float64((rep*31+len(kernel))%7)
	return engine.Counters{
		Cycles:       (base + jitter) * float64(iterations),
		Instructions: uint64(len(kernel) * iterations),
		Ops:          uint64(len(kernel) * iterations),
	}, nil
}

func (p *seqProc) NumPorts() int { return 4 }
func (p *seqProc) Rmax() float64 { return 5 }

func TestBatchDuplicatesExecuteOnce(t *testing.T) {
	p := newSeqProc()
	g := engine.New(p)
	g.Workers = 4
	exps := []portmodel.Experiment{
		{"a": 1}, {"a": 1}, {"b": 2, "a": 1}, {"a": 1, "b": 2}, {"a": 1},
	}
	rs, err := g.MeasureBatch(context.Background(), exps)
	if err != nil {
		t.Fatal(err)
	}
	// 2 unique canonical keys ("1*a" and "1*a|2*b") × 11 reps.
	if got := p.calls.Load(); got != 22 {
		t.Fatalf("processor executed %d times, want 22", got)
	}
	sameResult := func(a, b engine.Result) bool {
		x, _ := json.Marshal(a)
		y, _ := json.Marshal(b)
		return string(x) == string(y)
	}
	if !sameResult(rs[0], rs[1]) || !sameResult(rs[0], rs[4]) {
		t.Fatal("duplicate experiments returned different results")
	}
	if !sameResult(rs[2], rs[3]) {
		t.Fatal("canonically equal experiments returned different results")
	}
	m := g.Metrics()
	if m.Executed != 2 {
		t.Fatalf("Executed = %d, want 2", m.Executed)
	}
	if m.Coalesced != 3 {
		t.Fatalf("Coalesced = %d, want 3", m.Coalesced)
	}
	if m.Submitted != 5 || m.Completed != 5 {
		t.Fatalf("Submitted/Completed = %d/%d, want 5/5", m.Submitted, m.Completed)
	}
}

func TestCacheAndClearCache(t *testing.T) {
	p := newSeqProc()
	g := engine.New(p)
	e := portmodel.Exp("a")
	if _, err := g.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	calls := p.calls.Load()
	if _, err := g.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if p.calls.Load() != calls {
		t.Fatal("cached measurement hit the processor")
	}
	if g.Metrics().CacheHits != 1 {
		t.Fatalf("CacheHits = %d", g.Metrics().CacheHits)
	}
	g.ClearCache()
	if _, err := g.Measure(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if p.calls.Load() == calls {
		t.Fatal("ClearCache did not clear")
	}
	if g.MeasurementCount() != 2 {
		t.Fatalf("MeasurementCount = %d, want 2 (monotonic)", g.MeasurementCount())
	}
}

func TestCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := newSeqProc()
	// The first execution of the "slow" kernel cancels the batch;
	// with one worker the "fast" experiment is already done by then.
	p.onSlow = func() { cancel() }
	g := engine.New(p)
	g.Workers = 1
	exps := []portmodel.Experiment{{"fast": 1}, {"slow": 1}}
	rs, err := g.MeasureBatch(ctx, exps)
	if err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if rs == nil {
		t.Fatal("no partial results returned")
	}
	if rs[0].Runs == 0 {
		t.Fatal("completed experiment missing from partial results")
	}
	if rs[1].Runs != 0 {
		t.Fatal("cancelled experiment reported as completed")
	}
	if g.Metrics().Canceled == 0 {
		t.Fatal("Canceled metric not incremented")
	}
}

func TestTransientRetryBounded(t *testing.T) {
	p := newSeqProc()
	p.failFirst, p.transient = 2, true
	g := engine.New(p)
	r, err := g.Measure(context.Background(), portmodel.Exp("a"))
	if err != nil {
		t.Fatalf("transient failures within MaxRetries should succeed: %v", err)
	}
	if r.Runs != 11 {
		t.Fatalf("Runs = %d", r.Runs)
	}
	if g.Metrics().Retries != 2 {
		t.Fatalf("Retries = %d, want 2", g.Metrics().Retries)
	}

	p2 := newSeqProc()
	p2.failFirst, p2.transient = 3, true
	g2 := engine.New(p2)
	g2.MaxRetries = 2
	if _, err := g2.Measure(context.Background(), portmodel.Exp("a")); err == nil {
		t.Fatal("exhausted retries should fail")
	}

	p3 := newSeqProc()
	p3.failFirst = 1 // permanent
	g3 := engine.New(p3)
	if _, err := g3.Measure(context.Background(), portmodel.Exp("a")); err == nil {
		t.Fatal("permanent error should not be retried")
	}
	if got := p3.calls.Load(); got != 1 {
		t.Fatalf("permanent error retried: %d calls", got)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// The same batch over 1, 4, and 16 workers must produce
	// byte-identical results when the processor's outputs depend only
	// on (kernel, per-kernel repetition index).
	var exps []portmodel.Experiment
	for i := 0; i < 12; i++ {
		exps = append(exps, portmodel.Experiment{
			fmt.Sprintf("k%d", i%5): 1 + i%3,
			"shared":                1,
		})
	}
	var golden []byte
	for _, workers := range []int{1, 4, 16} {
		g := engine.New(newSeqProc())
		g.Workers = workers
		rs, err := g.MeasureBatch(context.Background(), exps)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = data
		} else if string(golden) != string(data) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
}

func TestProgressHook(t *testing.T) {
	g := engine.New(newSeqProc())
	g.Workers = 3
	var done atomic.Int64
	var sawTotal atomic.Int64
	g.OnProgress = func(d, total int) {
		done.Add(1)
		sawTotal.Store(int64(total))
	}
	exps := []portmodel.Experiment{{"a": 1}, {"b": 1}, {"c": 1}, {"a": 1}}
	if _, err := g.MeasureBatch(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if done.Load() != 3 {
		t.Fatalf("OnProgress called %d times, want 3 (unique experiments)", done.Load())
	}
	if sawTotal.Load() != 3 {
		t.Fatalf("total = %d, want 3", sawTotal.Load())
	}
}

func TestConcurrentMeasureSharedEngine(t *testing.T) {
	// Regression for the pre-engine data race: many goroutines
	// hammering one engine with overlapping experiments (run under
	// -race in CI). In-flight deduplication must keep the execution
	// count at one per unique key despite the contention.
	p := newSeqProc()
	g := engine.New(p)
	var wg sync.WaitGroup
	const goroutines = 16
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				e := portmodel.Experiment{fmt.Sprintf("k%d", j): 1}
				r, err := g.Measure(context.Background(), e)
				if err != nil {
					t.Error(err)
					return
				}
				if r.Runs != 11 || math.IsNaN(r.InvThroughput) {
					t.Errorf("bad result %+v", r)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := g.Metrics().Executed; got != 8 {
		t.Fatalf("Executed = %d, want 8 unique keys", got)
	}
	if got := p.calls.Load(); got != 8*11 {
		t.Fatalf("processor calls = %d, want 88", got)
	}
}

func TestEmptyExperimentRejected(t *testing.T) {
	g := engine.New(newSeqProc())
	if _, err := g.Measure(context.Background(), portmodel.Experiment{}); err == nil {
		t.Fatal("empty experiment accepted")
	}
	if _, err := g.MeasureBatch(context.Background(), []portmodel.Experiment{{"a": 1}, {}}); err == nil {
		t.Fatal("batch with empty experiment accepted")
	}
	if rs, err := g.MeasureBatch(context.Background(), nil); err != nil || len(rs) != 0 {
		t.Fatalf("empty batch: %v, %v", rs, err)
	}
}

func TestCanonicalKeyAndMedians(t *testing.T) {
	if k := engine.CanonicalKey(portmodel.Experiment{"b": 2, "a": 1}); k != "1*a|2*b" {
		t.Fatalf("CanonicalKey = %q", k)
	}
	// Median behaviour is pinned via measurement results: 11 reps of
	// the seqProc jitter sequence must reduce to the median element.
	g := engine.New(newSeqProc())
	r, err := g.Measure(context.Background(), portmodel.Exp("a"))
	if err != nil {
		t.Fatal(err)
	}
	if r.InvThroughput <= 0 || r.Spread < 0 {
		t.Fatalf("implausible result %+v", r)
	}
}
