package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"zenport/internal/zensim"
)

// Serving faults: the chaos layer's model of everything that goes
// wrong *inside* a serving daemon rather than inside a measurement —
// evaluator stalls (a slow NUMA node, a cold memo, a GC pause) and
// evaluator panics (the bug class the serving layer's panic isolation
// exists for). A ServeFaults value plugs into serve.Config.EvalHook:
// it runs at the start of every pooled evaluation and may stall
// (honoring the request context, so deadline propagation is
// exercised), or panic (so recover paths and breaker accounting are
// exercised). Like every chaos regime in this package the fault plan
// is a pure function of (seed, evaluation index) via zensim.ExecSeed,
// so a soak replays bit-identically under the same seed.

// serveSalt decorrelates the serving-fault stream from the
// measurement-fault streams (chaosSalt, lieSalt).
const serveSalt = 0x73657276 // "serv"

// ServeRegime describes a serving-fault distribution.
type ServeRegime struct {
	// StallRate is the per-evaluation probability of an injected stall.
	StallRate float64
	// StallDuration is how long an injected stall sleeps (bounded by
	// the request context — a canceled request ends the stall early).
	StallDuration time.Duration
	// PanicRate is the per-evaluation probability of an injected
	// evaluator panic.
	PanicRate float64
	// PanicAt, when non-zero, panics exactly the PanicAt-th evaluation
	// (1-based) regardless of PanicRate — the deterministic "one
	// handler panic" a soak asserts the daemon survives.
	PanicAt uint64
	// Seed drives the fault plan; the same seed replays the same
	// faults at the same evaluation indices.
	Seed int64
}

// DefaultServeRegime is the serve-chaos soak's regime: frequent short
// stalls plus one deterministic panic early in the run.
func DefaultServeRegime(seed int64) ServeRegime {
	return ServeRegime{
		StallRate:     0.05,
		StallDuration: 500 * time.Microsecond,
		PanicAt:       40,
		Seed:          seed,
	}
}

// ServeFaults injects a ServeRegime into a serving evaluator pool via
// serve.Config.EvalHook. Safe for concurrent use.
type ServeFaults struct {
	regime ServeRegime

	calls  atomic.Uint64
	stalls atomic.Uint64
	panics atomic.Uint64
}

// NewServeFaults returns a fault injector for the regime.
func NewServeFaults(regime ServeRegime) *ServeFaults {
	return &ServeFaults{regime: regime}
}

// ServeLedger is the injector's tally of what it actually did.
type ServeLedger struct {
	// Calls is the number of evaluations the hook saw.
	Calls uint64
	// Stalls is the number of injected stalls.
	Stalls uint64
	// Panics is the number of injected panics.
	Panics uint64
}

// String renders the ledger for soak logs.
func (l ServeLedger) String() string {
	return fmt.Sprintf("serve-chaos: %d evaluations, %d stalls, %d panics", l.Calls, l.Stalls, l.Panics)
}

// Ledger snapshots the injector's counters.
func (f *ServeFaults) Ledger() ServeLedger {
	return ServeLedger{
		Calls:  f.calls.Load(),
		Stalls: f.stalls.Load(),
		Panics: f.panics.Load(),
	}
}

// Eval is the serve.Config.EvalHook implementation. Faults draw from
// a per-evaluation-index RNG stream, so concurrent evaluations get
// deterministic (order-independent) fault decisions. A stall honors
// ctx: the injected latency is exactly what deadline propagation must
// absorb, so a stalled evaluation under an expired deadline returns
// the context error instead of sleeping on.
func (f *ServeFaults) Eval(ctx context.Context, key string) error {
	n := f.calls.Add(1)
	if f.regime.PanicAt != 0 && n == f.regime.PanicAt {
		f.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected evaluator panic (evaluation %d)", n))
	}
	if f.regime.PanicRate <= 0 && f.regime.StallRate <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(zensim.ExecSeed(f.regime.Seed^serveSalt, 0, n)))
	if f.regime.PanicRate > 0 && rng.Float64() < f.regime.PanicRate {
		f.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected evaluator panic (evaluation %d)", n))
	}
	if f.regime.StallRate > 0 && rng.Float64() < f.regime.StallRate {
		f.stalls.Add(1)
		return sleepCtx(ctx, f.regime.StallDuration)
	}
	return nil
}
