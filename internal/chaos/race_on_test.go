//go:build race

package chaos_test

// raceEnabled trims the soak test's worker sweep under the race
// detector, whose ~10× slowdown would otherwise push the package past
// the test timeout without adding coverage.
const raceEnabled = true
