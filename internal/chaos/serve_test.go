package chaos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestServeFaultsDeterministic replays the same regime twice and
// demands identical ledgers: the fault plan must be a pure function of
// (seed, evaluation index) for soak replay to mean anything.
func TestServeFaultsDeterministic(t *testing.T) {
	regime := ServeRegime{StallRate: 0.2, StallDuration: time.Microsecond, PanicRate: 0, Seed: 42}
	run := func() ServeLedger {
		f := NewServeFaults(regime)
		for i := 0; i < 500; i++ {
			if err := f.Eval(context.Background(), "k"); err != nil {
				t.Fatalf("eval %d: %v", i, err)
			}
		}
		return f.Ledger()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault plan not deterministic: %+v vs %+v", a, b)
	}
	if a.Stalls == 0 {
		t.Fatalf("regime with StallRate 0.2 over 500 evaluations injected no stalls: %+v", a)
	}
	if a.Calls != 500 {
		t.Fatalf("calls = %d, want 500", a.Calls)
	}
}

// TestServeFaultsPanicAt pins the deterministic single panic: exactly
// the PanicAt-th evaluation panics, no other does.
func TestServeFaultsPanicAt(t *testing.T) {
	f := NewServeFaults(ServeRegime{PanicAt: 3, Seed: 1})
	for i := 1; i <= 6; i++ {
		panicked := func() (p bool) {
			defer func() { p = recover() != nil }()
			_ = f.Eval(context.Background(), "k")
			return false
		}()
		if want := i == 3; panicked != want {
			t.Fatalf("evaluation %d: panicked = %v, want %v", i, panicked, want)
		}
	}
	if l := f.Ledger(); l.Panics != 1 {
		t.Fatalf("panics = %d, want 1", l.Panics)
	}
}

// TestServeFaultsStallHonorsContext verifies that a canceled request
// ends an injected stall early with the context error — the property
// deadline propagation relies on.
func TestServeFaultsStallHonorsContext(t *testing.T) {
	f := NewServeFaults(ServeRegime{StallRate: 1.0, StallDuration: time.Hour, Seed: 7})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := f.Eval(ctx, "k")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall ignored context: slept %v", elapsed)
	}
}
