// Package chaos injects deterministic, seeded faults into a
// measurement processor. Real Zen hardware does not fail politely:
// measurements hit interference spikes, frequency drift, stuck
// performance counters, transient harness errors, and occasional
// wedged runs. The pipeline's robustness claim — that no fault class
// can do worse than a flagged low-confidence measurement — is only
// credible if it can be exercised on demand, so this package wraps
// any engine.Processor in a configurable fault regime:
//
//   - transient Execute errors (consume engine retries, §robustness),
//   - hangs that must honor context cancellation,
//   - multiplicative latency/outlier spikes on the cycle counter,
//   - stuck (zeroed) op and FP-pipe counters,
//   - slow sinusoidal frequency drift.
//
// Fault plans are derived per (seed, kernel, round index) through the
// same splitmix64 discipline as the simulator's noise RNG
// (zensim.ExecSeed, salted so the streams never collide), where a
// round is one successful inner execution. Injection is therefore
// reproducible at any worker count, and RestoreExecCount replays a
// resumed process into exactly the fault stream the interrupted one
// was drawing — the property the chaos soak test's byte-identical
// kill-and-resume run checks.
//
// Pre-execution faults (transients, hangs) fire before the inner
// processor runs, so they never advance the inner machine's noise
// streams; post-execution faults corrupt only the returned counters.
// Either way the inner measurement sequence stays aligned with a
// fault-free run — which is why a regime whose corruptions are
// rejected by the engine's outlier filter yields byte-identical
// inference output.
package chaos

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
	"zenport/internal/zensim"
)

// chaosSalt decorrelates fault-plan RNG streams from the simulator's
// measurement-noise streams when both are configured with the same
// seed.
const chaosSalt = 0x6368616f73 // "chaos"

// lieSalt separates the per-kernel consistent-lie decision stream from
// both the fault-plan and measurement-noise streams.
const lieSalt = 0x6c6965 // "lie"

// Regime configures the fault mix. All rates are per-round
// probabilities in [0, 1]; the zero value injects nothing.
type Regime struct {
	// TransientRate is the per-round probability of at least one
	// injected transient Execute error before the real execution;
	// each further consecutive transient is another TransientRate
	// draw, capped at MaxPreFaults.
	TransientRate float64
	// HangRate is the per-round probability that the first execution
	// attempt of the round blocks for HangDuration (or until its
	// context is cancelled) before proceeding.
	HangRate float64
	// HangDuration is how long an injected hang blocks.
	HangDuration time.Duration
	// MaxPreFaults caps consecutive injected transient errors per
	// round (≤0 means 2). It must not exceed the engine's MaxRetries,
	// or injected transients can exhaust the retry budget and fail
	// measurements outright — deterministic degradation requires the
	// documented regimes to stay within the retry budget.
	MaxPreFaults int
	// OutlierRate is the per-round probability of multiplying the
	// measured cycles by OutlierFactor.
	OutlierRate float64
	// OutlierFactor is the cycle corruption factor (≤0 means 10).
	OutlierFactor float64
	// StuckRate is the per-round probability of zeroed op and
	// per-port counters (the counter-glitch fault class).
	StuckRate float64
	// DriftAmplitude scales a slow sinusoidal cycle drift,
	// 1 + A·sin(2π·round/DriftPeriod); 0 disables drift.
	DriftAmplitude float64
	// DriftPeriod is the drift period in rounds (≤0 disables drift).
	DriftPeriod int
	// LieRate is the per-kernel probability that the kernel lies
	// consistently: every execution of a lying kernel reports its
	// cycles multiplied by LieFactor. Unlike the per-round outlier
	// spikes, the decision is static per kernel, so all samples shift
	// identically, the robust spread stays perfect, and no outlier
	// filter can reject the corruption — it is only discoverable as a
	// cross-experiment inconsistency at the solver level. This is the
	// fault class the solver supervision's UNSAT-core recovery exists
	// for.
	LieRate float64
	// LieFactor is the consistent-lie cycle multiplier (≤0 means 2).
	LieFactor float64
	// LieMinDistinct gates lying to kernels with at least this many
	// distinct instructions. Setting it to 2 spares the singleton
	// kernels that stage 1/2 classification depends on, confining the
	// lie to the mixture experiments the SMT stages consume.
	LieMinDistinct int
	// LieExact, when non-empty, replaces the random draw: exactly the
	// kernels whose canonical experiment keys are listed lie. This is
	// the deterministic targeting used by tests that need a known
	// inconsistency.
	LieExact []string
	// CrashAfterCalls, when positive, kills the process after that many
	// successful inner executions — the process-kill fault class the
	// sharded-campaign soak uses to SIGKILL a shard mid-run. Unlike
	// every other fault it does not corrupt a measurement; it ends the
	// process, so it is deliberately absent from Fingerprint (just like
	// the engine's worker count): the surviving shard that steals the
	// dead one's slice runs the same regime without the crash and must
	// see the dead shard's journal as its own.
	CrashAfterCalls uint64
	// CrashFn replaces the crash action. The default is a hard
	// os.Exit(137) — the status of a SIGKILLed process — which runs no
	// deferred functions and flushes nothing, exactly like the real
	// signal (the kernel still releases the process's flocks, which is
	// what lease takeover relies on). Tests inject a recording stand-in.
	CrashFn func()
}

// DefaultRegime is the documented soak regime: 2% transient errors,
// 0.2% hangs of 200µs, 1% 10× outlier spikes, and 0.5% stuck
// counters. Drift is off — a coherent drift shifts every sample of a
// window identically, which no outlier filter can reject, so it is
// exercised by its own unit test rather than the byte-identity soak.
func DefaultRegime() Regime {
	return Regime{
		TransientRate: 0.02,
		HangRate:      0.002,
		HangDuration:  200 * time.Microsecond,
		MaxPreFaults:  2,
		OutlierRate:   0.01,
		OutlierFactor: 10,
		StuckRate:     0.005,
	}
}

// Ledger is a snapshot of injected-fault counts per class.
type Ledger struct {
	// Transients counts injected transient Execute errors.
	Transients uint64
	// Hangs counts injected blocking delays.
	Hangs uint64
	// Outliers counts cycle-spike corruptions.
	Outliers uint64
	// Stuck counts zeroed-counter corruptions.
	Stuck uint64
	// Drifted counts executions whose cycles were drift-scaled.
	Drifted uint64
	// Lies counts executions of consistently lying kernels.
	Lies uint64
	// Rounds counts successful inner executions.
	Rounds uint64
}

// String renders the ledger as a one-line report.
func (l Ledger) String() string {
	return fmt.Sprintf("rounds=%d transients=%d hangs=%d outliers=%d stuck=%d drifted=%d lies=%d",
		l.Rounds, l.Transients, l.Hangs, l.Outliers, l.Stuck, l.Drifted, l.Lies)
}

// roundPlan is the per-kernel fault state of the current round. It is
// created from the round's RNG on the first execution attempt and
// consumed across the engine's retries; the round ends (and the plan
// is discarded) when the inner execution succeeds.
type roundPlan struct {
	pre     int // injected transient errors still to serve
	hang    bool
	outlier bool
	stuck   bool
}

// Processor wraps an inner processor in a fault regime. It is safe
// for concurrent use; per-kernel state is independent, so concurrent
// measurement of distinct kernels observes exactly the fault stream a
// sequential run would.
type Processor struct {
	inner  engine.Processor
	seed   int64
	regime Regime

	mu      sync.Mutex
	rounds  map[uint64]uint64
	pending map[uint64]*roundPlan

	transients atomic.Uint64
	hangs      atomic.Uint64
	outliers   atomic.Uint64
	stuck      atomic.Uint64
	drifted    atomic.Uint64
	lies       atomic.Uint64
	nRounds    atomic.Uint64
}

var (
	_ engine.Processor         = (*Processor)(nil)
	_ engine.ContextProcessor  = (*Processor)(nil)
	_ engine.ExecCountRestorer = (*Processor)(nil)
)

// New wraps inner in the given fault regime under seed.
func New(inner engine.Processor, seed int64, regime Regime) *Processor {
	if regime.OutlierFactor <= 0 {
		regime.OutlierFactor = 10
	}
	if regime.MaxPreFaults <= 0 {
		regime.MaxPreFaults = 2
	}
	if regime.LieFactor <= 0 {
		regime.LieFactor = 2
	}
	return &Processor{
		inner:   inner,
		seed:    seed,
		regime:  regime,
		rounds:  make(map[uint64]uint64),
		pending: make(map[uint64]*roundPlan),
	}
}

// Ledger returns the injected-fault counts so far.
func (p *Processor) Ledger() Ledger {
	return Ledger{
		Transients: p.transients.Load(),
		Hangs:      p.hangs.Load(),
		Outliers:   p.outliers.Load(),
		Stuck:      p.stuck.Load(),
		Drifted:    p.drifted.Load(),
		Lies:       p.lies.Load(),
		Rounds:     p.nRounds.Load(),
	}
}

// NumPorts delegates to the inner processor.
func (p *Processor) NumPorts() int { return p.inner.NumPorts() }

// Rmax delegates to the inner processor.
func (p *Processor) Rmax() float64 { return p.inner.Rmax() }

// Fingerprint combines the inner processor's fingerprint with the
// fault configuration: corrupted measurements cached under a chaos
// run must never be served to a fault-free one (or vice versa).
func (p *Processor) Fingerprint() string {
	inner := "processor"
	if f, ok := p.inner.(interface{ Fingerprint() string }); ok {
		inner = f.Fingerprint()
	}
	r := p.regime
	fp := fmt.Sprintf("%s|chaos:v1 seed=%d transient=%g hang=%g/%s pre=%d outlier=%gx%g stuck=%g drift=%g/%d",
		inner, p.seed, r.TransientRate, r.HangRate, r.HangDuration, r.MaxPreFaults,
		r.OutlierRate, r.OutlierFactor, r.StuckRate, r.DriftAmplitude, r.DriftPeriod)
	// The lie segment only appears when lying is configured, so caches
	// written by lie-free regimes keep their pre-existing fingerprint.
	if r.LieRate > 0 || len(r.LieExact) > 0 {
		fp += fmt.Sprintf(" lie=%gx%g min=%d exact=%s",
			r.LieRate, r.LieFactor, r.LieMinDistinct, strings.Join(r.LieExact, ","))
	}
	return fp
}

// RestoreExecCount fast-forwards the kernel's round counter (and the
// inner processor's execution counter) to the given count, discarding
// any half-served plan: a resumed process rebuilds the round's fault
// plan from scratch, exactly as the interrupted process built it.
func (p *Processor) RestoreExecCount(kernel []string, executions uint64) {
	kh := zensim.KernelHash(kernel)
	p.mu.Lock()
	if executions > p.rounds[kh] {
		p.rounds[kh] = executions
		delete(p.pending, kh)
	}
	p.mu.Unlock()
	if r, ok := p.inner.(engine.ExecCountRestorer); ok {
		r.RestoreExecCount(kernel, executions)
	}
}

// planFor draws the fault plan of round n of the kernel with hash kh.
// The draw order is fixed (hang, transients, outlier, stuck), so the
// plan depends only on (seed, kernel, round).
func (p *Processor) planFor(kh, n uint64) *roundPlan {
	r := p.regime
	rng := rand.New(rand.NewSource(zensim.ExecSeed(p.seed^chaosSalt, kh, n)))
	pl := &roundPlan{}
	pl.hang = rng.Float64() < r.HangRate
	for pl.pre < r.MaxPreFaults && rng.Float64() < r.TransientRate {
		pl.pre++
	}
	pl.outlier = rng.Float64() < r.OutlierRate
	pl.stuck = rng.Float64() < r.StuckRate
	return pl
}

// Execute implements engine.Processor. Injected hangs block for their
// full duration; use ExecuteContext for cancellable execution.
func (p *Processor) Execute(kernel []string, iterations int) (engine.Counters, error) {
	return p.ExecuteContext(context.Background(), kernel, iterations)
}

// ExecuteContext implements engine.ContextProcessor: it serves the
// current round's pre-execution faults one per call, then delegates
// to the inner processor and applies the round's counter corruption.
func (p *Processor) ExecuteContext(ctx context.Context, kernel []string, iterations int) (engine.Counters, error) {
	kh := zensim.KernelHash(kernel)

	p.mu.Lock()
	pl, ok := p.pending[kh]
	if !ok {
		pl = p.planFor(kh, p.rounds[kh])
		p.pending[kh] = pl
	}
	hang := pl.hang
	pl.hang = false // a hang blocks the round's first attempt only
	transient := pl.pre > 0
	if transient {
		pl.pre--
	}
	p.mu.Unlock()

	if hang {
		p.hangs.Add(1)
		if err := sleepCtx(ctx, p.regime.HangDuration); err != nil {
			return engine.Counters{}, err
		}
	}
	if transient {
		p.transients.Add(1)
		return engine.Counters{}, engine.Transient(fmt.Errorf("chaos: injected transient error"))
	}

	c, err := p.innerExecute(ctx, kernel, iterations)
	if err != nil {
		// Not ours: the round is not consumed, so a real failure does
		// not desynchronize the fault stream from the inner one.
		return engine.Counters{}, err
	}

	p.mu.Lock()
	n := p.rounds[kh]
	p.rounds[kh] = n + 1
	delete(p.pending, kh)
	p.mu.Unlock()
	if total := p.nRounds.Add(1); p.regime.CrashAfterCalls > 0 && total == p.regime.CrashAfterCalls {
		p.crash()
	}

	if p.isLiar(kernel, kh) {
		p.lies.Add(1)
		c.Cycles *= p.regime.LieFactor
	}
	if pl.outlier {
		p.outliers.Add(1)
		c.Cycles *= p.regime.OutlierFactor
	}
	if pl.stuck {
		p.stuck.Add(1)
		c.Ops = 0
		for i := range c.FPPortOps {
			c.FPPortOps[i] = 0
		}
		for i := range c.PortOps {
			c.PortOps[i] = 0
		}
	}
	if a := p.regime.DriftAmplitude; a != 0 && p.regime.DriftPeriod > 0 {
		p.drifted.Add(1)
		c.Cycles *= 1 + a*math.Sin(2*math.Pi*float64(n)/float64(p.regime.DriftPeriod))
	}
	return c, nil
}

// crash executes the regime's process-kill action. With no CrashFn
// configured the process dies on the spot with exit status 137, the
// shell's encoding of SIGKILL: no deferred cleanup, no journal
// compaction, no lease release beyond what the kernel does for any
// dead process.
func (p *Processor) crash() {
	if p.regime.CrashFn != nil {
		p.regime.CrashFn()
		return
	}
	os.Exit(137)
}

// isLiar reports whether the kernel lies consistently under this
// regime. The decision is per-kernel-static: forced by LieExact, or
// drawn once from the kernel's round-0 lie stream — never from the
// per-round plan — so it holds for every execution of the kernel,
// including re-measurements.
func (p *Processor) isLiar(kernel []string, kh uint64) bool {
	r := p.regime
	if len(r.LieExact) > 0 {
		key := kernelCanonicalKey(kernel)
		for _, k := range r.LieExact {
			if k == key {
				return true
			}
		}
		return false
	}
	if r.LieRate <= 0 {
		return false
	}
	if r.LieMinDistinct > 0 && distinctCount(kernel) < r.LieMinDistinct {
		return false
	}
	rng := rand.New(rand.NewSource(zensim.ExecSeed(p.seed^lieSalt, kh, 0)))
	return rng.Float64() < r.LieRate
}

// kernelCanonicalKey recovers the canonical experiment key of a
// flattened kernel (the inverse of engine.KernelOf up to multiset
// identity).
func kernelCanonicalKey(kernel []string) string {
	e := make(portmodel.Experiment, len(kernel))
	for _, k := range kernel {
		e[k]++
	}
	return engine.CanonicalKey(e)
}

// distinctCount counts distinct instructions in a kernel.
func distinctCount(kernel []string) int {
	seen := make(map[string]bool, len(kernel))
	for _, k := range kernel {
		seen[k] = true
	}
	return len(seen)
}

// innerExecute prefers the inner processor's cancellable form.
func (p *Processor) innerExecute(ctx context.Context, kernel []string, iterations int) (engine.Counters, error) {
	if cp, ok := p.inner.(engine.ContextProcessor); ok {
		return cp.ExecuteContext(ctx, kernel, iterations)
	}
	return p.inner.Execute(kernel, iterations)
}

// sleepCtx blocks for d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
