package chaos_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"zenport/internal/chaos"
	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// fakeInner is a deterministic processor in the zensim mold: its
// cycle count depends only on the kernel and on how many times that
// kernel has run before, so fault-injection transparency and replay
// can be checked exactly.
type fakeInner struct {
	mu  sync.Mutex
	seq map[string]int
}

func newFakeInner() *fakeInner { return &fakeInner{seq: make(map[string]int)} }

func (f *fakeInner) Execute(kernel []string, iterations int) (engine.Counters, error) {
	key := strings.Join(kernel, "\x00")
	f.mu.Lock()
	n := f.seq[key]
	f.seq[key]++
	f.mu.Unlock()
	cyc := (float64(len(kernel)) + 0.01*float64(n%5)) * float64(iterations)
	return engine.Counters{
		Cycles:       cyc,
		Instructions: uint64(len(kernel) * iterations),
		Ops:          uint64(len(kernel) * iterations),
		FPPortOps:    []float64{1, 2, 3, 4},
	}, nil
}

func (f *fakeInner) NumPorts() int { return 4 }
func (f *fakeInner) Rmax() float64 { return 5 }

func (f *fakeInner) RestoreExecCount(kernel []string, executions uint64) {
	key := strings.Join(kernel, "\x00")
	f.mu.Lock()
	if int(executions) > f.seq[key] {
		f.seq[key] = int(executions)
	}
	f.mu.Unlock()
}

// runRound drives one chaos round to completion the way the engine's
// retry loop would, returning the corrupted counters.
func runRound(t *testing.T, p *chaos.Processor, kernel []string) engine.Counters {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		c, err := p.Execute(kernel, 100)
		if err == nil {
			return c
		}
		if !engine.IsTransient(err) {
			t.Fatalf("non-transient injected error: %v", err)
		}
	}
	t.Fatal("round did not complete within 10 attempts")
	return engine.Counters{}
}

// TestFaultStreamIndependentOfOrder: the fault draws of one kernel
// must not depend on what other kernels run in between — the property
// that makes chaos runs worker-count invariant.
func TestFaultStreamIndependentOfOrder(t *testing.T) {
	regime := chaos.Regime{TransientRate: 0.3, OutlierRate: 0.2, OutlierFactor: 10, StuckRate: 0.2}
	a := []string{"a"}
	b := []string{"b"}

	// Sequential: all rounds of a, then all of b.
	p1 := chaos.New(newFakeInner(), 7, regime)
	var seqA, seqB []engine.Counters
	for i := 0; i < 40; i++ {
		seqA = append(seqA, runRound(t, p1, a))
	}
	for i := 0; i < 40; i++ {
		seqB = append(seqB, runRound(t, p1, b))
	}

	// Interleaved.
	p2 := chaos.New(newFakeInner(), 7, regime)
	var intA, intB []engine.Counters
	for i := 0; i < 40; i++ {
		intB = append(intB, runRound(t, p2, b))
		intA = append(intA, runRound(t, p2, a))
	}

	for i := range seqA {
		if seqA[i].Cycles != intA[i].Cycles || seqA[i].Ops != intA[i].Ops {
			t.Fatalf("kernel a round %d differs between orders: %+v vs %+v", i, seqA[i], intA[i])
		}
		if seqB[i].Cycles != intB[i].Cycles || seqB[i].Ops != intB[i].Ops {
			t.Fatalf("kernel b round %d differs between orders: %+v vs %+v", i, seqB[i], intB[i])
		}
	}
	if p1.Ledger() != p2.Ledger() {
		t.Fatalf("ledgers differ between orders: %v vs %v", p1.Ledger(), p2.Ledger())
	}
	if l := p1.Ledger(); l.Transients == 0 || l.Outliers == 0 || l.Stuck == 0 {
		t.Fatalf("fault regime did not fire: %v", l)
	}
}

// TestCorruptionsApplied forces each post-execution fault class and
// checks it lands on the counters.
func TestCorruptionsApplied(t *testing.T) {
	inner := newFakeInner()
	clean, err := inner.Execute([]string{"k"}, 100)
	if err != nil {
		t.Fatal(err)
	}

	p := chaos.New(newFakeInner(), 1, chaos.Regime{OutlierRate: 1, OutlierFactor: 10})
	c := runRound(t, p, []string{"k"})
	if c.Cycles != clean.Cycles*10 {
		t.Fatalf("outlier not applied: %v, want %v", c.Cycles, clean.Cycles*10)
	}

	p = chaos.New(newFakeInner(), 1, chaos.Regime{StuckRate: 1})
	c = runRound(t, p, []string{"k"})
	if c.Ops != 0 {
		t.Fatalf("stuck fault left Ops = %d", c.Ops)
	}
	for i, v := range c.FPPortOps {
		if v != 0 {
			t.Fatalf("stuck fault left FPPortOps[%d] = %v", i, v)
		}
	}
	if c.Cycles != clean.Cycles {
		t.Fatalf("stuck fault corrupted cycles: %v", c.Cycles)
	}

	// Drift: round 0 sits at sin(0) = 0 (unscaled), round 1 of a
	// 4-round period at sin(π/2) = 1, scaling cycles by 1+amplitude.
	clean1, err := inner.Execute([]string{"k"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	p = chaos.New(newFakeInner(), 1, chaos.Regime{DriftAmplitude: 0.5, DriftPeriod: 4})
	if got := runRound(t, p, []string{"k"}).Cycles; got != clean.Cycles {
		t.Fatalf("drift round 0 = %v, want unscaled %v", got, clean.Cycles)
	}
	if got, want := runRound(t, p, []string{"k"}).Cycles, clean1.Cycles*1.5; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("drift round 1 = %v, want %v", got, want)
	}
	if l := p.Ledger(); l.Drifted != 2 {
		t.Fatalf("Drifted = %d, want 2", l.Drifted)
	}
}

// TestZeroRegimeIsTransparent: the zero regime must be a perfect
// passthrough.
func TestZeroRegimeIsTransparent(t *testing.T) {
	ref := newFakeInner()
	p := chaos.New(newFakeInner(), 99, chaos.Regime{})
	kernel := []string{"x", "y"}
	for i := 0; i < 20; i++ {
		want, _ := ref.Execute(kernel, 100)
		got, err := p.Execute(kernel, 100)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != want.Cycles || got.Ops != want.Ops {
			t.Fatalf("round %d not transparent: %+v vs %+v", i, got, want)
		}
	}
	if l := p.Ledger(); l.Transients+l.Hangs+l.Outliers+l.Stuck+l.Drifted != 0 {
		t.Fatalf("zero regime injected faults: %v", l)
	}
}

// TestHangHonorsContext: a cancelled context must interrupt an
// injected hang promptly, well before HangDuration elapses.
func TestHangHonorsContext(t *testing.T) {
	p := chaos.New(newFakeInner(), 3, chaos.Regime{HangRate: 1, HangDuration: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.ExecuteContext(ctx, []string{"k"}, 100)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hang ignored cancellation for %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if p.Ledger().Hangs != 1 {
		t.Fatalf("Hangs = %d, want 1", p.Ledger().Hangs)
	}
}

// TestRestoreExecCountReplay: a fresh processor fast-forwarded to
// round n must draw the same faults and values a continuous run drew
// from round n on — the resumability contract.
func TestRestoreExecCountReplay(t *testing.T) {
	regime := chaos.Regime{TransientRate: 0.3, OutlierRate: 0.3, OutlierFactor: 10, StuckRate: 0.2}
	kernel := []string{"a", "b"}

	ref := chaos.New(newFakeInner(), 11, regime)
	var rounds []engine.Counters
	for i := 0; i < 30; i++ {
		rounds = append(rounds, runRound(t, ref, kernel))
	}

	const resumeAt = 12
	res := chaos.New(newFakeInner(), 11, regime)
	res.RestoreExecCount(kernel, resumeAt)
	for i := resumeAt; i < 30; i++ {
		got := runRound(t, res, kernel)
		if got.Cycles != rounds[i].Cycles || got.Ops != rounds[i].Ops {
			t.Fatalf("replayed round %d differs: %+v vs %+v", i, got, rounds[i])
		}
	}
}

// TestEngineRetriesAbsorbPreFaults: with MaxPreFaults ≤ MaxRetries,
// even a 100% transient rate cannot fail a measurement — the worst
// case the documented regimes may produce is retries, never an
// aborted pipeline.
func TestEngineRetriesAbsorbPreFaults(t *testing.T) {
	p := chaos.New(newFakeInner(), 5, chaos.Regime{TransientRate: 1, MaxPreFaults: 2})
	g := engine.New(p)
	r, err := g.Measure(context.Background(), portmodel.Exp("k"))
	if err != nil {
		t.Fatalf("measurement failed under max transient rate: %v", err)
	}
	if r.Runs != 11 {
		t.Fatalf("Runs = %d, want 11", r.Runs)
	}
	// Every sample pays exactly MaxPreFaults injected transients.
	if got := g.Metrics().Retries; got != 22 {
		t.Fatalf("Retries = %d, want 22", got)
	}
	if l := p.Ledger(); l.Transients != 22 || l.Rounds != 11 {
		t.Fatalf("ledger = %v, want 22 transients over 11 rounds", l)
	}
	if w := g.Metrics().BackoffWait; w <= 0 {
		t.Fatalf("BackoffWait = %v, want > 0", w)
	}
}

// TestConsistentLieExact: a kernel targeted by LieExact reports scaled
// cycles on every execution — the corruption never varies, so the
// engine's outlier rejection has nothing to reject — while untargeted
// kernels pass through untouched.
func TestConsistentLieExact(t *testing.T) {
	regime := chaos.Regime{LieExact: []string{"1*a|1*b"}, LieFactor: 1.5}
	p := chaos.New(newFakeInner(), 9, regime)
	ref := newFakeInner()

	liar := engine.KernelOf(portmodel.Experiment{"a": 1, "b": 1})
	honest := engine.KernelOf(portmodel.Exp("a"))
	for i := 0; i < 10; i++ {
		got := runRound(t, p, liar)
		want, _ := ref.Execute(liar, 100)
		if math.Abs(got.Cycles-1.5*want.Cycles) > 1e-9 {
			t.Fatalf("round %d: lied cycles %v, want %v × 1.5", i, got.Cycles, want.Cycles)
		}
	}
	for i := 0; i < 10; i++ {
		got := runRound(t, p, honest)
		want, _ := ref.Execute(honest, 100)
		if got.Cycles != want.Cycles {
			t.Fatalf("round %d: honest kernel corrupted: %v vs %v", i, got.Cycles, want.Cycles)
		}
	}
	if l := p.Ledger(); l.Lies != 10 {
		t.Fatalf("Lies = %d, want 10", l.Lies)
	}
}

// TestLieMinDistinctGate: with the distinct-instruction gate at 2, the
// singleton kernels the classification stages depend on can never lie,
// no matter the rate.
func TestLieMinDistinctGate(t *testing.T) {
	regime := chaos.Regime{LieRate: 1.0, LieFactor: 2, LieMinDistinct: 2}
	p := chaos.New(newFakeInner(), 11, regime)
	ref := newFakeInner()

	single := engine.KernelOf(portmodel.Experiment{"a": 3})
	got := runRound(t, p, single)
	want, _ := ref.Execute(single, 100)
	if got.Cycles != want.Cycles {
		t.Fatalf("gated singleton lied: %v vs %v", got.Cycles, want.Cycles)
	}

	pair := engine.KernelOf(portmodel.Experiment{"a": 1, "b": 1})
	got = runRound(t, p, pair)
	want, _ = ref.Execute(pair, 100)
	if math.Abs(got.Cycles-2*want.Cycles) > 1e-9 {
		t.Fatalf("rate-1 pair did not lie: %v vs %v", got.Cycles, want.Cycles)
	}
	if l := p.Ledger(); l.Lies != 1 {
		t.Fatalf("Lies = %d, want 1", l.Lies)
	}
}

// TestLieIsStaticPerKernel: the lie decision must not change between
// rounds or survive into other kernels' streams, and re-creating the
// processor at the same seed reproduces it exactly.
func TestLieIsStaticPerKernel(t *testing.T) {
	regime := chaos.Regime{LieRate: 0.5, LieFactor: 3}
	kernels := [][]string{{"a"}, {"b"}, {"c"}, {"a", "b"}, {"b", "c"}}
	verdicts := func(seed int64) []bool {
		p := chaos.New(newFakeInner(), seed, regime)
		ref := newFakeInner()
		out := make([]bool, len(kernels))
		for i, k := range kernels {
			lied := false
			for r := 0; r < 5; r++ {
				got := runRound(t, p, k)
				want, _ := ref.Execute(k, 100)
				isLie := math.Abs(got.Cycles-3*want.Cycles) < 1e-9
				if r == 0 {
					lied = isLie
				} else if isLie != lied {
					t.Fatalf("kernel %v flipped its lie verdict at round %d", k, r)
				}
			}
			out[i] = lied
		}
		return out
	}
	first := verdicts(21)
	again := verdicts(21)
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("kernel %v verdict not reproducible at fixed seed", kernels[i])
		}
	}
	anyLie := false
	for _, v := range first {
		anyLie = anyLie || v
	}
	other := verdicts(22)
	differs := false
	for i := range first {
		differs = differs || first[i] != other[i]
	}
	if !anyLie && !differs {
		t.Skip("rate-0.5 draw produced no liar at either seed; statistically possible but suspicious")
	}
}

// TestLieFingerprint: lie parameters must invalidate caches, but a
// lie-free regime keeps the fingerprint it always had.
func TestLieFingerprint(t *testing.T) {
	base := chaos.New(newFakeInner(), 1, chaos.Regime{OutlierRate: 0.01})
	if strings.Contains(base.Fingerprint(), "lie=") {
		t.Fatalf("lie-free fingerprint mentions lies: %s", base.Fingerprint())
	}
	lied := chaos.New(newFakeInner(), 1, chaos.Regime{OutlierRate: 0.01, LieRate: 0.1})
	if lied.Fingerprint() == base.Fingerprint() {
		t.Fatal("lie regime does not change the fingerprint")
	}
	exact := chaos.New(newFakeInner(), 1, chaos.Regime{OutlierRate: 0.01, LieExact: []string{"1*a"}})
	if exact.Fingerprint() == base.Fingerprint() || exact.Fingerprint() == lied.Fingerprint() {
		t.Fatal("LieExact regimes must be distinguishable")
	}
}
