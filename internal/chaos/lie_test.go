package chaos_test

import (
	"encoding/json"
	"testing"

	"zenport/internal/chaos"
	"zenport/internal/core"
	"zenport/internal/engine"
)

// The consistent-lie soak: a fault that shifts every sample of one
// kernel by the same factor is invisible to the per-sample outlier
// filter — it can only surface as a solver-level inconsistency. These
// tests drive the full pipeline through such a lie and demand the
// supervision layer isolate it to a minimal core, relax exactly the
// lied measurement, and keep everything else byte-identical to the
// fault-free golden run.

// liedKernel is the singleton throughput kernel of the mov load
// blocker. A 1.06× lie moves its measured inverse throughput from
// 0.50 to 0.53: stage 1 still rounds 1/0.53 to two ports (its
// tolerance is 0.15), but no port count q satisfies |0.53 − 1/q| ≤ ε
// with ε = 0.02, so the stage-3 model is infeasible with this single
// seed experiment as the minimal core.
const (
	liedKernel = "1*mov GPR[32], MEM[32]"
	liedScheme = "mov GPR[32], MEM[32]"
)

func lieRegime() chaos.Regime {
	return chaos.Regime{LieExact: []string{liedKernel}, LieFactor: 1.06}
}

// TestChaosConsistentLieRecovery: with slack recovery enabled the
// pipeline must complete, report the minimal core and one relaxation
// on the lied kernel, flag the scheme Relaxed — and still produce a
// final mapping byte-identical to the fault-free golden run, because
// the honest counter-example measurements pin the relaxed blocker to
// its true ports anyway.
func TestChaosConsistentLieRecovery(t *testing.T) {
	golden := soakGolden(t)
	opts := core.DefaultOptions()
	opts.MaxSlack = 1.0
	var cp *chaos.Processor
	p := newSoakPipeline(t, 4, func(inner engine.Processor) engine.Processor {
		cp = chaos.New(inner, soakChaosSeed, lieRegime())
		return cp
	}, opts)
	rep, err := p.Run()
	if err != nil {
		t.Fatalf("pipeline under consistent lie failed: %v", err)
	}
	if cp.Ledger().Lies == 0 {
		t.Fatal("the lie never fired")
	}
	sup := rep.Supervision
	if sup == nil {
		t.Fatal("no supervision summary")
	}
	if len(sup.Cores) != 1 || len(sup.Cores[0]) != 1 || sup.Cores[0][0] != liedKernel {
		t.Fatalf("cores = %v, want exactly the lied kernel", sup.Cores)
	}
	if len(sup.Relaxations) != 1 || sup.Relaxations[0].Key != liedKernel {
		t.Fatalf("relaxations = %+v, want one on the lied kernel", sup.Relaxations)
	}
	if len(rep.Relaxed) != 1 || rep.Relaxed[0] != liedScheme {
		t.Fatalf("relaxed schemes = %v, want [%s]", rep.Relaxed, liedScheme)
	}
	if len(rep.Unresolved) != 0 || len(rep.AnomalousBlockers) != 0 {
		t.Fatalf("unexpected degradation: unresolved=%v anomalous=%v", rep.Unresolved, rep.AnomalousBlockers)
	}
	data, err := json.MarshalIndent(rep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(golden) {
		t.Fatal("recovered mapping differs from fault-free golden run")
	}
}

// TestChaosConsistentLieZeroSlack: with recovery disabled (the
// default), the lie routes through the pre-existing §4.3 anomaly
// isolation instead — the blocker's mnemonic family is excluded, the
// run still completes, and the inconsistency is reported as a core.
func TestChaosConsistentLieZeroSlack(t *testing.T) {
	p := newSoakPipeline(t, 4, func(inner engine.Processor) engine.Processor {
		return chaos.New(inner, soakChaosSeed, lieRegime())
	}, core.DefaultOptions())
	rep, err := p.Run()
	if err != nil {
		t.Fatalf("pipeline under consistent lie failed: %v", err)
	}
	anomalous := false
	for _, a := range rep.AnomalousBlockers {
		if a == liedScheme {
			anomalous = true
		}
	}
	if !anomalous {
		t.Fatalf("lied blocker not isolated as anomalous: %v", rep.AnomalousBlockers)
	}
	if len(rep.Relaxed) != 0 {
		t.Fatalf("zero-slack run relaxed measurements: %v", rep.Relaxed)
	}
}
