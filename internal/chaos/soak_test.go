package chaos_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zenport/internal/chaos"
	"zenport/internal/core"
	"zenport/internal/engine"
	"zenport/internal/isa"
	"zenport/internal/measure"
	"zenport/internal/persist"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

// The chaos soak drives the complete inference pipeline through a
// defined fault regime and demands the mapping stay byte-identical to
// a fault-free run: transient errors are absorbed by retries, outlier
// spikes by rejection, stuck counters by the medians — and none of it
// may leak into a single inference decision.

// soakSubset mirrors the golden subset of the core package's
// determinism tests: six blocking classes, improper blockers,
// multi-µop schemes, and a no-port scheme, so every pipeline stage
// runs while the CEGAR search stays small enough to repeat per worker
// count.
func soakSubset(db *zen.DB) []isa.Scheme {
	keys := []string{
		"add GPR[32], GPR[32]",
		"vpor XMM, XMM, XMM",
		"vpaddd XMM, XMM, XMM",
		"vminps XMM, XMM, XMM",
		"mov GPR[32], MEM[32]",
		"vpslld XMM, XMM, XMM",
		"sub GPR[32], GPR[32]",
		"vpand XMM, XMM, XMM",
		"mov MEM[32], GPR[32]",
		"vmovapd MEM[128], XMM",
		"add GPR[32], MEM[32]",
		"add MEM[32], GPR[32]",
		"vpor YMM, YMM, YMM",
		"nop",
		"mov GPR[64], GPR[64]",
	}
	var out []isa.Scheme
	for _, k := range keys {
		out = append(out, db.MustGet(k).Scheme)
	}
	return out
}

// soakRegime is the documented soak mix: ≈2% transients, 1% 10×
// outlier spikes, 0.5% stuck counters, plus short hangs. Drift is
// excluded — a coherent drift shifts whole measurement windows, which
// no per-sample filter can reject (it has its own unit test).
func soakRegime() chaos.Regime {
	return chaos.Regime{
		TransientRate: 0.02,
		HangRate:      0.005,
		HangDuration:  50 * time.Microsecond,
		MaxPreFaults:  2,
		OutlierRate:   0.01,
		OutlierFactor: 10,
		StuckRate:     0.005,
	}
}

const (
	soakSeed      = 42   // zensim noise seed, shared with the golden run
	soakChaosSeed = 1234 // fault-plan seed
	soakFP        = "chaos-soak seed=42 noise=0.001"
)

// newSoakPipeline builds the inference pipeline over a fresh
// simulated machine, optionally wrapped by wrap (fault injection,
// crash injection).
func newSoakPipeline(t testing.TB, workers int, wrap func(engine.Processor) engine.Processor, opts core.Options) *core.Pipeline {
	t.Helper()
	db := zen.Build()
	var proc engine.Processor = zensim.NewMachine(db, zensim.Config{Noise: 0.001, Seed: soakSeed})
	if wrap != nil {
		proc = wrap(proc)
	}
	h := measure.NewHarness(proc)
	h.Workers = workers
	opts.Log = t.Logf
	return core.NewPipeline(h, soakSubset(db), opts)
}

var (
	goldenOnce sync.Once
	goldenJSON []byte
	goldenErr  error
)

// soakGolden returns the fault-free reference mapping JSON, computed
// once per test binary.
func soakGolden(t *testing.T) []byte {
	t.Helper()
	goldenOnce.Do(func() {
		p := newSoakPipeline(t, 4, nil, core.DefaultOptions())
		rep, err := p.Run()
		if err != nil {
			goldenErr = err
			return
		}
		if rep.Supported() == 0 {
			goldenErr = errors.New("golden run characterized nothing")
			return
		}
		goldenJSON, goldenErr = json.MarshalIndent(rep.Final, "", "  ")
	})
	if goldenErr != nil {
		t.Fatalf("golden fault-free run: %v", goldenErr)
	}
	return goldenJSON
}

// TestChaosSoak: the full pipeline under the soak regime must produce
// a mapping byte-identical to the fault-free golden run at every
// worker count, while the ledger confirms every configured fault
// class actually fired.
func TestChaosSoak(t *testing.T) {
	golden := soakGolden(t)
	workerSweep := []int{1, 4, 16}
	if raceEnabled {
		workerSweep = []int{4}
	}
	for _, workers := range workerSweep {
		var cp *chaos.Processor
		p := newSoakPipeline(t, workers, func(inner engine.Processor) engine.Processor {
			cp = chaos.New(inner, soakChaosSeed, soakRegime())
			return cp
		}, core.DefaultOptions())
		rep, err := p.Run()
		if err != nil {
			t.Fatalf("workers=%d: pipeline under chaos failed: %v", workers, err)
		}
		data, err := json.MarshalIndent(rep.Final, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(golden) {
			t.Fatalf("workers=%d: mapping under chaos differs from fault-free golden run", workers)
		}
		l := cp.Ledger()
		t.Logf("workers=%d: ledger %v", workers, l)
		if l.Rounds == 0 || l.Transients == 0 || l.Hangs == 0 || l.Outliers == 0 || l.Stuck == 0 {
			t.Fatalf("workers=%d: a configured fault class never fired: %v", workers, l)
		}
	}
}

// TestPortfolioChaosSoak: the pipeline under the chaos regime WITH a
// width-4 solver portfolio must still produce the fault-free,
// single-solver golden mapping byte-for-byte at every worker count —
// fault recovery and parallel portfolio solving composed, with
// neither allowed to leak into the artifact. Run under -race this is
// the portfolio soak CI gate (make solver-portfolio-soak).
func TestPortfolioChaosSoak(t *testing.T) {
	golden := soakGolden(t)
	workerSweep := []int{1, 4, 16}
	if raceEnabled {
		workerSweep = []int{4}
	}
	for _, workers := range workerSweep {
		opts := core.DefaultOptions()
		opts.Portfolio = 4
		var cp *chaos.Processor
		p := newSoakPipeline(t, workers, func(inner engine.Processor) engine.Processor {
			cp = chaos.New(inner, soakChaosSeed, soakRegime())
			return cp
		}, opts)
		rep, err := p.Run()
		if err != nil {
			t.Fatalf("workers=%d: portfolio pipeline under chaos failed: %v", workers, err)
		}
		data, err := json.MarshalIndent(rep.Final, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(golden) {
			t.Fatalf("workers=%d: portfolio-4 mapping under chaos differs from single-solver fault-free golden", workers)
		}
		if rep.Supervision == nil || rep.Supervision.Solver.Portfolio == nil || rep.Supervision.Solver.Portfolio.Queries == 0 {
			t.Fatalf("workers=%d: no portfolio telemetry in the chaos run", workers)
		}
		if l := cp.Ledger(); l.Rounds == 0 || l.Transients == 0 {
			t.Fatalf("workers=%d: fault injection never fired: %v", workers, l)
		}
	}
}

// errCrashed simulates a process kill mid-soak.
var errCrashed = errors.New("simulated crash")

// crashWrap wraps the chaos processor and fails every execution past
// the limit with a permanent error, aborting the run the way a kill
// would. It forwards the optional interfaces the engine and the
// persistence layer probe for.
type crashWrap struct {
	inner *chaos.Processor
	limit int64
	calls atomic.Int64
}

func (c *crashWrap) ExecuteContext(ctx context.Context, kernel []string, iterations int) (engine.Counters, error) {
	if c.calls.Add(1) > c.limit {
		return engine.Counters{}, errCrashed
	}
	return c.inner.ExecuteContext(ctx, kernel, iterations)
}

func (c *crashWrap) Execute(kernel []string, iterations int) (engine.Counters, error) {
	return c.ExecuteContext(context.Background(), kernel, iterations)
}

func (c *crashWrap) NumPorts() int { return c.inner.NumPorts() }
func (c *crashWrap) Rmax() float64 { return c.inner.Rmax() }

func (c *crashWrap) RestoreExecCount(kernel []string, executions uint64) {
	c.inner.RestoreExecCount(kernel, executions)
}

// newPersistedChaosPipeline is newSoakPipeline plus the crash-safe
// store and stage checkpointer, as zeninfer -cache-dir -chaos wires
// them.
func newPersistedChaosPipeline(t *testing.T, dir string, workers int, limit int64, resume bool) (*core.Pipeline, *crashWrap) {
	t.Helper()
	var cw *crashWrap
	opts := core.DefaultOptions()
	p := newSoakPipeline(t, workers, func(inner engine.Processor) engine.Processor {
		cw = &crashWrap{inner: chaos.New(inner, soakChaosSeed, soakRegime()), limit: limit}
		return cw
	}, opts)
	store, err := persist.Open(dir, soakFP)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately never closed: a killed process does not compact
	// either. Recovery must work from the raw journal alone.
	if err := store.Attach(p.H.Engine); err != nil {
		t.Fatal(err)
	}
	ck, err := persist.NewCheckpointer(dir, soakFP)
	if err != nil {
		t.Fatal(err)
	}
	p.Opts.Checkpointer = ck
	p.Opts.Resume = resume
	return p, cw
}

// TestChaosSoakKillAndResume: a chaos run killed mid-soak and resumed
// must still converge on the fault-free golden mapping — the resumed
// process replays both the noise and the fault streams from the
// journal's execution counts.
func TestChaosSoakKillAndResume(t *testing.T) {
	golden := soakGolden(t)

	// Reference chaos run, unpersisted, to size the injection point.
	ref := newSoakPipeline(t, 4, func(inner engine.Processor) engine.Processor {
		return chaos.New(inner, soakChaosSeed, soakRegime())
	}, core.DefaultOptions())
	if _, err := ref.Run(); err != nil {
		t.Fatalf("reference chaos run: %v", err)
	}
	refCalls := int64(ref.H.Metrics().ProcessorCalls)
	if refCalls == 0 {
		t.Fatal("reference chaos run executed nothing")
	}
	crashAt := refCalls * 85 / 100

	dir := t.TempDir()
	crashed, _ := newPersistedChaosPipeline(t, dir, 4, crashAt, false)
	if _, err := crashed.Run(); !errors.Is(err, errCrashed) {
		t.Fatalf("interrupted run: err = %v, want simulated crash", err)
	}

	resumed, cw := newPersistedChaosPipeline(t, dir, 4, math.MaxInt64, true)
	rep, err := resumed.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	data, err := json.MarshalIndent(rep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(golden) {
		t.Fatal("resumed chaos mapping differs from fault-free golden run")
	}
	// Completed work must be reused, not re-measured.
	if resCalls := cw.calls.Load(); resCalls >= refCalls/2 {
		t.Errorf("resumed run made %d processor calls, full run needs %d — completed work was not reused", resCalls, refCalls)
	}
}

// TestChaosSoakCancellation: cancelling mid-soak (with hangs in the
// regime) returns promptly with the context error and leaves the
// cache/journal consistent — a subsequent resume converges on the
// golden mapping.
func TestChaosSoakCancellation(t *testing.T) {
	golden := soakGolden(t)
	dir := t.TempDir()

	interrupted, _ := newPersistedChaosPipeline(t, dir, 4, math.MaxInt64, false)
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := interrupted.RunContext(ctx)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation ignored for %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}

	resumed, _ := newPersistedChaosPipeline(t, dir, 4, math.MaxInt64, true)
	rep, err := resumed.Run()
	if err != nil {
		t.Fatalf("resume after cancellation: %v", err)
	}
	data, err := json.MarshalIndent(rep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(golden) {
		t.Fatal("mapping resumed after cancellation differs from fault-free golden run")
	}
}
