package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"zenport/internal/portmodel"
)

// raceMapping builds a wider mapping so concurrent evaluations do real
// work (8 ports, 40 schemes).
func raceMapping(t *testing.T) *portmodel.Mapping {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	m := portmodel.NewMapping(8)
	for i := 0; i < 40; i++ {
		u := portmodel.Usage{}
		for j := 0; j <= rng.Intn(3); j++ {
			var ps portmodel.PortSet
			for ps == 0 {
				ps = portmodel.PortSet(rng.Intn(1 << 8))
			}
			u = append(u, portmodel.Uop{Ports: ps, Count: 1 + rng.Intn(2)})
		}
		m.Set(fmt.Sprintf("op-%02d", i), u)
	}
	return m
}

// TestEvalPoolConcurrent is the race-detector regression test for the
// evaluator pool: portmodel.Compiled is single-goroutine by contract,
// and the bug class this guards against is two handlers sharing one
// compiled evaluator (its scratch vectors and memo are unsynchronized
// — the race detector flags that immediately). 64 goroutines hammer
// the pool directly and every result is checked bit-identical to the
// reference evaluator, so both exclusivity and correctness are
// exercised. Run with -race; the Makefile race target includes this
// package.
func TestEvalPoolConcurrent(t *testing.T) {
	m := raceMapping(t)
	pool, err := newEvalPool(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	keys := m.Keys()

	// Precompute reference answers single-threaded.
	const distinct = 60
	exps := make([]portmodel.Experiment, distinct)
	want := make([]float64, distinct)
	rng := rand.New(rand.NewSource(5))
	for i := range exps {
		e := portmodel.Experiment{}
		for j := 0; j <= rng.Intn(3); j++ {
			e[keys[rng.Intn(len(keys))]] += 1 + rng.Intn(4)
		}
		e[keys[i%len(keys)]] += i + 1
		exps[i] = e
		if want[i], err = m.InverseThroughput(e); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 64
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				idx := rng.Intn(distinct)
				ev, err := pool.get(context.Background())
				if err != nil {
					errs <- err
					return
				}
				got, err := ev.c.InverseThroughput(exps[idx])
				pool.put(ev)
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(got) != math.Float64bits(want[idx]) {
					errs <- fmt.Errorf("goroutine %d: experiment %d: %v != %v", g, idx, got, want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerConcurrentHammer drives the full HTTP stack — decode,
// LRU, singleflight, evaluator pool — from 64 goroutines with a
// deliberately overlapping query stream, checking every served
// prediction bit-identical to the reference evaluator.
func TestServerConcurrentHammer(t *testing.T) {
	const rmax = 5.0
	m := raceMapping(t)
	s := New(Config{Rmax: rmax, CacheSize: 32}) // small LRU to force evictions
	if err := s.Load("zen", m); err != nil {
		t.Fatal(err)
	}
	keys := m.Keys()

	const distinct = 48
	exps := make([]portmodel.Experiment, distinct)
	want := make([]float64, distinct)
	rng := rand.New(rand.NewSource(9))
	for i := range exps {
		e := portmodel.Experiment{}
		for j := 0; j <= rng.Intn(2); j++ {
			e[keys[rng.Intn(len(keys))]] += 1 + rng.Intn(3)
		}
		e[keys[i%len(keys)]] += i + 1
		exps[i] = e
		var err error
		if want[i], err = m.InverseThroughputBounded(e, rmax); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 64
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < iters; i++ {
				idx := rng.Intn(distinct)
				body, _ := json.Marshal(PredictRequest{Mapping: "zen", Experiment: exps[idx]})
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: status %d: %s", g, w.Code, w.Body.String())
					return
				}
				var resp PredictResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				if math.Float64bits(resp.InvThroughput) != math.Float64bits(want[idx]) {
					errs <- fmt.Errorf("goroutine %d: experiment %d: served %v != reference %v",
						g, idx, resp.InvThroughput, want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The singleflight + LRU must have absorbed most of the load:
	// 64*40 requests over 48 distinct keys cannot all have evaluated.
	h := s.state().mappings["zen"]
	total := uint64(goroutines * iters)
	if evals := h.evals.Load(); evals >= total {
		t.Fatalf("every request evaluated (%d of %d): dedup and cache ineffective", evals, total)
	}
}
