package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"zenport/internal/portmodel"
)

// predictBody builds a /v1/predict body for one experiment.
func predictBody(mapping string, e map[string]int) string {
	b, _ := json.Marshal(PredictRequest{Mapping: mapping, Experiment: e})
	return string(b)
}

// doReq issues one request with optional header and context overrides.
func doReq(s *Server, method, path, body string, mod func(*http.Request)) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if mod != nil {
		mod(req)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestWriteErrorClassification is the satellite's table-driven sweep:
// the server's own deadline answers 504, a client disconnect the 499
// convention, typed httpErrors pass through with their Retry-After,
// and everything else stays a 500.
func TestWriteErrorClassification(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		status     int
		msg        string
		retryAfter string
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "serve: deadline exceeded", ""},
		{"wrapped deadline", fmt.Errorf("eval: %w", context.DeadlineExceeded),
			http.StatusGatewayTimeout, "serve: deadline exceeded", ""},
		{"canceled", context.Canceled, StatusClientClosedRequest, "serve: request canceled by client", ""},
		{"wrapped canceled", fmt.Errorf("eval: %w", context.Canceled),
			StatusClientClosedRequest, "serve: request canceled by client", ""},
		{"http error", errf(http.StatusTeapot, "serve: kettle"), http.StatusTeapot, "serve: kettle", ""},
		{"retry-after", &httpError{status: http.StatusTooManyRequests,
			msg: "serve: overloaded: queue full, request shed", retryAfter: 2},
			http.StatusTooManyRequests, "serve: overloaded: queue full, request shed", "2"},
		{"plain", errors.New("boom"), http.StatusInternalServerError, "serve: internal error: boom", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{})
			w := httptest.NewRecorder()
			s.writeError(w, tc.err)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d", w.Code, tc.status)
			}
			var body map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("bad error JSON %q: %v", w.Body.String(), err)
			}
			if body["error"] != tc.msg {
				t.Fatalf("error = %q, want %q", body["error"], tc.msg)
			}
			if got := w.Header().Get("Retry-After"); got != tc.retryAfter {
				t.Fatalf("Retry-After = %q, want %q", got, tc.retryAfter)
			}
		})
	}
}

// TestWriteErrorCounters pins the stats accounting: a 504 bumps
// deadline expiries, a 499 the canceled counter.
func TestWriteErrorCounters(t *testing.T) {
	s := New(Config{})
	s.writeError(httptest.NewRecorder(), context.DeadlineExceeded)
	s.writeError(httptest.NewRecorder(), context.Canceled)
	if got := s.deadlines.Load(); got != 1 {
		t.Fatalf("deadline expiries = %d, want 1", got)
	}
	if got := s.canceled.Load(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
}

// blockingHook is a controllable EvalHook: evaluations park on the
// release channel (honoring ctx) after signaling entry.
type blockingHook struct {
	entered chan string
	release chan struct{}
}

func newBlockingHook() *blockingHook {
	return &blockingHook{entered: make(chan string, 64), release: make(chan struct{})}
}

func (h *blockingHook) eval(ctx context.Context, key string) error {
	h.entered <- key
	select {
	case <-h.release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestShedQueueFull drives the gate to its bounds: with one evaluator
// slot held and the one-deep queue occupied, the next distinct-key
// request is shed on the spot with 429 + Retry-After and the stable
// message, and the queued request still completes once the slot frees.
func TestShedQueueFull(t *testing.T) {
	hook := newBlockingHook()
	s := New(Config{Rmax: 5, MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: time.Minute, EvalHook: hook.eval})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}

	type result struct {
		w *httptest.ResponseRecorder
	}
	results := make(chan result, 2)
	go func() {
		results <- result{doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil)}
	}()
	<-hook.entered // first request holds the evaluator slot

	go func() {
		results <- result{doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"mul": 1}), nil)}
	}()
	// Wait until the second request occupies the queue.
	deadline := time.Now().Add(5 * time.Second)
	for s.gate.queueDepth.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third distinct request: slots and queue full → shed immediately.
	w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"store": 1}), nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "serve: overloaded: queue full, request shed") {
		t.Fatalf("shed body = %s", w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	close(hook.release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.w.Code != http.StatusOK {
			t.Fatalf("blocked request %d: status %d: %s", i, r.w.Code, r.w.Body.String())
		}
	}
	gs := s.gate.stats()
	if gs.ShedQueueFull != 1 || gs.Shed != 1 {
		t.Fatalf("gate stats = %+v, want 1 queue-full shed", gs)
	}
	if gs.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", gs.QueueDepth)
	}
}

// TestShedQueueTimeout parks a request in the queue past the queue
// deadline and demands the timed-out variant of the 429.
func TestShedQueueTimeout(t *testing.T) {
	hook := newBlockingHook()
	s := New(Config{Rmax: 5, MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 5 * time.Millisecond, EvalHook: hook.eval})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		first <- doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil)
	}()
	<-hook.entered

	w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"mul": 1}), nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "serve: overloaded: queued past deadline, request shed") {
		t.Fatalf("body = %s", w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	close(hook.release)
	if r := <-first; r.Code != http.StatusOK {
		t.Fatalf("first request: status %d: %s", r.Code, r.Body.String())
	}
	if gs := s.gate.stats(); gs.ShedQueueTimeout != 1 {
		t.Fatalf("gate stats = %+v, want 1 queue-timeout shed", gs)
	}
}

// TestDeadlineHeader exercises deadline propagation end to end: a
// stalling evaluation under a small X-Zenport-Deadline answers 504 and
// bumps the deadline-expiry counter, and the evaluator slot is freed.
func TestDeadlineHeader(t *testing.T) {
	hook := newBlockingHook()
	s := New(Config{Rmax: 5, EvalHook: hook.eval})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	go func() {
		for range hook.entered { // drain entry signals
		}
	}()
	w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}),
		func(r *http.Request) { r.Header.Set(DeadlineHeader, "10ms") })
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "serve: deadline exceeded") {
		t.Fatalf("body = %s", w.Body.String())
	}
	if got := s.deadlines.Load(); got != 1 {
		t.Fatalf("deadline expiries = %d, want 1", got)
	}
	// The slot must be free again: an unblocked evaluation succeeds.
	close(hook.release)
	w = doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("post-timeout status = %d: %s", w.Code, w.Body.String())
	}
}

// TestDeadlineHeaderValidation rejects malformed and non-positive
// deadline headers with a 400 before any work happens.
func TestDeadlineHeaderValidation(t *testing.T) {
	s := newTestServer(t, Config{Rmax: 5})
	for _, bad := range []string{"nonsense", "-5ms", "0s"} {
		w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}),
			func(r *http.Request) { r.Header.Set(DeadlineHeader, bad) })
		if w.Code != http.StatusBadRequest {
			t.Fatalf("header %q: status = %d, want 400: %s", bad, w.Code, w.Body.String())
		}
		// The quoted header value is JSON-escaped in the body; match the
		// stable prefix and the offending value separately.
		if !strings.Contains(w.Body.String(), "serve: invalid "+DeadlineHeader) ||
			!strings.Contains(w.Body.String(), bad) {
			t.Fatalf("header %q: body = %s", bad, w.Body.String())
		}
	}
}

// TestMaxDeadlineCap verifies the server caps a client-requested
// budget: with MaxDeadline 10ms, a request asking for an hour still
// times out in milliseconds.
func TestMaxDeadlineCap(t *testing.T) {
	hook := newBlockingHook()
	s := New(Config{Rmax: 5, MaxDeadline: 10 * time.Millisecond, EvalHook: hook.eval})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	go func() {
		for range hook.entered {
		}
	}()
	start := time.Now()
	w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}),
		func(r *http.Request) { r.Header.Set(DeadlineHeader, "1h") })
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", w.Code, w.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline cap ignored: took %v", elapsed)
	}
}

// TestClientDisconnect499 cancels the request context mid-evaluation
// — the serving layer's view of a client hangup — and demands the 499
// convention plus the canceled counter.
func TestClientDisconnect499(t *testing.T) {
	hook := newBlockingHook()
	s := New(Config{Rmax: 5, EvalHook: hook.eval})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		done <- doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}),
			func(r *http.Request) { *r = *r.WithContext(ctx) })
	}()
	<-hook.entered
	cancel()
	w := <-done
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", w.Code, StatusClientClosedRequest, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "serve: request canceled by client") {
		t.Fatalf("body = %s", w.Body.String())
	}
	if got := s.canceled.Load(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
}

// TestEvaluatorPanicRecovered injects one evaluator panic and demands
// the daemon answer 500, count it, discard the poisoned evaluator, and
// keep serving.
func TestEvaluatorPanicRecovered(t *testing.T) {
	doPanic := false
	var mu sync.Mutex
	s := New(Config{Rmax: 5, EvalHook: func(ctx context.Context, key string) error {
		mu.Lock()
		p := doPanic
		doPanic = false
		mu.Unlock()
		if p {
			panic("injected evaluator panic")
		}
		return nil
	}})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	doPanic = true
	mu.Unlock()
	w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "serve: evaluator panic: injected evaluator panic") {
		t.Fatalf("body = %s", w.Body.String())
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}
	// The daemon survives and serves the same key correctly afterwards.
	w = doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("post-panic status = %d: %s", w.Code, w.Body.String())
	}
}

// TestHandlerPanicRecovered covers the outer ServeHTTP recover: a
// panicking handler answers 500 instead of unwinding the daemon.
func TestHandlerPanicRecovered(t *testing.T) {
	s := New(Config{})
	s.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("handler bug") })
	w := doReq(s, http.MethodGet, "/boom", "", nil)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "serve: handler panic: handler bug") {
		t.Fatalf("body = %s", w.Body.String())
	}
	if got := s.panics.Load(); got != 1 {
		t.Fatalf("panics recovered = %d, want 1", got)
	}
}

// TestBreakerStateMachine unit-tests the trip/half-open/recover
// transitions with a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, time.Second, clock)

	// Interleaved successes never trip: the streak resets.
	for i := 0; i < 10; i++ {
		if _, ok := b.allow(); !ok {
			t.Fatal("closed breaker refused")
		}
		b.failure(false)
		b.failure(false)
		b.success(false)
	}
	if st := b.stats(); st.State != "closed" || st.Trips != 0 {
		t.Fatalf("stats = %+v, want closed with 0 trips", st)
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		if _, ok := b.allow(); !ok {
			t.Fatalf("refused before trip at failure %d", i)
		}
		b.failure(false)
	}
	if st := b.stats(); st.State != "open" || st.Trips != 1 {
		t.Fatalf("stats = %+v, want open with 1 trip", st)
	}
	if _, ok := b.allow(); ok {
		t.Fatal("open breaker allowed before cooldown")
	}

	// Cooldown passes: exactly one probe goes through.
	now = now.Add(2 * time.Second)
	probe, ok := b.allow()
	if !probe || !ok {
		t.Fatalf("allow after cooldown = (%v, %v), want probe", probe, ok)
	}
	if _, ok := b.allow(); ok {
		t.Fatal("second caller admitted while probe in flight")
	}

	// A failed probe re-opens; an aborted probe hands the token back.
	b.failure(probe)
	if st := b.stats(); st.State != "open" || st.Trips != 2 {
		t.Fatalf("stats = %+v, want re-opened with 2 trips", st)
	}
	now = now.Add(2 * time.Second)
	probe, ok = b.allow()
	if !probe || !ok {
		t.Fatal("no probe after second cooldown")
	}
	b.abort(probe)
	probe, ok = b.allow()
	if !probe || !ok {
		t.Fatal("aborted probe did not hand back the token")
	}

	// A successful probe closes the breaker.
	b.success(probe)
	if st := b.stats(); st.State != "closed" {
		t.Fatalf("stats = %+v, want closed after probe success", st)
	}
	if _, ok := b.allow(); !ok {
		t.Fatal("closed breaker refused after recovery")
	}
}

// TestBreakerDisabled pins the negative-threshold escape hatch.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Second, nil)
	for i := 0; i < 100; i++ {
		b.failure(false)
		if _, ok := b.allow(); !ok {
			t.Fatal("disabled breaker tripped")
		}
	}
}

// TestDegradedCacheOnly walks the full degraded-mode story through
// the HTTP stack: consecutive evaluator failures trip the mapping to
// cache-only (hits answered 200, misses 503 + Retry-After, breaker
// state in /v1/stats), and after the cooldown a healthy probe recovers
// it.
func TestDegradedCacheOnly(t *testing.T) {
	failing := false
	var mu sync.Mutex
	s := New(Config{Rmax: 5, BreakerThreshold: 2, BreakerCooldown: 10 * time.Millisecond,
		EvalHook: func(ctx context.Context, key string) error {
			mu.Lock()
			defer mu.Unlock()
			if failing {
				return errors.New("evaluator broken")
			}
			return nil
		}})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}

	// Warm the cache with one key while healthy.
	if w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil); w.Code != http.StatusOK {
		t.Fatalf("warm: status %d: %s", w.Code, w.Body.String())
	}

	mu.Lock()
	failing = true
	mu.Unlock()
	// Two consecutive failures on distinct keys trip the breaker.
	for i, e := range []map[string]int{{"mul": 1}, {"store": 1}} {
		if w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", e), nil); w.Code != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d: %s", i, w.Code, w.Body.String())
		}
	}

	// Degraded: a cache hit still answers, a miss gets 503 + Retry-After.
	if w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil); w.Code != http.StatusOK {
		t.Fatalf("degraded cache hit: status %d: %s", w.Code, w.Body.String())
	}
	w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"shuf": 1}), nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded miss: status %d, want 503: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "degraded: evaluator breaker open, serving cache only") {
		t.Fatalf("degraded body = %s", w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("degraded response missing Retry-After")
	}
	var stats StatsResponse
	do(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Mappings[0].Breaker.State != "open" || stats.Mappings[0].Breaker.Trips != 1 {
		t.Fatalf("breaker stats = %+v, want open with 1 trip", stats.Mappings[0].Breaker)
	}

	// Heal the evaluator, wait out the cooldown: the half-open probe
	// recovers the mapping.
	mu.Lock()
	failing = false
	mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	if w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"shuf": 1}), nil); w.Code != http.StatusOK {
		t.Fatalf("recovery probe: status %d: %s", w.Code, w.Body.String())
	}
	do(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Mappings[0].Breaker.State != "closed" {
		t.Fatalf("breaker stats after recovery = %+v, want closed", stats.Mappings[0].Breaker)
	}
}

// TestReloadGenerations covers the reload protocol: generation bumps,
// fingerprint-identical reloads keep the LRU warm, changed mappings
// drop it, and a mapping that fails validation or the smoke check
// leaves the previous generation serving untouched.
func TestReloadGenerations(t *testing.T) {
	s := New(Config{Rmax: 5})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	if gen := s.ReloadGeneration("toy"); gen != 1 {
		t.Fatalf("generation after load = %d, want 1", gen)
	}

	// Warm the cache.
	if w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"add": 1}), nil); w.Code != http.StatusOK {
		t.Fatalf("warm: %d", w.Code)
	}

	// Fingerprint-identical reload: generation bumps, cache retained.
	res, err := s.Reload("toy", toyMapping())
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || !res.CacheRetained {
		t.Fatalf("identical reload = %+v, want generation 2 with cache retained", res)
	}
	var stats StatsResponse
	do(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Mappings[0].Cache.Entries == 0 {
		t.Fatal("identical reload dropped the warm cache")
	}
	if stats.Mappings[0].Generation != 2 {
		t.Fatalf("stats generation = %d, want 2", stats.Mappings[0].Generation)
	}

	// Changed mapping: cache dropped, fingerprint changes.
	res2, err := s.Reload("toy", toyMapping2())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Generation != 3 || res2.CacheRetained {
		t.Fatalf("changed reload = %+v, want generation 3 without cache", res2)
	}
	if res2.Fingerprint == res.Fingerprint {
		t.Fatal("different mappings share a fingerprint")
	}
	do(t, s, http.MethodGet, "/v1/stats", "", &stats)
	if stats.Mappings[0].Cache.Entries != 0 {
		t.Fatalf("changed reload kept %d stale cache entries", stats.Mappings[0].Cache.Entries)
	}

	// A broken mapping is rejected; generation 3 keeps serving.
	bad := portmodel.NewMapping(6)
	bad.Set("add", portmodel.Usage{{Ports: 0, Count: 1}}) // empty port set fails Validate
	if _, err := s.Reload("toy", bad); err == nil {
		t.Fatal("reload of invalid mapping succeeded")
	}
	if gen := s.ReloadGeneration("toy"); gen != 3 {
		t.Fatalf("generation after rejected reload = %d, want 3", gen)
	}
	// vadd exists only in toyMapping2: generation 3 is still serving.
	if w := doReq(s, http.MethodPost, "/v1/predict", predictBody("toy", map[string]int{"vadd": 1}), nil); w.Code != http.StatusOK {
		t.Fatalf("serving after rejected reload: %d: %s", w.Code, w.Body.String())
	}
	// A fresh name loads at generation 1 via Reload too.
	if res, err := s.Reload("alt", toyMapping()); err != nil || res.Generation != 1 {
		t.Fatalf("reload of fresh name = %+v, %v", res, err)
	}
}

// TestAdminReloadEndpoint covers the loopback-only admin surface: a
// network client gets 403 regardless of body, a loopback client
// reloads from a mapping file on disk.
func TestAdminReloadEndpoint(t *testing.T) {
	s := New(Config{Rmax: 5})
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mapping.json")
	data, err := json.Marshal(toyMapping())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(ReloadRequest{Mapping: "toy", Path: path})

	// httptest's default RemoteAddr is 192.0.2.1:1234 — a network peer.
	w := doReq(s, http.MethodPost, "/admin/reload", string(body), nil)
	if w.Code != http.StatusForbidden {
		t.Fatalf("network reload: status %d, want 403: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "serve: admin endpoint is loopback-only") {
		t.Fatalf("network reload body = %s", w.Body.String())
	}

	loopback := func(r *http.Request) { r.RemoteAddr = "127.0.0.1:55555" }
	w = doReq(s, http.MethodPost, "/admin/reload", string(body), loopback)
	if w.Code != http.StatusOK {
		t.Fatalf("loopback reload: status %d: %s", w.Code, w.Body.String())
	}
	var res ReloadResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Generation != 2 || !res.CacheRetained {
		t.Fatalf("reload result = %+v, want generation 2 with cache retained", res)
	}

	// Missing fields and unreadable paths are 400s.
	w = doReq(s, http.MethodPost, "/admin/reload", `{"mapping":"toy"}`, loopback)
	if w.Code != http.StatusBadRequest || !strings.Contains(w.Body.String(), "serve: reload needs mapping and path") {
		t.Fatalf("missing path: %d %s", w.Code, w.Body.String())
	}
	missing, _ := json.Marshal(ReloadRequest{Mapping: "toy", Path: filepath.Join(t.TempDir(), "nope.json")})
	w = doReq(s, http.MethodPost, "/admin/reload", string(missing), loopback)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("missing file: status %d, want 400: %s", w.Code, w.Body.String())
	}
}

// TestStatsRobustnessCounters spot-checks that the new counters are
// actually wired into the /v1/stats JSON (names are the soak's API).
func TestStatsRobustnessCounters(t *testing.T) {
	s := newTestServer(t, Config{Rmax: 5})
	w := do(t, s, http.MethodGet, "/v1/stats", "", nil)
	var raw map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"gate", "panics_recovered", "deadline_expiries", "canceled", "reloads"} {
		if _, ok := raw[field]; !ok {
			t.Fatalf("stats JSON missing %q: %s", field, w.Body.String())
		}
	}
	gate := raw["gate"].(map[string]any)
	for _, field := range []string{"shed", "queue_depth_high_water", "max_concurrent", "max_queue"} {
		if _, ok := gate[field]; !ok {
			t.Fatalf("gate stats missing %q", field)
		}
	}
	m := raw["mappings"].([]any)[0].(map[string]any)
	for _, field := range []string{"generation", "fingerprint", "breaker"} {
		if _, ok := m[field]; !ok {
			t.Fatalf("mapping stats missing %q", field)
		}
	}
}
