package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"zenport/internal/lp"
	"zenport/internal/portmodel"
)

// evalPool hands out per-goroutine evaluator sets for one mapping.
// Both portmodel.Compiled and lp.ThroughputEvaluator are documented
// single-goroutine — their scratch buffers, memo, and warm-start basis
// are unsynchronized by design, because the inference pipeline's hot
// loops own one evaluator each. A server handling concurrent requests
// must therefore never share one evaluator across handlers; this pool
// gives every in-flight request exclusive use of a compiled evaluator
// (and a lazily built LP cross-checker) and recycles them through a
// sync.Pool, so steady-state serving compiles nothing and allocates
// only what the runtime's pool shards need.
//
// Results are independent of which pooled evaluator answers a query:
// a Compiled is a pure function of its mapping (the memo only caches
// exact values), so pooling preserves the bit-identical-to-batch
// guarantee the load driver asserts.
type evalPool struct {
	m *portmodel.Mapping
	// memoLimit caps each evaluator's experiment memo; 0 keeps the
	// portmodel default. Every pooled evaluator gets its own memo, so
	// the worst-case memory is memoLimit × live evaluators — bounded
	// by the request concurrency.
	memoLimit int
	pool      sync.Pool // holds *evaluators
	compiles  atomic.Uint64
}

// evaluators is one exclusive evaluator set: the compiled combinatorial
// evaluator plus an LP cross-checker built on first use.
type evaluators struct {
	c  *portmodel.Compiled
	lp *lp.ThroughputEvaluator
}

// newEvalPool validates that the mapping compiles and returns a pool
// for it.
func newEvalPool(m *portmodel.Mapping, memoLimit int) (*evalPool, error) {
	p := &evalPool{m: m, memoLimit: memoLimit}
	ev, err := p.get(context.Background())
	if err != nil {
		return nil, err
	}
	p.put(ev)
	return p, nil
}

// get returns an exclusive evaluator set, compiling a fresh one when
// the pool is empty (startup, or after the GC trimmed it). A context
// that already ended returns its error instead: a request whose
// deadline expired while queued must not check out an evaluator it
// will never use.
func (p *evalPool) get(ctx context.Context) (*evaluators, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if v := p.pool.Get(); v != nil {
		return v.(*evaluators), nil
	}
	c, err := portmodel.CompileMapping(p.m, nil)
	if err != nil {
		return nil, err
	}
	if p.memoLimit != 0 {
		c.SetMemoLimit(p.memoLimit)
	}
	p.compiles.Add(1)
	return &evaluators{c: c}, nil
}

// put returns an evaluator set to the pool.
func (p *evalPool) put(ev *evaluators) { p.pool.Put(ev) }

// lpEval returns the evaluator set's LP cross-checker, building it on
// first use (most requests never ask for it).
func (ev *evaluators) lpEval(m *portmodel.Mapping) (*lp.ThroughputEvaluator, error) {
	if ev.lp == nil {
		e, err := lp.NewThroughputEvaluator(m)
		if err != nil {
			return nil, err
		}
		ev.lp = e
	}
	return ev.lp, nil
}
