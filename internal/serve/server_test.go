package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zenport/internal/portmodel"
)

// toyMapping is the primary test mapping: 6 ports, 4 schemes.
func toyMapping() *portmodel.Mapping {
	m := portmodel.NewMapping(6)
	m.Set("add", portmodel.Usage{{Ports: portmodel.MakePortSet(0, 1, 2), Count: 1}})
	m.Set("mul", portmodel.Usage{{Ports: portmodel.MakePortSet(3), Count: 1}})
	m.Set("store", portmodel.Usage{
		{Ports: portmodel.MakePortSet(4, 5), Count: 1},
		{Ports: portmodel.MakePortSet(5), Count: 1},
	})
	m.Set("shuf", portmodel.Usage{{Ports: portmodel.MakePortSet(1, 2), Count: 1}})
	return m
}

// toyMapping2 is a variant for diff tests: mul differs, shuf is gone,
// vadd is new.
func toyMapping2() *portmodel.Mapping {
	m := portmodel.NewMapping(6)
	m.Set("add", portmodel.Usage{{Ports: portmodel.MakePortSet(0, 1, 2), Count: 1}})
	m.Set("mul", portmodel.Usage{{Ports: portmodel.MakePortSet(3, 4), Count: 1}})
	m.Set("store", portmodel.Usage{
		{Ports: portmodel.MakePortSet(4, 5), Count: 1},
		{Ports: portmodel.MakePortSet(5), Count: 1},
	})
	m.Set("vadd", portmodel.Usage{{Ports: portmodel.MakePortSet(0, 3), Count: 1}})
	return m
}

// newTestServer builds a server with mappings "toy" and "toy2".
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("toy2", toyMapping2()); err != nil {
		t.Fatal(err)
	}
	return s
}

// do issues one request and decodes the JSON response into out.
func do(t *testing.T, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad response JSON %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

// TestHandlerErrorPaths is the satellite's table-driven sweep over the
// failure modes of the HTTP API, asserting both status codes and the
// stable error strings clients are allowed to match on.
func TestHandlerErrorPaths(t *testing.T) {
	s := newTestServer(t, Config{Rmax: 5, MaxBodyBytes: 512})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantErr    string
	}{
		{
			name:   "malformed JSON",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "kernel": `,
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: malformed JSON request body",
		},
		{
			name:   "unknown request field",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "kernle": "add"}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: malformed JSON request body",
		},
		{
			name:   "mapping not loaded",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "zen5", "kernel": "add"}`,
			wantStatus: http.StatusNotFound,
			wantErr:    `serve: mapping "zen5" not loaded (loaded: toy, toy2)`,
		},
		{
			name:   "missing mapping name",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"kernel": "add"}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: missing mapping name",
		},
		{
			name:   "unknown scheme with suggestion",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "kernel": "adq"}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: unknown scheme "adq" in mapping "toy", did you mean "add"?`,
		},
		{
			name:   "unknown scheme in experiment form",
			method: http.MethodPost, path: "/v1/explain",
			body:       `{"mapping": "toy", "experiment": {"mol": 2}}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: unknown scheme "mol" in mapping "toy", did you mean "mul"?`,
		},
		{
			name:   "empty experiment",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "experiment": {}}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: empty experiment",
		},
		{
			name:   "blank kernel",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "kernel": " ;  ; "}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: empty experiment",
		},
		{
			name:   "all-zero counts",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "experiment": {"add": 0, "mul": 0}}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: empty experiment",
		},
		{
			name:   "negative count",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "experiment": {"add": -3}}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    `serve: negative count -3 for scheme "add"`,
		},
		{
			name:   "kernel and experiment together",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "kernel": "add", "experiment": {"mul": 1}}`,
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: specify either kernel or experiment, not both",
		},
		{
			name:   "oversized request body",
			method: http.MethodPost, path: "/v1/predict",
			body:       `{"mapping": "toy", "kernel": "` + strings.Repeat("a", 600) + `"}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantErr:    "serve: request body exceeds 512 bytes",
		},
		{
			name:   "wrong method on predict",
			method: http.MethodGet, path: "/v1/predict",
			wantStatus: http.StatusMethodNotAllowed,
			wantErr:    `serve: method "GET" not allowed on /v1/predict`,
		},
		{
			name:   "wrong method on stats",
			method: http.MethodPost, path: "/v1/stats",
			body:       `{}`,
			wantStatus: http.StatusMethodNotAllowed,
			wantErr:    `serve: method "POST" not allowed on /v1/stats`,
		},
		{
			name:   "diff with unknown mapping",
			method: http.MethodGet, path: "/v1/diff?a=toy&b=zen5",
			wantStatus: http.StatusNotFound,
			wantErr:    `serve: mapping "zen5" not loaded (loaded: toy, toy2)`,
		},
		{
			name:   "diff with missing name",
			method: http.MethodGet, path: "/v1/diff?a=toy",
			wantStatus: http.StatusBadRequest,
			wantErr:    "serve: missing mapping name",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var env struct {
				Error string `json:"error"`
			}
			w := do(t, s, tc.method, tc.path, tc.body, &env)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", w.Code, tc.wantStatus, w.Body.String())
			}
			if env.Error != tc.wantErr {
				t.Fatalf("error = %q, want %q", env.Error, tc.wantErr)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
		})
	}
}

// TestPredictMatchesReference asserts served predictions are
// bit-identical to the reference evaluator over the same mapping —
// the property that makes the daemon a drop-in for batch zeneval.
func TestPredictMatchesReference(t *testing.T) {
	const rmax = 5.0
	s := newTestServer(t, Config{Rmax: rmax})
	m := toyMapping()
	exps := []portmodel.Experiment{
		{"add": 1},
		{"add": 7, "mul": 2},
		{"store": 3, "shuf": 1},
		{"add": 2, "mul": 2, "store": 2, "shuf": 2},
		{"add": 100},
	}
	for i, e := range exps {
		body, _ := json.Marshal(PredictRequest{Mapping: "toy", Experiment: e})
		var resp PredictResponse
		w := do(t, s, http.MethodPost, "/v1/predict", string(body), &resp)
		if w.Code != http.StatusOK {
			t.Fatalf("experiment %d: status %d: %s", i, w.Code, w.Body.String())
		}
		wantInv, err := m.InverseThroughputBounded(e, rmax)
		if err != nil {
			t.Fatal(err)
		}
		wantUnb, err := m.InverseThroughput(e)
		if err != nil {
			t.Fatal(err)
		}
		wantIPC, err := m.IPC(e, rmax)
		if err != nil {
			t.Fatal(err)
		}
		wantQ, wantV, err := m.BottleneckWitness(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(resp.InvThroughput) != math.Float64bits(wantInv) {
			t.Fatalf("experiment %d: inv %v != reference %v", i, resp.InvThroughput, wantInv)
		}
		if math.Float64bits(resp.InvThroughputUnbounded) != math.Float64bits(wantUnb) {
			t.Fatalf("experiment %d: unbounded inv %v != reference %v", i, resp.InvThroughputUnbounded, wantUnb)
		}
		if math.Float64bits(resp.IPC) != math.Float64bits(wantIPC) {
			t.Fatalf("experiment %d: ipc %v != reference %v", i, resp.IPC, wantIPC)
		}
		if resp.Bottleneck.Mask != uint16(wantQ) || math.Float64bits(resp.Bottleneck.Value) != math.Float64bits(wantV) {
			t.Fatalf("experiment %d: witness (%#x,%v) != reference (%#x,%v)",
				i, resp.Bottleneck.Mask, resp.Bottleneck.Value, uint16(wantQ), wantV)
		}
		if resp.Instructions != e.Len() {
			t.Fatalf("experiment %d: instructions %d != %d", i, resp.Instructions, e.Len())
		}
		if resp.Cached {
			t.Fatalf("experiment %d: first query reported cached", i)
		}
	}

	// Re-issue the first experiment: the LRU must answer, and the
	// cached answer must be the same bits.
	body, _ := json.Marshal(PredictRequest{Mapping: "toy", Experiment: exps[0]})
	var resp PredictResponse
	do(t, s, http.MethodPost, "/v1/predict", string(body), &resp)
	if !resp.Cached {
		t.Fatal("repeat query not served from cache")
	}
	wantInv, _ := m.InverseThroughputBounded(exps[0], rmax)
	if math.Float64bits(resp.InvThroughput) != math.Float64bits(wantInv) {
		t.Fatalf("cached inv %v != reference %v", resp.InvThroughput, wantInv)
	}
}

// TestPredictKernelForm asserts the CLI kernel syntax and the explicit
// experiment form hit the same cache entry (canonical-key identity).
func TestPredictKernelForm(t *testing.T) {
	s := newTestServer(t, Config{Rmax: 5})
	var a, b, c PredictResponse
	do(t, s, http.MethodPost, "/v1/predict", `{"mapping":"toy","kernel":"2*add; mul"}`, &a)
	do(t, s, http.MethodPost, "/v1/predict", `{"mapping":"toy","experiment":{"add":2,"mul":1}}`, &b)
	do(t, s, http.MethodPost, "/v1/predict", `{"mapping":"toy","kernel":"mul; add; add"}`, &c)
	if math.Float64bits(a.InvThroughput) != math.Float64bits(b.InvThroughput) {
		t.Fatalf("kernel form %v != experiment form %v", a.InvThroughput, b.InvThroughput)
	}
	if a.Cached || !b.Cached || !c.Cached {
		t.Fatalf("canonical-key sharing broken: cached flags %v %v %v", a.Cached, b.Cached, c.Cached)
	}
}

// TestPredictLPCheck asserts the simplex cross-check agrees with the
// combinatorial evaluator (they solve the same LP).
func TestPredictLPCheck(t *testing.T) {
	s := newTestServer(t, Config{Rmax: 5})
	var resp PredictResponse
	w := do(t, s, http.MethodPost, "/v1/predict",
		`{"mapping":"toy","experiment":{"add":3,"store":2},"lp_check":true}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.LPInvThroughput == nil {
		t.Fatal("lp_check requested but no lp_inv_throughput in response")
	}
	if diff := math.Abs(*resp.LPInvThroughput - resp.InvThroughputUnbounded); diff > 1e-6 {
		t.Fatalf("LP cross-check %v vs combinatorial %v (diff %v)",
			*resp.LPInvThroughput, resp.InvThroughputUnbounded, diff)
	}
}

// TestExplain asserts the explanation lists every scheme's port usage
// and a consistent bottleneck witness.
func TestExplain(t *testing.T) {
	s := newTestServer(t, Config{Rmax: 5})
	m := toyMapping()
	var resp ExplainResponse
	w := do(t, s, http.MethodPost, "/v1/explain", `{"mapping":"toy","experiment":{"store":4,"add":1}}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if resp.NumPorts != 6 {
		t.Fatalf("num_ports = %d, want 6", resp.NumPorts)
	}
	if len(resp.Schemes) != 2 {
		t.Fatalf("schemes = %d, want 2", len(resp.Schemes))
	}
	// Keys come back sorted (Experiment.Keys order).
	if resp.Schemes[0].Key != "add" || resp.Schemes[1].Key != "store" {
		t.Fatalf("scheme order %q, %q", resp.Schemes[0].Key, resp.Schemes[1].Key)
	}
	if resp.Schemes[1].Count != 4 || len(resp.Schemes[1].Uops) != 2 {
		t.Fatalf("store usage: count %d, %d uop kinds", resp.Schemes[1].Count, len(resp.Schemes[1].Uops))
	}
	wantQ, wantV, err := m.BottleneckWitness(portmodel.Experiment{"store": 4, "add": 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bottleneck.Mask != uint16(wantQ) || math.Float64bits(resp.Bottleneck.Value) != math.Float64bits(wantV) {
		t.Fatalf("witness (%#x,%v), want (%#x,%v)", resp.Bottleneck.Mask, resp.Bottleneck.Value, uint16(wantQ), wantV)
	}
	if resp.Explanation == "" || !strings.Contains(resp.Explanation, "bottleneck") {
		t.Fatalf("unhelpful explanation %q", resp.Explanation)
	}
}

// TestDiff asserts the structural diff between the two test mappings.
func TestDiff(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, method := range []string{http.MethodGet, http.MethodPost} {
		var resp DiffResponse
		var w *httptest.ResponseRecorder
		if method == http.MethodGet {
			w = do(t, s, method, "/v1/diff?a=toy&b=toy2", "", &resp)
		} else {
			w = do(t, s, method, "/v1/diff", `{"a":"toy","b":"toy2"}`, &resp)
		}
		if w.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", method, w.Code, w.Body.String())
		}
		if fmt.Sprint(resp.OnlyA) != "[shuf]" || fmt.Sprint(resp.OnlyB) != "[vadd]" {
			t.Fatalf("%s: only_a %v, only_b %v", method, resp.OnlyA, resp.OnlyB)
		}
		if len(resp.Differing) != 1 || resp.Differing[0].Key != "mul" {
			t.Fatalf("%s: differing %v", method, resp.Differing)
		}
		if resp.Identical != 2 {
			t.Fatalf("%s: identical = %d, want 2", method, resp.Identical)
		}
		if resp.Differing[0].APretty == resp.Differing[0].BPretty {
			t.Fatalf("%s: differing usages render identically: %q", method, resp.Differing[0].APretty)
		}
	}
}

// TestMappingsAndStats smoke-tests the introspection endpoints.
func TestMappingsAndStats(t *testing.T) {
	s := newTestServer(t, Config{Rmax: 5})
	var infos []MappingInfo
	do(t, s, http.MethodGet, "/v1/mappings", "", &infos)
	if len(infos) != 2 || infos[0].Name != "toy" || infos[0].NumPorts != 6 || infos[0].Schemes != 4 {
		t.Fatalf("mappings = %+v", infos)
	}

	// Two identical predictions: one evaluation, one cache hit.
	do(t, s, http.MethodPost, "/v1/predict", `{"mapping":"toy","kernel":"add"}`, nil)
	do(t, s, http.MethodPost, "/v1/predict", `{"mapping":"toy","kernel":"add"}`, nil)

	var st StatsResponse
	do(t, s, http.MethodGet, "/v1/stats", "", &st)
	if st.Requests == 0 {
		t.Fatal("stats: no requests counted")
	}
	var toy *MappingStats
	for i := range st.Mappings {
		if st.Mappings[i].Name == "toy" {
			toy = &st.Mappings[i]
		}
	}
	if toy == nil {
		t.Fatal("stats: mapping toy missing")
	}
	if toy.Evaluations != 1 || toy.Cache.Hits != 1 {
		t.Fatalf("stats: evaluations %d (want 1), cache hits %d (want 1)", toy.Evaluations, toy.Cache.Hits)
	}

	var health struct {
		Status   string   `json:"status"`
		Mappings []string `json:"mappings"`
	}
	do(t, s, http.MethodGet, "/healthz", "", &health)
	if health.Status != "ok" || len(health.Mappings) != 2 {
		t.Fatalf("healthz = %+v", health)
	}
}

// TestLoadErrors covers the startup validation paths.
func TestLoadErrors(t *testing.T) {
	s := New(Config{})
	if err := s.Load("", toyMapping()); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := s.Load("toy", toyMapping()); err != nil {
		t.Fatal(err)
	}
	if err := s.Load("toy", toyMapping()); err == nil {
		t.Fatal("duplicate name accepted")
	}
	bad := portmodel.NewMapping(4)
	bad.Usage["broken"] = portmodel.Usage{{Ports: portmodel.MakePortSet(7), Count: 1}} // port 7 out of range
	if err := s.Load("bad", bad); err == nil {
		t.Fatal("invalid mapping accepted")
	}
}

// TestParseKernel pins the CLI kernel syntax.
func TestParseKernel(t *testing.T) {
	e, err := ParseKernel("2*add; mul ;  3 * store")
	if err != nil {
		t.Fatal(err)
	}
	want := portmodel.Experiment{"add": 2, "mul": 1, "store": 3}
	if len(e) != len(want) {
		t.Fatalf("parsed %v, want %v", e, want)
	}
	for k, n := range want {
		if e[k] != n {
			t.Fatalf("parsed %v, want %v", e, want)
		}
	}
}
