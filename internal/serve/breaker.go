package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// breaker trips a mapping into cache-only degraded serving after K
// consecutive evaluator failures or panics: LRU hits keep being
// answered at full speed, but cache misses are refused with 503 +
// Retry-After instead of being fed to an evaluator that is evidently
// broken (a corrupted mapping, a poisoned evaluator state, a fault
// regime in a chaos soak). After a cooldown the breaker goes
// half-open and lets exactly one probe request through: a successful
// probe closes the breaker, a failed one re-opens it for another
// cooldown. Context cancellations and shed requests are *aborts*, not
// failures — a client hanging up or an overloaded gate says nothing
// about evaluator health and must not trip the breaker.
//
// The state machine (closed → open → half-open → closed/open) is the
// classic circuit breaker; the specific trip condition — consecutive
// failures only, reset on any success — is chosen because the
// evaluator is deterministic: one key that fails per-request (a bad
// experiment) produces interleaved successes and never trips it,
// while a broken evaluator fails everything and trips it in K
// requests.
type breaker struct {
	// threshold is K, the consecutive-failure trip count; <= 0
	// disables the breaker entirely (it never opens).
	threshold int
	// cooldown is how long the breaker stays open before probing.
	cooldown time.Duration
	// now is the clock, swappable in tests.
	now func() time.Time

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool

	trips    atomic.Uint64
	rejected atomic.Uint64
}

// breakerState is the circuit state.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state for /v1/stats.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// newBreaker returns a closed breaker. A nil clock uses time.Now.
func newBreaker(threshold int, cooldown time.Duration, clock func() time.Time) *breaker {
	if clock == nil {
		clock = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: clock}
}

// allow decides whether an evaluation may proceed. probe reports that
// the caller is the half-open probe and must report its outcome; on
// ok == false the mapping is degraded and the caller must answer 503
// without evaluating.
func (b *breaker) allow() (probe, ok bool) {
	if b.threshold <= 0 {
		return false, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return false, true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejected.Add(1)
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			b.rejected.Add(1)
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// success reports a completed evaluation: the failure streak resets,
// and a successful half-open probe closes the breaker.
func (b *breaker) success(probe bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if probe || b.state == breakerHalfOpen {
		b.state = breakerClosed
		b.probing = false
	}
}

// failure reports an evaluator failure or panic. A failed half-open
// probe re-opens immediately; in the closed state the K-th
// consecutive failure trips the breaker.
func (b *breaker) failure(probe bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if probe || b.state == breakerHalfOpen {
		b.open()
		return
	}
	if b.state == breakerClosed && b.consecutive >= b.threshold {
		b.open()
	}
}

// abort reports an evaluation that ended for reasons unrelated to
// evaluator health (context canceled or deadline exceeded, request
// shed by the gate): the streak is untouched, and a probe token is
// returned so another request may probe.
func (b *breaker) abort(probe bool) {
	if b.threshold <= 0 || !probe {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// open transitions to the open state. Callers hold b.mu.
func (b *breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.trips.Add(1)
}

// BreakerStats is one mapping's breaker snapshot for /v1/stats.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               uint64 `json:"trips"`
	Rejected            uint64 `json:"rejected"`
}

// stats snapshots the breaker.
func (b *breaker) stats() BreakerStats {
	b.mu.Lock()
	state, consecutive := b.state, b.consecutive
	b.mu.Unlock()
	return BreakerStats{
		State:               state.String(),
		ConsecutiveFailures: consecutive,
		Trips:               b.trips.Load(),
		Rejected:            b.rejected.Load(),
	}
}
