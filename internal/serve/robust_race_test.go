package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zenport/internal/portmodel"
)

// TestGateFairnessUnderOverloadRace hammers a deliberately tiny gate
// (2 slots, 2 queue) from 64 goroutines with stalling evaluations.
// Every request must resolve to exactly 200 or 429 — never a hang,
// never a 5xx — every 200 must be bit-identical to the reference
// evaluator, the queue-depth high-water must respect the bound, and
// after the storm no slot may be leaked. Run with -race.
func TestGateFairnessUnderOverloadRace(t *testing.T) {
	const rmax = 5.0
	m := raceMapping(t)
	s := New(Config{
		Rmax:          rmax,
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueTimeout:  2 * time.Millisecond,
		EvalHook: func(ctx context.Context, key string) error {
			select { // a short stall so the gate actually saturates
			case <-time.After(200 * time.Microsecond):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err := s.Load("zen", m); err != nil {
		t.Fatal(err)
	}
	keys := m.Keys()

	const distinct = 40
	exps := make([]portmodel.Experiment, distinct)
	want := make([]float64, distinct)
	rng := rand.New(rand.NewSource(11))
	for i := range exps {
		e := portmodel.Experiment{keys[i%len(keys)]: i + 1}
		e[keys[rng.Intn(len(keys))]] += 1 + rng.Intn(3)
		exps[i] = e
		var err error
		if want[i], err = m.InverseThroughputBounded(e, rmax); err != nil {
			t.Fatal(err)
		}
	}

	const goroutines = 64
	const iters = 30
	var served, shed atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < iters; i++ {
				idx := rng.Intn(distinct)
				body, _ := json.Marshal(PredictRequest{Mapping: "zen", Experiment: exps[idx]})
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				switch w.Code {
				case http.StatusOK:
					served.Add(1)
					var resp PredictResponse
					if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
						errs <- err
						return
					}
					if math.Float64bits(resp.InvThroughput) != math.Float64bits(want[idx]) {
						errs <- fmt.Errorf("goroutine %d: experiment %d: served %v != reference %v",
							g, idx, resp.InvThroughput, want[idx])
						return
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
					if w.Header().Get("Retry-After") == "" {
						errs <- errors.New("shed response missing Retry-After")
						return
					}
				default:
					errs <- fmt.Errorf("goroutine %d: unexpected status %d: %s", g, w.Code, w.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if served.Load() == 0 {
		t.Fatal("overload shed everything: gate admitted no work")
	}
	gs := s.gate.stats()
	if gs.QueueDepth != 0 {
		t.Fatalf("queue depth = %d after drain, want 0", gs.QueueDepth)
	}
	if gs.QueueDepthHighWater > int64(s.cfg.MaxQueue) {
		t.Fatalf("queue depth high-water %d exceeds bound %d", gs.QueueDepthHighWater, s.cfg.MaxQueue)
	}
	// No leaked slots: with the storm over, a cold key must be admitted
	// on the fast path and answer 200.
	body, _ := json.Marshal(PredictRequest{Mapping: "zen", Experiment: portmodel.Experiment{keys[0]: 1000}})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("post-storm request: status %d: %s (leaked slot?)", w.Code, w.Body.String())
	}
}

// TestReloadDuringTrafficRace alternates reloads between two mappings
// that share keys but differ in content while 64 goroutines hammer
// predictions. The atomic-swap contract: every 200 is bit-identical to
// one of the two generations' references — a half-swapped handle would
// produce a value matching neither. Run with -race.
func TestReloadDuringTrafficRace(t *testing.T) {
	const rmax = 5.0
	mapA := raceMapping(t)
	keys := mapA.Keys()
	// mapB: same keys, every usage gets one extra µop on port 0, so
	// every prediction differs from mapA's.
	mapB := portmodel.NewMapping(mapA.NumPorts)
	for _, key := range keys {
		u, _ := mapA.Get(key)
		u = append(u.Clone(), portmodel.Uop{Ports: portmodel.MakePortSet(0), Count: 2})
		mapB.Set(key, u)
	}

	const distinct = 24
	exps := make([]portmodel.Experiment, distinct)
	wantA := make([]float64, distinct)
	wantB := make([]float64, distinct)
	for i := range exps {
		e := portmodel.Experiment{keys[i%len(keys)]: i + 1, keys[(i*7)%len(keys)]: 2}
		exps[i] = e
		var err error
		if wantA[i], err = mapA.InverseThroughputBounded(e, rmax); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = mapB.InverseThroughputBounded(e, rmax); err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(wantA[i]) == math.Float64bits(wantB[i]) {
			t.Fatalf("experiment %d: generations indistinguishable (%v)", i, wantA[i])
		}
	}

	s := New(Config{Rmax: rmax})
	if err := s.Load("zen", mapA); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	const goroutines = 64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				idx := rng.Intn(distinct)
				body, _ := json.Marshal(PredictRequest{Mapping: "zen", Experiment: exps[idx]})
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errs <- fmt.Errorf("goroutine %d: status %d: %s", g, w.Code, w.Body.String())
					return
				}
				var resp PredictResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					errs <- err
					return
				}
				got := math.Float64bits(resp.InvThroughput)
				if got != math.Float64bits(wantA[idx]) && got != math.Float64bits(wantB[idx]) {
					errs <- fmt.Errorf("goroutine %d: experiment %d: served %v matches neither generation (%v / %v)",
						g, idx, resp.InvThroughput, wantA[idx], wantB[idx])
					return
				}
			}
		}(g)
	}

	// 20 mid-traffic reloads alternating generations.
	for i := 0; i < 20; i++ {
		next := mapA
		if i%2 == 0 {
			next = mapB
		}
		if _, err := s.Reload("zen", next); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if gen := s.ReloadGeneration("zen"); gen != 21 {
		t.Fatalf("generation = %d, want 21 after 20 reloads", gen)
	}
}

// TestBreakerTransitionsRace flips an evaluator between broken and
// healthy while 64 goroutines hammer the mapping: the breaker must
// trip (degraded 503s appear), must never deadlock, and must recover
// to serving 200s once the evaluator heals. Run with -race.
func TestBreakerTransitionsRace(t *testing.T) {
	const rmax = 5.0
	m := raceMapping(t)
	var failing atomic.Bool
	s := New(Config{
		Rmax:             rmax,
		CacheSize:        8, // tiny LRU so degraded misses actually happen
		BreakerThreshold: 4,
		BreakerCooldown:  5 * time.Millisecond,
		EvalHook: func(ctx context.Context, key string) error {
			if failing.Load() {
				return errors.New("evaluator broken")
			}
			return nil
		},
	})
	if err := s.Load("zen", m); err != nil {
		t.Fatal(err)
	}
	keys := m.Keys()

	const goroutines = 64
	var wg sync.WaitGroup
	var oks, degraded, failures atomic.Uint64
	stop := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := portmodel.Experiment{keys[rng.Intn(len(keys))]: 1 + rng.Intn(200)}
				body, _ := json.Marshal(PredictRequest{Mapping: "zen", Experiment: e})
				req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				switch w.Code {
				case http.StatusOK:
					oks.Add(1)
				case http.StatusServiceUnavailable:
					degraded.Add(1)
				case http.StatusInternalServerError:
					failures.Add(1)
				default:
					// 429s impossible: the default gate is far wider than
					// this load. Anything else is a bug.
					panic(fmt.Sprintf("unexpected status %d: %s", w.Code, w.Body.String()))
				}
			}
		}(g)
	}

	// Break, let it trip and serve degraded, then heal and let the
	// half-open probe recover it.
	time.Sleep(10 * time.Millisecond)
	failing.Store(true)
	time.Sleep(30 * time.Millisecond)
	failing.Store(false)
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()

	if oks.Load() == 0 || failures.Load() == 0 {
		t.Fatalf("storm not exercised: %d oks, %d failures, %d degraded",
			oks.Load(), degraded.Load(), failures.Load())
	}
	st := s.state().mappings["zen"].breaker.stats()
	if st.Trips == 0 {
		t.Fatalf("breaker never tripped: %+v (%d failures)", st, failures.Load())
	}
	// Healed: a fresh request must succeed, possibly after the probe.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e := portmodel.Experiment{keys[0]: 999}
		body, _ := json.Marshal(PredictRequest{Mapping: "zen", Experiment: e})
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body)))
		if w.Code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: status %d: %s", w.Code, w.Body.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
