package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"net/http"
	"os"
	"sort"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// Hot mapping reload: a long-running daemon must pick up a re-merged
// campaign mapping (zeninfer -merge after a re-inference refresh)
// without a restart and without ever serving from a half-swapped
// state. The protocol is validate-then-atomic-swap:
//
//  1. the new handle — mapping, evaluator pool, breaker — is built
//     completely off to the side; the serving state is untouched;
//  2. the new handle is smoke-checked: a pinned probe experiment is
//     evaluated on a pooled evaluator and compared bit-identical to
//     the reference evaluator, under panic isolation, so a mapping
//     that compiles but cannot answer is rejected before the swap;
//  3. the server's immutable state pointer is swapped atomically:
//     every request resolves its handle exactly once, so it runs
//     entirely on the old or entirely on the new generation — never
//     a mix — and in-flight requests on the old handle drain safely
//     (handles are immutable and the old pool stays alive until its
//     borrowers return);
//  4. the prediction LRU is retained across fingerprint-identical
//     reloads (same mapping bits → same predictions, so the hot set
//     stays warm) and dropped otherwise (a changed mapping makes
//     every cached prediction stale).
//
// Reload is exposed two ways: Server.Reload for embedders, and the
// loopback-only POST /admin/reload endpoint + SIGHUP in cmd/zenportd.

// ReloadResult reports a completed reload.
type ReloadResult struct {
	// Mapping is the reloaded mapping's name.
	Mapping string `json:"mapping"`
	// Generation counts loads of this name, starting at 1; every
	// successful reload bumps it.
	Generation uint64 `json:"generation"`
	// Fingerprint identifies the mapping content (FNV-64a over the
	// normalized usage table).
	Fingerprint string `json:"fingerprint"`
	// CacheRetained reports that the previous generation's prediction
	// LRU was kept (fingerprint-identical reload).
	CacheRetained bool `json:"cache_retained"`
	// Schemes is the number of schemes in the new mapping.
	Schemes int `json:"schemes"`
}

// Reload validates a new mapping for name, smoke-checks it, and
// atomically swaps it into serving. On error the previous generation
// keeps serving untouched. A name not yet loaded is loaded fresh at
// generation 1. Reload is safe to call concurrently with serving and
// with other Load/Reload calls.
func (s *Server) Reload(name string, m *portmodel.Mapping) (*ReloadResult, error) {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	old := s.state().mappings[name]
	gen := uint64(1)
	if old != nil {
		gen = old.generation + 1
	}
	h, err := s.buildHandle(name, m, gen, old)
	if err != nil {
		return nil, err
	}
	s.install(h)
	s.reloads.Add(1)
	return &ReloadResult{
		Mapping:       name,
		Generation:    h.generation,
		Fingerprint:   h.fingerprint,
		CacheRetained: old != nil && old.cache == h.cache,
		Schemes:       len(h.keys),
	}, nil
}

// buildHandle constructs and smoke-checks a handle without touching
// the serving state. Callers hold loadMu.
func (s *Server) buildHandle(name string, m *portmodel.Mapping, gen uint64, old *handle) (*handle, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty mapping name")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("serve: mapping %q: %w", name, err)
	}
	pool, err := newEvalPool(m, s.cfg.MemoLimit)
	if err != nil {
		return nil, fmt.Errorf("serve: mapping %q: %w", name, err)
	}
	h := &handle{
		s:           s,
		name:        name,
		m:           m,
		fingerprint: mappingFingerprint(m),
		generation:  gen,
		keys:        m.Keys(),
		pool:        pool,
		cache:       newLRU[prediction](s.cfg.CacheSize),
		flight:      engine.NewFlight[prediction](nil),
		breaker:     newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown, nil),
	}
	if old != nil && old.fingerprint == h.fingerprint {
		// Identical bits: the previous generation's predictions are
		// still exact, so the hot set stays warm across the reload.
		h.cache = old.cache
	}
	if err := h.smokeCheck(s.cfg.Rmax); err != nil {
		return nil, fmt.Errorf("serve: mapping %q failed smoke check: %w", name, err)
	}
	return h, nil
}

// install publishes a handle into a fresh immutable state. Callers
// hold loadMu; readers observe the old or the new state atomically.
func (s *Server) install(h *handle) {
	cur := s.state()
	next := &svcState{mappings: make(map[string]*handle, len(cur.mappings)+1)}
	for name, old := range cur.mappings {
		next.mappings[name] = old
	}
	next.mappings[h.name] = h
	next.names = make([]string, 0, len(next.mappings))
	for name := range next.mappings {
		next.names = append(next.names, name)
	}
	sort.Strings(next.names)
	s.st.Store(next)
}

// smokeCheck evaluates the pinned probe experiment — one instance of
// the mapping's first scheme key — on a pooled evaluator under panic
// isolation and demands the result bit-identical to the reference
// evaluator and finite. It is the gate between "compiles" and
// "serves": a handle that cannot answer the probe never reaches the
// state swap.
func (h *handle) smokeCheck(rmax float64) (err error) {
	if len(h.keys) == 0 {
		return nil
	}
	probe := portmodel.Experiment{h.keys[0]: 1}
	ev, err := h.pool.get(context.Background())
	if err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("probe %q panicked: %v", h.keys[0], r)
			return // the evaluator is suspect; drop it instead of pooling
		}
		h.pool.put(ev)
	}()
	got, err := ev.c.InverseThroughputBounded(probe, rmax)
	if err != nil {
		return fmt.Errorf("probe %q: %w", h.keys[0], err)
	}
	want, err := h.m.InverseThroughputBounded(probe, rmax)
	if err != nil {
		return fmt.Errorf("probe %q (reference): %w", h.keys[0], err)
	}
	if math.IsNaN(got) || math.IsInf(got, 0) || got <= 0 {
		return fmt.Errorf("probe %q: non-finite prediction %v", h.keys[0], got)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		return fmt.Errorf("probe %q: compiled %v != reference %v", h.keys[0], got, want)
	}
	return nil
}

// mappingFingerprint hashes the mapping content — port count and the
// normalized usage table in sorted key order — so two mappings with
// identical serving behavior share a fingerprint regardless of µop
// declaration order.
func mappingFingerprint(m *portmodel.Mapping) string {
	fh := fnv.New64a()
	fmt.Fprintf(fh, "ports=%d", m.NumPorts)
	for _, key := range m.Keys() {
		u, _ := m.Get(key)
		fmt.Fprintf(fh, "|%s:", key)
		for _, x := range u.Clone().Normalize() {
			fmt.Fprintf(fh, "%x*%d,", uint16(x.Ports), x.Count)
		}
	}
	return fmt.Sprintf("%016x", fh.Sum64())
}

// ReloadRequest is the body of POST /admin/reload.
type ReloadRequest struct {
	// Mapping is the name to (re)load.
	Mapping string `json:"mapping"`
	// Path is the mapping JSON file to load it from.
	Path string `json:"path"`
}

// handleAdminReload is the loopback-only reload endpoint. It exists
// for operators without signal access to the daemon (containers,
// supervisors); network clients get 403 regardless of body.
func (s *Server) handleAdminReload(w http.ResponseWriter, r *http.Request) {
	if err := requireMethod(r, http.MethodPost); err != nil {
		s.writeError(w, err)
		return
	}
	if !isLoopback(r.RemoteAddr) {
		s.writeError(w, errf(http.StatusForbidden, "serve: admin endpoint is loopback-only"))
		return
	}
	var req ReloadRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Mapping == "" || req.Path == "" {
		s.writeError(w, errf(http.StatusBadRequest, "serve: reload needs mapping and path"))
		return
	}
	data, err := os.ReadFile(req.Path)
	if err != nil {
		s.writeError(w, errf(http.StatusBadRequest, "serve: reload: %v", err))
		return
	}
	var m portmodel.Mapping
	if err := json.Unmarshal(data, &m); err != nil {
		s.writeError(w, errf(http.StatusBadRequest, "serve: reload: %s: %v", req.Path, err))
		return
	}
	res, err := s.Reload(req.Mapping, &m)
	if err != nil {
		s.writeError(w, errf(http.StatusBadRequest, "serve: reload rejected: %v", err))
		return
	}
	if s.cfg.Log != nil {
		s.cfg.Log("serve: reloaded mapping %q: generation %d, fingerprint %s, cache retained %v",
			res.Mapping, res.Generation, res.Fingerprint, res.CacheRetained)
	}
	s.writeJSON(w, res)
}

// isLoopback reports whether the remote address is a loopback IP.
func isLoopback(remoteAddr string) bool {
	host, _, err := net.SplitHostPort(remoteAddr)
	if err != nil {
		host = remoteAddr
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// ReloadGeneration reports the serving generation of a mapping, for
// load drivers that assert a reload landed (0 if not loaded).
func (s *Server) ReloadGeneration(name string) uint64 {
	if h := s.state().mappings[name]; h != nil {
		return h.generation
	}
	return 0
}
