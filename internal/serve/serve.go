// Package serve is the port-mapping-as-a-service layer: an HTTP/JSON
// front end over inferred port mappings, turning the batch research
// pipeline's output (zeninfer's mapping.json) into an analysis
// service in the spirit of pmtestbench's analyze-bb.py and the
// uops.info lookup service. It answers
//
//   - basic-block / experiment throughput predictions (POST
//     /v1/predict), bit-identical to the batch evaluator cmd/zeneval
//     uses (both run portmodel.Compiled over the same mapping);
//   - per-scheme port-usage explanations with a bottleneck-set
//     witness (POST /v1/explain), the paper's explainability artifact;
//   - structural diffs between two loaded mappings (GET/POST
//     /v1/diff), e.g. two inference runs or two machine generations.
//
// The serving hot path composes three layers, each reused from the
// batch stack rather than reimplemented:
//
//   - an evaluator pool (evalPool): portmodel.Compiled and
//     lp.ThroughputEvaluator are single-goroutine by contract, so
//     every in-flight request borrows an exclusive evaluator from a
//     sync.Pool — no locks on the evaluation itself, no shared
//     scratch state, race-detector clean at any concurrency;
//   - in-flight deduplication (engine.Flight): concurrent identical
//     requests — same canonical experiment key, the engine's cache
//     identity — evaluate once and share the result;
//   - a bounded per-mapping LRU over canonical keys, so hot blocks
//     are answered without touching the pool at all.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
)

// Defaults for the Config zero value.
const (
	// DefaultCacheSize is the per-mapping prediction LRU capacity.
	DefaultCacheSize = 4096
	// DefaultMaxBodyBytes caps a request body at 1 MiB.
	DefaultMaxBodyBytes = 1 << 20
)

// Config tunes a Server. The zero value serves with the defaults
// above, no frontend bound, and no logging.
type Config struct {
	// Rmax is the frontend/retire bottleneck in instructions per cycle
	// applied to bounded predictions and IPC (0 = no bound). It must
	// match the batch evaluator's setting for predictions to be
	// byte-identical (the Zen+ machine uses 5).
	Rmax float64
	// CacheSize bounds each mapping's prediction LRU (0 = default).
	CacheSize int
	// MaxBodyBytes bounds request bodies (0 = default 1 MiB).
	MaxBodyBytes int64
	// MemoLimit caps each pooled evaluator's experiment memo
	// (0 = portmodel.DefaultMemoLimit, negative = unbounded).
	MemoLimit int
	// Log, if non-nil, receives one-line request notices.
	Log func(format string, args ...any)
}

// Server is the HTTP handler serving one or more loaded mappings.
// Load every mapping before serving; handlers are safe for concurrent
// use afterwards.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	start    time.Time
	mappings map[string]*handle
	names    []string // sorted mapping names

	requests atomic.Uint64
	errs     atomic.Uint64
}

// handle is one loaded mapping with its serving machinery.
type handle struct {
	name   string
	m      *portmodel.Mapping
	keys   []string // sorted scheme keys, the suggestion universe
	pool   *evalPool
	cache  *lruCache[prediction]
	flight *engine.Flight[prediction]

	evals     atomic.Uint64 // pool evaluations (cache+flight misses)
	coalesced atomic.Uint64 // requests that joined an in-flight twin
}

// prediction is the cached evaluation of one canonical experiment
// key. All fields are pure functions of (mapping, experiment, rmax),
// so cache and singleflight sharing cannot change any served value.
type prediction struct {
	inv      float64 // tp^-1, unbounded (pure port model)
	invB     float64 // max(tp^-1, total/rmax)
	ipc      float64 // portmodel.Compiled.IPC(e, rmax)
	witness  portmodel.PortSet
	witnessV float64
	total    int
}

// New returns a server with no mappings loaded.
func New(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{cfg: cfg, start: time.Now(), mappings: make(map[string]*handle)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/mappings", s.handleMappings)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/diff", s.handleDiff)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// Load registers a mapping under a name. It validates that the
// mapping compiles and is not safe to call concurrently with serving:
// load everything at startup, as cmd/zenportd does.
func (s *Server) Load(name string, m *portmodel.Mapping) error {
	if name == "" {
		return fmt.Errorf("serve: empty mapping name")
	}
	if _, dup := s.mappings[name]; dup {
		return fmt.Errorf("serve: mapping %q already loaded", name)
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("serve: mapping %q: %w", name, err)
	}
	pool, err := newEvalPool(m, s.cfg.MemoLimit)
	if err != nil {
		return fmt.Errorf("serve: mapping %q: %w", name, err)
	}
	s.mappings[name] = &handle{
		name:   name,
		m:      m,
		keys:   m.Keys(),
		pool:   pool,
		cache:  newLRU[prediction](s.cfg.CacheSize),
		flight: engine.NewFlight[prediction](nil),
	}
	s.names = append(s.names, name)
	sort.Strings(s.names)
	return nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// httpError is an error with a fixed HTTP status and a stable,
// test-asserted message.
type httpError struct {
	status int
	msg    string
}

// Error implements error.
func (e *httpError) Error() string { return e.msg }

// errf builds an httpError.
func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// writeError emits the JSON error envelope.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.errs.Add(1)
	he := &httpError{status: http.StatusInternalServerError, msg: "serve: internal error: " + err.Error()}
	var known *httpError
	if errors.As(err, &known) {
		he = known
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		he = &httpError{status: http.StatusServiceUnavailable, msg: "serve: request canceled"}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": he.msg})
	if s.cfg.Log != nil {
		s.cfg.Log("serve: error %d: %s", he.status, he.msg)
	}
}

// writeJSON emits a 200 JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// requireMethod rejects other HTTP methods with a stable message.
func requireMethod(r *http.Request, methods ...string) error {
	for _, m := range methods {
		if r.Method == m {
			return nil
		}
	}
	return errf(http.StatusMethodNotAllowed, "serve: method %q not allowed on %s", r.Method, r.URL.Path)
}

// decodeJSON reads the request body into v under the configured size
// cap, mapping decode failures to the stable error strings the
// handler tests assert.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return errf(http.StatusRequestEntityTooLarge, "serve: request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return errf(http.StatusBadRequest, "serve: malformed JSON request body")
	}
	return nil
}

// lookup resolves a mapping name to its handle.
func (s *Server) lookup(name string) (*handle, error) {
	if name == "" {
		return nil, errf(http.StatusBadRequest, "serve: missing mapping name")
	}
	h, ok := s.mappings[name]
	if !ok {
		return nil, errf(http.StatusNotFound, "serve: mapping %q not loaded (loaded: %s)",
			name, strings.Join(s.names, ", "))
	}
	return h, nil
}

// ParseKernel parses the CLI kernel syntax "N*key; M*key" (the format
// zenmap -predict uses) into an experiment. Scheme keys contain
// commas, so terms are ';'-separated.
func ParseKernel(sr string) (portmodel.Experiment, error) {
	e := portmodel.Experiment{}
	for _, t := range strings.Split(sr, ";") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		count := 1
		if i := strings.Index(t, "*"); i > 0 {
			if n, err := strconv.Atoi(strings.TrimSpace(t[:i])); err == nil {
				count = n
				t = strings.TrimSpace(t[i+1:])
			}
		}
		e[t] += count
	}
	return e, nil
}

// experimentOf resolves the kernel-or-experiment pair of a request
// body into a validated experiment over the handle's mapping.
func (h *handle) experimentOf(kernel string, exp map[string]int) (portmodel.Experiment, error) {
	if kernel != "" && len(exp) > 0 {
		return nil, errf(http.StatusBadRequest, "serve: specify either kernel or experiment, not both")
	}
	var e portmodel.Experiment
	if kernel != "" {
		e, _ = ParseKernel(kernel)
	} else {
		e = portmodel.Experiment(exp)
	}
	total := 0
	for key, n := range e {
		if n < 0 {
			return nil, errf(http.StatusBadRequest, "serve: negative count %d for scheme %q", n, key)
		}
		if n == 0 {
			continue
		}
		if _, ok := h.m.Usage[key]; !ok {
			if sugg := zen.SuggestKeys(h.keys, key, 3); len(sugg) > 0 {
				return nil, errf(http.StatusBadRequest, "serve: unknown scheme %q in mapping %q, did you mean %s?",
					key, h.name, strings.Join(sugg, ", "))
			}
			return nil, errf(http.StatusBadRequest, "serve: unknown scheme %q in mapping %q", key, h.name)
		}
		total += n
	}
	if total == 0 {
		return nil, errf(http.StatusBadRequest, "serve: empty experiment")
	}
	return e, nil
}

// predict resolves an experiment through LRU, singleflight, and the
// evaluator pool. The canonical key — engine.CanonicalKey, the same
// identity the measurement cache uses — collapses permutations of the
// same multiset, so "add;mul" and "mul;add" share one cache entry and
// concurrent identical queries evaluate once.
func (h *handle) predict(r *http.Request, e portmodel.Experiment, rmax float64) (prediction, engine.FlightOutcome, error) {
	key := engine.CanonicalKey(e)
	p, out, err := h.flight.Do(r.Context(), key,
		func() (prediction, bool) { return h.cache.get(key) },
		func() (prediction, error) { return h.evaluate(e, rmax) },
		func(p prediction) { h.cache.add(key, p) },
		nil)
	h.coalesced.Add(uint64(out.Joined))
	return p, out, err
}

// evaluate computes a prediction on an exclusive pooled evaluator.
func (h *handle) evaluate(e portmodel.Experiment, rmax float64) (prediction, error) {
	ev, err := h.pool.get()
	if err != nil {
		return prediction{}, err
	}
	defer h.pool.put(ev)
	h.evals.Add(1)
	q, inv, err := ev.c.BottleneckWitness(e)
	if err != nil {
		return prediction{}, err
	}
	invB, err := ev.c.InverseThroughputBounded(e, rmax)
	if err != nil {
		return prediction{}, err
	}
	ipc, err := ev.c.IPC(e, rmax)
	if err != nil {
		return prediction{}, err
	}
	return prediction{inv: inv, invB: invB, ipc: ipc, witness: q, witnessV: inv, total: e.Len()}, nil
}

// lpCrossCheck solves the throughput LP for the experiment on a
// pooled evaluator — an independent simplex-based answer to the same
// LP the combinatorial evaluator solves exactly.
func (h *handle) lpCrossCheck(e portmodel.Experiment) (float64, error) {
	ev, err := h.pool.get()
	if err != nil {
		return 0, err
	}
	defer h.pool.put(ev)
	lpe, err := ev.lpEval(h.m)
	if err != nil {
		return 0, err
	}
	return lpe.InverseThroughput(e)
}

// ---- wire types ----

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	// Mapping names a loaded mapping.
	Mapping string `json:"mapping"`
	// Kernel is the CLI syntax "2*add GPR[32], GPR[32]; vpor XMM, XMM, XMM".
	Kernel string `json:"kernel,omitempty"`
	// Experiment is the explicit multiset form; exactly one of Kernel
	// and Experiment must be set.
	Experiment map[string]int `json:"experiment,omitempty"`
	// LPCheck additionally solves the Section 2.2 LP with the simplex
	// solver and reports its value (a consistency cross-check).
	LPCheck bool `json:"lp_check,omitempty"`
}

// Bottleneck is a bottleneck-set witness: the port set Q maximizing
// mass(Q)/|Q|, rendered both as a port list and a bitmask.
type Bottleneck struct {
	Ports []int   `json:"ports"`
	Mask  uint16  `json:"mask"`
	Width int     `json:"width"`
	Value float64 `json:"value"`
}

// PredictResponse is the answer of POST /v1/predict.
type PredictResponse struct {
	Mapping      string         `json:"mapping"`
	Experiment   map[string]int `json:"experiment"`
	Instructions int            `json:"instructions"`
	// InvThroughput is max(tp^-1, instructions/rmax) in cycles per
	// iteration — the value zenmap -predict prints.
	InvThroughput float64 `json:"inv_throughput"`
	// InvThroughputUnbounded is the pure port-model tp^-1.
	InvThroughputUnbounded float64 `json:"inv_throughput_unbounded"`
	// IPC is instructions per cycle under the rmax cap — the value
	// cmd/zeneval's predictors report, bit-identical.
	IPC        float64    `json:"ipc"`
	Rmax       float64    `json:"rmax"`
	Bottleneck Bottleneck `json:"bottleneck"`
	// Cached reports an LRU hit; Coalesced that the request shared a
	// concurrent identical evaluation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// LPInvThroughput is the simplex cross-check (with lp_check).
	LPInvThroughput *float64 `json:"lp_inv_throughput,omitempty"`
}

// UopJSON is the wire form of one µop, matching mapping.json.
type UopJSON struct {
	Ports []int `json:"ports"`
	Count int   `json:"count"`
}

// SchemeUsage explains one scheme of an experiment.
type SchemeUsage struct {
	Key    string    `json:"key"`
	Count  int       `json:"count"`
	Uops   []UopJSON `json:"uops"`
	Pretty string    `json:"pretty"`
}

// ExplainRequest is the body of POST /v1/explain.
type ExplainRequest struct {
	Mapping    string         `json:"mapping"`
	Kernel     string         `json:"kernel,omitempty"`
	Experiment map[string]int `json:"experiment,omitempty"`
}

// ExplainResponse is the answer of POST /v1/explain: the per-scheme
// port usage of the experiment plus the bottleneck-set witness that
// proves the throughput bound — the paper's explainability artifact.
type ExplainResponse struct {
	Mapping       string         `json:"mapping"`
	Experiment    map[string]int `json:"experiment"`
	Instructions  int            `json:"instructions"`
	NumPorts      int            `json:"num_ports"`
	InvThroughput float64        `json:"inv_throughput"`
	Bottleneck    Bottleneck     `json:"bottleneck"`
	Schemes       []SchemeUsage  `json:"schemes"`
	Explanation   string         `json:"explanation"`
}

// DiffEntry is one scheme whose usage differs between two mappings.
type DiffEntry struct {
	Key     string    `json:"key"`
	A       []UopJSON `json:"a"`
	B       []UopJSON `json:"b"`
	APretty string    `json:"a_pretty"`
	BPretty string    `json:"b_pretty"`
}

// DiffResponse is the answer of /v1/diff.
type DiffResponse struct {
	A         string      `json:"a"`
	B         string      `json:"b"`
	NumPortsA int         `json:"num_ports_a"`
	NumPortsB int         `json:"num_ports_b"`
	SchemesA  int         `json:"schemes_a"`
	SchemesB  int         `json:"schemes_b"`
	OnlyA     []string    `json:"only_a"`
	OnlyB     []string    `json:"only_b"`
	Differing []DiffEntry `json:"differing"`
	Identical int         `json:"identical"`
}

// MappingInfo describes one loaded mapping.
type MappingInfo struct {
	Name     string  `json:"name"`
	NumPorts int     `json:"num_ports"`
	Schemes  int     `json:"schemes"`
	Rmax     float64 `json:"rmax"`
}

// CacheStats is one mapping's LRU counters.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// MappingStats is one mapping's serving counters.
type MappingStats struct {
	Name         string     `json:"name"`
	Cache        CacheStats `json:"cache"`
	Evaluations  uint64     `json:"evaluations"`
	Coalesced    uint64     `json:"coalesced"`
	PoolCompiles uint64     `json:"pool_compiles"`
}

// StatsResponse is the answer of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Requests      uint64         `json:"requests"`
	Errors        uint64         `json:"errors"`
	Mappings      []MappingStats `json:"mappings"`
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if err := requireMethod(r, http.MethodGet); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, map[string]any{"status": "ok", "mappings": s.names})
}

func (s *Server) handleMappings(w http.ResponseWriter, r *http.Request) {
	if err := requireMethod(r, http.MethodGet); err != nil {
		s.writeError(w, err)
		return
	}
	out := make([]MappingInfo, 0, len(s.names))
	for _, name := range s.names {
		h := s.mappings[name]
		out = append(out, MappingInfo{Name: name, NumPorts: h.m.NumPorts, Schemes: len(h.keys), Rmax: s.cfg.Rmax})
	}
	s.writeJSON(w, out)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := s.predictCommon(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	h, err := s.lookup(req.Mapping)
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, err := h.experimentOf(req.Kernel, req.Experiment)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, out, err := h.predict(r, e, s.cfg.Rmax)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := PredictResponse{
		Mapping:                h.name,
		Experiment:             e,
		Instructions:           p.total,
		InvThroughput:          p.invB,
		InvThroughputUnbounded: p.inv,
		IPC:                    p.ipc,
		Rmax:                   s.cfg.Rmax,
		Bottleneck:             bottleneckOf(p),
		Cached:                 out.Hit,
		Coalesced:              out.Joined > 0,
	}
	if req.LPCheck {
		v, err := h.lpCrossCheck(e)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.LPInvThroughput = &v
	}
	s.writeJSON(w, resp)
}

// predictCommon factors the method check and body decode shared by
// predict and explain.
func (s *Server) predictCommon(w http.ResponseWriter, r *http.Request, v any) error {
	if err := requireMethod(r, http.MethodPost); err != nil {
		return err
	}
	return s.decodeJSON(w, r, v)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := s.predictCommon(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	h, err := s.lookup(req.Mapping)
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, err := h.experimentOf(req.Kernel, req.Experiment)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, _, err := h.predict(r, e, s.cfg.Rmax)
	if err != nil {
		s.writeError(w, err)
		return
	}
	bn := bottleneckOf(p)
	schemes := make([]SchemeUsage, 0, len(e))
	for _, key := range e.Keys() {
		if e[key] == 0 {
			continue
		}
		u, _ := h.m.Get(key)
		schemes = append(schemes, SchemeUsage{Key: key, Count: e[key], Uops: uopsJSON(u), Pretty: u.String()})
	}
	s.writeJSON(w, ExplainResponse{
		Mapping:       h.name,
		Experiment:    e,
		Instructions:  p.total,
		NumPorts:      h.m.NumPorts,
		InvThroughput: p.inv,
		Bottleneck:    bn,
		Schemes:       schemes,
		Explanation: fmt.Sprintf(
			"ports %v are the bottleneck: µop mass %.4g confined to them over %d port(s) gives tp⁻¹ = %.4g cycles/iteration",
			bn.Ports, p.witnessV*float64(bn.Width), bn.Width, p.inv),
	})
}

// DiffRequest is the body of POST /v1/diff (GET uses ?a=&b=).
type DiffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	switch r.Method {
	case http.MethodGet:
		req.A, req.B = r.URL.Query().Get("a"), r.URL.Query().Get("b")
	case http.MethodPost:
		if err := s.decodeJSON(w, r, &req); err != nil {
			s.writeError(w, err)
			return
		}
	default:
		s.writeError(w, errf(http.StatusMethodNotAllowed, "serve: method %q not allowed on %s", r.Method, r.URL.Path))
		return
	}
	ha, err := s.lookup(req.A)
	if err != nil {
		s.writeError(w, err)
		return
	}
	hb, err := s.lookup(req.B)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := DiffResponse{
		A: ha.name, B: hb.name,
		NumPortsA: ha.m.NumPorts, NumPortsB: hb.m.NumPorts,
		SchemesA: len(ha.keys), SchemesB: len(hb.keys),
		OnlyA: []string{}, OnlyB: []string{}, Differing: []DiffEntry{},
	}
	for _, key := range ha.keys {
		ub, ok := hb.m.Get(key)
		if !ok {
			resp.OnlyA = append(resp.OnlyA, key)
			continue
		}
		ua, _ := ha.m.Get(key)
		if ua.Equal(ub) {
			resp.Identical++
			continue
		}
		resp.Differing = append(resp.Differing, DiffEntry{
			Key: key, A: uopsJSON(ua), B: uopsJSON(ub),
			APretty: ua.String(), BPretty: ub.String(),
		})
	}
	for _, key := range hb.keys {
		if _, ok := ha.m.Get(key); !ok {
			resp.OnlyB = append(resp.OnlyB, key)
		}
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if err := requireMethod(r, http.MethodGet); err != nil {
		s.writeError(w, err)
		return
	}
	out := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Errors:        s.errs.Load(),
		Mappings:      make([]MappingStats, 0, len(s.names)),
	}
	for _, name := range s.names {
		h := s.mappings[name]
		entries, capacity, hits, misses := h.cache.stats()
		out.Mappings = append(out.Mappings, MappingStats{
			Name:         name,
			Cache:        CacheStats{Entries: entries, Capacity: capacity, Hits: hits, Misses: misses},
			Evaluations:  h.evals.Load(),
			Coalesced:    h.coalesced.Load(),
			PoolCompiles: h.pool.compiles.Load(),
		})
	}
	s.writeJSON(w, out)
}

// bottleneckOf renders a prediction's witness.
func bottleneckOf(p prediction) Bottleneck {
	return Bottleneck{
		Ports: p.witness.Ports(),
		Mask:  uint16(p.witness),
		Width: p.witness.Size(),
		Value: p.witnessV,
	}
}

// uopsJSON renders a usage in the mapping.json wire form.
func uopsJSON(u portmodel.Usage) []UopJSON {
	out := make([]UopJSON, 0, len(u))
	for _, x := range u.Clone().Normalize() {
		out = append(out, UopJSON{Ports: x.Ports.Ports(), Count: x.Count})
	}
	return out
}
