// Package serve is the port-mapping-as-a-service layer: an HTTP/JSON
// front end over inferred port mappings, turning the batch research
// pipeline's output (zeninfer's mapping.json) into an analysis
// service in the spirit of pmtestbench's analyze-bb.py and the
// uops.info lookup service. It answers
//
//   - basic-block / experiment throughput predictions (POST
//     /v1/predict), bit-identical to the batch evaluator cmd/zeneval
//     uses (both run portmodel.Compiled over the same mapping);
//   - per-scheme port-usage explanations with a bottleneck-set
//     witness (POST /v1/explain), the paper's explainability artifact;
//   - structural diffs between two loaded mappings (GET/POST
//     /v1/diff), e.g. two inference runs or two machine generations.
//
// The serving hot path composes three layers, each reused from the
// batch stack rather than reimplemented:
//
//   - an evaluator pool (evalPool): portmodel.Compiled and
//     lp.ThroughputEvaluator are single-goroutine by contract, so
//     every in-flight request borrows an exclusive evaluator from a
//     sync.Pool — no locks on the evaluation itself, no shared
//     scratch state, race-detector clean at any concurrency;
//   - in-flight deduplication (engine.Flight): concurrent identical
//     requests — same canonical experiment key, the engine's cache
//     identity — evaluate once and share the result;
//   - a bounded per-mapping LRU over canonical keys, so hot blocks
//     are answered without touching the pool at all.
//
// Around that hot path sit the overload-safety mechanisms a
// long-running public daemon needs (see admission.go, breaker.go,
// reload.go):
//
//   - admission control: evaluator work runs behind a bounded-
//     concurrency, bounded-queue gate; beyond the bounds requests are
//     shed with 429 + Retry-After instead of queuing unboundedly
//     (cache hits bypass the gate entirely);
//   - deadline propagation: each request gets a budget (server
//     default, capped per-request via the X-Zenport-Deadline header)
//     threaded as a context through the singleflight, the gate, and
//     the evaluator checkout, so a timed-out request frees its
//     evaluator instead of computing a prediction nobody will read;
//     server deadlines answer 504, client disconnects 499;
//   - panic isolation: a per-request recover converts any handler or
//     evaluator panic into a 500 + counter instead of killing the
//     daemon, and a panicked evaluator is discarded, never re-pooled;
//   - a per-mapping circuit breaker that degrades a misbehaving
//     mapping to cache-only serving (hits answered, misses 503 +
//     Retry-After) after K consecutive evaluator failures, with
//     probed half-open recovery;
//   - hot mapping reload with validate-then-atomic-swap semantics
//     (Server.Reload, POST /admin/reload loopback-only, SIGHUP in
//     cmd/zenportd).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
)

// Defaults for the Config zero value.
const (
	// DefaultCacheSize is the per-mapping prediction LRU capacity.
	DefaultCacheSize = 4096
	// DefaultMaxBodyBytes caps a request body at 1 MiB.
	DefaultMaxBodyBytes = 1 << 20
	// DefaultMaxConcurrent bounds concurrent evaluator work.
	DefaultMaxConcurrent = 64
	// DefaultMaxQueue bounds requests waiting for an evaluator slot.
	DefaultMaxQueue = 256
	// DefaultQueueTimeout sheds requests queued longer than this.
	DefaultQueueTimeout = 100 * time.Millisecond
	// DefaultRetryAfter is the Retry-After hint on shed and degraded
	// responses.
	DefaultRetryAfter = time.Second
	// DefaultBreakerThreshold is K, the consecutive evaluator failures
	// that trip a mapping into cache-only degraded serving.
	DefaultBreakerThreshold = 8
	// DefaultBreakerCooldown is how long a tripped breaker stays open
	// before the half-open probe.
	DefaultBreakerCooldown = 5 * time.Second
)

// StatusClientClosedRequest is the nginx-convention 499 status the
// server records when the client disconnected before the response —
// distinct from 504, which is the server's own deadline.
const StatusClientClosedRequest = 499

// DeadlineHeader is the request header carrying the client's deadline
// budget as a Go duration string ("250ms"); it is capped by
// Config.MaxDeadline.
const DeadlineHeader = "X-Zenport-Deadline"

// Config tunes a Server. The zero value serves with the defaults
// above, no frontend bound, and no logging.
type Config struct {
	// Rmax is the frontend/retire bottleneck in instructions per cycle
	// applied to bounded predictions and IPC (0 = no bound). It must
	// match the batch evaluator's setting for predictions to be
	// byte-identical (the Zen+ machine uses 5).
	Rmax float64
	// CacheSize bounds each mapping's prediction LRU (0 = default).
	CacheSize int
	// MaxBodyBytes bounds request bodies (0 = default 1 MiB).
	MaxBodyBytes int64
	// MemoLimit caps each pooled evaluator's experiment memo
	// (0 = portmodel.DefaultMemoLimit, negative = unbounded).
	MemoLimit int
	// MaxConcurrent bounds concurrent evaluator work (0 = default 64).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an evaluator slot
	// (0 = default 256; negative = no queue, shed immediately).
	MaxQueue int
	// QueueTimeout sheds requests queued longer than this
	// (0 = default 100ms).
	QueueTimeout time.Duration
	// RetryAfter is the Retry-After hint on 429/503 responses
	// (0 = default 1s).
	RetryAfter time.Duration
	// DefaultDeadline is the per-request evaluation budget applied
	// when the client sends no X-Zenport-Deadline header (0 = none).
	DefaultDeadline time.Duration
	// MaxDeadline caps the client-requested deadline header
	// (0 = no cap).
	MaxDeadline time.Duration
	// BreakerThreshold is the consecutive evaluator failures that trip
	// a mapping into cache-only degraded serving (0 = default 8,
	// negative = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is the open-state cooldown before a half-open
	// probe (0 = default 5s).
	BreakerCooldown time.Duration
	// EvalHook, if non-nil, runs at the start of every pooled
	// evaluation with the request context and canonical experiment
	// key. It is the chaos/testing seam: a hook may stall (honoring
	// ctx), return an error, or panic — the serving layer must absorb
	// all three. Production servers leave it nil.
	EvalHook func(ctx context.Context, key string) error
	// Log, if non-nil, receives one-line request notices.
	Log func(format string, args ...any)
}

// Server is the HTTP handler serving one or more loaded mappings.
// Load and Reload are safe to call concurrently with serving: the
// mapping set is an immutable snapshot behind an atomic pointer, so a
// request resolves its mapping handle exactly once and never observes
// a half-swapped state.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time
	gate  *gate

	// loadMu serializes Load/Reload; st is the immutable serving state.
	loadMu sync.Mutex
	st     atomic.Pointer[svcState]

	requests  atomic.Uint64
	errs      atomic.Uint64
	panics    atomic.Uint64
	canceled  atomic.Uint64
	deadlines atomic.Uint64
	reloads   atomic.Uint64
}

// svcState is one immutable snapshot of the loaded mappings. Reloads
// build a new snapshot and swap the pointer; they never mutate one.
type svcState struct {
	mappings map[string]*handle
	names    []string // sorted mapping names
}

// state returns the current serving snapshot.
func (s *Server) state() *svcState { return s.st.Load() }

// handle is one loaded mapping generation with its serving machinery.
// A handle is immutable after construction: requests that resolved it
// before a reload drain safely on it.
type handle struct {
	s           *Server
	name        string
	m           *portmodel.Mapping
	fingerprint string
	generation  uint64
	keys        []string // sorted scheme keys, the suggestion universe
	pool        *evalPool
	cache       *lruCache[prediction]
	flight      *engine.Flight[prediction]
	breaker     *breaker

	evals     atomic.Uint64 // pool evaluations (cache+flight misses)
	coalesced atomic.Uint64 // requests that joined an in-flight twin
}

// prediction is the cached evaluation of one canonical experiment
// key. All fields are pure functions of (mapping, experiment, rmax),
// so cache and singleflight sharing cannot change any served value.
type prediction struct {
	inv      float64 // tp^-1, unbounded (pure port model)
	invB     float64 // max(tp^-1, total/rmax)
	ipc      float64 // portmodel.Compiled.IPC(e, rmax)
	witness  portmodel.PortSet
	witnessV float64
	total    int
}

// New returns a server with no mappings loaded.
func New(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	s := &Server{cfg: cfg, start: time.Now()}
	s.gate = newGate(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout)
	s.st.Store(&svcState{mappings: make(map[string]*handle)})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/mappings", s.handleMappings)
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/diff", s.handleDiff)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/admin/reload", s.handleAdminReload)
	return s
}

// Load registers a mapping under a name, validating that it compiles
// and answers the smoke probe. Loading a duplicate name is an error;
// use Reload to replace a generation. Safe concurrently with serving.
func (s *Server) Load(name string, m *portmodel.Mapping) error {
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	if _, dup := s.state().mappings[name]; dup {
		return fmt.Errorf("serve: mapping %q already loaded", name)
	}
	h, err := s.buildHandle(name, m, 1, nil)
	if err != nil {
		return err
	}
	s.install(h)
	return nil
}

// ServeHTTP implements http.Handler. Every request runs under a
// recover: a panicking handler answers 500 and bumps a counter
// instead of killing the daemon (http.Server would only kill the one
// goroutine, but an embedder without its own recover — or a panic in
// a non-HTTP path — must not take the process down either way).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler { // deliberate connection abort
				panic(rec)
			}
			s.panics.Add(1)
			s.writeError(w, errf(http.StatusInternalServerError, "serve: handler panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// httpError is an error with a fixed HTTP status and a stable,
// test-asserted message.
type httpError struct {
	status     int
	msg        string
	retryAfter int // seconds; > 0 sets the Retry-After header
}

// Error implements error.
func (e *httpError) Error() string { return e.msg }

// errf builds an httpError.
func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// retryAfterSeconds renders the configured Retry-After hint.
func (s *Server) retryAfterSeconds() int {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// shedError converts a gate sentinel into its stable HTTP error;
// context errors pass through untouched so writeError can distinguish
// deadline from disconnect.
func (s *Server) shedError(err error) error {
	switch {
	case errors.Is(err, errGateFull):
		return &httpError{status: http.StatusTooManyRequests,
			msg: "serve: overloaded: queue full, request shed", retryAfter: s.retryAfterSeconds()}
	case errors.Is(err, errGateTimeout):
		return &httpError{status: http.StatusTooManyRequests,
			msg: "serve: overloaded: queued past deadline, request shed", retryAfter: s.retryAfterSeconds()}
	}
	return err
}

// degradedError is the cache-only refusal of a tripped breaker.
func (h *handle) degradedError() error {
	return &httpError{status: http.StatusServiceUnavailable,
		msg:        fmt.Sprintf("serve: mapping %q degraded: evaluator breaker open, serving cache only", h.name),
		retryAfter: h.s.retryAfterSeconds()}
}

// writeError emits the JSON error envelope. Context errors are
// classified: the server's own deadline answers 504 Gateway Timeout,
// a client disconnect answers the 499 convention — the distinction
// operators need when a latency alarm fires.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.errs.Add(1)
	he := &httpError{status: http.StatusInternalServerError, msg: "serve: internal error: " + err.Error()}
	var known *httpError
	switch {
	case errors.As(err, &known):
		he = known
	case errors.Is(err, context.DeadlineExceeded):
		he = &httpError{status: http.StatusGatewayTimeout, msg: "serve: deadline exceeded"}
	case errors.Is(err, context.Canceled):
		he = &httpError{status: StatusClientClosedRequest, msg: "serve: request canceled by client"}
	}
	switch he.status {
	case http.StatusGatewayTimeout:
		s.deadlines.Add(1)
	case StatusClientClosedRequest:
		s.canceled.Add(1)
	}
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(he.status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": he.msg})
	if s.cfg.Log != nil {
		s.cfg.Log("serve: error %d: %s", he.status, he.msg)
	}
}

// writeJSON emits a 200 JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// requireMethod rejects other HTTP methods with a stable message.
func requireMethod(r *http.Request, methods ...string) error {
	for _, m := range methods {
		if r.Method == m {
			return nil
		}
	}
	return errf(http.StatusMethodNotAllowed, "serve: method %q not allowed on %s", r.Method, r.URL.Path)
}

// decodeJSON reads the request body into v under the configured size
// cap, mapping decode failures to the stable error strings the
// handler tests assert.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return errf(http.StatusRequestEntityTooLarge, "serve: request body exceeds %d bytes", s.cfg.MaxBodyBytes)
		}
		return errf(http.StatusBadRequest, "serve: malformed JSON request body")
	}
	return nil
}

// requestContext derives the request's evaluation budget: the server
// default, overridden per-request by the X-Zenport-Deadline header
// (capped at MaxDeadline). The returned context is also canceled when
// the client disconnects, which is what lets a dead request free its
// evaluator slot.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	budget := s.cfg.DefaultDeadline
	if hv := r.Header.Get(DeadlineHeader); hv != "" {
		d, err := time.ParseDuration(hv)
		if err != nil || d <= 0 {
			return nil, nil, errf(http.StatusBadRequest, "serve: invalid %s %q", DeadlineHeader, hv)
		}
		if s.cfg.MaxDeadline > 0 && d > s.cfg.MaxDeadline {
			d = s.cfg.MaxDeadline
		}
		budget = d
	}
	if budget <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), budget)
	return ctx, cancel, nil
}

// lookup resolves a mapping name to its handle in the current
// snapshot. The handle stays valid for the whole request even if a
// reload swaps the snapshot mid-flight.
func (s *Server) lookup(name string) (*handle, error) {
	if name == "" {
		return nil, errf(http.StatusBadRequest, "serve: missing mapping name")
	}
	st := s.state()
	h, ok := st.mappings[name]
	if !ok {
		return nil, errf(http.StatusNotFound, "serve: mapping %q not loaded (loaded: %s)",
			name, strings.Join(st.names, ", "))
	}
	return h, nil
}

// ParseKernel parses the CLI kernel syntax "N*key; M*key" (the format
// zenmap -predict uses) into an experiment. Scheme keys contain
// commas, so terms are ';'-separated.
func ParseKernel(sr string) (portmodel.Experiment, error) {
	e := portmodel.Experiment{}
	for _, t := range strings.Split(sr, ";") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		count := 1
		if i := strings.Index(t, "*"); i > 0 {
			if n, err := strconv.Atoi(strings.TrimSpace(t[:i])); err == nil {
				count = n
				t = strings.TrimSpace(t[i+1:])
			}
		}
		e[t] += count
	}
	return e, nil
}

// experimentOf resolves the kernel-or-experiment pair of a request
// body into a validated experiment over the handle's mapping.
func (h *handle) experimentOf(kernel string, exp map[string]int) (portmodel.Experiment, error) {
	if kernel != "" && len(exp) > 0 {
		return nil, errf(http.StatusBadRequest, "serve: specify either kernel or experiment, not both")
	}
	var e portmodel.Experiment
	if kernel != "" {
		e, _ = ParseKernel(kernel)
	} else {
		e = portmodel.Experiment(exp)
	}
	total := 0
	for key, n := range e {
		if n < 0 {
			return nil, errf(http.StatusBadRequest, "serve: negative count %d for scheme %q", n, key)
		}
		if n == 0 {
			continue
		}
		if _, ok := h.m.Usage[key]; !ok {
			if sugg := zen.SuggestKeys(h.keys, key, 3); len(sugg) > 0 {
				return nil, errf(http.StatusBadRequest, "serve: unknown scheme %q in mapping %q, did you mean %s?",
					key, h.name, strings.Join(sugg, ", "))
			}
			return nil, errf(http.StatusBadRequest, "serve: unknown scheme %q in mapping %q", key, h.name)
		}
		total += n
	}
	if total == 0 {
		return nil, errf(http.StatusBadRequest, "serve: empty experiment")
	}
	return e, nil
}

// predict resolves an experiment through LRU, singleflight, breaker,
// admission gate, and the evaluator pool. The canonical key —
// engine.CanonicalKey, the same identity the measurement cache uses —
// collapses permutations of the same multiset, so "add;mul" and
// "mul;add" share one cache entry and concurrent identical queries
// evaluate once. Cache hits bypass breaker and gate entirely: a
// degraded or saturated mapping still answers its hot set.
func (h *handle) predict(ctx context.Context, e portmodel.Experiment, rmax float64) (prediction, engine.FlightOutcome, error) {
	key := engine.CanonicalKey(e)
	p, out, err := h.flight.Do(ctx, key,
		func() (prediction, bool) { return h.cache.get(key) },
		func() (prediction, error) { return h.evaluateGuarded(ctx, key, e, rmax) },
		func(p prediction) { h.cache.add(key, p) },
		nil)
	h.coalesced.Add(uint64(out.Joined))
	return p, out, err
}

// evaluateGuarded runs one pool evaluation behind the breaker and the
// admission gate, reporting the outcome back to the breaker. Context
// ends (deadline, disconnect) and shed requests are breaker aborts,
// not failures: they say nothing about evaluator health.
func (h *handle) evaluateGuarded(ctx context.Context, key string, e portmodel.Experiment, rmax float64) (prediction, error) {
	probe, ok := h.breaker.allow()
	if !ok {
		return prediction{}, h.degradedError()
	}
	if err := h.s.gate.acquire(ctx); err != nil {
		h.breaker.abort(probe)
		return prediction{}, h.s.shedError(err)
	}
	defer h.s.gate.release()
	p, err := h.evaluate(ctx, key, e, rmax)
	switch {
	case err == nil:
		h.breaker.success(probe)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		h.breaker.abort(probe)
	default:
		h.breaker.failure(probe)
	}
	return p, err
}

// evaluate computes a prediction on an exclusive pooled evaluator
// under panic isolation: a panicking evaluation answers an error and
// the evaluator is discarded (its scratch state is suspect), while
// clean paths — including hook errors — return it to the pool.
func (h *handle) evaluate(ctx context.Context, key string, e portmodel.Experiment, rmax float64) (p prediction, err error) {
	ev, err := h.pool.get(ctx)
	if err != nil {
		return prediction{}, err
	}
	defer func() {
		if rec := recover(); rec != nil {
			h.s.panics.Add(1)
			if h.s.cfg.Log != nil {
				h.s.cfg.Log("serve: recovered evaluator panic on mapping %q: %v", h.name, rec)
			}
			err = errf(http.StatusInternalServerError, "serve: evaluator panic: %v", rec)
			return // ev deliberately not pooled
		}
		h.pool.put(ev)
	}()
	if hook := h.s.cfg.EvalHook; hook != nil {
		if herr := hook(ctx, key); herr != nil {
			return prediction{}, herr
		}
	}
	h.evals.Add(1)
	q, inv, err := ev.c.BottleneckWitness(e)
	if err != nil {
		return prediction{}, err
	}
	invB, err := ev.c.InverseThroughputBounded(e, rmax)
	if err != nil {
		return prediction{}, err
	}
	ipc, err := ev.c.IPC(e, rmax)
	if err != nil {
		return prediction{}, err
	}
	return prediction{inv: inv, invB: invB, ipc: ipc, witness: q, witnessV: inv, total: e.Len()}, nil
}

// lpCrossCheck solves the throughput LP for the experiment on a
// pooled evaluator — an independent simplex-based answer to the same
// LP the combinatorial evaluator solves exactly. It runs behind the
// same admission gate and panic isolation as predictions.
func (h *handle) lpCrossCheck(ctx context.Context, e portmodel.Experiment) (float64, error) {
	if err := h.s.gate.acquire(ctx); err != nil {
		return 0, h.s.shedError(err)
	}
	defer h.s.gate.release()
	ev, err := h.pool.get(ctx)
	if err != nil {
		return 0, err
	}
	var v float64
	err = func() (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				h.s.panics.Add(1)
				err = errf(http.StatusInternalServerError, "serve: evaluator panic: %v", rec)
				return // ev deliberately not pooled
			}
			h.pool.put(ev)
		}()
		lpe, lerr := ev.lpEval(h.m)
		if lerr != nil {
			return lerr
		}
		v, lerr = lpe.InverseThroughput(e)
		return lerr
	}()
	return v, err
}

// ---- wire types ----

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	// Mapping names a loaded mapping.
	Mapping string `json:"mapping"`
	// Kernel is the CLI syntax "2*add GPR[32], GPR[32]; vpor XMM, XMM, XMM".
	Kernel string `json:"kernel,omitempty"`
	// Experiment is the explicit multiset form; exactly one of Kernel
	// and Experiment must be set.
	Experiment map[string]int `json:"experiment,omitempty"`
	// LPCheck additionally solves the Section 2.2 LP with the simplex
	// solver and reports its value (a consistency cross-check).
	LPCheck bool `json:"lp_check,omitempty"`
}

// Bottleneck is a bottleneck-set witness: the port set Q maximizing
// mass(Q)/|Q|, rendered both as a port list and a bitmask.
type Bottleneck struct {
	Ports []int   `json:"ports"`
	Mask  uint16  `json:"mask"`
	Width int     `json:"width"`
	Value float64 `json:"value"`
}

// PredictResponse is the answer of POST /v1/predict.
type PredictResponse struct {
	Mapping      string         `json:"mapping"`
	Experiment   map[string]int `json:"experiment"`
	Instructions int            `json:"instructions"`
	// InvThroughput is max(tp^-1, instructions/rmax) in cycles per
	// iteration — the value zenmap -predict prints.
	InvThroughput float64 `json:"inv_throughput"`
	// InvThroughputUnbounded is the pure port-model tp^-1.
	InvThroughputUnbounded float64 `json:"inv_throughput_unbounded"`
	// IPC is instructions per cycle under the rmax cap — the value
	// cmd/zeneval's predictors report, bit-identical.
	IPC        float64    `json:"ipc"`
	Rmax       float64    `json:"rmax"`
	Bottleneck Bottleneck `json:"bottleneck"`
	// Cached reports an LRU hit; Coalesced that the request shared a
	// concurrent identical evaluation.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced,omitempty"`
	// LPInvThroughput is the simplex cross-check (with lp_check).
	LPInvThroughput *float64 `json:"lp_inv_throughput,omitempty"`
}

// UopJSON is the wire form of one µop, matching mapping.json.
type UopJSON struct {
	Ports []int `json:"ports"`
	Count int   `json:"count"`
}

// SchemeUsage explains one scheme of an experiment.
type SchemeUsage struct {
	Key    string    `json:"key"`
	Count  int       `json:"count"`
	Uops   []UopJSON `json:"uops"`
	Pretty string    `json:"pretty"`
}

// ExplainRequest is the body of POST /v1/explain.
type ExplainRequest struct {
	Mapping    string         `json:"mapping"`
	Kernel     string         `json:"kernel,omitempty"`
	Experiment map[string]int `json:"experiment,omitempty"`
}

// ExplainResponse is the answer of POST /v1/explain: the per-scheme
// port usage of the experiment plus the bottleneck-set witness that
// proves the throughput bound — the paper's explainability artifact.
type ExplainResponse struct {
	Mapping       string         `json:"mapping"`
	Experiment    map[string]int `json:"experiment"`
	Instructions  int            `json:"instructions"`
	NumPorts      int            `json:"num_ports"`
	InvThroughput float64        `json:"inv_throughput"`
	Bottleneck    Bottleneck     `json:"bottleneck"`
	Schemes       []SchemeUsage  `json:"schemes"`
	Explanation   string         `json:"explanation"`
}

// DiffEntry is one scheme whose usage differs between two mappings.
type DiffEntry struct {
	Key     string    `json:"key"`
	A       []UopJSON `json:"a"`
	B       []UopJSON `json:"b"`
	APretty string    `json:"a_pretty"`
	BPretty string    `json:"b_pretty"`
}

// DiffResponse is the answer of /v1/diff.
type DiffResponse struct {
	A         string      `json:"a"`
	B         string      `json:"b"`
	NumPortsA int         `json:"num_ports_a"`
	NumPortsB int         `json:"num_ports_b"`
	SchemesA  int         `json:"schemes_a"`
	SchemesB  int         `json:"schemes_b"`
	OnlyA     []string    `json:"only_a"`
	OnlyB     []string    `json:"only_b"`
	Differing []DiffEntry `json:"differing"`
	Identical int         `json:"identical"`
}

// MappingInfo describes one loaded mapping.
type MappingInfo struct {
	Name     string  `json:"name"`
	NumPorts int     `json:"num_ports"`
	Schemes  int     `json:"schemes"`
	Rmax     float64 `json:"rmax"`
}

// CacheStats is one mapping's LRU counters.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
}

// MappingStats is one mapping's serving counters.
type MappingStats struct {
	Name         string       `json:"name"`
	Cache        CacheStats   `json:"cache"`
	Evaluations  uint64       `json:"evaluations"`
	Coalesced    uint64       `json:"coalesced"`
	PoolCompiles uint64       `json:"pool_compiles"`
	Generation   uint64       `json:"generation"`
	Fingerprint  string       `json:"fingerprint"`
	Breaker      BreakerStats `json:"breaker"`
}

// StatsResponse is the answer of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds    float64        `json:"uptime_seconds"`
	Requests         uint64         `json:"requests"`
	Errors           uint64         `json:"errors"`
	Gate             GateStats      `json:"gate"`
	PanicsRecovered  uint64         `json:"panics_recovered"`
	DeadlineExpiries uint64         `json:"deadline_expiries"`
	Canceled         uint64         `json:"canceled"`
	Reloads          uint64         `json:"reloads"`
	Mappings         []MappingStats `json:"mappings"`
}

// ---- handlers ----

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if err := requireMethod(r, http.MethodGet); err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, map[string]any{"status": "ok", "mappings": s.state().names})
}

func (s *Server) handleMappings(w http.ResponseWriter, r *http.Request) {
	if err := requireMethod(r, http.MethodGet); err != nil {
		s.writeError(w, err)
		return
	}
	st := s.state()
	out := make([]MappingInfo, 0, len(st.names))
	for _, name := range st.names {
		h := st.mappings[name]
		out = append(out, MappingInfo{Name: name, NumPorts: h.m.NumPorts, Schemes: len(h.keys), Rmax: s.cfg.Rmax})
	}
	s.writeJSON(w, out)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := s.predictCommon(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	h, err := s.lookup(req.Mapping)
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, err := h.experimentOf(req.Kernel, req.Experiment)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, out, err := h.predict(ctx, e, s.cfg.Rmax)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := PredictResponse{
		Mapping:                h.name,
		Experiment:             e,
		Instructions:           p.total,
		InvThroughput:          p.invB,
		InvThroughputUnbounded: p.inv,
		IPC:                    p.ipc,
		Rmax:                   s.cfg.Rmax,
		Bottleneck:             bottleneckOf(p),
		Cached:                 out.Hit,
		Coalesced:              out.Joined > 0,
	}
	if req.LPCheck {
		v, err := h.lpCrossCheck(ctx, e)
		if err != nil {
			s.writeError(w, err)
			return
		}
		resp.LPInvThroughput = &v
	}
	s.writeJSON(w, resp)
}

// predictCommon factors the method check and body decode shared by
// predict and explain.
func (s *Server) predictCommon(w http.ResponseWriter, r *http.Request, v any) error {
	if err := requireMethod(r, http.MethodPost); err != nil {
		return err
	}
	return s.decodeJSON(w, r, v)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := s.predictCommon(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	h, err := s.lookup(req.Mapping)
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, err := h.experimentOf(req.Kernel, req.Experiment)
	if err != nil {
		s.writeError(w, err)
		return
	}
	p, _, err := h.predict(ctx, e, s.cfg.Rmax)
	if err != nil {
		s.writeError(w, err)
		return
	}
	bn := bottleneckOf(p)
	schemes := make([]SchemeUsage, 0, len(e))
	for _, key := range e.Keys() {
		if e[key] == 0 {
			continue
		}
		u, _ := h.m.Get(key)
		schemes = append(schemes, SchemeUsage{Key: key, Count: e[key], Uops: uopsJSON(u), Pretty: u.String()})
	}
	s.writeJSON(w, ExplainResponse{
		Mapping:       h.name,
		Experiment:    e,
		Instructions:  p.total,
		NumPorts:      h.m.NumPorts,
		InvThroughput: p.inv,
		Bottleneck:    bn,
		Schemes:       schemes,
		Explanation: fmt.Sprintf(
			"ports %v are the bottleneck: µop mass %.4g confined to them over %d port(s) gives tp⁻¹ = %.4g cycles/iteration",
			bn.Ports, p.witnessV*float64(bn.Width), bn.Width, p.inv),
	})
}

// DiffRequest is the body of POST /v1/diff (GET uses ?a=&b=).
type DiffRequest struct {
	A string `json:"a"`
	B string `json:"b"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	switch r.Method {
	case http.MethodGet:
		req.A, req.B = r.URL.Query().Get("a"), r.URL.Query().Get("b")
	case http.MethodPost:
		if err := s.decodeJSON(w, r, &req); err != nil {
			s.writeError(w, err)
			return
		}
	default:
		s.writeError(w, errf(http.StatusMethodNotAllowed, "serve: method %q not allowed on %s", r.Method, r.URL.Path))
		return
	}
	ha, err := s.lookup(req.A)
	if err != nil {
		s.writeError(w, err)
		return
	}
	hb, err := s.lookup(req.B)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := DiffResponse{
		A: ha.name, B: hb.name,
		NumPortsA: ha.m.NumPorts, NumPortsB: hb.m.NumPorts,
		SchemesA: len(ha.keys), SchemesB: len(hb.keys),
		OnlyA: []string{}, OnlyB: []string{}, Differing: []DiffEntry{},
	}
	for _, key := range ha.keys {
		ub, ok := hb.m.Get(key)
		if !ok {
			resp.OnlyA = append(resp.OnlyA, key)
			continue
		}
		ua, _ := ha.m.Get(key)
		if ua.Equal(ub) {
			resp.Identical++
			continue
		}
		resp.Differing = append(resp.Differing, DiffEntry{
			Key: key, A: uopsJSON(ua), B: uopsJSON(ub),
			APretty: ua.String(), BPretty: ub.String(),
		})
	}
	for _, key := range hb.keys {
		if _, ok := ha.m.Get(key); !ok {
			resp.OnlyB = append(resp.OnlyB, key)
		}
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if err := requireMethod(r, http.MethodGet); err != nil {
		s.writeError(w, err)
		return
	}
	st := s.state()
	out := StatsResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Requests:         s.requests.Load(),
		Errors:           s.errs.Load(),
		Gate:             s.gate.stats(),
		PanicsRecovered:  s.panics.Load(),
		DeadlineExpiries: s.deadlines.Load(),
		Canceled:         s.canceled.Load(),
		Reloads:          s.reloads.Load(),
		Mappings:         make([]MappingStats, 0, len(st.names)),
	}
	for _, name := range st.names {
		h := st.mappings[name]
		entries, capacity, hits, misses := h.cache.stats()
		out.Mappings = append(out.Mappings, MappingStats{
			Name:         name,
			Cache:        CacheStats{Entries: entries, Capacity: capacity, Hits: hits, Misses: misses},
			Evaluations:  h.evals.Load(),
			Coalesced:    h.coalesced.Load(),
			PoolCompiles: h.pool.compiles.Load(),
			Generation:   h.generation,
			Fingerprint:  h.fingerprint,
			Breaker:      h.breaker.stats(),
		})
	}
	s.writeJSON(w, out)
}

// bottleneckOf renders a prediction's witness.
func bottleneckOf(p prediction) Bottleneck {
	return Bottleneck{
		Ports: p.witness.Ports(),
		Mask:  uint16(p.witness),
		Width: p.witness.Size(),
		Value: p.witnessV,
	}
}

// uopsJSON renders a usage in the mapping.json wire form.
func uopsJSON(u portmodel.Usage) []UopJSON {
	out := make([]UopJSON, 0, len(u))
	for _, x := range u.Clone().Normalize() {
		out = append(out, UopJSON{Ports: x.Ports.Ports(), Count: x.Count})
	}
	return out
}
