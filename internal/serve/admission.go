package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// The admission gate sits in front of the evaluator pool: a bounded
// number of requests evaluate concurrently, a bounded number wait in
// a FIFO queue for at most the queue deadline, and everything beyond
// those bounds is shed immediately with 429 + Retry-After instead of
// queuing unboundedly. Shedding is the load-safety contract of the
// serving layer — under overload the daemon answers *something* for
// every connection (a stable JSON error the client can back off on)
// rather than accumulating goroutines until the process dies. Cache
// hits never touch the gate: only evaluator work is admission-
// controlled, so a degraded or saturated daemon still answers its hot
// set at full speed.

// Gate sentinel errors, converted to their stable HTTP errors by the
// server (the gate itself is transport-agnostic).
var (
	// errGateFull reports that both the evaluator slots and the wait
	// queue were full on arrival.
	errGateFull = errors.New("serve: admission queue full")
	// errGateTimeout reports that the request waited in the queue past
	// the queue deadline without getting an evaluator slot.
	errGateTimeout = errors.New("serve: admission queue deadline exceeded")
)

// gate is the bounded-concurrency, bounded-queue admission controller.
type gate struct {
	// slots bounds concurrent evaluator work; holding a token is the
	// right to check an evaluator out of the pool.
	slots chan struct{}
	// queue bounds how many requests may wait for a slot.
	queue chan struct{}
	// timeout is the queue deadline: a request that cannot get a slot
	// within it is shed rather than left waiting.
	timeout time.Duration

	admitted     atomic.Uint64
	queued       atomic.Uint64
	shedFull     atomic.Uint64
	shedTimeout  atomic.Uint64
	queueDepth   atomic.Int64
	queueDepthHW atomic.Int64
}

// newGate returns a gate admitting maxConcurrent evaluations with a
// wait queue of maxQueue and the given queue deadline.
func newGate(maxConcurrent, maxQueue int, timeout time.Duration) *gate {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &gate{
		slots:   make(chan struct{}, maxConcurrent),
		queue:   make(chan struct{}, maxQueue),
		timeout: timeout,
	}
}

// acquire admits the caller to evaluator work, queuing it when the
// concurrency bound is reached. It returns errGateFull when the queue
// is full on arrival, errGateTimeout when the queue deadline passes
// first, and ctx.Err() when the request's own deadline or client
// disconnect fires while queued. On nil return the caller holds a slot
// and must release() it.
func (g *gate) acquire(ctx context.Context) error {
	// Fast path: a free evaluator slot, no queuing.
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	default:
	}
	// Saturated: enter the bounded queue or shed on the spot.
	select {
	case g.queue <- struct{}{}:
	default:
		g.shedFull.Add(1)
		return errGateFull
	}
	g.queued.Add(1)
	depth := g.queueDepth.Add(1)
	for {
		hw := g.queueDepthHW.Load()
		if depth <= hw || g.queueDepthHW.CompareAndSwap(hw, depth) {
			break
		}
	}
	defer func() {
		g.queueDepth.Add(-1)
		<-g.queue
	}()

	t := time.NewTimer(g.timeout)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	case <-t.C:
		g.shedTimeout.Add(1)
		return errGateTimeout
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the caller's evaluator slot.
func (g *gate) release() { <-g.slots }

// GateStats is the admission gate's counter snapshot, served in
// /v1/stats so soaks and operators can assert on shedding behavior.
type GateStats struct {
	MaxConcurrent       int    `json:"max_concurrent"`
	MaxQueue            int    `json:"max_queue"`
	Admitted            uint64 `json:"admitted"`
	Queued              uint64 `json:"queued"`
	Shed                uint64 `json:"shed"`
	ShedQueueFull       uint64 `json:"shed_queue_full"`
	ShedQueueTimeout    uint64 `json:"shed_queue_timeout"`
	QueueDepth          int64  `json:"queue_depth"`
	QueueDepthHighWater int64  `json:"queue_depth_high_water"`
}

// stats snapshots the gate counters.
func (g *gate) stats() GateStats {
	full, timeout := g.shedFull.Load(), g.shedTimeout.Load()
	return GateStats{
		MaxConcurrent:       cap(g.slots),
		MaxQueue:            cap(g.queue),
		Admitted:            g.admitted.Load(),
		Queued:              g.queued.Load(),
		Shed:                full + timeout,
		ShedQueueFull:       full,
		ShedQueueTimeout:    timeout,
		QueueDepth:          g.queueDepth.Load(),
		QueueDepthHighWater: g.queueDepthHW.Load(),
	}
}
