package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, mutex-guarded LRU for hot-block predictions.
// The daemon's query stream is heavy-tailed — load replays and real
// analysis sessions hammer a small set of hot basic blocks — so a
// small LRU in front of the evaluator pool absorbs most of the
// steady-state traffic while the bound keeps a long-running process
// from turning the cache into a memory leak (the same failure mode
// the Compiled memo cap fixes one layer down).
type lruCache[V any] struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

// lruEntry is one cached (key, value) pair.
type lruEntry[V any] struct {
	key string
	val V
}

// newLRU returns an LRU holding at most capacity entries (minimum 1).
func newLRU[V any](capacity int) *lruCache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache[V]{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached value and refreshes its recency.
func (c *lruCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// add inserts or refreshes a value, evicting the least recently used
// entry past capacity.
func (c *lruCache[V]) add(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*lruEntry[V]).key)
	}
}

// stats returns (entries, capacity, hits, misses).
func (c *lruCache[V]) stats() (int, int, uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.cap, c.hits, c.misses
}
