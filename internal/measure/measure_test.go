package measure

import (
	"errors"
	"math"
	"testing"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// fakeProc is a deterministic processor for harness tests: inverse
// throughput is 0.5 cycles per instruction, 1 op per instruction,
// with an optional error and a call counter.
type fakeProc struct {
	calls int
	fail  bool
}

func (f *fakeProc) Execute(kernel []string, iterations int) (Counters, error) {
	f.calls++
	if f.fail {
		return Counters{}, errors.New("boom")
	}
	n := float64(len(kernel) * iterations)
	return Counters{
		Cycles:       0.5 * n,
		Instructions: uint64(len(kernel) * iterations),
		Ops:          uint64(len(kernel) * iterations),
	}, nil
}

func (f *fakeProc) NumPorts() int { return 4 }
func (f *fakeProc) Rmax() float64 { return 5 }

func TestMeasureBasics(t *testing.T) {
	p := &fakeProc{}
	h := NewHarness(p)
	e := portmodel.Experiment{"a": 2, "b": 1}
	r, err := h.Measure(e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.InvThroughput-1.5) > 1e-9 {
		t.Fatalf("tp⁻¹ = %v, want 1.5", r.InvThroughput)
	}
	if math.Abs(r.CPI-0.5) > 1e-9 {
		t.Fatalf("CPI = %v, want 0.5", r.CPI)
	}
	if math.Abs(r.OpsPerIteration-3) > 1e-9 {
		t.Fatalf("ops = %v, want 3", r.OpsPerIteration)
	}
	if r.Runs != 11 {
		t.Fatalf("runs = %d, want 11", r.Runs)
	}
}

func TestMeasureCaches(t *testing.T) {
	p := &fakeProc{}
	h := NewHarness(p)
	e := portmodel.Exp("a")
	if _, err := h.Measure(e); err != nil {
		t.Fatal(err)
	}
	calls := p.calls
	if _, err := h.Measure(portmodel.Exp("a")); err != nil {
		t.Fatal(err)
	}
	if p.calls != calls {
		t.Fatal("second Measure hit the processor despite cache")
	}
	if h.MeasurementCount() != 1 {
		t.Fatalf("MeasurementCount = %d", h.MeasurementCount())
	}
	h.ClearCache()
	if _, err := h.Measure(portmodel.Exp("a")); err != nil {
		t.Fatal(err)
	}
	if p.calls == calls {
		t.Fatal("ClearCache did not clear")
	}
}

func TestMeasureEmptyAndError(t *testing.T) {
	h := NewHarness(&fakeProc{})
	if _, err := h.Measure(portmodel.Experiment{}); err == nil {
		t.Fatal("expected error for empty experiment")
	}
	h = NewHarness(&fakeProc{fail: true})
	if _, err := h.Measure(portmodel.Exp("a")); err == nil {
		t.Fatal("expected propagated processor error")
	}
}

func TestOpsPerInstruction(t *testing.T) {
	h := NewHarness(&fakeProc{})
	v, err := h.OpsPerInstruction("a")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-9 {
		t.Fatalf("ops per instruction = %v", v)
	}
}

func TestCPIEqualAndTPEqual(t *testing.T) {
	h := NewHarness(&fakeProc{})
	if !h.CPIEqual(1.0, 4, 1.04, 4) {
		t.Fatal("0.01 CPI difference should be equal at ε=0.02")
	}
	if h.CPIEqual(1.0, 4, 1.5, 4) {
		t.Fatal("0.125 CPI difference should not be equal")
	}
	if !h.TPEqual(2.0, 2.05, 4) || h.TPEqual(2.0, 2.2, 4) {
		t.Fatal("TPEqual thresholds wrong")
	}
}

func TestKernelInterleaving(t *testing.T) {
	// engine.KernelOf must interleave: [3×B, i] becomes B i B B
	// (round robin), not B B B i; the blocking instructions surround
	// i. Exercised through the harness alias to pin the wrapper.
	k := engine.KernelOf(portmodel.Experiment{"B": 3, "i": 1})
	if len(k) != 4 {
		t.Fatalf("kernel %v", k)
	}
	// Round-robin order: B i B B.
	if k[0] != "B" || k[1] != "i" || k[2] != "B" || k[3] != "B" {
		t.Fatalf("kernel order %v", k)
	}
}
