// Package measure is the microbenchmarking harness of the
// reproduction, playing the role of nanoBench (Abel & Reineke 2020)
// in the paper's case study: it executes steady-state kernels on a
// Processor, repeats each measurement and takes the median, converts
// raw counters into inverse throughput and per-instruction op counts,
// and provides the ε-equality on cycles-per-instruction used
// throughout the inference pipeline (§3.3.4, §4).
//
// Since the batch-engine refactor, the harness is a thin
// compatibility wrapper over internal/engine, which owns the worker
// pool, the canonical-key cache, in-flight deduplication, retry, and
// metrics. Harness keeps the call-at-a-time interface that the
// examples and the ε-equality helpers use.
package measure

import (
	"context"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// Counters are the raw performance-counter readings of one kernel
// run; see engine.Counters.
type Counters = engine.Counters

// Processor abstracts the machine under measurement; see
// engine.Processor.
type Processor = engine.Processor

// Result is a processed measurement for one experiment; see
// engine.Result.
type Result = engine.Result

// Quality is the confidence record of one measurement; see
// engine.Quality.
type Quality = engine.Quality

// ContextProcessor is the optional cancellable-execution extension of
// Processor; see engine.ContextProcessor.
type ContextProcessor = engine.ContextProcessor

// Harness runs measurements with repetition and caching. It embeds
// the batch engine, so engine configuration (P, Reps, Iterations,
// Epsilon, Workers) and batch methods (MeasureBatch, Metrics,
// ClearCache, MeasurementCount) are available directly.
type Harness struct {
	*engine.Engine
}

// NewHarness returns a harness with the paper's parameters: 11
// repetitions, ε = 0.02 CPI.
func NewHarness(p Processor) *Harness {
	return &Harness{Engine: engine.New(p)}
}

// Measure runs the experiment Reps times and returns the processed
// median result. Results are cached per experiment. It is the
// context-free form of Engine.Measure.
func (h *Harness) Measure(e portmodel.Experiment) (Result, error) {
	return h.Engine.Measure(context.Background(), e)
}

// InvThroughput is a convenience wrapper returning only the median
// inverse throughput of the experiment.
func (h *Harness) InvThroughput(e portmodel.Experiment) (float64, error) {
	r, err := h.Measure(e)
	if err != nil {
		return 0, err
	}
	return r.InvThroughput, nil
}

// OpsPerInstruction returns the measured op-counter reading per
// single instance of instruction key (executed alone).
func (h *Harness) OpsPerInstruction(key string) (float64, error) {
	r, err := h.Measure(portmodel.Exp(key))
	if err != nil {
		return 0, err
	}
	return r.OpsPerIteration, nil
}

// CPIEqual reports whether two inverse throughputs of experiments
// with the given lengths are equal within ε CPI (§3.3.4).
func (h *Harness) CPIEqual(t1 float64, len1 int, t2 float64, len2 int) bool {
	return abs(t1/float64(len1)-t2/float64(len2)) <= h.Epsilon
}

// TPEqual reports whether two inverse throughputs of the same
// experiment length are equal within ε·len cycles.
func (h *Harness) TPEqual(t1, t2 float64, length int) bool {
	return abs(t1-t2) <= h.Epsilon*float64(length)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
