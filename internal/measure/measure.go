// Package measure is the microbenchmarking harness of the
// reproduction, playing the role of nanoBench (Abel & Reineke 2020)
// in the paper's case study: it executes steady-state kernels on a
// Processor, repeats each measurement and takes the median, converts
// raw counters into inverse throughput and per-instruction op counts,
// and provides the ε-equality on cycles-per-instruction used
// throughout the inference pipeline (§3.3.4, §4).
package measure

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"zenport/internal/portmodel"
)

// Counters are the raw performance-counter readings of one kernel
// run, totalled over all iterations.
type Counters struct {
	// Cycles is the measured core cycle count (noisy).
	Cycles float64
	// Instructions is the number of retired instructions.
	Instructions uint64
	// Ops is the reading of the "Retired Uops" counter. On the Zen+
	// model this counts macro-ops, not µops (§4.1.1).
	Ops uint64
	// PortOps[k] is the number of µops executed on port k. Only
	// populated when the processor exposes per-port counters (the
	// Intel-like mode used by the uops.info baseline); nil otherwise.
	PortOps []float64
	// FPPortOps[k] is the per-pipe counter of the four FP pipes,
	// which Zen+ does provide (§4, "port usage of FP/vector
	// instructions ... available").
	FPPortOps []float64
}

// Processor abstracts the machine under measurement — on real
// hardware this would drive nanoBench; here it is the Zen+ simulator
// or a toy model.
type Processor interface {
	// Execute runs the kernel (a list of scheme keys) for the given
	// number of steady-state iterations and returns total counters.
	Execute(kernel []string, iterations int) (Counters, error)
	// NumPorts returns the number of execution ports.
	NumPorts() int
	// Rmax returns the frontend/retire bottleneck in instructions
	// per cycle (0 = none).
	Rmax() float64
}

// Result is a processed measurement for one experiment.
type Result struct {
	// InvThroughput is the median inverse throughput in cycles per
	// experiment iteration.
	InvThroughput float64
	// CPI is InvThroughput divided by the number of instructions.
	CPI float64
	// OpsPerIteration is the median op-counter reading per
	// iteration (macro-ops on Zen+).
	OpsPerIteration float64
	// Spread is the relative spread (max−min)/median of the inverse
	// throughput across the repetitions. Bimodal measurements — the
	// unstable instructions of §4.1.2/§4.2 — show a large spread
	// that the median alone would hide.
	Spread float64
	// PortOps is the median per-port µop count per iteration (nil
	// without per-port counters).
	PortOps []float64
	// FPPortOps is the median per-FP-pipe µop count per iteration.
	FPPortOps []float64
	// Runs is the number of repetitions aggregated.
	Runs int
}

// Harness runs measurements with repetition and caching.
type Harness struct {
	// P is the processor under measurement.
	P Processor
	// Reps is the number of repeated runs; the median is reported.
	// The paper uses 11.
	Reps int
	// Iterations is the number of kernel iterations per run.
	Iterations int
	// Epsilon is the CPI equality tolerance (paper: 0.02).
	Epsilon float64

	mu    sync.Mutex
	cache map[string]Result
	// runs counts distinct (uncached) measurements, for reporting.
	runs int
}

// NewHarness returns a harness with the paper's parameters: 11
// repetitions, ε = 0.02 CPI.
func NewHarness(p Processor) *Harness {
	return &Harness{P: p, Reps: 11, Iterations: 100, Epsilon: 0.02, cache: make(map[string]Result)}
}

// kernelOf flattens an experiment multiset into a deterministic
// kernel: instructions interleaved round-robin so that the blocking
// instructions surround the instruction under investigation, as the
// paper's microbenchmarks do.
func kernelOf(e portmodel.Experiment) []string {
	keys := e.Keys()
	remaining := make([]int, len(keys))
	total := 0
	for i, k := range keys {
		remaining[i] = e[k]
		total += e[k]
	}
	kernel := make([]string, 0, total)
	for len(kernel) < total {
		for i, k := range keys {
			if remaining[i] > 0 {
				kernel = append(kernel, k)
				remaining[i]--
			}
		}
	}
	return kernel
}

// cacheKey renders the experiment canonically.
func cacheKey(e portmodel.Experiment) string {
	keys := e.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d*%s", e[k], k))
	}
	return strings.Join(parts, "|")
}

// Measure runs the experiment Reps times and returns the processed
// median result. Results are cached per experiment.
func (h *Harness) Measure(e portmodel.Experiment) (Result, error) {
	if e.Len() == 0 {
		return Result{}, fmt.Errorf("measure: empty experiment")
	}
	ck := cacheKey(e)
	h.mu.Lock()
	if r, ok := h.cache[ck]; ok {
		h.mu.Unlock()
		return r, nil
	}
	h.mu.Unlock()

	kernel := kernelOf(e)
	n := len(kernel)
	reps := h.Reps
	if reps < 1 {
		reps = 1
	}
	iters := h.Iterations
	if iters < 1 {
		iters = 100
	}

	cyc := make([]float64, 0, reps)
	ops := make([]float64, 0, reps)
	var portOps [][]float64
	var fpOps [][]float64
	for r := 0; r < reps; r++ {
		c, err := h.P.Execute(kernel, iters)
		if err != nil {
			return Result{}, err
		}
		cyc = append(cyc, c.Cycles/float64(iters))
		ops = append(ops, float64(c.Ops)/float64(iters))
		if c.PortOps != nil {
			po := make([]float64, len(c.PortOps))
			for k := range po {
				po[k] = c.PortOps[k] / float64(iters)
			}
			portOps = append(portOps, po)
		}
		if c.FPPortOps != nil {
			fo := make([]float64, len(c.FPPortOps))
			for k := range fo {
				fo[k] = c.FPPortOps[k] / float64(iters)
			}
			fpOps = append(fpOps, fo)
		}
	}
	res := Result{
		InvThroughput:   median(cyc),
		OpsPerIteration: median(ops),
		Runs:            reps,
	}
	res.CPI = res.InvThroughput / float64(n)
	if res.InvThroughput > 0 {
		lo, hi := cyc[0], cyc[len(cyc)-1] // median() sorted cyc
		res.Spread = (hi - lo) / res.InvThroughput
	}
	if len(portOps) > 0 {
		res.PortOps = medianVec(portOps)
	}
	if len(fpOps) > 0 {
		res.FPPortOps = medianVec(fpOps)
	}

	h.mu.Lock()
	h.cache[ck] = res
	h.runs++
	h.mu.Unlock()
	return res, nil
}

// InvThroughput is a convenience wrapper returning only the median
// inverse throughput of the experiment.
func (h *Harness) InvThroughput(e portmodel.Experiment) (float64, error) {
	r, err := h.Measure(e)
	if err != nil {
		return 0, err
	}
	return r.InvThroughput, nil
}

// OpsPerInstruction returns the measured op-counter reading per
// single instance of instruction key (executed alone).
func (h *Harness) OpsPerInstruction(key string) (float64, error) {
	r, err := h.Measure(portmodel.Exp(key))
	if err != nil {
		return 0, err
	}
	return r.OpsPerIteration, nil
}

// CPIEqual reports whether two inverse throughputs of experiments
// with the given lengths are equal within ε CPI (§3.3.4).
func (h *Harness) CPIEqual(t1 float64, len1 int, t2 float64, len2 int) bool {
	return abs(t1/float64(len1)-t2/float64(len2)) <= h.Epsilon
}

// TPEqual reports whether two inverse throughputs of the same
// experiment length are equal within ε·len cycles.
func (h *Harness) TPEqual(t1, t2 float64, length int) bool {
	return abs(t1-t2) <= h.Epsilon*float64(length)
}

// MeasurementCount returns the number of distinct experiments
// actually measured (cache misses).
func (h *Harness) MeasurementCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.runs
}

// ClearCache drops all cached results (used when re-running the
// characterization stage with fresh noise, §4.4).
func (h *Harness) ClearCache() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cache = make(map[string]Result)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// median returns the median of xs (xs is reordered).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// medianVec returns the component-wise median of equal-length vectors.
func medianVec(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	col := make([]float64, len(vs))
	for k := range out {
		for i := range vs {
			col[i] = vs[i][k]
		}
		out[k] = median(col)
	}
	return out
}
