// Package zen instantiates the x86-64 instruction scheme database for
// AMD's Zen+ microarchitecture together with ground-truth behaviour:
// macro-op counts, µop decompositions with admissible ports, and the
// performance anomalies documented in Section 4 of Ritter & Hack
// (ASPLOS 2024).
//
// The ground truth plays the role of the physical Ryzen 5 2600X in
// the paper's case study: the simulator in package zensim executes
// kernels against it, and the inference pipeline in package core must
// rediscover it from measurements alone. Port numbering follows the
// paper's Table 2:
//
//	0..3  FP/vector pipes (FP0..FP3)
//	4     load AGU (port 4)
//	5     load/store AGU, the store port (port 5)
//	6..9  integer ALUs (ALU0..ALU3)
package zen

import (
	"fmt"
	"sort"
	"strings"

	"zenport/internal/isa"
	"zenport/internal/portmodel"
)

// NumPorts is the number of execution ports of the Zen+ model.
const NumPorts = 10

// Rmax is the frontend/retire bottleneck: at most 5 instructions
// (macro-ops) per cycle (§3.5, §4).
const Rmax = 5.0

// MSRate is the number of operations the microcode sequencer emits
// per cycle while stalling the rest of the frontend (§4.4).
const MSRate = 4.0

// Execution port groups of the Zen+ ground truth.
var (
	ALU     = portmodel.MakePortSet(6, 7, 8, 9) // scalar integer ALUs
	VALU    = portmodel.MakePortSet(0, 1, 2, 3) // all four FP/vector pipes
	VADD    = portmodel.MakePortSet(0, 1, 3)    // vector integer arithmetic
	FPMUL   = portmodel.MakePortSet(0, 1)       // FP multiply / compare
	SHUF    = portmodel.MakePortSet(1, 2)       // vector layouting/shuffles
	VADDS   = portmodel.MakePortSet(0, 3)       // saturating vector ops
	FPADD   = portmodel.MakePortSet(2, 3)       // FP additions
	LOAD    = portmodel.MakePortSet(4, 5)       // memory loads
	VSHIFT  = portmodel.MakePortSet(2)          // vector shifts
	VIMUL   = portmodel.MakePortSet(0)          // elaborate vector multiplies
	IMULP   = portmodel.MakePortSet(7)          // scalar integer multiply
	FPROUND = portmodel.MakePortSet(3)          // vector rounding
	XFER    = portmodel.MakePortSet(1)          // vector<->GPR transfers
	STORE   = portmodel.MakePortSet(5)          // memory stores
	AGU     = portmodel.MakePortSet(4, 5)       // address generation
)

// Spec is one instruction scheme with its Zen+ ground truth.
type Spec struct {
	Scheme isa.Scheme
	// MacroOps is what the PMCx0C1 "Retired Uops" counter reports
	// per instruction: macro-ops, not µops (§4.1.1).
	MacroOps int
	// Uops is the ground-truth µop decomposition with admissible
	// ports. Empty for no-port instructions (nop, eliminated movs).
	Uops portmodel.Usage
	// Occupancy is the number of cycles each µop occupies its port;
	// 1 for pipelined instructions, >1 for non-pipelined FP ops
	// (division, square root, reciprocals).
	Occupancy float64
	// MSOps is the number of macro-ops emitted through the microcode
	// sequencer. Zero means the instruction is decoded directly.
	MSOps int
}

// Key returns the canonical scheme key.
func (s *Spec) Key() string { return s.Scheme.Key() }

// DB is the Zen+ instruction database.
type DB struct {
	specs []*Spec
	byKey map[string]*Spec
	truth *portmodel.Mapping
}

// Build constructs the full database. The result is deterministic.
func Build() *DB {
	var specs []*Spec
	specs = append(specs, genScalarALU()...)
	specs = append(specs, genScalarMulBit()...)
	specs = append(specs, genMovsAndLoads()...)
	specs = append(specs, genStores()...)
	specs = append(specs, genVector()...)
	specs = append(specs, genProblem()...)
	specs = append(specs, genExcludedUpfront()...)

	db := &DB{specs: specs, byKey: make(map[string]*Spec, len(specs))}
	for _, sp := range specs {
		key := sp.Key()
		if _, dup := db.byKey[key]; dup {
			panic(fmt.Sprintf("zen: duplicate scheme %q", key))
		}
		if sp.Occupancy == 0 {
			sp.Occupancy = 1
		}
		db.byKey[key] = sp
	}
	db.truth = portmodel.NewMapping(NumPorts)
	for _, sp := range specs {
		db.truth.Set(sp.Key(), sp.Uops)
	}
	return db
}

// Get returns the spec for a scheme key.
func (db *DB) Get(key string) (*Spec, bool) {
	sp, ok := db.byKey[key]
	return sp, ok
}

// MustGet returns the spec for a key or panics.
func (db *DB) MustGet(key string) *Spec {
	sp, ok := db.byKey[key]
	if !ok {
		panic(fmt.Sprintf("zen: unknown scheme %q", key))
	}
	return sp
}

// SchemeByKey returns the spec for a key, or a descriptive error
// suggesting the closest known keys. CLI paths that accept scheme
// keys from the user must use this (or Get) instead of MustGet: an
// unknown key is user input, not a programming error, and deserves a
// "did you mean" message rather than a stack trace.
func (db *DB) SchemeByKey(key string) (*Spec, error) {
	if sp, ok := db.byKey[key]; ok {
		return sp, nil
	}
	sugg := db.Suggest(key, 3)
	if len(sugg) > 0 {
		return nil, fmt.Errorf("zen: unknown scheme %q, did you mean %s?", key, strings.Join(sugg, ", "))
	}
	return nil, fmt.Errorf("zen: unknown scheme %q (use -list for all %d keys)", key, len(db.specs))
}

// Suggest returns up to n known scheme keys closest to key by edit
// distance, preferring keys sharing the mnemonic prefix. Ties break
// lexicographically so the output is deterministic.
func (db *DB) Suggest(key string, n int) []string {
	return SuggestKeys(db.Keys(), key, n)
}

// SuggestKeys is the "did you mean" engine behind Suggest, usable
// against any key universe — the serving daemon suggests over the
// keys of the queried mapping rather than the full Zen+ database.
// It returns up to n quoted candidates from keys closest to key by
// edit distance, preferring a shared mnemonic prefix; ties break
// lexicographically (pass keys sorted for fully deterministic output).
func SuggestKeys(keys []string, key string, n int) []string {
	type cand struct {
		key  string
		dist int
	}
	mn := strings.SplitN(key, " ", 2)[0]
	var cands []cand
	for _, k := range keys {
		d := editDistance(key, k)
		// A shared mnemonic is a much stronger signal than raw
		// distance over the operand suffix.
		if strings.SplitN(k, " ", 2)[0] == mn {
			d -= 10
		}
		if d <= len(key)/2 || d < 0 {
			cands = append(cands, cand{k, d})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		return cands[i].key < cands[j].key
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = fmt.Sprintf("%q", c.key)
	}
	return out
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, minInt(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Specs returns all specs in deterministic order.
func (db *DB) Specs() []*Spec { return db.specs }

// Keys returns all scheme keys, sorted.
func (db *DB) Keys() []string {
	keys := make([]string, 0, len(db.specs))
	for _, sp := range db.specs {
		keys = append(keys, sp.Key())
	}
	sort.Strings(keys)
	return keys
}

// Truth returns the ground-truth port mapping over all schemes.
func (db *DB) Truth() *portmodel.Mapping { return db.truth }

// Len returns the number of schemes.
func (db *DB) Len() int { return len(db.specs) }

// u1 builds a single-µop usage.
func u1(ps portmodel.PortSet) portmodel.Usage {
	return portmodel.Usage{{Ports: ps, Count: 1}}
}

// uN builds an n-µop usage of one kind.
func uN(ps portmodel.PortSet, n int) portmodel.Usage {
	return portmodel.Usage{{Ports: ps, Count: n}}
}

// cat concatenates usages.
func cat(us ...portmodel.Usage) portmodel.Usage {
	var out portmodel.Usage
	for _, u := range us {
		out = append(out, u...)
	}
	return out.Normalize()
}
