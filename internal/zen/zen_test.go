package zen

import (
	"strings"
	"testing"

	"zenport/internal/isa"
	"zenport/internal/portmodel"
)

func TestBuildIsDeterministicAndDuplicateFree(t *testing.T) {
	db1 := Build()
	db2 := Build()
	if db1.Len() != db2.Len() {
		t.Fatalf("non-deterministic size: %d vs %d", db1.Len(), db2.Len())
	}
	k1, k2 := db1.Keys(), db2.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("key order differs at %d: %q vs %q", i, k1[i], k2[i])
		}
	}
}

func TestDatabaseScale(t *testing.T) {
	db := Build()
	if db.Len() < 800 {
		t.Fatalf("database too small: %d schemes", db.Len())
	}
	t.Logf("database has %d schemes", db.Len())
}

func TestGroundTruthValid(t *testing.T) {
	db := Build()
	if err := db.Truth().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sp := range db.Specs() {
		if sp.MacroOps < 1 {
			t.Errorf("%s: macro-ops %d < 1", sp.Key(), sp.MacroOps)
		}
		if sp.Occupancy < 1 {
			t.Errorf("%s: occupancy %v < 1", sp.Key(), sp.Occupancy)
		}
		if sp.Scheme.Attr.Has(isa.AttrNoPorts) && len(sp.Uops) != 0 {
			t.Errorf("%s: no-port instruction has µops", sp.Key())
		}
		if !sp.Scheme.Attr.Has(isa.AttrNoPorts) && len(sp.Uops) == 0 {
			t.Errorf("%s: port-using instruction has no µops", sp.Key())
		}
	}
}

func TestPaperTable2GroundTruth(t *testing.T) {
	db := Build()
	cases := []struct {
		key  string
		want portmodel.Usage
	}{
		{"add GPR[32], GPR[32]", u1(ALU)},
		{"vpor XMM, XMM, XMM", u1(VALU)},
		{"vpaddd XMM, XMM, XMM", u1(VADD)},
		{"vminps XMM, XMM, XMM", u1(FPMUL)},
		{"vbroadcastss XMM, XMM", u1(SHUF)},
		{"vpaddsw XMM, XMM, XMM", u1(VADDS)},
		{"vaddps XMM, XMM, XMM", u1(FPADD)},
		{"mov GPR[32], MEM[32]", u1(LOAD)},
		{"vpslld XMM, XMM, XMM", u1(VSHIFT)},
		{"vroundps XMM, XMM, IMM[8]", u1(FPROUND)},
		{"mov MEM[32], GPR[32]", cat(u1(STORE), u1(ALU))},
		{"vmovapd MEM[128], XMM", cat(u1(STORE), u1(VSHIFT))},
		{"imul GPR[32], GPR[32]", u1(IMULP)},
		{"vpmuldq XMM, XMM, XMM", u1(VIMUL)},
		{"vmovd XMM, GPR[32]", u1(XFER)},
	}
	for _, c := range cases {
		sp, ok := db.Get(c.key)
		if !ok {
			t.Errorf("missing scheme %q", c.key)
			continue
		}
		if !sp.Uops.Equal(c.want) {
			t.Errorf("%s: µops %v, want %v", c.key, sp.Uops, c.want)
		}
	}
}

func TestVpcmpPortCounts(t *testing.T) {
	// §4.2: vpcmpgtq has 1 port, vpcmpeqq 2 ports, vpcmpgtb 3 ports.
	db := Build()
	want := map[string]int{
		"vpcmpgtq XMM, XMM, XMM": 1,
		"vpcmpeqq XMM, XMM, XMM": 2,
		"vpcmpgtb XMM, XMM, XMM": 3,
	}
	for key, n := range want {
		sp := db.MustGet(key)
		if len(sp.Uops) != 1 || sp.Uops[0].Ports.Size() != n {
			t.Errorf("%s: %v, want single µop with %d ports", key, sp.Uops, n)
		}
	}
}

func TestDoublePumped256(t *testing.T) {
	db := Build()
	x := db.MustGet("vpcmpeqq XMM, XMM, XMM")
	y := db.MustGet("vpcmpeqq YMM, YMM, YMM")
	if y.MacroOps != 2*x.MacroOps {
		t.Fatalf("ymm macro-ops %d, want %d", y.MacroOps, 2*x.MacroOps)
	}
	if y.Uops.TotalUops() != 2*x.Uops.TotalUops() {
		t.Fatalf("ymm µops %d, want %d", y.Uops.TotalUops(), 2*x.Uops.TotalUops())
	}
	// Same µop kinds, double count (§4.4).
	if len(y.Uops) != len(x.Uops) || y.Uops[0].Ports != x.Uops[0].Ports {
		t.Fatalf("ymm µop kinds differ: %v vs %v", y.Uops, x.Uops)
	}
}

func TestMemoryFormsAddLoadUop(t *testing.T) {
	db := Build()
	reg := db.MustGet("add GPR[32], GPR[32]")
	mem := db.MustGet("add GPR[32], MEM[32]")
	if mem.Uops.TotalUops() != reg.Uops.TotalUops()+1 {
		t.Fatalf("mem form has %d µops, reg form %d", mem.Uops.TotalUops(), reg.Uops.TotalUops())
	}
	found := false
	for _, u := range mem.Uops {
		if u.Ports == LOAD {
			found = true
		}
	}
	if !found {
		t.Fatal("memory form lacks load µop on [4,5]")
	}
	// Macro-op count does not grow: loads are fused on Zen+ (§4.1.1).
	if mem.MacroOps != reg.MacroOps {
		t.Fatalf("mem form macro-ops %d != reg form %d", mem.MacroOps, reg.MacroOps)
	}
}

func TestRMWForms(t *testing.T) {
	db := Build()
	// §4.4: add MEM[32], GPR[32] = ALU + store + extra AGU µop for
	// <= 32 bit; 64-bit forms have no AGU µop.
	m32 := db.MustGet("add MEM[32], GPR[32]")
	if !m32.Uops.Equal(cat(u1(ALU), u1(STORE), u1(AGU))) {
		t.Fatalf("add m32: %v", m32.Uops)
	}
	m64 := db.MustGet("add MEM[64], GPR[64]")
	if !m64.Uops.Equal(cat(u1(ALU), u1(STORE))) {
		t.Fatalf("add m64: %v", m64.Uops)
	}
}

func TestLoadingMovsArePureLoads(t *testing.T) {
	db := Build()
	for _, key := range []string{"mov GPR[32], MEM[32]", "vmovaps XMM, MEM[128]", "vmovdqa YMM, MEM[256]"} {
		sp := db.MustGet(key)
		for _, u := range sp.Uops {
			if u.Ports != LOAD {
				t.Errorf("%s: unexpected non-load µop %v", key, u)
			}
		}
	}
}

func TestMicrocodedSpecs(t *testing.T) {
	db := Build()
	bsf := db.MustGet("bsf GPR[64], GPR[64]")
	if bsf.MSOps == 0 || !bsf.Scheme.Attr.Has(isa.AttrMicrocoded) {
		t.Fatal("bsf should be microcoded")
	}
	if bsf.MacroOps != 8 {
		t.Fatalf("bsf macro-ops %d, want 8", bsf.MacroOps)
	}
	vph := db.MustGet("vphaddw XMM, XMM, XMM")
	if vph.MSOps != 4 || vph.MacroOps != 4 {
		t.Fatalf("vphaddw: MSOps=%d MacroOps=%d", vph.MSOps, vph.MacroOps)
	}
}

func TestAttrFunnelGroupsNonEmpty(t *testing.T) {
	db := Build()
	counts := map[string]int{}
	for _, sp := range db.Specs() {
		a := sp.Scheme.Attr
		switch {
		case a.Has(isa.AttrControlFlow):
			counts["controlflow"]++
		case a.Has(isa.AttrSystem):
			counts["system"]++
		case a.Has(isa.AttrInputDependent):
			counts["inputdep"]++
		case a.Has(isa.AttrNoPorts):
			counts["noports"]++
		case a.Has(isa.AttrNonPipelined):
			counts["nonpipelined"]++
		case a.Has(isa.AttrMov64Imm):
			counts["mov64imm"]++
		case a.Has(isa.AttrHardwired):
			counts["hardwired"]++
		case a.Has(isa.AttrUnstablePair):
			counts["unstablepair"]++
		case a.Has(isa.AttrThreeRead):
			counts["threeread"]++
		case a.Has(isa.AttrMicrocoded):
			counts["microcoded"]++
		}
	}
	for _, g := range []string{"controlflow", "system", "inputdep", "noports", "nonpipelined", "mov64imm", "hardwired", "unstablepair", "threeread", "microcoded"} {
		if counts[g] == 0 {
			t.Errorf("attribute group %s is empty", g)
		}
	}
	t.Logf("funnel groups: %v", counts)
}

func TestBlockingClassCandidateCounts(t *testing.T) {
	// Count single-µop, measurement-clean register schemes per port
	// set: these are the blocking-instruction candidates of Table 1.
	db := Build()
	bad := isa.AttrControlFlow | isa.AttrSystem | isa.AttrInputDependent |
		isa.AttrNoPorts | isa.AttrNonPipelined | isa.AttrMov64Imm |
		isa.AttrHardwired | isa.AttrUnstablePair | isa.AttrThreeRead |
		isa.AttrMicrocoded
	counts := map[portmodel.PortSet]int{}
	for _, sp := range db.Specs() {
		if sp.Scheme.Attr&bad != 0 {
			continue
		}
		if sp.Uops.TotalUops() != 1 {
			continue
		}
		counts[sp.Uops[0].Ports]++
	}
	// All 13 classes of Table 1 must be represented.
	for _, ps := range []portmodel.PortSet{ALU, VALU, VADD, FPMUL, SHUF, VADDS, FPADD, LOAD, VSHIFT, VIMUL, IMULP, FPROUND, XFER} {
		if counts[ps] == 0 {
			t.Errorf("no blocking candidate for port set %v", ps)
		}
	}
	// The ALU class must be by far the largest (Table 1: 242 of 563).
	if counts[ALU] < counts[VALU] || counts[ALU] < 100 {
		t.Errorf("ALU class has %d candidates; want the dominant class", counts[ALU])
	}
	t.Logf("blocking candidates per class: %v", counts)
}

func TestSchemeKeysWellFormed(t *testing.T) {
	db := Build()
	for _, sp := range db.Specs() {
		key := sp.Key()
		if strings.TrimSpace(key) == "" {
			t.Fatal("empty key")
		}
		if strings.Contains(key, "  ") {
			t.Fatalf("malformed key %q", key)
		}
	}
	if _, ok := db.Get("definitely-not-a-scheme"); ok {
		t.Fatal("Get returned a spec for a bogus key")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet should panic for unknown key")
		}
	}()
	db.MustGet("definitely-not-a-scheme")
}
