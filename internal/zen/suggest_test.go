package zen

import (
	"strings"
	"testing"
)

func TestSchemeByKeyKnown(t *testing.T) {
	db := Build()
	for _, key := range db.Keys()[:10] {
		sp, err := db.SchemeByKey(key)
		if err != nil {
			t.Fatalf("SchemeByKey(%q): %v", key, err)
		}
		if sp.Scheme.Key() != key {
			t.Fatalf("SchemeByKey(%q) returned spec for %q", key, sp.Scheme.Key())
		}
	}
}

func TestSchemeByKeySuggestsClose(t *testing.T) {
	db := Build()
	// A near-miss of a real key: drop the last character.
	real := db.Keys()[0]
	typo := real[:len(real)-1]
	if _, ok := db.Get(typo); ok {
		t.Skipf("%q is itself a valid key", typo)
	}
	_, err := db.SchemeByKey(typo)
	if err == nil {
		t.Fatalf("SchemeByKey(%q) accepted an unknown key", typo)
	}
	msg := err.Error()
	if !strings.Contains(msg, "did you mean") {
		t.Fatalf("error %q has no suggestion", msg)
	}
	if !strings.Contains(msg, `"`+real+`"`) {
		t.Errorf("error %q does not suggest the close key %q", msg, real)
	}
}

func TestSchemeByKeyNoSuggestionForGarbage(t *testing.T) {
	db := Build()
	_, err := db.SchemeByKey("zz")
	if err == nil {
		t.Fatal("garbage key accepted")
	}
	if !strings.Contains(err.Error(), "-list") {
		t.Errorf("error %q should point at -list when nothing is close", err)
	}
}

func TestSuggestDeterministicAndBounded(t *testing.T) {
	db := Build()
	real := db.Keys()[0]
	typo := real[:len(real)-1]
	a := db.Suggest(typo, 3)
	b := db.Suggest(typo, 3)
	if len(a) > 3 {
		t.Fatalf("Suggest returned %d candidates, want at most 3", len(a))
	}
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatalf("Suggest is not deterministic: %v vs %v", a, b)
	}
}
