package zen

import (
	"zenport/internal/isa"
	"zenport/internal/portmodel"
)

// vecFamily describes a family of AVX/AVX2 vector instructions that
// share a µop class.
type vecFamily struct {
	mnemonics []string
	class     portmodel.PortSet
	// nregs is the number of register operands of the xmm register
	// form (including the destination).
	nregs int
	// imm adds a trailing 8-bit immediate operand.
	imm bool
	// noYMM suppresses the 256-bit variants.
	noYMM bool
	// noMem suppresses the memory-source variants.
	noMem bool
	// ext overrides the extension label (default "AVX").
	ext string
	// attr adds attributes to every scheme of the family.
	attr isa.Attr
	// common marks the xmm register form as compiler-common.
	common bool
}

// vecFamilies is the Zen+ vector instruction table. Classes follow
// Tables 1 and 2 of the paper.
var vecFamilies = []vecFamily{
	// [0,1,2,3]: logical vector ops and vector register movs.
	{
		mnemonics: []string{"vpor", "vpand", "vpxor", "vpandn"},
		class:     VALU, nregs: 3, ext: "AVX2", common: true,
	},
	{
		mnemonics: []string{"vmovdqa", "vmovdqu", "vmovaps", "vmovups", "vmovapd", "vmovupd"},
		class:     VALU, nregs: 2, common: true,
	},
	{
		mnemonics: []string{"vandps", "vandpd", "vorps", "vorpd", "vxorps", "vxorpd", "vandnps", "vandnpd"},
		class:     VALU, nregs: 3, common: true,
	},

	// [0,1,3]: vector integer arithmetic.
	{
		mnemonics: []string{
			"vpaddb", "vpaddw", "vpaddd", "vpaddq",
			"vpsubb", "vpsubw", "vpsubd", "vpsubq",
			"vpminsb", "vpminsw", "vpminsd", "vpminub", "vpminuw", "vpminud",
			"vpmaxsb", "vpmaxsw", "vpmaxsd", "vpmaxub", "vpmaxuw", "vpmaxud",
			"vpcmpeqb", "vpcmpeqw", "vpcmpeqd",
			"vpavgb", "vpavgw",
			"vpcmpgtb", "vpcmpgtw", "vpcmpgtd",
		},
		class: VADD, nregs: 3, ext: "AVX2", common: true,
	},
	{
		mnemonics: []string{"vpabsb", "vpabsw", "vpabsd", "vpsignb", "vpsignw", "vpsignd"},
		class:     VADD, nregs: 2, ext: "AVX2",
	},

	// [0,3]: saturating vector arithmetic and the 2×64-bit equality
	// compare the paper calls out in §4.2.
	{
		mnemonics: []string{
			"vpaddsb", "vpaddsw", "vpaddusb", "vpaddusw",
			"vpsubsb", "vpsubsw", "vpsubusb", "vpsubusw",
		},
		class: VADDS, nregs: 3, ext: "AVX2",
	},
	{
		mnemonics: []string{"vpcmpeqq"},
		class:     VADDS, nregs: 3, ext: "AVX2",
	},

	// [0,1]: FP compares and multiplies. (Double-precision multiply
	// is measurement-unstable, §4.2 — flagged in gen_problem.go.)
	{
		mnemonics: []string{
			"vmulps", "vmulss",
			"vminps", "vminpd", "vminss", "vminsd",
			"vmaxps", "vmaxpd", "vmaxss", "vmaxsd",
		},
		class: FPMUL, nregs: 3, common: true,
	},
	{
		mnemonics: []string{"vcmpps", "vcmppd", "vcmpss", "vcmpsd"},
		class:     FPMUL, nregs: 3, imm: true, common: true,
	},
	// The vcmp predicate pseudo-ops: uops.info enumerates each of the
	// 32 AVX comparison predicates as its own scheme, which is why
	// the paper's FP compare/multiply class holds 143 equivalents.
	{
		mnemonics: vcmpPseudoOps(),
		class:     FPMUL, nregs: 3,
	},
	{
		mnemonics: []string{"vucomiss", "vucomisd", "vcomiss", "vcomisd"},
		class:     FPMUL, nregs: 2, noYMM: true,
	},

	// [2,3]: FP additions.
	{
		mnemonics: []string{
			"vaddps", "vaddpd", "vaddss", "vaddsd",
			"vsubps", "vsubpd", "vsubss", "vsubsd",
			"vaddsubps", "vaddsubpd",
		},
		class: FPADD, nregs: 3, common: true,
	},

	// [1,2]: vector layouting (shuffles, broadcasts, unpacks, packs).
	{
		mnemonics: []string{"vbroadcastss"},
		class:     SHUF, nregs: 2, common: true,
	},
	{
		mnemonics: []string{
			"vpunpckhbw", "vpunpckhwd", "vpunpckhdq", "vpunpckhqdq",
			"vpunpcklbw", "vpunpcklwd", "vpunpckldq", "vpunpcklqdq",
			"vunpckhps", "vunpckhpd", "vunpcklps", "vunpcklpd",
			"vpacksswb", "vpackssdw", "vpackuswb", "vpackusdw",
			"vpshufb",
		},
		class: SHUF, nregs: 3, ext: "AVX2",
	},
	{
		mnemonics: []string{"vpshufd", "vpshufhw", "vpshuflw", "vpermilps", "vpermilpd"},
		class:     SHUF, nregs: 2, imm: true, ext: "AVX2",
	},
	{
		mnemonics: []string{"vshufps", "vshufpd", "vpalignr", "vinsertps", "vpblendw", "vmpsadbw"},
		class:     SHUF, nregs: 3, imm: true,
	},
	{
		mnemonics: []string{
			"vpmovzxbw", "vpmovzxbd", "vpmovzxbq", "vpmovzxwd", "vpmovzxwq", "vpmovzxdq",
			"vpmovsxbw", "vpmovsxbd", "vpmovsxbq", "vpmovsxwd", "vpmovsxwq", "vpmovsxdq",
		},
		class: SHUF, nregs: 2, ext: "AVX2", noYMM: true,
	},

	// [2]: vector shifts.
	{
		mnemonics: []string{"vpsllw", "vpslld", "vpsllq", "vpsrlw", "vpsrld", "vpsrlq", "vpsraw", "vpsrad"},
		class:     VSHIFT, nregs: 3, ext: "AVX2",
	},
	{
		mnemonics: []string{"vpslldq", "vpsrldq"},
		class:     VSHIFT, nregs: 2, imm: true, ext: "AVX2", noMem: true,
	},
	{
		mnemonics: []string{"vpsllvd", "vpsllvq", "vpsrlvd", "vpsrlvq", "vpsravd"},
		class:     VSHIFT, nregs: 3, ext: "AVX2",
	},

	// [0]: elaborate vector multiplies; experiments run slower than
	// their port usage implies (§4.3), so the CEGAR stage excludes
	// the representative's mnemonic family.
	{
		mnemonics: []string{"vpmuldq", "vpmuludq"},
		class:     VIMUL, nregs: 3, ext: "AVX2", attr: isa.AttrVecMulSlow,
	},
	{
		mnemonics: []string{"vpmullw", "vpmulhw", "vpmulhuw", "vpmulhrsw", "vpmaddwd", "vpmaddubsw"},
		class:     VIMUL, nregs: 3, ext: "AVX2",
	},
	{
		mnemonics: []string{"vpcmpgtq"},
		class:     VIMUL, nregs: 3, ext: "AVX2",
	},

	// [3]: vector rounding.
	{
		mnemonics: []string{"vroundps", "vroundpd"},
		class:     FPROUND, nregs: 2, imm: true, noYMM: true,
	},
	{
		mnemonics: []string{"vroundss", "vroundsd"},
		class:     FPROUND, nregs: 3, imm: true, noYMM: true,
	},
}

// genVector expands the vector family table into schemes with ground
// truth: xmm and ymm register forms plus memory-source forms. 256-bit
// operations are double-pumped: two macro-ops with twice the µops
// (§4.4); memory operands add one load µop (two for 256-bit).
func genVector() []*Spec {
	var out []*Spec
	for _, f := range vecFamilies {
		ext := f.ext
		if ext == "" {
			ext = "AVX"
		}
		for _, mn := range f.mnemonics {
			regOps := make([]isa.Operand, f.nregs)
			for i := range regOps {
				regOps[i] = isa.X()
			}
			if f.imm {
				regOps = append(regOps, isa.I(8))
			}
			attr := f.attr
			if f.common {
				attr |= isa.AttrCommon
			}
			// xmm register form: one macro-op, one µop.
			out = append(out, &Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: regOps, Extension: ext, Attr: attr},
				MacroOps: 1, Uops: u1(f.class),
			})
			// xmm memory form: source operand is 128-bit memory.
			if !f.noMem {
				memOps := append([]isa.Operand(nil), regOps...)
				memOps[f.nregs-1] = isa.M(128)
				uops := cat(u1(f.class), u1(LOAD))
				if isLoadingMov(mn) {
					uops = u1(LOAD) // loading movs are pure loads
				}
				out = append(out, &Spec{
					Scheme:   isa.Scheme{Mnemonic: mn, Operands: memOps, Extension: ext, Attr: f.attr},
					MacroOps: 1, Uops: uops,
				})
			}
			if f.noYMM {
				continue
			}
			// ymm register form: double-pumped.
			yOps := make([]isa.Operand, f.nregs)
			for i := range yOps {
				yOps[i] = isa.Y()
			}
			if f.imm {
				yOps = append(yOps, isa.I(8))
			}
			out = append(out, &Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: yOps, Extension: ext, Attr: f.attr},
				MacroOps: 2, Uops: uN(f.class, 2),
			})
			// ymm memory form.
			if !f.noMem {
				memOps := append([]isa.Operand(nil), yOps...)
				memOps[f.nregs-1] = isa.M(256)
				uops := cat(uN(f.class, 2), uN(LOAD, 2))
				if isLoadingMov(mn) {
					uops = uN(LOAD, 2)
				}
				out = append(out, &Spec{
					Scheme:   isa.Scheme{Mnemonic: mn, Operands: memOps, Extension: ext, Attr: f.attr},
					MacroOps: 2, Uops: uops,
				})
			}
		}
	}

	// vbroadcastsd exists only with a ymm destination.
	out = append(out, &Spec{
		Scheme:   isa.Scheme{Mnemonic: "vbroadcastsd", Operands: []isa.Operand{isa.Y(), isa.X()}, Extension: "AVX"},
		MacroOps: 2, Uops: uN(SHUF, 2),
	})

	// Vector-to-GPR transfers: the "[1] — vector-to-GPR mov" class
	// with inconsistent resource conflicts (§4.3).
	out = append(out, &Spec{
		Scheme:   isa.Scheme{Mnemonic: "vmovd", Operands: []isa.Operand{isa.X(), isa.R(32)}, Extension: "AVX", Attr: isa.AttrXferInconsistent},
		MacroOps: 1, Uops: u1(XFER),
	})
	out = append(out, &Spec{
		Scheme:   isa.Scheme{Mnemonic: "vmovq", Operands: []isa.Operand{isa.X(), isa.R(64)}, Extension: "AVX", Attr: isa.AttrXferInconsistent},
		MacroOps: 1, Uops: u1(XFER),
	})

	// Horizontal vector adds: microcoded, with spurious-µop
	// measurements (§4.4, vphaddw example).
	for _, mn := range []string{"vphaddw", "vphaddd", "vphaddsw", "vphsubw", "vphsubd", "vphsubsw"} {
		out = append(out, &Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.X(), isa.X(), isa.X()}, Extension: "AVX2", Attr: isa.AttrMicrocoded},
			MacroOps: 4, MSOps: 4,
			Uops: cat(u1(VALU), u1(VADD), uN(SHUF, 2)),
		})
	}
	return out
}

// vcmpPseudoOps builds the AVX comparison predicate pseudo-op
// mnemonics (vcmpeqps, vcmpltps, ... for ps and pd), matching how
// uops.info enumerates instruction schemes.
func vcmpPseudoOps() []string {
	preds := []string{
		"eq", "lt", "le", "unord", "neq", "nlt", "nle", "ord",
		"eq_uq", "nge", "ngt", "false", "neq_oq", "ge", "gt", "true",
		"eq_os", "lt_oq", "le_oq", "unord_s", "neq_us", "nlt_uq",
		"nle_uq", "ord_s", "eq_us", "nge_uq", "ngt_uq", "false_os",
		"neq_os", "ge_oq", "gt_oq", "true_us",
	}
	var out []string
	for _, p := range preds {
		out = append(out, "vcmp"+p+"ps", "vcmp"+p+"pd")
	}
	return out
}

// isLoadingMov reports whether the mnemonic is a plain load when its
// source is memory (movs load directly through the load ports).
func isLoadingMov(mn string) bool {
	switch mn {
	case "vmovdqa", "vmovdqu", "vmovaps", "vmovups", "vmovapd", "vmovupd":
		return true
	}
	return false
}
