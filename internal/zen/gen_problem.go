package zen

import (
	"zenport/internal/isa"
)

// genProblem generates the instruction groups with performance
// behaviour outside the port mapping model, following §4.1.2–§4.2:
// non-pipelined FP ops, measurement-unstable instructions, and
// three-read FP operations.
func genProblem() []*Spec {
	var out []*Spec
	add := func(sp *Spec) { out = append(out, sp) }

	// Non-pipelined FP: divisions, square roots, reciprocals. The
	// functional unit accepts a new µop only every Occupancy cycles,
	// so the measured throughput is slower than the port mapping
	// model permits (§4.1.2).
	type slow struct {
		mn  string
		n   int // register operands
		occ float64
	}
	for _, s := range []slow{
		{"vdivps", 3, 10}, {"vdivpd", 3, 13}, {"vdivss", 3, 10}, {"vdivsd", 3, 13},
		{"vsqrtps", 2, 12}, {"vsqrtpd", 2, 15}, {"vsqrtss", 2, 12}, {"vsqrtsd", 2, 15},
		{"vrcpps", 2, 4}, {"vrcpss", 2, 4}, {"vrsqrtps", 2, 4}, {"vrsqrtss", 2, 4},
	} {
		ops := make([]isa.Operand, s.n)
		for i := range ops {
			ops[i] = isa.X()
		}
		add(&Spec{
			Scheme:    isa.Scheme{Mnemonic: s.mn, Operands: ops, Extension: "AVX", Attr: isa.AttrNonPipelined},
			MacroOps:  1,
			Uops:      u1(FPROUND), // the divider sits behind FP3
			Occupancy: s.occ,
		})
	}

	// Conditional moves: unstable when benchmarked with other
	// instructions (§4.2).
	for _, cc := range condCodes {
		for _, w := range []int{16, 32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: "cmov" + cc, Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BASE", Attr: isa.AttrUnstablePair},
				MacroOps: 1, Uops: u1(ALU),
			})
		}
	}

	// AES operations: unstable when paired (§4.2).
	for _, mn := range []string{"vaesenc", "vaesdec", "vaesenclast", "vaesdeclast"} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.X(), isa.X(), isa.X()}, Extension: "AES", Attr: isa.AttrUnstablePair},
			MacroOps: 1, Uops: u1(FPMUL),
		})
	}
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "vaesimc", Operands: []isa.Operand{isa.X(), isa.X()}, Extension: "AES", Attr: isa.AttrUnstablePair},
		MacroOps: 1, Uops: u1(FPMUL),
	})

	// Numerical conversions of the vcvt* family: unstable when
	// paired (§4.2).
	cvt2 := []string{
		"vcvtdq2ps", "vcvtps2dq", "vcvttps2dq", "vcvtdq2pd", "vcvtpd2dq",
		"vcvttpd2dq", "vcvtps2pd", "vcvtpd2ps", "vcvtss2sd", "vcvtsd2ss",
	}
	for _, mn := range cvt2 {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.X(), isa.X()}, Extension: "AVX", Attr: isa.AttrUnstablePair},
			MacroOps: 1, Uops: u1(FPROUND),
		})
	}
	for _, mn := range []string{"vcvtsi2ss", "vcvtsi2sd"} {
		for _, w := range []int{32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.X(), isa.X(), isa.R(w)}, Extension: "AVX", Attr: isa.AttrUnstablePair},
				MacroOps: 1, Uops: u1(FPROUND),
			})
		}
	}
	for _, mn := range []string{"vcvtss2si", "vcvtsd2si", "vcvttss2si", "vcvttsd2si"} {
		for _, w := range []int{32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.X()}, Extension: "AVX", Attr: isa.AttrUnstablePair},
				MacroOps: 1, Uops: u1(FPROUND),
			})
		}
	}

	// Double-precision FP multiplication: unstable when paired
	// (§4.2). Single-precision multiplies stay in the clean FPMUL
	// family of gen_vector.go.
	for _, mn := range []string{"vmulpd", "vmulsd"} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.X(), isa.X(), isa.X()}, Extension: "AVX", Attr: isa.AttrUnstablePair | isa.AttrCommon},
			MacroOps: 1, Uops: u1(FPMUL),
		})
	}

	// Three-read FP/vector operations: FMA and variable blends. They
	// execute on two FP ports but occupy the data lines of a third
	// port, which contradicts the port mapping model (§4.2).
	fma := []string{
		"vfmadd132ps", "vfmadd213ps", "vfmadd231ps",
		"vfmadd132pd", "vfmadd213pd", "vfmadd231pd",
		"vfmadd132ss", "vfmadd213ss", "vfmadd231ss",
		"vfmadd132sd", "vfmadd213sd", "vfmadd231sd",
		"vfmsub132ps", "vfmsub213ps", "vfmsub231ps",
		"vfnmadd132ps", "vfnmadd213ps", "vfnmadd231ps",
	}
	for _, mn := range fma {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.X(), isa.X(), isa.X()}, Extension: "FMA", Attr: isa.AttrThreeRead},
			MacroOps: 1, Uops: u1(FPMUL),
		})
	}
	for _, mn := range []string{"vblendvps", "vblendvpd", "vpblendvb"} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.X(), isa.X(), isa.X(), isa.X()}, Extension: "AVX", Attr: isa.AttrThreeRead},
			MacroOps: 1, Uops: u1(SHUF),
		})
	}

	// Hardwired-operand schemes: one-operand multiplies accumulate
	// into ax/dx:ax, and ah-register arithmetic cannot be measured
	// without dependency effects (§4.1.2).
	for _, mn := range []string{"mul", "imul"} {
		for _, w := range []int{8, 16, 32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w)}, Extension: "BASE", Attr: isa.AttrHardwired},
				MacroOps: 2, Uops: u1(IMULP),
			})
		}
	}
	for _, mn := range []string{"add", "sub", "mov"} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.Op(isa.AH, 8), isa.Op(isa.AH, 8)}, Extension: "BASE", Attr: isa.AttrHardwired},
			MacroOps: 1, Uops: u1(ALU),
		})
	}
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "cwd", Extension: "BASE", Attr: isa.AttrHardwired},
		MacroOps: 1, Uops: u1(ALU),
	})
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "cdq", Extension: "BASE", Attr: isa.AttrHardwired},
		MacroOps: 1, Uops: u1(ALU),
	})
	return out
}

// genExcludedUpfront generates schemes that the case study removes
// before any measurement: control flow, system instructions, and
// instructions with input-dependent performance (§4, "We take the
// x86-64 instruction schemes from uops.info and remove...").
func genExcludedUpfront() []*Spec {
	var out []*Spec
	add := func(sp *Spec) { out = append(out, sp) }

	// Control flow.
	add(&Spec{Scheme: isa.Scheme{Mnemonic: "jmp", Operands: []isa.Operand{isa.I(32)}, Extension: "BASE", Attr: isa.AttrControlFlow}, MacroOps: 1, Uops: u1(ALU)})
	for _, cc := range condCodes {
		add(&Spec{Scheme: isa.Scheme{Mnemonic: "j" + cc, Operands: []isa.Operand{isa.I(32)}, Extension: "BASE", Attr: isa.AttrControlFlow}, MacroOps: 1, Uops: u1(ALU)})
	}
	add(&Spec{Scheme: isa.Scheme{Mnemonic: "call", Operands: []isa.Operand{isa.I(32)}, Extension: "BASE", Attr: isa.AttrControlFlow}, MacroOps: 2, Uops: cat(u1(ALU), u1(STORE))})
	add(&Spec{Scheme: isa.Scheme{Mnemonic: "ret", Extension: "BASE", Attr: isa.AttrControlFlow}, MacroOps: 1, Uops: cat(u1(ALU), u1(LOAD))})
	add(&Spec{Scheme: isa.Scheme{Mnemonic: "loop", Operands: []isa.Operand{isa.I(8)}, Extension: "BASE", Attr: isa.AttrControlFlow}, MacroOps: 1, Uops: u1(ALU)})

	// System instructions.
	for _, mn := range []string{"syscall", "cpuid", "rdtsc", "rdtscp", "lfence", "mfence", "sfence", "clflush", "int3", "hlt", "wbinvd", "invd", "rdmsr", "wrmsr"} {
		add(&Spec{Scheme: isa.Scheme{Mnemonic: mn, Extension: "BASE", Attr: isa.AttrSystem}, MacroOps: 1, Uops: u1(ALU)})
	}

	// Input-dependent performance: integer division.
	for _, mn := range []string{"div", "idiv"} {
		for _, w := range []int{8, 16, 32, 64} {
			add(&Spec{Scheme: isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w)}, Extension: "BASE", Attr: isa.AttrInputDependent}, MacroOps: 2, Uops: u1(IMULP), Occupancy: 20})
			add(&Spec{Scheme: isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.M(w)}, Extension: "BASE", Attr: isa.AttrInputDependent}, MacroOps: 2, Uops: cat(u1(IMULP), u1(LOAD)), Occupancy: 20})
		}
	}
	// Repeated string operations: input-dependent.
	for _, mn := range []string{"rep movsb", "rep stosb", "rep cmpsb"} {
		add(&Spec{Scheme: isa.Scheme{Mnemonic: mn, Extension: "BASE", Attr: isa.AttrInputDependent}, MacroOps: 8, Uops: cat(u1(LOAD), u1(STORE)), MSOps: 8})
	}
	return out
}
