package zen

import (
	"zenport/internal/isa"
	"zenport/internal/portmodel"
)

var gprWidths = []int{8, 16, 32, 64}

// condCodes are the condition-code suffixes used for setcc/cmovcc.
var condCodes = []string{
	"o", "no", "b", "ae", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

// rmwExtraUops returns the µops of a read-modify-write memory form of
// width w: a store µop, plus an extra AGU µop for operations on at
// most 32 bits (§4.4, "as an exception...").
func rmwExtraUops(w int) portmodel.Usage {
	u := u1(STORE)
	if w <= 32 {
		u = cat(u, u1(AGU))
	}
	return u
}

// genScalarALU generates the scalar integer ALU schemes: the large
// equivalence class "[6,7,8,9] — ALU ops" of Table 1 plus their
// memory, immediate, and read-modify-write forms.
func genScalarALU() []*Spec {
	var out []*Spec
	add := func(sp *Spec) { out = append(out, sp) }

	common := map[string]bool{
		"add": true, "sub": true, "and": true, "or": true, "xor": true,
		"cmp": true, "test": true, "mov": true, "inc": true, "dec": true,
		"shl": true, "shr": true, "sar": true, "lea": true, "movzx": true,
		"movsx": true, "neg": true, "not": true, "setcc": true,
	}
	commonAttr := func(mn string) isa.Attr {
		if common[mn] {
			return isa.AttrCommon
		}
		return 0
	}

	// Two-operand arithmetic/logic with reg and imm source forms and
	// the full set of memory forms.
	type binMn struct {
		name string
		rmw  bool // has a mem-destination (read-modify-write) form
	}
	binary := []binMn{
		{"add", true}, {"sub", true}, {"and", true}, {"or", true},
		{"xor", true}, {"adc", true}, {"sbb", true},
		{"cmp", false}, {"test", false},
	}
	for _, mn := range binary {
		for _, w := range gprWidths {
			attr := commonAttr(mn.name)
			// reg, reg
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn.name, Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BASE", Attr: attr},
				MacroOps: 1, Uops: u1(ALU),
			})
			// reg, imm
			iw := w
			if iw == 64 {
				iw = 32 // 64-bit ALU ops take 32-bit immediates
			}
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn.name, Operands: []isa.Operand{isa.R(w), isa.I(iw)}, Extension: "BASE", Attr: attr},
				MacroOps: 1, Uops: u1(ALU),
			})
			// reg, mem (load form)
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn.name, Operands: []isa.Operand{isa.R(w), isa.M(w)}, Extension: "BASE", Attr: attr},
				MacroOps: 1, Uops: cat(u1(ALU), u1(LOAD)),
			})
			if mn.rmw {
				// mem, reg and mem, imm (read-modify-write forms)
				add(&Spec{
					Scheme:   isa.Scheme{Mnemonic: mn.name, Operands: []isa.Operand{isa.M(w), isa.R(w)}, Extension: "BASE", Attr: attr},
					MacroOps: 1, Uops: cat(u1(ALU), rmwExtraUops(w)),
				})
				add(&Spec{
					Scheme:   isa.Scheme{Mnemonic: mn.name, Operands: []isa.Operand{isa.M(w), isa.I(iw)}, Extension: "BASE", Attr: attr},
					MacroOps: 1, Uops: cat(u1(ALU), rmwExtraUops(w)),
				})
			} else {
				// cmp/test mem, reg: load + compare, no store
				add(&Spec{
					Scheme:   isa.Scheme{Mnemonic: mn.name, Operands: []isa.Operand{isa.M(w), isa.R(w)}, Extension: "BASE", Attr: attr},
					MacroOps: 1, Uops: cat(u1(ALU), u1(LOAD)),
				})
			}
		}
	}

	// One-operand ALU ops.
	for _, mn := range []string{"inc", "dec", "neg", "not"} {
		for _, w := range gprWidths {
			attr := commonAttr(mn)
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w)}, Extension: "BASE", Attr: attr},
				MacroOps: 1, Uops: u1(ALU),
			})
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.M(w)}, Extension: "BASE", Attr: attr},
				MacroOps: 1, Uops: cat(u1(ALU), rmwExtraUops(w)),
			})
		}
	}

	// Shifts and rotates by immediate; all four ALUs on Zen+.
	for _, mn := range []string{"shl", "shr", "sar", "rol", "ror"} {
		for _, w := range gprWidths {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.I(8)}, Extension: "BASE", Attr: commonAttr(mn)},
				MacroOps: 1, Uops: u1(ALU),
			})
		}
	}

	// Double-precision shifts with immediate.
	for _, mn := range []string{"shld", "shrd"} {
		for _, w := range []int{16, 32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.R(w), isa.I(8)}, Extension: "BASE"},
				MacroOps: 1, Uops: u1(ALU),
			})
		}
	}

	// setcc: one ALU µop into a byte register.
	for _, cc := range condCodes {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "set" + cc, Operands: []isa.Operand{isa.R(8)}, Extension: "BASE", Attr: isa.AttrCommon},
			MacroOps: 1, Uops: u1(ALU),
		})
	}

	// Bit test family; reg forms are single ALU µops.
	for _, mn := range []string{"bt", "bts", "btr", "btc"} {
		for _, w := range []int{16, 32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BASE"},
				MacroOps: 1, Uops: u1(ALU),
			})
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.I(8)}, Extension: "BASE"},
				MacroOps: 1, Uops: u1(ALU),
			})
		}
	}

	// Sign/zero extension between register widths.
	type ext struct{ dst, src int }
	for _, mn := range []string{"movzx", "movsx"} {
		for _, e := range []ext{{16, 8}, {32, 8}, {64, 8}, {32, 16}, {64, 16}} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(e.dst), isa.R(e.src)}, Extension: "BASE", Attr: commonAttr(mn)},
				MacroOps: 1, Uops: u1(ALU),
			})
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(e.dst), isa.M(e.src)}, Extension: "BASE", Attr: commonAttr(mn)},
				MacroOps: 1, Uops: cat(u1(ALU), u1(LOAD)),
			})
		}
	}
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "movsxd", Operands: []isa.Operand{isa.R(64), isa.R(32)}, Extension: "BASE", Attr: isa.AttrCommon},
		MacroOps: 1, Uops: u1(ALU),
	})

	// lea: address arithmetic on the ALUs; its memory operand is an
	// address computation, not an access (no load µop — the paper's
	// µop postulate explicitly excludes lea).
	for _, w := range []int{16, 32, 64} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "lea", Operands: []isa.Operand{isa.R(w), isa.M(w)}, Extension: "BASE", Attr: isa.AttrCommon},
			MacroOps: 1, Uops: u1(ALU),
		})
	}

	// Bit-count instructions (single-port would also be plausible;
	// Zen+ runs them on the ALU group).
	for _, mn := range []string{"popcnt", "lzcnt", "tzcnt"} {
		for _, w := range []int{16, 32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BMI"},
				MacroOps: 1, Uops: u1(ALU),
			})
		}
	}
	// BMI logic ops.
	for _, mn := range []string{"andn", "bextr", "blsi", "blsmsk", "blsr"} {
		for _, w := range []int{32, 64} {
			ops := []isa.Operand{isa.R(w), isa.R(w), isa.R(w)}
			if mn == "blsi" || mn == "blsmsk" || mn == "blsr" {
				ops = []isa.Operand{isa.R(w), isa.R(w)}
			}
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: ops, Extension: "BMI"},
				MacroOps: 1, Uops: u1(ALU),
			})
		}
	}
	// Flag ops and exchanges.
	for _, mn := range []string{"cmc", "clc", "stc"} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Extension: "BASE"},
			MacroOps: 1, Uops: u1(ALU),
		})
	}
	for _, w := range []int{16, 32, 64} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "bswap", Operands: []isa.Operand{isa.R(w)}, Extension: "BASE"},
			MacroOps: 1, Uops: u1(ALU),
		})
	}
	return out
}

// genScalarMulBit generates scalar multiplies (the anomalous "[7] —
// integer mul." class of Table 1) and the microcoded bit scans.
func genScalarMulBit() []*Spec {
	var out []*Spec
	add := func(sp *Spec) { out = append(out, sp) }

	// imul two- and three-operand forms: single µop on one port, with
	// the §4.3 mixture anomaly.
	for _, w := range []int{16, 32, 64} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "imul", Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BASE", Attr: isa.AttrImulAnomaly | isa.AttrCommon},
			MacroOps: 1, Uops: u1(IMULP),
		})
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "imul", Operands: []isa.Operand{isa.R(w), isa.R(w), isa.I(32)}, Extension: "BASE", Attr: isa.AttrImulAnomaly},
			MacroOps: 1, Uops: u1(IMULP),
		})
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "imul", Operands: []isa.Operand{isa.R(w), isa.M(w)}, Extension: "BASE", Attr: isa.AttrImulAnomaly},
			MacroOps: 1, Uops: cat(u1(IMULP), u1(LOAD)),
		})
	}
	// mulx (BMI2): flagless multiply, same unit.
	for _, w := range []int{32, 64} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "mulx", Operands: []isa.Operand{isa.R(w), isa.R(w), isa.R(w)}, Extension: "BMI2", Attr: isa.AttrImulAnomaly},
			MacroOps: 1, Uops: u1(IMULP),
		})
	}

	// Bit scans: microcoded on Zen+ (§4.4); the MS bottleneck makes
	// their measurements show spurious µops.
	for _, mn := range []string{"bsf", "bsr"} {
		for _, w := range []int{16, 32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BASE", Attr: isa.AttrMicrocoded},
				MacroOps: 8, Uops: uN(ALU, 8), MSOps: 8,
			})
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.M(w)}, Extension: "BASE", Attr: isa.AttrMicrocoded},
				MacroOps: 8, Uops: cat(uN(ALU, 8), u1(LOAD)), MSOps: 8,
			})
		}
	}
	// pdep/pext: heavily microcoded on Zen+.
	for _, mn := range []string{"pdep", "pext"} {
		for _, w := range []int{32, 64} {
			add(&Spec{
				Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.R(w), isa.R(w), isa.R(w)}, Extension: "BMI2", Attr: isa.AttrMicrocoded},
				MacroOps: 18, Uops: uN(ALU, 18), MSOps: 18,
			})
		}
	}
	return out
}

// genMovsAndLoads generates register movs (eliminated or ALU), nops,
// loads (the "[4,5] — memory loads" class), and pushes/pops.
func genMovsAndLoads() []*Spec {
	var out []*Spec
	add := func(sp *Spec) { out = append(out, sp) }

	// 32/64-bit reg-reg movs are resolved by register renaming and
	// use no ports (§4.1.2); 8/16-bit movs are ALU merges.
	for _, w := range []int{32, 64} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BASE", Attr: isa.AttrNoPorts | isa.AttrCommon},
			MacroOps: 1, Uops: nil,
		})
	}
	for _, w := range []int{8, 16} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.R(w), isa.R(w)}, Extension: "BASE"},
			MacroOps: 1, Uops: u1(ALU),
		})
	}
	// mov reg, imm (up to 32-bit immediates are ordinary ALU ops).
	for _, w := range []int{8, 16, 32} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.R(w), isa.I(w)}, Extension: "BASE", Attr: isa.AttrCommon},
			MacroOps: 1, Uops: u1(ALU),
		})
	}
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.R(64), isa.I(32)}, Extension: "BASE", Attr: isa.AttrCommon},
		MacroOps: 1, Uops: u1(ALU),
	})
	// mov reg64, imm64: special-cased in hardware, unreliable to
	// measure (§4.1.2).
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.R(64), isa.I(64)}, Extension: "BASE", Attr: isa.AttrMov64Imm},
		MacroOps: 1, Uops: u1(ALU),
	})

	// nop uses no µops at all.
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "nop", Extension: "BASE", Attr: isa.AttrNoPorts},
		MacroOps: 1, Uops: nil,
	})
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "nop", Operands: []isa.Operand{isa.R(32)}, Extension: "BASE", Attr: isa.AttrNoPorts},
		MacroOps: 1, Uops: nil,
	})

	// Loading movs: pure load µops, no ALU (§4.1.1: loading movs are
	// excluded from the µop postulate's +1).
	for _, w := range []int{8, 16, 32, 64} {
		attr := isa.AttrCommon
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.R(w), isa.M(w)}, Extension: "BASE", Attr: attr},
			MacroOps: 1, Uops: u1(LOAD),
		})
	}

	// pop: load + stack-pointer update handled by the stack engine.
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "pop", Operands: []isa.Operand{isa.R(64)}, Extension: "BASE", Attr: isa.AttrCommon},
		MacroOps: 1, Uops: u1(LOAD),
	})
	return out
}

// genStores generates the store forms, including the two improper
// blocking instructions of §4.3 (no single-µop instruction exists for
// the store port).
func genStores() []*Spec {
	var out []*Spec
	add := func(sp *Spec) { out = append(out, sp) }

	// Storing movs: a store µop on port 5 plus an ALU µop (§4.1.1,
	// Table 2: [5] + [6,7,8,9]).
	for _, w := range []int{8, 16, 32, 64} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.M(w), isa.R(w)}, Extension: "BASE", Attr: isa.AttrCommon},
			MacroOps: 1, Uops: cat(u1(STORE), u1(ALU)),
		})
		iw := w
		if iw == 64 {
			iw = 32
		}
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.M(w), isa.I(iw)}, Extension: "BASE", Attr: isa.AttrCommon},
			MacroOps: 1, Uops: cat(u1(STORE), u1(ALU)),
		})
	}
	// push: store + AGU.
	add(&Spec{
		Scheme:   isa.Scheme{Mnemonic: "push", Operands: []isa.Operand{isa.R(64)}, Extension: "BASE", Attr: isa.AttrCommon},
		MacroOps: 1, Uops: cat(u1(STORE), u1(ALU)),
	})

	// Vector stores: a store µop plus one data-delivery µop on the
	// vector side (Table 2: vmovapd MEM, XMM = [5] + [2]).
	for _, mn := range []string{"vmovaps", "vmovapd", "vmovups", "vmovupd", "vmovdqa", "vmovdqu"} {
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.M(128), isa.X()}, Extension: "AVX", Attr: isa.AttrCommon},
			MacroOps: 1, Uops: cat(u1(STORE), u1(VSHIFT)),
		})
		add(&Spec{
			Scheme:   isa.Scheme{Mnemonic: mn, Operands: []isa.Operand{isa.M(256), isa.Y()}, Extension: "AVX"},
			MacroOps: 2, Uops: cat(uN(STORE, 2), uN(VSHIFT, 2)),
		})
	}
	return out
}
