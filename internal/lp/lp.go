// Package lp implements a small dense linear-programming solver using
// the two-phase primal simplex method with Bland's anti-cycling rule.
//
// It exists for two reasons: (1) to solve the port-mapping throughput
// LP of Section 2.2 of Ritter & Hack (ASPLOS 2024) directly, as an
// independent cross-check of the combinatorial evaluator in package
// portmodel, and (2) as the fitting engine for the Palmed-style
// baseline, which computes resource pressures by linear programming.
//
// The solver handles problems of the form
//
//	minimize   cᵀx
//	subject to Ax {<=,=,>=} b,  x >= 0
//
// Problems are built incrementally with AddVariable / AddConstraint
// and solved with Solve. Sizes here are tiny (tens of variables), so
// no sparse machinery or numerical refinements beyond partial
// tolerance handling are needed.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // <=
	EQ                 // ==
	GE                 // >=
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrNotSolved is returned when accessing results before Solve.
var ErrNotSolved = errors.New("lp: problem not solved")

const eps = 1e-9

// Problem is a linear program under construction. All variables are
// implicitly non-negative. A Problem doubles as an arena: Reset keeps
// the allocated row storage for the next build, SetRHS retunes an
// existing structure in place, and SolveWarm re-solves from a basis
// recorded by a previous Solve.
type Problem struct {
	nvars    int
	obj      []float64 // minimization objective
	rows     [][]float64
	rels     []Relation
	rhs      []float64
	names    []string
	solved   bool
	status   Status
	x        []float64
	objVal   float64
	maximize bool
	// lastBasis is the optimal basis of the most recent successful
	// solve (column indices per tableau row), the warm-start seed.
	lastBasis []int
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// Reset empties the problem while keeping allocated storage, so one
// Problem value can be rebuilt repeatedly without reallocating the
// constraint arena.
func (p *Problem) Reset() {
	p.nvars = 0
	p.obj = p.obj[:0]
	p.rows = p.rows[:0]
	p.rels = p.rels[:0]
	p.rhs = p.rhs[:0]
	p.names = p.names[:0]
	p.solved = false
	p.maximize = false
	p.lastBasis = nil
}

// SetMaximize switches the problem to maximization of the objective.
func (p *Problem) SetMaximize() { p.maximize = true }

// AddVariable adds a non-negative variable with the given objective
// coefficient and returns its index.
func (p *Problem) AddVariable(objCoeff float64, name string) int {
	p.nvars++
	p.obj = append(p.obj, objCoeff)
	p.names = append(p.names, name)
	for i := range p.rows {
		p.rows[i] = append(p.rows[i], 0)
	}
	p.solved = false
	return p.nvars - 1
}

// AddConstraint adds sum(coeffs[i]*x[vars[i]]) rel rhs. vars and
// coeffs must have equal length; repeated variables accumulate.
func (p *Problem) AddConstraint(vars []int, coeffs []float64, rel Relation, rhs float64) error {
	if len(vars) != len(coeffs) {
		return fmt.Errorf("lp: %d vars but %d coeffs", len(vars), len(coeffs))
	}
	// Reuse a row freed by Reset when its capacity suffices.
	var row []float64
	if n := len(p.rows); n < cap(p.rows) && cap(p.rows[:n+1][n]) >= p.nvars {
		row = p.rows[:n+1][n][:p.nvars]
		for i := range row {
			row[i] = 0
		}
	} else {
		row = make([]float64, p.nvars)
	}
	for i, v := range vars {
		if v < 0 || v >= p.nvars {
			return fmt.Errorf("lp: variable index %d out of range", v)
		}
		row[v] += coeffs[i]
	}
	p.rows = append(p.rows, row)
	p.rels = append(p.rels, rel)
	p.rhs = append(p.rhs, rhs)
	p.solved = false
	return nil
}

// SetRHS replaces the right-hand side of constraint i, keeping its
// coefficient structure. Together with SolveWarm this turns a built
// problem into a reusable evaluator: retune the constants, re-solve
// from the previous basis.
func (p *Problem) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(p.rhs) {
		return fmt.Errorf("lp: constraint index %d out of range", i)
	}
	p.rhs[i] = rhs
	p.solved = false
	return nil
}

// Basis returns the optimal basis of the last successful Solve or
// SolveWarm (one tableau column index per constraint row), suitable
// for a later SolveWarm on the same structure.
func (p *Problem) Basis() ([]int, error) {
	if !p.solved || p.status != Optimal || p.lastBasis == nil {
		return nil, ErrNotSolved
	}
	return append([]int(nil), p.lastBasis...), nil
}

// NumVariables returns the number of variables added so far.
func (p *Problem) NumVariables() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.rows) }

// Value returns the value of variable v in the optimal solution.
func (p *Problem) Value(v int) (float64, error) {
	if !p.solved || p.status != Optimal {
		return 0, ErrNotSolved
	}
	if v < 0 || v >= p.nvars {
		return 0, fmt.Errorf("lp: variable index %d out of range", v)
	}
	return p.x[v], nil
}

// Objective returns the optimal objective value.
func (p *Problem) Objective() (float64, error) {
	if !p.solved || p.status != Optimal {
		return 0, ErrNotSolved
	}
	return p.objVal, nil
}

// buildTableau standardizes the problem: ensure rhs >= 0, add
// slack/surplus and artificial variables. Column layout:
// [structural | slack/surplus | artificial], last column rhs.
// It returns the tableau, the initial basis, the artificial column
// indices, the slack count, and the total column count (excluding
// rhs).
func (p *Problem) buildTableau() (t [][]float64, basis, artCols []int, nSlack, total int) {
	n := p.nvars
	mrows := len(p.rows)
	type rowSpec struct {
		coeffs []float64
		rhs    float64
		rel    Relation
	}
	rows := make([]rowSpec, mrows)
	for i := range p.rows {
		c := make([]float64, n)
		copy(c, p.rows[i])
		r := rowSpec{coeffs: c, rhs: p.rhs[i], rel: p.rels[i]}
		if r.rhs < 0 {
			for j := range r.coeffs {
				r.coeffs[j] = -r.coeffs[j]
			}
			r.rhs = -r.rhs
			switch r.rel {
			case LE:
				r.rel = GE
			case GE:
				r.rel = LE
			}
		}
		rows[i] = r
	}

	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, r := range rows {
		if r.rel != LE {
			nArt++
		}
	}
	total = n + nSlack + nArt
	t = make([][]float64, mrows)
	basis = make([]int, mrows)
	slackIdx, artIdx := n, n+nSlack
	artCols = make([]int, 0, nArt)
	for i, r := range rows {
		t[i] = make([]float64, total+1)
		copy(t[i], r.coeffs)
		t[i][total] = r.rhs
		switch r.rel {
		case LE:
			t[i][slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			t[i][slackIdx] = -1
			slackIdx++
			t[i][artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			t[i][artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
	}
	return t, basis, artCols, nSlack, total
}

// Solve runs two-phase simplex and returns the outcome.
func (p *Problem) Solve() Status {
	n := p.nvars
	t, basis, artCols, nSlack, total := p.buildTableau()

	// Phase 1: minimize sum of artificials.
	if len(artCols) > 0 {
		cost := make([]float64, total)
		for _, c := range artCols {
			cost[c] = 1
		}
		val, ok := simplex(t, basis, cost)
		if !ok || val > eps {
			p.solved, p.status = true, Infeasible
			return Infeasible
		}
		// Drive any artificial variables out of the basis.
		for i, b := range basis {
			if b >= n+nSlack {
				pivoted := false
				for j := 0; j < n+nSlack; j++ {
					if math.Abs(t[i][j]) > eps {
						pivot(t, basis, i, j)
						pivoted = true
						break
					}
				}
				if !pivoted {
					// Redundant row; harmless.
					_ = i
				}
			}
		}
		// Zero out artificial columns so they are never re-entered.
		for _, c := range artCols {
			for i := range t {
				t[i][c] = 0
			}
		}
	}

	return p.phase2(t, basis, total)
}

// SolveWarm re-solves the problem starting from a basis recorded by
// Basis on the same constraint structure (typically after SetRHS
// retuned the constants). It rebuilds the standardized tableau,
// pivots directly into the given basis, and — when that basis is
// still primal-feasible for the new constants — skips phase 1
// entirely and polishes with phase-2 simplex. Any mismatch (wrong
// length, artificial or unreachable columns, an infeasible basis)
// falls back to a cold Solve, so SolveWarm never returns a different
// status than Solve would.
func (p *Problem) SolveWarm(warm []int) Status {
	t, basis, artCols, nSlack, total := p.buildTableau()
	if len(warm) != len(basis) {
		return p.Solve()
	}
	n := p.nvars
	assigned := make([]bool, len(basis))
	for _, col := range warm {
		if col < 0 || col >= n+nSlack {
			return p.Solve()
		}
		// Pivot the largest unassigned entry of the target column, for
		// stability; any choice reaches the same basis.
		row, best := -1, eps
		for i := range t {
			if !assigned[i] {
				if a := math.Abs(t[i][col]); a > best {
					row, best = i, a
				}
			}
		}
		if row == -1 {
			return p.Solve()
		}
		pivot(t, basis, row, col)
		assigned[row] = true
	}
	// Primal feasibility under the new rhs; otherwise start over.
	for i := range t {
		if t[i][total] < -eps {
			return p.Solve()
		}
	}
	for _, c := range artCols {
		for i := range t {
			t[i][c] = 0
		}
	}
	return p.phase2(t, basis, total)
}

// phase2 optimizes the original objective over a primal-feasible
// tableau and records the solution and final basis.
func (p *Problem) phase2(t [][]float64, basis []int, total int) Status {
	n := p.nvars
	cost := make([]float64, total)
	for j := 0; j < n; j++ {
		if p.maximize {
			cost[j] = -p.obj[j]
		} else {
			cost[j] = p.obj[j]
		}
	}
	val, ok := simplex(t, basis, cost)
	if !ok {
		p.solved, p.status = true, Unbounded
		return Unbounded
	}
	if p.x == nil || len(p.x) != n {
		p.x = make([]float64, n)
	} else {
		for i := range p.x {
			p.x[i] = 0
		}
	}
	for i, b := range basis {
		if b < n {
			p.x[b] = t[i][total]
		}
	}
	if p.maximize {
		val = -val
	}
	p.objVal = val
	p.lastBasis = append(p.lastBasis[:0], basis...)
	p.solved, p.status = true, Optimal
	return Optimal
}

// simplex minimizes costᵀx over the tableau in place. Returns the
// objective value and false if unbounded. Uses Bland's rule.
func simplex(t [][]float64, basis []int, cost []float64) (float64, bool) {
	m := len(t)
	if m == 0 {
		return 0, true
	}
	total := len(t[0]) - 1
	// Reduced costs maintained directly each iteration (small problems).
	for iter := 0; iter < 10000; iter++ {
		// y = cost of basic variables; reduced cost_j = cost_j - yᵀa_j,
		// computed by eliminating basic columns from the cost row.
		red := make([]float64, total)
		copy(red, cost)
		objRow := 0.0
		for i, b := range basis {
			cb := cost[b]
			if cb == 0 {
				continue
			}
			for j := 0; j < total; j++ {
				red[j] -= cb * t[i][j]
			}
			objRow -= cb * t[i][total]
		}
		// Bland: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < total; j++ {
			if red[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return -objRow, true
		}
		// Ratio test, Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][total] / t[i][enter]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, false // unbounded
		}
		pivot(t, basis, leave, enter)
	}
	return 0, false // cycling safeguard; treated as failure
}

func pivot(t [][]float64, basis []int, row, col int) {
	pv := t[row][col]
	for j := range t[row] {
		t[row][j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
