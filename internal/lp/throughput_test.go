package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zenport/internal/portmodel"
)

func paperMapping() *portmodel.Mapping {
	m := portmodel.NewMapping(2)
	u1 := portmodel.MakePortSet(0, 1)
	u2 := portmodel.MakePortSet(1)
	m.Set("add", portmodel.Usage{{Ports: u1, Count: 1}})
	m.Set("mul", portmodel.Usage{{Ports: u2, Count: 1}})
	m.Set("fma", portmodel.Usage{{Ports: u1, Count: 2}, {Ports: u2, Count: 1}})
	return m
}

func TestLPThroughputMatchesPaperExamples(t *testing.T) {
	m := paperMapping()
	cases := []struct {
		e    portmodel.Experiment
		want float64
	}{
		{portmodel.Experiment{"mul": 2, "fma": 1}, 3},
		{portmodel.Experiment{"mul": 3, "fma": 1}, 4},
		{portmodel.Experiment{"add": 6, "fma": 1}, 4.5},
		{portmodel.Exp("add"), 0.5},
		{portmodel.Experiment{}, 0},
	}
	for _, c := range cases {
		got, err := InverseThroughput(m, c.e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-7 {
			t.Errorf("LP tp⁻¹(%v) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLPThroughputUnknownKey(t *testing.T) {
	if _, err := InverseThroughput(paperMapping(), portmodel.Exp("nope")); err == nil {
		t.Fatal("expected error")
	}
}

// randomMapping builds a random mapping over numPorts ports and a few
// instructions, used for the agreement property test.
func randomMapping(r *rand.Rand, numPorts, numInsns int) *portmodel.Mapping {
	m := portmodel.NewMapping(numPorts)
	for i := 0; i < numInsns; i++ {
		nUops := 1 + r.Intn(3)
		var u portmodel.Usage
		for j := 0; j < nUops; j++ {
			var ps portmodel.PortSet
			for ps == 0 {
				for k := 0; k < numPorts; k++ {
					if r.Intn(2) == 0 {
						ps |= 1 << uint(k)
					}
				}
			}
			u = append(u, portmodel.Uop{Ports: ps, Count: 1 + r.Intn(2)})
		}
		m.Set(key(i), u)
	}
	return m
}

func key(i int) string { return string(rune('a' + i)) }

// TestLPAgreesWithCombinatorialEvaluator is the central property test:
// the simplex solution of the Section 2.2 LP and the bottleneck-set
// formula must agree on random mappings and experiments.
func TestLPAgreesWithCombinatorialEvaluator(t *testing.T) {
	r := rand.New(rand.NewSource(20240427))
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for i := 0; i < iters; i++ {
		numPorts := 2 + r.Intn(5)
		numInsns := 1 + r.Intn(4)
		m := randomMapping(r, numPorts, numInsns)
		e := make(portmodel.Experiment)
		for j := 0; j < numInsns; j++ {
			if c := r.Intn(4); c > 0 {
				e[key(j)] = c
			}
		}
		want, err := m.InverseThroughput(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := InverseThroughput(m, e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("iter %d: LP %v != combinatorial %v\nmapping: %v\nexp: %v", i, got, want, m, e)
		}
	}
}

// TestThroughputMonotoneInPorts checks the monotonicity property the
// CEGAR theory lemmas depend on: widening any µop's port set can only
// decrease (or keep) the inverse throughput.
func TestThroughputMonotoneInPorts(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		numPorts := 2 + rr.Intn(4)
		m := randomMapping(rr, numPorts, 2)
		e := portmodel.Experiment{key(0): 1 + rr.Intn(3), key(1): 1 + rr.Intn(3)}
		base, err := m.InverseThroughput(e)
		if err != nil {
			return false
		}
		// Widen one random µop of one instruction.
		wide := m.Clone()
		u := wide.Usage[key(0)].Clone()
		u[0].Ports |= 1 << uint(rr.Intn(numPorts))
		wide.Set(key(0), u)
		after, err := wide.InverseThroughput(e)
		if err != nil {
			return false
		}
		return after <= base+1e-9
	}
	cfg := &quick.Config{MaxCount: 200, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestThroughputSuperadditive checks tp(e1 ∪ e2) <= tp(e1) + tp(e2)
// (mass is additive, max of sums <= sum of maxes), which underlies the
// equivalence check of Section 3.2.
func TestThroughputSubadditive(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 200; i++ {
		numPorts := 2 + r.Intn(4)
		m := randomMapping(r, numPorts, 2)
		e1 := portmodel.Experiment{key(0): 1 + r.Intn(3)}
		e2 := portmodel.Experiment{key(1): 1 + r.Intn(3)}
		both := e1.Clone()
		for k, v := range e2 {
			both[k] += v
		}
		t1, _ := m.InverseThroughput(e1)
		t2, _ := m.InverseThroughput(e2)
		tb, _ := m.InverseThroughput(both)
		if tb > t1+t2+1e-9 {
			t.Fatalf("subadditivity violated: %v > %v + %v", tb, t1, t2)
		}
		if tb < math.Max(t1, t2)-1e-9 {
			t.Fatalf("monotonicity violated: %v < max(%v,%v)", tb, t1, t2)
		}
	}
}
