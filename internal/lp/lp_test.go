package lp

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-7 }

func TestSimpleMin(t *testing.T) {
	// min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> optimum at (1.6, 1.2), obj 2.8.
	p := NewProblem()
	x := p.AddVariable(1, "x")
	y := p.AddVariable(1, "y")
	if err := p.AddConstraint([]int{x, y}, []float64{1, 2}, GE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]int{x, y}, []float64{3, 1}, GE, 6); err != nil {
		t.Fatal(err)
	}
	if st := p.Solve(); st != Optimal {
		t.Fatalf("status %v", st)
	}
	obj, _ := p.Objective()
	if !approx(obj, 2.8) {
		t.Fatalf("obj = %v, want 2.8", obj)
	}
	xv, _ := p.Value(x)
	yv, _ := p.Value(y)
	if !approx(xv, 1.6) || !approx(yv, 1.2) {
		t.Fatalf("solution (%v,%v), want (1.6,1.2)", xv, yv)
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> obj 36 at (2,6).
	p := NewProblem()
	p.SetMaximize()
	x := p.AddVariable(3, "x")
	y := p.AddVariable(5, "y")
	_ = p.AddConstraint([]int{x}, []float64{1}, LE, 4)
	_ = p.AddConstraint([]int{y}, []float64{2}, LE, 12)
	_ = p.AddConstraint([]int{x, y}, []float64{3, 2}, LE, 18)
	if st := p.Solve(); st != Optimal {
		t.Fatalf("status %v", st)
	}
	obj, _ := p.Objective()
	if !approx(obj, 36) {
		t.Fatalf("obj = %v, want 36", obj)
	}
}

func TestEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x <= 4 -> x=4, y=6, obj 16.
	p := NewProblem()
	x := p.AddVariable(1, "x")
	y := p.AddVariable(2, "y")
	_ = p.AddConstraint([]int{x, y}, []float64{1, 1}, EQ, 10)
	_ = p.AddConstraint([]int{x}, []float64{1}, LE, 4)
	if st := p.Solve(); st != Optimal {
		t.Fatalf("status %v", st)
	}
	obj, _ := p.Objective()
	if !approx(obj, 16) {
		t.Fatalf("obj = %v, want 16", obj)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, "x")
	_ = p.AddConstraint([]int{x}, []float64{1}, LE, 1)
	_ = p.AddConstraint([]int{x}, []float64{1}, GE, 2)
	if st := p.Solve(); st != Infeasible {
		t.Fatalf("status %v, want infeasible", st)
	}
	if _, err := p.Objective(); err == nil {
		t.Fatal("Objective should error when not optimal")
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(-1, "x") // min -x with x unbounded above
	_ = p.AddConstraint([]int{x}, []float64{1}, GE, 0)
	if st := p.Solve(); st != Unbounded {
		t.Fatalf("status %v, want unbounded", st)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -3  (i.e. x >= 3)
	p := NewProblem()
	x := p.AddVariable(1, "x")
	_ = p.AddConstraint([]int{x}, []float64{-1}, LE, -3)
	if st := p.Solve(); st != Optimal {
		t.Fatalf("status %v", st)
	}
	obj, _ := p.Objective()
	if !approx(obj, 3) {
		t.Fatalf("obj = %v, want 3", obj)
	}
}

func TestRepeatedVariableAccumulates(t *testing.T) {
	// min x s.t. x + x >= 4 -> x = 2.
	p := NewProblem()
	x := p.AddVariable(1, "x")
	_ = p.AddConstraint([]int{x, x}, []float64{1, 1}, GE, 4)
	if st := p.Solve(); st != Optimal {
		t.Fatalf("status %v", st)
	}
	obj, _ := p.Objective()
	if !approx(obj, 2) {
		t.Fatalf("obj = %v, want 2", obj)
	}
}

func TestConstraintErrors(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable(1, "x")
	if err := p.AddConstraint([]int{x}, []float64{1, 2}, LE, 1); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := p.AddConstraint([]int{5}, []float64{1}, LE, 1); err == nil {
		t.Fatal("expected out-of-range variable error")
	}
	if _, err := p.Value(0); err == nil {
		t.Fatal("Value before Solve should error")
	}
}

func TestDegenerateProblem(t *testing.T) {
	// No constraints: min of 0 over x>=0 is 0 at x=0.
	p := NewProblem()
	x := p.AddVariable(1, "x")
	if st := p.Solve(); st != Optimal {
		t.Fatalf("status %v", st)
	}
	v, _ := p.Value(x)
	if !approx(v, 0) {
		t.Fatalf("x = %v, want 0", v)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("Status.String broken")
	}
	if Status(42).String() == "" {
		t.Fatal("unknown status should still render")
	}
}
