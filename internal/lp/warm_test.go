package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"zenport/internal/portmodel"
)

// buildRandomLP constructs a random feasible-ish LP; the same
// construction is repeated for the warm and cold copies.
func buildRandomLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	nv := 2 + rng.Intn(4)
	for v := 0; v < nv; v++ {
		p.AddVariable(rng.Float64()*4-1, fmt.Sprintf("x%d", v))
	}
	nc := 1 + rng.Intn(4)
	for c := 0; c < nc; c++ {
		var vars []int
		var coeffs []float64
		for v := 0; v < nv; v++ {
			if rng.Intn(2) == 0 {
				vars = append(vars, v)
				coeffs = append(coeffs, rng.Float64()*4-1)
			}
		}
		if len(vars) == 0 {
			vars, coeffs = []int{0}, []float64{1}
		}
		rel := Relation(rng.Intn(3))
		if err := p.AddConstraint(vars, coeffs, rel, rng.Float64()*8-2); err != nil {
			panic(err)
		}
	}
	return p
}

// TestSolveWarmMatchesCold is the warm-start contract: after SetRHS
// retunes a solved problem, SolveWarm from the recorded basis reaches
// the same status and objective as a cold Solve.
func TestSolveWarmMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmUsable := 0
	for trial := 0; trial < 500; trial++ {
		p := buildRandomLP(rng)
		if p.Solve() != Optimal {
			continue
		}
		basis, err := p.Basis()
		if err != nil {
			t.Fatalf("trial %d: basis: %v", trial, err)
		}
		warmUsable++
		// Retune every rhs and compare warm vs cold on the same data.
		for round := 0; round < 3; round++ {
			for i := 0; i < p.NumConstraints(); i++ {
				if err := p.SetRHS(i, rng.Float64()*8-2); err != nil {
					t.Fatal(err)
				}
			}
			cold := NewProblem()
			for v := 0; v < p.nvars; v++ {
				cold.AddVariable(p.obj[v], p.names[v])
			}
			for i := range p.rows {
				vars := make([]int, 0, p.nvars)
				coeffs := make([]float64, 0, p.nvars)
				for v, cf := range p.rows[i] {
					if cf != 0 {
						vars = append(vars, v)
						coeffs = append(coeffs, cf)
					}
				}
				if len(vars) == 0 {
					vars, coeffs = []int{0}, []float64{0}
				}
				if err := cold.AddConstraint(vars, coeffs, p.rels[i], p.rhs[i]); err != nil {
					t.Fatal(err)
				}
			}
			ws := p.SolveWarm(basis)
			cs := cold.Solve()
			if ws != cs {
				t.Fatalf("trial %d round %d: warm status %v, cold %v", trial, round, ws, cs)
			}
			if ws == Optimal {
				wo, _ := p.Objective()
				co, _ := cold.Objective()
				if math.Abs(wo-co) > 1e-6*(1+math.Abs(co)) {
					t.Fatalf("trial %d round %d: warm objective %v, cold %v", trial, round, wo, co)
				}
				basis, err = p.Basis()
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if warmUsable == 0 {
		t.Fatal("no optimal random LPs generated; test is vacuous")
	}
}

// TestProblemResetReuse checks the arena behavior: a Reset problem
// rebuilds and solves correctly on recycled storage.
func TestProblemResetReuse(t *testing.T) {
	p := NewProblem()
	for round := 0; round < 5; round++ {
		p.Reset()
		x := p.AddVariable(1, "x")
		y := p.AddVariable(2, "y")
		if err := p.AddConstraint([]int{x, y}, []float64{1, 1}, GE, float64(round+1)); err != nil {
			t.Fatal(err)
		}
		if st := p.Solve(); st != Optimal {
			t.Fatalf("round %d: status %v", round, st)
		}
		obj, err := p.Objective()
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(round + 1); math.Abs(obj-want) > 1e-9 {
			t.Fatalf("round %d: objective %v, want %v", round, obj, want)
		}
	}
}

// TestThroughputEvaluatorMatchesOneShot compares the amortized
// evaluator against the one-shot LP and the combinatorial evaluator
// on random mappings.
func TestThroughputEvaluatorMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		numPorts := 2 + rng.Intn(5)
		m := portmodel.NewMapping(numPorts)
		numKeys := 1 + rng.Intn(4)
		for i := 0; i < numKeys; i++ {
			var u portmodel.Usage
			for j := 0; j <= rng.Intn(2); j++ {
				var ps portmodel.PortSet
				for ps == 0 {
					ps = portmodel.PortSet(rng.Intn(1 << numPorts))
				}
				u = append(u, portmodel.Uop{Ports: ps, Count: 1 + rng.Intn(2)})
			}
			m.Set(fmt.Sprintf("k%d", i), u)
		}
		ev, err := NewThroughputEvaluator(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for q := 0; q < 8; q++ {
			e := make(portmodel.Experiment)
			for term := 0; term <= rng.Intn(3); term++ {
				e[fmt.Sprintf("k%d", rng.Intn(numKeys))] += rng.Intn(4)
			}
			want, err := InverseThroughput(m, e)
			if err != nil {
				t.Fatalf("trial %d: one-shot: %v", trial, err)
			}
			got, err := ev.InverseThroughput(e)
			if err != nil {
				t.Fatalf("trial %d: evaluator: %v", trial, err)
			}
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("trial %d, %v: evaluator %v, one-shot %v", trial, e, got, want)
			}
			comb, err := m.InverseThroughput(e)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-comb) > 1e-6*(1+comb) {
				t.Fatalf("trial %d, %v: evaluator %v, combinatorial %v", trial, e, got, comb)
			}
		}
	}
}
