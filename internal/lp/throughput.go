package lp

import (
	"fmt"

	"zenport/internal/portmodel"
)

// InverseThroughput solves the port-mapping throughput LP of Section
// 2.2 of the paper directly with the simplex solver:
//
//	min t
//	s.t. (A) sum_k x_uk = mass(u)           for all µops u
//	     (B) sum_u x_uk = p_k               for all ports k
//	     (C) p_k <= t                       for all ports k
//	     (D) x_uk >= 0
//	     (E) x_uk = 0 if port k not admissible for u
//
// It is an independent cross-check of the combinatorial evaluator in
// portmodel (Mapping.InverseThroughput); property tests assert both
// agree on random mappings and experiments.
func InverseThroughput(m *portmodel.Mapping, e portmodel.Experiment) (float64, error) {
	// Collect µop masses (merged by port set, like the evaluator).
	type uop struct {
		ports portmodel.PortSet
		mass  float64
	}
	merged := make(map[portmodel.PortSet]float64)
	for key, n := range e {
		if n == 0 {
			continue
		}
		u, ok := m.Get(key)
		if !ok {
			return 0, fmt.Errorf("lp: no usage known for %q", key)
		}
		for _, x := range u {
			merged[x.Ports] += float64(n * x.Count)
		}
	}
	uops := make([]uop, 0, len(merged))
	for ps, mass := range merged {
		if mass > 0 {
			uops = append(uops, uop{ports: ps, mass: mass})
		}
	}
	if len(uops) == 0 {
		return 0, nil
	}

	p := NewProblem()
	tVar := p.AddVariable(1, "t")
	// x[u][k] only for admissible ports (constraint E by omission).
	xs := make([]map[int]int, len(uops))
	for ui, u := range uops {
		xs[ui] = make(map[int]int)
		for _, k := range u.ports.Ports() {
			xs[ui][k] = p.AddVariable(0, fmt.Sprintf("x_%d_%d", ui, k))
		}
	}
	// (A) all mass distributed.
	for ui, u := range uops {
		vars := make([]int, 0, len(xs[ui]))
		coeffs := make([]float64, 0, len(xs[ui]))
		for _, v := range xs[ui] {
			vars = append(vars, v)
			coeffs = append(coeffs, 1)
		}
		if err := p.AddConstraint(vars, coeffs, EQ, u.mass); err != nil {
			return 0, err
		}
	}
	// (B)+(C) folded: sum_u x_uk - t <= 0 for each port.
	for k := 0; k < m.NumPorts; k++ {
		vars := []int{tVar}
		coeffs := []float64{-1}
		for ui := range uops {
			if v, ok := xs[ui][k]; ok {
				vars = append(vars, v)
				coeffs = append(coeffs, 1)
			}
		}
		if len(vars) == 1 {
			continue
		}
		if err := p.AddConstraint(vars, coeffs, LE, 0); err != nil {
			return 0, err
		}
	}
	switch p.Solve() {
	case Optimal:
		return p.Objective()
	case Infeasible:
		return 0, fmt.Errorf("lp: throughput LP infeasible (bug)")
	default:
		return 0, fmt.Errorf("lp: throughput LP unbounded (bug)")
	}
}

// ThroughputEvaluator amortizes the throughput LP across many
// experiments on one mapping. The LP structure — one mass constraint
// per distinct port set of the mapping, one capacity constraint per
// port — is built once; each experiment only retunes the mass
// right-hand sides with SetRHS and re-solves warm from the previous
// optimal basis, falling back to a cold solve when the basis is no
// longer feasible. Values agree with InverseThroughput (both solve
// the same LP) within solver tolerance.
//
// A ThroughputEvaluator is not safe for concurrent use.
type ThroughputEvaluator struct {
	m       *portmodel.Mapping
	p       *Problem
	sets    []portmodel.PortSet
	setIdx  map[portmodel.PortSet]int
	massRow []int     // constraint row of (A) per port set
	mass    []float64 // per-experiment scratch
	basis   []int     // warm-start seed from the previous solve
}

// NewThroughputEvaluator builds the LP skeleton for all port sets
// appearing in the mapping.
func NewThroughputEvaluator(m *portmodel.Mapping) (*ThroughputEvaluator, error) {
	ev := &ThroughputEvaluator{m: m, setIdx: make(map[portmodel.PortSet]int)}
	for _, key := range m.Keys() {
		u, _ := m.Get(key)
		for _, x := range u {
			if x.Count == 0 {
				continue
			}
			if _, ok := ev.setIdx[x.Ports]; !ok {
				ev.setIdx[x.Ports] = len(ev.sets)
				ev.sets = append(ev.sets, x.Ports)
			}
		}
	}
	p := NewProblem()
	tVar := p.AddVariable(1, "t")
	xs := make([]map[int]int, len(ev.sets))
	for si, ps := range ev.sets {
		xs[si] = make(map[int]int)
		for _, k := range ps.Ports() {
			xs[si][k] = p.AddVariable(0, fmt.Sprintf("x_%d_%d", si, k))
		}
	}
	// (A) all mass distributed; rhs retuned per experiment.
	ev.massRow = make([]int, len(ev.sets))
	for si := range ev.sets {
		vars := make([]int, 0, len(xs[si]))
		coeffs := make([]float64, 0, len(xs[si]))
		for _, v := range xs[si] {
			vars = append(vars, v)
			coeffs = append(coeffs, 1)
		}
		ev.massRow[si] = p.NumConstraints()
		if err := p.AddConstraint(vars, coeffs, EQ, 0); err != nil {
			return nil, err
		}
	}
	// (B)+(C) folded: sum over sets admitting port k minus t <= 0.
	for k := 0; k < m.NumPorts; k++ {
		vars := []int{tVar}
		coeffs := []float64{-1}
		for si := range ev.sets {
			if v, ok := xs[si][k]; ok {
				vars = append(vars, v)
				coeffs = append(coeffs, 1)
			}
		}
		if len(vars) == 1 {
			continue
		}
		if err := p.AddConstraint(vars, coeffs, LE, 0); err != nil {
			return nil, err
		}
	}
	ev.p = p
	ev.mass = make([]float64, len(ev.sets))
	return ev, nil
}

// InverseThroughput solves the LP for one experiment, reusing the
// built structure and the previous basis.
func (ev *ThroughputEvaluator) InverseThroughput(e portmodel.Experiment) (float64, error) {
	for i := range ev.mass {
		ev.mass[i] = 0
	}
	for key, n := range e {
		if n == 0 {
			continue
		}
		u, ok := ev.m.Get(key)
		if !ok {
			return 0, fmt.Errorf("lp: no usage known for %q", key)
		}
		for _, x := range u {
			if x.Count == 0 {
				continue
			}
			ev.mass[ev.setIdx[x.Ports]] += float64(n * x.Count)
		}
	}
	for si, row := range ev.massRow {
		// Negative accumulated mass matches InverseThroughput's
		// behavior of dropping non-positive µops.
		m := ev.mass[si]
		if m < 0 {
			m = 0
		}
		if err := ev.p.SetRHS(row, m); err != nil {
			return 0, err
		}
	}
	var st Status
	if ev.basis != nil {
		st = ev.p.SolveWarm(ev.basis)
	} else {
		st = ev.p.Solve()
	}
	switch st {
	case Optimal:
		if b, err := ev.p.Basis(); err == nil {
			ev.basis = b
		}
		return ev.p.Objective()
	case Infeasible:
		return 0, fmt.Errorf("lp: throughput LP infeasible (bug)")
	default:
		return 0, fmt.Errorf("lp: throughput LP unbounded (bug)")
	}
}
