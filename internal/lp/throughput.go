package lp

import (
	"fmt"

	"zenport/internal/portmodel"
)

// InverseThroughput solves the port-mapping throughput LP of Section
// 2.2 of the paper directly with the simplex solver:
//
//	min t
//	s.t. (A) sum_k x_uk = mass(u)           for all µops u
//	     (B) sum_u x_uk = p_k               for all ports k
//	     (C) p_k <= t                       for all ports k
//	     (D) x_uk >= 0
//	     (E) x_uk = 0 if port k not admissible for u
//
// It is an independent cross-check of the combinatorial evaluator in
// portmodel (Mapping.InverseThroughput); property tests assert both
// agree on random mappings and experiments.
func InverseThroughput(m *portmodel.Mapping, e portmodel.Experiment) (float64, error) {
	// Collect µop masses (merged by port set, like the evaluator).
	type uop struct {
		ports portmodel.PortSet
		mass  float64
	}
	merged := make(map[portmodel.PortSet]float64)
	for key, n := range e {
		if n == 0 {
			continue
		}
		u, ok := m.Get(key)
		if !ok {
			return 0, fmt.Errorf("lp: no usage known for %q", key)
		}
		for _, x := range u {
			merged[x.Ports] += float64(n * x.Count)
		}
	}
	uops := make([]uop, 0, len(merged))
	for ps, mass := range merged {
		if mass > 0 {
			uops = append(uops, uop{ports: ps, mass: mass})
		}
	}
	if len(uops) == 0 {
		return 0, nil
	}

	p := NewProblem()
	tVar := p.AddVariable(1, "t")
	// x[u][k] only for admissible ports (constraint E by omission).
	xs := make([]map[int]int, len(uops))
	for ui, u := range uops {
		xs[ui] = make(map[int]int)
		for _, k := range u.ports.Ports() {
			xs[ui][k] = p.AddVariable(0, fmt.Sprintf("x_%d_%d", ui, k))
		}
	}
	// (A) all mass distributed.
	for ui, u := range uops {
		vars := make([]int, 0, len(xs[ui]))
		coeffs := make([]float64, 0, len(xs[ui]))
		for _, v := range xs[ui] {
			vars = append(vars, v)
			coeffs = append(coeffs, 1)
		}
		if err := p.AddConstraint(vars, coeffs, EQ, u.mass); err != nil {
			return 0, err
		}
	}
	// (B)+(C) folded: sum_u x_uk - t <= 0 for each port.
	for k := 0; k < m.NumPorts; k++ {
		vars := []int{tVar}
		coeffs := []float64{-1}
		for ui := range uops {
			if v, ok := xs[ui][k]; ok {
				vars = append(vars, v)
				coeffs = append(coeffs, 1)
			}
		}
		if len(vars) == 1 {
			continue
		}
		if err := p.AddConstraint(vars, coeffs, LE, 0); err != nil {
			return 0, err
		}
	}
	switch p.Solve() {
	case Optimal:
		return p.Objective()
	case Infeasible:
		return 0, fmt.Errorf("lp: throughput LP infeasible (bug)")
	default:
		return 0, fmt.Errorf("lp: throughput LP unbounded (bug)")
	}
}
