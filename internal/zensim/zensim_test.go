package zensim

import (
	"math"
	"testing"

	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
)

var testDB = zen.Build()

func quiet(t *testing.T, cfg Config) *Machine {
	t.Helper()
	cfg.Noise = -1 // disable noise
	return NewMachine(testDB, cfg)
}

func invTP(t *testing.T, m *Machine, e portmodel.Experiment) float64 {
	t.Helper()
	h := measure.NewHarness(m)
	h.Reps = 1
	v, err := h.InvThroughput(e)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSingleInstructionThroughputs(t *testing.T) {
	m := quiet(t, Config{})
	cases := []struct {
		key  string
		want float64
	}{
		{"add GPR[32], GPR[32]", 0.25},   // 4 ALU ports
		{"vpor XMM, XMM, XMM", 0.25},     // 4 FP pipes
		{"vpaddd XMM, XMM, XMM", 1. / 3}, // 3 ports
		{"vminps XMM, XMM, XMM", 0.5},    // 2 ports
		{"vpslld XMM, XMM, XMM", 1},      // 1 port
		{"mov GPR[32], MEM[32]", 0.5},    // 2 load ports
		{"imul GPR[32], GPR[32]", 1},     // 1 port, no anomaly alone
		{"vpcmpeqq YMM, YMM, YMM", 1},    // 2 µops on [0,3]
	}
	for _, c := range cases {
		got := invTP(t, m, portmodel.Exp(c.key))
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("tp⁻¹(%s) = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestFrontendBottleneck(t *testing.T) {
	m := quiet(t, Config{})
	// 10 single-µop ALU adds: port time 10/4 = 2.5, frontend 10/5 = 2.
	got := invTP(t, m, portmodel.Experiment{"add GPR[32], GPR[32]": 10})
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("10 adds: %v, want 2.5", got)
	}
	// nops are bounded only by the frontend: 10/5 = 2 cycles.
	got = invTP(t, m, portmodel.Experiment{"nop": 10})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("10 nops: %v, want 2", got)
	}
	// Eliminated movs likewise.
	got = invTP(t, m, portmodel.Experiment{"mov GPR[64], GPR[64]": 5})
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("5 eliminated movs: %v, want 1", got)
	}
}

func TestMixedALUAndFPSustainsFiveIPC(t *testing.T) {
	// §4: five blocking instructions per cycle are possible when
	// they spread across ALU and FP ports.
	m := quiet(t, Config{})
	e := portmodel.Experiment{
		"add GPR[32], GPR[32]": 4,
		"vpor XMM, XMM, XMM":   4,
		"mov GPR[32], MEM[32]": 2,
	}
	// Port time: 4/4 = 1 (ALU), 4/4 = 1 (FP), 2/2 = 1 (loads);
	// frontend: 10/5 = 2 -> frontend-bound at 2 cycles.
	got := invTP(t, m, e)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("mixed kernel: %v, want 2", got)
	}
}

func TestRetiredOpsCountMacroOps(t *testing.T) {
	// §4.1.1: the "Retired Uops" counter counts macro-ops: an
	// add-with-memory reports 1, not 2.
	m := quiet(t, Config{})
	c, err := m.Execute([]string{"add GPR[32], MEM[32]"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops != 10 {
		t.Fatalf("Ops = %d, want 10 (macro-ops, not µops)", c.Ops)
	}
	// 256-bit AVX is double-pumped: 2 macro-ops.
	c, err = m.Execute([]string{"vpaddd YMM, YMM, YMM"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ops != 20 {
		t.Fatalf("Ops = %d, want 20", c.Ops)
	}
}

func TestImulAnomaly(t *testing.T) {
	m := quiet(t, Config{})
	// §4.3: 4×add + imul measures ≈1.5 cycles, not 1.25 or 1.0.
	e := portmodel.Experiment{"add GPR[32], GPR[32]": 4, "imul GPR[32], GPR[32]": 1}
	got := invTP(t, m, e)
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("add+imul anomaly: %v, want 1.5", got)
	}
	// With anomalies disabled the model value 1.25 appears.
	m2 := quiet(t, Config{DisableAnomalies: true})
	got = invTP(t, m2, e)
	if math.Abs(got-1.25) > 1e-9 {
		t.Fatalf("ideal add+imul: %v, want 1.25", got)
	}
}

func TestNonPipelinedSlower(t *testing.T) {
	m := quiet(t, Config{})
	got := invTP(t, m, portmodel.Exp("vdivps XMM, XMM, XMM"))
	if got < 5 {
		t.Fatalf("vdivps: %v, expected non-pipelined slowness", got)
	}
}

func TestMicrocodedFrontendStall(t *testing.T) {
	m := quiet(t, Config{})
	// bsf: 8 MS ops at 4/cycle = 2 cycles frontend; 8 ALU µops over
	// 4 ports = 2 cycles backend. Alone: 2 cycles.
	got := invTP(t, m, portmodel.Exp("bsf GPR[64], GPR[64]"))
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("bsf alone: %v, want 2", got)
	}
	// vphaddw with 16 vpor blockers: port time (16+4)/4 = 5 via FP
	// pipes... but the MS adds frontend serialization: 16/5 + 4/4 =
	// 4.2; port time dominates here, yet with ALU blockers the MS
	// effect is visible:
	aluFlood := portmodel.Experiment{"add GPR[32], GPR[32]": 16, "vphaddw XMM, XMM, XMM": 1}
	got = invTP(t, m, aluFlood)
	// Port time: ALU 16/4 = 4; FP µops of vphaddw don't block ALUs.
	// Frontend: 16/5 + 4/4 = 4.2 > 4 -> the MS bottleneck shows as
	// extra time, which §4.4 reports as spurious µops.
	if math.Abs(got-4.2) > 1e-9 {
		t.Fatalf("vphaddw+ALU flood: %v, want 4.2", got)
	}
}

func TestUnstablePairInstability(t *testing.T) {
	// cmov paired with another instruction must give unstable
	// measurements across harness runs (bimodal offsets).
	m := NewMachine(testDB, Config{Noise: -1, Seed: 7})
	e := portmodel.Experiment{"cmove GPR[32], GPR[32]": 1, "add GPR[32], GPR[32]": 1}
	kernel := []string{"cmove GPR[32], GPR[32]", "add GPR[32], GPR[32]"}
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		c, err := m.Execute(kernel, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cycles > 0.6 {
			seen["slow"] = true
		} else {
			seen["fast"] = true
		}
	}
	if !seen["slow"] || !seen["fast"] {
		t.Fatalf("expected bimodal cmov measurements, saw %v", seen)
	}
	_ = e
	// Alone it is stable.
	c1, _ := m.Execute([]string{"cmove GPR[32], GPR[32]"}, 100)
	c2, _ := m.Execute([]string{"cmove GPR[32], GPR[32]"}, 100)
	if math.Abs(c1.Cycles-c2.Cycles) > 1e-9 {
		t.Fatal("cmov alone should be stable")
	}
}

func TestThreeReadInterference(t *testing.T) {
	m := quiet(t, Config{})
	// FMA with FP partners is slower than the model.
	e := portmodel.Experiment{"vfmadd132ps XMM, XMM, XMM": 2, "vaddps XMM, XMM, XMM": 2}
	got := invTP(t, m, e)
	// Model: fma on [0,1] mass 2, vaddps on [2,3] mass 2 -> 1 cycle;
	// interference adds 2/3.
	if got < 1.5 {
		t.Fatalf("fma interference missing: %v", got)
	}
}

func TestPerPortCountersOnlyInIntelMode(t *testing.T) {
	m := quiet(t, Config{})
	c, err := m.Execute([]string{"add GPR[32], GPR[32]"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.PortOps != nil {
		t.Fatal("Zen+ mode must not expose per-port counters")
	}
	if len(c.FPPortOps) != 4 {
		t.Fatal("Zen+ mode should expose the 4 FP pipe counters")
	}
	mi := quiet(t, Config{PerPortCounters: true})
	c, err = mi.Execute([]string{"add GPR[32], GPR[32]"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PortOps) != zen.NumPorts {
		t.Fatalf("per-port counters: %v", c.PortOps)
	}
	// The add µops must all land on ALU ports 6..9.
	sum := 0.0
	for k := 6; k <= 9; k++ {
		sum += c.PortOps[k]
	}
	if math.Abs(sum-4) > 1e-9 {
		t.Fatalf("ALU load sum %v, want 4", sum)
	}
}

func TestPortLoadDistributionAvoidsBlockedPorts(t *testing.T) {
	// Flexible µops must evade ports flooded by constrained µops:
	// with 4 vpslld (port 2) and 1 vpor ([0..3]), the vpor µop must
	// not use port 2.
	mi := quiet(t, Config{PerPortCounters: true})
	c, err := mi.Execute([]string{
		"vpslld XMM, XMM, XMM", "vpslld XMM, XMM, XMM",
		"vpslld XMM, XMM, XMM", "vpslld XMM, XMM, XMM",
		"vpor XMM, XMM, XMM",
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.PortOps[2]-4) > 1e-9 {
		t.Fatalf("port 2 load %v, want exactly the 4 shifts", c.PortOps[2])
	}
}

func TestExecuteErrors(t *testing.T) {
	m := quiet(t, Config{})
	if _, err := m.Execute([]string{"bogus"}, 1); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
	if _, err := m.Execute([]string{"nop"}, 0); err == nil {
		t.Fatal("expected iteration-count error")
	}
}

func TestNoiseIsAppliedAndMedianFilters(t *testing.T) {
	m := NewMachine(testDB, Config{Noise: 0.01, Seed: 3})
	h := measure.NewHarness(m)
	v, err := h.InvThroughput(portmodel.Experiment{"add GPR[32], GPR[32]": 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.0) > 0.02 {
		t.Fatalf("median-filtered throughput %v, want ≈1.0", v)
	}
}

func TestCycleBackendMatchesAnalyticOnSimpleKernels(t *testing.T) {
	an := quiet(t, Config{})
	cy := quiet(t, Config{Backend: Cycle})
	cases := []portmodel.Experiment{
		portmodel.Exp("add GPR[32], GPR[32]"),
		portmodel.Experiment{"add GPR[32], GPR[32]": 4},
		portmodel.Experiment{"vpslld XMM, XMM, XMM": 2},
		portmodel.Experiment{"vpor XMM, XMM, XMM": 2, "vpaddd XMM, XMM, XMM": 2},
	}
	for _, e := range cases {
		a := invTP(t, an, e)
		c := invTP(t, cy, e)
		if math.Abs(a-c) > 0.3 {
			t.Errorf("%v: analytic %v vs cycle %v", e, a, c)
		}
	}
}

func TestRmaxAndNumPorts(t *testing.T) {
	m := quiet(t, Config{})
	if m.NumPorts() != 10 || m.Rmax() != 5 {
		t.Fatalf("NumPorts=%d Rmax=%v", m.NumPorts(), m.Rmax())
	}
	if m.DB() != testDB {
		t.Fatal("DB accessor broken")
	}
}

// TestNoiseOrderIndependence pins the determinism contract of the
// batch engine: the noise drawn for the i-th execution of a kernel
// depends only on (seed, kernel, i), never on which other kernels ran
// in between. Two machines execute the same multiset of kernels in
// different interleavings and must report identical cycle counts per
// (kernel, occurrence).
func TestNoiseOrderIndependence(t *testing.T) {
	kernels := [][]string{
		{"add GPR[32], GPR[32]"},
		{"vpor XMM, XMM, XMM"},
		{"add GPR[32], GPR[32]", "vminps XMM, XMM, XMM"},
	}
	run := func(order []int) map[int][]float64 {
		m := NewMachine(testDB, Config{Noise: 0.01, Seed: 17})
		out := make(map[int][]float64)
		for _, ki := range order {
			c, err := m.Execute(kernels[ki], 100)
			if err != nil {
				t.Fatal(err)
			}
			out[ki] = append(out[ki], c.Cycles)
		}
		return out
	}
	// Each kernel appears three times; the interleavings differ.
	a := run([]int{0, 1, 2, 0, 1, 2, 0, 1, 2})
	b := run([]int{2, 2, 1, 0, 0, 0, 1, 1, 2})
	for ki := range kernels {
		if len(a[ki]) != 3 || len(b[ki]) != 3 {
			t.Fatalf("kernel %d executed %d/%d times", ki, len(a[ki]), len(b[ki]))
		}
		for i := range a[ki] {
			if a[ki][i] != b[ki][i] {
				t.Fatalf("kernel %d occurrence %d: %v vs %v under reordering", ki, i, a[ki][i], b[ki][i])
			}
		}
	}
	// And the draws must still vary across occurrences of one kernel
	// (the per-kernel repetition index feeds the seed).
	if a[0][0] == a[0][1] && a[0][1] == a[0][2] {
		t.Fatal("repeated executions drew identical noise")
	}
}
