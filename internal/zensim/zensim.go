// Package zensim simulates the AMD Zen+ core of the paper's case
// study (§4). It substitutes for the Ryzen 5 2600X test system: the
// measurement harness executes steady-state kernels against it and
// reads back exactly the sparse performance counters Zen+ provides —
// noisy cycles, retired instructions, and the PMCx0C1 "Retired Uops"
// counter that actually counts macro-ops (§4.1.1) — plus the per-pipe
// FP counters. An optional Intel-like mode additionally exposes
// per-port µop counters so that the original uops.info algorithm
// (which Zen+ cannot run) can be executed as a baseline.
//
// Two backends are provided:
//
//   - the analytic backend computes steady-state throughput from the
//     ground-truth port mapping via the exact LP semantics, combined
//     with the frontend/retire bottleneck of 5 macro-ops per cycle,
//     the microcode sequencer (4 ops/cycle, stalling decode), and the
//     documented Zen+ anomalies;
//   - the cycle backend is a discrete cycle-level model with a
//     greedy oldest-first scheduler, used for the scheduler-fidelity
//     ablation (DESIGN.md E12).
package zensim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"

	"zenport/internal/isa"
	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
)

// Backend selects the execution model.
type Backend int

// Backends.
const (
	// Analytic follows the port mapping model exactly (plus
	// documented anomalies); this is the default and the setting
	// under which the inference pipeline is evaluated.
	Analytic Backend = iota
	// Cycle is the discrete cycle-level model with a greedy
	// scheduler.
	Cycle
)

// Config configures a simulated machine.
type Config struct {
	// Noise is the relative standard deviation of cycle
	// measurements. The default (via NewMachine) is 0.3%.
	Noise float64
	// Seed seeds the measurement-noise RNG.
	Seed int64
	// PerPortCounters enables Intel-like per-port µop counters.
	PerPortCounters bool
	// DisableAnomalies turns off all Zen+ quirks, yielding an ideal
	// port-mapping-model machine (useful for tests and ablations).
	DisableAnomalies bool
	// Backend selects the execution model.
	Backend Backend
}

// Machine is a simulated Zen+ processor.
//
// Noise is drawn from a per-execution RNG derived from (global seed,
// kernel hash, per-kernel repetition index) rather than a shared
// stream, so concurrent measurement of distinct kernels — the batch
// engine's worker pool — observes exactly the same noise as a
// sequential run: the draws for one kernel depend only on that
// kernel and on how many times it has run before, never on what else
// runs in between.
type Machine struct {
	db  *zen.DB
	cfg Config

	mu sync.Mutex
	// seq counts prior executions per kernel hash; it feeds the
	// repetition index into the per-execution RNG seed so repeated
	// runs of one kernel still vary (bimodal instability, §4.1.2).
	seq map[uint64]uint64
}

var _ measure.Processor = (*Machine)(nil)

// NewMachine builds a machine over the given database.
func NewMachine(db *zen.DB, cfg Config) *Machine {
	if cfg.Noise == 0 {
		cfg.Noise = 0.003
	}
	if cfg.Noise < 0 {
		cfg.Noise = 0
	}
	return &Machine{db: db, cfg: cfg, seq: make(map[uint64]uint64)}
}

// KernelHash is the FNV-64a identity of a kernel (scheme keys joined
// with NUL separators), the key of the per-kernel repetition counter.
// It is exported for layers that must share the machine's per-kernel
// identity — the chaos fault injector keys its per-kernel round
// counters with it so RestoreExecCount addresses the same streams.
func KernelHash(kernel []string) uint64 {
	h := fnv.New64a()
	for _, k := range kernel {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// ExecSeed derives the deterministic RNG seed for execution index n of
// the kernel with hash kh under the global seed: a splitmix64 chain
// over (seed, kh, n). This is the per-execution RNG discipline that
// makes measurements worker-count invariant; it is exported so other
// deterministic per-(kernel, index) decision streams (fault plans) can
// reuse it with their own seed salt.
func ExecSeed(seed int64, kh, n uint64) int64 {
	z := splitmix64(uint64(seed))
	z = splitmix64(z ^ kh)
	z = splitmix64(z ^ n)
	return int64(z)
}

// kernelRNG returns the RNG for one execution of kernel, advancing the
// kernel's repetition counter.
func (m *Machine) kernelRNG(kernel []string) *rand.Rand {
	kh := KernelHash(kernel)
	m.mu.Lock()
	n := m.seq[kh]
	m.seq[kh] = n + 1
	m.mu.Unlock()
	return rand.New(rand.NewSource(ExecSeed(m.cfg.Seed, kh, n)))
}

// RestoreExecCount fast-forwards kernel's repetition counter to
// executions, as if the kernel had already run that many times. The
// persistence layer calls this when warming the cache from a journal:
// a resumed process starts with zero counters, and without the
// fast-forward a re-measured kernel would draw the noise of a first
// execution instead of the noise the interrupted run would have drawn
// — breaking the byte-identical-resume guarantee. The counter only
// moves forward; executions already performed in this process are
// never rewound.
func (m *Machine) RestoreExecCount(kernel []string, executions uint64) {
	kh := KernelHash(kernel)
	m.mu.Lock()
	if executions > m.seq[kh] {
		m.seq[kh] = executions
	}
	m.mu.Unlock()
}

// Fingerprint identifies the simulated processor configuration for
// the persistence layer: results journaled under a different
// fingerprint come from a different machine and must not be reused.
func (m *Machine) Fingerprint() string {
	return fmt.Sprintf("zensim:v1 backend=%d seed=%d noise=%g perport=%t anomalies=%t",
		m.cfg.Backend, m.cfg.Seed, m.cfg.Noise, m.cfg.PerPortCounters, !m.cfg.DisableAnomalies)
}

// splitmix64 is the finalizer of the SplitMix64 generator; it
// scatters structured inputs (small seeds, similar hashes) across
// the full 64-bit state space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NumPorts returns the port count of the Zen+ model.
func (m *Machine) NumPorts() int { return zen.NumPorts }

// Rmax returns the 5-IPC frontend/retire bottleneck.
func (m *Machine) Rmax() float64 { return zen.Rmax }

// DB returns the underlying database.
func (m *Machine) DB() *zen.DB { return m.db }

// Execute implements measure.Processor.
func (m *Machine) Execute(kernel []string, iterations int) (measure.Counters, error) {
	if iterations < 1 {
		return measure.Counters{}, fmt.Errorf("zensim: iterations must be positive")
	}
	specs := make([]*zen.Spec, len(kernel))
	for i, key := range kernel {
		sp, ok := m.db.Get(key)
		if !ok {
			return measure.Counters{}, fmt.Errorf("zensim: unknown scheme %q", key)
		}
		specs[i] = sp
	}

	rng := m.kernelRNG(kernel)

	var perIter float64
	var portLoads []float64
	var err error
	switch m.cfg.Backend {
	case Cycle:
		perIter, portLoads, err = m.cycleExecute(specs)
	default:
		perIter, portLoads, err = m.analyticExecute(specs, rng)
	}
	if err != nil {
		return measure.Counters{}, err
	}

	cycles := perIter * float64(iterations)
	// On Zen+ the "Retired Uops" counter counts macro-ops (§4.1.1);
	// the Intel-like per-port mode counts true µops, as the original
	// uops.info algorithm requires.
	ops := 0
	for _, sp := range specs {
		if m.cfg.PerPortCounters {
			ops += sp.Uops.TotalUops()
		} else {
			ops += sp.MacroOps
		}
	}

	if m.cfg.Noise > 0 {
		cycles *= 1 + rng.NormFloat64()*m.cfg.Noise
	}
	if cycles < 0 {
		cycles = 0
	}

	c := measure.Counters{
		Cycles:       cycles,
		Instructions: uint64(len(kernel) * iterations),
		Ops:          uint64(ops * iterations),
	}
	// FP pipe counters (ports 0..3) are always available on Zen+.
	fp := make([]float64, 4)
	for k := 0; k < 4; k++ {
		fp[k] = portLoads[k] * float64(iterations)
	}
	c.FPPortOps = fp
	if m.cfg.PerPortCounters {
		all := make([]float64, zen.NumPorts)
		for k := range all {
			all[k] = portLoads[k] * float64(iterations)
		}
		c.PortOps = all
	}
	return c, nil
}

// analyticExecute computes the steady-state inverse throughput of one
// kernel iteration plus the per-port µop loads of an optimal
// schedule.
func (m *Machine) analyticExecute(specs []*zen.Spec, rng *rand.Rand) (float64, []float64, error) {
	// Accumulate occupancy-weighted µop mass per port set.
	mass := make(map[portmodel.PortSet]float64)
	for _, sp := range specs {
		for _, u := range sp.Uops {
			mass[u.Ports] += float64(u.Count) * sp.Occupancy
		}
	}
	portTime, loads := optimalLoads(mass, zen.NumPorts)

	// Frontend: directly-decoded macro-ops flow at Rmax per cycle;
	// microcoded instructions switch to the MS at MSRate ops per
	// cycle while the rest of the frontend stalls (§4.4).
	direct, msOps := 0, 0
	for _, sp := range specs {
		if sp.MSOps > 0 {
			msOps += sp.MSOps
		} else {
			direct += sp.MacroOps
		}
	}
	frontend := float64(direct)/zen.Rmax + float64(msOps)/zen.MSRate

	t := portTime
	if frontend > t {
		t = frontend
	}
	if !m.cfg.DisableAnomalies {
		t += m.anomalyExtra(specs, mass, rng)
	}
	return t, loads, nil
}

// anomalyExtra models the Zen+ behaviours of §4.1–§4.3 that fall
// outside the port mapping model. It returns additional cycles per
// kernel iteration.
func (m *Machine) anomalyExtra(specs []*zen.Spec, mass map[portmodel.PortSet]float64, rng *rand.Rand) float64 {
	distinct := make(map[string]bool, len(specs))
	for _, sp := range specs {
		distinct[sp.Key()] = true
	}
	mixed := len(distinct) > 1

	extra := 0.0
	for _, sp := range specs {
		a := sp.Scheme.Attr
		switch {
		case a.Has(isa.AttrImulAnomaly):
			// §4.3: imul mixed with ALU ops runs slower than any
			// port assignment explains (4×add + imul ≈ 1.5 cycles).
			if mixed && m.othersUseALU(specs, sp) {
				extra += 0.25
			}
		case a.Has(isa.AttrVecMulSlow):
			// §4.3: vpmuldq experiments run slower than their port
			// usage implies. The slowdown grows with the amount of
			// co-scheduled work, so simple pairs (as used by the
			// §4.2 equivalence filter) still look clean while the
			// CEGAR-generated experiments do not.
			if others := len(specs) - countKey(specs, sp.Key()); others >= 2 {
				extra += 0.08 * float64(others-1)
			}
		case a.Has(isa.AttrXferInconsistent):
			// §4.3: vmovd shows resource conflicts that depend
			// inconsistently on the partner instructions; they only
			// materialize once at least two partners compete.
			if mixed && len(specs) >= 3 {
				extra += m.xferConflict(distinct)
			}
		case a.Has(isa.AttrThreeRead):
			// §4.2: three-read FP ops occupy the data lines of a
			// third FP port, which then has to idle.
			if mixed && m.othersUseFP(specs, sp) {
				extra += 1.0 / 3.0
			}
		case a.Has(isa.AttrHardwired):
			// §4.1.2: hardwired operands create dependency chains.
			extra += 0.5
		}
		// §4.2: unstable-pair instructions flip between fast and
		// slow runs when benchmarked with others; §4.1.2: 64-bit
		// immediate movs are unreliable even alone.
		if a.Has(isa.AttrUnstablePair) && mixed || a.Has(isa.AttrMov64Imm) {
			if rng.Intn(2) == 1 {
				extra += 0.35
			}
		}
	}
	return extra
}

// countKey counts kernel slots holding the given scheme key.
func countKey(specs []*zen.Spec, key string) int {
	n := 0
	for _, sp := range specs {
		if sp.Key() == key {
			n++
		}
	}
	return n
}

// othersUseALU reports whether any other non-multiply instruction in
// the kernel has a µop admitting a scalar ALU port. Multiplies do not
// interfere with each other — two imul forms measure perfectly
// additive, which is why they end up in the same Table 1 class.
func (m *Machine) othersUseALU(specs []*zen.Spec, self *zen.Spec) bool {
	for _, sp := range specs {
		if sp.Key() == self.Key() || sp.Scheme.Attr.Has(isa.AttrImulAnomaly) {
			continue
		}
		for _, u := range sp.Uops {
			if u.Ports&zen.ALU != 0 {
				return true
			}
		}
	}
	return false
}

// othersUseFP reports whether any other instruction uses an FP pipe.
func (m *Machine) othersUseFP(specs []*zen.Spec, self *zen.Spec) bool {
	for _, sp := range specs {
		if sp.Key() == self.Key() {
			continue
		}
		for _, u := range sp.Uops {
			if u.Ports&zen.VALU != 0 {
				return true
			}
		}
	}
	return false
}

// xferConflict derives a deterministic but partner-dependent penalty
// for vmovd-style transfers: some partner sets conflict, others do
// not, with no pattern expressible in the port mapping model.
func (m *Machine) xferConflict(distinct map[string]bool) float64 {
	h := fnv.New32a()
	keys := make([]string, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	// Sort for determinism.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{0})
	}
	if h.Sum32()%2 == 1 {
		return 0.3
	}
	return 0
}

// optimalLoads computes the bottleneck value max_Q mass(Q)/|Q| and an
// optimal per-port load vector achieving it. The load vector is built
// with a water-filling pass: port sets are processed from most
// constrained to least constrained, each spreading its mass to
// equalize the loads of its admissible ports.
func optimalLoads(mass map[portmodel.PortSet]float64, numPorts int) (float64, []float64) {
	// Exact bottleneck value by subset enumeration over used ports.
	var union portmodel.PortSet
	for ps, v := range mass {
		if v > 0 {
			union |= ps
		}
	}
	loads := make([]float64, numPorts)
	if union == 0 {
		return 0, loads
	}
	used := union.Ports()
	best := 0.0
	for idx := 1; idx < 1<<uint(len(used)); idx++ {
		var q portmodel.PortSet
		for b := range used {
			if idx&(1<<uint(b)) != 0 {
				q |= 1 << uint(used[b])
			}
		}
		total := 0.0
		for ps, v := range mass {
			if ps.SubsetOf(q) {
				total += v
			}
		}
		if v := total / float64(q.Size()); v > best {
			best = v
		}
	}

	// Water-filling distribution, highest-pressure port sets first
	// (pressure = mass per admissible port). Flooded sets place
	// before flexible µops, so µops that can evade a flooded port do
	// evade — which is what the per-port counters of real hardware
	// show in steady state. Ties break toward smaller, then
	// lower-numbered sets for determinism.
	type entry struct {
		ps portmodel.PortSet
		v  float64
	}
	entries := make([]entry, 0, len(mass))
	for ps, v := range mass {
		if v > 0 {
			entries = append(entries, entry{ps, v})
		}
	}
	pressure := func(e entry) float64 { return e.v / float64(e.ps.Size()) }
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0; j-- {
			a, b := entries[j-1], entries[j]
			pa, pb := pressure(a), pressure(b)
			less := pb > pa ||
				(pb == pa && b.ps.Size() < a.ps.Size()) ||
				(pb == pa && b.ps.Size() == a.ps.Size() && b.ps < a.ps)
			if less {
				entries[j-1], entries[j] = b, a
			} else {
				break
			}
		}
	}
	for _, e := range entries {
		remaining := e.v
		ports := e.ps.Ports()
		for remaining > 1e-12 {
			// Find the lowest-loaded admissible port and the next
			// level above it.
			low := ports[0]
			for _, p := range ports {
				if loads[p] < loads[low] {
					low = p
				}
			}
			// All ports at the lowest level share the next chunk.
			var level []int
			next := -1.0
			for _, p := range ports {
				if loads[p] <= loads[low]+1e-12 {
					level = append(level, p)
				} else if next < 0 || loads[p] < next {
					next = loads[p]
				}
			}
			var chunk float64
			if next < 0 {
				chunk = remaining
			} else {
				chunk = (next - loads[low]) * float64(len(level))
				if chunk > remaining {
					chunk = remaining
				}
			}
			share := chunk / float64(len(level))
			for _, p := range level {
				loads[p] += share
			}
			remaining -= chunk
		}
	}
	return best, loads
}
