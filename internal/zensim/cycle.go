package zensim

import (
	"sort"

	"zenport/internal/portmodel"
	"zenport/internal/zen"
)

// cycUop is one in-flight micro-operation of the cycle backend.
type cycUop struct {
	ports portmodel.PortSet
	occ   float64
	seq   int // issue order, for oldest-first scheduling
}

// cycDecoded is one pre-decoded instruction of the kernel stream.
type cycDecoded struct {
	macroOps int
	msOps    int
	uops     []cycUop
}

// cycleExecute runs the kernel on the discrete cycle-level backend: a
// decode frontend (Rmax macro-ops per cycle, with the microcode
// sequencer taking over for microcoded instructions), a bounded
// scheduler window, and a greedy oldest-first port allocator that
// prefers less-contended ports. Non-pipelined µops keep their port
// busy for Occupancy cycles.
//
// The backend exists for the scheduler-fidelity ablation (DESIGN.md
// E12): unlike the analytic backend it does not solve the LP, so its
// throughput can fall short of the port-mapping-model optimum.
func (m *Machine) cycleExecute(specs []*zen.Spec) (float64, []float64, error) {
	const (
		iters      = 64
		windowSize = 160
	)

	stream := make([]cycDecoded, len(specs))
	for i, sp := range specs {
		var us []cycUop
		for _, u := range sp.Uops {
			for c := 0; c < u.Count; c++ {
				us = append(us, cycUop{ports: u.Ports, occ: sp.Occupancy})
			}
		}
		stream[i] = cycDecoded{macroOps: sp.MacroOps, msOps: sp.MSOps, uops: us}
	}

	var (
		window      []cycUop
		busy        = make([]float64, zen.NumPorts)
		loads       = make([]float64, zen.NumPorts)
		seq         int
		cycle       int
		nextInstr   int
		msStall     float64 // cycles the frontend is still stalled by the MS
		totalInstrs = iters * len(specs)
	)

	for nextInstr < totalInstrs || len(window) > 0 {
		cycle++
		if cycle > 10_000_000 {
			break // safety net for pathological inputs
		}

		// Frontend.
		if msStall > 0 {
			msStall--
		} else {
			budget := zen.Rmax
			for budget > 0 && nextInstr < totalInstrs && len(window)+8 < windowSize {
				d := stream[nextInstr%len(specs)]
				if d.msOps > 0 {
					// The MS emits this instruction's ops at MSRate
					// per cycle while regular decode stalls.
					msStall = float64(d.msOps)/zen.MSRate - 1
					budget = 0
				} else {
					if float64(d.macroOps) > budget {
						break
					}
					budget -= float64(d.macroOps)
				}
				for _, u := range d.uops {
					u.seq = seq
					seq++
					window = append(window, u)
				}
				nextInstr++
			}
		}

		// Backend: assign ready µops to free ports, oldest first,
		// preferring the least-contended admissible port.
		order := make([]int, len(window))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return window[order[a]].seq < window[order[b]].seq })
		assigned := make([]bool, len(window))
		for _, wi := range order {
			u := window[wi]
			bestPort, bestDemand := -1, 0
			for _, p := range u.ports.Ports() {
				if busy[p] > 0 {
					continue
				}
				d := m.cycPortDemand(window, assigned, p)
				if bestPort == -1 || d < bestDemand {
					bestPort, bestDemand = p, d
				}
			}
			if bestPort == -1 {
				continue
			}
			busy[bestPort] = u.occ
			assigned[wi] = true
			loads[bestPort]++
		}
		kept := window[:0]
		for i := range window {
			if !assigned[i] {
				kept = append(kept, window[i])
			}
		}
		window = kept

		for p := range busy {
			if busy[p] > 0 {
				busy[p]--
				if busy[p] < 0 {
					busy[p] = 0
				}
			}
		}
	}

	per := float64(cycle) / float64(iters)
	for p := range loads {
		loads[p] /= float64(iters)
	}
	return per, loads, nil
}

// cycPortDemand counts unassigned window µops admitting port p.
func (m *Machine) cycPortDemand(window []cycUop, assigned []bool, p int) int {
	n := 0
	for i := range window {
		if !assigned[i] && window[i].ports.Has(p) {
			n++
		}
	}
	return n
}
