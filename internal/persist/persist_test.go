package persist

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

const testFP = "test:v1 seed=1 noise=0.001"

// mustNotPanic runs fn under a recover harness: corrupt on-disk input
// must surface as an error, never as a panic.
func mustNotPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked on corrupt input: %v", r)
		}
	}()
	fn()
}

func testRecord(gen uint64, key string, tp float64) Record {
	return Record{Gen: gen, Key: key, Result: engine.Result{
		InvThroughput: tp, CPI: tp, OpsPerIteration: 1, Runs: 11,
	}}
}

// writeJournal renders a syntactically valid journal with the given
// fingerprint and records.
func writeJournal(t *testing.T, path, fingerprint string, recs ...Record) []byte {
	t.Helper()
	hdr, err := encodeHeaderFrame(fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(hdr)
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := appendFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalFile)
	want := []Record{
		testRecord(0, "1*add", 0.25),
		testRecord(0, "2*add|1*imul", 1.0),
		testRecord(2, "1*add", 0.26),
	}
	writeJournal(t, path, testFP, want...)

	rec, err := ReadJournal(path, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes != 0 {
		t.Errorf("TornBytes = %d, want 0 for a clean journal", rec.TornBytes)
	}
	if !reflect.DeepEqual(rec.Records, want) {
		t.Errorf("records = %+v, want %+v", rec.Records, want)
	}
}

func TestJournalMissingFile(t *testing.T) {
	rec, err := ReadJournal(filepath.Join(t.TempDir(), "nope.zpj"), testFP)
	if err != nil {
		t.Fatalf("missing journal: %v, want empty recovery", err)
	}
	if len(rec.Records) != 0 || rec.GoodSize != 0 {
		t.Errorf("missing journal recovered %d records, GoodSize %d", len(rec.Records), rec.GoodSize)
	}
}

// TestJournalCorruptInputs feeds truncated, bit-flipped, and
// wrong-fingerprint journals through recovery. Damaged tails are
// truncated silently; a damaged header is an error. Nothing panics.
func TestJournalCorruptInputs(t *testing.T) {
	recs := []Record{
		testRecord(0, "1*add", 0.25),
		testRecord(0, "1*imul", 1.0),
		testRecord(1, "1*add", 0.26),
	}

	cases := []struct {
		name    string
		mutate  func(t *testing.T, path string, data []byte)
		wantErr error
		// wantRecords is checked only when wantErr is nil.
		wantRecords int
		wantTorn    bool
	}{
		{
			name: "truncated mid-record",
			mutate: func(t *testing.T, path string, data []byte) {
				writeFile(t, path, data[:len(data)-5])
			},
			wantRecords: 2,
			wantTorn:    true,
		},
		{
			name: "garbage appended after crash",
			mutate: func(t *testing.T, path string, data []byte) {
				writeFile(t, path, append(data, []byte("\x13\x37garbage")...))
			},
			wantRecords: 3,
			wantTorn:    true,
		},
		{
			name: "bit flip in middle record stops trust there",
			mutate: func(t *testing.T, path string, data []byte) {
				hdr, _ := encodeHeaderFrame(testFP)
				// Flip a bit inside the payload of the second record
				// frame (past header and first record).
				first, _ := json.Marshal(recs[0])
				off := len(hdr) + frameOverhead + len(first) + frameOverhead + 3
				data[off] ^= 0x40
				writeFile(t, path, data)
			},
			wantRecords: 1,
			wantTorn:    true,
		},
		{
			name: "empty file",
			mutate: func(t *testing.T, path string, data []byte) {
				writeFile(t, path, nil)
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "truncated header",
			mutate: func(t *testing.T, path string, data []byte) {
				writeFile(t, path, data[:5])
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "bit flip in header",
			mutate: func(t *testing.T, path string, data []byte) {
				data[frameOverhead+2] ^= 0x01
				writeFile(t, path, data)
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "wrong fingerprint",
			mutate: func(t *testing.T, path string, data []byte) {
				writeJournal(t, path, "other-machine", recs...)
			},
			wantErr: ErrFingerprintMismatch,
		},
		{
			name: "wrong version",
			mutate: func(t *testing.T, path string, data []byte) {
				payload, _ := json.Marshal(Header{Version: 99, Fingerprint: testFP})
				var buf bytes.Buffer
				if err := appendFrame(&buf, payload); err != nil {
					t.Fatal(err)
				}
				writeFile(t, path, buf.Bytes())
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "oversized length prefix",
			mutate: func(t *testing.T, path string, data []byte) {
				binary.LittleEndian.PutUint32(data[0:4], maxFramePayload+1)
				writeFile(t, path, data)
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "checksum-valid frame with unparsable record",
			mutate: func(t *testing.T, path string, data []byte) {
				hdr, _ := encodeHeaderFrame(testFP)
				var buf bytes.Buffer
				buf.Write(hdr)
				if err := appendFrame(&buf, []byte(`{"gen":"not a number"}`)); err != nil {
					t.Fatal(err)
				}
				writeFile(t, path, buf.Bytes())
			},
			wantRecords: 0,
			wantTorn:    true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), journalFile)
			data := writeJournal(t, path, testFP, recs...)
			tc.mutate(t, path, data)

			var rec *RecoveredJournal
			var err error
			mustNotPanic(t, func() { rec, err = ReadJournal(path, testFP) })

			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(rec.Records) != tc.wantRecords {
				t.Errorf("recovered %d records, want %d", len(rec.Records), tc.wantRecords)
			}
			if tc.wantTorn != (rec.TornBytes > 0) {
				t.Errorf("TornBytes = %d, wantTorn = %v", rec.TornBytes, tc.wantTorn)
			}
		})
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreReopen checks the basic persistence cycle: record, close
// (compacting into the snapshot), reopen, and read everything back.
func TestStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	s.Record(0, "1*add", engine.Result{InvThroughput: 0.25, Runs: 11})
	s.Record(1, "1*add", engine.Result{InvThroughput: 0.26, Runs: 11})
	s.BatchEnd()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.RecordCount(); n != 2 {
		t.Fatalf("RecordCount = %d, want 2", n)
	}
	g0 := r.Generation(0)
	if res, ok := g0["1*add"]; !ok || res.InvThroughput != 0.25 {
		t.Errorf("gen 0: %+v, want 1*add with 0.25", g0)
	}
	g1 := r.Generation(1)
	if res, ok := g1["1*add"]; !ok || res.InvThroughput != 0.26 {
		t.Errorf("gen 1: %+v, want 1*add with 0.26", g1)
	}
}

// TestStoreRecoversTornJournal simulates a kill mid-append: the valid
// prefix survives, the torn tail is truncated, and appending continues
// cleanly afterwards.
func TestStoreRecoversTornJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	data := writeJournal(t, path, testFP,
		testRecord(0, "1*add", 0.25),
		testRecord(0, "1*imul", 1.0),
	)
	writeFile(t, path, data[:len(data)-7]) // torn mid-frame

	var logged []string
	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	s.Log = func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) }
	if n := s.RecordCount(); n != 1 {
		t.Fatalf("RecordCount after torn recovery = %d, want 1", n)
	}
	s.Record(0, "1*imul", engine.Result{InvThroughput: 1.0, Runs: 11})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.RecordCount(); n != 2 {
		t.Fatalf("RecordCount after reopen = %d, want 2", n)
	}
}

// TestStoreInvalidatesStaleState: a store opened over state from a
// different configuration (or plain corruption) must log, discard, and
// start fresh — stale measurements are worse than none.
func TestStoreInvalidatesStaleState(t *testing.T) {
	cases := []struct {
		name  string
		setup func(t *testing.T, dir string)
	}{
		{
			name: "journal from other fingerprint",
			setup: func(t *testing.T, dir string) {
				writeJournal(t, filepath.Join(dir, journalFile), "other", testRecord(0, "1*add", 0.25))
			},
		},
		{
			name: "corrupt journal header",
			setup: func(t *testing.T, dir string) {
				writeFile(t, filepath.Join(dir, journalFile), []byte("not a journal"))
			},
		},
		{
			name: "snapshot checksum mismatch",
			setup: func(t *testing.T, dir string) {
				writeFile(t, filepath.Join(dir, snapshotFile), []byte("00000000\n{}"))
			},
		},
		{
			name: "snapshot from other fingerprint",
			setup: func(t *testing.T, dir string) {
				writeSnapshotFile(t, dir, "other", testRecord(0, "1*add", 0.25))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.setup(t, dir)
			var s *Store
			var err error
			mustNotPanic(t, func() { s, err = Open(dir, testFP) })
			if err != nil {
				t.Fatalf("Open over stale state: %v, want fresh store", err)
			}
			defer s.Close()
			if n := s.RecordCount(); n != 0 {
				t.Errorf("RecordCount = %d, want 0 — stale records must not be trusted", n)
			}
			// The fresh store must be fully usable.
			s.Record(0, "1*add", engine.Result{InvThroughput: 0.25, Runs: 11})
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// writeSnapshotFile renders a checksum-valid snapshot under an
// arbitrary fingerprint.
func writeSnapshotFile(t *testing.T, dir, fingerprint string, recs ...Record) {
	t.Helper()
	snap := snapshot{Header: Header{Version: journalVersion, Fingerprint: fingerprint}, Records: recs}
	data, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	sum := fmt.Sprintf("%08x", crc32Sum(data))
	writeFile(t, dir+"/"+snapshotFile, append([]byte(sum+"\n"), data...))
}

// TestSnapshotCorruptInputs drives the snapshot reader over damaged
// files directly.
func TestSnapshotCorruptInputs(t *testing.T) {
	valid := func(t *testing.T, dir string) { writeSnapshotFile(t, dir, testFP, testRecord(0, "1*add", 0.25)) }

	cases := []struct {
		name    string
		mutate  func(t *testing.T, dir string)
		wantErr error
	}{
		{
			name:   "valid",
			mutate: func(t *testing.T, dir string) {},
		},
		{
			name: "missing checksum line",
			mutate: func(t *testing.T, dir string) {
				writeFile(t, filepath.Join(dir, snapshotFile), []byte(`{"header":{}}`))
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "bit flip in body",
			mutate: func(t *testing.T, dir string) {
				p := filepath.Join(dir, snapshotFile)
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)-3] ^= 0x20
				writeFile(t, p, data)
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "truncated body",
			mutate: func(t *testing.T, dir string) {
				p := filepath.Join(dir, snapshotFile)
				data, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				writeFile(t, p, data[:len(data)/2])
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "checksum-valid garbage JSON",
			mutate: func(t *testing.T, dir string) {
				body := []byte("not json at all")
				sum := fmt.Sprintf("%08x", crc32Sum(body))
				writeFile(t, filepath.Join(dir, snapshotFile), append([]byte(sum+"\n"), body...))
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "wrong version",
			mutate: func(t *testing.T, dir string) {
				snap := snapshot{Header: Header{Version: 0, Fingerprint: testFP}}
				data, _ := json.Marshal(&snap)
				sum := fmt.Sprintf("%08x", crc32Sum(data))
				writeFile(t, filepath.Join(dir, snapshotFile), append([]byte(sum+"\n"), data...))
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "wrong fingerprint",
			mutate: func(t *testing.T, dir string) {
				writeSnapshotFile(t, dir, "other", testRecord(0, "1*add", 0.25))
			},
			wantErr: ErrFingerprintMismatch,
		},
		{
			name: "record with empty key",
			mutate: func(t *testing.T, dir string) {
				writeSnapshotFile(t, dir, testFP, Record{Gen: 0, Key: ""})
			},
			wantErr: ErrCorrupt,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			valid(t, dir)
			tc.mutate(t, dir)
			var err error
			mustNotPanic(t, func() { _, err = readSnapshot(filepath.Join(dir, snapshotFile), testFP) })
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("err = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir(), testFP)
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		Stage int            `json:"stage"`
		Votes map[string]int `json:"votes"`
	}
	want := payload{Stage: 3, Votes: map[string]int{"add": 2}}
	if err := ck.Save("stage3", &want); err != nil {
		t.Fatal(err)
	}
	var got payload
	ok, err := ck.Load("stage3", &got)
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %+v, want %+v", got, want)
	}

	if ok, err := ck.Load("absent", &got); ok || err != nil {
		t.Errorf("absent checkpoint: ok=%v err=%v, want false,nil", ok, err)
	}

	if err := ck.Clear(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := ck.Load("stage3", &got); ok {
		t.Error("checkpoint survived Clear")
	}
}

// TestCheckpointCorruptInputs: a truncated, bit-flipped, stale, or
// malformed checkpoint must load with a descriptive error, never
// deserialize partially and never panic.
func TestCheckpointCorruptInputs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(t *testing.T, path string, data []byte)
		wantErr error
	}{
		{
			name: "truncated",
			mutate: func(t *testing.T, path string, data []byte) {
				writeFile(t, path, data[:len(data)/2])
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "bit-flipped payload",
			mutate: func(t *testing.T, path string, data []byte) {
				// Flip one bit inside the embedded payload JSON so the
				// envelope still parses but the CRC no longer matches.
				i := bytes.Index(data, []byte(`"payload":`))
				if i < 0 {
					t.Fatal("no payload field")
				}
				data[i+len(`"payload":`)+3] ^= 0x08
				writeFile(t, path, data)
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "not JSON",
			mutate: func(t *testing.T, path string, data []byte) {
				writeFile(t, path, []byte("}{"))
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "wrong version",
			mutate: func(t *testing.T, path string, data []byte) {
				rewriteEnvelope(t, path, func(env *checkpointEnvelope) { env.Version = 7 })
			},
			wantErr: ErrCorrupt,
		},
		{
			name: "wrong fingerprint",
			mutate: func(t *testing.T, path string, data []byte) {
				rewriteEnvelope(t, path, func(env *checkpointEnvelope) { env.Fingerprint = "other" })
			},
			wantErr: ErrFingerprintMismatch,
		},
		{
			name: "payload type mismatch",
			mutate: func(t *testing.T, path string, data []byte) {
				rewriteEnvelope(t, path, func(env *checkpointEnvelope) {
					env.Payload = []byte(`"a string, not an object"`)
					env.CRC = crc32.Checksum(env.Payload, castagnoli)
				})
			},
			wantErr: ErrCorrupt,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ck, err := NewCheckpointer(dir, testFP)
			if err != nil {
				t.Fatal(err)
			}
			if err := ck.Save("stage1", map[string]int{"add": 1}); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, "checkpoints", "stage1.ckpt.json")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, path, data)

			var out map[string]int
			var ok bool
			mustNotPanic(t, func() { ok, err = ck.Load("stage1", &out) })
			if ok {
				t.Error("Load reported ok over corrupt checkpoint")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// rewriteEnvelope re-marshals a checkpoint file after editing its
// envelope fields.
func rewriteEnvelope(t *testing.T, path string, edit func(*checkpointEnvelope)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	edit(&env)
	out, err := json.Marshal(&env)
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, path, out)
}

func TestCheckpointNameValidation(t *testing.T) {
	ck, err := NewCheckpointer(t.TempDir(), testFP)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "../escape", "a/b", "with space"} {
		if err := ck.Save(name, 1); err == nil {
			t.Errorf("Save(%q) accepted an invalid name", name)
		}
		var out int
		if _, err := ck.Load(name, &out); err == nil {
			t.Errorf("Load(%q) accepted an invalid name", name)
		}
	}
}

func TestParseCanonicalKey(t *testing.T) {
	cases := []struct {
		key     string
		want    portmodel.Experiment
		wantErr bool
	}{
		{key: "2*add|1*imul", want: portmodel.Experiment{"add": 2, "imul": 1}},
		{key: "1*add GPR[32], GPR[32]", want: portmodel.Experiment{"add GPR[32], GPR[32]": 1}},
		{key: "3*a|2*a", want: portmodel.Experiment{"a": 5}},
		{key: "", wantErr: true},
		{key: "add", wantErr: true},
		{key: "*add", wantErr: true},
		{key: "2*", wantErr: true},
		{key: "x*add", wantErr: true},
		{key: "0*add", wantErr: true},
		{key: "-1*add", wantErr: true},
	}
	for _, tc := range cases {
		e, err := ParseCanonicalKey(tc.key)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseCanonicalKey(%q) = %v, want error", tc.key, e)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCanonicalKey(%q): %v", tc.key, err)
			continue
		}
		if !reflect.DeepEqual(e, tc.want) {
			t.Errorf("ParseCanonicalKey(%q) = %v, want %v", tc.key, e, tc.want)
		}
	}
}

// countingProc is a minimal deterministic processor for store↔engine
// integration tests.
type countingProc struct {
	executions int
}

func (p *countingProc) Execute(kernel []string, iterations int) (engine.Counters, error) {
	p.executions++
	return engine.Counters{
		Cycles:       float64(len(kernel) * iterations),
		Instructions: uint64(len(kernel) * iterations),
		Ops:          uint64(len(kernel) * iterations),
	}, nil
}

func (p *countingProc) NumPorts() int { return 4 }
func (p *countingProc) Rmax() float64 { return 0 }

// TestStoreEngineIntegration: results executed by one engine are
// answered from disk by the next engine under the same fingerprint —
// zero re-executions — while a different fingerprint re-measures.
func TestStoreEngineIntegration(t *testing.T) {
	dir := t.TempDir()
	exps := []portmodel.Experiment{{"add": 1}, {"add": 2, "imul": 1}}

	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	proc := &countingProc{}
	eng := engine.New(proc)
	if err := s.Attach(eng); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MeasureBatch(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if proc.executions == 0 {
		t.Fatal("first engine executed nothing")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Same fingerprint: everything comes from disk.
	s2, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	proc2 := &countingProc{}
	eng2 := engine.New(proc2)
	if err := s2.Attach(eng2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.MeasureBatch(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if proc2.executions != 0 {
		t.Errorf("second engine executed %d kernels, want 0 (warm from disk)", proc2.executions)
	}
	m := eng2.Metrics()
	if m.CacheHits != uint64(len(exps)) {
		t.Errorf("cache hits = %d, want %d", m.CacheHits, len(exps))
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Different fingerprint: the stale cache is discarded and the
	// experiments re-execute.
	s3, err := Open(dir, "different config")
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	proc3 := &countingProc{}
	eng3 := engine.New(proc3)
	if err := s3.Attach(eng3); err != nil {
		t.Fatal(err)
	}
	if _, err := eng3.MeasureBatch(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	if proc3.executions == 0 {
		t.Error("engine under a new fingerprint reused stale measurements")
	}
}

// TestStoreGenerations: BeginGeneration warms the engine cache from
// the matching stored generation only.
func TestStoreGenerations(t *testing.T) {
	dir := t.TempDir()
	exp := portmodel.Experiment{"add": 1}

	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	proc := &countingProc{}
	eng := engine.New(proc)
	if err := s.Attach(eng); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Measure(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	eng.BeginGeneration(1)
	if _, err := eng.Measure(context.Background(), exp); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := s2.RecordCount(); n != 2 {
		t.Fatalf("RecordCount = %d, want 2 (one per generation)", n)
	}
	proc2 := &countingProc{}
	eng2 := engine.New(proc2)
	if err := s2.Attach(eng2); err != nil {
		t.Fatal(err)
	}
	for gen := uint64(0); gen < 3; gen++ {
		eng2.BeginGeneration(gen)
		if _, err := eng2.Measure(context.Background(), exp); err != nil {
			t.Fatal(err)
		}
	}
	// Generations 0 and 1 are on disk; generation 2 is new.
	if proc2.executions == 0 {
		t.Error("generation 2 did not execute")
	}
	if got := eng2.Metrics().CacheHits; got != 2 {
		t.Errorf("cache hits = %d, want 2 (generations 0 and 1 from disk)", got)
	}
}

// TestStoreCompaction: once the journal passes the threshold, a batch
// boundary folds it into the snapshot and resets the journal.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	// Push the journal past the threshold with distinct keys.
	n := 0
	for s.journalBytes < compactThreshold {
		s.Record(0, fmt.Sprintf("1*k%06d", n), engine.Result{InvThroughput: 1, Runs: 11})
		n++
	}
	s.BatchEnd()
	if s.journalBytes >= compactThreshold {
		t.Fatalf("journal not compacted at batch end: %d bytes", s.journalBytes)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.RecordCount(); got != n {
		t.Fatalf("RecordCount after compaction round-trip = %d, want %d", got, n)
	}
	// Snapshot output is stable: records sorted by (gen, key).
	recs := r.sortedRecordsLocked()
	if !sort.SliceIsSorted(recs, func(i, j int) bool {
		if recs[i].Gen != recs[j].Gen {
			return recs[i].Gen < recs[j].Gen
		}
		return recs[i].Key < recs[j].Key
	}) {
		t.Error("snapshot records are not sorted by (gen, key)")
	}
}

// TestStoreEmptyFingerprint: refusing an empty fingerprint keeps
// unkeyed state out of the cache directory.
func TestStoreEmptyFingerprint(t *testing.T) {
	if _, err := Open(t.TempDir(), ""); err == nil {
		t.Error("Open accepted an empty fingerprint")
	}
	if _, err := NewCheckpointer(t.TempDir(), ""); err == nil {
		t.Error("NewCheckpointer accepted an empty fingerprint")
	}
}

// cancelingBatchProc executes normally until a threshold of calls,
// then fires the batch's CancelFunc — a SIGINT arriving mid-batch,
// which is exactly what signal.NotifyContext in the CLIs now delivers.
type cancelingBatchProc struct {
	countingProc
	cancel context.CancelFunc
	after  int
}

func (p *cancelingBatchProc) Execute(kernel []string, iterations int) (engine.Counters, error) {
	if p.executions+1 >= p.after && p.cancel != nil {
		p.cancel()
	}
	return p.countingProc.Execute(kernel, iterations)
}

// TestStoreCancellationMidBatchRecovers: a batch cancelled partway
// through (the signal-handling path of zeninfer/zeneval/zenbench) must
// leave the store closeable, and the journal it flushed must hand the
// already-executed prefix back to the next run as cache hits. This is
// the regression test for the latent bug where log.Fatal on the
// cancellation error skipped the deferred store.Close and left the
// journal unflushed.
func TestStoreCancellationMidBatchRecovers(t *testing.T) {
	dir := t.TempDir()
	exps := make([]portmodel.Experiment, 16)
	for i := range exps {
		exps[i] = portmodel.Experiment{fmt.Sprintf("k%02d", i): 1}
	}

	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	proc := &cancelingBatchProc{cancel: cancel}
	eng := engine.New(proc)
	eng.Workers = 1 // sequential keys: a deterministic completed prefix
	// Let two full experiments complete before the "signal" arrives.
	proc.after = 2*eng.Reps + 1
	if err := s.Attach(eng); err != nil {
		t.Fatal(err)
	}

	_, err = eng.MeasureBatch(ctx, exps)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
	done := proc.executions / eng.Reps
	if done == 0 {
		t.Fatal("cancellation fired before any experiment completed")
	}
	// The deferred Close in the CLIs' run() — compacts and closes the
	// journal even though the batch failed.
	if err := s.Close(); err != nil {
		t.Fatalf("closing store after cancellation: %v", err)
	}

	// The next run recovers the completed prefix from disk.
	s2, err := Open(dir, testFP)
	if err != nil {
		t.Fatalf("reopening store after cancelled run: %v", err)
	}
	defer s2.Close()
	proc2 := &countingProc{}
	eng2 := engine.New(proc2)
	eng2.Workers = 1
	if err := s2.Attach(eng2); err != nil {
		t.Fatal(err)
	}
	if _, err := eng2.MeasureBatch(context.Background(), exps); err != nil {
		t.Fatal(err)
	}
	m := eng2.Metrics()
	if int(m.CacheHits) < done {
		t.Fatalf("recovered run: %d cache hits, want at least the %d completed before cancellation", m.CacheHits, done)
	}
	if proc2.executions >= len(exps)*eng2.Reps {
		t.Fatalf("recovered run re-executed everything (%d executions): journal was not recovered", proc2.executions)
	}
}
