// Package persist is the crash-safe on-disk layer under the batch
// measurement engine and the inference pipeline. The paper's case
// study spends 12–20 hours of wall clock on hardware microbenchmarks
// (§4.1, §6), and measurement volume dominates the cost of every
// port-mapping inference approach; a crash or Ctrl-C near the end of
// such a run must not throw that work away.
//
// The package provides three cooperating pieces:
//
//   - an append-only result journal with length-prefixed, checksummed
//     records (this file). Torn or corrupt tail records — the
//     signature of a crash mid-write — are detected by CRC and
//     truncated, never trusted;
//   - a Store (store.go) that owns a cache directory: it loads the
//     snapshot plus journal on startup to pre-warm the engine's
//     result cache, records new results as they are executed, and
//     compacts the journal into an atomic snapshot
//     (write-temp, fsync, rename) at batch boundaries;
//   - a Checkpointer (checkpoint.go) that saves each pipeline stage's
//     outcome atomically so `-resume` restarts an interrupted run
//     from the last completed stage.
//
// All persisted state is keyed by a caller-supplied fingerprint of
// the processor/measurement configuration (seed, noise model, reps,
// iterations, ε). State written under a different fingerprint is
// stale by definition and is invalidated rather than reused.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"zenport/internal/engine"
)

// journalVersion is bumped on incompatible format changes; a journal
// with a different version is discarded, not parsed.
const journalVersion = 1

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFingerprintMismatch reports persisted state written under a
// different processor/measurement configuration than the current one.
var ErrFingerprintMismatch = errors.New("persist: fingerprint mismatch (stale state from a different configuration)")

// ErrCorrupt reports persisted state that is structurally damaged
// beyond the recoverable torn-tail case (e.g. a corrupt journal
// header or a checkpoint whose checksum does not match).
var ErrCorrupt = errors.New("persist: corrupt state")

// Header identifies a journal or snapshot: format version plus the
// configuration fingerprint its records were measured under.
type Header struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// Record is one persisted measurement: the engine's canonical
// experiment key, the cache generation it was executed in (stage-4
// characterization runs re-measure under fresh noise, one generation
// per run), and the processed result.
type Record struct {
	Gen    uint64        `json:"gen"`
	Key    string        `json:"key"`
	Result engine.Result `json:"result"`
}

// frame layout: 4-byte little-endian payload length, 4-byte CRC-32C
// of the payload, payload bytes. The first frame of a journal is the
// Header; all subsequent frames are Records.
const frameOverhead = 8

// maxFramePayload bounds a single record; anything larger is treated
// as corruption rather than an allocation request.
const maxFramePayload = 16 << 20

// appendFrame writes one length-prefixed checksummed frame to w.
func appendFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("persist: frame payload of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame from data starting at off. It returns the
// payload and the offset past the frame, or ok=false when the bytes
// from off onward do not form a complete, checksum-valid frame (a
// torn or corrupt tail).
func readFrame(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+frameOverhead > len(data) {
		return nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxFramePayload || off+frameOverhead+n > len(data) {
		return nil, off, false
	}
	payload = data[off+frameOverhead : off+frameOverhead+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, off, false
	}
	return payload, off + frameOverhead + n, true
}

// encodeHeaderFrame renders the journal header frame.
func encodeHeaderFrame(fingerprint string) ([]byte, error) {
	payload, err := json.Marshal(Header{Version: journalVersion, Fingerprint: fingerprint})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := appendFrame(&buf, payload); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RecoveredJournal is the result of reading a journal file back.
type RecoveredJournal struct {
	Header  Header
	Records []Record
	// TornBytes is the number of trailing bytes discarded because
	// they did not form complete checksum-valid frames (a crash
	// mid-append). Zero for a cleanly closed journal.
	TornBytes int
	// GoodSize is the byte offset of the last valid frame's end; the
	// journal should be truncated to this size before appending.
	GoodSize int64
}

// ReadJournal reads and validates a journal file. A missing file
// yields an empty recovery with a zero header and no error. Torn or
// corrupt tail records are dropped (reported via TornBytes), never
// trusted; a journal whose *header* is unreadable or of the wrong
// version is reported as ErrCorrupt, and one written under a
// different fingerprint as ErrFingerprintMismatch — in both cases the
// caller is expected to discard the file and start fresh.
func ReadJournal(path, fingerprint string) (*RecoveredJournal, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return &RecoveredJournal{}, nil
	}
	if err != nil {
		return nil, err
	}
	rec := &RecoveredJournal{}
	payload, off, ok := readFrame(data, 0)
	if !ok {
		return nil, fmt.Errorf("%w: journal header unreadable in %s", ErrCorrupt, path)
	}
	if err := json.Unmarshal(payload, &rec.Header); err != nil {
		return nil, fmt.Errorf("%w: journal header: %v", ErrCorrupt, err)
	}
	if rec.Header.Version != journalVersion {
		return nil, fmt.Errorf("%w: journal version %d, want %d", ErrCorrupt, rec.Header.Version, journalVersion)
	}
	if rec.Header.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: journal has %q, current configuration is %q",
			ErrFingerprintMismatch, rec.Header.Fingerprint, fingerprint)
	}
	rec.GoodSize = int64(off)
	for off < len(data) {
		payload, next, ok := readFrame(data, off)
		if !ok {
			break
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil || r.Key == "" {
			// A checksum-valid frame with an unparsable record can
			// only come from a format mismatch; stop trusting the
			// file from here on.
			break
		}
		rec.Records = append(rec.Records, r)
		off = next
		rec.GoodSize = int64(off)
	}
	rec.TornBytes = len(data) - int(rec.GoodSize)
	return rec, nil
}
