package persist

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"zenport/internal/engine"
	"zenport/internal/portmodel"
)

// File names inside a cache directory. Epoch 0 — the only epoch a
// non-sharded run ever uses — keeps the legacy names; later writer
// epochs (lease takeovers in sharded campaigns) get epoch-suffixed
// names so two owners of the same slice directory can never append to
// the same file.
const (
	journalFile  = "journal.zpj"
	snapshotFile = "snapshot.json"
	tmpSuffix    = ".tmp"
)

// journalName returns the journal file name of a writer epoch.
func journalName(epoch uint64) string {
	if epoch == 0 {
		return journalFile
	}
	return fmt.Sprintf("journal-e%04d.zpj", epoch)
}

// snapshotName returns the snapshot file name of a writer epoch.
func snapshotName(epoch uint64) string {
	if epoch == 0 {
		return snapshotFile
	}
	return fmt.Sprintf("snapshot-e%04d.json", epoch)
}

// parseEpochName recognizes journal/snapshot files of any epoch.
func parseEpochName(name string) (epoch uint64, isJournal, ok bool) {
	switch name {
	case journalFile:
		return 0, true, true
	case snapshotFile:
		return 0, false, true
	}
	if rest, found := strings.CutPrefix(name, "journal-e"); found {
		if num, found := strings.CutSuffix(rest, ".zpj"); found {
			if e, err := strconv.ParseUint(num, 10, 64); err == nil {
				return e, true, true
			}
		}
	}
	if rest, found := strings.CutPrefix(name, "snapshot-e"); found {
		if num, found := strings.CutSuffix(rest, ".json"); found {
			if e, err := strconv.ParseUint(num, 10, 64); err == nil {
				return e, false, true
			}
		}
	}
	return 0, false, false
}

// epochFile is one journal or snapshot file found in a cache
// directory.
type epochFile struct {
	epoch uint64
	path  string
}

// listEpochFiles scans a cache directory for journal and snapshot
// files of every writer epoch, each list sorted by ascending epoch.
func listEpochFiles(dir string) (journals, snapshots []epochFile, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		epoch, isJournal, ok := parseEpochName(e.Name())
		if !ok {
			continue
		}
		f := epochFile{epoch: epoch, path: filepath.Join(dir, e.Name())}
		if isJournal {
			journals = append(journals, f)
		} else {
			snapshots = append(snapshots, f)
		}
	}
	sort.Slice(journals, func(i, j int) bool { return journals[i].epoch < journals[j].epoch })
	sort.Slice(snapshots, func(i, j int) bool { return snapshots[i].epoch < snapshots[j].epoch })
	return journals, snapshots, nil
}

// MaxEpoch returns the highest writer epoch with a journal or snapshot
// file in dir (0 when none exist). The lease protocol uses it to pick
// a takeover epoch strictly above anything ever written in the
// directory, even when the lease file itself was lost.
func MaxEpoch(dir string) (uint64, error) {
	journals, snapshots, err := listEpochFiles(dir)
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, f := range journals {
		if f.epoch > max {
			max = f.epoch
		}
	}
	for _, f := range snapshots {
		if f.epoch > max {
			max = f.epoch
		}
	}
	return max, nil
}

// compactThreshold is the journal size (bytes) past which a batch
// boundary triggers compaction into the snapshot.
const compactThreshold = 256 << 10

// snapshot is the compacted on-disk form of the store: every record
// of every generation, sorted for stable output, under a checked
// header.
type snapshot struct {
	Header  Header   `json:"header"`
	Records []Record `json:"records"`
}

// Store is the crash-safe measurement cache: a snapshot plus an
// append-only journal inside one cache directory. It implements
// engine.PersistHook, so attaching it to an engine journals every
// newly executed result and pre-warms the engine's cache with the
// results of prior runs under the same fingerprint.
//
// Keys are the engine's canonical experiment keys; a generation
// counter separates independent re-measurement rounds (the stage-4
// characterization runs). Within one generation every key holds at
// most one result.
//
// A store additionally carries a writer epoch (OpenEpoch). Epochs make
// lease takeover in sharded campaigns safe: each owner of a slice
// directory appends to its own epoch's journal and compacts into its
// own epoch's snapshot, so a hung previous owner that wakes up after
// its slice was stolen can never interleave frames into — or clobber
// the snapshot of — the new owner. Its writes land in its own files,
// and because measurements are deterministic per (generation, key),
// recovery merging every epoch's files reads duplicated keys with
// identical values. Non-sharded runs always use epoch 0 (the legacy
// file names) and additionally hold LockDir, so they never see
// concurrent writers at all.
type Store struct {
	dir         string
	fingerprint string
	epoch       uint64

	mu      sync.Mutex
	journal *os.File
	// records holds the merged snapshot+journal state: gen -> key ->
	// result.
	records map[uint64]map[string]Record
	// journalBytes tracks the journal size for the compaction
	// threshold.
	journalBytes int64
	// dirty marks journal records not yet compacted into the
	// snapshot.
	dirty bool
	// Log, if non-nil, receives one-line notices (recovered records,
	// invalidated stale state).
	Log func(format string, args ...any)
}

var _ engine.PersistHook = (*Store)(nil)

// Open opens (or creates) the cache directory and recovers its state
// under writer epoch 0 — the non-sharded form. A journal or snapshot
// written under a different fingerprint or a damaged header is
// invalidated: the store logs the reason and starts fresh, because
// cached measurements from another configuration are worse than no
// cache. Torn journal tails are truncated and the valid prefix is
// kept.
func Open(dir, fingerprint string) (*Store, error) {
	return OpenEpoch(dir, fingerprint, 0)
}

// OpenEpoch opens the cache directory as writer epoch `epoch`: state
// recovery merges the snapshots and journals of every epoch found in
// the directory (ascending epoch order, later epochs win), but all
// subsequent appends and compactions go to this epoch's own files.
// The shard lease protocol hands each successive owner of a slice
// directory a strictly increasing epoch, which is what keeps a stolen
// slice safe from its previous — possibly merely hung — owner.
func OpenEpoch(dir, fingerprint string, epoch uint64) (*Store, error) {
	if fingerprint == "" {
		return nil, fmt.Errorf("persist: empty fingerprint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fingerprint: fingerprint, epoch: epoch, records: make(map[uint64]map[string]Record)}

	journals, snapshots, err := listEpochFiles(dir)
	if err != nil {
		return nil, err
	}

	// Snapshots first: they hold the compacted history of each epoch.
	for _, sf := range snapshots {
		snap, err := readSnapshot(sf.path, fingerprint)
		switch {
		case err == nil:
			for _, r := range snap {
				s.insert(r)
			}
		case isStale(err):
			s.logf("persist: discarding snapshot %s: %v", filepath.Base(sf.path), err)
			if err := os.Remove(sf.path); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		default:
			return nil, err
		}
	}

	// Journals on top: records since each epoch's last compaction. Only
	// our own epoch's journal is truncated to its valid prefix — other
	// epochs' files are not ours to rewrite (a hung previous owner may
	// still hold an open descriptor on its own journal).
	var ownGood int64
	for _, jf := range journals {
		rec, err := ReadJournal(jf.path, fingerprint)
		switch {
		case err == nil:
			if rec.TornBytes > 0 {
				s.logf("persist: ignoring %d torn byte(s) in %s after crash", rec.TornBytes, filepath.Base(jf.path))
			}
			for _, r := range rec.Records {
				s.insert(r)
			}
			if len(rec.Records) > 0 {
				s.dirty = true
			}
			if jf.epoch == epoch {
				ownGood = rec.GoodSize
			}
		case isStale(err):
			s.logf("persist: discarding journal %s: %v", filepath.Base(jf.path), err)
			if err := os.Remove(jf.path); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
		default:
			return nil, err
		}
	}

	// Open our epoch's journal for appending, truncated to its valid
	// prefix (or freshly created with a header frame).
	jpath := filepath.Join(dir, journalName(epoch))
	f, err := os.OpenFile(jpath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if ownGood > 0 {
		if err := f.Truncate(ownGood); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(ownGood, 0); err != nil {
			f.Close()
			return nil, err
		}
		s.journalBytes = ownGood
	} else {
		hdr, err := encodeHeaderFrame(fingerprint)
		if err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, err
		}
		s.journalBytes = int64(len(hdr))
	}
	s.journal = f
	return s, nil
}

// Epoch returns the store's writer epoch.
func (s *Store) Epoch() uint64 { return s.epoch }

// isStale classifies recovery errors that invalidate (rather than
// abort on) persisted state.
func isStale(err error) bool {
	return errors.Is(err, ErrFingerprintMismatch) || errors.Is(err, ErrCorrupt)
}

func (s *Store) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}

// insert merges one record into the in-memory state (last write
// wins; identical keys within a generation hold identical results by
// construction). Records written before the quality field existed
// decode with a zero Quality; they are normalized to "all samples
// kept, raw spread, full confidence", the semantics the fixed-Reps
// engine they came from actually had.
func (s *Store) insert(r Record) {
	if r.Result.Runs > 0 && r.Result.Quality.Kept == 0 {
		r.Result.Quality.Kept = r.Result.Runs
		r.Result.Quality.Spread = r.Result.Spread
	}
	g, ok := s.records[r.Gen]
	if !ok {
		g = make(map[string]Record)
		s.records[r.Gen] = g
	}
	g[r.Key] = r
}

// Record implements engine.PersistHook: append the newly executed
// result to the journal. The write reaches the kernel before Record
// returns, so a subsequent process death cannot lose it; fsync
// happens at batch boundaries (and Close) to additionally survive
// machine crashes.
func (s *Store) Record(gen uint64, key string, r engine.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := Record{Gen: gen, Key: key, Result: r}
	s.insert(rec)
	if s.journal == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		s.logf("persist: journal encode: %v", err)
		return
	}
	before := s.journalBytes
	if err := appendFrame(s.journal, payload); err != nil {
		s.logf("persist: journal append: %v", err)
		// Roll back to a clean frame boundary so one failed write
		// does not poison subsequent appends.
		if terr := s.journal.Truncate(before); terr == nil {
			_, _ = s.journal.Seek(before, 0)
		}
		return
	}
	s.journalBytes += int64(frameOverhead + len(payload))
	s.dirty = true
}

// Generation implements engine.PersistHook: the stored results of one
// generation, for cache warm-up.
func (s *Store) Generation(gen uint64) map[string]engine.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]engine.Result, len(s.records[gen]))
	for k, r := range s.records[gen] {
		out[k] = r.Result
	}
	return out
}

// BatchEnd implements engine.PersistHook: a batch boundary. The
// journal is fsynced, and compacted into the snapshot once it grows
// past the threshold.
func (s *Store) BatchEnd() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return
	}
	_ = s.journal.Sync()
	if s.journalBytes >= compactThreshold {
		if err := s.compactLocked(); err != nil {
			s.logf("persist: compaction: %v", err)
		}
	}
}

// Compact forces a snapshot write and journal reset.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// compactLocked writes the full in-memory state into this epoch's
// snapshot atomically (write temp, fsync, rename), then resets this
// epoch's journal to just its header and garbage-collects the files of
// strictly older epochs (their records are now folded into our
// snapshot; a hung older owner still appending to an unlinked journal
// writes into the void, harmlessly — its results are deterministic
// duplicates of ours). A crash between the rename and the reset leaves
// records present in both files; recovery merges them idempotently.
func (s *Store) compactLocked() error {
	if !s.dirty {
		return nil
	}
	snap := snapshot{Header: Header{Version: journalVersion, Fingerprint: s.fingerprint}}
	snap.Records = s.sortedRecordsLocked()
	data, err := json.Marshal(&snap)
	if err != nil {
		return err
	}
	sum := fmt.Sprintf("%08x", crc32Sum(data))
	if err := atomicWrite(filepath.Join(s.dir, snapshotName(s.epoch)), append([]byte(sum+"\n"), data...)); err != nil {
		return err
	}
	s.removeOlderEpochsLocked()
	if s.journal == nil {
		s.dirty = false
		return nil
	}
	hdr, err := encodeHeaderFrame(s.fingerprint)
	if err != nil {
		return err
	}
	if err := s.journal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.journal.Seek(0, 0); err != nil {
		return err
	}
	if _, err := s.journal.Write(hdr); err != nil {
		return err
	}
	if err := s.journal.Sync(); err != nil {
		return err
	}
	s.journalBytes = int64(len(hdr))
	s.dirty = false
	return nil
}

// removeOlderEpochsLocked garbage-collects journal and snapshot files
// of epochs strictly below ours; their contents are folded into the
// snapshot we just wrote. Strictly below: a zombie owner compacting at
// epoch e must never delete the files of the owner that displaced it
// at e+1. Removal failures are logged, not fatal — stale files merely
// cost a redundant merge at the next recovery.
func (s *Store) removeOlderEpochsLocked() {
	journals, snapshots, err := listEpochFiles(s.dir)
	if err != nil {
		s.logf("persist: epoch gc scan: %v", err)
		return
	}
	for _, f := range append(journals, snapshots...) {
		if f.epoch >= s.epoch {
			continue
		}
		if err := os.Remove(f.path); err != nil && !os.IsNotExist(err) {
			s.logf("persist: epoch gc %s: %v", filepath.Base(f.path), err)
		}
	}
}

// AbsorbRecords merges externally recovered records (a slice
// directory's state, during campaign merge) into the store. The
// records are journaled into the snapshot at the next compaction;
// callers that need them durable call Compact.
func (s *Store) AbsorbRecords(recs []Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range recs {
		if r.Key == "" {
			continue
		}
		s.insert(r)
	}
	if len(recs) > 0 {
		s.dirty = true
	}
}

// ReadState recovers every record persisted in dir — all epochs'
// snapshots and journals, ascending epoch order, later epochs winning —
// without opening the directory for writing. Unlike OpenEpoch it treats
// a fingerprint mismatch as a hard error rather than invalidating the
// files: the campaign merge uses ReadState to *validate* that each
// slice was measured under the campaign fingerprint, and silently
// discarding a mismatched slice would turn a configuration error into
// quietly missing data. Torn journal tails are still tolerated (the
// valid prefix is returned), and a directory with no persisted state
// returns no records.
func ReadState(dir, fingerprint string) ([]Record, error) {
	if fingerprint == "" {
		return nil, fmt.Errorf("persist: empty fingerprint")
	}
	journals, snapshots, err := listEpochFiles(dir)
	if err != nil {
		return nil, err
	}
	merged := make(map[uint64]map[string]Record)
	insert := func(r Record) {
		g, ok := merged[r.Gen]
		if !ok {
			g = make(map[string]Record)
			merged[r.Gen] = g
		}
		g[r.Key] = r
	}
	for _, sf := range snapshots {
		recs, err := readSnapshot(sf.path, fingerprint)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(sf.path), err)
		}
		for _, r := range recs {
			insert(r)
		}
	}
	for _, jf := range journals {
		rec, err := ReadJournal(jf.path, fingerprint)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(jf.path), err)
		}
		for _, r := range rec.Records {
			insert(r)
		}
	}
	var out []Record
	var gens []uint64
	for g := range merged {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	for _, g := range gens {
		keys := make([]string, 0, len(merged[g]))
		for k := range merged[g] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, merged[g][k])
		}
	}
	return out, nil
}

// sortedRecordsLocked flattens the in-memory state in (gen, key)
// order for stable snapshots.
func (s *Store) sortedRecordsLocked() []Record {
	var out []Record
	var gens []uint64
	for g := range s.records {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	for _, g := range gens {
		keys := make([]string, 0, len(s.records[g]))
		for k := range s.records[g] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, s.records[g][k])
		}
	}
	return out
}

// Close compacts outstanding journal records into the snapshot and
// closes the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.compactLocked()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.journal = nil
	return err
}

// RecordCount returns the total number of stored results across all
// generations.
func (s *Store) RecordCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, g := range s.records {
		n += len(g)
	}
	return n
}

// Attach wires the store into an engine: future executed results are
// journaled, the engine's cache is pre-warmed with the stored results
// of its current generation, and — when the processor supports it —
// per-kernel execution counts are restored so the noise RNG
// derivation of re-executed experiments continues exactly where the
// interrupted process left off (the condition for byte-identical
// resumed runs).
func (s *Store) Attach(eng *engine.Engine) error {
	eng.Persist = s
	if err := s.restoreExecCounts(eng); err != nil {
		return err
	}
	eng.WarmCache(s.Generation(eng.CacheGeneration()))
	return nil
}

// restoreExecCounts tells the processor how many times each journaled
// kernel was executed by prior runs. Each stored result carries its
// own successful-execution total in Result.Runs (the adaptive engine
// may escalate past Reps), so the count is the sum of Runs across the
// generations holding the key. Records that predate the Runs
// accounting fall back to Reps, the fixed repetition count the engine
// that wrote them used.
func (s *Store) restoreExecCounts(eng *engine.Engine) error {
	rest, ok := eng.P.(engine.ExecCountRestorer)
	if !ok {
		return nil
	}
	reps := eng.Reps
	if reps < 1 {
		reps = 1
	}
	s.mu.Lock()
	counts := make(map[string]uint64)
	for _, g := range s.records {
		for key, r := range g {
			if r.Result.Runs > 0 {
				counts[key] += uint64(r.Result.Runs)
			} else {
				counts[key] += uint64(reps)
			}
		}
	}
	s.mu.Unlock()
	for key, n := range counts {
		exp, err := ParseCanonicalKey(key)
		if err != nil {
			return fmt.Errorf("persist: stored key %q: %w", key, err)
		}
		rest.RestoreExecCount(engine.KernelOf(exp), n)
	}
	return nil
}

// ParseCanonicalKey inverts engine.CanonicalKey: "2*add|1*imul" back
// into the experiment multiset. It validates counts and rejects
// malformed terms instead of guessing.
func ParseCanonicalKey(key string) (portmodel.Experiment, error) {
	if key == "" {
		return nil, fmt.Errorf("empty canonical key")
	}
	e := make(portmodel.Experiment)
	for _, term := range strings.Split(key, "|") {
		i := strings.Index(term, "*")
		if i <= 0 || i == len(term)-1 {
			return nil, fmt.Errorf("malformed term %q", term)
		}
		n, err := strconv.Atoi(term[:i])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("invalid count in term %q", term)
		}
		e[term[i+1:]] += n
	}
	return e, nil
}

// readSnapshot loads and validates a snapshot file: a CRC line
// followed by the JSON body, checked against the fingerprint.
func readSnapshot(path, fingerprint string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl != 8 {
		return nil, fmt.Errorf("%w: snapshot checksum line malformed", ErrCorrupt)
	}
	body := data[nl+1:]
	if fmt.Sprintf("%08x", crc32Sum(body)) != string(data[:nl]) {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	var snap snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
	}
	if snap.Header.Version != journalVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d", ErrCorrupt, snap.Header.Version, journalVersion)
	}
	if snap.Header.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: snapshot has %q, current configuration is %q",
			ErrFingerprintMismatch, snap.Header.Fingerprint, fingerprint)
	}
	for _, r := range snap.Records {
		if r.Key == "" {
			return nil, fmt.Errorf("%w: snapshot record with empty key", ErrCorrupt)
		}
	}
	return snap.Records, nil
}

func crc32Sum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// WriteFileAtomic writes data to path via a temp file in the same
// directory (write, fsync, rename). The shard layer uses it for lease,
// manifest, and result files, which are read without locks and must
// therefore never be observed torn.
func WriteFileAtomic(path string, data []byte) error { return atomicWrite(path, data) }

// atomicWrite writes data to path via a temp file in the same
// directory: write, fsync, rename — so readers observe either the old
// or the new content, never a torn mix.
func atomicWrite(path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
