//go:build unix

package persist

import (
	"os"
	"syscall"
)

// flockSupported reports whether advisory file locks actually exclude
// other processes on this platform.
const flockSupported = true

// flockTry acquires an exclusive advisory lock on f without blocking.
// It returns (false, nil) when another process holds the lock.
//
// BSD flock semantics are exactly what the lease protocol needs: the
// lock is attached to the open file description, so it is released by
// the kernel the instant the holding process dies — including SIGKILL,
// which runs no handlers and flushes nothing. A killed shard therefore
// frees its locks immediately, while a merely hung shard keeps them
// (that case is what the lease heartbeat counter is for).
func flockTry(f *os.File) (bool, error) {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == syscall.EWOULDBLOCK {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// flockWait acquires an exclusive advisory lock on f, blocking until
// the current holder releases it (or dies).
func flockWait(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		// Flock can be interrupted by signals; the lock is not held
		// then, so retry rather than report a spurious failure.
		if err != syscall.EINTR {
			return err
		}
	}
}

// flockRelease drops the advisory lock on f. Closing the file releases
// it too; the explicit form exists for lock cyclers that keep the file
// open.
func flockRelease(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
