package persist

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
)

// Checkpointer saves and restores pipeline stage outcomes inside a
// cache directory. Each checkpoint is one file, written atomically
// (write temp, fsync, rename) and wrapped in an envelope carrying the
// configuration fingerprint and a CRC-32C of the payload, so a
// truncated, bit-flipped, or stale checkpoint is detected with an
// error — never deserialized into a half-restored pipeline.
type Checkpointer struct {
	dir         string
	fingerprint string
}

// checkpointEnvelope is the on-disk form of one checkpoint.
type checkpointEnvelope struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	CRC         uint32          `json:"crc"`
	Payload     json.RawMessage `json:"payload"`
}

// checkpointName restricts checkpoint names to a safe filename
// alphabet; names are caller-chosen identifiers like "stage3" or
// "stage4-run2", not user input, but the guard keeps path traversal
// structurally impossible.
var checkpointName = regexp.MustCompile(`^[a-zA-Z0-9._-]+$`)

// NewCheckpointer returns a checkpointer rooted at dir/checkpoints.
func NewCheckpointer(dir, fingerprint string) (*Checkpointer, error) {
	if fingerprint == "" {
		return nil, fmt.Errorf("persist: empty fingerprint")
	}
	cdir := filepath.Join(dir, "checkpoints")
	if err := os.MkdirAll(cdir, 0o755); err != nil {
		return nil, err
	}
	return &Checkpointer{dir: cdir, fingerprint: fingerprint}, nil
}

// path returns the file path of a named checkpoint.
func (c *Checkpointer) path(name string) (string, error) {
	if !checkpointName.MatchString(name) {
		return "", fmt.Errorf("persist: invalid checkpoint name %q", name)
	}
	return filepath.Join(c.dir, name+".ckpt.json"), nil
}

// Save marshals payload and writes the named checkpoint atomically.
func (c *Checkpointer) Save(name string, payload any) error {
	p, err := c.path(name)
	if err != nil {
		return err
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: checkpoint %s: %w", name, err)
	}
	env := checkpointEnvelope{
		Version:     journalVersion,
		Fingerprint: c.fingerprint,
		CRC:         crc32.Checksum(body, castagnoli),
		Payload:     body,
	}
	data, err := json.Marshal(&env)
	if err != nil {
		return err
	}
	return atomicWrite(p, data)
}

// Load reads the named checkpoint into out. It returns (false, nil)
// when the checkpoint does not exist, and an error — wrapping
// ErrCorrupt or ErrFingerprintMismatch — when it exists but cannot be
// trusted.
func (c *Checkpointer) Load(name string, out any) (bool, error) {
	p, err := c.path(name)
	if err != nil {
		return false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	var env checkpointEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return false, fmt.Errorf("%w: checkpoint %s: %v", ErrCorrupt, name, err)
	}
	if env.Version != journalVersion {
		return false, fmt.Errorf("%w: checkpoint %s version %d, want %d", ErrCorrupt, name, env.Version, journalVersion)
	}
	if env.Fingerprint != c.fingerprint {
		return false, fmt.Errorf("%w: checkpoint %s has %q, current configuration is %q",
			ErrFingerprintMismatch, name, env.Fingerprint, c.fingerprint)
	}
	if crc32.Checksum(env.Payload, castagnoli) != env.CRC {
		return false, fmt.Errorf("%w: checkpoint %s payload checksum mismatch", ErrCorrupt, name)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return false, fmt.Errorf("%w: checkpoint %s payload: %v", ErrCorrupt, name, err)
	}
	return true, nil
}

// Clear removes all saved checkpoints (used when starting a fresh,
// non-resumed run so stale stage files cannot shadow the new run).
func (c *Checkpointer) Clear() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if filepath.Ext(e.Name()) == ".json" {
			if err := os.Remove(filepath.Join(c.dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
