//go:build !unix

package persist

import "os"

// flockSupported reports whether advisory file locks actually exclude
// other processes on this platform. Without flock the lock files are
// still created — so the code paths stay identical — but exclusion is
// not enforced; the distributed-shard machinery documents that it
// requires a unix platform for its crash-tolerance guarantees.
const flockSupported = false

func flockTry(f *os.File) (bool, error) { return true, nil }

func flockWait(f *os.File) error { return nil }

func flockRelease(f *os.File) error { return nil }
