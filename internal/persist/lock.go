package persist

import (
	"fmt"
	"os"
	"path/filepath"
)

// lockFileName is the directory-exclusivity lock inside a cache
// directory. It holds no data; only its flock state matters.
const lockFileName = ".zenport.lock"

// FileLock is an exclusive advisory lock on one file, held for the
// life of the open descriptor. The kernel releases it when the process
// exits — by any means, including SIGKILL — so a dead holder never
// leaves a stale lock behind. A hung holder does keep it; callers that
// must survive hung peers (the shard lease protocol) layer a heartbeat
// on top instead of waiting on the flock.
type FileLock struct {
	f    *os.File
	path string
}

// Path returns the lock file's path.
func (l *FileLock) Path() string { return l.path }

// Unlock releases the lock and closes the file. Safe to call twice.
func (l *FileLock) Unlock() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := flockRelease(l.f)
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// TryLockFile acquires an exclusive lock on path without blocking,
// creating the file if needed. It returns (nil, nil) when another
// process holds the lock.
func TryLockFile(path string) (*FileLock, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	ok, err := flockTry(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if !ok {
		f.Close()
		return nil, nil
	}
	return &FileLock{f: f, path: path}, nil
}

// LockFile acquires an exclusive lock on path, blocking until the
// current holder releases it or dies.
func LockFile(path string) (*FileLock, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockWait(f); err != nil {
		f.Close()
		return nil, err
	}
	return &FileLock{f: f, path: path}, nil
}

// LockDir takes the exclusive-use lock of a cache directory, creating
// the directory if needed. Two processes pointed at the same cache
// directory would interleave journal appends and race snapshot
// compactions — silent corruption at worst, invalidated caches at
// best — so non-sharded runs fail fast here with a clear error
// instead. Sharded campaigns do not take this lock: their slice
// directories are single-writer by the lease protocol, and concurrent
// shard processes in one campaign directory are the whole point.
//
// The lock dies with the process (flock semantics), so a crashed run
// never wedges the directory.
func LockDir(dir string) (*FileLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l, err := TryLockFile(filepath.Join(dir, lockFileName))
	if err != nil {
		return nil, fmt.Errorf("persist: locking cache directory %s: %w", dir, err)
	}
	if l == nil {
		return nil, fmt.Errorf("persist: cache directory %s is in use by another process (it holds %s); "+
			"point this run at its own -cache-dir, or use sharded mode (-shards/-shard-id) to share a campaign directory safely", dir, lockFileName)
	}
	return l, nil
}
