package persist

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"zenport/internal/engine"
)

// restoreRecorder is a minimal processor that records the execution
// counts the store restores per kernel.
type restoreRecorder struct {
	mu       sync.Mutex
	restored map[string]uint64
}

func newRestoreRecorder() *restoreRecorder {
	return &restoreRecorder{restored: make(map[string]uint64)}
}

func (r *restoreRecorder) Execute(kernel []string, iterations int) (engine.Counters, error) {
	return engine.Counters{Cycles: float64(iterations), Instructions: uint64(iterations), Ops: uint64(iterations)}, nil
}

func (r *restoreRecorder) NumPorts() int { return 4 }
func (r *restoreRecorder) Rmax() float64 { return 5 }

func (r *restoreRecorder) RestoreExecCount(kernel []string, executions uint64) {
	r.mu.Lock()
	r.restored[strings.Join(kernel, " ")] = executions
	r.mu.Unlock()
}

// TestLegacyRecordsGetQualityDefaults: journals written before the
// quality field existed must decode as fully-kept, full-confidence
// results — the semantics the fixed-Reps engine that wrote them had.
func TestLegacyRecordsGetQualityDefaults(t *testing.T) {
	dir := t.TempDir()
	legacy := Record{Gen: 0, Key: "1*add", Result: engine.Result{
		InvThroughput: 0.25, CPI: 0.25, OpsPerIteration: 1, Runs: 11, Spread: 0.03,
	}}
	writeJournal(t, filepath.Join(dir, journalFile), testFP, legacy)

	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, ok := s.Generation(0)["1*add"]
	if !ok {
		t.Fatal("legacy record not recovered")
	}
	q := res.Quality
	if q.Kept != 11 || q.Rejected != 0 {
		t.Errorf("Kept/Rejected = %d/%d, want 11/0", q.Kept, q.Rejected)
	}
	if q.Spread != 0.03 {
		t.Errorf("Quality.Spread = %v, want the record's raw spread 0.03", q.Spread)
	}
	if q.LowConfidence || q.Quarantined {
		t.Errorf("legacy record flagged low-confidence: %+v", q)
	}
}

// TestRestoreExecCountsSumsRuns: the restored per-kernel execution
// count must be the sum of Result.Runs across generations — the
// adaptive engine escalates past Reps, so a fixed gens×Reps count
// would desynchronize resumed noise and fault streams. Records
// without Runs accounting fall back to Reps.
func TestRestoreExecCountsSumsRuns(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	s.Record(0, "1*add", engine.Result{InvThroughput: 0.25, Runs: 11, Quality: engine.Quality{Kept: 11}})
	s.Record(1, "1*add", engine.Result{InvThroughput: 0.25, Runs: 33, Quality: engine.Quality{Kept: 30, Rejected: 3}})
	s.Record(0, "1*imul", engine.Result{InvThroughput: 1.0}) // legacy: no Runs
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	proc := newRestoreRecorder()
	eng := engine.New(proc)
	if err := s.Attach(eng); err != nil {
		t.Fatal(err)
	}
	if got := proc.restored["add"]; got != 44 {
		t.Errorf("restored add = %d, want 11+33 = 44", got)
	}
	reps := uint64(eng.Reps)
	if got := proc.restored["imul"]; got != reps {
		t.Errorf("restored imul = %d, want Reps fallback %d", got, reps)
	}
}
