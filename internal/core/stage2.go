package core

import (
	"context"
	"fmt"
	"math"

	"zenport/internal/portmodel"
)

// stage2 filters equivalent blocking candidates (§3.2 step 3, §4.2):
// two single-µop candidates with equally sized port sets block the
// same ports iff their inverse throughputs are additive,
//
//	tp⁻¹([i,j]) = tp⁻¹([i]) + tp⁻¹([j]).
//
// Each candidate is compared against the current class
// representatives of its port-count group. Measurements that are
// unstable across repetitions, or that exceed the additive bound
// (impossible in the port mapping model: throughput is subadditive),
// expose the §4.2 problem instructions, which are excluded.
func (p *Pipeline) stage2(ctx context.Context, rep *Report) error {
	keys := p.candidateKeys(rep)
	classesByCount := map[int][]*BlockClass{}

	for _, key := range keys {
		info := rep.Info[key]
		group := classesByCount[info.PortCount]
		// Batch the candidate's full row of pair experiments against
		// the group's current representatives up front. The row may
		// measure past the first match — a speculative overshoot — but
		// the set of experiments depends only on the (deterministic)
		// candidate order, never on worker scheduling, so parallel and
		// sequential runs stay bit-identical.
		pairs := make([]portmodel.Experiment, len(group))
		for i, cls := range group {
			pairs[i] = portmodel.Experiment{key: 1, cls.Rep: 1}
		}
		rowRes, err := p.H.MeasureBatch(ctx, pairs)
		if err != nil {
			return err
		}
		placed := false
		bad := false
		for ci, cls := range group {
			repInfo := rep.Info[cls.Rep]
			pair := pairs[ci]
			r := rowRes[ci]
			if r.Spread > p.Opts.SpreadThreshold {
				// Unstable when paired: cmov, AES, vcvt*, double FP
				// mul (§4.2).
				rep.Excluded[key] = ExclUnstablePaired
				bad = true
				break
			}
			additive := info.TInv + repInfo.TInv
			tol := p.Opts.Epsilon * 2
			if r.InvThroughput > additive+tol {
				// Super-additive throughput contradicts the model
				// (three-read FMA interference, §4.2).
				rep.Excluded[key] = ExclUnstablePaired
				bad = true
				break
			}
			if math.Abs(r.InvThroughput-additive) <= tol {
				cls.Members = append(cls.Members, key)
				cls.Witnesses = append(cls.Witnesses, Witness{
					Exp:  pair,
					TInv: r.InvThroughput,
					Claim: fmt.Sprintf("additive with %s (%0.3f ≈ %0.3f + %0.3f): same port set",
						cls.Rep, r.InvThroughput, info.TInv, repInfo.TInv),
				})
				placed = true
				break
			}
			// Not equivalent: record the separating witness on the
			// candidate's eventual class (see below).
		}
		if bad || placed {
			continue
		}
		// New class with this candidate as representative.
		cls := &BlockClass{Rep: key, PortCount: info.PortCount, Members: []string{key}}
		cls.Witnesses = append(cls.Witnesses, Witness{
			Exp:   portmodel.Exp(key),
			TInv:  info.TInv,
			Claim: fmt.Sprintf("single µop with %d port(s) (tp = %0.3f)", info.PortCount, info.TInv),
		})
		classesByCount[info.PortCount] = append(group, cls)
	}

	// Deterministic class order: descending port count, then by
	// representative key — the order of Table 1.
	var counts []int
	for c := range classesByCount {
		counts = append(counts, c)
	}
	for i := 1; i < len(counts); i++ {
		for j := i; j > 0 && counts[j] > counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	for _, c := range counts {
		rep.Classes = append(rep.Classes, deref(classesByCount[c])...)
	}
	for _, cls := range rep.Classes {
		rep.CandidatesFiltered += len(cls.Members)
	}
	return nil
}

func deref(in []*BlockClass) []BlockClass {
	out := make([]BlockClass, len(in))
	for i, c := range in {
		out[i] = *c
	}
	return out
}
