package core

import (
	"fmt"

	"zenport/internal/portmodel"
	"zenport/internal/smt"
)

// Stage checkpointing: with Options.Checkpointer configured, the
// pipeline persists the full report after every completed stage
// ("stage1".."stage3", "final") and the per-scheme votes after every
// completed stage-4 characterization run ("stage4-run0"..). With
// Options.Resume additionally set, RunContext restores the latest
// completed stage instead of re-running it; stage 4 skips completed
// runs. Combined with the engine's persisted measurement cache this
// makes an interrupted run resumable with byte-identical output: the
// re-executed suffix of the pipeline reads the same measurements the
// interrupted run produced.

// stageCheckpoint is the payload persisted after a completed pipeline
// stage: the whole report so far, plus (after stage 3) the solver's
// learned theory lemmas, which record *why* the blocker mapping was
// accepted and are validated against the rebuilt solver instance on
// resume.
type stageCheckpoint struct {
	Report *Report           `json:"report"`
	Lemmas []smt.LemmaRecord `json:"lemmas,omitempty"`
}

// charRunRecord is one stage-4 characterization run's vote for one
// scheme.
type charRunRecord struct {
	Found map[portmodel.PortSet]int `json:"found,omitempty"`
	OK    bool                      `json:"ok"`
}

// stage4RunCheckpoint is the payload persisted after each completed
// stage-4 run: the per-scheme votes, and (run 0 only) the witness
// experiments.
type stage4RunCheckpoint struct {
	Results   map[string]charRunRecord `json:"results"`
	Witnesses map[string][]Witness     `json:"witnesses,omitempty"`
}

// saveStage checkpoints the report after the named stage when a
// checkpointer is configured. Failures are hard errors: a run that
// silently stops persisting progress would later resume wrongly.
func (p *Pipeline) saveStage(name string, rep *Report, lemmas []smt.LemmaRecord) error {
	if p.Opts.Checkpointer == nil {
		return nil
	}
	if err := p.Opts.Checkpointer.Save(name, &stageCheckpoint{Report: rep, Lemmas: lemmas}); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", name, err)
	}
	return nil
}

// loadStage restores the report from the named stage checkpoint. It
// returns restored=false when the checkpoint does not exist; a
// corrupt or stale checkpoint is an error.
func (p *Pipeline) loadStage(name string, rep *Report) (bool, []smt.LemmaRecord, error) {
	var ck stageCheckpoint
	ok, err := p.Opts.Checkpointer.Load(name, &ck)
	if err != nil {
		return false, nil, fmt.Errorf("core: checkpoint %s: %w", name, err)
	}
	if !ok || ck.Report == nil {
		return false, nil, nil
	}
	*rep = *ck.Report
	// Empty maps round-trip through JSON as nil; the stages index into
	// them unconditionally.
	if rep.Excluded == nil {
		rep.Excluded = make(map[string]ExclusionReason)
	}
	if rep.Info == nil {
		rep.Info = make(map[string]*SchemeInfo)
	}
	if rep.Characterized == nil {
		rep.Characterized = make(map[string]portmodel.Usage)
	}
	if rep.CharWitnesses == nil {
		rep.CharWitnesses = make(map[string][]Witness)
	}
	return true, ck.Lemmas, nil
}

// saveStage4Run checkpoints one completed stage-4 run's votes (run 0
// also carries the witnesses).
func (p *Pipeline) saveStage4Run(name string, r int, todo []string, results map[string][]runResult, rep *Report) error {
	if p.Opts.Checkpointer == nil {
		return nil
	}
	ck := stage4RunCheckpoint{Results: make(map[string]charRunRecord, len(todo))}
	for _, key := range todo {
		rr := results[key][r]
		ck.Results[key] = charRunRecord{Found: rr.found, OK: rr.ok}
	}
	if r == 0 {
		ck.Witnesses = rep.CharWitnesses
	}
	if err := p.Opts.Checkpointer.Save(name, &ck); err != nil {
		return fmt.Errorf("core: checkpoint %s: %w", name, err)
	}
	return nil
}

// restoreStage4Run appends the checkpointed votes of one stage-4 run.
// A missing checkpoint, or one not covering every scheme to
// characterize, returns false and the run re-executes (its
// measurements are still answered from the persisted cache); a
// corrupt or stale checkpoint is an error.
func (p *Pipeline) restoreStage4Run(name string, r int, todo []string, results map[string][]runResult, rep *Report) (bool, error) {
	if p.Opts.Checkpointer == nil {
		return false, nil
	}
	var ck stage4RunCheckpoint
	ok, err := p.Opts.Checkpointer.Load(name, &ck)
	if err != nil {
		return false, fmt.Errorf("core: checkpoint %s: %w", name, err)
	}
	if !ok {
		return false, nil
	}
	for _, key := range todo {
		if _, exists := ck.Results[key]; !exists {
			return false, nil
		}
	}
	for _, key := range todo {
		rr := ck.Results[key]
		results[key] = append(results[key], runResult{found: rr.Found, ok: rr.OK})
	}
	if r == 0 {
		for key, w := range ck.Witnesses {
			rep.CharWitnesses[key] = w
		}
	}
	return true, nil
}

// restoreLatest finds the most advanced stage checkpoint and restores
// the report from it. It returns the first stage that still has to
// run (1 when nothing was restored, 5 when the final report was).
func (p *Pipeline) restoreLatest(rep *Report) (int, error) {
	order := []struct {
		name string
		next int
	}{
		{"final", 5},
		{"stage3", 4},
		{"stage2", 3},
		{"stage1", 2},
	}
	for _, o := range order {
		ok, lemmas, err := p.loadStage(o.name, rep)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		if o.name == "stage3" {
			// Validate the checkpointed lemmas against the rebuilt
			// solver instance: out-of-range µop or port indices mean
			// the checkpoint does not belong to this configuration.
			inst, err := p.buildSMTInstance(rep)
			if err != nil {
				return 0, fmt.Errorf("core: checkpoint %s: %w", o.name, err)
			}
			if err := inst.RestoreLemmas(lemmas); err != nil {
				return 0, fmt.Errorf("core: checkpoint %s: %w", o.name, err)
			}
		}
		return o.next, nil
	}
	return 1, nil
}
