package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"zenport/internal/portmodel"
)

// blockerDesc is one usable blocking instruction for stage 4.
type blockerDesc struct {
	key string
	pu  portmodel.PortSet
}

// runResult is one characterization run's outcome for one scheme.
type runResult struct {
	found map[portmodel.PortSet]int
	ok    bool
}

// stage4 characterizes every remaining scheme against the blocking
// suite without per-port µop counters (§3.1, §4.4): flooding the
// ports pu with k blocking instructions, the µops of the instruction
// under investigation that cannot evade pu each add 1/|pu| cycles, so
//
//	µops of i on pu = (tp⁻¹([k×B, i]) − tp⁻¹([k×B])) · |pu|.
//
// Blocking instructions are applied in ascending port-set size and
// previously found µops on proper subsets are subtracted (Algorithm
// 1). The stage runs CharacterizeRuns times with fresh measurements
// and accepts a result only when a majority of runs agree (§4.4).
func (p *Pipeline) stage4(ctx context.Context, rep *Report) error {
	blockers := p.stage4Blockers(rep)

	// Collect the schemes to characterize: measured, not excluded,
	// not blockers themselves.
	blockerSet := map[string]bool{}
	for _, b := range blockers {
		blockerSet[b.key] = true
	}
	var todo []string
	for key, info := range rep.Info {
		if rep.Excluded[key] != "" || blockerSet[key] || info.NoPorts {
			continue
		}
		if _, isBlocked := rep.BlockerMapping.Usage[key]; isBlocked {
			continue
		}
		if p.Opts.CharacterizeFilter != nil && !p.Opts.CharacterizeFilter(key) {
			continue
		}
		todo = append(todo, key)
	}
	sort.Strings(todo)

	if len(blockers) == 0 {
		// Degraded stage 3 (or a pathological ISA) left no usable
		// blocking suite. Emit what we do have — the blocker mapping
		// and the no-port schemes — and flag everything else
		// Unresolved instead of failing the whole run; a resumed run
		// retries exactly these schemes.
		p.logf("stage 4: no usable blocking instructions; leaving %d scheme(s) unresolved", len(todo))
		for _, key := range todo {
			rep.Unresolved = appendUnique(rep.Unresolved, key)
		}
		sort.Strings(rep.Unresolved)
		rep.Final = p.assembleFinal(rep)
		return nil
	}

	runs := p.Opts.CharacterizeRuns
	if runs < 1 {
		runs = 1
	}
	results := make(map[string][]runResult, len(todo))

	for r := 0; r < runs; r++ {
		name := fmt.Sprintf("stage4-run%d", r)
		if p.Opts.Resume {
			restored, err := p.restoreStage4Run(name, r, todo, results, rep)
			if err != nil {
				return err
			}
			if restored {
				p.logf("stage 4: run %d restored from checkpoint", r)
				continue
			}
		}
		// Each run measures under its own named cache generation (run
		// 0 shares generation 0 with stages 1–3, runs r>0 get fresh
		// measurements). Naming generations explicitly — rather than
		// just clearing the cache — lets a resumed run land in the
		// same generation, and thus the same persisted measurements,
		// as the interrupted one.
		p.H.BeginGeneration(uint64(r))
		// Prefetch the run's entire scheme×blocker grid — every flood
		// kernel and every flood+scheme kernel — as one batch. The
		// grid is computable up front (block counts depend only on
		// stage-1 data), duplicates coalesce in the engine, and
		// characterizeOne below is then answered from cache.
		var grid []portmodel.Experiment
		for _, key := range todo {
			info := rep.Info[key]
			for _, b := range blockers {
				k := blockCount(b.pu.Size(), info.UopsPostulated, info.TInv)
				grid = append(grid,
					portmodel.Experiment{b.key: k},
					portmodel.Experiment{b.key: k, key: 1})
			}
		}
		if _, err := p.H.MeasureBatch(ctx, grid); err != nil {
			return err
		}
		for _, key := range todo {
			found, witnesses, ok, err := p.characterizeOne(ctx, rep, key, blockers)
			if err != nil {
				return err
			}
			results[key] = append(results[key], runResult{found: found, ok: ok})
			if r == 0 && ok {
				rep.CharWitnesses[key] = witnesses
			}
		}
		if err := p.saveStage4Run(name, r, todo, results, rep); err != nil {
			return err
		}
	}

	for _, key := range p.voteCharacterization(rep, todo, results, runs) {
		// A scheme whose runs never reached a majority is excluded
		// from the mapping (§4.4) *and* flagged Unresolved, so a
		// resumed run retries it with fresh measurements instead of
		// silently accepting the hole.
		rep.Excluded[key] = ExclCharUnstable
		rep.Unresolved = appendUnique(rep.Unresolved, key)
	}
	sort.Strings(rep.Unresolved)

	rep.Final = p.assembleFinal(rep)
	return nil
}

// voteCharacterization applies the §4.4 majority vote over the runs'
// results and commits the winners into rep.Characterized (plus the
// spurious-µop flag). It returns the keys whose runs never produced a
// majority; the caller decides how those degrade.
func (p *Pipeline) voteCharacterization(rep *Report, todo []string, results map[string][]runResult, runs int) []string {
	var failed []string
	for _, key := range todo {
		rs := results[key]
		bestCount, bestIdx := 0, -1
		for i, a := range rs {
			if !a.ok {
				continue
			}
			n := 0
			for _, b := range rs {
				if b.ok && sameFound(a.found, b.found) {
					n++
				}
			}
			if n > bestCount {
				bestCount, bestIdx = n, i
			}
		}
		if bestIdx == -1 || bestCount*2 <= runs {
			failed = append(failed, key)
			continue
		}
		usage := foundToUsage(rs[bestIdx].found)
		rep.Characterized[key] = usage
		// Spurious-µop detection (§4.4): more µops inferred than the
		// op counter plus the postulate explain — the microcode
		// sequencer artifact.
		if usage.TotalUops() > rep.Info[key].UopsPostulated {
			rep.Spurious = appendUnique(rep.Spurious, key)
		}
	}
	return failed
}

// assembleFinal builds the final mapping from the blocker mapping, the
// characterized schemes, and the no-port schemes. Unresolved schemes
// are simply absent — partial rather than wrong.
func (p *Pipeline) assembleFinal(rep *Report) *portmodel.Mapping {
	final := portmodel.NewMapping(p.Opts.NumPorts)
	for key, u := range rep.BlockerMapping.Usage {
		final.Set(key, u)
	}
	for key, u := range rep.Characterized {
		final.Set(key, u)
	}
	for key, info := range rep.Info {
		if info.NoPorts && rep.Excluded[key] == "" {
			final.Set(key, portmodel.Usage{})
		}
	}
	return final
}

// stage4Blockers selects the usable blockers from the CEGAR result:
// the proper blocking classes that survived §4.3, plus the first
// improper blocker to cover the store port, ordered by ascending
// port-set size.
func (p *Pipeline) stage4Blockers(rep *Report) []blockerDesc {
	var out []blockerDesc
	anom := map[string]bool{}
	for _, a := range rep.AnomalousBlockers {
		anom[a] = true
	}
	for _, cls := range rep.Classes {
		if anom[cls.Rep] || cls.Ports == 0 {
			continue
		}
		out = append(out, blockerDesc{key: cls.Rep, pu: cls.Ports})
	}
	// The storing mov blocks the store port (§4.4: "We use mov
	// MEM[32], GPR[32] to block the store port 5"): its own port is
	// the one of its non-tied µop, i.e. the port set not shared with
	// a proper blocker.
	if len(p.Opts.ImproperBlockers) > 0 && rep.BlockerMapping != nil {
		key := p.Opts.ImproperBlockers[0].Key
		if usage, ok := rep.BlockerMapping.Get(key); ok {
			if own, ok := improperOwnPorts(rep, usage); ok {
				out = append(out, blockerDesc{key: key, pu: own})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].pu.Size() != out[b].pu.Size() {
			return out[a].pu.Size() < out[b].pu.Size()
		}
		return out[a].pu < out[b].pu
	})
	return out
}

// improperOwnPorts extracts the µop of an improper blocker that does
// not coincide with a proper blocking class (the store µop).
func improperOwnPorts(rep *Report, usage portmodel.Usage) (portmodel.PortSet, bool) {
	classPorts := map[portmodel.PortSet]bool{}
	for _, cls := range rep.Classes {
		if cls.Ports != 0 {
			classPorts[cls.Ports] = true
		}
	}
	for _, u := range usage {
		if !classPorts[u.Ports] {
			return u.Ports, true
		}
	}
	return 0, false
}

// characterizeOne runs Algorithm 1 (adapted per §3.1) for one scheme.
// Its measurements were prefetched by stage4's grid batch, so the
// engine answers from cache.
func (p *Pipeline) characterizeOne(ctx context.Context, rep *Report, key string, blockers []blockerDesc) (map[portmodel.PortSet]int, []Witness, bool, error) {
	info := rep.Info[key]
	found := map[portmodel.PortSet]int{}
	var witnesses []Witness

	for _, b := range blockers {
		k := blockCount(b.pu.Size(), info.UopsPostulated, info.TInv)
		flood := portmodel.Experiment{b.key: k}
		withI := portmodel.Experiment{b.key: k, key: 1}
		rOnly, err := p.H.Engine.Measure(ctx, flood)
		if err != nil {
			return nil, nil, false, err
		}
		rWith, err := p.H.Engine.Measure(ctx, withI)
		if err != nil {
			return nil, nil, false, err
		}
		tOnly, tWith := rOnly.InvThroughput, rWith.InvThroughput
		raw := (tWith - tOnly) * float64(b.pu.Size())
		n := int(math.Round(raw))
		if n < 0 || math.Abs(raw-float64(n)) > 0.3 {
			// Fractional or negative surplus: outside the model.
			return nil, nil, false, nil
		}
		surplus := n
		for pu, cnt := range found {
			if pu != b.pu && pu.SubsetOf(b.pu) {
				surplus -= cnt
			}
		}
		if surplus > 0 {
			found[b.pu] = surplus
			witnesses = append(witnesses, Witness{
				Exp:    withI,
				TInv:   tWith,
				TOther: tOnly,
				Claim: fmt.Sprintf("%d µop(s) cannot evade %s: flooding with %d×%s adds %0.3f cycles",
					surplus, b.pu, k, b.key, tWith-tOnly),
			})
		}
	}
	return found, witnesses, true, nil
}

// blockCount is the uops.info heuristic for the number of blocking
// instructions (§2.3):
//
//	k = min(100, max(10, |pu|·µopsOf(i), 2·|pu|·max(1, ⌊tp⁻¹([i])⌋)))
func blockCount(puSize, uops int, tinv float64) int {
	k := 10
	if v := puSize * uops; v > k {
		k = v
	}
	if v := 2 * puSize * maxInt(1, int(tinv)); v > k {
		k = v
	}
	if k > 100 {
		k = 100
	}
	return k
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sameFound compares two found-µop maps.
func sameFound(a, b map[portmodel.PortSet]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// foundToUsage converts a found-µop map into a Usage.
func foundToUsage(found map[portmodel.PortSet]int) portmodel.Usage {
	var u portmodel.Usage
	for ps, n := range found {
		u = append(u, portmodel.Uop{Ports: ps, Count: n})
	}
	return u.Normalize()
}
