package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"zenport/internal/persist"
	"zenport/internal/portmodel"
	"zenport/internal/sat"
	"zenport/internal/smt"
)

// stage3 runs the counter-example-guided inference (Algorithm 2,
// §3.3) over the blocking instructions, plus the manually added
// improper store blockers (§4.3). Blocking instructions whose
// measurements make the model unsatisfiable (imul, vpmuldq, vmovd on
// Zen+) are isolated and excluded, together with all schemes sharing
// their mnemonic.
func (p *Pipeline) stage3(ctx context.Context, rep *Report) error {
	inst, err := p.buildSMTInstance(rep)
	if err != nil {
		return err
	}
	if rep.Supervision == nil {
		rep.Supervision = &SupervisionSummary{}
	}
	// Every solve of the stage — including clones, sub-instances, and
	// core-extraction probes — accumulates straight into the report's
	// telemetry.
	inst.Telemetry = &rep.Supervision.Solver

	// Seed experiments: every blocker executed alone, as one batch.
	seedKeys := inst.SortedKeys()
	seedExps := make([]portmodel.Experiment, len(seedKeys))
	for i, key := range seedKeys {
		seedExps[i] = portmodel.Exp(key)
	}
	seedT, err := p.H.InvThroughputs(ctx, seedExps)
	if err != nil {
		return err
	}
	var exps []smt.MeasuredExp
	for i, e := range seedExps {
		exps = append(exps, smt.MeasuredExp{Exp: e, TInv: seedT[i]})
		rep.CEGARWitnesses = append(rep.CEGARWitnesses, Witness{
			Exp: e, TInv: seedT[i], Claim: "seed: single-instruction throughput",
		})
	}

	// lastGood tracks the most recent consistent mapping, the
	// degradation target if the solver budget later runs out.
	var lastGood *portmodel.Mapping
	for round := 0; round < p.Opts.MaxCEGARRounds; round++ {
		m1, relaxed, srep, err := inst.FindMappingSupervised(ctx, exps, p.superviseOpts(ctx))
		exps = relaxed
		p.foldSupervision(rep, srep)
		if errors.Is(err, sat.ErrBudgetExhausted) {
			return p.degradeStage3(rep, inst, lastGood, round)
		}
		if errors.Is(err, smt.ErrNoMapping) {
			// Recovery is disabled or ran out of slack: fall back to
			// the §4.3 anomaly-isolation path unchanged.
			culprit, cerr := p.isolateCulprit(ctx, inst, exps)
			if cerr != nil {
				return cerr
			}
			if culprit == "" {
				return fmt.Errorf("model UNSAT but no single culprit identifiable")
			}
			p.logf("stage 3: excluding anomalous blocker %s (model UNSAT, §4.3)", culprit)
			rep.AnomalousBlockers = append(rep.AnomalousBlockers, culprit)
			p.excludeMnemonicFamily(rep, culprit)
			inst = inst.Without(map[string]bool{culprit: true})
			exps = smt.FilterExps(exps, map[string]bool{culprit: true})
			continue
		}
		if err != nil {
			return err
		}
		lastGood = m1
		other, err := inst.FindOtherMappingBudget(ctx, exps, m1, p.Opts.MaxExpDistinct, p.Opts.MaxExpTotal, p.Opts.MaxCandidates, p.queryBudget())
		if errors.Is(err, sat.ErrBudgetExhausted) {
			// The current mapping is consistent, just not proven
			// unique within bounds; accept it and say so.
			rep.Supervision.BudgetStops++
			p.logf("stage 3: solver budget exhausted during uniqueness search after %d rounds; accepting current mapping", round)
			p.finishStage3(rep, inst, m1)
			rep.CEGARRounds = round
			return nil
		}
		if err != nil {
			return err
		}
		if other == nil {
			p.finishStage3(rep, inst, m1)
			rep.CEGARRounds = round
			return nil
		}
		// CEGAR is inherently sequential — each round's experiment
		// depends on the previous counter-example — so this is a
		// single ctx-aware measurement, not a batch.
		r, err := p.H.Engine.Measure(ctx, other.Exp)
		if err != nil {
			return err
		}
		t := r.InvThroughput
		exps = append(exps, smt.MeasuredExp{Exp: other.Exp, TInv: t})
		rep.CEGARWitnesses = append(rep.CEGARWitnesses, Witness{
			Exp:    other.Exp,
			TInv:   t,
			TOther: other.T2,
			Claim: fmt.Sprintf("distinguishes candidate mappings (model values %0.3f vs %0.3f)",
				other.T1, other.T2),
		})
	}
	// Round budget exhausted: accept the last consistent mapping.
	m1, relaxed, srep, err := inst.FindMappingSupervised(ctx, exps, p.superviseOpts(ctx))
	exps = relaxed
	_ = exps
	p.foldSupervision(rep, srep)
	if errors.Is(err, sat.ErrBudgetExhausted) {
		return p.degradeStage3(rep, inst, lastGood, p.Opts.MaxCEGARRounds)
	}
	if err != nil {
		return err
	}
	p.finishStage3(rep, inst, m1)
	rep.CEGARRounds = p.Opts.MaxCEGARRounds
	return nil
}

// queryBudget returns a fresh copy of the configured per-query solver
// budget, or nil when the options leave it unlimited.
func (p *Pipeline) queryBudget() *sat.Budget {
	b := p.Opts.SolverBudget
	if b.MaxConflicts == 0 && b.MaxPropagations == 0 && b.MaxDecisions == 0 && b.Deadline.IsZero() {
		return nil
	}
	return &sat.Budget{
		MaxConflicts:    b.MaxConflicts,
		MaxPropagations: b.MaxPropagations,
		MaxDecisions:    b.MaxDecisions,
		Deadline:        b.Deadline,
	}
}

// superviseOpts assembles the supervision configuration of one solver
// query: the per-query budget, the recovery bounds, measurement
// quality from the engine's cached quality records, and — when
// recovery is enabled — re-measurement through the engine.
func (p *Pipeline) superviseOpts(ctx context.Context) smt.SuperviseOptions {
	opts := smt.SuperviseOptions{
		Budget:    p.queryBudget(),
		MaxSlack:  p.Opts.MaxSlack,
		SlackStep: p.Opts.SlackStep,
		Log:       p.Opts.Log,
		QualityOf: func(e portmodel.Experiment) float64 {
			// Cache hit for anything stage 3 measured; the robust
			// spread ranks trustworthiness.
			r, err := p.H.Engine.Measure(ctx, e)
			if err != nil {
				return 0
			}
			return r.Quality.Spread
		},
	}
	if p.Opts.MaxSlack > 0 {
		opts.Remeasure = func(ctx context.Context, e portmodel.Experiment) (float64, error) {
			r, err := p.H.Engine.Remeasure(ctx, e)
			if err != nil {
				return 0, err
			}
			return r.InvThroughput, nil
		}
	}
	return opts
}

// foldSupervision merges one supervised query's report into the
// run-level summary, deriving the Relaxed scheme list from the
// relaxations' canonical experiment keys.
func (p *Pipeline) foldSupervision(rep *Report, srep *smt.SupervisionReport) {
	if srep == nil {
		return
	}
	sup := rep.Supervision
	sup.Cores = append(sup.Cores, srep.Cores...)
	sup.Relaxations = append(sup.Relaxations, srep.Relaxations...)
	if srep.BudgetExhausted {
		sup.BudgetStops++
	}
	for _, rx := range srep.Relaxations {
		exp, err := persist.ParseCanonicalKey(rx.Key)
		if err != nil {
			continue
		}
		for k := range exp {
			rep.Relaxed = appendUnique(rep.Relaxed, k)
		}
	}
	sort.Strings(rep.Relaxed)
}

// degradeStage3 accepts the best partial result when the solver budget
// runs out mid-CEGAR: the last consistent mapping when one exists,
// otherwise an empty blocker mapping with every blocker flagged
// Unresolved — stage 4 then degrades in turn instead of the run dying.
func (p *Pipeline) degradeStage3(rep *Report, inst *smt.Instance, lastGood *portmodel.Mapping, round int) error {
	rep.CEGARRounds = round
	if lastGood != nil {
		p.logf("stage 3: solver budget exhausted after %d rounds; degrading to last consistent mapping", round)
		p.finishStage3(rep, inst, lastGood)
		return nil
	}
	p.logf("stage 3: solver budget exhausted before any consistent mapping; all %d blockers unresolved", len(inst.SortedKeys()))
	for _, k := range inst.SortedKeys() {
		rep.Unresolved = appendUnique(rep.Unresolved, k)
	}
	sort.Strings(rep.Unresolved)
	p.finishStage3(rep, inst, portmodel.NewMapping(p.Opts.NumPorts))
	return nil
}

// buildSMTInstance assembles the CEGAR solver instance over the
// blocking classes plus the manually added improper blockers (§4.3,
// "We augment the SMT formulas such that..."). It is also rebuilt on
// resume to validate checkpointed lemmas against the instance shape.
func (p *Pipeline) buildSMTInstance(rep *Report) (*smt.Instance, error) {
	inst := &smt.Instance{
		NumPorts: p.Opts.NumPorts,
		Rmax:     p.H.P.Rmax(),
		Epsilon:  p.Opts.Epsilon,
	}
	if p.Opts.Portfolio >= 2 {
		inst.Portfolio = &smt.PortfolioOptions{K: p.Opts.Portfolio}
	}
	for i := range rep.Classes {
		cls := &rep.Classes[i]
		inst.Uops = append(inst.Uops, smt.UopSpec{Key: cls.Rep, NumPorts: cls.PortCount})
	}
	// Improper blockers: two µops, one tied to a proper blocker's
	// port set.
	for _, ib := range p.Opts.ImproperBlockers {
		if _, ok := rep.Info[ib.Key]; !ok {
			return nil, fmt.Errorf("improper blocker %q was not measured in stage 1", ib.Key)
		}
		inst.Uops = append(inst.Uops,
			smt.UopSpec{Key: ib.Key, NumPorts: 0},
			smt.UopSpec{Key: ib.Key, TiedToBlocker: true},
		)
	}
	return inst, nil
}

// finishStage3 stores the blocker mapping, back-fills the inferred
// port sets into the blocking classes, and exports the solver's
// learned lemmas for the stage-3 checkpoint.
func (p *Pipeline) finishStage3(rep *Report, inst *smt.Instance, m *portmodel.Mapping) {
	rep.BlockerMapping = m
	p.lemmaRecords = inst.LemmaRecords()
	for i := range rep.Classes {
		cls := &rep.Classes[i]
		if u, ok := m.Get(cls.Rep); ok && len(u) > 0 {
			cls.Ports = u[0].Ports
		}
	}
}

// excludeMnemonicFamily marks every scheme sharing the culprit's
// mnemonic as excluded (§4.3: "...and instructions with the same
// mnemonics, as we expect them to share aspects of the problematic
// instructions").
func (p *Pipeline) excludeMnemonicFamily(rep *Report, culprit string) {
	mn := strings.SplitN(culprit, " ", 2)[0]
	for key := range rep.Info {
		if strings.SplitN(key, " ", 2)[0] == mn && rep.Excluded[key] == "" {
			rep.Excluded[key] = ExclCEGARAnomaly
		}
	}
	// Drop the class whose representative is the culprit from the
	// CEGAR result (it stays in Table 1's class list).
}

// isolateCulprit identifies the blocking instruction responsible for
// an UNSAT model, mirroring the diagnosis the paper performs by hand
// in §4.3. It first asks, for every blocker key k, whether removing k
// (and the experiments mentioning it) makes the model satisfiable —
// the direct formalization of "these instructions cause UNSAT results
// in the findMapping method". If several single removals work, probe
// benchmarks decide; if none does (several anomalies poison disjoint
// experiments), suspicion falls back to per-experiment sub-problems.
func (p *Pipeline) isolateCulprit(ctx context.Context, inst *smt.Instance, exps []smt.MeasuredExp) (string, error) {
	keys := inst.SortedKeys()
	var fixes []string
	for _, k := range keys {
		excl := map[string]bool{k: true}
		sub := inst.Without(excl)
		if _, err := sub.FindMappingContext(ctx, smt.FilterExps(exps, excl)); err == nil {
			fixes = append(fixes, k)
		} else if !errors.Is(err, smt.ErrNoMapping) {
			return "", err
		}
	}
	if len(fixes) == 1 {
		return fixes[0], nil
	}
	if len(fixes) > 1 {
		return p.probeDiagnose(ctx, inst, exps, fixes)
	}

	// No single removal fixes the model: several instructions are
	// anomalous at once. Score keys by how many measured experiments
	// become satisfiable sub-problems only without them.
	suspicion := map[string]int{}
	for _, me := range exps {
		if me.Exp.Len() < 2 {
			continue
		}
		sub := map[string]bool{}
		for k := range me.Exp {
			sub[k] = true
		}
		si := subInstance(inst, sub)
		if _, err := si.FindMappingContext(ctx, expsOver(exps, sub)); errors.Is(err, smt.ErrNoMapping) {
			for k := range sub {
				suspicion[k]++
			}
		} else if err != nil {
			return "", err
		}
	}
	p.logf("stage 3: culprit isolation: suspicion=%v over %d experiments", suspicion, len(exps))
	var suspects []string
	maxS := 0
	for _, s := range suspicion {
		if s > maxS {
			maxS = s
		}
	}
	for k, s := range suspicion {
		if s == maxS && maxS > 0 {
			suspects = append(suspects, k)
		}
	}
	if len(suspects) == 0 {
		// Joint inconsistency with no localized witness: probe all
		// keys pairwise against each other.
		suspects = keys
	}
	sort.Strings(suspects)
	if len(suspects) == 1 {
		return suspects[0], nil
	}
	return p.probeDiagnose(ctx, inst, exps, suspects)
}

// probeDiagnose separates tied suspects with fresh benchmarks: each
// suspect is flooded with four copies of every non-suspect blocker
// and charged for every two-instruction model the measurement
// contradicts.
func (p *Pipeline) probeDiagnose(ctx context.Context, inst *smt.Instance, exps []smt.MeasuredExp, suspects []string) (string, error) {
	sort.Strings(suspects)
	suspectSet := map[string]bool{}
	for _, s := range suspects {
		suspectSet[s] = true
	}
	singleton := map[string]float64{}
	for _, me := range exps {
		if me.Exp.Len() == 1 {
			for k := range me.Exp {
				singleton[k] = me.TInv
			}
		}
	}
	// The whole suspect×partner probe grid is known up front (the
	// sequential code had no early exit either), so it measures as one
	// batch.
	type probePair struct{ s, partner string }
	var grid []probePair
	var probes []portmodel.Experiment
	for _, s := range suspects {
		for _, partner := range inst.SortedKeys() {
			if suspectSet[partner] || partner == s {
				continue
			}
			grid = append(grid, probePair{s, partner})
			probes = append(probes, portmodel.Experiment{partner: 4, s: 1})
		}
	}
	probeT, err := p.H.InvThroughputs(ctx, probes)
	if err != nil {
		return "", err
	}
	scores := map[string]int{}
	for i, pp := range grid {
		s, partner := pp.s, pp.partner
		keys := map[string]bool{partner: true, s: true}
		sub := subInstance(inst, keys)
		var subExps []smt.MeasuredExp
		for _, k := range []string{partner, s} {
			if ts, ok := singleton[k]; ok {
				subExps = append(subExps, smt.MeasuredExp{Exp: portmodel.Exp(k), TInv: ts})
			}
		}
		subExps = append(subExps, smt.MeasuredExp{Exp: probes[i], TInv: probeT[i]})
		if _, err := sub.FindMappingContext(ctx, subExps); errors.Is(err, smt.ErrNoMapping) {
			scores[s]++
		} else if err != nil {
			return "", err
		}
	}
	p.logf("stage 3: probe diagnosis: scores=%v", scores)
	best := suspects[0]
	for _, s := range suspects[1:] {
		if scores[s] > scores[best] {
			best = s
		}
	}
	if scores[best] == 0 {
		// No probe incriminates anyone individually; fall back to
		// the suspect with the smallest port count (the paper's
		// anomalies were all narrow-port instructions), then
		// lexicographic.
		sort.Slice(suspects, func(a, b int) bool {
			pa, pb := instPortCount(inst, suspects[a]), instPortCount(inst, suspects[b])
			if pa != pb {
				return pa < pb
			}
			return suspects[a] < suspects[b]
		})
		best = suspects[0]
	}
	return best, nil
}

// instPortCount returns the declared port count of a key's first µop.
func instPortCount(inst *smt.Instance, key string) int {
	for _, u := range inst.Uops {
		if u.Key == key {
			if u.NumPorts == 0 {
				return 99
			}
			return u.NumPorts
		}
	}
	return 99
}

// subInstance restricts an instance to the given keys, dropping tie
// constraints (a relaxation, so UNSAT sub-problems are genuine).
func subInstance(inst *smt.Instance, keys map[string]bool) *smt.Instance {
	out := &smt.Instance{NumPorts: inst.NumPorts, Rmax: inst.Rmax, Epsilon: inst.Epsilon, Telemetry: inst.Telemetry, Portfolio: inst.Portfolio}
	for _, u := range inst.Uops {
		if keys[u.Key] {
			u.TiedToBlocker = false
			out.Uops = append(out.Uops, u)
		}
	}
	return out
}

// expsOver selects the experiments mentioning only the given keys.
func expsOver(exps []smt.MeasuredExp, keys map[string]bool) []smt.MeasuredExp {
	var out []smt.MeasuredExp
	for _, me := range exps {
		ok := true
		for k := range me.Exp {
			if !keys[k] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, me)
		}
	}
	return out
}
