//go:build race

package core

// raceEnabled trims the heaviest golden-test sweeps under the race
// detector, whose ~10× slowdown would otherwise push the package past
// the test timeout without adding coverage.
const raceEnabled = true
