package core

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"testing"

	"zenport/internal/isa"
	"zenport/internal/measure"
	"zenport/internal/portmodel"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

// forEachExperiment enumerates experiments over the keys with total
// size up to maxTotal and at most maxDistinct distinct instructions.
func forEachExperiment(keys []string, maxTotal, maxDistinct int, f func(portmodel.Experiment)) {
	e := make(portmodel.Experiment)
	var rec func(start, remaining, distinct int)
	rec = func(start, remaining, distinct int) {
		if len(e) > 0 {
			f(e)
		}
		if start >= len(keys) || distinct == 0 || remaining == 0 {
			return
		}
		for i := start; i < len(keys); i++ {
			for c := 1; c <= remaining; c++ {
				e[keys[i]] = c
				rec(i+1, remaining-c, distinct-1)
				delete(e, keys[i])
			}
		}
	}
	rec(0, maxTotal, maxDistinct)
}

// newZenPipeline builds a pipeline over the simulated Zen+ machine.
func newZenPipeline(t *testing.T, schemes []isa.Scheme, seed int64) (*Pipeline, *zen.DB) {
	t.Helper()
	db := zen.Build()
	m := zensim.NewMachine(db, zensim.Config{Noise: 0.001, Seed: seed})
	h := measure.NewHarness(m)
	opts := DefaultOptions()
	opts.Log = t.Logf
	return NewPipeline(h, schemes, opts), db
}

// allSchemes extracts the isa.Scheme list from the database.
func allSchemes(db *zen.DB) []isa.Scheme {
	var out []isa.Scheme
	for _, sp := range db.Specs() {
		out = append(out, sp.Scheme)
	}
	return out
}

// blockingSubset returns a compact scheme set that still contains all
// 13 blocking classes, the improper blockers, the anomaly cases, and
// a few multi-µop schemes — enough to exercise every pipeline stage
// quickly.
func blockingSubset(db *zen.DB) []isa.Scheme {
	keys := []string{
		// Table 1 representatives.
		"add GPR[32], GPR[32]",
		"vpor XMM, XMM, XMM",
		"vpaddd XMM, XMM, XMM",
		"vminps XMM, XMM, XMM",
		"vbroadcastss XMM, XMM",
		"vpaddsw XMM, XMM, XMM",
		"vaddps XMM, XMM, XMM",
		"mov GPR[32], MEM[32]",
		"vpslld XMM, XMM, XMM",
		"vpmuldq XMM, XMM, XMM",
		"imul GPR[32], GPR[32]",
		"vroundps XMM, XMM, IMM[8]",
		"vmovd XMM, GPR[32]",
		// Class co-members.
		"sub GPR[32], GPR[32]",
		"vpand XMM, XMM, XMM",
		"vpaddb XMM, XMM, XMM",
		"vmaxps XMM, XMM, XMM",
		"vpshufd XMM, XMM, IMM[8]",
		"vpsubsb XMM, XMM, XMM",
		"vsubps XMM, XMM, XMM",
		"mov GPR[64], MEM[64]",
		"vpsrld XMM, XMM, XMM",
		"vpmuludq XMM, XMM, XMM",
		"imul GPR[64], GPR[64]",
		"vroundpd XMM, XMM, IMM[8]",
		"vmovq XMM, GPR[64]",
		// Improper blockers.
		"mov MEM[32], GPR[32]",
		"vmovapd MEM[128], XMM",
		// Multi-µop schemes for stage 4.
		"add GPR[32], MEM[32]",
		"add MEM[32], GPR[32]",
		"add MEM[64], GPR[64]",
		"vpaddd YMM, YMM, YMM",
		"vpaddd XMM, XMM, MEM[128]",
		"vpor YMM, YMM, YMM",
		"mov MEM[64], GPR[64]",
		"vmovaps MEM[128], XMM",
		// No-port and problem schemes.
		"mov GPR[64], GPR[64]",
		"nop",
		"mov GPR[64], IMM[64]",
		"vdivps XMM, XMM, XMM",
		"cmove GPR[32], GPR[32]",
		"vfmadd132ps XMM, XMM, XMM",
		"bsf GPR[64], GPR[64]",
		"vphaddw XMM, XMM, XMM",
		// Up-front exclusions.
		"jmp IMM[32]",
		"syscall",
		"div GPR[32]",
	}
	var out []isa.Scheme
	for _, k := range keys {
		out = append(out, db.MustGet(k).Scheme)
	}
	return out
}

func TestPipelineOnBlockingSubset(t *testing.T) {
	db := zen.Build()
	p, _ := newZenPipeline(t, blockingSubset(db), 42)
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Up-front exclusions.
	for key, want := range map[string]ExclusionReason{
		"jmp IMM[32]": ExclControlFlow,
		"syscall":     ExclSystem,
		"div GPR[32]": ExclInputDependent,
	} {
		if rep.Excluded[key] != want {
			t.Errorf("%s: excluded as %q, want %q", key, rep.Excluded[key], want)
		}
	}

	// §4.1.2 exclusions.
	if rep.Excluded["vdivps XMM, XMM, XMM"] != ExclIrregularTP {
		t.Errorf("vdivps: %q, want irregular throughput", rep.Excluded["vdivps XMM, XMM, XMM"])
	}
	if rep.Excluded["mov GPR[64], IMM[64]"] != ExclUnstableAlone {
		t.Errorf("mov r64,imm64: %q, want unstable alone", rep.Excluded["mov GPR[64], IMM[64]"])
	}

	// No-port schemes.
	for _, key := range []string{"mov GPR[64], GPR[64]", "nop"} {
		if !rep.Info[key].NoPorts {
			t.Errorf("%s: not detected as no-port", key)
		}
		if u, ok := rep.Final.Get(key); !ok || len(u) != 0 {
			t.Errorf("%s: final usage %v, want empty", key, u)
		}
	}

	// §4.2 exclusions.
	if rep.Excluded["cmove GPR[32], GPR[32]"] != ExclUnstablePaired {
		t.Errorf("cmov: %q, want unstable when paired", rep.Excluded["cmove GPR[32], GPR[32]"])
	}
	if rep.Excluded["vfmadd132ps XMM, XMM, XMM"] != ExclUnstablePaired {
		t.Errorf("fma: %q, want unstable when paired", rep.Excluded["vfmadd132ps XMM, XMM, XMM"])
	}

	// 13 blocking classes (Table 1).
	if len(rep.Classes) != 13 {
		for _, c := range rep.Classes {
			t.Logf("class: %s (%d ports, %d members)", c.Rep, c.PortCount, len(c.Members))
		}
		t.Fatalf("found %d blocking classes, want 13", len(rep.Classes))
	}
	classByRep := map[string]*BlockClass{}
	for i := range rep.Classes {
		classByRep[rep.Classes[i].Rep] = &rep.Classes[i]
	}
	for rep2, members := range map[string]int{
		"add GPR[32], GPR[32]":  2,
		"vpor XMM, XMM, XMM":    2,
		"mov GPR[32], MEM[32]":  2,
		"imul GPR[32], GPR[32]": 2,
	} {
		cls, ok := classByRep[rep2]
		if !ok {
			t.Errorf("missing class %s", rep2)
			continue
		}
		if len(cls.Members) != members {
			t.Errorf("class %s has %d members, want %d: %v", rep2, len(cls.Members), members, cls.Members)
		}
	}

	// §4.3 anomalies: imul, vpmuldq, vmovd must be excluded.
	anom := map[string]bool{}
	for _, a := range rep.AnomalousBlockers {
		anom[a] = true
	}
	for _, want := range []string{"imul GPR[32], GPR[32]", "vpmuldq XMM, XMM, XMM", "vmovd XMM, GPR[32]"} {
		if !anom[want] {
			t.Errorf("anomalous blocker %s not excluded (got %v)", want, rep.AnomalousBlockers)
		}
	}

	// Table 2: under the 5-IPC bottleneck the blocker mapping is not
	// unique (§4.3: "[6,7,8,9]" vs "[0,6,7,8]" variants are
	// indistinguishable), so we check observational equivalence: the
	// inferred mapping must predict the same bounded throughput as
	// the ground truth for every experiment of up to 5 instructions
	// over up to 3 distinct blockers — the same space Algorithm 2
	// explored.
	truth := portmodel.NewMapping(10)
	var blockerKeys []string
	for key := range rep.BlockerMapping.Usage {
		truth.Set(key, db.MustGet(key).Uops)
		blockerKeys = append(blockerKeys, key)
	}
	sort.Strings(blockerKeys)
	mismatches := 0
	forEachExperiment(blockerKeys, 5, 3, func(e portmodel.Experiment) {
		ti, err1 := rep.BlockerMapping.InverseThroughputBounded(e, 5)
		tt, err2 := truth.InverseThroughputBounded(e, 5)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval %v: %v %v", e, err1, err2)
		}
		if d := ti - tt; d > 2*0.02*float64(e.Len()) || d < -2*0.02*float64(e.Len()) {
			if mismatches < 5 {
				t.Errorf("observational mismatch on %v: inferred %v, truth %v", e, ti, tt)
			}
			mismatches++
		}
	})
	if mismatches > 0 {
		t.Errorf("%d observational mismatches", mismatches)
	}

	// Structural facts that ARE forced by size-≤5 experiments:
	// the FP class hierarchy and the shared store µop.
	ports := func(key string) portmodel.PortSet {
		u, ok := rep.BlockerMapping.Get(key)
		if !ok || len(u) == 0 {
			t.Fatalf("no usage for %s", key)
		}
		return u[0].Ports
	}
	if !ports("vminps XMM, XMM, XMM").SubsetOf(ports("vpaddd XMM, XMM, XMM")) {
		t.Error("vminps ⊄ vpaddd class")
	}
	if !ports("vpaddd XMM, XMM, XMM").SubsetOf(ports("vpor XMM, XMM, XMM")) {
		t.Error("vpaddd ⊄ vpor class")
	}
	if !ports("vpslld XMM, XMM, XMM").SubsetOf(ports("vbroadcastss XMM, XMM")) {
		t.Error("vpslld port not in vbroadcastss class")
	}
	if !ports("vroundps XMM, XMM, IMM[8]").SubsetOf(ports("vaddps XMM, XMM, XMM")) {
		t.Error("vroundps port not in vaddps class")
	}
	// Both improper blockers share the store µop (Table 2: [5] + …).
	movStore, _ := rep.BlockerMapping.Get("mov MEM[32], GPR[32]")
	vmovStore, _ := rep.BlockerMapping.Get("vmovapd MEM[128], XMM")
	if len(movStore) < 1 || len(vmovStore) < 1 {
		t.Fatal("improper blockers missing from mapping")
	}
	shared := false
	for _, a := range movStore {
		for _, b := range vmovStore {
			if a.Ports == b.Ports && a.Ports.Size() == 1 {
				shared = true
			}
		}
	}
	if !shared {
		t.Errorf("no shared single-port store µop: mov=%v vmovapd=%v", movStore, vmovStore)
	}

	// Stage 4 regular patterns (§4.4): memory forms add a load µop;
	// 256-bit forms double the µops; RMW forms add store (+AGU).
	checkUsage := func(key string, wantTotal int) {
		t.Helper()
		u, ok := rep.Characterized[key]
		if !ok {
			t.Errorf("%s: not characterized (excluded: %q)", key, rep.Excluded[key])
			return
		}
		if u.TotalUops() != wantTotal {
			t.Errorf("%s: %v (%d µops), want %d", key, u, u.TotalUops(), wantTotal)
		}
	}
	checkUsage("add GPR[32], MEM[32]", 2)
	checkUsage("vpaddd YMM, YMM, YMM", 2)
	checkUsage("vpaddd XMM, XMM, MEM[128]", 2)
	checkUsage("add MEM[64], GPR[64]", 2)
	checkUsage("add MEM[32], GPR[32]", 3)

	// The final mapping predicts throughputs of fresh kernels.
	e := portmodel.Experiment{"add GPR[32], MEM[32]": 2, "vpaddd XMM, XMM, XMM": 2}
	tp, err := rep.Final.InverseThroughputBounded(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	tTrue, err := db.Truth().InverseThroughputBounded(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	if diff := tp - tTrue; diff > 0.1 || diff < -0.1 {
		t.Errorf("final mapping predicts %v for %v, truth %v", tp, e, tTrue)
	}
}

// goldenSubset is a reduced scheme set for the parallel-determinism
// golden test: six blocking classes, one improper blocker, multi-µop
// schemes, and a no-port scheme — every stage runs, but the CEGAR
// search stays small enough to repeat per worker count.
func goldenSubset(db *zen.DB) []isa.Scheme {
	keys := []string{
		"add GPR[32], GPR[32]",
		"vpor XMM, XMM, XMM",
		"vpaddd XMM, XMM, XMM",
		"vminps XMM, XMM, XMM",
		"mov GPR[32], MEM[32]",
		"vpslld XMM, XMM, XMM",
		"sub GPR[32], GPR[32]",
		"vpand XMM, XMM, XMM",
		"mov MEM[32], GPR[32]",
		"vmovapd MEM[128], XMM",
		"add GPR[32], MEM[32]",
		"add MEM[32], GPR[32]",
		"vpor YMM, YMM, YMM",
		"nop",
		"mov GPR[64], GPR[64]",
	}
	var out []isa.Scheme
	for _, k := range keys {
		out = append(out, db.MustGet(k).Scheme)
	}
	return out
}

// TestPipelineWorkerCountInvariance is the tentpole's golden test:
// the complete pipeline, run with 1, 4, and 16 measurement workers on
// the same seed, must produce a byte-identical final mapping JSON —
// the same artifact zeninfer -out writes.
func TestPipelineWorkerCountInvariance(t *testing.T) {
	db := zen.Build()
	var golden []byte
	workerSweep := []int{1, 4, 16}
	if raceEnabled {
		workerSweep = []int{1, 4}
	}
	for _, workers := range workerSweep {
		p, _ := newZenPipeline(t, goldenSubset(db), 42)
		p.H.Workers = workers
		rep, err := p.RunContext(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		data, err := json.MarshalIndent(rep.Final, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = data
			if rep.Supported() == 0 {
				t.Fatal("golden run characterized nothing")
			}
			continue
		}
		if string(data) != string(golden) {
			t.Fatalf("mapping JSON differs between 1 and %d workers", workers)
		}
	}
}

// TestPipelinePortfolioInvariance is the portfolio tentpole's golden
// test: the complete pipeline over the blocking subset — including
// the §4.3 anomaly UNSATs and culprit isolation — must produce a
// byte-identical final mapping JSON at every portfolio width K and at
// every measurement worker count. Solving is parallel; the artifact
// is not allowed to know.
func TestPipelinePortfolioInvariance(t *testing.T) {
	db := zen.Build()
	var golden []byte
	// One golden K=0 run, then the K sweep at fixed workers and the
	// worker sweep at fixed K — both axes covered without the full
	// cross product (each cell is a complete pipeline run).
	sweep := []struct{ k, workers int }{
		{0, 4}, {2, 4}, {4, 1}, {4, 16}, {8, 4},
	}
	if raceEnabled {
		sweep = []struct{ k, workers int }{{0, 4}, {4, 4}}
	}
	for _, c := range sweep {
		p, _ := newZenPipeline(t, blockingSubset(db), 42)
		p.Opts.Portfolio = c.k
		p.H.Workers = c.workers
		rep, err := p.RunContext(context.Background())
		if err != nil {
			t.Fatalf("K=%d workers=%d: %v", c.k, c.workers, err)
		}
		data, err := json.MarshalIndent(rep.Final, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = data
			if rep.Supported() == 0 {
				t.Fatal("golden run characterized nothing")
			}
			continue
		}
		if string(data) != string(golden) {
			t.Fatalf("mapping JSON differs between K=0 and K=%d (workers=%d)", c.k, c.workers)
		}
		if c.k >= 2 {
			s := rep.Supervision
			if s == nil || s.Solver.Portfolio == nil || s.Solver.Portfolio.Queries == 0 {
				t.Fatalf("K=%d: no portfolio telemetry in the report", c.k)
			}
		}
	}
}

// TestPipelineCancellation: a cancelled context aborts the pipeline
// promptly with an error wrapping context.Canceled.
func TestPipelineCancellation(t *testing.T) {
	db := zen.Build()
	p, _ := newZenPipeline(t, goldenSubset(db), 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
