package core

import (
	"encoding/json"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"zenport/internal/isa"
	"zenport/internal/measure"
	"zenport/internal/persist"
	"zenport/internal/zen"
	"zenport/internal/zensim"
)

// errCrashed simulates a process death: after the injection point
// every measurement fails, aborting the run the way a kill would.
var errCrashed = errors.New("simulated crash")

// crashProc wraps the simulated machine and fails every Execute call
// past the limit. RestoreExecCount and the other Processor methods
// are promoted from the embedded machine, so the persistence layer
// sees a fully capable processor.
type crashProc struct {
	*zensim.Machine
	limit int64
	calls atomic.Int64
}

func (cp *crashProc) Execute(kernel []string, iterations int) (measure.Counters, error) {
	if cp.calls.Add(1) > cp.limit {
		return measure.Counters{}, errCrashed
	}
	return cp.Machine.Execute(kernel, iterations)
}

// newPersistedPipeline builds a pipeline over a fresh machine with a
// crash-safe store and checkpointer rooted at dir, as zeninfer
// -cache-dir does. limit bounds the number of successful processor
// executions.
func newPersistedPipeline(t *testing.T, dir string, schemes []isa.Scheme, workers int, limit int64, resume bool) (*Pipeline, *crashProc) {
	t.Helper()
	db := zen.Build()
	m := zensim.NewMachine(db, zensim.Config{Noise: 0.001, Seed: 42})
	proc := &crashProc{Machine: m, limit: limit}
	h := measure.NewHarness(proc)
	h.Workers = workers
	const fp = "resume-test seed=42 noise=0.001"
	store, err := persist.Open(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately never closed: a killed process does not compact
	// either. Recovery must work from the raw journal alone.
	if err := store.Attach(h.Engine); err != nil {
		t.Fatal(err)
	}
	ck, err := persist.NewCheckpointer(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Log = t.Logf
	opts.Checkpointer = ck
	opts.Resume = resume
	return NewPipeline(h, schemes, opts), proc
}

// TestPipelineKillAndResume is the tentpole's headline test: a run
// killed mid-stage-4 and resumed with -resume semantics must produce
// a final mapping JSON byte-identical to an uninterrupted run — at 1,
// 4, and 16 workers — while re-executing only the experiments the
// interrupted run had not finished.
func TestPipelineKillAndResume(t *testing.T) {
	db := zen.Build()
	schemes := goldenSubset(db)

	// Reference: one uninterrupted, unpersisted run.
	ref, _ := newZenPipeline(t, schemes, 42)
	ref.H.Workers = 4
	refRep, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := json.MarshalIndent(refRep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	refExec := ref.H.Metrics().Executed
	if refExec == 0 {
		t.Fatal("reference run executed nothing")
	}

	// crashProc counts raw processor calls, so the injection point is
	// set from the reference run's own ProcessorCalls metric (adaptive
	// escalation makes the per-experiment call count variable). The
	// stage-4 characterization grids dominate the execution count
	// (3 runs, each re-measuring the scheme×blocker grid), so failing
	// at 85% of the reference volume lands inside stage 4.
	crashAt := int64(ref.H.Metrics().ProcessorCalls) * 85 / 100

	workerSweep := []int{1, 4, 16}
	if raceEnabled {
		// One concurrent worker count is enough race coverage; the
		// full sweep is the non-race golden test.
		workerSweep = []int{4}
	}
	for _, workers := range workerSweep {
		dir := t.TempDir()

		crashed, _ := newPersistedPipeline(t, dir, schemes, workers, crashAt, false)
		if _, err := crashed.Run(); !errors.Is(err, errCrashed) {
			t.Fatalf("workers=%d: interrupted run: err = %v, want simulated crash", workers, err)
		}
		// The kill must have landed mid-stage-4: stage 3 completed and
		// checkpointed, the final report did not.
		ck, err := persist.NewCheckpointer(dir, "resume-test seed=42 noise=0.001")
		if err != nil {
			t.Fatal(err)
		}
		var probe stageCheckpoint
		if ok, err := ck.Load("stage3", &probe); err != nil || !ok {
			t.Fatalf("workers=%d: stage3 checkpoint after crash: ok=%v err=%v — crash landed before stage 4", workers, ok, err)
		}
		if ok, _ := ck.Load("final", &probe); ok {
			t.Fatalf("workers=%d: final checkpoint exists — crash landed after stage 4", workers)
		}

		resumed, _ := newPersistedPipeline(t, dir, schemes, workers, math.MaxInt64, true)
		rep, err := resumed.Run()
		if err != nil {
			t.Fatalf("workers=%d: resumed run: %v", workers, err)
		}
		data, err := json.MarshalIndent(rep.Final, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(golden) {
			t.Fatalf("workers=%d: resumed mapping JSON differs from uninterrupted run", workers)
		}

		// Only unfinished experiments may re-execute: stages 1–3 and
		// the completed stage-4 runs are restored, so the resumed run
		// must need well under half the full run's processor work.
		resExec := resumed.H.Metrics().Executed
		if resExec >= refExec/2 {
			t.Errorf("workers=%d: resumed run executed %d experiments, full run needs %d — completed work was not reused",
				workers, resExec, refExec)
		}
		t.Logf("workers=%d: full run %d executions, resumed run %d", workers, refExec, resExec)
	}
}

// TestPipelineResumeAfterEarlyCrash kills the run during the early
// stages and checks the resumed output is still byte-identical.
func TestPipelineResumeAfterEarlyCrash(t *testing.T) {
	db := zen.Build()
	schemes := goldenSubset(db)

	ref, _ := newZenPipeline(t, schemes, 42)
	refRep, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := json.MarshalIndent(refRep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	crashed, _ := newPersistedPipeline(t, dir, schemes, 4, int64(ref.H.Metrics().ProcessorCalls)/5, false)
	if _, err := crashed.Run(); !errors.Is(err, errCrashed) {
		t.Fatalf("interrupted run: err = %v, want simulated crash", err)
	}
	resumed, _ := newPersistedPipeline(t, dir, schemes, 4, math.MaxInt64, true)
	rep, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(golden) {
		t.Fatal("resumed mapping JSON differs from uninterrupted run")
	}
}

// TestPipelineResumeCompletedRun: resuming a finished run restores the
// final report from its checkpoint without re-running any stage or
// measurement.
func TestPipelineResumeCompletedRun(t *testing.T) {
	db := zen.Build()
	schemes := goldenSubset(db)
	dir := t.TempDir()

	first, _ := newPersistedPipeline(t, dir, schemes, 4, math.MaxInt64, false)
	firstRep, err := first.Run()
	if err != nil {
		t.Fatal(err)
	}
	golden, err := json.MarshalIndent(firstRep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	again, proc := newPersistedPipeline(t, dir, schemes, 4, math.MaxInt64, true)
	rep, err := again.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n := proc.calls.Load(); n != 0 {
		t.Errorf("resuming a completed run executed %d kernels, want 0", n)
	}
	data, err := json.MarshalIndent(rep.Final, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(golden) {
		t.Fatal("restored mapping JSON differs from the original run")
	}
}
