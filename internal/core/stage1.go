package core

import (
	"context"
	"math"
	"sort"
	"strings"

	"zenport/internal/isa"
	"zenport/internal/portmodel"
)

// stage1 benchmarks every scheme individually: op counts, the µop
// postulate, throughput, and the blocking-candidate test (§3.2 steps
// 1–2, §4.1). The per-scheme sweep runs as two measurement batches:
// all singleton experiments first, then the 8× confirmation kernels
// for schemes whose singleton throughput sits at the frontend bound.
func (p *Pipeline) stage1(ctx context.Context, rep *Report) error {
	rmax := p.H.P.Rmax()
	var keys []string
	for i := range p.Schemes {
		s := p.Schemes[i]
		key := s.Key()
		// Up-front removals based on ISA metadata, as the paper does
		// with the uops.info scheme list.
		switch {
		case s.Attr.Has(isa.AttrControlFlow):
			rep.Excluded[key] = ExclControlFlow
			continue
		case s.Attr.Has(isa.AttrSystem):
			rep.Excluded[key] = ExclSystem
			continue
		case s.Attr.Has(isa.AttrInputDependent):
			rep.Excluded[key] = ExclInputDependent
			continue
		case hasHardwiredOperand(s):
			// §4.1.2: operands hardwired or restricted to ah..dh
			// cannot be measured without dependency effects.
			rep.Excluded[key] = ExclIrregularTP
			continue
		}
		rep.Info[key] = &SchemeInfo{Scheme: s}
		keys = append(keys, key)
	}

	exps := make([]portmodel.Experiment, len(keys))
	for i, key := range keys {
		exps[i] = portmodel.Exp(key)
	}
	results, err := p.H.MeasureBatch(ctx, exps)
	if err != nil {
		return err
	}

	// The no-port confirmation kernels are decided by the singleton
	// results alone, so they form a second batch.
	var confirmKeys []string
	for i, key := range keys {
		if rmax > 0 && math.Abs(results[i].InvThroughput-1/rmax) <= p.Opts.Epsilon {
			confirmKeys = append(confirmKeys, key)
		}
	}
	confirmExps := make([]portmodel.Experiment, len(confirmKeys))
	for i, key := range confirmKeys {
		confirmExps[i] = portmodel.Experiment{key: 8}
	}
	confirmRes, err := p.H.MeasureBatch(ctx, confirmExps)
	if err != nil {
		return err
	}
	confirm := make(map[string]float64, len(confirmKeys))
	for i, key := range confirmKeys {
		confirm[key] = confirmRes[i].InvThroughput
	}

	for i, key := range keys {
		r := results[i]
		info := rep.Info[key]
		info.OpsMeasured = r.OpsPerIteration
		info.TInv = r.InvThroughput
		info.UopsPostulated = postulateUops(info.Scheme, r.OpsPerIteration)

		// Instability alone (mov of 64-bit immediates, §4.1.2): the
		// run-to-run spread exposes the bimodal behaviour.
		if r.Spread > p.Opts.SpreadThreshold {
			rep.Excluded[key] = ExclUnstableAlone
			continue
		}

		// No-port instructions: nops and eliminated movs retire at
		// the frontend bound (§4.1.2). Confirm with a longer kernel
		// so a 1/Rmax-cycle coincidence cannot fool us.
		if t8, ok := confirm[key]; ok {
			if math.Abs(t8-8/rmax) <= 8*p.Opts.Epsilon {
				info.NoPorts = true
				continue
			}
		}

		// Blocking candidates execute as a single µop...
		if info.UopsPostulated != 1 {
			continue
		}
		// ...with a port count measurable as the plain throughput
		// (§3.2 step 2). Irregular values reveal non-pipelined or
		// otherwise out-of-model behaviour (§4.1.2).
		ports := 1 / r.InvThroughput
		rounded := math.Round(ports)
		if rounded < 1 || math.Abs(ports-rounded) > 0.15 {
			rep.Excluded[key] = ExclIrregularTP
			continue
		}
		info.PortCount = int(rounded)
		info.Candidate = true
		rep.Candidates++
	}
	return nil
}

// hasHardwiredOperand reports AH-register operands.
func hasHardwiredOperand(s isa.Scheme) bool {
	for _, o := range s.Operands {
		if o.Kind == isa.AH {
			return true
		}
	}
	// One-operand multiplies and sign-extensions accumulate into
	// hardwired registers; the ISA metadata marks them.
	return s.Attr.Has(isa.AttrHardwired)
}

// postulateUops applies the paper's macro-op→µop correspondence
// (§4.1.1): start from the counted macro-ops and add one µop per
// memory operand of at most 128 bits and two per 256-bit operand,
// excluding lea (address arithmetic only) and loading movs (loads go
// straight through the load ports).
func postulateUops(s isa.Scheme, opsMeasured float64) int {
	uops := int(math.Round(opsMeasured))
	if s.Mnemonic == "lea" {
		return uops
	}
	// Stack pushes access memory through an implicit operand (the
	// uops.info operand metadata records it; our scheme keys do not).
	if s.Mnemonic == "push" {
		uops++
	}
	for i, o := range s.Operands {
		if o.Kind != isa.MEM {
			continue
		}
		if isMovMnemonic(s.Mnemonic) && i > 0 {
			// Loading mov: the memory operand is the source.
			continue
		}
		if o.Width >= 256 {
			uops += 2
		} else {
			uops++
		}
	}
	return uops
}

// isMovMnemonic matches plain data movement (mov / vmov*), whose
// loading forms are excluded from the postulate's +1. Storing movs
// (memory destination, operand 0) do get the extra µop — the paper's
// deviation from AMD's SOG.
func isMovMnemonic(mn string) bool {
	return mn == "mov" || strings.HasPrefix(mn, "vmov")
}

// candidateKeys returns stage-1 candidates in deterministic order:
// preferred representatives first, then sorted keys.
func (p *Pipeline) candidateKeys(rep *Report) []string {
	var keys []string
	for key, info := range rep.Info {
		if info.Candidate && rep.Excluded[key] == "" {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	rank := make(map[string]int, len(p.Opts.PreferredReps))
	for i, k := range p.Opts.PreferredReps {
		rank[k] = i + 1
	}
	sort.SliceStable(keys, func(a, b int) bool {
		ra, rb := rank[keys[a]], rank[keys[b]]
		if ra == 0 {
			ra = 1 << 20
		}
		if rb == 0 {
			rb = 1 << 20
		}
		return ra < rb
	})
	return keys
}
