package core

import (
	"testing"

	"zenport/internal/isa"
	"zenport/internal/portmodel"
)

func TestPostulateUops(t *testing.T) {
	cases := []struct {
		scheme isa.Scheme
		macro  float64
		want   int
	}{
		// Plain register op: µops = macro-ops.
		{isa.Scheme{Mnemonic: "add", Operands: []isa.Operand{isa.R(32), isa.R(32)}}, 1, 1},
		// Memory source: +1.
		{isa.Scheme{Mnemonic: "add", Operands: []isa.Operand{isa.R(32), isa.M(32)}}, 1, 2},
		// 256-bit memory: +2.
		{isa.Scheme{Mnemonic: "vpaddd", Operands: []isa.Operand{isa.Y(), isa.Y(), isa.M(256)}}, 2, 4},
		// lea: excluded from the postulate.
		{isa.Scheme{Mnemonic: "lea", Operands: []isa.Operand{isa.R(64), isa.M(64)}}, 1, 1},
		// Loading mov: excluded.
		{isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.R(32), isa.M(32)}}, 1, 1},
		{isa.Scheme{Mnemonic: "vmovaps", Operands: []isa.Operand{isa.X(), isa.M(128)}}, 1, 1},
		// Storing mov: +1 (the paper's deviation from the SOG).
		{isa.Scheme{Mnemonic: "mov", Operands: []isa.Operand{isa.M(32), isa.R(32)}}, 1, 2},
		// push: implicit memory operand.
		{isa.Scheme{Mnemonic: "push", Operands: []isa.Operand{isa.R(64)}}, 1, 2},
		// Microcoded with memory: macro-ops + 1.
		{isa.Scheme{Mnemonic: "bsf", Operands: []isa.Operand{isa.R(64), isa.M(64)}}, 8, 9},
	}
	for _, c := range cases {
		if got := postulateUops(c.scheme, c.macro); got != c.want {
			t.Errorf("postulateUops(%s, %v) = %d, want %d", c.scheme.Key(), c.macro, got, c.want)
		}
	}
}

func TestBlockCount(t *testing.T) {
	// k = min(100, max(10, |pu|·µops, 2·|pu|·max(1,⌊tp⌋))).
	cases := []struct {
		pu, uops int
		tinv     float64
		want     int
	}{
		{1, 1, 0.25, 10},
		{4, 3, 0.25, 12},
		{4, 1, 3.7, 24},
		{2, 60, 1, 100},
		{4, 9, 1, 36},
	}
	for _, c := range cases {
		if got := blockCount(c.pu, c.uops, c.tinv); got != c.want {
			t.Errorf("blockCount(%d,%d,%v) = %d, want %d", c.pu, c.uops, c.tinv, got, c.want)
		}
	}
}

func TestFoundToUsageAndSameFound(t *testing.T) {
	a := map[portmodel.PortSet]int{
		portmodel.MakePortSet(0, 1): 2,
		portmodel.MakePortSet(2):    1,
	}
	u := foundToUsage(a)
	if u.TotalUops() != 3 || len(u) != 2 {
		t.Fatalf("foundToUsage = %v", u)
	}
	b := map[portmodel.PortSet]int{
		portmodel.MakePortSet(2):    1,
		portmodel.MakePortSet(0, 1): 2,
	}
	if !sameFound(a, b) {
		t.Fatal("sameFound should be order-independent")
	}
	b[portmodel.MakePortSet(2)] = 2
	if sameFound(a, b) {
		t.Fatal("sameFound missed a difference")
	}
	if sameFound(a, map[portmodel.PortSet]int{}) {
		t.Fatal("sameFound missed a size difference")
	}
}

func TestHasHardwiredOperand(t *testing.T) {
	ah := isa.Scheme{Mnemonic: "add", Operands: []isa.Operand{isa.Op(isa.AH, 8), isa.Op(isa.AH, 8)}}
	if !hasHardwiredOperand(ah) {
		t.Fatal("AH operand not detected")
	}
	marked := isa.Scheme{Mnemonic: "mul", Operands: []isa.Operand{isa.R(32)}, Attr: isa.AttrHardwired}
	if !hasHardwiredOperand(marked) {
		t.Fatal("attribute not detected")
	}
	plain := isa.Scheme{Mnemonic: "add", Operands: []isa.Operand{isa.R(32), isa.R(32)}}
	if hasHardwiredOperand(plain) {
		t.Fatal("false positive")
	}
}

func TestExclusionReasonsDistinct(t *testing.T) {
	reasons := []ExclusionReason{
		ExclControlFlow, ExclSystem, ExclInputDependent, ExclUnstableAlone,
		ExclIrregularTP, ExclUnstablePaired, ExclCEGARAnomaly, ExclCharUnstable,
	}
	seen := map[ExclusionReason]bool{}
	for _, r := range reasons {
		if r == "" || seen[r] {
			t.Fatalf("duplicate or empty reason %q", r)
		}
		seen[r] = true
	}
}

func TestImproperOwnPorts(t *testing.T) {
	rep := &Report{Classes: []BlockClass{
		{Rep: "alu", Ports: portmodel.MakePortSet(6, 7, 8, 9)},
		{Rep: "shift", Ports: portmodel.MakePortSet(2)},
	}}
	usage := portmodel.Usage{
		{Ports: portmodel.MakePortSet(5), Count: 1},
		{Ports: portmodel.MakePortSet(6, 7, 8, 9), Count: 1},
	}
	own, ok := improperOwnPorts(rep, usage)
	if !ok || own != portmodel.MakePortSet(5) {
		t.Fatalf("improperOwnPorts = %v, %v", own, ok)
	}
	// All µops coincide with classes: no own port.
	usage = portmodel.Usage{{Ports: portmodel.MakePortSet(2), Count: 1}}
	if _, ok := improperOwnPorts(rep, usage); ok {
		t.Fatal("expected no own port")
	}
}
