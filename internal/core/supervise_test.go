package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"zenport/internal/sat"
	"zenport/internal/zen"
)

// TestPipelineSupervisionTelemetry: an ordinary run must surface the
// solver's work in the report — queries, conflicts, propagations —
// and leave nothing unresolved or relaxed.
func TestPipelineSupervisionTelemetry(t *testing.T) {
	db := zen.Build()
	p, _ := newZenPipeline(t, goldenSubset(db), 42)
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Supervision == nil {
		t.Fatal("no supervision summary on a completed run")
	}
	s := rep.Supervision.Solver
	if s.Queries == 0 || s.TheoryIterations == 0 {
		t.Errorf("solver telemetry empty: %+v", s)
	}
	if s.Solver.Decisions == 0 || s.Solver.Propagations == 0 {
		t.Errorf("CDCL counters empty: %+v", s.Solver)
	}
	if len(rep.Unresolved) != 0 || len(rep.Relaxed) != 0 {
		t.Errorf("clean run flagged unresolved=%v relaxed=%v", rep.Unresolved, rep.Relaxed)
	}
	if rep.Supervision.BudgetStops != 0 || len(rep.Supervision.Cores) != 0 {
		t.Errorf("clean unlimited run reported budget stops or cores: %+v", rep.Supervision)
	}
}

// TestPipelineBudgetDegrades: with a solver budget too small for even
// one query (an already-expired deadline, caught at Solve entry), the
// pipeline must not die — stage 3 degrades to an empty blocker mapping
// with every blocker flagged Unresolved, and stage 4 in turn leaves
// its schemes unresolved instead of failing on the missing blocking
// suite.
func TestPipelineBudgetDegrades(t *testing.T) {
	db := zen.Build()
	p, _ := newZenPipeline(t, goldenSubset(db), 42)
	p.Opts.SolverBudget = sat.Budget{Deadline: time.Now().Add(-time.Second)}
	rep, err := p.Run()
	if err != nil {
		t.Fatalf("budget-starved run died: %v", err)
	}
	if rep.Supervision == nil || rep.Supervision.BudgetStops == 0 {
		t.Fatal("no budget stop recorded")
	}
	if len(rep.Unresolved) == 0 {
		t.Fatal("budget-starved run left nothing unresolved")
	}
	if rep.Final == nil {
		t.Fatal("no final mapping emitted")
	}
	// The no-port schemes need no solver and must still be present.
	for _, key := range []string{"nop", "mov GPR[64], GPR[64]"} {
		if u, ok := rep.Final.Get(key); !ok || len(u) != 0 {
			t.Errorf("%s: final usage %v, %v — want present and empty", key, u, ok)
		}
	}
	// Unresolved schemes are absent from the mapping, not guessed.
	for _, key := range rep.Unresolved {
		if _, ok := rep.Final.Get(key); ok {
			t.Errorf("unresolved scheme %s present in final mapping", key)
		}
	}
}

// TestPipelineBudgetAcceptsUnproven: a propagation budget that lets
// small satisfiability queries finish but trips on the (much larger)
// uniqueness search must make stage 3 accept the current consistent
// mapping — unproven, but usable — rather than abort, and stage 4
// still characterizes against it.
func TestPipelineBudgetAcceptsUnproven(t *testing.T) {
	db := zen.Build()
	p, _ := newZenPipeline(t, goldenSubset(db), 42)
	p.Opts.SolverBudget = sat.Budget{MaxPropagations: 1}
	rep, err := p.Run()
	if err != nil {
		t.Fatalf("budget-limited run died: %v", err)
	}
	if rep.Supervision.BudgetStops == 0 {
		t.Fatal("no budget stop recorded")
	}
	if rep.BlockerMapping == nil || len(rep.BlockerMapping.Usage) == 0 {
		t.Fatal("no blocker mapping accepted")
	}
	if len(rep.Characterized) == 0 {
		t.Fatal("stage 4 characterized nothing against the accepted mapping")
	}
}

// TestPipelineRetryUnresolvedOnResume: resuming a completed-but-
// degraded run must retry exactly the unresolved schemes and fold the
// recovered results into the final mapping, leaving everything else
// untouched.
func TestPipelineRetryUnresolvedOnResume(t *testing.T) {
	db := zen.Build()
	dir := t.TempDir()
	p1, proc1 := newPersistedPipeline(t, dir, goldenSubset(db), 4, math.MaxInt64, false)
	rep1, err := p1.Run()
	if err != nil {
		t.Fatal(err)
	}
	fullCalls := proc1.calls.Load()
	const key = "add GPR[32], MEM[32]"
	want, ok := rep1.Characterized[key]
	if !ok {
		t.Fatalf("%s not characterized in reference run", key)
	}

	// Doctor the final checkpoint into the shape a vote-failure
	// degradation leaves behind: the scheme excluded as char-unstable,
	// flagged unresolved, and absent from the final mapping.
	rep1.Excluded[key] = ExclCharUnstable
	delete(rep1.Characterized, key)
	rep1.Unresolved = []string{key}
	rep1.Final = p1.assembleFinal(rep1)
	if _, ok := rep1.Final.Get(key); ok {
		t.Fatal("doctored mapping still contains the scheme")
	}
	if err := p1.saveStage("final", rep1, nil); err != nil {
		t.Fatal(err)
	}

	p2, proc := newPersistedPipeline(t, dir, goldenSubset(db), 4, math.MaxInt64, true)
	rep2, err := p2.Run()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if len(rep2.Unresolved) != 0 {
		t.Fatalf("still unresolved after retry: %v", rep2.Unresolved)
	}
	if rep2.Excluded[key] != "" {
		t.Errorf("%s still excluded as %q", key, rep2.Excluded[key])
	}
	got, ok := rep2.Characterized[key]
	if !ok || !reflect.DeepEqual(got, want) {
		t.Errorf("%s re-characterized as %v, want %v", key, got, want)
	}
	if u, ok := rep2.Final.Get(key); !ok || !reflect.DeepEqual(u, want) {
		t.Errorf("%s in final mapping: %v (%v), want %v", key, u, ok, want)
	}
	// The retry must only re-measure the one scheme's grid, not rerun
	// the pipeline.
	if calls := proc.calls.Load(); calls*2 >= fullCalls {
		t.Errorf("retry made %d processor calls, full run %d — looks like a rerun", calls, fullCalls)
	}
}
