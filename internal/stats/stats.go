// Package stats provides the accuracy metrics of the paper's
// evaluation (Figure 5a): mean absolute percentage error, Pearson's
// correlation coefficient, and Kendall's rank correlation τ, plus
// small helpers shared by the evaluation harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MAD returns the median absolute deviation of xs from its median.
// Unlike the standard deviation it is insensitive to wild outliers,
// which is what makes it the right scale estimate for rejecting them.
// Empty input yields 0, never NaN.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - m)
	}
	return Median(devs)
}

// madToSigma converts a MAD into a normal-consistent standard
// deviation estimate (MAD = 0.6745·σ for a Gaussian).
const madToSigma = 1 / 0.6745

// TrimmedMean returns the mean of xs after dropping a fraction frac of
// the samples from each tail (frac is clamped into [0, 0.5)). With
// nothing left after trimming it falls back to the plain mean; empty
// input yields 0, never NaN.
func TrimmedMean(xs []float64, frac float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if frac < 0 {
		frac = 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	k := int(frac * float64(len(c)))
	if 2*k >= len(c) {
		return Mean(c)
	}
	return Mean(c[k : len(c)-k])
}

// RelSpread returns the raw relative spread (max−min)/|median| of xs.
// It is the instability signal of §4.1.2/§4.2: bimodal measurements
// show a large value that the median alone would hide. Fewer than two
// samples, or a zero median, yield 0 — never NaN or Inf.
func RelSpread(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Median(xs)
	if m == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return (hi - lo) / math.Abs(m)
}

// RobustSpread returns the interquartile range of xs relative to its
// median, IQR/|median|. Unlike RelSpread it does not grow with the
// sample count under constant noise, which makes it the right
// convergence criterion for adaptive repetition: more samples tighten
// it only when the underlying distribution is actually concentrated.
// Fewer than two samples, or a zero median, yield 0 — never NaN.
func RobustSpread(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Median(xs)
	if m == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return (percentile(c, 0.75) - percentile(c, 0.25)) / math.Abs(m)
}

// percentile linearly interpolates the p-quantile of sorted xs.
func percentile(sorted []float64, p float64) float64 {
	idx := p * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// RejectOutliers computes a keep-mask over xs: sample i is rejected
// when its distance from the median exceeds
//
//	max(kMAD · MAD/0.6745, minRel · |median|).
//
// The MAD term is the classic robust z-score test; the relative floor
// keeps it from firing on structure rather than corruption — genuine
// bimodal measurements (modes within minRel of the median, §4.1.2)
// survive at any mode split, while far-out corruption (a 10×
// latency spike) is always rejected. Constant input rejects nothing;
// empty input returns a nil mask. rejected counts the false entries.
func RejectOutliers(xs []float64, kMAD, minRel float64) (keep []bool, rejected int) {
	if len(xs) == 0 {
		return nil, 0
	}
	m := Median(xs)
	thresh := kMAD * MAD(xs) * madToSigma
	if rel := minRel * math.Abs(m); rel > thresh {
		thresh = rel
	}
	keep = make([]bool, len(xs))
	for i, x := range xs {
		keep[i] = math.Abs(x-m) <= thresh
		if !keep[i] {
			rejected++
		}
	}
	return keep, rejected
}

// MAPE returns the mean absolute percentage error of predictions
// against measurements, as a fraction (0.066 = 6.6%). Measurements of
// zero are skipped.
func MAPE(pred, meas []float64) (float64, error) {
	if len(pred) != len(meas) {
		return 0, fmt.Errorf("stats: %d predictions vs %d measurements", len(pred), len(meas))
	}
	sum, n := 0.0, 0
	for i := range pred {
		if meas[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-meas[i]) / math.Abs(meas[i])
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("stats: no usable samples")
	}
	return sum / float64(n), nil
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 samples")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// KendallTau returns Kendall's τ-b rank correlation of x and y,
// computed in O(n²) with tie correction (τ-b).
func KendallTau(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return 0, fmt.Errorf("stats: need at least 2 samples")
	}
	var concordant, discordant, tiesX, tiesY int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := sign(x[i] - x[j])
			dy := sign(y[i] - y[j])
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx == dy:
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denom := math.Sqrt((n0 - float64(tiesX)) * (n0 - float64(tiesY)))
	if denom == 0 {
		return 0, fmt.Errorf("stats: all pairs tied")
	}
	return float64(concordant-discordant) / denom, nil
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

// Histogram2D buckets (x, y) pairs onto a grid; used for the IPC
// heatmaps of Figure 5(b–d).
type Histogram2D struct {
	// XMax/YMax bound the grid; values beyond are clamped into the
	// last bucket.
	XMax, YMax float64
	// Bins is the number of buckets per axis.
	Bins int
	// Counts[yi][xi] is the number of samples in the bucket.
	Counts [][]int
}

// NewHistogram2D builds an empty grid.
func NewHistogram2D(xmax, ymax float64, bins int) *Histogram2D {
	h := &Histogram2D{XMax: xmax, YMax: ymax, Bins: bins, Counts: make([][]int, bins)}
	for i := range h.Counts {
		h.Counts[i] = make([]int, bins)
	}
	return h
}

// Add records one (x, y) sample.
func (h *Histogram2D) Add(x, y float64) {
	xi := int(x / h.XMax * float64(h.Bins))
	yi := int(y / h.YMax * float64(h.Bins))
	if xi >= h.Bins {
		xi = h.Bins - 1
	}
	if yi >= h.Bins {
		yi = h.Bins - 1
	}
	if xi < 0 {
		xi = 0
	}
	if yi < 0 {
		yi = 0
	}
	h.Counts[yi][xi]++
}

// Total returns the number of recorded samples.
func (h *Histogram2D) Total() int {
	n := 0
	for _, row := range h.Counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Render draws the grid as ASCII art (density ramp " .:-=+*#%@"),
// y increasing upward — a terminal rendition of the paper's heatmaps.
func (h *Histogram2D) Render() string {
	maxC := 0
	for _, row := range h.Counts {
		for _, c := range row {
			if c > maxC {
				maxC = c
			}
		}
	}
	ramp := []byte(" .:-=+*#%@")
	out := ""
	for yi := h.Bins - 1; yi >= 0; yi-- {
		line := make([]byte, h.Bins)
		for xi := 0; xi < h.Bins; xi++ {
			c := h.Counts[yi][xi]
			idx := 0
			if maxC > 0 && c > 0 {
				idx = 1 + c*(len(ramp)-2)/maxC
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
			}
			line[xi] = ramp[idx]
		}
		out += string(line) + "\n"
	}
	return out
}
