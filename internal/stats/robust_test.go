package stats

import (
	"math"
	"testing"
)

// noNaN fails the test when v is NaN or Inf: the robust helpers must
// degrade to 0 on degenerate input, never leak non-finite values into
// the measurement path.
func noNaN(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("%s leaked a non-finite value: %v", name, v)
	}
}

func TestMAD(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3}, 0},
		{"constant", []float64{2, 2, 2, 2}, 0},
		{"symmetric", []float64{1, 2, 3, 4, 5}, 1},
		{"heavy tail", []float64{1, 1, 1, 1, 1000}, 0},
		{"outlier resistant", []float64{10, 11, 12, 13, 14, 1e6}, 1.5},
	}
	for _, c := range cases {
		got := MAD(c.xs)
		noNaN(t, "MAD("+c.name+")", got)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MAD(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTrimmedMean(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		frac float64
		want float64
	}{
		{"empty", nil, 0.2, 0},
		{"single", []float64{7}, 0.2, 7},
		{"constant", []float64{4, 4, 4}, 0.25, 4},
		{"no trim", []float64{1, 2, 3, 4}, 0, 2.5},
		{"trims tails", []float64{0, 10, 10, 10, 1000}, 0.2, 10},
		{"over-trim falls back", []float64{1, 3}, 0.5, 2},
		{"negative frac clamped", []float64{1, 2, 3}, -1, 2},
	}
	for _, c := range cases {
		got := TrimmedMean(c.xs, c.frac)
		noNaN(t, "TrimmedMean("+c.name+")", got)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("TrimmedMean(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRelSpread(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"constant", []float64{3, 3, 3}, 0},
		{"zero median", []float64{-1, 0, 1}, 0},
		{"basic", []float64{0.9, 1.0, 1.1}, 0.2},
		{"heavy tail", []float64{1, 1, 1, 1, 11}, 10},
	}
	for _, c := range cases {
		got := RelSpread(c.xs)
		noNaN(t, "RelSpread("+c.name+")", got)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelSpread(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRobustSpread(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"constant", []float64{3, 3, 3, 3}, 0},
		{"zero median", []float64{-2, 0, 2}, 0},
		{"quartiles", []float64{1, 2, 3, 4, 5}, 2.0 / 3.0},
	}
	for _, c := range cases {
		got := RobustSpread(c.xs)
		noNaN(t, "RobustSpread("+c.name+")", got)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RobustSpread(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	// A single wild outlier barely moves the IQR, while it dominates
	// the raw spread — the property the adaptive engine relies on.
	xs := []float64{1, 1.01, 0.99, 1.02, 0.98, 1, 1.01, 0.99, 1, 1.02, 10}
	if rs := RobustSpread(xs); rs > 0.1 {
		t.Errorf("RobustSpread with outlier = %v, want < 0.1", rs)
	}
	if rs := RelSpread(xs); rs < 5 {
		t.Errorf("RelSpread with outlier = %v, want > 5", rs)
	}
}

func TestRejectOutliers(t *testing.T) {
	count := func(keep []bool) int {
		n := 0
		for _, k := range keep {
			if k {
				n++
			}
		}
		return n
	}

	if keep, rej := RejectOutliers(nil, 3.5, 3); keep != nil || rej != 0 {
		t.Fatalf("empty input: keep=%v rejected=%d", keep, rej)
	}
	if keep, rej := RejectOutliers([]float64{2, 2, 2, 2}, 3.5, 3); count(keep) != 4 || rej != 0 {
		t.Fatalf("constant input rejected %d samples", rej)
	}
	if keep, rej := RejectOutliers([]float64{1}, 3.5, 3); !keep[0] || rej != 0 {
		t.Fatal("single sample rejected")
	}

	// A 10× spike against a clean baseline must be rejected by the
	// relative floor even though the MAD of the clean samples is tiny.
	xs := []float64{1, 1.001, 0.999, 1.002, 0.998, 1, 1.001, 0.999, 1, 1.002, 10}
	keep, rej := RejectOutliers(xs, 3.5, 3)
	if rej != 1 || keep[len(xs)-1] {
		t.Fatalf("spike not rejected: keep=%v rejected=%d", keep, rej)
	}

	// Genuine bimodality — modes well inside the relative floor — must
	// survive regardless of the mode split (§4.1.2 instability is a
	// signal, not corruption).
	bimodal := []float64{0.25, 0.25, 0.25, 0.60, 0.60, 0.60, 0.60, 0.60, 0.60, 0.60, 0.60}
	if _, rej := RejectOutliers(bimodal, 3.5, 3); rej != 0 {
		t.Fatalf("bimodal modes rejected: %d", rej)
	}
	lopsided := []float64{0.25, 0.25, 0.60, 0.60, 0.60, 0.60, 0.60, 0.60, 0.60, 0.60, 0.60}
	if _, rej := RejectOutliers(lopsided, 3.5, 3); rej != 0 {
		t.Fatalf("lopsided bimodal modes rejected: %d", rej)
	}

	// With a small relative floor the MAD term drives the decision:
	// heavy-tailed data keeps its bulk and sheds its tail.
	tail := []float64{10, 10.1, 9.9, 10.2, 9.8, 10, 10.1, 9.9, 14}
	keep, rej = RejectOutliers(tail, 3.5, 0.1)
	if rej != 1 || keep[len(tail)-1] {
		t.Fatalf("MAD term did not reject tail: keep=%v rejected=%d", keep, rej)
	}
}
