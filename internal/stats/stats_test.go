package stats

import (
	"math"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMedianMean(t *testing.T) {
	if !approx(Median([]float64{3, 1, 2}), 2) {
		t.Fatal("odd median")
	}
	if !approx(Median([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("even median")
	}
	if !math.IsNaN(Median(nil)) || !math.IsNaN(Mean(nil)) {
		t.Fatal("empty inputs should give NaN")
	}
	if !approx(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("mean")
	}
	// Median must not reorder its input.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestMAPE(t *testing.T) {
	m, err := MAPE([]float64{1.1, 0.9}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m, 0.1) {
		t.Fatalf("MAPE = %v", m)
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("all-zero measurements accepted")
	}
}

func TestPearson(t *testing.T) {
	r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r, 1) {
		t.Fatalf("perfect correlation = %v", r)
	}
	r, err = Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(r, -1) {
		t.Fatalf("perfect anti-correlation = %v", r)
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample accepted")
	}
}

func TestKendallTau(t *testing.T) {
	tau, err := KendallTau([]float64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tau, 1) {
		t.Fatalf("τ = %v, want 1", tau)
	}
	tau, err = KendallTau([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tau, -1) {
		t.Fatalf("τ = %v, want -1", tau)
	}
	// One swapped pair of four: τ = (5-1)/6 = 2/3.
	tau, err = KendallTau([]float64{1, 2, 3, 4}, []float64{1, 2, 4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tau, 2.0/3) {
		t.Fatalf("τ = %v, want 2/3", tau)
	}
	if _, err := KendallTau([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Fatal("all ties accepted")
	}
}

func TestHistogram2D(t *testing.T) {
	h := NewHistogram2D(5, 5, 10)
	h.Add(0.1, 0.1)
	h.Add(4.9, 4.9)
	h.Add(7, 7)   // clamped into last bucket
	h.Add(-1, -1) // clamped into first bucket
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0][0] != 2 || h.Counts[9][9] != 2 {
		t.Fatalf("bucket counts wrong: %v", h.Counts)
	}
	art := h.Render()
	if len(art) == 0 {
		t.Fatal("empty render")
	}
	lines := 0
	for _, c := range art {
		if c == '\n' {
			lines++
		}
	}
	if lines != 10 {
		t.Fatalf("render has %d lines, want 10", lines)
	}
}
