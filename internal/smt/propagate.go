package smt

import (
	"zenport/internal/portmodel"
)

// Propagator is the compiled theory-propagation state of one solver
// query: the instance's µop structure lowered into a
// portmodel.Compiled evaluator (one scheme per distinct key, one
// packed µop per instance µop) and every measured experiment interned
// once into a dense weight vector with its tolerance precomputed.
//
// Checking a candidate model then costs one SetUopPorts per µop plus
// one allocation-free bottleneck evaluation per experiment — no
// string-keyed maps, no per-call µop-mass rebuild, zero steady-state
// allocations. The find loops construct one Propagator per query; it
// is also exported for zenportd-style servers and benchmarks that
// repeatedly re-check candidate mappings against a fixed experiment
// set. Results are bit-identical to the reference evaluator
// (portmodel.Mapping.InverseThroughputBounded), witnesses included,
// so swapping it into the DPLL(T) loop preserves the exact search
// trajectory and the final mapping.
//
// A Propagator is not safe for concurrent use.
type Propagator struct {
	comp *portmodel.Compiled
	// schemeOf/slotOf locate instance µop u inside the compiled
	// layout: µop slotOf[u] of scheme schemeOf[u].
	schemeOf []int32
	slotOf   []int
	// byUop mirrors the currently loaded candidate port sets.
	byUop []portmodel.PortSet

	exps []MeasuredExp
	vecs [][]int32 // dense weights per experiment
	lens []int     // e.Len() per experiment
	tols []float64 // acceptance tolerance per experiment

	rmax float64

	// violBuf is the reused violation buffer of the find loops.
	violBuf []violation
}

// NewPropagator compiles the instance's µop structure and interns the
// experiments. It fails on experiments mentioning keys outside the
// instance (the find loops fall back to the reference evaluator in
// that case, preserving the reference error behavior).
func (in *Instance) NewPropagator(exps []MeasuredExp) (*Propagator, error) {
	keys := in.keys()
	keyIdx := make(map[string]int32, len(keys))
	for i, k := range keys {
		keyIdx[k] = int32(i)
	}
	usages := make([]portmodel.Usage, len(keys))
	p := &Propagator{
		schemeOf: make([]int32, len(in.Uops)),
		slotOf:   make([]int, len(in.Uops)),
		byUop:    make([]portmodel.PortSet, len(in.Uops)),
		exps:     exps,
		rmax:     in.Rmax,
	}
	for u, spec := range in.Uops {
		si := keyIdx[spec.Key]
		p.schemeOf[u] = si
		p.slotOf[u] = len(usages[si])
		usages[si] = append(usages[si], portmodel.Uop{Ports: 0, Count: 1})
	}
	comp, err := portmodel.CompileUsages(in.NumPorts, keys, usages)
	if err != nil {
		return nil, err
	}
	p.comp = comp
	p.vecs = make([][]int32, len(exps))
	p.lens = make([]int, len(exps))
	p.tols = make([]float64, len(exps))
	for i, me := range exps {
		vec, total, err := comp.WeightVector(me.Exp, nil)
		if err != nil {
			return nil, err
		}
		p.vecs[i] = vec
		p.lens[i] = total
		p.tols[i] = (in.Epsilon + me.Slack) * float64(total)
	}
	return p, nil
}

// NumUops returns the number of µops of the underlying instance.
func (p *Propagator) NumUops() int { return len(p.byUop) }

// SetUopPorts loads µop u's candidate port set.
func (p *Propagator) SetUopPorts(u int, ps portmodel.PortSet) {
	p.byUop[u] = ps
	p.comp.SetUop(p.schemeOf[u], p.slotOf[u], ps)
}

// load installs a whole candidate model.
func (p *Propagator) load(byUop []portmodel.PortSet) {
	for u, ps := range byUop {
		p.SetUopPorts(u, ps)
	}
}

// check evaluates every experiment against the loaded candidate and
// returns the violations, reusing the propagator's buffer. The
// tolerance comparison is identical to the reference checkExps.
func (p *Propagator) check() []violation {
	out := p.violBuf[:0]
	for i := range p.vecs {
		t := p.comp.InverseThroughputBoundedWeights(p.vecs[i], p.lens[i], p.rmax)
		switch {
		case t > p.exps[i].TInv+p.tols[i]:
			out = append(out, violation{idx: i, tooSlow: true})
		case t < p.exps[i].TInv-p.tols[i]:
			out = append(out, violation{idx: i, tooSlow: false})
		}
	}
	p.violBuf = out
	return out
}

// Violations counts the experiments the loaded candidate fails. It
// is the exported benchmark/server entry point.
func (p *Propagator) Violations() int { return len(p.check()) }

// witness returns the bottleneck witness of experiment i under the
// loaded candidate, bit-identical to Mapping.BottleneckWitness.
func (p *Propagator) witness(i int) portmodel.PortSet {
	q, _ := p.comp.BottleneckWitnessWeights(p.vecs[i])
	return q
}
