package smt

import (
	"context"
	"errors"
	"sort"

	"zenport/internal/portmodel"
	"zenport/internal/sat"
)

// SuperviseOptions configures the supervised findMapping loop.
type SuperviseOptions struct {
	// Budget bounds all solver work of the supervised query, including
	// core extraction and minimization (nil = unlimited).
	Budget *sat.Budget
	// MaxSlack is the largest tolerance slack recovery may grant one
	// experiment. Zero disables recovery entirely: infeasibility then
	// surfaces as ErrNoMapping exactly as an unsupervised query would,
	// preserving the §4.3 anomaly-isolation path.
	MaxSlack float64
	// SlackStep is the slack increment per relaxation (0 means 0.25).
	SlackStep float64
	// QualityOf, if non-nil, scores an experiment's measurement
	// quality; higher means less trustworthy (e.g. the engine's robust
	// spread). Recovery relaxes the worst-quality core member first.
	QualityOf func(e portmodel.Experiment) float64
	// Remeasure, if non-nil, re-measures an experiment through the
	// engine and returns its fresh inverse throughput; recovery calls
	// it on each experiment it relaxes, so a transient corruption can
	// heal without any slack doing the work.
	Remeasure func(ctx context.Context, e portmodel.Experiment) (float64, error)
	// Log, if non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Relaxation records one recovery action on an experiment.
type Relaxation struct {
	// Key is the canonical experiment key.
	Key string `json:"key"`
	// Slack is the tolerance slack after the relaxation.
	Slack float64 `json:"slack"`
	// OldTInv/NewTInv are the inverse throughputs before and after
	// re-measurement (equal when no re-measurement ran).
	OldTInv float64 `json:"old_t_inv"`
	NewTInv float64 `json:"new_t_inv"`
}

// SupervisionReport is the explainability record of one supervised
// query: which experiment subsets were found conflicting, what was
// relaxed, and how the query ended.
type SupervisionReport struct {
	// Cores lists each extracted conflicting core as canonical
	// experiment keys, in extraction order.
	Cores [][]string `json:"cores,omitempty"`
	// Relaxations lists the recovery actions in order.
	Relaxations []Relaxation `json:"relaxations,omitempty"`
	// BudgetExhausted is set when the solver budget stopped the query.
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	// Unrecoverable is set when recovery ran out of options: a
	// structural conflict, or every core member already at MaxSlack.
	Unrecoverable bool `json:"unrecoverable,omitempty"`
}

func (o *SuperviseOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// FindMappingSupervised is FindMapping with inconsistency recovery:
// when the experiment set is infeasible it extracts a minimal
// conflicting core, relaxes the error bound of the core's
// least-trustworthy member (re-measuring it when possible), drops the
// now-stale lemmas, and retries with escalating slack up to MaxSlack.
// It returns the mapping, the (possibly relaxed) experiment slice, and
// the supervision report. On failure the error is ErrNoMapping (with
// report.Unrecoverable set) or matches sat.ErrBudgetExhausted; the
// returned experiments always reflect the relaxations applied so far.
func (in *Instance) FindMappingSupervised(ctx context.Context, exps []MeasuredExp, opts SuperviseOptions) (*portmodel.Mapping, []MeasuredExp, *SupervisionReport, error) {
	rep := &SupervisionReport{}
	step := opts.SlackStep
	if step <= 0 {
		step = 0.25
	}
	// Each round raises one experiment's slack by step, so the loop is
	// bounded even before the budget is.
	maxRounds := 1
	if opts.MaxSlack > 0 {
		maxRounds += len(exps) * (int(opts.MaxSlack/step) + 1)
	}
	for round := 0; round < maxRounds; round++ {
		m, err := in.FindMappingBudget(ctx, exps, opts.Budget)
		if err == nil {
			return m, exps, rep, nil
		}
		if errors.Is(err, sat.ErrBudgetExhausted) {
			rep.BudgetExhausted = true
			return nil, exps, rep, err
		}
		if !errors.Is(err, ErrNoMapping) {
			return nil, exps, rep, err
		}
		if opts.MaxSlack <= 0 {
			rep.Unrecoverable = true
			return nil, exps, rep, ErrNoMapping
		}

		core, cerr := in.UnsatCore(ctx, exps, opts.Budget)
		if cerr != nil {
			if errors.Is(cerr, sat.ErrBudgetExhausted) {
				rep.BudgetExhausted = true
			}
			return nil, exps, rep, cerr
		}
		if core == nil {
			// Feasible on re-examination (the earlier failure was a
			// budget artifact); retry the main query.
			continue
		}
		rep.Cores = append(rep.Cores, CoreKeys(exps, core))
		if len(core.Indices) == 0 {
			opts.logf("supervise: conflict is structural (no experiment subset to blame)")
			rep.Unrecoverable = true
			return nil, exps, rep, ErrNoMapping
		}
		opts.logf("supervise: minimal conflicting core (%d exps): %v", len(core.Indices), CoreKeys(exps, core))

		victim := pickVictim(exps, core.Indices, opts)
		if victim < 0 {
			opts.logf("supervise: every core member already at max slack %.3f", opts.MaxSlack)
			rep.Unrecoverable = true
			return nil, exps, rep, ErrNoMapping
		}
		rx := Relaxation{Key: ExpKey(exps[victim].Exp), OldTInv: exps[victim].TInv, NewTInv: exps[victim].TInv}
		if opts.Remeasure != nil {
			t, merr := opts.Remeasure(ctx, exps[victim].Exp)
			if merr != nil {
				return nil, exps, rep, merr
			}
			rx.NewTInv = t
			exps[victim].TInv = t
		}
		exps[victim].Slack += step
		if exps[victim].Slack > opts.MaxSlack {
			exps[victim].Slack = opts.MaxSlack
		}
		rx.Slack = exps[victim].Slack
		rep.Relaxations = append(rep.Relaxations, rx)
		dropped := in.DropLemmasFrom(exps[victim].Exp)
		opts.logf("supervise: relaxed %s to slack %.3f (t_inv %.4f -> %.4f, %d stale lemmas dropped)",
			rx.Key, rx.Slack, rx.OldTInv, rx.NewTInv, dropped)
	}
	rep.Unrecoverable = true
	return nil, exps, rep, ErrNoMapping
}

// pickVictim selects the core member to relax: the one whose
// measurement quality is worst (highest QualityOf score), breaking
// ties toward the latest-added experiment (CEGAR witnesses are more
// exotic kernels than the seed singletons) and then the lexicographic
// key, so the choice is deterministic. Members already at MaxSlack are
// skipped; -1 means no member is relaxable.
func pickVictim(exps []MeasuredExp, core []int, opts SuperviseOptions) int {
	cand := append([]int(nil), core...)
	sort.Slice(cand, func(a, b int) bool {
		ia, ib := cand[a], cand[b]
		if opts.QualityOf != nil {
			qa, qb := opts.QualityOf(exps[ia].Exp), opts.QualityOf(exps[ib].Exp)
			if qa != qb {
				return qa > qb
			}
		}
		if ia != ib {
			return ia > ib
		}
		return ExpKey(exps[ia].Exp) < ExpKey(exps[ib].Exp)
	})
	for _, i := range cand {
		if exps[i].Slack < opts.MaxSlack {
			return i
		}
	}
	return -1
}
