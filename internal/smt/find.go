package smt

import (
	"context"
	"errors"
	"fmt"

	"zenport/internal/portmodel"
	"zenport/internal/sat"
)

// ErrNoMapping is returned by FindMapping when no port mapping is
// consistent with the measured experiments: the processor does not
// follow the port mapping model on these instructions (§3.3, l. 2 of
// Algorithm 2 returning None).
var ErrNoMapping = errors.New("smt: no port mapping is consistent with the experiments")

// maxTheoryIterations bounds the DPLL(T) refinement loop per query.
const maxTheoryIterations = 200000

// QueryStats accumulates solver telemetry across SMT queries. Attach
// one to Instance.Telemetry to have every FindMapping/FindOtherMapping
// call (including sub-instance solves sharing the pointer) fold its
// CDCL counters, theory iterations, and lemma counts into it.
type QueryStats struct {
	// Queries counts FindMapping/FindOtherMapping executions.
	Queries uint64 `json:"queries"`
	// TheoryIterations counts DPLL(T) refinement iterations.
	TheoryIterations uint64 `json:"theory_iterations"`
	// LemmasLearned counts generalized theory lemmas learned.
	LemmasLearned uint64 `json:"lemmas_learned"`
	// BudgetExhausted counts queries stopped by the solver budget.
	BudgetExhausted uint64 `json:"budget_exhausted,omitempty"`
	// Solver totals the CDCL counters of every query's SAT solver.
	Solver sat.Stats `json:"solver"`
	// Portfolio holds portfolio-specific counters; nil when every
	// query ran the single-solver path.
	Portfolio *PortfolioStats `json:"portfolio,omitempty"`
}

// Add folds another accumulator into this one.
func (q *QueryStats) Add(o QueryStats) {
	q.Queries += o.Queries
	q.TheoryIterations += o.TheoryIterations
	q.LemmasLearned += o.LemmasLearned
	q.BudgetExhausted += o.BudgetExhausted
	q.Solver.Propagations += o.Solver.Propagations
	q.Solver.Conflicts += o.Solver.Conflicts
	q.Solver.Decisions += o.Solver.Decisions
	q.Solver.Restarts += o.Solver.Restarts
	q.Solver.Learned += o.Solver.Learned
	if o.Portfolio != nil {
		if q.Portfolio == nil {
			q.Portfolio = &PortfolioStats{}
		}
		q.Portfolio.Add(*o.Portfolio)
	}
}

// noteQuery folds one finished query's solver counters into the
// instance telemetry.
func (in *Instance) noteQuery(enc *encoding, iters, lemmas0 int, budgetStopped bool) {
	q := in.Telemetry
	if q == nil {
		return
	}
	q.Queries++
	q.TheoryIterations += uint64(iters)
	if n := len(in.lemmas) - lemmas0; n > 0 {
		q.LemmasLearned += uint64(n)
	}
	if budgetStopped {
		q.BudgetExhausted++
	}
	st := enc.s.StatsSnapshot()
	q.Solver.Propagations += st.Propagations
	q.Solver.Conflicts += st.Conflicts
	q.Solver.Decisions += st.Decisions
	q.Solver.Restarts += st.Restarts
	q.Solver.Learned += st.Learned
}

// FindMapping searches a port mapping consistent with all measured
// experiments (the paper's findMapping, §3.3.3). It returns
// ErrNoMapping if the observations contradict the model.
func (in *Instance) FindMapping(exps []MeasuredExp) (*portmodel.Mapping, error) {
	return in.FindMappingBudget(context.Background(), exps, nil)
}

// FindMappingContext is FindMapping with cancellation: ctx is checked
// between DPLL(T) iterations and — through the CDCL loop's restart
// boundaries — inside each SAT search, so a hung query honors its
// deadline.
func (in *Instance) FindMappingContext(ctx context.Context, exps []MeasuredExp) (*portmodel.Mapping, error) {
	return in.FindMappingBudget(ctx, exps, nil)
}

// FindMappingBudget is FindMappingContext under a solver budget shared
// by every SAT search of the query's refinement loop. When the budget
// runs out the query stops with an error matching
// sat.ErrBudgetExhausted instead of spinning; nil budget means
// unlimited.
//
// When Instance.Portfolio requests K >= 2 members and no budget is
// given, the query runs as a deterministic parallel portfolio (see
// portfolio.go). The lemma trail left in the store — on success AND
// on ErrNoMapping — is byte-identical to the single-solver path's at
// any K: anomaly isolation warm-starts the post-exclusion queries
// from the failed query's lemmas (via Without), so UNSAT retention is
// part of the deterministic contract, not an accident.
func (in *Instance) FindMappingBudget(ctx context.Context, exps []MeasuredExp, budget *sat.Budget) (*portmodel.Mapping, error) {
	if in.portfolioOn(budget) {
		return in.findMappingPortfolio(ctx, exps)
	}
	return in.findMappingSingle(ctx, exps, budget)
}

// findMappingSingle is the single-solver refinement loop. It leaves
// every learned lemma in the store regardless of outcome — the trail
// of a failed query seeds the warm start of anomaly isolation.
func (in *Instance) findMappingSingle(ctx context.Context, exps []MeasuredExp, budget *sat.Budget) (*portmodel.Mapping, error) {
	enc, err := in.encode(true)
	if err != nil {
		return nil, err
	}
	// Compiled propagation state: dense weight vectors, packed µops,
	// zero allocations per candidate check. Experiments mentioning
	// unknown keys or negative counts cannot be interned; those fall
	// back to the reference evaluator, whose per-call errors preserve
	// the original behavior exactly.
	prop, _ := in.NewPropagator(exps)
	var byUop []portmodel.PortSet
	iters, lemmas0, budgetStopped := 0, len(in.lemmas), false
	defer func() { in.noteQuery(enc, iters, lemmas0, budgetStopped) }()
	for iters < maxTheoryIterations {
		iters++
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := enc.s.SolveBudget(ctx, budget)
		if err != nil {
			budgetStopped = errors.Is(err, sat.ErrBudgetExhausted)
			return nil, err
		}
		if r != sat.Sat {
			return nil, ErrNoMapping
		}
		byUop = in.decodePorts(enc, byUop)
		var m *portmodel.Mapping
		var vs []violation
		if prop != nil {
			prop.load(byUop)
			vs = prop.check()
		} else {
			m = in.mappingFromPorts(byUop)
			vs, err = in.checkExps(m, exps)
			if err != nil {
				return nil, err
			}
		}
		if len(vs) == 0 {
			if m == nil {
				m = in.mappingFromPorts(byUop)
			}
			return m, nil
		}
		// Theory conflict: learn generalized lemmas and re-solve.
		if err := in.learnViolations(enc, prop, m, byUop, exps, vs); err != nil {
			if errors.Is(err, errUnsatLemma) {
				return nil, ErrNoMapping
			}
			return nil, err
		}
	}
	return nil, fmt.Errorf("smt: theory refinement did not converge")
}

// assertLastLemma adds the most recently learned lemma to a live
// solver, so the refinement loop does not rebuild the encoding.
func (in *Instance) assertLastLemma(enc *encoding) error {
	lem := in.lemmas[len(in.lemmas)-1]
	clause := make([]sat.Lit, len(lem.lits))
	for i, l := range lem.lits {
		clause[i] = sat.NewLit(enc.mvar[l.uop][l.port], l.neg)
	}
	return enc.s.AddClause(clause...)
}

// blockModel adds a clause excluding the exact current assignment of
// the m-variables (used to enumerate distinct mappings). For µops
// with an exact cardinality constraint, negating just the true
// literals suffices: any other admissible assignment must drop one of
// the current ports. Free-cardinality µops additionally contribute
// their false literals.
func (in *Instance) blockModel(enc *encoding, byUop []portmodel.PortSet) error {
	var clause []sat.Lit
	for u, spec := range in.Uops {
		for k := 0; k < in.NumPorts; k++ {
			has := byUop[u].Has(k)
			if has {
				clause = append(clause, sat.NewLit(enc.mvar[u][k], true))
			} else if spec.NumPorts == 0 {
				clause = append(clause, sat.NewLit(enc.mvar[u][k], false))
			}
		}
	}
	return enc.s.AddClause(clause...)
}

// OtherMapping is the result of FindOtherMapping: a second consistent
// mapping and an experiment whose modeled throughputs differ by more
// than 2ε·|e| between the two mappings (§3.3.4).
type OtherMapping struct {
	Mapping *portmodel.Mapping
	Exp     portmodel.Experiment
	T1, T2  float64
}

// FindOtherMapping searches a mapping m2 that is also consistent with
// the experiments but distinguishable from m1 by a new experiment
// (the paper's findOtherMapping). Experiments are searched in
// stratified order: first over at most maxDistinct distinct
// instructions with total size growing up to maxTotal (§3.3.4,
// "stratified approach"). It returns nil if every consistent mapping
// is indistinguishable from m1 within those bounds.
func (in *Instance) FindOtherMapping(exps []MeasuredExp, m1 *portmodel.Mapping, maxDistinct, maxTotal, maxCandidates int) (*OtherMapping, error) {
	return in.FindOtherMappingBudget(context.Background(), exps, m1, maxDistinct, maxTotal, maxCandidates, nil)
}

// FindOtherMappingContext is FindOtherMapping with cancellation,
// checking ctx between candidate-enumeration iterations and at the
// CDCL loop's restart boundaries.
func (in *Instance) FindOtherMappingContext(ctx context.Context, exps []MeasuredExp, m1 *portmodel.Mapping, maxDistinct, maxTotal, maxCandidates int) (*OtherMapping, error) {
	return in.FindOtherMappingBudget(ctx, exps, m1, maxDistinct, maxTotal, maxCandidates, nil)
}

// FindOtherMappingBudget is FindOtherMappingContext under a solver
// budget shared by every SAT search of the enumeration (nil =
// unlimited); exhaustion surfaces as an error matching
// sat.ErrBudgetExhausted.
//
// Like FindMappingBudget it dispatches to the deterministic portfolio
// when Instance.Portfolio requests K >= 2 members and no budget is
// given. Unlike FindMappingBudget it is transactional over the lemma
// store: any outcome without a found OtherMapping rolls the store
// back to its pre-query state. A nil result ends its CEGAR loop (the
// mapping is unique within bounds), so nothing downstream warm-starts
// from its trail — and a trail-free nil is what lets a portfolio
// scout's UNSAT short-circuit the query K-invariantly.
func (in *Instance) FindOtherMappingBudget(ctx context.Context, exps []MeasuredExp, m1 *portmodel.Mapping, maxDistinct, maxTotal, maxCandidates int, budget *sat.Budget) (*OtherMapping, error) {
	mark := len(in.lemmas)
	var om *OtherMapping
	var err error
	if in.portfolioOn(budget) {
		om, err = in.findOtherMappingPortfolio(ctx, exps, m1, maxDistinct, maxTotal, maxCandidates)
	} else {
		om, err = in.findOtherMappingSingle(ctx, exps, m1, maxDistinct, maxTotal, maxCandidates, budget)
	}
	if om == nil {
		in.lemmas = in.lemmas[:mark]
	}
	return om, err
}

// findOtherMappingSingle is the single-solver enumeration loop.
func (in *Instance) findOtherMappingSingle(ctx context.Context, exps []MeasuredExp, m1 *portmodel.Mapping, maxDistinct, maxTotal, maxCandidates int, budget *sat.Budget) (*OtherMapping, error) {
	enc, err := in.encode(true)
	if err != nil {
		return nil, err
	}
	prop, _ := in.NewPropagator(exps)
	var byUop []portmodel.PortSet
	iters, lemmas0, budgetStopped := 0, len(in.lemmas), false
	defer func() { in.noteQuery(enc, iters, lemmas0, budgetStopped) }()
	// Pre-enumerate the candidate experiments in stratified order and
	// evaluate m1 on each once; every examined m2 reuses them.
	cands, err := in.candidateExps(m1, maxDistinct, maxTotal)
	if err != nil {
		return nil, err
	}
	candidates := 0
	for iters < maxTheoryIterations && candidates < maxCandidates {
		iters++
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := enc.s.SolveBudget(ctx, budget)
		if err != nil {
			budgetStopped = errors.Is(err, sat.ErrBudgetExhausted)
			return nil, err
		}
		if r != sat.Sat {
			return nil, nil
		}
		byUop = in.decodePorts(enc, byUop)
		var m2 *portmodel.Mapping
		var vs []violation
		if prop != nil {
			prop.load(byUop)
			vs = prop.check()
		} else {
			m2 = in.mappingFromPorts(byUop)
			vs, err = in.checkExps(m2, exps)
			if err != nil {
				return nil, err
			}
		}
		if len(vs) > 0 {
			if err := in.learnViolations(enc, prop, m2, byUop, exps, vs); err != nil {
				if errors.Is(err, errUnsatLemma) {
					return nil, nil
				}
				return nil, err
			}
			continue
		}
		if m2 == nil {
			m2 = in.mappingFromPorts(byUop)
		}
		candidates++
		// m2 is consistent. Indistinguishable permutations of m1 are
		// skipped outright.
		if !sameUsage(m1, m2) && !m1.Isomorphic(m2) {
			if exp, t1, t2, err := in.distinguishPre(m1, m2, cands); err != nil {
				return nil, err
			} else if exp != nil {
				return &OtherMapping{Mapping: m2, Exp: exp, T1: t1, T2: t2}, nil
			}
		}
		// Indistinguishable within bounds: enumerate the next one.
		if err := in.blockModel(enc, byUop); err != nil {
			return nil, nil
		}
	}
	return nil, nil
}

// sameUsage reports whether two mappings assign identical usages.
func sameUsage(a, b *portmodel.Mapping) bool {
	if len(a.Usage) != len(b.Usage) {
		return false
	}
	for k, u := range a.Usage {
		v, ok := b.Usage[k]
		if !ok || !u.Equal(v) {
			return false
		}
	}
	return true
}

// candExp is a pre-enumerated candidate experiment with its m1 value.
type candExp struct {
	exp portmodel.Experiment
	t1  float64
}

// candidateExps enumerates all experiments within the stratified
// bounds, ordered by total size, annotated with their model value
// under m1.
func (in *Instance) candidateExps(m1 *portmodel.Mapping, maxDistinct, maxTotal int) ([]candExp, error) {
	keys := in.keys()
	// Compile m1 once over the instance's key universe; the whole
	// stratified enumeration then evaluates through one allocation-free
	// evaluator. Mappings missing a key cannot compile and use the
	// reference path, which reports the same error on first use.
	comp, _ := portmodel.CompileMapping(m1, keys)
	var wbuf []int32
	eval := func(e portmodel.Experiment) (float64, error) {
		if comp != nil {
			w, total, err := comp.WeightVector(e, wbuf)
			if err == nil {
				wbuf = w
				return comp.InverseThroughputBoundedWeights(w, total, in.Rmax), nil
			}
		}
		return in.modelTInv(m1, e)
	}
	var out []candExp
	for total := 1; total <= maxTotal; total++ {
		e := make(portmodel.Experiment)
		var rec func(start, remaining, distinct int) error
		rec = func(start, remaining, distinct int) error {
			if remaining == 0 {
				t1, err := eval(e)
				if err != nil {
					return err
				}
				out = append(out, candExp{exp: e.Clone(), t1: t1})
				return nil
			}
			if start >= len(keys) || distinct == 0 {
				return nil
			}
			for i := start; i < len(keys); i++ {
				for c := 1; c <= remaining; c++ {
					e[keys[i]] = c
					if err := rec(i+1, remaining-c, distinct-1); err != nil {
						return err
					}
					delete(e, keys[i])
				}
			}
			return nil
		}
		if err := rec(0, total, maxDistinct); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// distinguishPre searches the pre-enumerated experiments for one that
// distinguishes m2 from m1, skipping experiments that do not involve
// any instruction on which the two mappings differ.
func (in *Instance) distinguishPre(m1, m2 *portmodel.Mapping, cands []candExp) (portmodel.Experiment, float64, float64, error) {
	diff := map[string]bool{}
	for k, u := range m1.Usage {
		if v, ok := m2.Usage[k]; !ok || !u.Equal(v) {
			diff[k] = true
		}
	}
	need := 2 * in.Epsilon
	comp2, _ := portmodel.CompileMapping(m2, in.keys())
	var wbuf []int32
	for _, c := range cands {
		touches := false
		for k := range c.exp {
			if diff[k] {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		var t2 float64
		var err error
		if comp2 != nil {
			var w []int32
			var total int
			if w, total, err = comp2.WeightVector(c.exp, wbuf); err == nil {
				wbuf = w
				t2 = comp2.InverseThroughputBoundedWeights(w, total, in.Rmax)
			}
		}
		if comp2 == nil || err != nil {
			t2, err = in.modelTInv(m2, c.exp)
		}
		if err != nil {
			return nil, 0, 0, err
		}
		if abs(c.t1-t2) > need*float64(c.exp.Len()) {
			return c.exp.Clone(), c.t1, t2, nil
		}
	}
	return nil, 0, 0, nil
}

// distinguish searches an experiment whose modeled inverse
// throughputs under m1 and m2 differ by more than 2ε·|e|, in
// stratified order of experiment size. It is the unmemoized variant
// of distinguishPre, kept for single-shot queries.
func (in *Instance) distinguish(m1, m2 *portmodel.Mapping, maxDistinct, maxTotal int) (portmodel.Experiment, float64, float64, error) {
	keys := in.keys()
	need := 2 * in.Epsilon
	for total := 1; total <= maxTotal; total++ {
		found, t1, t2, err := in.searchSize(m1, m2, keys, total, maxDistinct, need)
		if err != nil {
			return nil, 0, 0, err
		}
		if found != nil {
			return found, t1, t2, nil
		}
	}
	return nil, 0, 0, nil
}

// searchSize enumerates experiments of exactly the given total size
// with at most maxDistinct distinct instructions.
func (in *Instance) searchSize(m1, m2 *portmodel.Mapping, keys []string, total, maxDistinct int, need float64) (portmodel.Experiment, float64, float64, error) {
	e := make(portmodel.Experiment)
	var rec func(start, remaining, distinct int) (portmodel.Experiment, float64, float64, error)
	rec = func(start, remaining, distinct int) (portmodel.Experiment, float64, float64, error) {
		if remaining == 0 {
			t1, err := in.modelTInv(m1, e)
			if err != nil {
				return nil, 0, 0, err
			}
			t2, err := in.modelTInv(m2, e)
			if err != nil {
				return nil, 0, 0, err
			}
			if abs(t1-t2) > need*float64(total) {
				return e.Clone(), t1, t2, nil
			}
			return nil, 0, 0, nil
		}
		if start >= len(keys) || distinct == 0 {
			return nil, 0, 0, nil
		}
		for i := start; i < len(keys); i++ {
			for c := 1; c <= remaining; c++ {
				e[keys[i]] = c
				found, t1, t2, err := rec(i+1, remaining-c, distinct-1)
				delete(e, keys[i])
				if err != nil || found != nil {
					return found, t1, t2, err
				}
			}
		}
		return nil, 0, 0, nil
	}
	return rec(0, total, maxDistinct)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// SortedKeys exposes the instance's instruction keys (sorted), mainly
// for reporting.
func (in *Instance) SortedKeys() []string { return in.keys() }

// LemmaCount returns the number of theory lemmas learned so far.
func (in *Instance) LemmaCount() int { return len(in.lemmas) }

// Reset drops all learned lemmas (used between independent runs on
// the same instance shape).
func (in *Instance) Reset() { in.lemmas = nil }

// Clone returns a copy of the instance without learned lemmas. The
// telemetry accumulator is shared, so sub-solves on the clone count
// toward the same query statistics.
func (in *Instance) Clone() *Instance {
	out := &Instance{NumPorts: in.NumPorts, Rmax: in.Rmax, Epsilon: in.Epsilon, Telemetry: in.Telemetry, Portfolio: in.Portfolio}
	out.Uops = append([]UopSpec(nil), in.Uops...)
	return out
}

// Without returns a copy of the instance with all µops of the given
// keys removed (used for §4.3 culprit isolation after UNSAT). Learned
// lemmas survive when their source experiment avoids the removed keys
// (their µop indices are remapped), so repeated sub-problem solves
// stay cheap.
func (in *Instance) Without(keys map[string]bool) *Instance {
	out := &Instance{NumPorts: in.NumPorts, Rmax: in.Rmax, Epsilon: in.Epsilon, Telemetry: in.Telemetry, Portfolio: in.Portfolio}
	remap := make([]int, len(in.Uops))
	for i, u := range in.Uops {
		if keys[u.Key] {
			remap[i] = -1
			continue
		}
		remap[i] = len(out.Uops)
		out.Uops = append(out.Uops, u)
	}
	for _, lem := range in.lemmas {
		keep := true
		for k := range lem.src {
			if keys[k] {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		nl := lemma{src: lem.src, slack: lem.slack}
		ok := true
		for _, l := range lem.lits {
			if remap[l.uop] < 0 {
				ok = false
				break
			}
			nl.lits = append(nl.lits, lemmaLit{uop: remap[l.uop], port: l.port, neg: l.neg})
		}
		if ok {
			out.lemmas = append(out.lemmas, nl)
		}
	}
	return out
}

// FilterExps drops experiments that mention any of the given keys.
func FilterExps(exps []MeasuredExp, exclude map[string]bool) []MeasuredExp {
	var out []MeasuredExp
	for _, me := range exps {
		keep := true
		for k := range me.Exp {
			if exclude[k] {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, me)
		}
	}
	return out
}
