package smt

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"zenport/internal/portmodel"
)

// learnedToyInstance solves the toy setting until lemmas accumulate,
// so round-trip tests run over genuinely learned clauses rather than
// hand-built ones. Under the first SAT model, the [iA, iB] pair is
// modeled at either 1.0 (distinct ports) or 2.0 (shared port), so one
// of the two measured values must conflict and teach a lemma.
func learnedToyInstance(t *testing.T) (*Instance, []MeasuredExp) {
	t.Helper()
	for _, pairTInv := range []float64{1.0, 2.0} {
		in := toyInstance()
		exps := append(toyExps(), MeasuredExp{Exp: portmodel.Exp("iA", "iB"), TInv: pairTInv})
		if _, err := in.FindMapping(exps); err != nil {
			t.Fatal(err)
		}
		if in.LemmaCount() > 0 {
			return in, exps
		}
	}
	t.Fatal("no pair measurement conflicted with the first model; solver learned no lemmas")
	return nil, nil
}

// TestLemmaRecordsRoundTrip: exporting, JSON-encoding, and restoring
// lemmas into a structurally identical instance must leave the solver
// in an equivalent state — same lemma count, same solution.
func TestLemmaRecordsRoundTrip(t *testing.T) {
	in, exps := learnedToyInstance(t)
	want, err := in.FindMapping(exps)
	if err != nil {
		t.Fatal(err)
	}

	recs := in.LemmaRecords()
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	var back []LemmaRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, recs) {
		t.Fatal("lemma records changed across JSON")
	}

	fresh := toyInstance()
	if err := fresh.RestoreLemmas(back); err != nil {
		t.Fatal(err)
	}
	if fresh.LemmaCount() != in.LemmaCount() {
		t.Fatalf("restored %d lemmas, want %d", fresh.LemmaCount(), in.LemmaCount())
	}
	got, err := fresh.FindMapping(exps)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Isomorphic(want) {
		t.Fatalf("restored instance solves to a different mapping:\n%v\nvs\n%v", got, want)
	}
}

// TestLemmaRecordsAreCopies: mutating an exported record must not
// reach back into the instance.
func TestLemmaRecordsAreCopies(t *testing.T) {
	in, _ := learnedToyInstance(t)
	recs := in.LemmaRecords()
	recs[0].Lits[0].Port = 999
	for k := range recs[0].Src {
		recs[0].Src[k] = 999
	}
	for _, rec := range in.LemmaRecords() {
		for _, l := range rec.Lits {
			if l.Port == 999 {
				t.Fatal("exported record aliases instance state")
			}
		}
		for _, n := range rec.Src {
			if n == 999 {
				t.Fatal("exported source experiment aliases instance state")
			}
		}
	}
}

// TestRestoreLemmasRejectsCorrupt: out-of-range indices or empty
// clauses from a damaged checkpoint must fail validation instead of
// corrupting (or crashing) the next solve.
func TestRestoreLemmasRejectsCorrupt(t *testing.T) {
	valid := LemmaRecord{
		Lits: []LemmaLitRecord{{Uop: 0, Port: 1}},
		Src:  portmodel.Exp("iA"),
	}
	cases := []struct {
		name    string
		recs    []LemmaRecord
		wantErr string
	}{
		{
			name:    "empty clause",
			recs:    []LemmaRecord{{Src: portmodel.Exp("iA")}},
			wantErr: "empty clause",
		},
		{
			name:    "uop index negative",
			recs:    []LemmaRecord{{Lits: []LemmaLitRecord{{Uop: -1, Port: 0}}, Src: portmodel.Exp("iA")}},
			wantErr: "µop index -1 out of range",
		},
		{
			name:    "uop index too large",
			recs:    []LemmaRecord{{Lits: []LemmaLitRecord{{Uop: 5, Port: 0}}, Src: portmodel.Exp("iA")}},
			wantErr: "µop index 5 out of range",
		},
		{
			name:    "port negative",
			recs:    []LemmaRecord{{Lits: []LemmaLitRecord{{Uop: 0, Port: -2}}, Src: portmodel.Exp("iA")}},
			wantErr: "port -2 out of range",
		},
		{
			name:    "port too large",
			recs:    []LemmaRecord{{Lits: []LemmaLitRecord{{Uop: 0, Port: 2}}, Src: portmodel.Exp("iA")}},
			wantErr: "port 2 out of range",
		},
		{
			name:    "bad record after valid one",
			recs:    []LemmaRecord{valid, {Lits: []LemmaLitRecord{{Uop: 0, Port: 99}}, Src: portmodel.Exp("iA")}},
			wantErr: "lemma 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("RestoreLemmas panicked on corrupt input: %v", r)
				}
			}()
			in := toyInstance()
			err := in.RestoreLemmas(tc.recs)
			if err == nil {
				t.Fatal("corrupt lemma records accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if in.LemmaCount() != 0 {
				t.Errorf("failed restore left %d lemmas behind", in.LemmaCount())
			}
		})
	}
}
