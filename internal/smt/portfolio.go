package smt

// Parallel portfolio solving with deterministic arbitration.
//
// An unbudgeted FindMapping/FindOtherMapping query may run as a
// portfolio of K diversified CDCL members racing on the same formula:
// member 0 is the exact canonical baseline (the same encoding,
// heuristics, and therefore search trajectory as the single-solver
// path), members 1..K-1 ("scouts") differ in branching seed, Luby
// restart unit, default polarity, and activity decay.
//
// Determinism is the design constraint: mapping.json must stay
// byte-identical at any K and any GOMAXPROCS. Wall-clock racing is
// therefore forbidden. Members advance in lockstep rounds — each
// round grants every live member the same private conflict quantum
// and theory-iteration cap, the driver waits for all of them at a
// barrier, and outcomes are examined in member-index order. Two
// further rules make the *result* (not just the arbitration)
// K-invariant:
//
//   - Only member 0 may produce a model-bearing result (a consistent
//     mapping, a distinguishable other-mapping). A scout reaching one
//     goes dormant: its model is non-canonical and returning it would
//     change downstream measurements with K.
//   - A scout may short-circuit only outcomes that are both
//     semantically forced AND trail-free. A SAT-level UNSAT under
//     sound theory lemmas is forced — member 0, run to completion,
//     necessarily reaches the same verdict. But FindMapping retains
//     its lemma trail on ErrNoMapping (anomaly isolation warm-starts
//     from it), and the canonical trail exists only in a completed
//     member 0 — so FindMapping is always decided by member 0, and
//     scouts merely race alongside. FindOtherMapping's nil outcome is
//     rolled back by the public wrapper (no trail survives), so there
//     a scout's UNSAT — "every consistent mapping was enumerated and
//     found indistinguishable" — ends the query early. Uniqueness
//     proofs are the most expensive queries of a CEGAR run, so that
//     is exactly where the wall-clock win lives.
//
// Members exchange learned theory lemmas through a deduplicated
// shared pool: each member publishes its fresh lemmas at the round
// barrier (member-index order), scouts import unseen pool entries at
// their next round start. Member 0 publishes but NEVER imports — an
// imported clause would perturb its trajectory K-dependently.
//
// Queries with a finite caller budget bypass the portfolio entirely:
// a scout could prove UNSAT before the canonical member exhausts the
// budget, which would make the outcome (error vs. ErrNoMapping)
// depend on K.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"zenport/internal/portmodel"
	"zenport/internal/sat"
)

// PortfolioOptions configures portfolio solving for an Instance.
type PortfolioOptions struct {
	// K is the member count, including the canonical member 0.
	// Values below 2 disable the portfolio.
	K int
	// RoundConflicts is the CDCL conflict quantum granted to each
	// member per lockstep round. <= 0 means the default 2048.
	RoundConflicts uint64
	// RoundIterations caps the theory-refinement iterations a member
	// may complete per round. <= 0 means the default 64.
	RoundIterations int
}

func (o *PortfolioOptions) roundConflicts() uint64 {
	if o != nil && o.RoundConflicts > 0 {
		return o.RoundConflicts
	}
	return 2048
}

func (o *PortfolioOptions) roundIterations() int {
	if o != nil && o.RoundIterations > 0 {
		return o.RoundIterations
	}
	return 64
}

// portfolioOn reports whether a query should run the portfolio:
// K >= 2 members requested and no caller budget (see package comment).
func (in *Instance) portfolioOn(budget *sat.Budget) bool {
	return in.Portfolio != nil && in.Portfolio.K >= 2 && budget == nil
}

// PortfolioStats is the portfolio slice of the supervision telemetry.
type PortfolioStats struct {
	// Queries counts queries resolved by the portfolio runner.
	Queries uint64 `json:"queries"`
	// Rounds totals lockstep rounds across those queries.
	Rounds uint64 `json:"rounds"`
	// ShortCircuits counts queries decided early by a scout's UNSAT.
	ShortCircuits uint64 `json:"short_circuits"`
	// Wins[i] counts queries whose deciding member was i.
	Wins []uint64 `json:"wins"`
	// LemmasPublished counts distinct lemmas entering the shared pool.
	LemmasPublished uint64 `json:"lemmas_published"`
	// LemmasImported counts pool lemmas asserted into scout solvers.
	LemmasImported uint64 `json:"lemmas_imported"`
}

// Add folds another accumulator into this one.
func (p *PortfolioStats) Add(o PortfolioStats) {
	p.Queries += o.Queries
	p.Rounds += o.Rounds
	p.ShortCircuits += o.ShortCircuits
	for len(p.Wins) < len(o.Wins) {
		p.Wins = append(p.Wins, 0)
	}
	for i, w := range o.Wins {
		p.Wins[i] += w
	}
	p.LemmasPublished += o.LemmasPublished
	p.LemmasImported += o.LemmasImported
}

// clone returns a deep copy (the Wins slice is owned by the result).
func (p *PortfolioStats) clone() *PortfolioStats {
	if p == nil {
		return nil
	}
	out := *p
	out.Wins = append([]uint64(nil), p.Wins...)
	return &out
}

// StatsCollector aggregates QueryStats from concurrent reporters —
// the portfolio members report their per-round counter deltas from
// their own goroutines. The zero value is ready to use.
type StatsCollector struct {
	mu    sync.Mutex
	total QueryStats
}

// Report folds one reporter's stats into the aggregate. Safe for
// concurrent use.
func (c *StatsCollector) Report(q QueryStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total.Add(q)
}

// Snapshot returns a deep copy of the aggregate so far.
func (c *StatsCollector) Snapshot() QueryStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.total
	out.Portfolio = c.total.Portfolio.clone()
	return out
}

// lemmaKey renders a lemma canonically for deduplication: literal
// list (learning order is structural, hence canonical), source
// experiment, and slack. Two members deriving the same lemma from the
// same experiment produce identical keys.
func lemmaKey(lem lemma) string {
	var b strings.Builder
	for _, l := range lem.lits {
		fmt.Fprintf(&b, "%d.%d.%t;", l.uop, l.port, l.neg)
	}
	b.WriteByte('|')
	b.WriteString(ExpKey(lem.src))
	fmt.Fprintf(&b, "|%g", lem.slack)
	return b.String()
}

// poolEntry is one published lemma with its publishing member.
type poolEntry struct {
	lem  lemma
	from int
}

// lemmaPool is the deduplicated shared lemma exchange. It is written
// only at round barriers (single-threaded, member-index order) and
// read concurrently by scouts at round starts.
type lemmaPool struct {
	entries []poolEntry
	seen    map[string]bool
}

func newLemmaPool() *lemmaPool { return &lemmaPool{seen: map[string]bool{}} }

// add inserts a lemma unless an identical one is already pooled.
func (p *lemmaPool) add(lem lemma, from int) bool {
	k := lemmaKey(lem)
	if p.seen[k] {
		return false
	}
	p.seen[k] = true
	p.entries = append(p.entries, poolEntry{lem: lem, from: from})
	return true
}

// pfState is a member's lifecycle state between rounds.
type pfState int

const (
	pfRunning  pfState = iota // paused at the round boundary, still live
	pfSat                     // found a theory-consistent model
	pfUnsat                   // proved no further consistent mapping exists
	pfNil                     // find-other: bounds exhausted without a result
	pfDiverged                // hit maxTheoryIterations
	pfFound                   // find-other: found a distinguishable mapping
	pfError                   // hard error in err
)

// pfMember is one portfolio member: a private shadow instance (shared
// read-only µop table, private lemma store), a diversified solver
// over the same encoding, and a private cumulative budget stepped by
// one conflict quantum per round.
type pfMember struct {
	idx  int
	in   *Instance
	enc  *encoding
	prop *Propagator

	budget     sat.Budget
	byUop      []portmodel.PortSet
	iters      int
	candidates int
	published  int // prefix of in.lemmas already offered to the pool
	cursor     int // prefix of pool entries already examined
	imported   int // pool lemmas actually asserted into this solver

	state   pfState
	m       *portmodel.Mapping
	other   *OtherMapping
	err     error
	dormant bool
}

// pfConfig is the deterministic diversification roster. Member 0 is
// the zero Config: the exact canonical baseline. Scouts cycle restart
// units, branch polarities, activity decays, and seeded initial
// activity jitter — all pure functions of the member index.
func pfConfig(idx int) sat.Config {
	if idx == 0 {
		return sat.Config{}
	}
	units := [...]int{32, 128, 16, 256}
	decays := [...]float64{0.90, 0.99, 0.85, 0.95}
	return sat.Config{
		Seed:        1 + uint64(idx)*0x9e3779b97f4a7c15,
		LubyUnit:    units[(idx-1)%len(units)],
		PosPolarity: idx%2 == 1,
		Decay:       decays[(idx-1)%len(decays)],
	}
}

// newPfMember builds member idx for a query over exps: a shadow
// instance with a private copy of the current lemma store, encoded
// into a solver with the member's diversified configuration.
func (in *Instance) newPfMember(idx int, exps []MeasuredExp) (*pfMember, error) {
	sh := &Instance{NumPorts: in.NumPorts, Rmax: in.Rmax, Epsilon: in.Epsilon, Uops: in.Uops}
	sh.lemmas = append([]lemma(nil), in.lemmas...)
	enc, err := sh.encodeCfg(true, true, pfConfig(idx))
	if err != nil {
		return nil, err
	}
	prop, _ := sh.NewPropagator(exps)
	return &pfMember{idx: idx, in: sh, enc: enc, prop: prop, published: len(sh.lemmas)}, nil
}

// importPool asserts every unseen pool lemma into this scout's live
// solver. Returns true when an import closed the search space — a
// genuine UNSAT, since pool lemmas are sound. Never called on member
// 0: its trajectory must stay byte-identical to the single-solver
// path, so it publishes but does not import.
func (m *pfMember) importPool(pool *lemmaPool) bool {
	for ; m.cursor < len(pool.entries); m.cursor++ {
		e := pool.entries[m.cursor]
		if e.from == m.idx {
			continue // already in this member's own solver
		}
		clause := make([]sat.Lit, len(e.lem.lits))
		for i, l := range e.lem.lits {
			clause[i] = sat.NewLit(m.enc.mvar[l.uop][l.port], l.neg)
		}
		m.imported++
		if err := m.enc.s.AddClause(clause...); err != nil {
			if errors.Is(err, sat.ErrTrivialUnsat) {
				m.cursor++
				return true
			}
			m.state, m.err = pfError, err
			return false
		}
	}
	return false
}

// findRound advances one member of a FindMapping query by one round:
// up to roundIters completed theory iterations under one more
// conflict quantum. Leaving state == pfRunning means the member
// paused at its budget and continues next round — SolveBudget resumes
// the identical search, so chopping changes nothing but scheduling.
func (m *pfMember) findRound(ctx context.Context, exps []MeasuredExp, quantum uint64, roundIters int) {
	m.budget.MaxConflicts += quantum
	for n := 0; n < roundIters; n++ {
		if m.iters >= maxTheoryIterations {
			m.state = pfDiverged
			return
		}
		if err := ctx.Err(); err != nil {
			m.state, m.err = pfError, err
			return
		}
		r, err := m.enc.s.SolveBudget(ctx, &m.budget)
		if err != nil {
			if errors.Is(err, sat.ErrBudgetExhausted) {
				return // paused; still pfRunning
			}
			m.state, m.err = pfError, err
			return
		}
		m.iters++
		if r != sat.Sat {
			m.state = pfUnsat
			return
		}
		m.byUop = m.in.decodePorts(m.enc, m.byUop)
		var mp *portmodel.Mapping
		var vs []violation
		if m.prop != nil {
			m.prop.load(m.byUop)
			vs = m.prop.check()
		} else {
			mp = m.in.mappingFromPorts(m.byUop)
			vs, err = m.in.checkExps(mp, exps)
			if err != nil {
				m.state, m.err = pfError, err
				return
			}
		}
		if len(vs) == 0 {
			if mp == nil {
				mp = m.in.mappingFromPorts(m.byUop)
			}
			m.state, m.m = pfSat, mp
			return
		}
		if err := m.in.learnViolations(m.enc, m.prop, mp, m.byUop, exps, vs); err != nil {
			if errors.Is(err, errUnsatLemma) {
				m.state = pfUnsat
				return
			}
			m.state, m.err = pfError, err
			return
		}
	}
}

// otherRound is findRound's FindOtherMapping counterpart: it
// additionally enumerates consistent candidates, tests them against
// the pre-enumerated distinguishing experiments, and blocks
// indistinguishable ones — the same loop body as the single path.
func (m *pfMember) otherRound(ctx context.Context, exps []MeasuredExp, m1 *portmodel.Mapping, cands []candExp, maxCandidates int, quantum uint64, roundIters int) {
	m.budget.MaxConflicts += quantum
	for n := 0; n < roundIters; n++ {
		if m.iters >= maxTheoryIterations || m.candidates >= maxCandidates {
			m.state = pfNil
			return
		}
		if err := ctx.Err(); err != nil {
			m.state, m.err = pfError, err
			return
		}
		r, err := m.enc.s.SolveBudget(ctx, &m.budget)
		if err != nil {
			if errors.Is(err, sat.ErrBudgetExhausted) {
				return // paused; still pfRunning
			}
			m.state, m.err = pfError, err
			return
		}
		m.iters++
		if r != sat.Sat {
			m.state = pfUnsat
			return
		}
		m.byUop = m.in.decodePorts(m.enc, m.byUop)
		var m2 *portmodel.Mapping
		var vs []violation
		if m.prop != nil {
			m.prop.load(m.byUop)
			vs = m.prop.check()
		} else {
			m2 = m.in.mappingFromPorts(m.byUop)
			vs, err = m.in.checkExps(m2, exps)
			if err != nil {
				m.state, m.err = pfError, err
				return
			}
		}
		if len(vs) > 0 {
			if err := m.in.learnViolations(m.enc, m.prop, m2, m.byUop, exps, vs); err != nil {
				if errors.Is(err, errUnsatLemma) {
					m.state = pfUnsat
					return
				}
				m.state, m.err = pfError, err
				return
			}
			continue
		}
		if m2 == nil {
			m2 = m.in.mappingFromPorts(m.byUop)
		}
		m.candidates++
		if !sameUsage(m1, m2) && !m1.Isomorphic(m2) {
			exp, t1, t2, err := m.in.distinguishPre(m1, m2, cands)
			if err != nil {
				m.state, m.err = pfError, err
				return
			}
			if exp != nil {
				m.state = pfFound
				m.other = &OtherMapping{Mapping: m2, Exp: exp, T1: t1, T2: t2}
				return
			}
		}
		if err := m.in.blockModel(m.enc, m.byUop); err != nil {
			// The block closed the space: every consistent mapping was
			// enumerated and none was distinguishable.
			m.state = pfUnsat
			return
		}
	}
}

// portfolioRun drives one query's member fleet.
type portfolioRun struct {
	in        *Instance
	members   []*pfMember
	pool      *lemmaPool
	collector StatsCollector

	rounds       uint64
	winner       int
	shortCircuit bool
	published    uint64
}

func (in *Instance) newPortfolioRun(exps []MeasuredExp) (*portfolioRun, error) {
	r := &portfolioRun{in: in, pool: newLemmaPool(), winner: -1}
	for i := 0; i < in.Portfolio.K; i++ {
		m, err := in.newPfMember(i, exps)
		if err != nil {
			return nil, err
		}
		r.members = append(r.members, m)
	}
	return r, nil
}

// drive runs lockstep rounds until a member decides the query and
// returns that member. round advances one member by one round; it
// runs concurrently across members, but everything that determines
// the result — pool publication, arbitration — happens at the barrier
// in member-index order, so the decision is a pure function of the
// formula, K, and the round quanta. Never of wall clock or GOMAXPROCS.
//
// allowShortCircuit permits a scout's UNSAT to decide the query (the
// trail-free FindOtherMapping nil); without it every scout outcome is
// dormancy and only member 0 resolves.
func (r *portfolioRun) drive(ctx context.Context, allowShortCircuit bool, round func(*pfMember)) *pfMember {
	for {
		r.rounds++
		var wg sync.WaitGroup
		for _, m := range r.members {
			if m.dormant || m.state != pfRunning {
				continue
			}
			wg.Add(1)
			go func(m *pfMember) {
				defer wg.Done()
				iters0, stats0 := m.iters, m.enc.s.StatsSnapshot()
				if m.idx != 0 && m.importPool(r.pool) {
					m.state = pfUnsat
				}
				if m.state == pfRunning {
					round(m)
				}
				d := m.enc.s.StatsSnapshot()
				r.collector.Report(QueryStats{
					TheoryIterations: uint64(m.iters - iters0),
					Solver: sat.Stats{
						Propagations: d.Propagations - stats0.Propagations,
						Conflicts:    d.Conflicts - stats0.Conflicts,
						Decisions:    d.Decisions - stats0.Decisions,
						Restarts:     d.Restarts - stats0.Restarts,
						Learned:      d.Learned - stats0.Learned,
					},
				})
			}(m)
		}
		wg.Wait()

		// Barrier: publish fresh lemmas in member-index order, then
		// arbitrate in member-index order.
		for _, m := range r.members {
			for _, lem := range m.in.lemmas[m.published:] {
				if r.pool.add(lem, m.idx) {
					r.published++
				}
			}
			m.published = len(m.in.lemmas)
		}
		if m0 := r.members[0]; m0.state != pfRunning {
			r.winner = 0
			return m0
		}
		for _, m := range r.members[1:] {
			if m.dormant || m.state == pfRunning {
				continue
			}
			switch {
			case m.state == pfUnsat && allowShortCircuit:
				// Semantically forced and trail-free: short-circuit.
				r.winner, r.shortCircuit = m.idx, true
				return m
			case m.state == pfError && ctx.Err() != nil:
				return m // the whole query is being cancelled
			default:
				// Non-canonical (pfSat/pfFound), non-forced (pfNil,
				// pfDiverged), or forced-but-trail-bearing (pfUnsat
				// without allowShortCircuit): only member 0 decides.
				m.dormant = true
			}
		}
	}
}

// note folds the query's telemetry — summed member counters plus the
// portfolio section — into the instance accumulator. lemmas0 is the
// lemma-store length at query entry, so retained lemmas (member 0's,
// on success) are counted exactly like the single path counts its own.
func (r *portfolioRun) note(lemmas0 int) {
	q := r.in.Telemetry
	if q == nil {
		return
	}
	agg := r.collector.Snapshot()
	q.Queries++
	q.TheoryIterations += agg.TheoryIterations
	q.Solver.Propagations += agg.Solver.Propagations
	q.Solver.Conflicts += agg.Solver.Conflicts
	q.Solver.Decisions += agg.Solver.Decisions
	q.Solver.Restarts += agg.Solver.Restarts
	q.Solver.Learned += agg.Solver.Learned
	if n := len(r.in.lemmas) - lemmas0; n > 0 {
		q.LemmasLearned += uint64(n)
	}
	if q.Portfolio == nil {
		q.Portfolio = &PortfolioStats{}
	}
	p := q.Portfolio
	p.Queries++
	p.Rounds += r.rounds
	if r.shortCircuit {
		p.ShortCircuits++
	}
	for len(p.Wins) < len(r.members) {
		p.Wins = append(p.Wins, 0)
	}
	if r.winner >= 0 {
		p.Wins[r.winner]++
	}
	p.LemmasPublished += r.published
	for _, m := range r.members {
		p.LemmasImported += uint64(m.imported)
	}
}

// findMappingPortfolio is the portfolio path of FindMappingBudget.
// Member 0 always decides (no short-circuit: the UNSAT trail is part
// of the result), and on every member-0 outcome — success, UNSAT,
// divergence — the retained lemma store is exactly member 0's: the
// same lemmas, in the same order, as the single-solver path would
// have learned.
func (in *Instance) findMappingPortfolio(ctx context.Context, exps []MeasuredExp) (*portmodel.Mapping, error) {
	lemmas0 := len(in.lemmas)
	run, err := in.newPortfolioRun(exps)
	if err != nil {
		return nil, err
	}
	defer run.note(lemmas0)
	quantum, iters := in.Portfolio.roundConflicts(), in.Portfolio.roundIterations()
	dec := run.drive(ctx, false, func(m *pfMember) { m.findRound(ctx, exps, quantum, iters) })
	if dec.idx == 0 {
		in.lemmas = dec.in.lemmas
	}
	switch dec.state {
	case pfSat:
		return dec.m, nil
	case pfUnsat:
		return nil, ErrNoMapping
	case pfDiverged:
		return nil, fmt.Errorf("smt: theory refinement did not converge")
	default:
		return nil, dec.err
	}
}

// findOtherMappingPortfolio is the portfolio path of
// FindOtherMappingBudget. Scouts may only short-circuit the forced
// nil outcome; any returned OtherMapping is member 0's.
func (in *Instance) findOtherMappingPortfolio(ctx context.Context, exps []MeasuredExp, m1 *portmodel.Mapping, maxDistinct, maxTotal, maxCandidates int) (*OtherMapping, error) {
	lemmas0 := len(in.lemmas)
	cands, err := in.candidateExps(m1, maxDistinct, maxTotal)
	if err != nil {
		return nil, err
	}
	run, err := in.newPortfolioRun(exps)
	if err != nil {
		return nil, err
	}
	defer run.note(lemmas0)
	quantum, iters := in.Portfolio.roundConflicts(), in.Portfolio.roundIterations()
	dec := run.drive(ctx, true, func(m *pfMember) {
		m.otherRound(ctx, exps, m1, cands, maxCandidates, quantum, iters)
	})
	switch dec.state {
	case pfFound:
		// dec is necessarily member 0: scouts go dormant on a find.
		in.lemmas = dec.in.lemmas
		return dec.other, nil
	case pfUnsat, pfNil:
		return nil, nil
	default:
		return nil, dec.err
	}
}
