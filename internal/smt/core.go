package smt

import (
	"context"
	"errors"
	"sort"

	"zenport/internal/sat"
)

// Core is a conflicting subset of a measured experiment set: no port
// mapping satisfies the instance's boolean structure together with
// just these experiments. An empty Indices slice means the boolean
// structure alone (cardinalities, ties) is infeasible — no experiment
// subset is to blame.
type Core struct {
	// Indices are positions into the experiment slice handed to
	// UnsatCore, ascending.
	Indices []int
	// Minimal reports that the core is irreducible: removing any
	// single member makes the remainder feasible. False when the
	// budget ran out mid-minimization (the core is still genuinely
	// conflicting, just possibly shrinkable).
	Minimal bool
}

// UnsatCore explains why FindMapping declared the experiment set
// infeasible: it extracts a conflicting subset of exps and shrinks it
// to a minimal one. The method is two-staged:
//
//  1. A fresh refinement run re-derives the theory lemmas of the
//     conflict; each lemma is then asserted guarded by a selector
//     variable of its source experiment, and the SAT solver's
//     final-conflict assumption analysis yields a sound first
//     candidate (every lemma is a consequence of the theory plus its
//     source experiment, so a selector core is an experiment core).
//  2. The candidate is minimized by deletion with halving chunk
//     sizes, where each feasibility probe is a complete budgeted
//     FindMapping run — the probes are theory-complete, so the final
//     core is minimal with respect to the full theory, not just the
//     lemmas learned so far.
//
// The shared budget covers every solver call of both stages; on
// exhaustion the current (sound, possibly non-minimal) core is
// returned with Minimal=false. A feasible experiment set returns
// (nil, nil).
func (in *Instance) UnsatCore(ctx context.Context, exps []MeasuredExp, budget *sat.Budget) (*Core, error) {
	// Stage 0: confirm infeasibility on a lemma-free clone, keeping
	// the lemmas it learns for the selector pass. The internal
	// single-solver path is used deliberately: the selector pass needs
	// the canonical lemma trail, and spinning up portfolio scouts that
	// cannot decide the query anyway (FindMapping is always resolved
	// by member 0) would be pure overhead here.
	probe := in.Clone()
	if _, err := probe.findMappingSingle(ctx, exps, budget); err == nil {
		return nil, nil
	} else if !errors.Is(err, ErrNoMapping) {
		return nil, err
	}

	candidate, err := in.selectorCore(ctx, probe, exps, budget)
	if err != nil {
		if errors.Is(err, sat.ErrBudgetExhausted) && len(candidate) > 0 {
			return &Core{Indices: candidate}, nil
		}
		return nil, err
	}
	if len(candidate) == 0 {
		// The boolean structure alone is infeasible.
		return &Core{Minimal: true}, nil
	}

	core, minimal, err := in.shrinkCore(ctx, exps, candidate, budget)
	if err != nil {
		return nil, err
	}
	return &Core{Indices: core, Minimal: minimal}, nil
}

// selectorCore runs the SAT-level core extraction over the lemmas the
// failed probe run accumulated. Every lemma clause is asserted as
// (¬sel_src ∨ lits...) and the formula is solved under the assumption
// that every selector holds; the failed assumptions name the
// experiments whose lemmas the conflict needs. Experiments without
// lemmas cannot appear — correctly so, since they did not contribute
// to the conflict. A Sat outcome (possible only if the budget stopped
// the probe run short of its final UNSAT) falls back to the full
// index set.
func (in *Instance) selectorCore(ctx context.Context, probe *Instance, exps []MeasuredExp, budget *sat.Budget) ([]int, error) {
	enc, err := probe.encodeWith(true, false)
	if err != nil {
		return nil, err
	}
	selOf := make([]int, len(exps)) // experiment index -> selector var (0 = none yet)
	litToExp := make(map[sat.Lit]int)
	var assumptions []sat.Lit
	selectorFor := func(i int) sat.Lit {
		if selOf[i] == 0 {
			v := enc.s.NewVar()
			selOf[i] = v
			l := sat.NewLit(v, false)
			litToExp[l] = i
			assumptions = append(assumptions, l)
		}
		return sat.NewLit(selOf[i], false)
	}
	for _, lem := range probe.lemmas {
		src := -1
		for i := range exps {
			if sameExp(lem.src, exps[i].Exp) {
				src = i
				break
			}
		}
		if src < 0 {
			// A lemma from an experiment outside the set cannot be
			// attributed; skip it (dropping clauses only weakens the
			// core candidate, never unsoundly shrinks it).
			continue
		}
		clause := make([]sat.Lit, 0, len(lem.lits)+1)
		clause = append(clause, selectorFor(src).Not())
		for _, l := range lem.lits {
			clause = append(clause, sat.NewLit(enc.mvar[l.uop][l.port], l.neg))
		}
		if err := enc.s.AddClause(clause...); err != nil && err != sat.ErrTrivialUnsat {
			return nil, err
		}
	}
	r, err := enc.s.SolveBudget(ctx, budget, assumptions...)
	if err != nil {
		return allIndices(len(exps)), err
	}
	switch r {
	case sat.Unsat:
		failed := enc.s.FailedAssumptions()
		if failed == nil {
			// UNSAT independent of the selectors: structural.
			return nil, nil
		}
		var out []int
		for _, l := range failed {
			if i, ok := litToExp[l]; ok {
				out = append(out, i)
			}
		}
		sort.Ints(out)
		return out, nil
	default:
		// Lemmas alone do not capture the conflict at the SAT level;
		// start minimization from the full set.
		return allIndices(len(exps)), nil
	}
}

// shrinkCore minimizes a conflicting index set by deletion with
// halving chunk sizes: drop a whole chunk whenever the remainder is
// still infeasible, ending with an element-wise pass that establishes
// 1-minimality. Probes run the complete refinement loop, so
// minimality holds with respect to the full theory.
func (in *Instance) shrinkCore(ctx context.Context, exps []MeasuredExp, work []int, budget *sat.Budget) ([]int, bool, error) {
	infeasible := func(idxs []int) (bool, error) {
		sub := make([]MeasuredExp, len(idxs))
		for i, idx := range idxs {
			sub[i] = exps[idx]
		}
		_, err := in.Clone().FindMappingBudget(ctx, sub, budget)
		switch {
		case err == nil:
			return false, nil
		case errors.Is(err, ErrNoMapping):
			return true, nil
		default:
			return false, err
		}
	}
	for chunk := (len(work) + 1) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i < len(work); {
			end := i + chunk
			if end > len(work) {
				end = len(work)
			}
			if end-i == len(work) {
				// Never probe the empty remainder.
				i = end
				continue
			}
			trial := make([]int, 0, len(work)-(end-i))
			trial = append(trial, work[:i]...)
			trial = append(trial, work[end:]...)
			bad, err := infeasible(trial)
			if err != nil {
				if errors.Is(err, sat.ErrBudgetExhausted) {
					return work, false, nil
				}
				return nil, false, err
			}
			if bad {
				work = trial
			} else {
				i = end
			}
		}
	}
	return work, true, nil
}

// allIndices returns [0, 1, ..., n-1].
func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// CoreKeys renders a core's members as canonical experiment keys for
// reporting.
func CoreKeys(exps []MeasuredExp, c *Core) []string {
	if c == nil {
		return nil
	}
	out := make([]string, 0, len(c.Indices))
	for _, i := range c.Indices {
		out = append(out, ExpKey(exps[i].Exp))
	}
	return out
}
