package smt

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"zenport/internal/portmodel"
	"zenport/internal/sat"
)

// liedExps is a jointly conflicting set: the pair measurement is
// honest (iA and iB share a port), the flooded measurement lies
// (claims distinct ports).
func liedExps() []MeasuredExp {
	return []MeasuredExp{
		{Exp: portmodel.Exp("iA"), TInv: 1.0},
		{Exp: portmodel.Exp("iB"), TInv: 1.0},
		{Exp: portmodel.Experiment{"iA": 1, "iB": 1}, TInv: 2.0},
		{Exp: portmodel.Experiment{"iA": 2, "iB": 2}, TInv: 2.0}, // truth: 4.0
	}
}

func TestSupervisedRecoveryBySlack(t *testing.T) {
	// Relaxing the lying experiment's tolerance must make the set
	// feasible: |4.0 − 2.0| = 2 ≤ (0.02+slack)·4 needs slack ≥ 0.48,
	// i.e. two 0.25 steps.
	in := pairInstance()
	exps := liedExps()
	quality := func(e portmodel.Experiment) float64 {
		// Flag the flooded experiment as the least trustworthy.
		return float64(e.Len())
	}
	m, out, rep, err := in.FindMappingSupervised(context.Background(), exps, SuperviseOptions{
		MaxSlack:  1.0,
		QualityOf: quality,
		Log:       t.Logf,
	})
	if err != nil {
		t.Fatalf("supervised: %v (report %+v)", err, rep)
	}
	if m == nil {
		t.Fatal("no mapping")
	}
	if len(rep.Cores) == 0 {
		t.Fatal("no core recorded")
	}
	if len(rep.Relaxations) != 2 {
		t.Fatalf("relaxations = %+v, want two steps on the flooded experiment", rep.Relaxations)
	}
	wantKey := ExpKey(exps[3].Exp)
	for _, rx := range rep.Relaxations {
		if rx.Key != wantKey {
			t.Fatalf("relaxed %s, want %s", rx.Key, wantKey)
		}
	}
	if out[3].Slack != 0.5 {
		t.Fatalf("final slack %v, want 0.5", out[3].Slack)
	}
	if rep.Unrecoverable || rep.BudgetExhausted {
		t.Fatalf("unexpected failure flags in %+v", rep)
	}
	// The mapping must satisfy the honest experiments exactly: shared
	// port for iA and iB.
	uA, _ := m.Get("iA")
	uB, _ := m.Get("iB")
	if uA[0].Ports != uB[0].Ports {
		t.Fatalf("recovered mapping separated iA (%v) and iB (%v)", uA, uB)
	}
}

func TestSupervisedRecoveryByRemeasure(t *testing.T) {
	// When re-measurement returns the honest value, one relaxation
	// round heals the set without the slack doing any work.
	in := pairInstance()
	exps := liedExps()
	remeasured := 0
	m, out, rep, err := in.FindMappingSupervised(context.Background(), exps, SuperviseOptions{
		MaxSlack:  1.0,
		QualityOf: func(e portmodel.Experiment) float64 { return float64(e.Len()) },
		Remeasure: func(ctx context.Context, e portmodel.Experiment) (float64, error) {
			remeasured++
			return 4.0, nil // the honest throughput
		},
	})
	if err != nil {
		t.Fatalf("supervised: %v (report %+v)", err, rep)
	}
	if m == nil || remeasured != 1 || len(rep.Relaxations) != 1 {
		t.Fatalf("m=%v remeasured=%d relaxations=%+v", m, remeasured, rep.Relaxations)
	}
	rx := rep.Relaxations[0]
	if rx.OldTInv != 2.0 || rx.NewTInv != 4.0 {
		t.Fatalf("relaxation throughputs %+v, want 2.0 -> 4.0", rx)
	}
	if out[3].TInv != 4.0 {
		t.Fatalf("experiment not updated: %+v", out[3])
	}
}

func TestSupervisedUnrecoverable(t *testing.T) {
	// MaxSlack too small for the conflict: recovery must exhaust its
	// options and report Unrecoverable instead of looping.
	in := pairInstance()
	_, _, rep, err := in.FindMappingSupervised(context.Background(), liedExps(), SuperviseOptions{
		MaxSlack: 0.1, // conflict needs ≥ 0.48 somewhere
	})
	if !errors.Is(err, ErrNoMapping) {
		t.Fatalf("err = %v, want ErrNoMapping", err)
	}
	if !rep.Unrecoverable {
		t.Fatalf("report %+v lacks Unrecoverable", rep)
	}
	if len(rep.Cores) == 0 {
		t.Fatal("no core recorded on the way down")
	}
}

func TestSupervisedZeroSlackMatchesPlainFind(t *testing.T) {
	// MaxSlack 0 must behave exactly like FindMapping: ErrNoMapping,
	// no cores extracted, so the §4.3 anomaly-isolation path upstream
	// is unaffected.
	in := pairInstance()
	_, _, rep, err := in.FindMappingSupervised(context.Background(), liedExps(), SuperviseOptions{})
	if !errors.Is(err, ErrNoMapping) {
		t.Fatalf("err = %v, want ErrNoMapping", err)
	}
	if len(rep.Cores) != 0 || len(rep.Relaxations) != 0 || !rep.Unrecoverable {
		t.Fatalf("zero-slack report %+v should only mark Unrecoverable", rep)
	}
}

func TestSupervisedBudgetExhaustion(t *testing.T) {
	in := pairInstance()
	b := &sat.Budget{MaxPropagations: 1}
	_, _, rep, err := in.FindMappingSupervised(context.Background(), liedExps(), SuperviseOptions{
		MaxSlack: 1.0,
		Budget:   b,
	})
	if !errors.Is(err, sat.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if !rep.BudgetExhausted {
		t.Fatalf("report %+v lacks BudgetExhausted", rep)
	}
}

func TestSupervisedFeasibleSetUntouched(t *testing.T) {
	in := toyInstance()
	exps := toyExps()
	m, out, rep, err := in.FindMappingSupervised(context.Background(), exps, SuperviseOptions{MaxSlack: 1.0})
	if err != nil || m == nil {
		t.Fatalf("m=%v err=%v", m, err)
	}
	if len(rep.Cores) != 0 || len(rep.Relaxations) != 0 {
		t.Fatalf("feasible set triggered recovery: %+v", rep)
	}
	for i := range out {
		if out[i].Slack != 0 {
			t.Fatalf("experiment %d gained slack %v", i, out[i].Slack)
		}
	}
}

func TestTelemetryAccumulates(t *testing.T) {
	in := toyInstance()
	in.Telemetry = &QueryStats{}
	if _, err := in.FindMapping(toyExps()); err != nil {
		t.Fatal(err)
	}
	q1 := *in.Telemetry
	if q1.Queries != 1 {
		t.Fatalf("queries = %d, want 1", q1.Queries)
	}
	if q1.Solver.Propagations == 0 || q1.Solver.Decisions == 0 {
		t.Fatalf("solver counters empty: %+v", q1.Solver)
	}
	if q1.TheoryIterations == 0 {
		t.Fatal("no theory iterations counted")
	}
	// A second query adds on top, and clones share the accumulator.
	if _, err := in.Clone().FindMapping(toyExps()); err != nil {
		t.Fatal(err)
	}
	q2 := *in.Telemetry
	if q2.Queries != 2 || q2.Solver.Propagations <= q1.Solver.Propagations {
		t.Fatalf("clone did not accumulate: %+v then %+v", q1, q2)
	}
}

func TestTelemetryCountsBudgetStops(t *testing.T) {
	in := pairInstance()
	in.Telemetry = &QueryStats{}
	b := &sat.Budget{MaxPropagations: 1}
	// First query eats the budget; a follow-up query is refused at
	// entry and must be counted as budget-stopped.
	_, _ = in.FindMappingBudget(context.Background(), liedExps(), b)
	_, err := in.FindMappingBudget(context.Background(), liedExps(), b)
	if !errors.Is(err, sat.ErrBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if in.Telemetry.BudgetExhausted == 0 {
		t.Fatalf("telemetry %+v did not count the budget stop", in.Telemetry)
	}
}

func TestQueryStatsAddAndJSON(t *testing.T) {
	a := QueryStats{Queries: 1, TheoryIterations: 2, LemmasLearned: 3, Solver: sat.Stats{Conflicts: 4}}
	b := QueryStats{Queries: 10, BudgetExhausted: 1, Solver: sat.Stats{Conflicts: 40, Propagations: 7}}
	a.Add(b)
	if a.Queries != 11 || a.Solver.Conflicts != 44 || a.Solver.Propagations != 7 || a.BudgetExhausted != 1 {
		t.Fatalf("Add gave %+v", a)
	}
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back QueryStats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Fatalf("round trip %+v != %+v", back, a)
	}
}

func TestSlackenedLemmaRoundTrip(t *testing.T) {
	// Learn lemmas under a relaxed experiment, export, restore into a
	// fresh instance: the slack tags must survive and the restored
	// instance must answer queries identically.
	in := pairInstance()
	exps := liedExps()
	exps[3].Slack = 0.5
	m1, err := in.FindMapping(exps)
	if err != nil {
		t.Fatalf("relaxed set should be feasible: %v", err)
	}
	recs := in.LemmaRecords()
	if len(recs) == 0 {
		t.Skip("query solved without lemmas; nothing to round-trip")
	}
	blob, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	var back []LemmaRecord
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	in2 := pairInstance()
	if err := in2.RestoreLemmas(back); err != nil {
		t.Fatal(err)
	}
	recs2 := in2.LemmaRecords()
	for i := range recs {
		if recs[i].Slack != recs2[i].Slack {
			t.Fatalf("lemma %d slack %v != %v", i, recs[i].Slack, recs2[i].Slack)
		}
	}
	m2, err := in2.FindMapping(exps)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Isomorphic(m2) {
		t.Fatalf("restored instance found a different mapping:\n%v\nvs\n%v", m1, m2)
	}
}

func TestRestoreLemmasRejectsInvalidSlack(t *testing.T) {
	in := pairInstance()
	for _, bad := range []float64{-0.25} {
		recs := []LemmaRecord{{
			Lits:  []LemmaLitRecord{{Uop: 0, Port: 0}},
			Src:   portmodel.Exp("iA"),
			Slack: bad,
		}}
		if err := in.RestoreLemmas(recs); err == nil {
			t.Fatalf("slack %v accepted", bad)
		}
	}
}

func TestDropLemmasFrom(t *testing.T) {
	in := pairInstance()
	exps := liedExps()
	exps[3].Slack = 0.5
	if _, err := in.FindMapping(exps); err != nil {
		t.Fatal(err)
	}
	total := in.LemmaCount()
	if total == 0 {
		t.Skip("no lemmas learned")
	}
	// Dropping an uninvolved experiment's lemmas removes nothing.
	if n := in.DropLemmasFrom(portmodel.Exp("iZ")); n != 0 {
		t.Fatalf("dropped %d lemmas of an unknown experiment", n)
	}
	dropped := 0
	for _, me := range exps {
		dropped += in.DropLemmasFrom(me.Exp)
	}
	if dropped != total || in.LemmaCount() != 0 {
		t.Fatalf("dropped %d of %d, %d remain", dropped, total, in.LemmaCount())
	}
}
