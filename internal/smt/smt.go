// Package smt implements the solver layer of the counter-example-
// guided port mapping inference algorithm (Section 3.3 of Ritter &
// Hack, ASPLOS 2024): findMapping and findOtherMapping.
//
// The paper encodes both queries as SMT(LIRA) formulas for z3. This
// reproduction cannot ship z3 (closed toolchain, offline module), so
// the same queries are decided by a DPLL(T)-style loop over the CDCL
// SAT solver of package sat:
//
//   - boolean structure — the m[u,k] port-membership variables,
//     exact-cardinality constraints from measured single-instruction
//     throughputs, µop-tying constraints for the improper store
//     blockers (§4.3), and lex symmetry breaking over port columns —
//     lives in SAT clauses;
//   - the arithmetic part — the throughput LP with its optimality
//     conditions (constraints F–I) — is decided exactly by the
//     combinatorial evaluator of package portmodel, and every theory
//     conflict is fed back as a *generalized monotone lemma* (see
//     DESIGN.md §3) that excludes a whole up- or down-set of
//     mappings, not just the failing model.
//
// The acceptance predicate is identical to the paper's: a mapping M
// satisfies experiment (e, t) iff |max(tp_M(e), |e|/Rmax) − t| ≤ ε·|e|
// (§3.3.4, §3.4).
package smt

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"zenport/internal/portmodel"
	"zenport/internal/sat"
)

// UopSpec describes one µop whose port set is to be inferred.
type UopSpec struct {
	// Key is the instruction scheme owning the µop.
	Key string
	// NumPorts is the known cardinality of the port set, derived
	// from the measured single-instruction throughput (§3.2 step 2).
	// Zero means unknown (used for the improper blockers' µops).
	NumPorts int
	// TiedToBlocker, if true, constrains this µop's port set to be
	// equal to the port set of some proper single-µop instruction of
	// the instance (§4.3: "one of their µops is equal to one with a
	// proper blocking instruction").
	TiedToBlocker bool
}

// Instance is a findMapping/findOtherMapping problem: a set of
// instructions, each decomposed into one or more µops with unknown
// port sets.
type Instance struct {
	// NumPorts is the number of execution ports.
	NumPorts int
	// Rmax is the frontend bottleneck in instructions/cycle (§3.4);
	// 0 disables it.
	Rmax float64
	// Epsilon is the CPI tolerance (§3.3.4).
	Epsilon float64
	// Uops lists all µops. Instructions with several µops list
	// several entries with the same Key.
	Uops []UopSpec

	// lemmas accumulates theory lemmas across solver runs of one
	// CEGAR execution; each is sound as long as its source experiment
	// remains in the measured set, and is re-asserted into every
	// fresh SAT solver.
	lemmas []lemma

	// Telemetry, if non-nil, accumulates per-query solver statistics
	// across FindMapping/FindOtherMapping calls (and the sub-instance
	// solves derived via Clone/Without, which share the pointer). Not
	// safe for concurrent queries.
	Telemetry *QueryStats

	// Portfolio, if non-nil with K >= 2, runs every unbudgeted
	// FindMapping/FindOtherMapping query as a deterministic parallel
	// portfolio of diversified CDCL members (see portfolio.go). The
	// pointer is shared by Clone/Without sub-instances, so culprit
	// isolation and core probes inherit the portfolio.
	Portfolio *PortfolioOptions
}

// MeasuredExp is an experiment with its measured inverse throughput.
type MeasuredExp struct {
	Exp  portmodel.Experiment
	TInv float64
	// Slack widens this experiment's acceptance tolerance beyond the
	// instance Epsilon: the mapping must satisfy
	// |max(tp_M(e), |e|/Rmax) − t| ≤ (ε + Slack)·|e|. Zero for normal
	// experiments; the supervision layer raises it on the members of a
	// minimal conflicting core to recover from inconsistent
	// measurements (PMEvo and PALMED tolerate noisy observations the
	// same way — as soft constraints rather than hard ones).
	Slack float64
}

// lemmaLit is a solver-independent literal: µop index, port, sign.
type lemmaLit struct {
	uop  int
	port int
	neg  bool
}

// lemma is a learned theory clause together with the experiment it
// was derived from (the lemma is sound only while that experiment is
// part of the measured set). slack records the source experiment's
// Slack at learning time: widening the tolerance afterwards
// invalidates the lemma (a mapping it excludes may now be acceptable),
// so relaxation must drop the experiment's lemmas via DropLemmasFrom.
type lemma struct {
	lits  []lemmaLit
	src   portmodel.Experiment
	slack float64
}

// keys returns the distinct instruction keys of the instance.
func (in *Instance) keys() []string {
	seen := map[string]bool{}
	var out []string
	for _, u := range in.Uops {
		if !seen[u.Key] {
			seen[u.Key] = true
			out = append(out, u.Key)
		}
	}
	sort.Strings(out)
	return out
}

// properUops returns indices of single-µop instructions (the proper
// blocking instructions), the tying targets of improper µops.
func (in *Instance) properUops() []int {
	count := map[string]int{}
	for _, u := range in.Uops {
		count[u.Key]++
	}
	var out []int
	for i, u := range in.Uops {
		if count[u.Key] == 1 && !u.TiedToBlocker {
			out = append(out, i)
		}
	}
	return out
}

// encoding holds the SAT variable layout of one solver run.
type encoding struct {
	s *sat.Solver
	// mvar[u][k] is the SAT variable of m[u,k].
	mvar [][]int
}

// encode builds a fresh SAT solver with the boolean structure of the
// instance: port-membership variables, cardinality, ties, symmetry
// breaking, and all accumulated lemmas. breakSymmetry should be false
// when extra constraints (e.g. hard-wiring a mapping) are not
// permutation-invariant.
func (in *Instance) encode(breakSymmetry bool) (*encoding, error) {
	return in.encodeWith(breakSymmetry, true)
}

// encodeWith is encode with the lemma re-assertion made optional: the
// UNSAT-core extractor asserts lemmas itself, each guarded by its
// source experiment's selector variable, so it needs the bare boolean
// structure.
func (in *Instance) encodeWith(breakSymmetry, withLemmas bool) (*encoding, error) {
	return in.encodeCfg(breakSymmetry, withLemmas, sat.Config{})
}

// encodeCfg is encodeWith with an explicit solver configuration, used
// by the portfolio layer to build diversified members over the same
// boolean structure. The zero Config is the canonical baseline.
func (in *Instance) encodeCfg(breakSymmetry, withLemmas bool, cfg sat.Config) (*encoding, error) {
	s := sat.NewSolverConfig(cfg)
	nu, np := len(in.Uops), in.NumPorts
	enc := &encoding{s: s, mvar: make([][]int, nu)}
	for u := 0; u < nu; u++ {
		enc.mvar[u] = make([]int, np)
		for k := 0; k < np; k++ {
			enc.mvar[u][k] = s.NewVar()
		}
	}
	// Cardinality per µop.
	for u, spec := range in.Uops {
		lits := make([]sat.Lit, np)
		for k := 0; k < np; k++ {
			lits[k] = sat.NewLit(enc.mvar[u][k], false)
		}
		if spec.NumPorts > 0 {
			if err := s.AddExactlyK(lits, spec.NumPorts); err != nil {
				return nil, fmt.Errorf("smt: cardinality of %s: %w", spec.Key, err)
			}
		} else {
			if err := s.AddAtLeastK(lits, 1); err != nil {
				return nil, fmt.Errorf("smt: non-empty port set of %s: %w", spec.Key, err)
			}
		}
	}
	// Tie constraints: a tied µop equals some proper µop's port set.
	proper := in.properUops()
	for u, spec := range in.Uops {
		if !spec.TiedToBlocker {
			continue
		}
		if len(proper) == 0 {
			return nil, fmt.Errorf("smt: %s is tied but no proper blockers exist", spec.Key)
		}
		sel := make([]sat.Lit, len(proper))
		for i, p := range proper {
			v := s.NewVar()
			sel[i] = sat.NewLit(v, false)
			for k := 0; k < np; k++ {
				// sel -> (m[u][k] <-> m[p][k])
				if err := s.AddClause(sat.NewLit(v, true), sat.NewLit(enc.mvar[u][k], true), sat.NewLit(enc.mvar[p][k], false)); err != nil {
					return nil, err
				}
				if err := s.AddClause(sat.NewLit(v, true), sat.NewLit(enc.mvar[u][k], false), sat.NewLit(enc.mvar[p][k], true)); err != nil {
					return nil, err
				}
			}
		}
		if err := s.AddAtLeastK(sel, 1); err != nil {
			return nil, err
		}
	}
	// Lex symmetry breaking over adjacent port columns: ports are
	// interchangeable a priori, so require column k ≥lex column k+1.
	if breakSymmetry {
		for k := 0; k+1 < np; k++ {
			if err := in.addLexGE(enc, k, k+1); err != nil {
				return nil, err
			}
		}
	}
	// Re-assert accumulated theory lemmas.
	if withLemmas {
		for _, lem := range in.lemmas {
			clause := make([]sat.Lit, len(lem.lits))
			for i, l := range lem.lits {
				clause[i] = sat.NewLit(enc.mvar[l.uop][l.port], l.neg)
			}
			if err := s.AddClause(clause...); err != nil && err != sat.ErrTrivialUnsat {
				return nil, err
			}
		}
	}
	return enc, nil
}

// addLexGE asserts column a ≥lex column b over the µop rows, with
// chain variables eq_u ("equal so far").
func (in *Instance) addLexGE(enc *encoding, a, b int) error {
	s := enc.s
	nu := len(in.Uops)
	prevEq := 0 // 0 means "true" (no variable yet)
	for u := 0; u < nu; u++ {
		ma := sat.NewLit(enc.mvar[u][a], false)
		mb := sat.NewLit(enc.mvar[u][b], false)
		if prevEq == 0 {
			// eq-so-far is true: require m[u][a] >= m[u][b].
			if err := s.AddClause(ma, mb.Not()); err != nil {
				return err
			}
		} else {
			pe := sat.NewLit(prevEq, false)
			if err := s.AddClause(pe.Not(), ma, mb.Not()); err != nil {
				return err
			}
		}
		if u == nu-1 {
			break
		}
		// eq_u <- prevEq ∧ (ma <-> mb); only the -> direction of the
		// chain is needed for soundness of the ordering constraint,
		// but we assert both directions for stronger propagation.
		eq := s.NewVar()
		el := sat.NewLit(eq, false)
		cl := []sat.Lit{el.Not(), ma.Not(), mb}
		if prevEq != 0 {
			// eq -> prevEq
			if err := s.AddClause(el.Not(), sat.NewLit(prevEq, false)); err != nil {
				return err
			}
		}
		if err := s.AddClause(cl...); err != nil {
			return err
		}
		if err := s.AddClause(el.Not(), ma, mb.Not()); err != nil {
			return err
		}
		// (prevEq ∧ ma<->mb) -> eq
		if prevEq == 0 {
			if err := s.AddClause(el, ma, mb); err != nil {
				return err
			}
			if err := s.AddClause(el, ma.Not(), mb.Not()); err != nil {
				return err
			}
		} else {
			pe := sat.NewLit(prevEq, false)
			if err := s.AddClause(el, pe.Not(), ma, mb); err != nil {
				return err
			}
			if err := s.AddClause(el, pe.Not(), ma.Not(), mb.Not()); err != nil {
				return err
			}
		}
		prevEq = eq
	}
	return nil
}

// decode reads a mapping out of a satisfying model, together with the
// per-µop-index port sets (needed for exact lemma attribution: the
// Mapping merges µops with equal port sets, the index view does not).
func (in *Instance) decode(enc *encoding) (*portmodel.Mapping, []portmodel.PortSet) {
	byUop := in.decodePorts(enc, nil)
	return in.mappingFromPorts(byUop), byUop
}

// decodePorts reads only the per-µop port sets out of a satisfying
// model, reusing buf when it has the right length — the hot loops
// avoid building the string-keyed Mapping for candidates that are
// about to be refuted anyway.
func (in *Instance) decodePorts(enc *encoding, buf []portmodel.PortSet) []portmodel.PortSet {
	if len(buf) != len(in.Uops) {
		buf = make([]portmodel.PortSet, len(in.Uops))
	}
	for u := range in.Uops {
		var ps portmodel.PortSet
		for k := 0; k < in.NumPorts; k++ {
			if enc.s.Model(enc.mvar[u][k]) {
				ps |= 1 << uint(k)
			}
		}
		buf[u] = ps
	}
	return buf
}

// mappingFromPorts assembles the string-keyed Mapping of a decoded
// candidate (only done for candidates that survive propagation).
func (in *Instance) mappingFromPorts(byUop []portmodel.PortSet) *portmodel.Mapping {
	m := portmodel.NewMapping(in.NumPorts)
	usage := make(map[string]portmodel.Usage)
	for u := range in.Uops {
		usage[in.Uops[u].Key] = append(usage[in.Uops[u].Key], portmodel.Uop{Ports: byUop[u], Count: 1})
	}
	for key, us := range usage {
		m.Set(key, us)
	}
	return m
}

// modelTInv is the model-predicted inverse throughput with the
// frontend bottleneck applied (§3.4).
func (in *Instance) modelTInv(m *portmodel.Mapping, e portmodel.Experiment) (float64, error) {
	return m.InverseThroughputBounded(e, in.Rmax)
}

// violation records one experiment the candidate mapping fails.
type violation struct {
	idx     int
	tooSlow bool
}

// checkExps verifies the mapping against all experiments and returns
// every violation ("too slow" = model above measurement). An empty
// result means the mapping is consistent.
func (in *Instance) checkExps(m *portmodel.Mapping, exps []MeasuredExp) ([]violation, error) {
	var out []violation
	for i, me := range exps {
		t, err := in.modelTInv(m, me.Exp)
		if err != nil {
			return nil, err
		}
		tol := (in.Epsilon + me.Slack) * float64(me.Exp.Len())
		switch {
		case t > me.TInv+tol:
			out = append(out, violation{idx: i, tooSlow: true})
		case t < me.TInv-tol:
			out = append(out, violation{idx: i, tooSlow: false})
		}
	}
	return out, nil
}

// learnViolations adds one lemma per violated experiment and asserts
// them into the live solver. Learning all violations at once sharply
// reduces the number of theory iterations. Too-slow lemmas need the
// bottleneck witness of the failing candidate: the compiled
// propagator provides it allocation-free when available, otherwise it
// is recomputed from the reference evaluator — the two are
// bit-identical, so the learned lemmas (and with them the whole
// search trajectory) do not depend on which path ran.
func (in *Instance) learnViolations(enc *encoding, prop *Propagator, m *portmodel.Mapping, byUop []portmodel.PortSet, exps []MeasuredExp, vs []violation) error {
	for _, v := range vs {
		var err error
		if v.tooSlow {
			var q portmodel.PortSet
			if prop != nil {
				q = prop.witness(v.idx)
			} else {
				q, _, err = m.BottleneckWitness(exps[v.idx].Exp)
				if err != nil {
					return err
				}
			}
			err = in.addTooSlowLemma(q, byUop, exps[v.idx].Exp, exps[v.idx].Slack)
		} else {
			err = in.addTooFastLemma(byUop, exps[v.idx].Exp, exps[v.idx].Slack)
		}
		if err != nil {
			return err
		}
		if err := in.assertLastLemma(enc); err != nil {
			return errUnsatLemma
		}
	}
	return nil
}

// errUnsatLemma signals that asserting a lemma made the formula
// trivially unsatisfiable.
var errUnsatLemma = errors.New("smt: lemma closed the search space")

// uopIndexByKey maps instruction keys to their µop indices.
func (in *Instance) uopIndexByKey() map[string][]int {
	out := map[string][]int{}
	for i, u := range in.Uops {
		out[u.Key] = append(out[u.Key], i)
	}
	return out
}

// addTooSlowLemma learns the down-set exclusion for a "model too
// slow" conflict: with q the bottleneck witness of the failing
// mapping, any mapping keeping every culprit µop inside q has
// mass(q) at least as large and is therefore at least as slow, so
// some culprit µop must gain a port outside q.
func (in *Instance) addTooSlowLemma(q portmodel.PortSet, byUop []portmodel.PortSet, e portmodel.Experiment, slack float64) error {
	var lem []lemmaLit
	for ui, spec := range in.Uops {
		if e[spec.Key] == 0 {
			continue
		}
		if !byUop[ui].SubsetOf(q) {
			continue
		}
		for k := 0; k < in.NumPorts; k++ {
			if !q.Has(k) {
				lem = append(lem, lemmaLit{uop: ui, port: k, neg: false})
			}
		}
	}
	if len(lem) == 0 {
		return fmt.Errorf("smt: empty too-slow lemma (measurement outside any model value)")
	}
	in.lemmas = append(in.lemmas, lemma{lits: lem, src: e.Clone(), slack: slack})
	return nil
}

// addTooFastLemma learns the up-set exclusion for a "model too fast"
// conflict: throughput is monotone non-increasing in added ports, so
// any mapping whose µop port sets are supersets of the failing one is
// also too fast; some participating µop must lose one of its current
// ports.
func (in *Instance) addTooFastLemma(byUop []portmodel.PortSet, e portmodel.Experiment, slack float64) error {
	var lem []lemmaLit
	for ui, spec := range in.Uops {
		if e[spec.Key] == 0 {
			continue
		}
		for k := 0; k < in.NumPorts; k++ {
			if byUop[ui].Has(k) {
				lem = append(lem, lemmaLit{uop: ui, port: k, neg: true})
			}
		}
	}
	if len(lem) == 0 {
		return fmt.Errorf("smt: empty too-fast lemma")
	}
	in.lemmas = append(in.lemmas, lemma{lits: lem, src: e.Clone(), slack: slack})
	return nil
}

// sameExp reports whether two experiments are the same multiset.
func sameExp(a, b portmodel.Experiment) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}

// ExpKey renders an experiment canonically ("n*key|m*key" in sorted
// key order), matching the engine's cache identity; the supervision
// layer uses it to name core members and relaxations.
func ExpKey(e portmodel.Experiment) string {
	keys := e.Keys()
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%d*%s", e[k], k))
	}
	return strings.Join(parts, "|")
}

// DropLemmasFrom removes every lemma derived from the given experiment
// and returns how many were dropped. It must be called whenever an
// experiment's TInv or Slack changes: lemmas learned under the old
// acceptance bound may exclude mappings the new bound accepts.
func (in *Instance) DropLemmasFrom(e portmodel.Experiment) int {
	kept := in.lemmas[:0]
	dropped := 0
	for _, lem := range in.lemmas {
		if sameExp(lem.src, e) {
			dropped++
			continue
		}
		kept = append(kept, lem)
	}
	in.lemmas = kept
	return dropped
}
