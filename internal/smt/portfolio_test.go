package smt

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"zenport/internal/portmodel"
	"zenport/internal/sat"
)

// portfolioFixture is a SAT instance whose refinement loop genuinely
// iterates (the first model is inconsistent with the pair
// measurement), so lemma learning, publication, and the multi-round
// machinery are all exercised.
func portfolioFixture() (*Instance, []MeasuredExp) {
	in := &Instance{
		NumPorts: 4, Rmax: 5, Epsilon: 0.02,
		Uops: []UopSpec{
			{Key: "add", NumPorts: 2},
			{Key: "mul", NumPorts: 1},
			{Key: "shl", NumPorts: 1},
		},
	}
	// Ground truth: add on {0,1}, mul on {0}, shl on {1}.
	truth := portmodel.NewMapping(4)
	truth.Set("add", portmodel.Usage{{Ports: portmodel.MakePortSet(0, 1), Count: 1}})
	truth.Set("mul", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	truth.Set("shl", portmodel.Usage{{Ports: portmodel.MakePortSet(1), Count: 1}})
	exps := []MeasuredExp{}
	for _, e := range []portmodel.Experiment{
		portmodel.Exp("add"),
		portmodel.Exp("mul"),
		portmodel.Exp("shl"),
		{"add": 2, "mul": 1},
		{"add": 2, "shl": 1},
		{"mul": 1, "shl": 1},
		{"add": 2, "mul": 1, "shl": 1},
	} {
		ti, err := truth.InverseThroughput(e)
		if err != nil {
			panic(err)
		}
		exps = append(exps, MeasuredExp{Exp: e, TInv: ti})
	}
	return in, exps
}

func mappingJSON(t *testing.T, m *portmodel.Mapping) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPortfolioFindMappingMatchesSingle: the portfolio result — the
// mapping AND the retained lemma store — must be byte-identical to
// the single-solver path at every K and round quantum.
func TestPortfolioFindMappingMatchesSingle(t *testing.T) {
	ref, refExps := portfolioFixture()
	refM, err := ref.FindMapping(refExps)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := mappingJSON(t, refM)
	refLemmas := ref.LemmaRecords()

	for _, k := range []int{1, 2, 4, 8} {
		for _, quantum := range []uint64{64, 2048} {
			in, exps := portfolioFixture()
			in.Portfolio = &PortfolioOptions{K: k, RoundConflicts: quantum}
			in.Telemetry = &QueryStats{}
			m, err := in.FindMapping(exps)
			if err != nil {
				t.Fatalf("K=%d quantum=%d: %v", k, quantum, err)
			}
			if got := mappingJSON(t, m); string(got) != string(refJSON) {
				t.Fatalf("K=%d quantum=%d: mapping diverged\n got %s\nwant %s", k, quantum, got, refJSON)
			}
			if got := in.LemmaRecords(); !reflect.DeepEqual(got, refLemmas) {
				t.Fatalf("K=%d quantum=%d: lemma store diverged: %d records vs %d", k, quantum, len(got), len(refLemmas))
			}
			if k >= 2 {
				p := in.Telemetry.Portfolio
				if p == nil || p.Queries == 0 || p.Rounds == 0 {
					t.Fatalf("K=%d: portfolio telemetry missing: %+v", k, p)
				}
				if len(p.Wins) != k {
					t.Fatalf("K=%d: Wins has %d entries", k, len(p.Wins))
				}
			}
		}
	}
}

// TestPortfolioFindOtherMappingMatchesSingle: same identity for the
// enumeration query, including the distinguishing experiment and both
// modeled throughputs.
func TestPortfolioFindOtherMappingMatchesSingle(t *testing.T) {
	ref := toyInstance()
	refExps := toyExps()
	refM, err := ref.FindMapping(refExps)
	if err != nil {
		t.Fatal(err)
	}
	refOther, err := ref.FindOtherMapping(refExps, refM, 2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if refOther == nil {
		t.Fatal("reference FindOtherMapping returned nil")
	}

	for _, k := range []int{1, 2, 4, 8} {
		in := toyInstance()
		in.Portfolio = &PortfolioOptions{K: k, RoundConflicts: 64}
		exps := toyExps()
		m1, err := in.FindMapping(exps)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if got := mappingJSON(t, m1); string(got) != string(mappingJSON(t, refM)) {
			t.Fatalf("K=%d: first mapping diverged", k)
		}
		other, err := in.FindOtherMapping(exps, m1, 2, 4, 100)
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if other == nil {
			t.Fatalf("K=%d: FindOtherMapping returned nil, single path found one", k)
		}
		if !reflect.DeepEqual(other.Exp, refOther.Exp) || other.T1 != refOther.T1 || other.T2 != refOther.T2 {
			t.Fatalf("K=%d: distinguishing experiment diverged: %v (%v/%v) vs %v (%v/%v)",
				k, other.Exp, other.T1, other.T2, refOther.Exp, refOther.T1, refOther.T2)
		}
		if got := mappingJSON(t, other.Mapping); string(got) != string(mappingJSON(t, refOther.Mapping)) {
			t.Fatalf("K=%d: second mapping diverged", k)
		}
	}
}

// TestPortfolioCEGARSequenceMatchesSingle drives the full CEGAR loop
// (alternating FindMapping / FindOtherMapping with measurements from
// a ground truth) at several K: every round's experiments and the
// converged mapping must match the single-solver run exactly.
func TestPortfolioCEGARSequenceMatchesSingle(t *testing.T) {
	truth := portmodel.NewMapping(2)
	truth.Set("iA", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	truth.Set("iB", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})

	run := func(k int) ([]byte, int) {
		in := toyInstance()
		if k >= 2 {
			in.Portfolio = &PortfolioOptions{K: k, RoundConflicts: 64}
		}
		exps := toyExps()
		for iter := 0; iter < 20; iter++ {
			m1, err := in.FindMapping(exps)
			if err != nil {
				t.Fatalf("K=%d: %v", k, err)
			}
			other, err := in.FindOtherMapping(exps, m1, 2, 4, 100)
			if err != nil {
				t.Fatalf("K=%d: %v", k, err)
			}
			if other == nil {
				return mappingJSON(t, m1), len(exps)
			}
			tm, err := truth.InverseThroughput(other.Exp)
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, MeasuredExp{Exp: other.Exp, TInv: tm})
		}
		t.Fatalf("K=%d: CEGAR did not converge", k)
		return nil, 0
	}

	refJSON, refExps := run(1)
	for _, k := range []int{2, 4, 8} {
		got, n := run(k)
		if string(got) != string(refJSON) {
			t.Fatalf("K=%d: converged mapping diverged\n got %s\nwant %s", k, got, refJSON)
		}
		if n != refExps {
			t.Fatalf("K=%d: converged after %d experiments, single after %d", k, n, refExps)
		}
	}
}

// TestPortfolioUnsatMatchesSingle: an infeasible instance must return
// ErrNoMapping at every K, retaining a lemma trail byte-identical to
// the single solver's — anomaly isolation warm-starts the
// post-exclusion queries from that trail, so it is part of the
// K-invariance contract.
func TestPortfolioUnsatMatchesSingle(t *testing.T) {
	build := func() (*Instance, []MeasuredExp) {
		in := &Instance{
			NumPorts: 10, Rmax: 5, Epsilon: 0.02,
			Uops: []UopSpec{
				{Key: "add", NumPorts: 4},
				{Key: "imul", NumPorts: 1},
			},
		}
		exps := []MeasuredExp{
			{Exp: portmodel.Exp("add"), TInv: 0.25},
			{Exp: portmodel.Exp("imul"), TInv: 1.0},
			{Exp: portmodel.Experiment{"add": 4, "imul": 1}, TInv: 1.5},
		}
		return in, exps
	}
	ref, refExps := build()
	if _, err := ref.FindMapping(refExps); err != ErrNoMapping {
		t.Fatalf("single: expected ErrNoMapping, got %v", err)
	}
	refTrail := ref.LemmaRecords()
	if len(refTrail) == 0 {
		t.Fatal("single-path UNSAT learned no lemmas; fixture too easy")
	}
	for _, k := range []int{2, 4, 8} {
		in, exps := build()
		in.Portfolio = &PortfolioOptions{K: k, RoundConflicts: 64}
		if _, err := in.FindMapping(exps); err != ErrNoMapping {
			t.Fatalf("K=%d: expected ErrNoMapping, got %v", k, err)
		}
		if got := in.LemmaRecords(); !reflect.DeepEqual(got, refTrail) {
			t.Fatalf("K=%d: UNSAT lemma trail diverged from single path: %d records vs %d",
				k, len(got), len(refTrail))
		}
	}
}

// TestPortfolioOtherMappingNilRollsBack: a nil FindOtherMapping (the
// uniqueness proof that ends a CEGAR loop) must leave the lemma store
// untouched at every K — this is the trail-free outcome that lets a
// scout's UNSAT short-circuit the query.
func TestPortfolioOtherMappingNilRollsBack(t *testing.T) {
	truth := portmodel.NewMapping(2)
	truth.Set("iA", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	truth.Set("iB", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	for _, k := range []int{1, 2, 4, 8} {
		in := toyInstance()
		if k >= 2 {
			in.Portfolio = &PortfolioOptions{K: k, RoundConflicts: 64}
		}
		exps := toyExps()
		// Drive to convergence: the final FindOtherMapping returns nil.
		for iter := 0; ; iter++ {
			if iter >= 20 {
				t.Fatalf("K=%d: CEGAR did not converge", k)
			}
			m1, err := in.FindMapping(exps)
			if err != nil {
				t.Fatalf("K=%d: %v", k, err)
			}
			before := in.LemmaCount()
			other, err := in.FindOtherMapping(exps, m1, 2, 4, 100)
			if err != nil {
				t.Fatalf("K=%d: %v", k, err)
			}
			if other == nil {
				if got := in.LemmaCount(); got != before {
					t.Fatalf("K=%d: nil FindOtherMapping changed the lemma store: %d -> %d", k, before, got)
				}
				break
			}
			tm, err := truth.InverseThroughput(other.Exp)
			if err != nil {
				t.Fatal(err)
			}
			exps = append(exps, MeasuredExp{Exp: other.Exp, TInv: tm})
		}
	}
}

// TestPortfolioDisabledUnderBudget: a finite caller budget must take
// the single-solver path (a scout could otherwise decide a query the
// canonical member's budget would have stopped, making the outcome
// K-dependent).
func TestPortfolioDisabledUnderBudget(t *testing.T) {
	in, exps := portfolioFixture()
	in.Portfolio = &PortfolioOptions{K: 4}
	in.Telemetry = &QueryStats{}
	b := &sat.Budget{MaxConflicts: 1 << 40}
	m, err := in.FindMappingBudget(context.Background(), exps, b)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("expected a mapping")
	}
	if in.Telemetry.Portfolio != nil {
		t.Fatalf("budgeted query ran the portfolio: %+v", in.Telemetry.Portfolio)
	}
}

// TestImportLemmaRecordsDedup: importing overlapping lemma sets must
// add each distinct lemma once — K members learning the same lemma
// must not multiply stored clauses or serialized LemmaRecords.
func TestImportLemmaRecordsDedup(t *testing.T) {
	in := toyInstance()
	recA := LemmaRecord{
		Lits:  []LemmaLitRecord{{Uop: 0, Port: 0}, {Uop: 1, Port: 1, Neg: true}},
		Src:   portmodel.Exp("iA"),
		Slack: 0,
	}
	recB := LemmaRecord{
		Lits:  []LemmaLitRecord{{Uop: 1, Port: 0, Neg: true}},
		Src:   portmodel.Experiment{"iA": 1, "iB": 1},
		Slack: 0.5,
	}
	added, err := in.ImportLemmaRecords([]LemmaRecord{recA, recB, recA})
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || in.LemmaCount() != 2 {
		t.Fatalf("first import: added %d, stored %d; want 2, 2", added, in.LemmaCount())
	}
	// Re-importing the same records is a no-op.
	added, err = in.ImportLemmaRecords([]LemmaRecord{recA, recB})
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || in.LemmaCount() != 2 {
		t.Fatalf("re-import: added %d, stored %d; want 0, 2", added, in.LemmaCount())
	}
	// A mixed batch adds only the novel lemma.
	recC := LemmaRecord{
		Lits: []LemmaLitRecord{{Uop: 0, Port: 1}},
		Src:  portmodel.Exp("iB"),
	}
	added, err = in.ImportLemmaRecords([]LemmaRecord{recA, recC})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || in.LemmaCount() != 3 {
		t.Fatalf("mixed import: added %d, stored %d; want 1, 3", added, in.LemmaCount())
	}
	// Same clause with a different slack is a different lemma.
	recAslack := recA
	recAslack.Slack = 0.25
	added, err = in.ImportLemmaRecords([]LemmaRecord{recAslack})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || in.LemmaCount() != 4 {
		t.Fatalf("slack variant: added %d, stored %d; want 1, 4", added, in.LemmaCount())
	}
	// Invalid records leave the store unchanged.
	if _, err := in.ImportLemmaRecords([]LemmaRecord{{Src: portmodel.Exp("iA")}}); err == nil {
		t.Fatal("expected an error for an empty clause")
	}
	if in.LemmaCount() != 4 {
		t.Fatalf("failed import mutated the store: %d lemmas", in.LemmaCount())
	}
	// The round trip through LemmaRecords stays deduplicated.
	if got := len(in.LemmaRecords()); got != 4 {
		t.Fatalf("LemmaRecords has %d entries, want 4", got)
	}
}

// TestStatsCollectorConcurrent: K goroutines reporting member stats
// into one aggregate must total exactly the serial sum. Run with
// -race this also proves the collector's synchronization.
func TestStatsCollectorConcurrent(t *testing.T) {
	const workers = 8
	const reports = 200
	unit := QueryStats{
		Queries:          1,
		TheoryIterations: 3,
		LemmasLearned:    2,
	}
	unit.Solver.Conflicts = 7
	unit.Solver.Propagations = 11
	unit.Solver.Decisions = 5
	unit.Solver.Restarts = 1
	unit.Solver.Learned = 4
	unit.Portfolio = &PortfolioStats{Queries: 1, Rounds: 2, Wins: []uint64{1, 0, 1}, LemmasPublished: 3, LemmasImported: 6}

	var want QueryStats
	for i := 0; i < workers*reports; i++ {
		want.Add(unit)
	}

	var c StatsCollector
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reports; i++ {
				c.Report(unit)
			}
		}()
	}
	wg.Wait()
	got := c.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("aggregate diverged from serial sum:\n got %+v / %+v\nwant %+v / %+v",
			got, got.Portfolio, want, want.Portfolio)
	}
	// Snapshot must be a deep copy: mutating it cannot corrupt the
	// collector.
	got.Portfolio.Wins[0] = 999
	if c.Snapshot().Portfolio.Wins[0] == 999 {
		t.Fatal("Snapshot shares the Wins slice with the collector")
	}
}
