package smt

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"zenport/internal/portmodel"
	"zenport/internal/sat"
)

// pairInstance has two 1-port instructions on two ports: the setting
// where "shared port" and "distinct ports" are both a priori possible,
// so experiments can contradict each other without being individually
// absurd.
func pairInstance() *Instance {
	return &Instance{
		NumPorts: 2,
		Epsilon:  0.02,
		Uops: []UopSpec{
			{Key: "iA", NumPorts: 1},
			{Key: "iB", NumPorts: 1},
		},
	}
}

func TestUnsatCore(t *testing.T) {
	// The joint experiment {iA, iB} = 2.0 forces iA and iB onto the
	// same port; {2×iA, 2×iB} = 2.0 forces distinct ports.
	sharedPort := MeasuredExp{Exp: portmodel.Experiment{"iA": 1, "iB": 1}, TInv: 2.0}
	distinctPorts := MeasuredExp{Exp: portmodel.Experiment{"iA": 2, "iB": 2}, TInv: 2.0}

	cases := []struct {
		name string
		in   func() *Instance
		exps []MeasuredExp
		want []int // nil = expect feasible (no core)
	}{
		{
			name: "feasible set has no core",
			in:   pairInstance,
			exps: []MeasuredExp{
				{Exp: portmodel.Exp("iA"), TInv: 1.0},
				{Exp: portmodel.Exp("iB"), TInv: 1.0},
			},
			want: nil,
		},
		{
			name: "single self-contradictory experiment",
			in: func() *Instance {
				return &Instance{NumPorts: 2, Epsilon: 0.02, Uops: []UopSpec{{Key: "iA", NumPorts: 1}}}
			},
			// A 1-port µop can only give 2.0 for two copies; the
			// consistent singleton must not enter the core.
			exps: []MeasuredExp{
				{Exp: portmodel.Exp("iA"), TInv: 1.0},
				{Exp: portmodel.Experiment{"iA": 2}, TInv: 3.0},
			},
			want: []int{1},
		},
		{
			name: "jointly conflicting pair",
			in:   pairInstance,
			exps: []MeasuredExp{sharedPort, distinctPorts},
			want: []int{0, 1},
		},
		{
			name: "innocent bystanders excluded",
			in: func() *Instance {
				in := pairInstance()
				in.Uops = append(in.Uops, UopSpec{Key: "iC", NumPorts: 1})
				in.NumPorts = 3
				return in
			},
			exps: []MeasuredExp{
				{Exp: portmodel.Exp("iC"), TInv: 1.0},
				sharedPort,
				{Exp: portmodel.Exp("iA"), TInv: 1.0},
				distinctPorts,
			},
			want: []int{1, 3},
		},
		{
			name: "imul anomaly core is the mixed experiment alone",
			in: func() *Instance {
				return &Instance{
					NumPorts: 10, Rmax: 5, Epsilon: 0.02,
					Uops: []UopSpec{
						{Key: "add", NumPorts: 4},
						{Key: "imul", NumPorts: 1},
					},
				}
			},
			// The §4.3 anomaly: 4×add+imul measures 1.5, but the
			// model's optimal schedule gives 1.0 (imul's port outside
			// add's four) or 1.25 (inside) for any port assignment —
			// the mixture conflicts on its own, and minimization must
			// strip the two innocent singleton anchors.
			exps: []MeasuredExp{
				{Exp: portmodel.Exp("add"), TInv: 0.25},
				{Exp: portmodel.Exp("imul"), TInv: 1.0},
				{Exp: portmodel.Experiment{"add": 4, "imul": 1}, TInv: 1.5},
			},
			want: []int{2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.in()
			core, err := in.UnsatCore(context.Background(), tc.exps, nil)
			if err != nil {
				t.Fatalf("UnsatCore: %v", err)
			}
			if tc.want == nil {
				if core != nil {
					t.Fatalf("feasible set produced core %v", core.Indices)
				}
				return
			}
			if core == nil {
				t.Fatal("expected a core, got feasible")
			}
			if !core.Minimal {
				t.Fatalf("core %v not minimal under unlimited budget", core.Indices)
			}
			if !reflect.DeepEqual(core.Indices, tc.want) {
				t.Fatalf("core = %v, want %v", core.Indices, tc.want)
			}
			// A minimal core must be 1-minimal: verify independently.
			sub := make([]MeasuredExp, 0, len(core.Indices))
			for _, i := range core.Indices {
				sub = append(sub, tc.exps[i])
			}
			if _, err := tc.in().FindMapping(sub); err != ErrNoMapping {
				t.Fatalf("claimed core is not conflicting: %v", err)
			}
			for drop := range sub {
				rest := make([]MeasuredExp, 0, len(sub)-1)
				rest = append(rest, sub[:drop]...)
				rest = append(rest, sub[drop+1:]...)
				if _, err := tc.in().FindMapping(rest); err != nil {
					t.Fatalf("core minus element %d still conflicting: %v", drop, err)
				}
			}
		})
	}
}

func TestUnsatCoreStructural(t *testing.T) {
	// A µop demanding two ports on a one-port machine is infeasible
	// before any experiment enters: the encoding itself fails, and
	// UnsatCore must propagate that error instead of blaming the
	// experiment set.
	in := &Instance{NumPorts: 1, Epsilon: 0.02, Uops: []UopSpec{{Key: "iA", NumPorts: 2}}}
	exps := []MeasuredExp{{Exp: portmodel.Exp("iA"), TInv: 1.0}}
	core, err := in.UnsatCore(context.Background(), exps, nil)
	if err == nil {
		t.Fatalf("expected encode error, got core %+v", core)
	}
	if errors.Is(err, ErrNoMapping) {
		t.Fatalf("structural failure misreported as %v", err)
	}
}

func TestUnsatCoreDeterministic(t *testing.T) {
	exps := []MeasuredExp{
		{Exp: portmodel.Exp("iA"), TInv: 1.0},
		{Exp: portmodel.Experiment{"iA": 1, "iB": 1}, TInv: 2.0},
		{Exp: portmodel.Exp("iB"), TInv: 1.0},
		{Exp: portmodel.Experiment{"iA": 2, "iB": 2}, TInv: 2.0},
	}
	var first []int
	for run := 0; run < 3; run++ {
		core, err := pairInstance().UnsatCore(context.Background(), exps, nil)
		if err != nil {
			t.Fatal(err)
		}
		if core == nil {
			t.Fatal("expected a core")
		}
		if run == 0 {
			first = core.Indices
			continue
		}
		if !reflect.DeepEqual(core.Indices, first) {
			t.Fatalf("run %d core %v != first %v", run, core.Indices, first)
		}
	}
}

func TestUnsatCoreBudgetExhaustion(t *testing.T) {
	// With a one-propagation budget the first SAT search consumes it
	// and a later search is refused at entry; UnsatCore must surface
	// the budget error rather than fabricate a verdict.
	exps := []MeasuredExp{
		{Exp: portmodel.Experiment{"iA": 1, "iB": 1}, TInv: 2.0},
		{Exp: portmodel.Experiment{"iA": 2, "iB": 2}, TInv: 2.0},
	}
	b := &sat.Budget{MaxPropagations: 1}
	_, err := pairInstance().UnsatCore(context.Background(), exps, b)
	if !errors.Is(err, sat.ErrBudgetExhausted) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

func TestExpKeyCanonical(t *testing.T) {
	a := portmodel.Experiment{"iB": 2, "iA": 1}
	b := portmodel.Experiment{"iA": 1, "iB": 2}
	if ExpKey(a) != ExpKey(b) {
		t.Fatalf("keys differ: %q vs %q", ExpKey(a), ExpKey(b))
	}
	if ExpKey(a) == ExpKey(portmodel.Experiment{"iA": 2, "iB": 2}) {
		t.Fatal("distinct experiments share a key")
	}
}
