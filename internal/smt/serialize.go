package smt

import (
	"fmt"
	"math"

	"zenport/internal/portmodel"
)

// LemmaLitRecord is the wire form of one lemma literal.
type LemmaLitRecord struct {
	Uop  int  `json:"uop"`
	Port int  `json:"port"`
	Neg  bool `json:"neg,omitempty"`
}

// LemmaRecord is the wire form of one learned theory lemma: the
// clause literals plus the experiment the lemma was derived from (the
// lemma is sound only while that experiment stays in the measured
// set).
type LemmaRecord struct {
	Lits []LemmaLitRecord     `json:"lits"`
	Src  portmodel.Experiment `json:"src"`
	// Slack is the source experiment's tolerance slack at learning
	// time. A lemma restored into a run whose experiment carries less
	// slack stays sound (the tighter bound excludes at least as much);
	// more slack would invalidate it, which the supervision layer
	// prevents by dropping an experiment's lemmas on every relaxation.
	Slack float64 `json:"slack,omitempty"`
}

// LemmaRecords exports the instance's accumulated theory lemmas for
// checkpointing. The order is the learning order, which is itself
// deterministic.
func (in *Instance) LemmaRecords() []LemmaRecord {
	out := make([]LemmaRecord, len(in.lemmas))
	for i, lem := range in.lemmas {
		lits := make([]LemmaLitRecord, len(lem.lits))
		for j, l := range lem.lits {
			lits[j] = LemmaLitRecord{Uop: l.uop, Port: l.port, Neg: l.neg}
		}
		out[i] = LemmaRecord{Lits: lits, Src: lem.src.Clone(), Slack: lem.slack}
	}
	return out
}

// lemmaFromRecord validates one record against the instance shape and
// converts it. A record with a µop or port index out of range would
// corrupt the SAT encoding (or panic) on the next solve, so importing
// from an untrusted checkpoint must fail with an error instead.
func (in *Instance) lemmaFromRecord(i int, rec LemmaRecord) (lemma, error) {
	if len(rec.Lits) == 0 {
		return lemma{}, fmt.Errorf("smt: lemma %d: empty clause", i)
	}
	if math.IsNaN(rec.Slack) || math.IsInf(rec.Slack, 0) || rec.Slack < 0 {
		return lemma{}, fmt.Errorf("smt: lemma %d: invalid slack %v", i, rec.Slack)
	}
	lits := make([]lemmaLit, len(rec.Lits))
	for j, l := range rec.Lits {
		if l.Uop < 0 || l.Uop >= len(in.Uops) {
			return lemma{}, fmt.Errorf("smt: lemma %d: µop index %d out of range [0,%d)", i, l.Uop, len(in.Uops))
		}
		if l.Port < 0 || l.Port >= in.NumPorts {
			return lemma{}, fmt.Errorf("smt: lemma %d: port %d out of range [0,%d)", i, l.Port, in.NumPorts)
		}
		lits[j] = lemmaLit{uop: l.Uop, port: l.Port, neg: l.Neg}
	}
	return lemma{lits: lits, src: rec.Src.Clone(), slack: rec.Slack}, nil
}

// RestoreLemmas replaces the instance's lemmas with the checkpointed
// records, after validating every literal against the instance shape.
func (in *Instance) RestoreLemmas(recs []LemmaRecord) error {
	restored := make([]lemma, 0, len(recs))
	for i, rec := range recs {
		lem, err := in.lemmaFromRecord(i, rec)
		if err != nil {
			return err
		}
		restored = append(restored, lem)
	}
	in.lemmas = restored
	return nil
}

// ImportLemmaRecords validates the records and appends those not
// already present to the instance's lemma store, deduplicating by
// exact clause, source experiment, and slack. K portfolio members (or
// repeated checkpoint merges) learning the same lemma therefore never
// multiply stored clauses or serialized LemmaRecords. It returns the
// number of lemmas actually added; on error the store is unchanged.
func (in *Instance) ImportLemmaRecords(recs []LemmaRecord) (int, error) {
	incoming := make([]lemma, 0, len(recs))
	for i, rec := range recs {
		lem, err := in.lemmaFromRecord(i, rec)
		if err != nil {
			return 0, err
		}
		incoming = append(incoming, lem)
	}
	seen := make(map[string]bool, len(in.lemmas))
	for _, lem := range in.lemmas {
		seen[lemmaKey(lem)] = true
	}
	added := 0
	for _, lem := range incoming {
		k := lemmaKey(lem)
		if seen[k] {
			continue
		}
		seen[k] = true
		in.lemmas = append(in.lemmas, lem)
		added++
	}
	return added, nil
}
