package smt

import (
	"math"
	"testing"

	"zenport/internal/portmodel"
)

// toyInstance is the Figure 4 setting: two single-µop instructions
// iA, iB over two ports, each with a 1-port µop (tp⁻¹ = 1.0 each).
func toyInstance() *Instance {
	return &Instance{
		NumPorts: 2,
		Rmax:     0,
		Epsilon:  0.02,
		Uops: []UopSpec{
			{Key: "iA", NumPorts: 1},
			{Key: "iB", NumPorts: 1},
		},
	}
}

func toyExps() []MeasuredExp {
	return []MeasuredExp{
		{Exp: portmodel.Exp("iA"), TInv: 1.0},
		{Exp: portmodel.Exp("iB"), TInv: 1.0},
	}
}

func TestFindMappingToy(t *testing.T) {
	in := toyInstance()
	m, err := in.FindMapping(toyExps())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"iA", "iB"} {
		u, ok := m.Get(key)
		if !ok || u.TotalUops() != 1 || u[0].Ports.Size() != 1 {
			t.Fatalf("%s: usage %v", key, u)
		}
	}
	// The found mapping must reproduce the measurements.
	for _, me := range toyExps() {
		got, err := m.InverseThroughput(me.Exp)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-me.TInv) > 0.03 {
			t.Fatalf("found mapping gives %v for %v", got, me.Exp)
		}
	}
}

func TestFindOtherMappingToyFigure4(t *testing.T) {
	// With only singleton measurements, same-port and distinct-port
	// mappings are both consistent; findOtherMapping must produce a
	// distinguishing experiment — the paper gives [iA, iB] with
	// throughputs 1.0 vs 2.0.
	in := toyInstance()
	exps := toyExps()
	m1, err := in.FindMapping(exps)
	if err != nil {
		t.Fatal(err)
	}
	other, err := in.FindOtherMapping(exps, m1, 2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if other == nil {
		t.Fatal("expected a distinguishable second mapping")
	}
	if other.Exp.Len() != 2 || other.Exp["iA"] != 1 || other.Exp["iB"] != 1 {
		t.Fatalf("distinguishing experiment %v, want [iA, iB]", other.Exp)
	}
	lo, hi := other.T1, other.T2
	if lo > hi {
		lo, hi = hi, lo
	}
	if math.Abs(lo-1.0) > 1e-9 || math.Abs(hi-2.0) > 1e-9 {
		t.Fatalf("throughputs %v/%v, want 1.0/2.0", other.T1, other.T2)
	}
}

func TestCEGARToyConvergesToTruth(t *testing.T) {
	// Full Algorithm 2 against a ground truth where iA and iB share
	// port 0: the loop must converge to a mapping isomorphic to it.
	truth := portmodel.NewMapping(2)
	truth.Set("iA", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	truth.Set("iB", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})

	in := toyInstance()
	exps := toyExps()
	for iter := 0; iter < 20; iter++ {
		m1, err := in.FindMapping(exps)
		if err != nil {
			t.Fatal(err)
		}
		other, err := in.FindOtherMapping(exps, m1, 2, 4, 100)
		if err != nil {
			t.Fatal(err)
		}
		if other == nil {
			if !m1.Isomorphic(truth) {
				t.Fatalf("converged to wrong mapping:\n%v", m1)
			}
			return
		}
		// "Measure" the new experiment on the ground truth.
		tm, err := truth.InverseThroughput(other.Exp)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, MeasuredExp{Exp: other.Exp, TInv: tm})
	}
	t.Fatal("CEGAR did not converge")
}

func TestCEGARToyDistinctPorts(t *testing.T) {
	// Same, but the truth has iA and iB on different ports.
	truth := portmodel.NewMapping(2)
	truth.Set("iA", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	truth.Set("iB", portmodel.Usage{{Ports: portmodel.MakePortSet(1), Count: 1}})

	in := toyInstance()
	exps := toyExps()
	for iter := 0; iter < 20; iter++ {
		m1, err := in.FindMapping(exps)
		if err != nil {
			t.Fatal(err)
		}
		other, err := in.FindOtherMapping(exps, m1, 2, 4, 100)
		if err != nil {
			t.Fatal(err)
		}
		if other == nil {
			if !m1.Isomorphic(truth) {
				t.Fatalf("converged to wrong mapping:\n%v", m1)
			}
			return
		}
		tm, err := truth.InverseThroughput(other.Exp)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, MeasuredExp{Exp: other.Exp, TInv: tm})
	}
	t.Fatal("CEGAR did not converge")
}

func TestFindMappingUnsatOnContradiction(t *testing.T) {
	// A single 1-port instruction cannot have tp⁻¹ 1.0 alone but 3.0
	// in a pair of two copies... Model: [2×iA] must be 2.0; claim 3.0.
	in := &Instance{NumPorts: 2, Epsilon: 0.02, Uops: []UopSpec{{Key: "iA", NumPorts: 1}}}
	exps := []MeasuredExp{
		{Exp: portmodel.Exp("iA"), TInv: 1.0},
		{Exp: portmodel.Experiment{"iA": 2}, TInv: 3.0},
	}
	if _, err := in.FindMapping(exps); err != ErrNoMapping {
		t.Fatalf("expected ErrNoMapping, got %v", err)
	}
}

func TestFindMappingImulAnomalyUnsat(t *testing.T) {
	// The §4.3 imul case: add has 4 ports, imul 1; the measured
	// mixture 4×add+imul = 1.5 cycles fits no mapping (1.25 or 1.0
	// are the only model values).
	in := &Instance{
		NumPorts: 10, Rmax: 5, Epsilon: 0.02,
		Uops: []UopSpec{
			{Key: "add", NumPorts: 4},
			{Key: "imul", NumPorts: 1},
		},
	}
	exps := []MeasuredExp{
		{Exp: portmodel.Exp("add"), TInv: 0.25},
		{Exp: portmodel.Exp("imul"), TInv: 1.0},
		{Exp: portmodel.Experiment{"add": 4, "imul": 1}, TInv: 1.5},
	}
	if _, err := in.FindMapping(exps); err != ErrNoMapping {
		t.Fatalf("expected ErrNoMapping, got %v", err)
	}
}

func TestRmaxMakesMappingsIndistinguishable(t *testing.T) {
	// §4.3: with the 5-IPC bottleneck, whether a 4-port ALU class
	// shares a port with a 4-port FP class is not distinguishable.
	in := &Instance{
		NumPorts: 8, Rmax: 5, Epsilon: 0.02,
		Uops: []UopSpec{
			{Key: "add", NumPorts: 4},
			{Key: "vpor", NumPorts: 4},
		},
	}
	exps := []MeasuredExp{
		{Exp: portmodel.Exp("add"), TInv: 0.25},
		{Exp: portmodel.Exp("vpor"), TInv: 0.25},
		// Disjoint in truth: 4+4 on 8 ports, frontend-bound.
		{Exp: portmodel.Experiment{"add": 4, "vpor": 4}, TInv: 1.6},
	}
	m1, err := in.FindMapping(exps)
	if err != nil {
		t.Fatal(err)
	}
	// Without Rmax, overlapping and disjoint variants would be
	// distinguishable by flooding; with Rmax = 5 any distinguishing
	// experiment's model difference is masked below the bottleneck
	// for small sizes. We only require that the search terminates
	// and that, if a distinguishing experiment is claimed, it indeed
	// differs by more than 2ε|e| under the bounded model.
	other, err := in.FindOtherMapping(exps, m1, 2, 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if other != nil {
		d := math.Abs(other.T1 - other.T2)
		if d <= 2*in.Epsilon*float64(other.Exp.Len()) {
			t.Fatalf("claimed distinguishing experiment %v differs by only %v", other.Exp, d)
		}
	}
}

func TestTiedUopConstraint(t *testing.T) {
	// An improper blocker (like the storing mov, §4.3) has two µops:
	// one free, one tied to a proper blocker's port set.
	in := &Instance{
		NumPorts: 4, Rmax: 0, Epsilon: 0.02,
		Uops: []UopSpec{
			{Key: "alu", NumPorts: 2},
			{Key: "load", NumPorts: 1},
			{Key: "store", NumPorts: 1},
			{Key: "store", TiedToBlocker: true},
		},
	}
	exps := []MeasuredExp{
		{Exp: portmodel.Exp("alu"), TInv: 0.5},
		{Exp: portmodel.Exp("load"), TInv: 1.0},
		{Exp: portmodel.Exp("store"), TInv: 1.0},
	}
	m, err := in.FindMapping(exps)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := m.Get("store")
	if st.TotalUops() != 2 {
		t.Fatalf("store usage %v, want 2 µops", st)
	}
	// One of the store µops must equal the alu or load µop's ports.
	aluU, _ := m.Get("alu")
	loadU, _ := m.Get("load")
	tiedOK := false
	for _, x := range st {
		if x.Ports == aluU[0].Ports || x.Ports == loadU[0].Ports {
			tiedOK = true
		}
	}
	if !tiedOK {
		t.Fatalf("no store µop tied to a proper blocker: store=%v alu=%v load=%v", st, aluU, loadU)
	}
}

func TestInstanceHelpers(t *testing.T) {
	in := toyInstance()
	if got := in.SortedKeys(); len(got) != 2 || got[0] != "iA" || got[1] != "iB" {
		t.Fatalf("SortedKeys = %v", got)
	}
	cl := in.Clone()
	if len(cl.Uops) != 2 || cl.LemmaCount() != 0 {
		t.Fatal("Clone broken")
	}
	w := in.Without(map[string]bool{"iA": true})
	if len(w.Uops) != 1 || w.Uops[0].Key != "iB" {
		t.Fatalf("Without = %+v", w.Uops)
	}
	exps := []MeasuredExp{
		{Exp: portmodel.Exp("iA"), TInv: 1},
		{Exp: portmodel.Exp("iB"), TInv: 1},
		{Exp: portmodel.Experiment{"iA": 1, "iB": 1}, TInv: 1},
	}
	f := FilterExps(exps, map[string]bool{"iA": true})
	if len(f) != 1 || f[0].Exp["iB"] != 1 {
		t.Fatalf("FilterExps = %v", f)
	}
	in.lemmas = append(in.lemmas, lemma{lits: []lemmaLit{{0, 0, false}}, src: portmodel.Exp("iA")})
	if in.LemmaCount() != 1 {
		t.Fatal("LemmaCount broken")
	}
	in.Reset()
	if in.LemmaCount() != 0 {
		t.Fatal("Reset broken")
	}
}

func TestFindMappingWithFrontendBoundMeasurements(t *testing.T) {
	// Measurements at the frontend bound must be explainable: 10
	// no-dependence 4-port instructions at Rmax=5 measure 2.0 even
	// though the port model alone would say 2.5.
	in := &Instance{
		NumPorts: 8, Rmax: 5, Epsilon: 0.02,
		Uops: []UopSpec{{Key: "a", NumPorts: 4}, {Key: "b", NumPorts: 4}},
	}
	exps := []MeasuredExp{
		{Exp: portmodel.Exp("a"), TInv: 0.25},
		{Exp: portmodel.Exp("b"), TInv: 0.25},
		{Exp: portmodel.Experiment{"a": 4, "b": 4}, TInv: 1.6}, // frontend
	}
	m, err := in.FindMapping(exps)
	if err != nil {
		t.Fatal(err)
	}
	// The two classes must be disjoint: overlapping 4-port sets
	// would give port time 8/|union| > 1.6 when union < 5... any
	// overlap (union ≤ 7) gives mass 8 spread over union ports; with
	// union=7 tp = 8/7 ≈ 1.14 < 1.6, so overlap is fine too — the
	// Rmax bound masks it. Just verify consistency.
	tm, err := m.InverseThroughputBounded(portmodel.Experiment{"a": 4, "b": 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tm-1.6) > 0.02*8 {
		t.Fatalf("model value %v inconsistent with 1.6", tm)
	}
}

func TestDistinguishUnmemoizedAgreesWithPre(t *testing.T) {
	in := toyInstance()
	m1 := portmodel.NewMapping(2)
	m1.Set("iA", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	m1.Set("iB", portmodel.Usage{{Ports: portmodel.MakePortSet(1), Count: 1}})
	m2 := portmodel.NewMapping(2)
	m2.Set("iA", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	m2.Set("iB", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})

	e1, a1, b1, err := in.distinguish(m1, m2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := in.candidateExps(m1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	e2, a2, b2, err := in.distinguishPre(m1, m2, cands)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == nil || e2 == nil {
		t.Fatal("both searches must find the distinguishing experiment")
	}
	if e1.String() != e2.String() || a1 != a2 || b1 != b2 {
		t.Fatalf("variants disagree: %v (%v,%v) vs %v (%v,%v)", e1, a1, b1, e2, a2, b2)
	}
	// Indistinguishable case: identical mappings.
	e3, _, _, err := in.distinguish(m1, m1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e3 != nil {
		t.Fatalf("identical mappings distinguished by %v", e3)
	}
}
