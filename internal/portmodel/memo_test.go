package portmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// memoTestMapping builds a small mapping with enough schemes to
// generate thousands of distinct experiments.
func memoTestMapping(t *testing.T, schemes int) *Mapping {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := NewMapping(6)
	for i := 0; i < schemes; i++ {
		u := Usage{}
		for j := 0; j <= rng.Intn(3); j++ {
			var ps PortSet
			for ps == 0 {
				ps = PortSet(rng.Intn(1 << 6))
			}
			u = append(u, Uop{Ports: ps, Count: 1 + rng.Intn(3)})
		}
		m.Set(fmt.Sprintf("scheme-%02d", i), u)
	}
	return m
}

// TestCompiledMemoBounded feeds a Compiled far more distinct
// experiments than its memo cap and asserts (1) the memo never exceeds
// the cap — the daemon's defense against unbounded growth under a
// diverse query stream — and (2) every result, before and after
// evictions and including re-queries of evicted keys, stays
// bit-identical to the reference evaluator.
func TestCompiledMemoBounded(t *testing.T) {
	m := memoTestMapping(t, 24)
	c, err := CompileMapping(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 64
	c.SetMemoLimit(limit)

	rng := rand.New(rand.NewSource(11))
	keys := m.Keys()
	exps := make([]Experiment, 4*limit)
	for i := range exps {
		e := Experiment{}
		for j := 0; j <= rng.Intn(4); j++ {
			e[keys[rng.Intn(len(keys))]] += 1 + rng.Intn(5)
		}
		// Make every experiment distinct regardless of the random
		// draws above.
		e[keys[i%len(keys)]] += i + 1
		exps[i] = e
	}

	check := func(e Experiment) {
		got, err := c.InverseThroughput(e)
		if err != nil {
			t.Fatalf("compiled: %v", err)
		}
		want, err := m.InverseThroughput(e)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("experiment %v: compiled %v != reference %v", e, got, want)
		}
		gq, gi, err := c.BottleneckWitness(e)
		if err != nil {
			t.Fatal(err)
		}
		wq, wi, err := m.BottleneckWitness(e)
		if err != nil {
			t.Fatal(err)
		}
		if gq != wq || math.Float64bits(gi) != math.Float64bits(wi) {
			t.Fatalf("experiment %v: witness (%v,%v) != reference (%v,%v)", e, gq, gi, wq, wi)
		}
	}

	for i, e := range exps {
		check(e)
		if n := c.MemoSize(); n > limit {
			t.Fatalf("after %d distinct experiments: memo holds %d entries, cap %d", i+1, n, limit)
		}
	}
	if n := c.MemoSize(); n > limit || n == 0 {
		t.Fatalf("final memo size %d, want within (0,%d]", n, limit)
	}
	// Re-query everything: evicted keys must recompute identically.
	for _, e := range exps {
		check(e)
	}
}

// TestCompiledMemoDefaultLimit asserts the zero-value configuration is
// bounded (the pre-fix behavior — unbounded growth — was the bug).
func TestCompiledMemoDefaultLimit(t *testing.T) {
	m := memoTestMapping(t, 12)
	c, err := CompileMapping(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := m.Keys()
	for i := 0; i < DefaultMemoLimit+100; i++ {
		e := Experiment{keys[i%len(keys)]: i + 1, keys[(i+1)%len(keys)]: 1}
		if _, err := c.InverseThroughput(e); err != nil {
			t.Fatal(err)
		}
		if n := c.MemoSize(); n > DefaultMemoLimit {
			t.Fatalf("memo grew to %d entries, default cap %d", n, DefaultMemoLimit)
		}
	}
}

// TestCompiledMemoUnlimited keeps the explicit opt-out working: a
// negative limit never evicts.
func TestCompiledMemoUnlimited(t *testing.T) {
	m := memoTestMapping(t, 12)
	c, err := CompileMapping(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMemoLimit(-1)
	keys := m.Keys()
	const n = 500
	for i := 0; i < n; i++ {
		e := Experiment{keys[i%len(keys)]: i + 1}
		if _, err := c.InverseThroughput(e); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.MemoSize(); got != n {
		t.Fatalf("unlimited memo holds %d entries after %d distinct experiments", got, n)
	}
}
