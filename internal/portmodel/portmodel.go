// Package portmodel implements the formal port mapping model of
// Ritter & Hack (ASPLOS 2024) and Abel & Reineke (ASPLOS 2019):
// tripartite graphs between instruction schemes, µops, and execution
// ports, together with the steady-state inverse-throughput semantics
// given by the linear program of Section 2.2 of the paper.
//
// Throughput is computed exactly with the bottleneck-set
// characterization (Ritter & Hack, PLDI 2020, Section 4.5): the
// inverse throughput of an experiment equals
//
//	max over non-empty port sets Q of  mass(Q) / |Q|
//
// where mass(Q) is the total number of µops whose admissible ports are
// contained in Q. Package lp provides an independent simplex-based
// solution of the original LP; the two are property-tested against
// each other.
package portmodel

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// MaxPorts is the largest number of execution ports a Mapping may use.
// The exact throughput evaluator enumerates subsets of ports, so this
// is capped to keep evaluation cheap (2^16 subsets worst case).
const MaxPorts = 16

// PortSet is a bitmask of execution ports. Bit k set means port k is
// admissible.
type PortSet uint16

// MakePortSet builds a PortSet from explicit port indices.
func MakePortSet(ports ...int) PortSet {
	var s PortSet
	for _, p := range ports {
		if p < 0 || p >= MaxPorts {
			panic(fmt.Sprintf("portmodel: port index %d out of range", p))
		}
		s |= 1 << uint(p)
	}
	return s
}

// Size returns the number of ports in the set.
func (s PortSet) Size() int { return bits.OnesCount16(uint16(s)) }

// Has reports whether port k is in the set.
func (s PortSet) Has(k int) bool { return s&(1<<uint(k)) != 0 }

// SubsetOf reports whether every port of s is also in t.
func (s PortSet) SubsetOf(t PortSet) bool { return s&^t == 0 }

// Ports returns the sorted list of port indices in the set. An
// optional reuse buffer avoids the allocation on hot paths: the
// result is appended to reuse[0][:0] when given.
func (s PortSet) Ports(reuse ...[]int) []int {
	var out []int
	if len(reuse) > 0 {
		out = reuse[0][:0]
	} else {
		out = make([]int, 0, s.Size())
	}
	for k := 0; k < MaxPorts; k++ {
		if s.Has(k) {
			out = append(out, k)
		}
	}
	return out
}

// String renders the set in the paper's notation, e.g. "[6,7,8,9]".
func (s PortSet) String() string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for _, p := range s.Ports() {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p)
		first = false
	}
	b.WriteByte(']')
	return b.String()
}

// Uop is one micro-operation kind of an instruction's decomposition: a
// set of admissible ports and a multiplicity.
type Uop struct {
	Ports PortSet `json:"ports"`
	Count int     `json:"count"`
}

// Usage is the port usage of one instruction scheme: a multiset of
// µops, e.g. {2×[0,1], 1×[2]}. The zero value means "no µops"
// (e.g. an eliminated mov or a nop).
type Usage []Uop

// Normalize sorts the µops (by port set, then count) and merges
// duplicates. It returns the receiver for chaining.
func (u Usage) Normalize() Usage {
	sort.Slice(u, func(i, j int) bool {
		if u[i].Ports != u[j].Ports {
			return u[i].Ports < u[j].Ports
		}
		return u[i].Count < u[j].Count
	})
	out := u[:0]
	for _, x := range u {
		if x.Count == 0 {
			continue
		}
		if len(out) > 0 && out[len(out)-1].Ports == x.Ports {
			out[len(out)-1].Count += x.Count
		} else {
			out = append(out, x)
		}
	}
	return out
}

// Clone returns a deep copy.
func (u Usage) Clone() Usage {
	out := make(Usage, len(u))
	copy(out, u)
	return out
}

// TotalUops returns the total number of µops (counting multiplicity).
func (u Usage) TotalUops() int {
	n := 0
	for _, x := range u {
		n += x.Count
	}
	return n
}

// Equal reports whether two usages denote the same multiset of µops.
func (u Usage) Equal(v Usage) bool {
	a, b := u.Clone().Normalize(), v.Clone().Normalize()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// String renders the usage in the paper's notation,
// e.g. "2×[0,1] + 1×[2]".
func (u Usage) String() string {
	if len(u) == 0 {
		return "(no µops)"
	}
	parts := make([]string, 0, len(u))
	for _, x := range u.Clone().Normalize() {
		if x.Count == 1 {
			parts = append(parts, x.Ports.String())
		} else {
			parts = append(parts, fmt.Sprintf("%d×%s", x.Count, x.Ports.String()))
		}
	}
	return strings.Join(parts, " + ")
}

// Experiment is a dependency-free instruction sequence, represented as
// a multiset: instruction key -> number of occurrences. Order is
// irrelevant in the port mapping model.
type Experiment map[string]int

// Len returns the total number of instructions in the experiment.
func (e Experiment) Len() int {
	n := 0
	for _, c := range e {
		n += c
	}
	return n
}

// Clone returns a copy of the experiment.
func (e Experiment) Clone() Experiment {
	out := make(Experiment, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Keys returns the instruction keys in sorted order.
func (e Experiment) Keys() []string {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the experiment like "[2×add, fma]".
func (e Experiment) String() string {
	parts := make([]string, 0, len(e))
	for _, k := range e.Keys() {
		if e[k] == 1 {
			parts = append(parts, k)
		} else {
			parts = append(parts, fmt.Sprintf("%d×%s", e[k], k))
		}
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Exp is a convenience constructor: Exp("add", "add", "fma") or with
// counts via ExpCounts.
func Exp(keys ...string) Experiment {
	e := make(Experiment)
	for _, k := range keys {
		e[k]++
	}
	return e
}

// Mapping is a port mapping restricted to the instructions it knows
// about: instruction key -> µop usage.
type Mapping struct {
	NumPorts int              `json:"num_ports"`
	Usage    map[string]Usage `json:"usage"`
}

// NewMapping creates an empty mapping over numPorts ports.
func NewMapping(numPorts int) *Mapping {
	if numPorts <= 0 || numPorts > MaxPorts {
		panic(fmt.Sprintf("portmodel: invalid port count %d", numPorts))
	}
	return &Mapping{NumPorts: numPorts, Usage: make(map[string]Usage)}
}

// Set assigns the usage of an instruction key.
func (m *Mapping) Set(key string, u Usage) { m.Usage[key] = u.Clone().Normalize() }

// Get returns the usage of an instruction key.
func (m *Mapping) Get(key string) (Usage, bool) {
	u, ok := m.Usage[key]
	return u, ok
}

// Keys returns the instruction keys in sorted order.
func (m *Mapping) Keys() []string {
	keys := make([]string, 0, len(m.Usage))
	for k := range m.Usage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a deep copy of the mapping.
func (m *Mapping) Clone() *Mapping {
	out := NewMapping(m.NumPorts)
	for k, u := range m.Usage {
		out.Usage[k] = u.Clone()
	}
	return out
}

// AllPorts returns the set of all ports of the mapping.
func (m *Mapping) AllPorts() PortSet {
	return PortSet(1<<uint(m.NumPorts)) - 1
}

// Validate checks structural sanity: non-negative counts, port sets
// within range, and non-empty port sets for µops with positive count.
func (m *Mapping) Validate() error {
	if m.NumPorts <= 0 || m.NumPorts > MaxPorts {
		return fmt.Errorf("portmodel: invalid port count %d", m.NumPorts)
	}
	all := m.AllPorts()
	for k, u := range m.Usage {
		for _, x := range u {
			if x.Count < 0 {
				return fmt.Errorf("portmodel: %s has negative µop count", k)
			}
			if x.Count > 0 && x.Ports == 0 {
				return fmt.Errorf("portmodel: %s has µop with empty port set", k)
			}
			if !x.Ports.SubsetOf(all) {
				return fmt.Errorf("portmodel: %s uses port outside [0,%d)", k, m.NumPorts)
			}
		}
	}
	return nil
}

// uopMass flattens an experiment under a mapping into per-port-set
// masses: for each distinct port set, the total number of µops
// confined to it. Unknown instructions yield an error.
func (m *Mapping) uopMass(e Experiment) (map[PortSet]float64, error) {
	mass := make(map[PortSet]float64)
	for key, n := range e {
		if n == 0 {
			continue
		}
		if n < 0 {
			return nil, fmt.Errorf("portmodel: negative count for %q", key)
		}
		u, ok := m.Usage[key]
		if !ok {
			return nil, fmt.Errorf("portmodel: no usage known for %q", key)
		}
		for _, x := range u {
			mass[x.Ports] += float64(n * x.Count)
		}
	}
	return mass, nil
}

// InverseThroughput computes the steady-state inverse throughput
// tp^-1(e) of the experiment under the mapping: the optimal objective
// of the LP from Section 2.2, via the exact bottleneck-set formula.
// The result is in cycles per experiment iteration.
func (m *Mapping) InverseThroughput(e Experiment) (float64, error) {
	mass, err := m.uopMass(e)
	if err != nil {
		return 0, err
	}
	_, v := bottleneck(mass)
	return v, nil
}

// bottleneck evaluates max over non-empty Q of mass(Q)/|Q| and
// returns a maximizing set together with the value. It is the single
// shared core of InverseThroughput, InverseThroughputBounded, and
// BottleneckWitness. To stay subexponential in common cases it
// enumerates only subsets of the union of occurring port sets; ports
// outside that union can never be a bottleneck. Ties are broken
// toward the subset with the smallest enumeration index, i.e. the
// numerically smallest PortSet — package Compiled replicates this
// tie-break exactly so both evaluators return identical witnesses.
func bottleneck(mass map[PortSet]float64) (PortSet, float64) {
	var union PortSet
	for ps, m := range mass {
		if m > 0 {
			union |= ps
		}
	}
	if union == 0 {
		return 0, 0
	}
	var portsBuf [MaxPorts]int
	usedPorts := union.Ports(portsBuf[:])
	n := len(usedPorts)
	bestQ, best := PortSet(0), -1.0
	// Enumerate subsets of the used ports via index masks.
	for idx := 1; idx < 1<<uint(n); idx++ {
		var q PortSet
		for b := 0; b < n; b++ {
			if idx&(1<<uint(b)) != 0 {
				q |= 1 << uint(usedPorts[b])
			}
		}
		total := 0.0
		for ps, v := range mass {
			if ps.SubsetOf(q) {
				total += v
			}
		}
		if v := total / float64(q.Size()); v > best {
			best, bestQ = v, q
		}
	}
	return bestQ, best
}

// Throughput returns the (non-inverse) throughput of the experiment:
// experiment iterations per cycle.
func (m *Mapping) Throughput(e Experiment) (float64, error) {
	inv, err := m.InverseThroughput(e)
	if err != nil {
		return 0, err
	}
	if inv == 0 {
		return math.Inf(1), nil
	}
	return 1 / inv, nil
}

// IPC returns the instructions-per-cycle of the experiment under the
// mapping, capped at rmax instructions per cycle if rmax > 0 (the
// pipeline bottleneck of Section 3.4).
func (m *Mapping) IPC(e Experiment, rmax float64) (float64, error) {
	inv, err := m.InverseThroughput(e)
	if err != nil {
		return 0, err
	}
	n := float64(e.Len())
	if n == 0 {
		return 0, nil
	}
	if rmax > 0 {
		if lim := n / rmax; inv < lim {
			inv = lim
		}
	}
	if inv == 0 {
		return math.Inf(1), nil
	}
	return n / inv, nil
}

// InverseThroughputBounded is InverseThroughput with the frontend
// bottleneck applied: max(tp^-1(e), |e|/rmax). rmax <= 0 disables the
// bottleneck.
func (m *Mapping) InverseThroughputBounded(e Experiment, rmax float64) (float64, error) {
	inv, err := m.InverseThroughput(e)
	if err != nil {
		return 0, err
	}
	if rmax > 0 {
		if lim := float64(e.Len()) / rmax; inv < lim {
			inv = lim
		}
	}
	return inv, nil
}

// BottleneckWitness returns a port set Q achieving the bottleneck
// maximum for the experiment, together with the value mass(Q)/|Q|.
// It is used to produce explanations and theory lemmas.
func (m *Mapping) BottleneckWitness(e Experiment) (PortSet, float64, error) {
	mass, err := m.uopMass(e)
	if err != nil {
		return 0, 0, err
	}
	q, v := bottleneck(mass)
	return q, v, nil
}

// PortPermutation applies a permutation of port indices to the
// mapping, returning a new mapping. perm must be a permutation of
// 0..NumPorts-1; port k is renamed to perm[k].
func (m *Mapping) PortPermutation(perm []int) (*Mapping, error) {
	if len(perm) != m.NumPorts {
		return nil, fmt.Errorf("portmodel: permutation length %d != %d ports", len(perm), m.NumPorts)
	}
	seen := make([]bool, m.NumPorts)
	for _, p := range perm {
		if p < 0 || p >= m.NumPorts || seen[p] {
			return nil, fmt.Errorf("portmodel: invalid permutation %v", perm)
		}
		seen[p] = true
	}
	out := NewMapping(m.NumPorts)
	for key, u := range m.Usage {
		nu := make(Usage, 0, len(u))
		for _, x := range u {
			var ps PortSet
			for k := 0; k < m.NumPorts; k++ {
				if x.Ports.Has(k) {
					ps |= 1 << uint(perm[k])
				}
			}
			nu = append(nu, Uop{Ports: ps, Count: x.Count})
		}
		out.Usage[key] = nu.Normalize()
	}
	return out, nil
}

// Isomorphic reports whether two mappings over the same instruction
// keys are equal up to a permutation of ports. Mappings that are
// isomorphic produce identical throughputs for every experiment and
// are therefore indistinguishable by measurements.
func (m *Mapping) Isomorphic(other *Mapping) bool {
	if m.NumPorts != other.NumPorts || len(m.Usage) != len(other.Usage) {
		return false
	}
	for k := range m.Usage {
		if _, ok := other.Usage[k]; !ok {
			return false
		}
	}
	// Prune with per-port column signatures: port k of m can only be
	// renamed to port j of other if the multiset of µops touching k in
	// m equals the multiset of µops touching j in other.
	sigM := portSignatures(m)
	sigO := portSignatures(other)
	allowed := make([][]bool, m.NumPorts)
	for k := 0; k < m.NumPorts; k++ {
		allowed[k] = make([]bool, m.NumPorts)
		for j := 0; j < m.NumPorts; j++ {
			allowed[k][j] = sigM[k] == sigO[j]
		}
	}
	perm := make([]int, m.NumPorts)
	used := make([]bool, m.NumPorts)
	return permuteMatch(m, other, perm, used, allowed, 0)
}

// portSignatures computes, for each port, a canonical string over the
// (key, count, set size) triples of µops admitting that port.
func portSignatures(m *Mapping) []string {
	sigs := make([]string, m.NumPorts)
	parts := make([][]string, m.NumPorts)
	for _, key := range m.Keys() {
		for _, x := range m.Usage[key] {
			for k := 0; k < m.NumPorts; k++ {
				if x.Ports.Has(k) {
					parts[k] = append(parts[k], fmt.Sprintf("%s/%d/%d", key, x.Count, x.Ports.Size()))
				}
			}
		}
	}
	for k := range parts {
		sort.Strings(parts[k])
		sigs[k] = strings.Join(parts[k], ";")
	}
	return sigs
}

func permuteMatch(m, other *Mapping, perm []int, used []bool, allowed [][]bool, k int) bool {
	if k == len(perm) {
		p, err := m.PortPermutation(perm)
		if err != nil {
			return false
		}
		for key, u := range p.Usage {
			if !u.Equal(other.Usage[key]) {
				return false
			}
		}
		return true
	}
	for j := 0; j < len(perm); j++ {
		if used[j] || !allowed[k][j] {
			continue
		}
		perm[k], used[j] = j, true
		if permuteMatch(m, other, perm, used, allowed, k+1) {
			return true
		}
		used[j] = false
	}
	return false
}

// String renders the mapping sorted by instruction key.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "port mapping over %d ports:\n", m.NumPorts)
	for _, k := range m.Keys() {
		fmt.Fprintf(&b, "  %-40s %s\n", k, m.Usage[k])
	}
	return b.String()
}
