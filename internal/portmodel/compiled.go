package portmodel

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compiled is a compiled throughput evaluator: a Mapping lowered onto
// a fixed scheme universe with every string key interned to a dense
// int32 index and every µop packed into a flat array of
// (PortSet, count) pairs. Queries run over dense weight vectors and
// allocate nothing in steady state, which makes the evaluator fit for
// the two hottest loops of the system — the DPLL(T) propagation of
// package smt (one throughput query per experiment per candidate
// model) and the bulk block evaluation of cmd/zeneval.
//
// The evaluation algorithm is the same exact bottleneck-set formula
// as the reference evaluator (Mapping.InverseThroughput): the inverse
// throughput is max over non-empty port sets Q of mass(Q)/|Q|. The
// compiled form computes all 2^|union| masses at once with a
// subset-sum (zeta) transform over the union of occurring ports,
// walking only submasks of that union via the (s-1)&union bit trick —
// O(2^n·n) for n used ports, with no per-subset re-summation. All
// masses are integers represented exactly in float64, so results are
// bit-identical to the reference evaluator, including the witness
// tie-break (numerically smallest PortSet among the maximizers).
//
// Experiment-keyed queries additionally memoize their result per
// weight-multiset key, so repeated queries cost one buffer encode and
// one map probe. A Compiled is not safe for concurrent use; compile
// one per goroutine (compilation is cheap) or guard it externally.
type Compiled struct {
	numPorts int
	keys     []string         // scheme index -> key
	index    map[string]int32 // key -> scheme index
	start    []int32          // scheme index -> first µop in uops; len = len(keys)+1
	uops     []cuop           // packed µops, grouped by scheme

	// sos is the subset-sum scratch: one float64 per subset of the
	// mapping's ports (8 KiB for the 10-port Zen machine).
	sos []float64
	// touched tracks which scheme weights the current experiment set,
	// so the scratch weight vector can be cleared without a full scan.
	w       []int32
	touched []int32
	keyBuf  []byte
	memo    map[string]memoVal
	// memoLimit caps len(memo); 0 means DefaultMemoLimit, negative
	// means unlimited. See SetMemoLimit.
	memoLimit int
}

// cuop is one packed µop: admissible ports and multiplicity.
type cuop struct {
	ports PortSet
	count uint8
}

// memoVal caches one experiment's evaluation.
type memoVal struct {
	q     PortSet
	inv   float64
	total int32 // instruction count of the experiment
}

// maxCompiledCount bounds a packed µop multiplicity.
const maxCompiledCount = 255

// DefaultMemoLimit is the default cap on the number of memoized
// experiment evaluations a Compiled holds. The memo was originally
// unbounded — harmless in a batch run whose experiment universe is
// fixed, but a memory leak in a long-running server fed a diverse
// query stream. The limit trades recall for boundedness; eviction is
// clear-on-full (see evalExperiment), which keeps every result
// bit-identical — the memo only ever caches exact values.
const DefaultMemoLimit = 4096

// CompileMapping compiles a mapping over the given scheme universe.
// A nil universe compiles every key of the mapping. Every universe
// key must have a usage in the mapping.
func CompileMapping(m *Mapping, universe []string) (*Compiled, error) {
	if universe == nil {
		universe = m.Keys()
	}
	usages := make([]Usage, len(universe))
	for i, key := range universe {
		u, ok := m.Usage[key]
		if !ok {
			return nil, fmt.Errorf("portmodel: no usage known for %q", key)
		}
		usages[i] = u
	}
	return CompileUsages(m.NumPorts, universe, usages)
}

// CompileUsages compiles an evaluator directly from parallel key and
// usage slices. µop order within each usage is preserved (not
// normalized), so callers that need a stable per-µop layout — the SMT
// propagator updates individual µop port sets in place — control it.
func CompileUsages(numPorts int, keys []string, usages []Usage) (*Compiled, error) {
	if numPorts <= 0 || numPorts > MaxPorts {
		return nil, fmt.Errorf("portmodel: invalid port count %d", numPorts)
	}
	if len(keys) != len(usages) {
		return nil, fmt.Errorf("portmodel: %d keys but %d usages", len(keys), len(usages))
	}
	all := PortSet(1<<uint(numPorts)) - 1
	c := &Compiled{
		numPorts: numPorts,
		keys:     append([]string(nil), keys...),
		index:    make(map[string]int32, len(keys)),
		start:    make([]int32, len(keys)+1),
		sos:      make([]float64, 1<<uint(numPorts)),
		w:        make([]int32, len(keys)),
		touched:  make([]int32, 0, 8),
		memo:     make(map[string]memoVal),
	}
	for i, key := range keys {
		if _, dup := c.index[key]; dup {
			return nil, fmt.Errorf("portmodel: duplicate scheme %q in universe", key)
		}
		c.index[key] = int32(i)
		c.start[i] = int32(len(c.uops))
		for _, x := range usages[i] {
			if x.Count < 0 || x.Count > maxCompiledCount {
				return nil, fmt.Errorf("portmodel: %s has µop count %d outside [0,%d]", key, x.Count, maxCompiledCount)
			}
			if !x.Ports.SubsetOf(all) {
				return nil, fmt.Errorf("portmodel: %s uses port outside [0,%d)", key, numPorts)
			}
			c.uops = append(c.uops, cuop{ports: x.Ports, count: uint8(x.Count)})
		}
	}
	c.start[len(keys)] = int32(len(c.uops))
	return c, nil
}

// NumPorts returns the number of execution ports.
func (c *Compiled) NumPorts() int { return c.numPorts }

// NumSchemes returns the size of the compiled scheme universe.
func (c *Compiled) NumSchemes() int { return len(c.keys) }

// Keys returns the interned scheme keys; index i holds the key of
// scheme index i. The slice is shared — do not mutate.
func (c *Compiled) Keys() []string { return c.keys }

// Index returns the dense index of a scheme key.
func (c *Compiled) Index(key string) (int32, bool) {
	i, ok := c.index[key]
	return i, ok
}

// SetMemoLimit caps the experiment memo at n entries (0 restores
// DefaultMemoLimit, negative disables the cap). When the memo is full
// a new distinct experiment clears it entirely — O(1) amortized, no
// bookkeeping on the hit path, and results stay bit-identical because
// the memo holds nothing but exact evaluations. Long-running servers
// keep the default; batch runs over a fixed experiment universe may
// disable the cap.
func (c *Compiled) SetMemoLimit(n int) { c.memoLimit = n }

// MemoSize returns the number of memoized experiment evaluations,
// for tests and serving statistics.
func (c *Compiled) MemoSize() int { return len(c.memo) }

// memoCap resolves the effective memo capacity (<0 = unlimited).
func (c *Compiled) memoCap() int {
	if c.memoLimit == 0 {
		return DefaultMemoLimit
	}
	return c.memoLimit
}

// SetUop replaces the port set of the j-th µop of the given scheme
// (in CompileUsages order) and invalidates the memo. It is the SMT
// propagator's in-place retargeting hook: the µop structure of a
// solver instance is fixed, only the candidate port sets change.
func (c *Compiled) SetUop(scheme int32, j int, ports PortSet) {
	c.uops[int(c.start[scheme])+j].ports = ports
	if len(c.memo) > 0 {
		clear(c.memo)
	}
}

// WeightVector interns an experiment into a dense weight vector over
// the compiled universe, reusing dst when it has the right length.
// It returns the vector, the total instruction count, and an error
// for unknown keys or negative counts (matching the reference
// evaluator's messages).
func (c *Compiled) WeightVector(e Experiment, dst []int32) ([]int32, int, error) {
	if len(dst) != len(c.keys) {
		dst = make([]int32, len(c.keys))
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	total := 0
	for key, n := range e {
		if n == 0 {
			continue
		}
		if n < 0 {
			return dst, 0, fmt.Errorf("portmodel: negative count for %q", key)
		}
		i, ok := c.index[key]
		if !ok {
			return dst, 0, fmt.Errorf("portmodel: no usage known for %q", key)
		}
		dst[i] = int32(n)
		total += n
	}
	return dst, total, nil
}

// evalVec is the allocation-free core: the bottleneck witness and
// value of a dense weight vector. Weights must be non-negative.
func (c *Compiled) evalVec(w []int32) (PortSet, float64) {
	// Pass 1: the union of ports occurring with positive mass. Ports
	// outside it can never be a bottleneck.
	var union PortSet
	for i, wi := range w {
		if wi == 0 {
			continue
		}
		for _, u := range c.uops[c.start[i]:c.start[i+1]] {
			if u.count != 0 {
				union |= u.ports
			}
		}
	}
	if union == 0 {
		return 0, 0
	}
	// Pass 2: per-port-set masses into the subset-sum scratch. Only
	// submasks of the union are touched, so only those are cleared.
	sos := c.sos
	for s := union; ; s = (s - 1) & union {
		sos[s] = 0
		if s == 0 {
			break
		}
	}
	for i, wi := range w {
		if wi == 0 {
			continue
		}
		for _, u := range c.uops[c.start[i]:c.start[i+1]] {
			sos[u.ports] += float64(int(wi) * int(u.count))
		}
	}
	// Zeta transform over the union's ports: afterwards sos[q] is
	// mass(q), the total mass of µops confined to q.
	for b := 0; b < c.numPorts; b++ {
		bit := PortSet(1) << uint(b)
		if union&bit == 0 {
			continue
		}
		for s := union; ; s = (s - 1) & union {
			if s&bit != 0 {
				sos[s] += sos[s&^bit]
			}
			if s == 0 {
				break
			}
		}
	}
	// Maximize mass(q)/|q|. The reference evaluator enumerates
	// subsets in ascending compressed-index order and keeps the first
	// maximum; compression is order-preserving, so that winner is the
	// numerically smallest maximizing PortSet — enforce the same
	// tie-break here explicitly (all masses are exact integers, so
	// float equality is meaningful).
	bestQ, best := PortSet(0), -1.0
	for s := union; ; s = (s - 1) & union {
		if s != 0 {
			if v := sos[s] / float64(s.Size()); v > best || (v == best && s < bestQ) {
				best, bestQ = v, s
			}
		}
		if s == 0 {
			break
		}
	}
	return bestQ, best
}

// InverseThroughputWeights computes tp^-1 of a dense weight vector
// with zero allocations and no memoization (fresh candidate mappings
// never repeat, so the SMT hot path skips the memo entirely).
func (c *Compiled) InverseThroughputWeights(w []int32) float64 {
	_, v := c.evalVec(w)
	return v
}

// InverseThroughputBoundedWeights applies the frontend bottleneck:
// max(tp^-1, total/rmax), with total the instruction count of the
// experiment (the sum of w). rmax <= 0 disables the bound.
func (c *Compiled) InverseThroughputBoundedWeights(w []int32, total int, rmax float64) float64 {
	_, v := c.evalVec(w)
	if rmax > 0 {
		if lim := float64(total) / rmax; v < lim {
			v = lim
		}
	}
	return v
}

// BottleneckWitnessWeights returns the bottleneck witness and value
// of a dense weight vector with zero allocations.
func (c *Compiled) BottleneckWitnessWeights(w []int32) (PortSet, float64) {
	return c.evalVec(w)
}

// evalExperiment interns, memoizes, and evaluates one experiment.
// Steady state (memo hit) performs no allocation: the weight scratch,
// touched list, and key buffer are reused, and the map probe uses the
// compiler's zero-copy string(keyBuf) lookup.
func (c *Compiled) evalExperiment(e Experiment) (memoVal, error) {
	c.touched = c.touched[:0]
	total := 0
	bad := ""
	negative := false
	for key, n := range e {
		if n == 0 {
			continue
		}
		if n < 0 {
			negative, bad = true, key
			break
		}
		i, ok := c.index[key]
		if !ok {
			bad = key
			break
		}
		c.w[i] = int32(n)
		c.touched = append(c.touched, i)
		total += n
	}
	if bad != "" {
		for _, i := range c.touched {
			c.w[i] = 0
		}
		if negative {
			return memoVal{}, fmt.Errorf("portmodel: negative count for %q", bad)
		}
		return memoVal{}, fmt.Errorf("portmodel: no usage known for %q", bad)
	}
	// Canonical memo key: (index, weight) pairs in ascending index
	// order. The touched list is in map-iteration order, so the key is
	// built from an ascending scan of the weight vector instead.
	c.keyBuf = c.keyBuf[:0]
	var enc [binary.MaxVarintLen32]byte
	for i, wi := range c.w {
		if wi == 0 {
			continue
		}
		c.keyBuf = append(c.keyBuf, enc[:binary.PutUvarint(enc[:], uint64(i))]...)
		c.keyBuf = append(c.keyBuf, enc[:binary.PutUvarint(enc[:], uint64(wi))]...)
	}
	if v, ok := c.memo[string(c.keyBuf)]; ok {
		for _, i := range c.touched {
			c.w[i] = 0
		}
		return v, nil
	}
	q, inv := c.evalVec(c.w)
	v := memoVal{q: q, inv: inv, total: int32(total)}
	if limit := c.memoCap(); limit > 0 && len(c.memo) >= limit {
		clear(c.memo)
	}
	c.memo[string(c.keyBuf)] = v
	for _, i := range c.touched {
		c.w[i] = 0
	}
	return v, nil
}

// InverseThroughput computes tp^-1(e), bit-identical to the reference
// Mapping.InverseThroughput of the compiled mapping.
func (c *Compiled) InverseThroughput(e Experiment) (float64, error) {
	v, err := c.evalExperiment(e)
	if err != nil {
		return 0, err
	}
	return v.inv, nil
}

// InverseThroughputBounded is InverseThroughput with the frontend
// bottleneck applied: max(tp^-1(e), |e|/rmax). rmax <= 0 disables it.
func (c *Compiled) InverseThroughputBounded(e Experiment, rmax float64) (float64, error) {
	v, err := c.evalExperiment(e)
	if err != nil {
		return 0, err
	}
	inv := v.inv
	if rmax > 0 {
		if lim := float64(v.total) / rmax; inv < lim {
			inv = lim
		}
	}
	return inv, nil
}

// BottleneckWitness returns a port set Q achieving the bottleneck
// maximum, with the reference evaluator's tie-break.
func (c *Compiled) BottleneckWitness(e Experiment) (PortSet, float64, error) {
	v, err := c.evalExperiment(e)
	if err != nil {
		return 0, 0, err
	}
	return v.q, v.inv, nil
}

// Throughput returns experiment iterations per cycle.
func (c *Compiled) Throughput(e Experiment) (float64, error) {
	inv, err := c.InverseThroughput(e)
	if err != nil {
		return 0, err
	}
	if inv == 0 {
		return math.Inf(1), nil
	}
	return 1 / inv, nil
}

// IPC returns instructions per cycle, capped at rmax if rmax > 0,
// matching Mapping.IPC exactly.
func (c *Compiled) IPC(e Experiment, rmax float64) (float64, error) {
	v, err := c.evalExperiment(e)
	if err != nil {
		return 0, err
	}
	n := float64(v.total)
	if n == 0 {
		return 0, nil
	}
	inv := v.inv
	if rmax > 0 {
		if lim := n / rmax; inv < lim {
			inv = lim
		}
	}
	if inv == 0 {
		return math.Inf(1), nil
	}
	return n / inv, nil
}
