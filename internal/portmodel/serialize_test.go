package portmodel

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestUnmarshalCorruptInputs feeds hand-damaged mapping JSON through
// UnmarshalJSON. Every case must produce a descriptive error — never a
// panic, which is what MakePortSet would do if indices reached it
// unvalidated.
func TestUnmarshalCorruptInputs(t *testing.T) {
	cases := []struct {
		name    string
		json    string
		wantErr string // substring of the expected error; "" = valid
	}{
		{
			name: "valid",
			json: `{"num_ports":4,"usage":{"add":[{"ports":[0,1],"count":1}]}}`,
		},
		{
			name:    "not JSON",
			json:    `{"num_ports":`,
			wantErr: "unexpected end",
		},
		{
			name:    "zero num_ports",
			json:    `{"num_ports":0,"usage":{}}`,
			wantErr: "invalid num_ports",
		},
		{
			name:    "negative num_ports",
			json:    `{"num_ports":-3,"usage":{}}`,
			wantErr: "invalid num_ports",
		},
		{
			name:    "num_ports beyond MaxPorts",
			json:    `{"num_ports":64,"usage":{}}`,
			wantErr: "invalid num_ports",
		},
		{
			name:    "port index at num_ports",
			json:    `{"num_ports":4,"usage":{"add":[{"ports":[4],"count":1}]}}`,
			wantErr: `scheme "add": port index 4 out of range`,
		},
		{
			name: "port index beyond MaxPorts",
			// Would panic inside MakePortSet if not validated first.
			json:    `{"num_ports":4,"usage":{"add":[{"ports":[1000],"count":1}]}}`,
			wantErr: "port index 1000 out of range",
		},
		{
			name:    "negative port index",
			json:    `{"num_ports":4,"usage":{"add":[{"ports":[-1],"count":1}]}}`,
			wantErr: "port index -1 out of range",
		},
		{
			name:    "negative count",
			json:    `{"num_ports":4,"usage":{"imul":[{"ports":[0],"count":-2}]}}`,
			wantErr: `scheme "imul": negative µop count -2`,
		},
		{
			name:    "usage wrong type",
			json:    `{"num_ports":4,"usage":{"add":"two uops"}}`,
			wantErr: "cannot unmarshal",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("UnmarshalJSON panicked on corrupt input: %v", r)
				}
			}()
			var m Mapping
			err := json.Unmarshal([]byte(tc.json), &m)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid mapping rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("corrupt mapping accepted: %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
