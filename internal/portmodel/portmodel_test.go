package portmodel

import (
	"encoding/json"
	"math"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPortSetBasics(t *testing.T) {
	s := MakePortSet(0, 3, 5)
	if s.Size() != 3 {
		t.Fatalf("Size = %d, want 3", s.Size())
	}
	if !s.Has(0) || !s.Has(3) || !s.Has(5) || s.Has(1) {
		t.Fatalf("Has gave wrong membership for %v", s)
	}
	if got := s.String(); got != "[0,3,5]" {
		t.Fatalf("String = %q", got)
	}
	if !MakePortSet(0, 3).SubsetOf(s) {
		t.Fatal("subset check failed")
	}
	if s.SubsetOf(MakePortSet(0, 3)) {
		t.Fatal("superset wrongly reported as subset")
	}
	ports := s.Ports()
	if len(ports) != 3 || ports[0] != 0 || ports[1] != 3 || ports[2] != 5 {
		t.Fatalf("Ports = %v", ports)
	}
}

func TestMakePortSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range port")
		}
	}()
	MakePortSet(MaxPorts)
}

func TestUsageNormalizeAndEqual(t *testing.T) {
	u := Usage{
		{Ports: MakePortSet(1), Count: 1},
		{Ports: MakePortSet(0, 1), Count: 2},
		{Ports: MakePortSet(1), Count: 2},
		{Ports: MakePortSet(2), Count: 0},
	}.Normalize()
	want := Usage{
		{Ports: MakePortSet(1), Count: 3},
		{Ports: MakePortSet(0, 1), Count: 2},
	}
	if !u.Equal(want) {
		t.Fatalf("Normalize/Equal: got %v want %v", u, want)
	}
	if u.TotalUops() != 5 {
		t.Fatalf("TotalUops = %d, want 5", u.TotalUops())
	}
}

func TestUsageString(t *testing.T) {
	u := Usage{
		{Ports: MakePortSet(6, 7, 8, 9), Count: 1},
		{Ports: MakePortSet(4, 5), Count: 2},
	}
	if got := u.String(); got != "2×[4,5] + [6,7,8,9]" {
		t.Fatalf("String = %q", got)
	}
	if got := (Usage{}).String(); got != "(no µops)" {
		t.Fatalf("empty String = %q", got)
	}
}

// paperMapping builds the example mapping of Figure 2(a): add = 1×u1,
// mul = 1×u2, fma = 2×u1 + 1×u2, where u1 can use ports {0,1} and u2
// only port {1}.
func paperMapping() *Mapping {
	m := NewMapping(2)
	u1 := MakePortSet(0, 1)
	u2 := MakePortSet(1)
	m.Set("add", Usage{{Ports: u1, Count: 1}})
	m.Set("mul", Usage{{Ports: u2, Count: 1}})
	m.Set("fma", Usage{{Ports: u1, Count: 2}, {Ports: u2, Count: 1}})
	return m
}

func TestInverseThroughputFigure2(t *testing.T) {
	m := paperMapping()
	// [mul, mul, fma]: paper reports 3 cycles (Figure 2b).
	tp, err := m.InverseThroughput(Experiment{"mul": 2, "fma": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tp, 3) {
		t.Fatalf("tp⁻¹([mul,mul,fma]) = %v, want 3", tp)
	}
}

func TestInverseThroughputFigure3(t *testing.T) {
	m := paperMapping()
	// Figure 3a: fma with 3 mul blocking instructions: 4 cycles.
	tp, err := m.InverseThroughput(Experiment{"mul": 3, "fma": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tp, 4) {
		t.Fatalf("tp⁻¹ = %v, want 4", tp)
	}
	// Figure 3b: fma with 6 add blocking instructions: 4.5 cycles.
	tp, err = m.InverseThroughput(Experiment{"add": 6, "fma": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tp, 4.5) {
		t.Fatalf("tp⁻¹ = %v, want 4.5", tp)
	}
}

func TestInverseThroughputSingletons(t *testing.T) {
	m := paperMapping()
	cases := []struct {
		e    Experiment
		want float64
	}{
		{Exp("add"), 0.5},
		{Exp("mul"), 1},
		{Exp("fma"), 1.5},
		{Experiment{"add": 4}, 2},
		{Experiment{}, 0},
	}
	for _, c := range cases {
		got, err := m.InverseThroughput(c.e)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want) {
			t.Errorf("tp⁻¹(%v) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestInverseThroughputUnknownKey(t *testing.T) {
	m := paperMapping()
	if _, err := m.InverseThroughput(Exp("bogus")); err == nil {
		t.Fatal("expected error for unknown instruction")
	}
	if _, err := m.InverseThroughput(Experiment{"add": -1}); err == nil {
		t.Fatal("expected error for negative count")
	}
}

func TestZeroUopInstructions(t *testing.T) {
	m := paperMapping()
	m.Set("nop", Usage{})
	tp, err := m.InverseThroughput(Experiment{"nop": 10})
	if err != nil {
		t.Fatal(err)
	}
	if tp != 0 {
		t.Fatalf("tp⁻¹(nops) = %v, want 0", tp)
	}
}

func TestIPCAndBottleneck(t *testing.T) {
	m := paperMapping()
	// 4 adds take 2 cycles -> 2 IPC uncapped.
	ipc, err := m.IPC(Experiment{"add": 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ipc, 2) {
		t.Fatalf("IPC = %v, want 2", ipc)
	}
	// With rmax = 1.5 the frontend caps IPC.
	ipc, err = m.IPC(Experiment{"add": 4}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ipc, 1.5) {
		t.Fatalf("capped IPC = %v, want 1.5", ipc)
	}
	inv, err := m.InverseThroughputBounded(Experiment{"add": 4}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(inv, 4/1.5) {
		t.Fatalf("bounded tp⁻¹ = %v, want %v", inv, 4/1.5)
	}
}

func TestBottleneckWitness(t *testing.T) {
	m := paperMapping()
	q, v, err := m.BottleneckWitness(Experiment{"mul": 2, "fma": 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(v, 3) {
		t.Fatalf("witness value = %v, want 3", v)
	}
	// The witness must actually achieve the bound: mass confined to q
	// divided by |q| equals v. For this experiment q must be {1}.
	if q != MakePortSet(1) {
		t.Fatalf("witness set = %v, want [1]", q)
	}
}

func TestPortPermutationPreservesThroughput(t *testing.T) {
	m := paperMapping()
	p, err := m.PortPermutation([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Experiment{Exp("add"), Exp("mul"), Exp("fma"), {"mul": 2, "fma": 1}} {
		a, _ := m.InverseThroughput(e)
		b, _ := p.InverseThroughput(e)
		if !almostEqual(a, b) {
			t.Fatalf("permutation changed throughput of %v: %v vs %v", e, a, b)
		}
	}
	if !m.Isomorphic(p) {
		t.Fatal("permuted mapping not recognized as isomorphic")
	}
}

func TestPortPermutationErrors(t *testing.T) {
	m := paperMapping()
	if _, err := m.PortPermutation([]int{0}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := m.PortPermutation([]int{0, 0}); err == nil {
		t.Fatal("expected invalid permutation error")
	}
}

func TestIsomorphicNegative(t *testing.T) {
	m := paperMapping()
	other := NewMapping(2)
	other.Set("add", Usage{{Ports: MakePortSet(0), Count: 1}}) // narrower
	other.Set("mul", Usage{{Ports: MakePortSet(1), Count: 1}})
	other.Set("fma", Usage{{Ports: MakePortSet(0, 1), Count: 2}, {Ports: MakePortSet(1), Count: 1}})
	if m.Isomorphic(other) {
		t.Fatal("structurally different mappings reported isomorphic")
	}
	// Different instruction sets are never isomorphic.
	third := NewMapping(2)
	third.Set("add", Usage{{Ports: MakePortSet(0, 1), Count: 1}})
	if m.Isomorphic(third) {
		t.Fatal("mappings over different keys reported isomorphic")
	}
}

func TestValidate(t *testing.T) {
	m := NewMapping(2)
	m.Usage["bad"] = Usage{{Ports: 0, Count: 1}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected empty-port-set error")
	}
	m = NewMapping(2)
	m.Usage["bad"] = Usage{{Ports: MakePortSet(5), Count: 1}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected out-of-range port error")
	}
	m = NewMapping(2)
	m.Usage["bad"] = Usage{{Ports: MakePortSet(0), Count: -1}}
	if err := m.Validate(); err == nil {
		t.Fatal("expected negative count error")
	}
	if err := paperMapping().Validate(); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
}

func TestExperimentHelpers(t *testing.T) {
	e := Exp("a", "b", "a")
	if e.Len() != 3 || e["a"] != 2 || e["b"] != 1 {
		t.Fatalf("Exp built %v", e)
	}
	c := e.Clone()
	c["a"] = 5
	if e["a"] != 2 {
		t.Fatal("Clone aliases storage")
	}
	if got := e.String(); got != "[2×a, b]" {
		t.Fatalf("String = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := paperMapping()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Mapping
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumPorts != m.NumPorts {
		t.Fatalf("NumPorts %d != %d", back.NumPorts, m.NumPorts)
	}
	for _, k := range m.Keys() {
		if !back.Usage[k].Equal(m.Usage[k]) {
			t.Fatalf("usage of %s changed across JSON: %v vs %v", k, back.Usage[k], m.Usage[k])
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var m Mapping
	if err := json.Unmarshal([]byte(`{"num_ports":0,"usage":{}}`), &m); err == nil {
		t.Fatal("expected error for zero ports")
	}
	if err := json.Unmarshal([]byte(`{"num_ports":2,"usage":{"x":[{"ports":[9],"count":1}]}}`), &m); err == nil {
		t.Fatal("expected error for out-of-range port")
	}
}

func TestThroughputInverse(t *testing.T) {
	m := paperMapping()
	tp, err := m.Throughput(Exp("add"))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tp, 2) {
		t.Fatalf("Throughput = %v, want 2", tp)
	}
	m.Set("nop", Usage{})
	tp, err = m.Throughput(Exp("nop"))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tp, 1) {
		t.Fatalf("Throughput of free instruction = %v, want +Inf", tp)
	}
}
