// External test package: the property tests cross-check the compiled
// evaluator against the LP solver, and internal/lp imports portmodel.
package portmodel_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"zenport/internal/lp"
	"zenport/internal/portmodel"
)

// randomMapping builds a random mapping over numKeys schemes.
func randomMapping(rng *rand.Rand, numPorts, numKeys, maxUops int) *portmodel.Mapping {
	m := portmodel.NewMapping(numPorts)
	for i := 0; i < numKeys; i++ {
		n := 1 + rng.Intn(maxUops)
		var u portmodel.Usage
		for j := 0; j < n; j++ {
			var ps portmodel.PortSet
			for ps == 0 {
				for k := 0; k < numPorts; k++ {
					if rng.Intn(3) == 0 {
						ps |= 1 << uint(k)
					}
				}
			}
			u = append(u, portmodel.Uop{Ports: ps, Count: 1 + rng.Intn(3)})
		}
		m.Set(fmt.Sprintf("insn%d", i), u)
	}
	return m
}

func randomExperiment(rng *rand.Rand, numKeys int) portmodel.Experiment {
	e := make(portmodel.Experiment)
	terms := 1 + rng.Intn(4)
	for t := 0; t < terms; t++ {
		e[fmt.Sprintf("insn%d", rng.Intn(numKeys))] += 1 + rng.Intn(5)
	}
	return e
}

// TestCompiledMatchesReferenceRandom is the central contract of the
// compiled evaluator: bit-identical inverse throughputs and witnesses
// on random mappings and experiments, and agreement with the
// independent LP solver within its tolerance.
func TestCompiledMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		numPorts := 2 + rng.Intn(9) // up to 10, like Zen
		numKeys := 1 + rng.Intn(6)
		m := randomMapping(rng, numPorts, numKeys, 3)
		c, err := portmodel.CompileMapping(m, nil)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		var lpEval *lp.ThroughputEvaluator
		if trial%2 == 0 {
			if lpEval, err = lp.NewThroughputEvaluator(m); err != nil {
				t.Fatalf("trial %d: lp evaluator: %v", trial, err)
			}
		}
		for q := 0; q < 10; q++ {
			e := randomExperiment(rng, numKeys)

			refInv, err := m.InverseThroughput(e)
			if err != nil {
				t.Fatalf("trial %d: reference: %v", trial, err)
			}
			gotInv, err := c.InverseThroughput(e)
			if err != nil {
				t.Fatalf("trial %d: compiled: %v", trial, err)
			}
			if gotInv != refInv {
				t.Fatalf("trial %d, %v: compiled tp⁻¹ = %v, reference %v", trial, e, gotInv, refInv)
			}

			refQ, refV, err := m.BottleneckWitness(e)
			if err != nil {
				t.Fatalf("trial %d: reference witness: %v", trial, err)
			}
			gotQ, gotV, err := c.BottleneckWitness(e)
			if err != nil {
				t.Fatalf("trial %d: compiled witness: %v", trial, err)
			}
			if gotQ != refQ || gotV != refV {
				t.Fatalf("trial %d, %v: compiled witness (%v, %v), reference (%v, %v)",
					trial, e, gotQ, gotV, refQ, refV)
			}

			rmax := float64(1 + rng.Intn(6))
			refB, err := m.InverseThroughputBounded(e, rmax)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := c.InverseThroughputBounded(e, rmax)
			if err != nil {
				t.Fatal(err)
			}
			if gotB != refB {
				t.Fatalf("trial %d, %v: bounded compiled %v, reference %v", trial, e, gotB, refB)
			}

			refIPC, err := m.IPC(e, rmax)
			if err != nil {
				t.Fatal(err)
			}
			gotIPC, err := c.IPC(e, rmax)
			if err != nil {
				t.Fatal(err)
			}
			if gotIPC != refIPC {
				t.Fatalf("trial %d, %v: IPC compiled %v, reference %v", trial, e, gotIPC, refIPC)
			}

			// Dense-weight path agrees with the Experiment path.
			w, total, err := c.WeightVector(e, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.InverseThroughputWeights(w); got != refInv {
				t.Fatalf("trial %d, %v: dense tp⁻¹ = %v, reference %v", trial, e, got, refInv)
			}
			if got := c.InverseThroughputBoundedWeights(w, total, rmax); got != refB {
				t.Fatalf("trial %d, %v: dense bounded = %v, reference %v", trial, e, got, refB)
			}
			if q2, v2 := c.BottleneckWitnessWeights(w); q2 != refQ || v2 != refV {
				t.Fatalf("trial %d, %v: dense witness (%v, %v), reference (%v, %v)",
					trial, e, q2, v2, refQ, refV)
			}

			// Independent cross-check: the simplex LP agrees within its
			// numerical tolerance (both solve the Section 2.2 LP).
			if lpEval != nil {
				lpInv, err := lpEval.InverseThroughput(e)
				if err != nil {
					t.Fatalf("trial %d: lp: %v", trial, err)
				}
				if math.Abs(lpInv-refInv) > 1e-6*(1+refInv) {
					t.Fatalf("trial %d, %v: lp tp⁻¹ = %v, combinatorial %v", trial, e, lpInv, refInv)
				}
			}
		}
	}
}

// TestCompiledErrorsMatchReference pins the error strings of the
// compiled path to the reference evaluator's.
func TestCompiledErrorsMatchReference(t *testing.T) {
	m := portmodel.NewMapping(3)
	m.Set("a", portmodel.Usage{{Ports: portmodel.MakePortSet(0), Count: 1}})
	c, err := portmodel.CompileMapping(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []portmodel.Experiment{
		{"missing": 1},
		{"a": -2},
	} {
		_, refErr := m.InverseThroughput(e)
		_, gotErr := c.InverseThroughput(e)
		if refErr == nil || gotErr == nil {
			t.Fatalf("%v: expected errors, got ref=%v compiled=%v", e, refErr, gotErr)
		}
		if refErr.Error() != gotErr.Error() {
			t.Fatalf("%v: error mismatch: ref %q, compiled %q", e, refErr, gotErr)
		}
	}
}

// TestCompiledSetUop checks in-place µop retargeting (the SMT
// propagator's hook) against recompiling from scratch.
func TestCompiledSetUop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	numPorts := 4
	keys := []string{"a", "b"}
	usages := []portmodel.Usage{
		{{Ports: portmodel.MakePortSet(0), Count: 1}, {Ports: portmodel.MakePortSet(1), Count: 1}},
		{{Ports: portmodel.MakePortSet(2, 3), Count: 1}},
	}
	c, err := portmodel.CompileUsages(numPorts, keys, usages)
	if err != nil {
		t.Fatal(err)
	}
	e := portmodel.Experiment{"a": 3, "b": 2}
	for trial := 0; trial < 100; trial++ {
		for si, u := range usages {
			for j := range u {
				var ps portmodel.PortSet
				for ps == 0 {
					ps = portmodel.PortSet(rng.Intn(1 << numPorts))
				}
				usages[si][j].Ports = ps
				c.SetUop(int32(si), j, ps)
			}
		}
		fresh, err := portmodel.CompileUsages(numPorts, keys, usages)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.InverseThroughput(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.InverseThroughput(e)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: SetUop evaluator %v, fresh compile %v", trial, got, want)
		}
	}
}

// TestCompiledZeroAllocSteadyState proves the hot paths allocate
// nothing once warm: the dense-weight queries never allocate, and the
// Experiment-keyed queries stop allocating once memoized.
func TestCompiledZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMapping(rng, 10, 8, 3)
	c, err := portmodel.CompileMapping(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := portmodel.Experiment{"insn0": 4, "insn3": 1, "insn5": 2}
	w, total, err := c.WeightVector(e, nil)
	if err != nil {
		t.Fatal(err)
	}

	if avg := testing.AllocsPerRun(200, func() {
		c.InverseThroughputWeights(w)
		c.InverseThroughputBoundedWeights(w, total, 5)
		c.BottleneckWitnessWeights(w)
	}); avg != 0 {
		t.Fatalf("dense-weight queries allocate %v per run, want 0", avg)
	}

	// Warm the memo, then the Experiment path must not allocate either.
	if _, err := c.InverseThroughput(e); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := c.InverseThroughput(e); err != nil {
			t.Fatal(err)
		}
		if _, err := c.InverseThroughputBounded(e, 5); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.BottleneckWitness(e); err != nil {
			t.Fatal(err)
		}
		if _, err := c.IPC(e, 5); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("memoized experiment queries allocate %v per run, want 0", avg)
	}

	// Re-interning a fresh but equal experiment also stays allocation
	// free: the weight scratch and key buffer are reused and the memo
	// probe is a zero-copy map lookup.
	e2 := e.Clone()
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := c.InverseThroughput(e2); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("memo-hit experiment query allocates %v per run, want 0", avg)
	}
}

// FuzzCompiledMatchesReference drives randomized mapping/experiment
// shapes from fuzz input bytes and checks bit-identity.
func FuzzCompiledMatchesReference(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2))
	f.Add(int64(99), uint8(10), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, ports, nkeys uint8) {
		numPorts := 1 + int(ports)%portmodel.MaxPorts
		numKeys := 1 + int(nkeys)%8
		rng := rand.New(rand.NewSource(seed))
		m := randomMapping(rng, numPorts, numKeys, 3)
		c, err := portmodel.CompileMapping(m, nil)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		for q := 0; q < 5; q++ {
			e := randomExperiment(rng, numKeys)
			want, err := m.InverseThroughput(e)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.InverseThroughput(e)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v: compiled %v, reference %v", e, got, want)
			}
			wantQ, _, err := m.BottleneckWitness(e)
			if err != nil {
				t.Fatal(err)
			}
			gotQ, _, err := c.BottleneckWitness(e)
			if err != nil {
				t.Fatal(err)
			}
			if gotQ != wantQ {
				t.Fatalf("%v: witness compiled %v, reference %v", e, gotQ, wantQ)
			}
		}
	})
}
