package portmodel

import (
	"encoding/json"
	"fmt"
)

// jsonUop is the wire form of a µop: explicit port list instead of a
// bitmask, so the JSON is human-readable and stable across versions.
type jsonUop struct {
	Ports []int `json:"ports"`
	Count int   `json:"count"`
}

type jsonMapping struct {
	NumPorts int                  `json:"num_ports"`
	Usage    map[string][]jsonUop `json:"usage"`
}

// MarshalJSON renders the mapping with explicit port lists.
func (m *Mapping) MarshalJSON() ([]byte, error) {
	out := jsonMapping{NumPorts: m.NumPorts, Usage: make(map[string][]jsonUop, len(m.Usage))}
	for key, u := range m.Usage {
		ju := make([]jsonUop, 0, len(u))
		for _, x := range u.Clone().Normalize() {
			ju = append(ju, jsonUop{Ports: x.Ports.Ports(), Count: x.Count})
		}
		out.Usage[key] = ju
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the explicit-port-list form. All indices and
// counts are validated before any PortSet is built: a corrupt or
// hand-edited mapping file must yield a descriptive error, never a
// panic (MakePortSet panics on out-of-range indices by contract).
func (m *Mapping) UnmarshalJSON(data []byte) error {
	var in jsonMapping
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.NumPorts <= 0 || in.NumPorts > MaxPorts {
		return fmt.Errorf("portmodel: invalid num_ports %d (want 1..%d)", in.NumPorts, MaxPorts)
	}
	m.NumPorts = in.NumPorts
	m.Usage = make(map[string]Usage, len(in.Usage))
	for key, ju := range in.Usage {
		u := make(Usage, 0, len(ju))
		for _, x := range ju {
			if x.Count < 0 {
				return fmt.Errorf("portmodel: scheme %q: negative µop count %d", key, x.Count)
			}
			var ps PortSet
			for _, p := range x.Ports {
				if p < 0 || p >= in.NumPorts {
					return fmt.Errorf("portmodel: scheme %q: port index %d out of range [0,%d)", key, p, in.NumPorts)
				}
				ps |= 1 << uint(p)
			}
			u = append(u, Uop{Ports: ps, Count: x.Count})
		}
		m.Usage[key] = u.Normalize()
	}
	return m.Validate()
}
