package portmodel

import (
	"encoding/json"
	"fmt"
	"sort"
)

// jsonUop is the wire form of a µop: explicit port list instead of a
// bitmask, so the JSON is human-readable and stable across versions.
type jsonUop struct {
	Ports []int `json:"ports"`
	Count int   `json:"count"`
}

type jsonMapping struct {
	NumPorts int                  `json:"num_ports"`
	Usage    map[string][]jsonUop `json:"usage"`
}

// MarshalJSON renders the mapping with explicit port lists.
func (m *Mapping) MarshalJSON() ([]byte, error) {
	out := jsonMapping{NumPorts: m.NumPorts, Usage: make(map[string][]jsonUop, len(m.Usage))}
	for key, u := range m.Usage {
		ju := make([]jsonUop, 0, len(u))
		for _, x := range u.Clone().Normalize() {
			ju = append(ju, jsonUop{Ports: x.Ports.Ports(), Count: x.Count})
		}
		out.Usage[key] = ju
	}
	return json.Marshal(out)
}

// UnmarshalJSON parses the explicit-port-list form.
func (m *Mapping) UnmarshalJSON(data []byte) error {
	var in jsonMapping
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.NumPorts <= 0 || in.NumPorts > MaxPorts {
		return fmt.Errorf("portmodel: invalid num_ports %d", in.NumPorts)
	}
	m.NumPorts = in.NumPorts
	m.Usage = make(map[string]Usage, len(in.Usage))
	for key, ju := range in.Usage {
		u := make(Usage, 0, len(ju))
		for _, x := range ju {
			sort.Ints(x.Ports)
			u = append(u, Uop{Ports: MakePortSet(x.Ports...), Count: x.Count})
		}
		m.Usage[key] = u.Normalize()
	}
	return m.Validate()
}
