// Command zenportd serves inferred port mappings over HTTP/JSON:
// basic-block throughput predictions, per-scheme port-usage
// explanations with bottleneck-set witnesses, and diffs between
// mappings — the batch pipeline's output turned into an analysis
// service.
//
// Usage:
//
//	zenportd -mapping zen=mapping.json [-mapping zen2=other.json] [-addr :8080]
//
// Endpoints (see internal/serve):
//
//	GET  /healthz       liveness + loaded mapping names
//	GET  /v1/mappings   loaded mappings
//	POST /v1/predict    {"mapping":"zen","kernel":"2*add GPR[32], GPR[32]; mul GPR[64]"}
//	POST /v1/explain    same body; adds per-scheme usage + witness
//	GET  /v1/diff?a=zen&b=zen2
//	GET  /v1/stats      cache/pool/dedup counters
//
// Predictions are bit-identical to batch zeneval over the same
// mapping and rmax: the daemon runs the same compiled evaluator, and
// cmd/zenload -verify asserts it under load. -addr :0 binds a random
// port; the bound address is printed as "zenportd: listening on ...".
// SIGINT/SIGTERM drain in-flight requests before exiting.
//
// The daemon is overload-safe (see internal/serve): evaluator work
// runs behind a bounded-concurrency, bounded-queue admission gate
// (-max-concurrent, -max-queue, -queue-timeout; excess load is shed
// with 429 + Retry-After), every request carries a deadline budget
// (-deadline default, -max-deadline cap on the X-Zenport-Deadline
// header), handler panics are recovered and counted instead of
// killing the process, and a per-mapping breaker degrades a failing
// mapping to cache-only 503s (-breaker-threshold, -breaker-cooldown).
//
// SIGHUP re-reads every -mapping file and hot-reloads it with
// validate-then-atomic-swap semantics: a mapping that fails
// validation or the smoke probe is rejected and the previous
// generation keeps serving; in-flight requests drain on the old
// generation. POST /admin/reload (loopback-only) reloads a single
// mapping from a path.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"zenport/internal/portmodel"
	"zenport/internal/serve"
)

// mappingFlags collects repeated -mapping name=path pairs.
type mappingFlags []struct{ name, path string }

// String implements flag.Value.
func (m *mappingFlags) String() string {
	parts := make([]string, len(*m))
	for i, p := range *m {
		parts[i] = p.name + "=" + p.path
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (m *mappingFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

// main delegates to run so deferred cleanup runs on every exit path
// — log.Fatalf or os.Exit inside the work (the old shape) skipped the
// defers, so an error during a drain left resources behind and made it
// impossible to ever attach cleanup that must run (a persist store's
// Close, a lease release).
func main() {
	if err := run(); err != nil {
		log.Fatalf("zenportd: %v", err)
	}
}

func run() error {
	var mappings mappingFlags
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	rmax := flag.Float64("rmax", 5, "frontend/retire bound in instructions per cycle (0 = none)")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "per-mapping prediction LRU capacity")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size cap in bytes")
	memo := flag.Int("memo", 0, "per-evaluator experiment memo cap (0 = default, <0 = unbounded)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	quiet := flag.Bool("quiet", false, "suppress per-error log lines")
	maxConcurrent := flag.Int("max-concurrent", serve.DefaultMaxConcurrent, "concurrent evaluator work bound")
	maxQueue := flag.Int("max-queue", serve.DefaultMaxQueue, "admission queue depth (<0 = no queue, shed immediately)")
	queueTimeout := flag.Duration("queue-timeout", serve.DefaultQueueTimeout, "shed requests queued longer than this")
	retryAfter := flag.Duration("retry-after", serve.DefaultRetryAfter, "Retry-After hint on shed/degraded responses")
	deadline := flag.Duration("deadline", 2*time.Second, "default per-request evaluation budget (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 30*time.Second, "cap on the X-Zenport-Deadline request header (0 = no cap)")
	breakerThreshold := flag.Int("breaker-threshold", serve.DefaultBreakerThreshold,
		"consecutive evaluator failures that degrade a mapping to cache-only (<0 = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", serve.DefaultBreakerCooldown,
		"open-breaker cooldown before the half-open recovery probe")
	flag.Var(&mappings, "mapping", "name=path of a mapping JSON to load (repeatable)")
	flag.Parse()

	if len(mappings) == 0 {
		return errors.New("specify at least one -mapping name=path")
	}

	cfg := serve.Config{
		Rmax: *rmax, CacheSize: *cacheSize, MaxBodyBytes: *maxBody, MemoLimit: *memo,
		MaxConcurrent: *maxConcurrent, MaxQueue: *maxQueue, QueueTimeout: *queueTimeout,
		RetryAfter: *retryAfter, DefaultDeadline: *deadline, MaxDeadline: *maxDeadline,
		BreakerThreshold: *breakerThreshold, BreakerCooldown: *breakerCooldown,
	}
	if !*quiet {
		cfg.Log = log.Printf
	}
	srv := serve.New(cfg)
	for _, spec := range mappings {
		data, err := os.ReadFile(spec.path)
		if err != nil {
			return err
		}
		var m portmodel.Mapping
		if err := json.Unmarshal(data, &m); err != nil {
			return fmt.Errorf("%s: %w", spec.path, err)
		}
		if err := srv.Load(spec.name, &m); err != nil {
			return err
		}
		log.Printf("zenportd: loaded mapping %q from %s (%d ports, %d schemes)",
			spec.name, spec.path, m.NumPorts, len(m.Usage))
	}

	// The listener is opened before serving so -addr :0 callers
	// (serve-smoke, load tests) can scrape the bound address.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("zenportd: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads every -mapping file; it must not share the
	// NotifyContext above or the first reload would start a drain.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	for {
		select {
		case err := <-done:
			if !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		case <-hup:
			reloadAll(srv, mappings)
		case <-ctx.Done():
			// First signal: stop accepting, drain in-flight requests.
			// http.Server.Shutdown returns once every connection is idle or
			// the drain timeout forces the remainder closed.
			stop() // a second signal kills immediately via default handling
			log.Printf("zenportd: signal received, draining (up to %s)", *drain)
			sctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			if err := hs.Shutdown(sctx); err != nil {
				return fmt.Errorf("drain incomplete: %w", err)
			}
			log.Printf("zenportd: drained cleanly")
			return nil
		}
	}
}

// reloadAll re-reads every -mapping file and hot-reloads it. A
// rejected reload — unreadable file, invalid mapping, failed smoke
// check — is logged and skipped: the previous generation keeps
// serving, which is the whole point of validate-then-swap.
func reloadAll(srv *serve.Server, mappings mappingFlags) {
	for _, spec := range mappings {
		data, err := os.ReadFile(spec.path)
		if err != nil {
			log.Printf("zenportd: reload %q rejected, still serving previous generation: %v", spec.name, err)
			continue
		}
		var m portmodel.Mapping
		if err := json.Unmarshal(data, &m); err != nil {
			log.Printf("zenportd: reload %q rejected, still serving previous generation: %s: %v", spec.name, spec.path, err)
			continue
		}
		res, err := srv.Reload(spec.name, &m)
		if err != nil {
			log.Printf("zenportd: reload %q rejected, still serving previous generation: %v", spec.name, err)
			continue
		}
		log.Printf("zenportd: reloaded mapping %q from %s: generation %d, fingerprint %s, cache retained %v",
			spec.name, spec.path, res.Generation, res.Fingerprint, res.CacheRetained)
	}
}
