// Command zeninfer runs the full port-mapping inference pipeline of
// Ritter & Hack (ASPLOS 2024) against the simulated Zen+ machine and
// prints the paper's artifacts: the scheme funnel (§4.1–§4.2), the
// blocking classes of Table 1, the inferred blocker mapping of
// Table 2, the §4.3 anomaly exclusions, and coverage statistics for
// the final mapping. The mapping can be written to JSON for use with
// zenmap and zeneval.
//
// Usage:
//
//	zeninfer [-seed N] [-noise F] [-parallel N] [-timeout D] [-max-schemes N] [-cache-dir DIR] [-resume] [-chaos] [-chaos-seed N] [-quality-spread F] [-solver-budget N] [-max-slack F] [-shards N -shard-id I] [-merge] [-out mapping.json] [-witnesses]
//
// Measurements run through the batch engine; -parallel sets the
// worker-pool size (results are byte-identical for every value) and
// -timeout bounds the whole inference.
//
// With -cache-dir, every executed measurement is journaled crash-safe
// on disk and reused by later runs under the same configuration; with
// -resume, an interrupted run additionally restarts from its last
// completed pipeline stage and produces byte-identical output.
//
// With -chaos, the machine is wrapped in a deterministic seeded
// fault-injection regime (transient errors, hangs, outlier spikes,
// stuck counters); the run ends with an injection ledger and a
// degradation report listing the measurements that stayed
// low-confidence — no fault class aborts the inference.
// -quality-spread tunes the adaptive repetition target (default 0.05
// robust relative spread).
//
// -solver-budget bounds every CDCL solver query to that many
// conflicts; exhausted queries degrade the run to a partial mapping
// (unresolved schemes are listed, and a later -resume retries them)
// instead of aborting. -max-slack enables UNSAT-core recovery: when
// the measurements are mutually inconsistent, the minimal conflicting
// experiment set is isolated and its least trustworthy measurements
// are re-measured and relaxed by up to the given error-bound slack.
//
// With -shards N -shard-id I, the process runs one shard of a
// distributed campaign rooted at -cache-dir: the scheme universe is
// deterministically partitioned into N slices, this process runs
// slice I (stages 1–3 run in full — they are global and byte-identical
// across shards — stage 4 is restricted to the slice), and afterwards
// steals the slices of crashed or hung peers via crash-tolerant lease
// takeover. Start one zeninfer per shard id with identical
// configuration flags; any subset of them dying — SIGKILL included —
// costs no data. -merge then validates fingerprints across the shard
// results and journals and merges them into one mapping and one
// compacted snapshot; slices no shard completed degrade the merged
// mapping (their schemes are listed unresolved) instead of failing it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"zenport"
)

// main delegates to run so deferred cleanup — most importantly the
// persist store's Close, which compacts and closes the journal — runs
// on every exit path. log.Fatal inside the work (the old shape)
// skipped those defers, so a Ctrl-C'd -cache-dir run left its journal
// unflushed.
func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	seed := flag.Int64("seed", 2600, "measurement noise seed")
	noise := flag.Float64("noise", 0.001, "relative cycle-measurement noise (0 disables)")
	maxSchemes := flag.Int("max-schemes", 0, "limit the number of schemes (0 = all)")
	parallel := flag.Int("parallel", 0, "measurement worker pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort inference after this duration (0 = none)")
	cacheDir := flag.String("cache-dir", "", "crash-safe measurement cache directory (empty = no persistence)")
	resume := flag.Bool("resume", false, "resume an interrupted run from its checkpoints (requires -cache-dir)")
	chaosOn := flag.Bool("chaos", false, "inject deterministic faults (transients, hangs, outliers, stuck counters)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed (with -chaos)")
	qualitySpread := flag.Float64("quality-spread", 0, "adaptive repetition quality target, robust relative spread (0 = default 0.05)")
	solverBudget := flag.Uint64("solver-budget", 0, "max CDCL conflicts per solver query; exhausted queries degrade to a partial mapping (0 = unlimited)")
	portfolio := flag.Int("portfolio", 0, "CDCL portfolio width K: diversified solver members racing each SMT query with deterministic arbitration, byte-identical results at any K (0/1 = single solver; ignored with -solver-budget)")
	maxSlack := flag.Float64("max-slack", 0, "max per-measurement error-bound relaxation for UNSAT-core recovery (0 = disabled)")
	shards := flag.Int("shards", 0, "run as one shard of an N-shard campaign rooted at -cache-dir (requires -shard-id)")
	shardID := flag.Int("shard-id", -1, "this process's shard id in [0,N) (with -shards)")
	merge := flag.Bool("merge", false, "merge the sharded campaign at -cache-dir into one mapping and snapshot, then exit")
	out := flag.String("out", "", "write the final mapping to this JSON file")
	witnesses := flag.Bool("witnesses", false, "print the CEGAR witness experiments")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	if *resume && *cacheDir == "" {
		return fmt.Errorf("-resume requires -cache-dir")
	}
	sharded := *shards != 0 || *shardID >= 0
	if sharded {
		if *shards < 1 || *shardID < 0 || *shardID >= *shards {
			return fmt.Errorf("sharded mode wants -shards N >= 1 and -shard-id in [0,N); got -shards %d -shard-id %d", *shards, *shardID)
		}
		if *cacheDir == "" {
			return fmt.Errorf("-shards requires -cache-dir (the campaign root)")
		}
		if *merge {
			return fmt.Errorf("-merge cannot be combined with -shards; merge after the shard processes finish")
		}
	}
	if *merge && *cacheDir == "" {
		return fmt.Errorf("-merge requires -cache-dir (the campaign root)")
	}

	db := zenport.ZenDB()
	n := *noise
	if n == 0 {
		n = -1
	}

	s := &session{quiet: *quiet}
	// Each campaign slice builds a fresh machine and harness: the
	// simulated noise and fault streams derive per (seed, kernel,
	// execution index), so a stolen slice replays the exact streams its
	// dead owner saw.
	s.newHarness = func() (*zenport.Harness, *zenport.ChaosProcessor, string) {
		machine := zenport.NewZenMachine(db, zenport.SimConfig{Noise: n, Seed: *seed})
		var proc zenport.Processor = machine
		var fper zenport.Fingerprinter = machine
		var cp *zenport.ChaosProcessor
		if *chaosOn {
			cp = zenport.WrapChaos(machine, *chaosSeed, zenport.DefaultChaosRegime())
			proc, fper = cp, cp
		}
		h := zenport.NewHarness(proc)
		h.Workers = *parallel
		h.QualitySpread = *qualitySpread
		return h, cp, zenport.RunFingerprint(fper, h.Engine)
	}
	s.baseOpts = func() zenport.Options {
		opts := zenport.DefaultOptions()
		if !*quiet {
			opts.Log = func(format string, args ...any) { log.Printf(format, args...) }
		}
		opts.SolverBudget = zenport.SolverBudget{MaxConflicts: *solverBudget}
		opts.Portfolio = *portfolio
		opts.MaxSlack = *maxSlack
		return opts
	}

	s.schemes = zenport.ZenSchemes(db)
	if *maxSchemes > 0 && *maxSchemes < len(s.schemes) {
		s.schemes = s.schemes[:*maxSchemes]
	}

	if *merge {
		return runMerge(s, *cacheDir, *out)
	}

	// SIGINT/SIGTERM cancel the inference context: measurement batches
	// and solver queries stop promptly, and the deferred store.Close
	// compacts the journal so the interrupted run resumes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if sharded {
		return runSharded(ctx, s, *cacheDir, *shards, *shardID)
	}

	h, cp, fp := s.newHarness()
	opts := s.baseOpts()

	if *cacheDir != "" {
		// The exclusive directory lock makes two non-sharded processes
		// on one cache fail fast instead of interleaving journals;
		// sharded campaigns coordinate through leases instead.
		lk, err := zenport.LockCacheDir(*cacheDir)
		if err != nil {
			return err
		}
		defer lk.Unlock()
		store, err := zenport.OpenCache(*cacheDir, fp)
		if err != nil {
			return fmt.Errorf("opening cache: %w", err)
		}
		if !*quiet {
			store.Log = func(format string, args ...any) { log.Printf(format, args...) }
		}
		defer store.Close()
		if err := store.Attach(h.Engine); err != nil {
			return fmt.Errorf("attaching cache: %w", err)
		}
		ck, err := zenport.NewCheckpointer(*cacheDir, fp)
		if err != nil {
			return fmt.Errorf("opening checkpoints: %w", err)
		}
		opts.Checkpointer = ck
		opts.Resume = *resume
	}

	rep, err := zenport.InferContext(ctx, h, s.schemes, opts)
	if err != nil {
		return fmt.Errorf("inference failed: %w", err)
	}

	printFunnel(rep)
	printTable1(rep)
	printTable2(rep)
	printCoverage(rep)
	if *witnesses {
		printWitnesses(rep)
	}
	printDegraded(rep)
	printSupervision(rep)
	m := h.Metrics()
	fmt.Printf("\ntotal distinct measurements: %d\n", h.MeasurementCount())
	fmt.Printf("engine: %d submitted, %d cache hits, %d coalesced, %d retries, batch wall %s\n",
		m.Submitted, m.CacheHits, m.Coalesced, m.Retries, m.BatchWall.Round(time.Millisecond))
	fmt.Printf("quality: %d/%d samples kept/rejected, %d quarantined, max spread %.4f, mean %.4f, backoff %s\n",
		m.SamplesKept, m.SamplesRejected, m.Quarantined, m.MaxSpread, m.MeanSpread,
		m.BackoffWait.Round(time.Microsecond))
	if cp != nil {
		fmt.Printf("chaos:  injection ledger: %s\n", cp.Ledger())
	}

	if *out != "" {
		data, err := json.MarshalIndent(rep.Final, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("final mapping written to %s\n", *out)
	}
	return nil
}

// session bundles the flag-derived configuration the sharded paths
// re-instantiate per slice: scheme list, harness factory, and pipeline
// options factory.
type session struct {
	schemes    []zenport.Scheme
	newHarness func() (*zenport.Harness, *zenport.ChaosProcessor, string)
	baseOpts   func() zenport.Options
	quiet      bool
}

// runSharded participates in the campaign at dir as shard shardID of
// shards: its own slice first, then stolen slices of dead or hung
// peers, until every slice has a result.
func runSharded(ctx context.Context, s *session, dir string, shards, shardID int) error {
	_, _, fp := s.newHarness()
	universe := make([]string, 0, len(s.schemes))
	for i := range s.schemes {
		universe = append(universe, s.schemes[i].Key())
	}
	man, err := zenport.EnsureShardManifest(dir, fp, shards, universe)
	if err != nil {
		return err
	}
	cfg := zenport.ShardConfig{
		Dir:      dir,
		Owner:    fmt.Sprintf("shard%d-pid%d", shardID, os.Getpid()),
		ShardID:  shardID,
		Manifest: man,
		Run: func(ctx context.Context, sr *zenport.ShardRun) (*zenport.ShardOutcome, error) {
			return runSlice(ctx, s, fp, sr)
		},
		Steal: true,
	}
	if !s.quiet {
		cfg.Log = func(format string, args ...any) { log.Printf(format, args...) }
	}
	st, err := zenport.RunShard(ctx, cfg)
	if err != nil {
		return fmt.Errorf("shard %d: %w", shardID, err)
	}
	fmt.Printf("shard %d done: completed slices %v (stolen %v, observed done %v, lost %d)\n",
		shardID, st.Completed, st.Stolen, st.ObservedDone, st.LostSlices)
	fmt.Printf("campaign complete; merge with: zeninfer -cache-dir %s -merge [-out mapping.json]\n", dir)
	return nil
}

// runSlice executes one owned campaign slice: a fresh harness, the
// slice's persist store under the lease's writer epoch, slice-local
// checkpoints with resume on (a stolen slice continues from its dead
// owner's checkpoints), and stage 4 restricted to the slice.
func runSlice(ctx context.Context, s *session, fp string, sr *zenport.ShardRun) (*zenport.ShardOutcome, error) {
	h, _, hfp := s.newHarness()
	if hfp != fp {
		return nil, fmt.Errorf("slice %d: configuration fingerprint changed mid-run", sr.Index)
	}
	store, err := zenport.OpenCacheEpoch(sr.Dir, fp, sr.Epoch)
	if err != nil {
		return nil, fmt.Errorf("slice %d cache: %w", sr.Index, err)
	}
	defer store.Close()
	if !s.quiet {
		store.Log = func(format string, args ...any) { log.Printf(format, args...) }
	}
	if err := store.Attach(h.Engine); err != nil {
		return nil, fmt.Errorf("slice %d cache: %w", sr.Index, err)
	}
	ck, err := zenport.NewCheckpointer(sr.Dir, fp)
	if err != nil {
		return nil, fmt.Errorf("slice %d checkpoints: %w", sr.Index, err)
	}
	opts := s.baseOpts()
	opts.Checkpointer = ck
	opts.Resume = true
	opts.CharacterizeFilter = sr.Filter
	sr.SetProgress(h.Engine.Progress)
	rep, err := zenport.InferContext(ctx, h, s.schemes, opts)
	if err != nil {
		return nil, err
	}
	exc := make(map[string]string, len(rep.Excluded))
	for k, r := range rep.Excluded {
		exc[k] = string(r)
	}
	return &zenport.ShardOutcome{Mapping: rep.Final, Unresolved: rep.Unresolved, Excluded: exc}, nil
}

// runMerge validates and merges the campaign at dir under the current
// configuration's fingerprint and reports degradation instead of
// hiding it.
func runMerge(s *session, dir, out string) error {
	_, _, fp := s.newHarness()
	lk, err := zenport.LockCacheDir(dir)
	if err != nil {
		return err
	}
	defer lk.Unlock()
	rep, err := zenport.MergeShards(dir, fp)
	if err != nil {
		return fmt.Errorf("merge: %w", err)
	}
	fmt.Printf("merged %d slice(s): mapping covers %d schemes, %d measurement records compacted at the campaign root\n",
		rep.Slices, len(rep.Mapping.Usage), rep.Records)
	if rep.Degraded() {
		fmt.Printf("DEGRADED: slice(s) %v never reported; their schemes are unresolved, re-run those shards and merge again\n",
			rep.MissingSlices)
	}
	if len(rep.Unresolved) > 0 {
		fmt.Printf("unresolved schemes (%d, absent from the mapping): %v\n", len(rep.Unresolved), rep.Unresolved)
	}
	if out != "" {
		data, err := json.MarshalIndent(rep.Mapping, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("merged mapping written to %s\n", out)
	}
	return nil
}

func printFunnel(rep *zenport.Report) {
	byReason := map[string]int{}
	for _, r := range rep.Excluded {
		byReason[string(r)]++
	}
	fmt.Printf("== Scheme funnel (§4.1–§4.4)\n")
	fmt.Printf("initial schemes:             %d\n", rep.InitialSchemes)
	var reasons []string
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Strings(reasons)
	for _, r := range reasons {
		fmt.Printf("  excluded, %-55s %d\n", r+":", byReason[r])
	}
	fmt.Printf("blocking candidates after stage 1:  %d\n", rep.Candidates)
	fmt.Printf("candidates in classes after stage 2: %d\n", rep.CandidatesFiltered)
}

func printTable1(rep *zenport.Report) {
	fmt.Printf("\n== Table 1: blocking instruction classes\n")
	fmt.Printf("%-7s %-42s %-8s\n", "#Ports", "Representative", "#Equiv.")
	for _, cls := range rep.Classes {
		fmt.Printf("%-7d %-42s %-8d\n", cls.PortCount, cls.Rep, len(cls.Members))
	}
}

func printTable2(rep *zenport.Report) {
	fmt.Printf("\n== Table 2: inferred port usage of the blocking instructions\n")
	fmt.Printf("(%d CEGAR rounds; anomalous blockers excluded: %v)\n",
		rep.CEGARRounds, rep.AnomalousBlockers)
	for _, key := range rep.BlockerMapping.Keys() {
		u, _ := rep.BlockerMapping.Get(key)
		fmt.Printf("  %-42s %s\n", key, u)
	}
}

func printCoverage(rep *zenport.Report) {
	fmt.Printf("\n== Coverage (§4.4)\n")
	fmt.Printf("characterized schemes:  %d\n", len(rep.Characterized))
	fmt.Printf("spurious (microcode sequencer artifacts): %d\n", len(rep.Spurious))
	fmt.Printf("final mapping covers:   %d schemes\n", rep.Supported())
}

func printWitnesses(rep *zenport.Report) {
	fmt.Printf("\n== CEGAR witness experiments\n")
	for _, w := range rep.CEGARWitnesses {
		fmt.Printf("  %-40s t=%6.3f  %s\n", w.Exp, w.TInv, w.Claim)
	}
}

// printDegraded is the graceful-degradation report: instead of dying
// on bad measurements, the pipeline lists the ones that stayed
// low-confidence after adaptive escalation and quarantine.
func printDegraded(rep *zenport.Report) {
	if len(rep.Degraded) == 0 {
		return
	}
	fmt.Printf("\n== Degraded measurements (proceeded with reduced confidence)\n")
	for _, d := range rep.Degraded {
		fmt.Printf("  %-42s spread %.4f (kept %d, rejected %d)\n",
			d.Key, d.Quality.Spread, d.Quality.Kept, d.Quality.Rejected)
	}
	fmt.Printf("inference completed despite %d low-confidence measurement(s); treat the facts they support with suspicion\n",
		len(rep.Degraded))
}

// printSupervision reports what the solver supervision layer did:
// aggregate CDCL telemetry, any inconsistency cores it isolated with
// the relaxations that recovered them, budget stops, and the schemes
// that ended the run unresolved or relaxed.
func printSupervision(rep *zenport.Report) {
	s := rep.Supervision
	if s == nil {
		return
	}
	fmt.Printf("\n== Solver supervision\n")
	fmt.Printf("solver: %d queries, %d theory iterations, %d lemmas, %d conflicts, %d decisions, %d propagations, %d restarts\n",
		s.Solver.Queries, s.Solver.TheoryIterations, s.Solver.LemmasLearned,
		s.Solver.Solver.Conflicts, s.Solver.Solver.Decisions,
		s.Solver.Solver.Propagations, s.Solver.Solver.Restarts)
	if s.BudgetStops > 0 {
		fmt.Printf("budget: %d quer(ies) stopped at the solver budget; results degraded, not aborted\n", s.BudgetStops)
	}
	if p := s.Solver.Portfolio; p != nil {
		fmt.Printf("portfolio: %d queries over %d lockstep rounds, %d short-circuited by a scout's UNSAT\n",
			p.Queries, p.Rounds, p.ShortCircuits)
		fmt.Printf("portfolio: lemma exchange published %d, imported %d\n", p.LemmasPublished, p.LemmasImported)
		for i, w := range p.Wins {
			if w > 0 {
				fmt.Printf("portfolio: member %d decided %d quer(ies)\n", i, w)
			}
		}
	}
	for _, c := range s.Cores {
		fmt.Printf("inconsistency core (minimal conflicting experiment set): %v\n", c)
	}
	for _, rx := range s.Relaxations {
		fmt.Printf("relaxed %-42s slack %.2f (t_inv %.4f -> %.4f)\n", rx.Key, rx.Slack, rx.OldTInv, rx.NewTInv)
	}
	if len(rep.Relaxed) > 0 {
		fmt.Printf("schemes supported by relaxed measurements: %v\n", rep.Relaxed)
	}
	if len(rep.Unresolved) > 0 {
		fmt.Printf("unresolved schemes (absent from the mapping; rerun with -resume to retry): %v\n", rep.Unresolved)
	}
}
