// Command zenmap inspects a port mapping produced by zeninfer: it
// prints instruction usages, compares against the simulator's ground
// truth, and predicts the throughput of user-provided kernels with
// the Section 2.2 linear-program semantics.
//
// Usage:
//
//	zenmap -in mapping.json [-grep vpadd] [-predict '2*add GPR[32], GPR[32]; vpor XMM, XMM, XMM']
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"zenport"
)

func main() {
	in := flag.String("in", "", "mapping JSON file (from zeninfer -out)")
	grep := flag.String("grep", "", "only print schemes containing this substring")
	predict := flag.String("predict", "", "kernel to predict ('N*key; M*key')")
	compare := flag.Bool("compare", false, "compare against the simulator ground truth")
	timeout := flag.Duration("timeout", 0, "abort if the run exceeds this duration (0 = none)")
	flag.Parse()

	if *timeout > 0 {
		// zenmap performs no measurements; a watchdog bounds the LP
		// predictions and ground-truth comparison.
		time.AfterFunc(*timeout, func() {
			log.Fatalf("zenmap: timeout of %s exceeded", *timeout)
		})
	}

	if *in == "" {
		log.Fatal("specify -in mapping.json")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		log.Fatal(err)
	}
	var m zenport.Mapping
	if err := json.Unmarshal(data, &m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapping over %d ports, %d schemes\n", m.NumPorts, len(m.Usage))

	if *predict != "" {
		e, err := parseKernel(*predict)
		if err != nil {
			log.Fatal(err)
		}
		// Unknown scheme keys are user input: report them with
		// suggestions and exit 1 instead of a bare lookup failure.
		db := zenport.ZenDB()
		for key := range e {
			if _, ok := m.Get(key); ok {
				continue
			}
			if _, err := db.SchemeByKey(key); err != nil {
				log.Fatal(err)
			}
			log.Fatalf("scheme %q is not covered by the mapping %s", key, *in)
		}
		tp, err := m.InverseThroughputBounded(e, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("kernel %s\n", e)
		fmt.Printf("predicted inverse throughput: %.4f cycles/iteration\n", tp)
		fmt.Printf("predicted IPC:                %.4f\n", float64(e.Len())/tp)
		return
	}

	db := zenport.ZenDB()
	matches, exact := 0, 0
	for _, key := range m.Keys() {
		if *grep != "" && !strings.Contains(key, *grep) {
			continue
		}
		u, _ := m.Get(key)
		line := fmt.Sprintf("%-45s %s", key, u)
		if *compare {
			if sp, ok := db.Get(key); ok {
				if u.Equal(sp.Uops) {
					line += "   [= truth]"
					exact++
				} else {
					line += fmt.Sprintf("   [truth: %s]", sp.Uops)
				}
			}
		}
		fmt.Println(line)
		matches++
	}
	if *compare {
		fmt.Printf("\n%d/%d schemes match the ground truth exactly (port-renaming not applied)\n", exact, matches)
	}
}

func parseKernel(s string) (zenport.Experiment, error) {
	e := zenport.Experiment{}
	for _, t := range strings.Split(s, ";") {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		count := 1
		if i := strings.Index(t, "*"); i > 0 {
			if n, err := strconv.Atoi(strings.TrimSpace(t[:i])); err == nil {
				count = n
				t = strings.TrimSpace(t[i+1:])
			}
		}
		e[t] += count
	}
	if e.Len() == 0 {
		return nil, fmt.Errorf("empty kernel %q", s)
	}
	return e, nil
}
