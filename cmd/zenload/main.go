// Command zenload replays a mixed query stream against a zenportd
// daemon at configurable concurrency and reports latency quantiles
// (p50/p90/p99) and sustained throughput. With -verify, every
// prediction the daemon serves is checked bit-identical to the batch
// evaluator (the same compiled-mapping path cmd/zeneval uses), so a
// load run doubles as a correctness proof: caching, in-flight
// deduplication, and evaluator pooling must not change a single bit.
//
// Usage:
//
//	zenload -url http://127.0.0.1:8080 -mapping zen=mapping.json -clients 64 -requests 5000 -verify
//	zenload -self -mapping zen=mapping.json -clients 64 -requests 2000 -verify
//
// -self boots the zenportd HTTP stack in-process on a random port and
// aims the load at it — the mode `make serve-smoke` runs under the
// race detector.
//
// zenload is also the serving-robustness soak (`make
// serve-chaos-soak`): -overload shrinks the admission gate so the
// stream genuinely sheds, -chaos injects seeded evaluator stalls and
// one deterministic panic (internal/chaos.ServeFaults), -deadline
// stamps every request with an X-Zenport-Deadline budget,
// -slow-clients trickles request bodies, and -reload-at fires a
// SIGHUP hot reload mid-traffic. Responses are classified by status —
// shed (429), degraded (503), timeout (504), canceled (499),
// panicked (500 under -chaos) — shed/degraded responses must carry
// Retry-After, non-200s are excluded from the latency quantiles, and
// every 200 prediction must still verify bit-identical.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zenport/internal/chaos"
	"zenport/internal/portmodel"
	"zenport/internal/serve"
)

// mappingFlags collects repeated -mapping name=path pairs.
type mappingFlags []struct{ name, path string }

// String implements flag.Value.
func (m *mappingFlags) String() string {
	parts := make([]string, len(*m))
	for i, p := range *m {
		parts[i] = p.name + "=" + p.path
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (m *mappingFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

// query is one request of the replayed stream with its precomputed
// reference answer (when -verify is on).
type query struct {
	kind    string // "predict" or "explain"
	body    []byte
	wantInv uint64 // math.Float64bits of the reference bounded tp^-1
	wantIPC uint64
	verify  bool
}

// slowReader trickles a request body a few bytes at a time — the
// classic slow client. The daemon must absorb it without an evaluator
// slot being held hostage (decode happens before admission).
type slowReader struct {
	data  []byte
	chunk int
	delay time.Duration
}

// Read implements io.Reader.
func (r *slowReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(r.delay)
	n := r.chunk
	if n > len(r.data) || n > len(p) {
		n = min(len(r.data), len(p))
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// tally is the per-status classification of the replayed stream.
type tally struct {
	ok       atomic.Uint64
	shed     atomic.Uint64 // 429
	degraded atomic.Uint64 // 503
	timeout  atomic.Uint64 // 504
	canceled atomic.Uint64 // 499
	panicked atomic.Uint64 // 500 with an injected panic (chaos mode)
	failures atomic.Uint64
	verified atomic.Uint64
}

func main() {
	var mappings mappingFlags
	url := flag.String("url", "", "target daemon base URL (empty with -self)")
	self := flag.Bool("self", false, "boot the serving stack in-process on a random port")
	clients := flag.Int("clients", 64, "concurrent client goroutines")
	requests := flag.Int("requests", 2000, "total requests to issue")
	distinct := flag.Int("distinct", 200, "distinct experiments in the stream")
	hot := flag.Float64("hot", 0.8, "fraction of requests drawn from the hottest 10% of experiments")
	seed := flag.Int64("seed", 1, "stream RNG seed")
	rmax := flag.Float64("rmax", 5, "rmax the daemon serves with (for -verify references)")
	verify := flag.Bool("verify", false, "check every prediction bit-identical to the batch evaluator")
	deadline := flag.Duration("deadline", 0, "X-Zenport-Deadline header stamped on every request (0 = none)")
	slowClients := flag.Int("slow-clients", 0, "clients that trickle their request bodies byte-chunks at a time")
	overload := flag.Bool("overload", false, "with -self, shrink the admission gate so the stream genuinely sheds")
	chaosOn := flag.Bool("chaos", false, "with -self, inject seeded evaluator stalls and one deterministic panic")
	chaosSeed := flag.Int64("chaos-seed", 7, "serving-fault regime seed")
	reloadAt := flag.Int64("reload-at", 0, "with -self, fire a SIGHUP hot reload after this many completed responses (0 = never)")
	flag.Var(&mappings, "mapping", "name=path of a mapping JSON (repeatable; first is the query target)")
	flag.Parse()

	if len(mappings) == 0 {
		log.Fatal("zenload: specify -mapping name=path (the stream is built from its schemes)")
	}
	if (*url == "") == !*self {
		log.Fatal("zenload: specify exactly one of -url and -self")
	}
	if (*overload || *chaosOn || *reloadAt > 0) && !*self {
		log.Fatal("zenload: -overload, -chaos, and -reload-at require -self (they configure the in-process daemon)")
	}

	loaded := make(map[string]*portmodel.Mapping, len(mappings))
	for _, spec := range mappings {
		data, err := os.ReadFile(spec.path)
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		m := new(portmodel.Mapping)
		if err := json.Unmarshal(data, m); err != nil {
			log.Fatalf("zenload: %s: %v", spec.path, err)
		}
		loaded[spec.name] = m
	}
	target := mappings[0].name
	tm := loaded[target]

	base := *url
	var faults *chaos.ServeFaults
	if *self {
		cfg := serve.Config{Rmax: *rmax}
		if *overload {
			// A gate small enough that this stream genuinely saturates
			// it: the soak asserts shedding actually happened. One
			// evaluator slot plus a one-deep queue means any three
			// overlapping cache misses shed the third — guaranteed
			// during the cold-start burst when every client misses.
			cfg.MaxConcurrent = 1
			cfg.MaxQueue = 1
			cfg.QueueTimeout = 2 * time.Millisecond
		}
		if *chaosOn {
			faults = chaos.NewServeFaults(chaos.DefaultServeRegime(*chaosSeed))
			cfg.EvalHook = faults.Eval
		}
		srv := serve.New(cfg)
		for name, m := range loaded {
			if err := srv.Load(name, m); err != nil {
				log.Fatalf("zenload: %v", err)
			}
		}
		if *reloadAt > 0 {
			// The zenportd SIGHUP contract, in-process: a HUP re-reads
			// the -mapping files and hot-reloads them mid-traffic.
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			go func() {
				for range hup {
					for _, spec := range mappings {
						res, err := srv.Reload(spec.name, loaded[spec.name])
						if err != nil {
							log.Fatalf("zenload: reload %q rejected: %v", spec.name, err)
						}
						fmt.Printf("zenload: reloaded %q: generation %d, cache retained %v\n",
							spec.name, res.Generation, res.CacheRetained)
					}
				}
			}()
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		go func() { _ = (&http.Server{Handler: srv}).Serve(ln) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("zenload: in-process daemon on %s\n", base)
	}
	base = strings.TrimRight(base, "/")

	// Build the experiment pool and, with -verify, the reference
	// answers through the exact batch path zeneval uses: one compiled
	// evaluator, single-threaded.
	rng := rand.New(rand.NewSource(*seed))
	keys := tm.Keys()
	exps := make([]portmodel.Experiment, *distinct)
	for i := range exps {
		e := portmodel.Experiment{}
		for j := 0; j <= rng.Intn(4); j++ {
			e[keys[rng.Intn(len(keys))]] += 1 + rng.Intn(4)
		}
		e[keys[i%len(keys)]] += 1 + i%7
		exps[i] = e
	}
	var refInv, refIPC []uint64
	if *verify {
		c, err := portmodel.CompileMapping(tm, nil)
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		refInv = make([]uint64, len(exps))
		refIPC = make([]uint64, len(exps))
		for i, e := range exps {
			inv, err := c.InverseThroughputBounded(e, *rmax)
			if err != nil {
				log.Fatalf("zenload: %v", err)
			}
			ipc, err := c.IPC(e, *rmax)
			if err != nil {
				log.Fatalf("zenload: %v", err)
			}
			refInv[i] = math.Float64bits(inv)
			refIPC[i] = math.Float64bits(ipc)
		}
	}

	// The stream: hot-set skew (most load on few blocks, like a real
	// analysis session), ~10% explains mixed into the predicts.
	hotN := len(exps) / 10
	if hotN < 1 {
		hotN = 1
	}
	stream := make([]query, *requests)
	for i := range stream {
		idx := rng.Intn(len(exps))
		if rng.Float64() < *hot {
			idx = rng.Intn(hotN)
		}
		kind := "predict"
		if rng.Float64() < 0.1 {
			kind = "explain"
		}
		body, err := json.Marshal(map[string]any{"mapping": target, "experiment": exps[idx]})
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		q := query{kind: kind, body: body}
		if *verify && kind == "predict" {
			q.verify, q.wantInv, q.wantIPC = true, refInv[idx], refIPC[idx]
		}
		stream[i] = q
	}

	// Replay at fixed concurrency: one shared index, per-client
	// latency logs, merged afterwards. Latencies cover 200s only —
	// shed and degraded responses return in microseconds and would
	// fraudulently flatter the quantiles.
	var next atomic.Int64
	var completed atomic.Int64
	var reloadOnce sync.Once
	var t tally
	lats := make([][]time.Duration, *clients)
	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			slow := c < *slowClients
			mine := make([]time.Duration, 0, *requests / *clients + 1)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					break
				}
				q := stream[i]
				var body io.Reader = bytes.NewReader(q.body)
				if slow {
					body = &slowReader{data: q.body, chunk: 32, delay: 200 * time.Microsecond}
				}
				req, err := http.NewRequest(http.MethodPost, base+"/v1/"+q.kind, body)
				if err != nil {
					log.Fatalf("zenload: %v", err)
				}
				req.Header.Set("Content-Type", "application/json")
				if *deadline > 0 {
					req.Header.Set(serve.DeadlineHeader, deadline.String())
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					t.failures.Add(1)
					log.Printf("zenload: %v", err)
					continue
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.failures.Add(1)
					log.Printf("zenload: %s: read: %v", q.kind, err)
					continue
				}
				classify(&t, q, resp, data, time.Since(t0), &mine, *chaosOn)
				if n := completed.Add(1); *reloadAt > 0 && n >= *reloadAt {
					reloadOnce.Do(func() {
						if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
							log.Fatalf("zenload: SIGHUP: %v", err)
						}
					})
				}
			}
			lats[c] = mine
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	fmt.Printf("zenload: %d requests, %d clients (%d slow), %d distinct experiments over mapping %q\n",
		len(stream), *clients, *slowClients, len(exps), target)
	fmt.Printf("zenload: wall %.2fs, %.0f req/s\n", wall.Seconds(), float64(len(stream))/wall.Seconds())
	fmt.Printf("zenload: %d ok, %d shed, %d degraded, %d timeout, %d canceled, %d panicked, %d failures\n",
		t.ok.Load(), t.shed.Load(), t.degraded.Load(), t.timeout.Load(),
		t.canceled.Load(), t.panicked.Load(), t.failures.Load())
	fmt.Printf("zenload: latency (200s only) p50 %s  p90 %s  p99 %s  max %s\n", q(0.50), q(0.90), q(0.99), q(1.0))
	if *verify {
		fmt.Printf("zenload: %d predictions verified bit-identical to the batch evaluator\n", t.verified.Load())
	}
	if faults != nil {
		fmt.Printf("zenload: %s\n", faults.Ledger())
	}

	// Pull the daemon's own counters for the report and the soak
	// assertions below.
	var st serve.StatsResponse
	haveStats := false
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			haveStats = true
			for _, ms := range st.Mappings {
				if ms.Name == target {
					fmt.Printf("zenload: server: %d evaluations, %d cache hits, %d coalesced, %d pool compiles, generation %d, breaker %s\n",
						ms.Evaluations, ms.Cache.Hits, ms.Coalesced, ms.PoolCompiles, ms.Generation, ms.Breaker.State)
				}
			}
			fmt.Printf("zenload: server: %d shed (gate hw %d), %d panics recovered, %d deadline expiries, %d reloads\n",
				st.Gate.Shed, st.Gate.QueueDepthHighWater, st.PanicsRecovered, st.DeadlineExpiries, st.Reloads)
		}
		resp.Body.Close()
	}

	// Soak assertions: the exit code is the contract CI leans on.
	if n := t.failures.Load(); n > 0 {
		log.Fatalf("zenload: %d failed or mismatched requests", n)
	}
	if *verify && t.verified.Load() == 0 {
		log.Fatal("zenload: -verify set but no predictions were verified")
	}
	if *overload && t.shed.Load() == 0 {
		log.Fatal("zenload: -overload set but nothing was shed (gate never saturated)")
	}
	if *chaosOn {
		if faults.Ledger().Panics == 0 {
			log.Fatal("zenload: -chaos set but no panic was injected (stream too short to reach PanicAt?)")
		}
		if !haveStats || st.PanicsRecovered == 0 {
			log.Fatal("zenload: -chaos injected a panic but the daemon recovered none")
		}
	}
	if *reloadAt > 0 {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if g := reloadGeneration(client, base, target); g >= 2 {
				fmt.Printf("zenload: reload landed: mapping %q at generation %d\n", target, g)
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("zenload: -reload-at %d fired but mapping %q never reached generation 2", *reloadAt, target)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// classify buckets one response by status, recording latency and
// verifying bit-identity for 200s and demanding Retry-After on
// shed/degraded responses.
func classify(t *tally, q query, resp *http.Response, data []byte, lat time.Duration, mine *[]time.Duration, chaosOn bool) {
	switch resp.StatusCode {
	case http.StatusOK:
		t.ok.Add(1)
		*mine = append(*mine, lat)
		if q.verify {
			var pr serve.PredictResponse
			if err := json.Unmarshal(data, &pr); err != nil {
				t.failures.Add(1)
				log.Printf("zenload: bad predict response: %v", err)
				return
			}
			if math.Float64bits(pr.InvThroughput) != q.wantInv || math.Float64bits(pr.IPC) != q.wantIPC {
				t.failures.Add(1)
				log.Printf("zenload: MISMATCH: served (inv %v, ipc %v) != batch reference (inv %v, ipc %v)",
					pr.InvThroughput, pr.IPC,
					math.Float64frombits(q.wantInv), math.Float64frombits(q.wantIPC))
				return
			}
			t.verified.Add(1)
		}
	case http.StatusTooManyRequests:
		t.shed.Add(1)
		if resp.Header.Get("Retry-After") == "" {
			t.failures.Add(1)
			log.Printf("zenload: shed response missing Retry-After")
		}
	case http.StatusServiceUnavailable:
		t.degraded.Add(1)
		if resp.Header.Get("Retry-After") == "" {
			t.failures.Add(1)
			log.Printf("zenload: degraded response missing Retry-After")
		}
	case http.StatusGatewayTimeout:
		t.timeout.Add(1)
	case serve.StatusClientClosedRequest:
		t.canceled.Add(1)
	case http.StatusInternalServerError:
		if chaosOn && bytes.Contains(data, []byte("panic")) {
			t.panicked.Add(1)
			return
		}
		t.failures.Add(1)
		log.Printf("zenload: %s: status %d: %s", q.kind, resp.StatusCode, data)
	default:
		t.failures.Add(1)
		log.Printf("zenload: %s: status %d: %s", q.kind, resp.StatusCode, data)
	}
}

// reloadGeneration polls /v1/stats for the mapping's generation.
func reloadGeneration(client *http.Client, base, name string) uint64 {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var st serve.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0
	}
	for _, ms := range st.Mappings {
		if ms.Name == name {
			return ms.Generation
		}
	}
	return 0
}
