// Command zenload replays a mixed query stream against a zenportd
// daemon at configurable concurrency and reports latency quantiles
// (p50/p90/p99) and sustained throughput. With -verify, every
// prediction the daemon serves is checked bit-identical to the batch
// evaluator (the same compiled-mapping path cmd/zeneval uses), so a
// load run doubles as a correctness proof: caching, in-flight
// deduplication, and evaluator pooling must not change a single bit.
//
// Usage:
//
//	zenload -url http://127.0.0.1:8080 -mapping zen=mapping.json -clients 64 -requests 5000 -verify
//	zenload -self -mapping zen=mapping.json -clients 64 -requests 2000 -verify
//
// -self boots the zenportd HTTP stack in-process on a random port and
// aims the load at it — the mode `make serve-smoke` runs under the
// race detector.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"zenport/internal/portmodel"
	"zenport/internal/serve"
)

// mappingFlags collects repeated -mapping name=path pairs.
type mappingFlags []struct{ name, path string }

// String implements flag.Value.
func (m *mappingFlags) String() string {
	parts := make([]string, len(*m))
	for i, p := range *m {
		parts[i] = p.name + "=" + p.path
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (m *mappingFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*m = append(*m, struct{ name, path string }{name, path})
	return nil
}

// query is one request of the replayed stream with its precomputed
// reference answer (when -verify is on).
type query struct {
	kind    string // "predict" or "explain"
	body    []byte
	wantInv uint64 // math.Float64bits of the reference bounded tp^-1
	wantIPC uint64
	verify  bool
}

func main() {
	var mappings mappingFlags
	url := flag.String("url", "", "target daemon base URL (empty with -self)")
	self := flag.Bool("self", false, "boot the serving stack in-process on a random port")
	clients := flag.Int("clients", 64, "concurrent client goroutines")
	requests := flag.Int("requests", 2000, "total requests to issue")
	distinct := flag.Int("distinct", 200, "distinct experiments in the stream")
	hot := flag.Float64("hot", 0.8, "fraction of requests drawn from the hottest 10% of experiments")
	seed := flag.Int64("seed", 1, "stream RNG seed")
	rmax := flag.Float64("rmax", 5, "rmax the daemon serves with (for -verify references)")
	verify := flag.Bool("verify", false, "check every prediction bit-identical to the batch evaluator")
	flag.Var(&mappings, "mapping", "name=path of a mapping JSON (repeatable; first is the query target)")
	flag.Parse()

	if len(mappings) == 0 {
		log.Fatal("zenload: specify -mapping name=path (the stream is built from its schemes)")
	}
	if (*url == "") == !*self {
		log.Fatal("zenload: specify exactly one of -url and -self")
	}

	loaded := make(map[string]*portmodel.Mapping, len(mappings))
	for _, spec := range mappings {
		data, err := os.ReadFile(spec.path)
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		m := new(portmodel.Mapping)
		if err := json.Unmarshal(data, m); err != nil {
			log.Fatalf("zenload: %s: %v", spec.path, err)
		}
		loaded[spec.name] = m
	}
	target := mappings[0].name
	tm := loaded[target]

	base := *url
	if *self {
		srv := serve.New(serve.Config{Rmax: *rmax})
		for name, m := range loaded {
			if err := srv.Load(name, m); err != nil {
				log.Fatalf("zenload: %v", err)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		go func() { _ = (&http.Server{Handler: srv}).Serve(ln) }()
		base = "http://" + ln.Addr().String()
		fmt.Printf("zenload: in-process daemon on %s\n", base)
	}
	base = strings.TrimRight(base, "/")

	// Build the experiment pool and, with -verify, the reference
	// answers through the exact batch path zeneval uses: one compiled
	// evaluator, single-threaded.
	rng := rand.New(rand.NewSource(*seed))
	keys := tm.Keys()
	exps := make([]portmodel.Experiment, *distinct)
	for i := range exps {
		e := portmodel.Experiment{}
		for j := 0; j <= rng.Intn(4); j++ {
			e[keys[rng.Intn(len(keys))]] += 1 + rng.Intn(4)
		}
		e[keys[i%len(keys)]] += 1 + i%7
		exps[i] = e
	}
	var refInv, refIPC []uint64
	if *verify {
		c, err := portmodel.CompileMapping(tm, nil)
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		refInv = make([]uint64, len(exps))
		refIPC = make([]uint64, len(exps))
		for i, e := range exps {
			inv, err := c.InverseThroughputBounded(e, *rmax)
			if err != nil {
				log.Fatalf("zenload: %v", err)
			}
			ipc, err := c.IPC(e, *rmax)
			if err != nil {
				log.Fatalf("zenload: %v", err)
			}
			refInv[i] = math.Float64bits(inv)
			refIPC[i] = math.Float64bits(ipc)
		}
	}

	// The stream: hot-set skew (most load on few blocks, like a real
	// analysis session), ~10% explains mixed into the predicts.
	hotN := len(exps) / 10
	if hotN < 1 {
		hotN = 1
	}
	stream := make([]query, *requests)
	for i := range stream {
		idx := rng.Intn(len(exps))
		if rng.Float64() < *hot {
			idx = rng.Intn(hotN)
		}
		kind := "predict"
		if rng.Float64() < 0.1 {
			kind = "explain"
		}
		body, err := json.Marshal(map[string]any{"mapping": target, "experiment": exps[idx]})
		if err != nil {
			log.Fatalf("zenload: %v", err)
		}
		q := query{kind: kind, body: body}
		if *verify && kind == "predict" {
			q.verify, q.wantInv, q.wantIPC = true, refInv[idx], refIPC[idx]
		}
		stream[i] = q
	}

	// Replay at fixed concurrency: one shared index, per-client
	// latency logs, merged afterwards.
	var next atomic.Int64
	var failures atomic.Uint64
	var verified atomic.Uint64
	lats := make([][]time.Duration, *clients)
	client := &http.Client{Timeout: 30 * time.Second}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := make([]time.Duration, 0, *requests / *clients + 1)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stream) {
					break
				}
				q := stream[i]
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/"+q.kind, "application/json", bytes.NewReader(q.body))
				if err != nil {
					failures.Add(1)
					log.Printf("zenload: %v", err)
					continue
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				mine = append(mine, time.Since(t0))
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					log.Printf("zenload: %s: status %d: %s", q.kind, resp.StatusCode, data)
					continue
				}
				if q.verify {
					var pr serve.PredictResponse
					if err := json.Unmarshal(data, &pr); err != nil {
						failures.Add(1)
						log.Printf("zenload: bad predict response: %v", err)
						continue
					}
					if math.Float64bits(pr.InvThroughput) != q.wantInv || math.Float64bits(pr.IPC) != q.wantIPC {
						failures.Add(1)
						log.Printf("zenload: MISMATCH: served (inv %v, ipc %v) != batch reference (inv %v, ipc %v)",
							pr.InvThroughput, pr.IPC,
							math.Float64frombits(q.wantInv), math.Float64frombits(q.wantIPC))
						continue
					}
					verified.Add(1)
				}
			}
			lats[c] = mine
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	fmt.Printf("zenload: %d requests, %d clients, %d distinct experiments over mapping %q\n",
		len(stream), *clients, len(exps), target)
	fmt.Printf("zenload: wall %.2fs, %.0f req/s\n", wall.Seconds(), float64(len(all))/wall.Seconds())
	fmt.Printf("zenload: latency p50 %s  p90 %s  p99 %s  max %s\n", q(0.50), q(0.90), q(0.99), q(1.0))
	if *verify {
		fmt.Printf("zenload: %d predictions verified bit-identical to the batch evaluator\n", verified.Load())
	}

	// Pull the daemon's own counters for the report.
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		var st serve.StatsResponse
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			for _, ms := range st.Mappings {
				if ms.Name == target {
					fmt.Printf("zenload: server: %d evaluations, %d cache hits, %d coalesced, %d pool compiles\n",
						ms.Evaluations, ms.Cache.Hits, ms.Coalesced, ms.PoolCompiles)
				}
			}
		}
		resp.Body.Close()
	}

	if n := failures.Load(); n > 0 {
		log.Fatalf("zenload: %d failed or mismatched requests", n)
	}
	if *verify && verified.Load() == 0 {
		log.Fatal("zenload: -verify set but no predictions were verified")
	}
}
