// Command zeneval reproduces Figure 5 of Ritter & Hack (ASPLOS
// 2024): it infers a port mapping with the paper's algorithm, trains
// the PMEvo and Palmed baselines on the same simulated Zen+ machine,
// benchmarks random five-instruction basic blocks, and reports IPC
// prediction accuracy (MAPE, Pearson, Kendall τ) plus ASCII heatmaps
// of predicted vs. measured IPC.
//
// Usage:
//
//	zeneval [-blocks N] [-schemes N] [-seed N] [-parallel N] [-timeout D] [-cache-dir DIR] [-resume] [-fast]
//
// With -cache-dir, inference measurements are journaled crash-safe on
// disk and reused by later runs under the same configuration; with
// -resume, the inference phase restarts from its last completed
// pipeline stage.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"zenport"
	"zenport/internal/baseline/palmed"
	"zenport/internal/baseline/pmevo"
	"zenport/internal/eval"
	"zenport/internal/isa"
	"zenport/internal/portmodel"
)

// main delegates to run so the deferred persist-store Close (journal
// compaction) runs on every exit path, including signal cancellation.
func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	blocks := flag.Int("blocks", 1000, "number of random basic blocks (paper: 5000)")
	maxKeys := flag.Int("schemes", 0, "limit evaluated schemes (0 = all common covered schemes)")
	seed := flag.Int64("seed", 2600, "random seed")
	parallel := flag.Int("parallel", 0, "measurement worker pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the evaluation after this duration (0 = none)")
	cacheDir := flag.String("cache-dir", "", "crash-safe measurement cache directory (empty = no persistence)")
	resume := flag.Bool("resume", false, "resume an interrupted inference from its checkpoints (requires -cache-dir)")
	fast := flag.Bool("fast", false, "smaller PMEvo budget")
	solverBudget := flag.Uint64("solver-budget", 0, "max CDCL conflicts per solver query during inference (0 = unlimited)")
	portfolio := flag.Int("portfolio", 0, "CDCL portfolio width K for inference SMT queries (0/1 = single solver; ignored with -solver-budget)")
	maxSlack := flag.Float64("max-slack", 0, "max error-bound relaxation for UNSAT-core recovery during inference (0 = disabled)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	if *resume && *cacheDir == "" {
		return fmt.Errorf("-resume requires -cache-dir")
	}

	db := zenport.ZenDB()
	machine := zenport.NewZenMachine(db, zenport.SimConfig{Noise: 0.001, Seed: *seed})
	h := zenport.NewHarness(machine)
	h.Workers = *parallel

	// SIGINT/SIGTERM cancel the whole evaluation; the deferred store
	// Close below still compacts the measurement journal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := zenport.DefaultOptions()
	if !*quiet {
		opts.Log = func(f string, a ...any) { log.Printf(f, a...) }
	}
	opts.SolverBudget = zenport.SolverBudget{MaxConflicts: *solverBudget}
	opts.Portfolio = *portfolio
	opts.MaxSlack = *maxSlack
	if *cacheDir != "" {
		// Exclusive lock: a second process on the same cache directory
		// fails fast instead of interleaving journal writes.
		lk, err := zenport.LockCacheDir(*cacheDir)
		if err != nil {
			return err
		}
		defer lk.Unlock()
		fp := zenport.RunFingerprint(machine, h.Engine)
		store, err := zenport.OpenCache(*cacheDir, fp)
		if err != nil {
			return fmt.Errorf("opening cache: %w", err)
		}
		if !*quiet {
			store.Log = func(f string, a ...any) { log.Printf(f, a...) }
		}
		defer store.Close()
		if err := store.Attach(h.Engine); err != nil {
			return fmt.Errorf("attaching cache: %w", err)
		}
		ck, err := zenport.NewCheckpointer(*cacheDir, fp)
		if err != nil {
			return fmt.Errorf("opening checkpoints: %w", err)
		}
		opts.Checkpointer = ck
		opts.Resume = *resume
	}
	log.Printf("running inference pipeline...")
	rep, err := zenport.InferContext(ctx, h, zenport.ZenSchemes(db), opts)
	if err != nil {
		return err
	}

	// Evaluation schemes: compiler-common, covered by our mapping,
	// with at least one µop (mirrors the paper's SPEC-derived set).
	var keys []string
	for key := range rep.Final.Usage {
		sp, ok := db.Get(key)
		if !ok || !sp.Scheme.Attr.Has(isa.AttrCommon) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	if *maxKeys > 0 && *maxKeys < len(keys) {
		keys = keys[:*maxKeys]
	}
	log.Printf("evaluating on %d common schemes", len(keys))

	// Baselines trained on the same machine.
	pmevoCfg := pmevo.DefaultConfig()
	if *fast {
		pmevoCfg.Population, pmevoCfg.Generations = 30, 40
	}
	log.Printf("training PMEvo (population %d, %d generations)...", pmevoCfg.Population, pmevoCfg.Generations)
	pmevoMap, err := pmevo.Infer(h, keys, pmevoCfg)
	if err != nil {
		return err
	}
	blockerPorts := map[string]int{}
	for _, cls := range rep.Classes {
		anomalous := false
		for _, a := range rep.AnomalousBlockers {
			if a == cls.Rep {
				anomalous = true
			}
		}
		if !anomalous {
			blockerPorts[cls.Rep] = cls.PortCount
		}
	}
	log.Printf("fitting Palmed-style conjunctive model...")
	palmedModel, err := palmed.Infer(h, keys, blockerPorts)
	if err != nil {
		return err
	}

	log.Printf("sampling %d basic blocks...", *blocks)
	bs, err := eval.SampleBlocksContext(ctx, h, keys, *blocks, 5, *seed)
	if err != nil {
		return err
	}

	// Compile each mapping once; the whole block sweep shares the
	// compiled evaluators (predictions are bit-identical to the
	// uncompiled path). A failed compile leaves the predictor on its
	// internal lazy/reference path.
	oursComp, _ := zenport.CompileMapping(rep.Final, nil)
	pmevoComp, _ := zenport.CompileMapping(pmevoMap, nil)
	palmedEval := palmedModel.NewEvaluator()
	preds := []eval.Predictor{
		&eval.MappingPredictor{Label: "PMEvo", Mapping: pmevoMap, Compiled: pmevoComp},
		&eval.FuncPredictor{Label: "Palmed", Fn: palmedEval.IPC},
		&eval.MappingPredictor{Label: "Ours", Mapping: rep.Final, Rmax: machine.Rmax(), Compiled: oursComp},
	}
	results, err := eval.Evaluate(bs, preds, 5.5, 22)
	if err != nil {
		return err
	}

	fmt.Printf("\n== Figure 5(a): IPC prediction accuracy over %d blocks\n", len(bs))
	fmt.Print(eval.FormatTable(results))
	for _, r := range results {
		fmt.Printf("\n== Figure 5: %s predicted (y) vs measured (x) IPC, 0..5.5\n", r.Name)
		fmt.Print(r.Heatmap.Render())
	}
	_ = portmodel.Experiment(nil)
	return nil
}
