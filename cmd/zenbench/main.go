// Command zenbench is the nanoBench-alike of the reproduction: it
// runs a single steady-state kernel on the simulated Zen+ machine and
// prints the measured counters — median inverse throughput, CPI,
// retired-op counts (macro-ops on Zen+), and the FP-pipe counters.
//
// Kernels are given as comma-separated scheme keys with optional
// multipliers, e.g.:
//
//	zenbench -kernel '4*add GPR[32], GPR[32], 1*imul GPR[32], GPR[32]'
//	zenbench -list 'vpor'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"zenport"
)

// main delegates to run so the deferred persist-store Close (journal
// compaction) runs on every exit path, including signal cancellation.
func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	kernel := flag.String("kernel", "", "kernel: comma-separated 'N*scheme key' terms")
	list := flag.String("list", "", "list scheme keys containing this substring")
	seed := flag.Int64("seed", 2600, "noise seed")
	noise := flag.Float64("noise", 0.001, "relative measurement noise")
	parallel := flag.Int("parallel", 0, "measurement worker pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the measurement after this duration (0 = none)")
	intel := flag.Bool("intel", false, "enable Intel-like per-port µop counters")
	ideal := flag.Bool("ideal", false, "disable the Zen+ anomalies")
	cacheDir := flag.String("cache-dir", "", "crash-safe measurement cache directory (empty = no persistence)")
	chaosOn := flag.Bool("chaos", false, "inject deterministic faults (transients, hangs, outliers, stuck counters)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed (with -chaos)")
	qualitySpread := flag.Float64("quality-spread", 0, "adaptive repetition quality target, robust relative spread (0 = default 0.05)")
	predict := flag.Bool("predict", false, "also print the ground-truth port-model prediction (compiled evaluator)")
	flag.Parse()

	db := zenport.ZenDB()
	if *list != "" {
		for _, key := range db.Keys() {
			if strings.Contains(key, *list) {
				sp := db.MustGet(key)
				fmt.Printf("%-45s macro-ops=%d  truth=%s\n", key, sp.MacroOps, sp.Uops)
			}
		}
		return nil
	}
	if *kernel == "" {
		return fmt.Errorf("specify -kernel or -list")
	}

	e, err := parseKernel(*kernel)
	if err != nil {
		return err
	}
	// Unknown scheme keys are user input, not bugs: report them with
	// suggestions and exit 1 instead of dumping a stack trace.
	for _, key := range sortedKeys(e) {
		if _, err := db.SchemeByKey(key); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	n := *noise
	if n == 0 {
		n = -1
	}
	machine := zenport.NewZenMachine(db, zenport.SimConfig{
		Noise: n, Seed: *seed, PerPortCounters: *intel, DisableAnomalies: *ideal,
	})
	var proc zenport.Processor = machine
	var fper zenport.Fingerprinter = machine
	var cp *zenport.ChaosProcessor
	if *chaosOn {
		cp = zenport.WrapChaos(machine, *chaosSeed, zenport.DefaultChaosRegime())
		proc, fper = cp, cp
	}
	h := zenport.NewHarness(proc)
	h.Workers = *parallel
	h.QualitySpread = *qualitySpread
	if *cacheDir != "" {
		// Exclusive lock: a second process on the same cache directory
		// fails fast instead of interleaving journal writes.
		lk, err := zenport.LockCacheDir(*cacheDir)
		if err != nil {
			return err
		}
		defer lk.Unlock()
		store, err := zenport.OpenCache(*cacheDir, zenport.RunFingerprint(fper, h.Engine))
		if err != nil {
			return fmt.Errorf("opening cache: %w", err)
		}
		store.Log = log.Printf
		defer store.Close()
		if err := store.Attach(h.Engine); err != nil {
			return fmt.Errorf("attaching cache: %w", err)
		}
	}
	// SIGINT/SIGTERM cancel the measurement; the deferred store Close
	// above still compacts the journal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	r, err := h.Engine.Measure(ctx, e)
	if err != nil {
		return err
	}
	fmt.Printf("kernel:            %s\n", e)
	fmt.Printf("inverse throughput: %.4f cycles/iteration (median of %d kept samples, %d runs)\n",
		r.InvThroughput, r.Quality.Kept, r.Runs)
	fmt.Printf("CPI:               %.4f\n", r.CPI)
	fmt.Printf("IPC:               %.4f\n", 1/r.CPI)
	fmt.Printf("retired ops:       %.2f per iteration (macro-ops on Zen+)\n", r.OpsPerIteration)
	fmt.Printf("spread:            %.4f (robust %.4f)\n", r.Spread, r.Quality.Spread)
	if r.FPPortOps != nil {
		fmt.Printf("FP pipe µops:      %v\n", fmtVec(r.FPPortOps))
	}
	if r.PortOps != nil {
		fmt.Printf("per-port µops:     %v\n", fmtVec(r.PortOps))
	}
	if r.Quality.Rejected > 0 || r.Quality.Quarantined || r.Quality.LowConfidence {
		fmt.Printf("quality:           kept %d, rejected %d, quarantined %v, low-confidence %v\n",
			r.Quality.Kept, r.Quality.Rejected, r.Quality.Quarantined, r.Quality.LowConfidence)
	}
	m := h.Metrics()
	fmt.Printf("engine:            %d retries, %d samples rejected, max spread %.4f, mean %.4f, backoff %s\n",
		m.Retries, m.SamplesRejected, m.MaxSpread, m.MeanSpread, m.BackoffWait)
	if cp != nil {
		fmt.Printf("chaos ledger:      %s\n", cp.Ledger())
	}
	if *predict {
		comp, err := zenport.CompileMapping(db.Truth(), nil)
		if err != nil {
			return err
		}
		inv, err := comp.InverseThroughputBounded(e, machine.Rmax())
		if err != nil {
			return err
		}
		ipc, err := comp.IPC(e, machine.Rmax())
		if err != nil {
			return err
		}
		fmt.Printf("model tp⁻¹:        %.4f cycles/iteration (ground-truth port model)\n", inv)
		fmt.Printf("model IPC:         %.4f\n", ipc)
	}
	return nil
}

// parseKernel parses "4*key1, key2" into an experiment. Scheme keys
// themselves contain commas ("add GPR[32], GPR[32]"), so terms are
// split on commas NOT followed by a space-operand continuation: we
// instead split on ';' if present, else try the comma heuristic.
func parseKernel(s string) (zenport.Experiment, error) {
	sep := ";"
	if !strings.Contains(s, ";") {
		sep = "|"
		if !strings.Contains(s, "|") {
			// Single term.
			sep = "\x00"
		}
	}
	terms := strings.Split(s, sep)
	e := zenport.Experiment{}
	for _, t := range terms {
		t = strings.TrimSpace(t)
		if t == "" {
			continue
		}
		count := 1
		if i := strings.Index(t, "*"); i > 0 {
			if n, err := strconv.Atoi(strings.TrimSpace(t[:i])); err == nil {
				count = n
				t = strings.TrimSpace(t[i+1:])
			}
		}
		e[t] += count
	}
	if e.Len() == 0 {
		return nil, fmt.Errorf("empty kernel %q", s)
	}
	return e, nil
}

func sortedKeys(e zenport.Experiment) []string {
	keys := make([]string, 0, e.Len())
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
